// Package area provides the analytic switch-area model used for the paper's
// area results (Figure 7(a) and the headline area reduction). The paper
// takes switch areas "from layouts with back-annotated worst-case timing in
// 0.13 µm technology"; we substitute a two-parameter analytic model anchored
// to the published Æthereal 0.13 µm router area (≈0.17 mm² for a 6-port
// GT-BE switch at 500 MHz). Per the paper's footnote 1, NI area is accounted
// to the cores and only switch area is reported.
package area

import (
	"nocmap/internal/core"
	"nocmap/internal/topology"
)

// Model holds the switch-area coefficients.
type Model struct {
	// BaseMM2 is the frequency-independent control overhead per switch.
	BaseMM2 float64
	// PortMM2 is the area of one port's buffering, crossbar column and slot
	// table at the knee frequency.
	PortMM2 float64
	// KneeMHz is the frequency up to which the baseline layout closes
	// timing without upsizing.
	KneeMHz float64
	// GrowthPerGHz is the relative area growth per GHz beyond the knee,
	// modelling drive upsizing and pipelining to meet timing.
	GrowthPerGHz float64
}

// DefaultModel is anchored so a 6-port switch at 500 MHz occupies
// 0.028 + 6*0.024 = 0.172 mm², matching the Æthereal 0.13 µm router, and
// grows ≈1.4x at 2 GHz.
func DefaultModel() Model {
	return Model{BaseMM2: 0.028, PortMM2: 0.024, KneeMHz: 500, GrowthPerGHz: 0.27}
}

// SwitchMM2 returns the area of one switch with the given port count at the
// given frequency.
func (m Model) SwitchMM2(ports int, freqMHz float64) float64 {
	if ports < 1 {
		return 0
	}
	a := m.BaseMM2 + m.PortMM2*float64(ports)
	if freqMHz > m.KneeMHz {
		a *= 1 + m.GrowthPerGHz*(freqMHz-m.KneeMHz)/1000
	}
	return a
}

// NoCMM2 sums switch area over a mapping's topology at the mapping's
// frequency. Ports per switch = fabric neighbours (the switch's actual link
// degree — 2-4 on a mesh, 4 everywhere on a torus, arbitrary on a custom
// fabric) + one per NI. On a mesh this equals MeshMM2.
func (m Model) NoCMM2(mp *core.Mapping) float64 {
	var sum float64
	for s := 0; s < mp.Topology.NumSwitches(); s++ {
		deg := mp.Topology.Degree(topology.SwitchID(s))
		sum += m.SwitchMM2(deg+mp.Params.NIsPerSwitch, mp.Params.FreqMHz)
	}
	return sum
}

// MeshMM2 computes the area of a rows x cols mesh where every switch has
// nisPerSwitch NI ports, at freqMHz.
func (m Model) MeshMM2(rows, cols, nisPerSwitch int, freqMHz float64) float64 {
	var sum float64
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			deg := 0
			if r > 0 {
				deg++
			}
			if r < rows-1 {
				deg++
			}
			if c > 0 {
				deg++
			}
			if c < cols-1 {
				deg++
			}
			sum += m.SwitchMM2(deg+nisPerSwitch, freqMHz)
		}
	}
	return sum
}
