package area

import (
	"math"
	"testing"
	"testing/quick"

	"nocmap/internal/core"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

func TestAnchorPoint(t *testing.T) {
	m := DefaultModel()
	got := m.SwitchMM2(6, 500)
	if math.Abs(got-0.172) > 1e-9 {
		t.Errorf("6-port @ 500 MHz = %v mm², want 0.172 (Æthereal anchor)", got)
	}
}

func TestFrequencyGrowth(t *testing.T) {
	m := DefaultModel()
	at500 := m.SwitchMM2(6, 500)
	at1000 := m.SwitchMM2(6, 1000)
	at2000 := m.SwitchMM2(6, 2000)
	if !(at500 < at1000 && at1000 < at2000) {
		t.Errorf("area not increasing with frequency: %v %v %v", at500, at1000, at2000)
	}
	// Below the knee: flat.
	if m.SwitchMM2(6, 100) != at500 {
		t.Errorf("area below knee should equal knee area")
	}
	// ~1.4x at 2 GHz.
	if r := at2000 / at500; r < 1.3 || r > 1.5 {
		t.Errorf("2 GHz growth ratio = %v, want ≈1.4", r)
	}
}

func TestPortsScaling(t *testing.T) {
	m := DefaultModel()
	if m.SwitchMM2(0, 500) != 0 {
		t.Error("zero ports should have zero area")
	}
	if m.SwitchMM2(4, 500) >= m.SwitchMM2(8, 500) {
		t.Error("more ports must cost more area")
	}
}

func TestMeshMM2CountsPorts(t *testing.T) {
	m := DefaultModel()
	// 1x1 mesh with 2 NIs: one switch with 2 ports.
	want := m.SwitchMM2(2, 500)
	if got := m.MeshMM2(1, 1, 2, 500); math.Abs(got-want) > 1e-12 {
		t.Errorf("1x1 = %v, want %v", got, want)
	}
	// 2x2 with 2 NIs: four switches, each 2 mesh neighbours + 2 NIs = 4 ports.
	want = 4 * m.SwitchMM2(4, 500)
	if got := m.MeshMM2(2, 2, 2, 500); math.Abs(got-want) > 1e-12 {
		t.Errorf("2x2 = %v, want %v", got, want)
	}
	// 3x3: 4 corners (2+2), 4 edges (3+2), 1 centre (4+2).
	want = 4*m.SwitchMM2(4, 500) + 4*m.SwitchMM2(5, 500) + m.SwitchMM2(6, 500)
	if got := m.MeshMM2(3, 3, 2, 500); math.Abs(got-want) > 1e-12 {
		t.Errorf("3x3 = %v, want %v", got, want)
	}
}

func TestNoCMM2FromMapping(t *testing.T) {
	u := &traffic.UseCase{Name: "u", Flows: []traffic.Flow{{Src: 0, Dst: 1, BandwidthMBs: 100}}}
	d := &traffic.Design{Name: "d", Cores: traffic.MakeCores(2), UseCases: []*traffic.UseCase{u}}
	pr, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Map(pr, 2, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	m := DefaultModel()
	got := m.NoCMM2(res.Mapping)
	want := m.MeshMM2(res.Mapping.Topology.Rows, res.Mapping.Topology.Cols, 2, 500)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NoCMM2 = %v, want %v", got, want)
	}
}

// Property: mesh area is monotone in every dimension and in frequency.
func TestMeshAreaMonotoneProperty(t *testing.T) {
	m := DefaultModel()
	f := func(raw uint8, df uint8) bool {
		rows := 1 + int(raw%5)
		cols := 1 + int(raw/5%5)
		f1 := 100 + float64(df)*8
		a := m.MeshMM2(rows, cols, 2, f1)
		return m.MeshMM2(rows+1, cols, 2, f1) > a &&
			m.MeshMM2(rows, cols+1, 2, f1) > a &&
			m.MeshMM2(rows, cols, 2, f1+500) >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
