package topology

import (
	"strings"
	"testing"
)

func ring(t *testing.T, n int) *Custom {
	t.Helper()
	c := &Custom{Name: "ring", Switches: n}
	for i := 0; i < n; i++ {
		c.Links = append(c.Links, [2]int{i, (i + 1) % n})
	}
	return c
}

func TestCustomValidate(t *testing.T) {
	cases := []struct {
		name string
		c    Custom
		want string // substring of the error; empty = valid
	}{
		{"valid ring", *ring(t, 4), ""},
		{"single switch", Custom{Switches: 1}, ""},
		{"no switches", Custom{Switches: 0}, ">= 1 switch"},
		{"hostile switch count", Custom{Switches: 4_000_000_000, Links: [][2]int{{0, 1}}}, "limit"},
		{"no links", Custom{Switches: 3}, "no links"},
		{"out of range", Custom{Switches: 2, Links: [][2]int{{0, 2}}}, "out of range"},
		{"self loop", Custom{Switches: 2, Links: [][2]int{{1, 1}}}, "self-loop"},
		{"duplicate", Custom{Switches: 2, Links: [][2]int{{0, 1}, {1, 0}}}, "duplicate"},
		{"disconnected", Custom{Switches: 4, Links: [][2]int{{0, 1}, {2, 3}}}, "disconnected"},
	}
	for _, tc := range cases {
		err := tc.c.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestCustomBuildRingProperties(t *testing.T) {
	top, err := ring(t, 6).Build(2)
	if err != nil {
		t.Fatal(err)
	}
	if top.Kind != KindCustom || top.NumSwitches() != 6 || top.NumLinks() != 12 {
		t.Fatalf("ring topology = %v (%d switches, %d links)", top, top.NumSwitches(), top.NumLinks())
	}
	if top.MaxCores() != 12 {
		t.Errorf("MaxCores = %d, want 12", top.MaxCores())
	}
	// Ring of 6: opposite switches are 3 hops apart, neighbours 1.
	if d := top.HopDistance(0, 3); d != 3 {
		t.Errorf("HopDistance(0,3) = %d, want 3", d)
	}
	if d := top.HopDistance(5, 0); d != 1 {
		t.Errorf("HopDistance(5,0) = %d, want 1", d)
	}
	// Every switch of a ring has eccentricity 3; centre falls on the lowest.
	if top.Centre() != 0 {
		t.Errorf("Centre = %d, want 0", top.Centre())
	}
	if got := top.String(); !strings.Contains(got, "custom ring") {
		t.Errorf("String = %q", got)
	}
}

func TestCustomCanonicalIDInvariance(t *testing.T) {
	a := &Custom{Name: "x", Switches: 4, Links: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}
	// Same structure: reordered and flipped links, different name.
	b := &Custom{Name: "y", Switches: 4, Links: [][2]int{{3, 2}, {0, 3}, {2, 1}, {1, 0}}}
	if a.CanonicalID() != b.CanonicalID() {
		t.Errorf("structurally equal fabrics digest differently: %s vs %s", a.CanonicalID(), b.CanonicalID())
	}
	c := &Custom{Switches: 4, Links: [][2]int{{0, 1}, {1, 2}, {2, 3}}}
	if a.CanonicalID() == c.CanonicalID() {
		t.Error("different structures share a canonical ID")
	}
	if !strings.HasPrefix(a.CanonicalID(), "custom:") {
		t.Errorf("canonical ID %q lacks custom: prefix", a.CanonicalID())
	}
}

func TestParseSpec(t *testing.T) {
	for arg, kind := range map[string]Kind{"": KindMesh, "mesh": KindMesh, "torus": KindTorus} {
		s, err := ParseSpec(arg)
		if err != nil || s.Kind != kind {
			t.Errorf("ParseSpec(%q) = %v, %v", arg, s, err)
		}
	}
	if _, err := ParseSpec("hypercube"); err == nil {
		t.Error("ParseSpec should reject unknown families")
	}
	if _, err := ParseSpec("@/does/not/exist.json"); err == nil {
		t.Error("ParseSpec should surface missing fabric files")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Kind: KindMesh}).Validate(); err != nil {
		t.Errorf("mesh spec invalid: %v", err)
	}
	if err := (Spec{Kind: KindCustom}).Validate(); err == nil {
		t.Error("custom spec without fabric should be invalid")
	}
	if err := (Spec{Kind: KindMesh, Custom: ring(t, 3)}).Validate(); err == nil {
		t.Error("mesh spec carrying a fabric should be invalid")
	}
	if err := (Spec{Kind: Kind(42)}).Validate(); err == nil {
		t.Error("unknown kind should be invalid")
	}
}

func TestSpecForDimTorusDegradesBelow3x3(t *testing.T) {
	s := Spec{Kind: KindTorus}
	small, err := s.ForDim(Dim{Rows: 2, Cols: 2}, 4)
	if err != nil || small.Kind != KindMesh {
		t.Fatalf("2x2 torus = %v, %v; want mesh degradation", small, err)
	}
	big, err := s.ForDim(Dim{Rows: 3, Cols: 3}, 4)
	if err != nil || big.Kind != KindTorus {
		t.Fatalf("3x3 torus = %v, %v", big, err)
	}
	if !s.Grows() || (Spec{Kind: KindCustom, Custom: ring(t, 3)}).Grows() {
		t.Error("Grows: torus must grow, custom must not")
	}
}

func TestSpecCanonicalID(t *testing.T) {
	if id := (Spec{Kind: KindTorus}).CanonicalID(); id != "torus" {
		t.Errorf("torus canonical ID = %q", id)
	}
	r := ring(t, 3)
	if id := (Spec{Kind: KindCustom, Custom: r}).CanonicalID(); id != r.CanonicalID() {
		t.Errorf("custom spec canonical ID = %q, want the fabric's", id)
	}
}
