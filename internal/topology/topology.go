// Package topology models the NoC interconnect fabric: switches, directed
// inter-switch links, and the network-interface (NI) capacity of each
// switch. Three families are supported — the paper's 2-D mesh, the torus
// (mesh plus wrap-around links), and arbitrary custom switch/link fabrics
// loaded from JSON — all behind one immutable Topology value, taking the
// paper at its word that the methodology "applies to any topology". A Spec
// names a family without fixing an instance, which is how the mapper's
// growth loop explores sizes within one family. Cores attach to switches
// through NIs; following the paper's footnote 1, NI area is accounted to the
// cores, so the topology only tracks how many cores a switch can host.
package topology

import (
	"fmt"

	"nocmap/internal/graph"
)

// SwitchID identifies a switch (router) in the topology.
type SwitchID int

// LinkID identifies a directed inter-switch link.
type LinkID int

// Link is a unidirectional channel between two switches. Mesh edges are
// represented as two opposing links.
type Link struct {
	ID   LinkID
	From SwitchID
	To   SwitchID
}

// Kind distinguishes supported topology families.
type Kind int

const (
	// KindMesh is a 2-D mesh: switch (r,c) connects to its 4-neighbours.
	KindMesh Kind = iota
	// KindTorus adds wrap-around links in both dimensions (extension X3).
	KindTorus
	// KindCustom is an arbitrary switch/link fabric loaded from a Custom
	// description; hop distances come from a precomputed BFS table and only
	// least-cost (Dijkstra) routing applies.
	KindCustom
)

func (k Kind) String() string {
	switch k {
	case KindMesh:
		return "mesh"
	case KindTorus:
		return "torus"
	case KindCustom:
		return "custom"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Topology is an immutable switch-level network description.
type Topology struct {
	Kind Kind
	// Rows and Cols give the mesh dimensions; Switches = Rows*Cols. Custom
	// topologies are stored as a single row (Rows = 1, Cols = switch count)
	// so size-derived code paths keep working.
	Rows, Cols int
	// CoresPerSwitch bounds how many cores the NIs of one switch can host.
	CoresPerSwitch int

	// name labels custom fabrics; empty for generated meshes/tori.
	name string
	// hop is the all-pairs BFS hop-distance table of custom fabrics; mesh
	// and torus distances are arithmetic and leave it nil.
	hop [][]int
	// centre caches the minimum-eccentricity switch of custom fabrics.
	centre SwitchID

	links []Link
	g     *graph.Directed
}

// NewMesh builds a rows x cols mesh where each switch can host up to
// coresPerSwitch cores.
func NewMesh(rows, cols, coresPerSwitch int) (*Topology, error) {
	return build(KindMesh, rows, cols, coresPerSwitch)
}

// NewTorus builds a rows x cols torus (mesh plus wrap-around links).
func NewTorus(rows, cols, coresPerSwitch int) (*Topology, error) {
	if rows < 3 || cols < 3 {
		// Smaller tori duplicate mesh links; treat as an input error to keep
		// the link set simple.
		return nil, fmt.Errorf("topology: torus needs rows,cols >= 3, got %dx%d", rows, cols)
	}
	return build(KindTorus, rows, cols, coresPerSwitch)
}

func build(kind Kind, rows, cols, coresPerSwitch int) (*Topology, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topology: dimensions %dx%d invalid", rows, cols)
	}
	if coresPerSwitch < 1 {
		return nil, fmt.Errorf("topology: coresPerSwitch %d invalid", coresPerSwitch)
	}
	t := &Topology{Kind: kind, Rows: rows, Cols: cols, CoresPerSwitch: coresPerSwitch}
	n := rows * cols
	t.g = graph.NewDirected(n)
	addBoth := func(a, b SwitchID) error {
		for _, pair := range [][2]SwitchID{{a, b}, {b, a}} {
			id, err := t.g.AddArc(int(pair[0]), int(pair[1]))
			if err != nil {
				return err
			}
			t.links = append(t.links, Link{ID: LinkID(id), From: pair[0], To: pair[1]})
		}
		return nil
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			s := t.At(r, c)
			if c+1 < cols {
				if err := addBoth(s, t.At(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := addBoth(s, t.At(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	if kind == KindTorus {
		for r := 0; r < rows; r++ {
			if err := addBoth(t.At(r, cols-1), t.At(r, 0)); err != nil {
				return nil, err
			}
		}
		for c := 0; c < cols; c++ {
			if err := addBoth(t.At(rows-1, c), t.At(0, c)); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}

// NumSwitches reports the switch count.
func (t *Topology) NumSwitches() int { return t.Rows * t.Cols }

// NumLinks reports the directed link count.
func (t *Topology) NumLinks() int { return len(t.links) }

// MaxCores reports the total core-hosting capacity.
func (t *Topology) MaxCores() int { return t.NumSwitches() * t.CoresPerSwitch }

// At returns the switch at mesh coordinate (row, col).
func (t *Topology) At(row, col int) SwitchID { return SwitchID(row*t.Cols + col) }

// Coord returns the mesh coordinate of a switch.
func (t *Topology) Coord(s SwitchID) (row, col int) { return int(s) / t.Cols, int(s) % t.Cols }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) Link { return t.links[int(id)] }

// Links returns all directed links. The slice must not be modified.
func (t *Topology) Links() []Link { return t.links }

// Out returns the IDs of links leaving switch s.
func (t *Topology) Out(s SwitchID) []LinkID {
	arcs := t.g.Out(int(s))
	out := make([]LinkID, len(arcs))
	for i, a := range arcs {
		out[i] = LinkID(a)
	}
	return out
}

// Degree returns the number of links leaving s (= entering s, by symmetry).
func (t *Topology) Degree(s SwitchID) int { return len(t.g.Out(int(s))) }

// Ports returns the port count of switch s: mesh neighbours plus one shared
// NI port group (the paper's switch arity model; NI ports beyond the first
// are accounted to the NIs/cores).
func (t *Topology) Ports(s SwitchID) int { return t.Degree(s) + 1 }

// Graph exposes the underlying directed graph for path searches. Link IDs
// equal arc indices.
func (t *Topology) Graph() *graph.Directed { return t.g }

// HopDistance returns the minimal hop count between two switches; -1 when
// unreachable (only possible on degenerate custom fabrics, which the loader
// rejects).
func (t *Topology) HopDistance(a, b SwitchID) int {
	if a == b {
		return 0
	}
	if t.hop != nil {
		return t.hop[int(a)][int(b)]
	}
	ar, ac := t.Coord(a)
	br, bc := t.Coord(b)
	dr := abs(ar - br)
	dc := abs(ac - bc)
	if t.Kind == KindTorus {
		if w := t.Rows - dr; w < dr {
			dr = w
		}
		if w := t.Cols - dc; w < dc {
			dc = w
		}
	}
	return dr + dc
}

// Centre returns a most-central switch: the geometric centre of a mesh or
// torus, and the minimum-eccentricity switch of a custom fabric. The mapper
// seeds the first placement of a flow with no mapped endpoint here.
func (t *Topology) Centre() SwitchID {
	if t.Kind == KindCustom {
		return t.centre
	}
	return t.At((t.Rows-1)/2, (t.Cols-1)/2)
}

// Name returns the label of a custom fabric; empty for meshes and tori.
func (t *Topology) Name() string { return t.name }

// FindLink returns the link from a to b, if adjacent.
func (t *Topology) FindLink(a, b SwitchID) (LinkID, bool) {
	for _, id := range t.Out(a) {
		if t.links[int(id)].To == b {
			return id, true
		}
	}
	return -1, false
}

// String renders a compact description, e.g. "3x4 mesh (12 switches)" or
// "custom ring8 (8 switches)".
func (t *Topology) String() string {
	if t.Kind == KindCustom {
		name := t.name
		if name == "" {
			name = "fabric"
		}
		return fmt.Sprintf("custom %s (%d switches)", name, t.NumSwitches())
	}
	return fmt.Sprintf("%dx%d %s (%d switches)", t.Rows, t.Cols, t.Kind, t.NumSwitches())
}

// Dim is a mesh size candidate in the growth sequence.
type Dim struct{ Rows, Cols int }

// Switches returns the switch count of the candidate.
func (d Dim) Switches() int { return d.Rows * d.Cols }

func (d Dim) String() string { return fmt.Sprintf("%dx%d", d.Rows, d.Cols) }

// GrowthSequence enumerates mesh sizes in the order the outer loop of
// Algorithm 2 explores them: non-decreasing switch count starting from a
// single switch, preferring squarer shapes among equal counts, capped at
// maxDim x maxDim (the paper stops at 20x20). Only shapes with Rows <= Cols
// are produced since transposes are equivalent.
func GrowthSequence(maxDim int) []Dim {
	if maxDim < 1 {
		return nil
	}
	var dims []Dim
	for r := 1; r <= maxDim; r++ {
		for c := r; c <= maxDim; c++ {
			dims = append(dims, Dim{Rows: r, Cols: c})
		}
	}
	// Order by switch count, then by squareness (smaller col-row gap), then
	// rows for determinism.
	lessThan := func(a, b Dim) bool {
		if a.Switches() != b.Switches() {
			return a.Switches() < b.Switches()
		}
		if ga, gb := a.Cols-a.Rows, b.Cols-b.Rows; ga != gb {
			return ga < gb
		}
		return a.Rows < b.Rows
	}
	// Insertion sort keeps this dependency-free and the list is small.
	for i := 1; i < len(dims); i++ {
		for j := i; j > 0 && lessThan(dims[j], dims[j-1]); j-- {
			dims[j], dims[j-1] = dims[j-1], dims[j]
		}
	}
	return dims
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
