package topology

import (
	"nocmap/internal/graph"

	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMeshCounts(t *testing.T) {
	cases := []struct {
		rows, cols      int
		switches, links int
	}{
		{1, 1, 1, 0},
		{1, 2, 2, 2},
		{2, 2, 4, 8},
		{2, 3, 6, 14},
		{3, 3, 9, 24},
		{4, 5, 20, 62},
	}
	for _, tc := range cases {
		m, err := NewMesh(tc.rows, tc.cols, 4)
		if err != nil {
			t.Fatalf("NewMesh(%d,%d): %v", tc.rows, tc.cols, err)
		}
		if m.NumSwitches() != tc.switches {
			t.Errorf("%dx%d switches = %d, want %d", tc.rows, tc.cols, m.NumSwitches(), tc.switches)
		}
		// Directed links: 2 * (rows*(cols-1) + cols*(rows-1)).
		if m.NumLinks() != tc.links {
			t.Errorf("%dx%d links = %d, want %d", tc.rows, tc.cols, m.NumLinks(), tc.links)
		}
	}
}

func TestNewMeshRejects(t *testing.T) {
	if _, err := NewMesh(0, 3, 4); err == nil {
		t.Error("0 rows accepted")
	}
	if _, err := NewMesh(3, -1, 4); err == nil {
		t.Error("negative cols accepted")
	}
	if _, err := NewMesh(2, 2, 0); err == nil {
		t.Error("0 cores per switch accepted")
	}
}

func TestAtCoordRoundTrip(t *testing.T) {
	m, err := NewMesh(3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 5; c++ {
			s := m.At(r, c)
			gr, gc := m.Coord(s)
			if gr != r || gc != c {
				t.Errorf("Coord(At(%d,%d)) = (%d,%d)", r, c, gr, gc)
			}
		}
	}
}

func TestMeshAdjacency(t *testing.T) {
	m, err := NewMesh(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Corner switch (0,0) has 2 neighbours.
	if d := m.Degree(m.At(0, 0)); d != 2 {
		t.Errorf("corner degree = %d, want 2", d)
	}
	if _, ok := m.FindLink(m.At(0, 0), m.At(0, 1)); !ok {
		t.Error("link (0,0)->(0,1) missing")
	}
	if _, ok := m.FindLink(m.At(0, 0), m.At(1, 1)); ok {
		t.Error("diagonal link should not exist")
	}
	// Every link has an opposing twin.
	for _, l := range m.Links() {
		if _, ok := m.FindLink(l.To, l.From); !ok {
			t.Errorf("link %d->%d has no reverse", l.From, l.To)
		}
	}
}

func TestMeshInteriorDegree(t *testing.T) {
	m, err := NewMesh(3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Degree(m.At(1, 1)); d != 4 {
		t.Errorf("interior degree = %d, want 4", d)
	}
	if p := m.Ports(m.At(1, 1)); p != 5 {
		t.Errorf("interior ports = %d, want 5 (4 mesh + 1 NI)", p)
	}
}

func TestHopDistanceMesh(t *testing.T) {
	m, err := NewMesh(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.HopDistance(m.At(0, 0), m.At(3, 3)); d != 6 {
		t.Errorf("corner-to-corner = %d, want 6", d)
	}
	if d := m.HopDistance(m.At(2, 2), m.At(2, 2)); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestTorus(t *testing.T) {
	tor, err := NewTorus(3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Torus 3x3: every switch has degree 4.
	for s := 0; s < tor.NumSwitches(); s++ {
		if d := tor.Degree(SwitchID(s)); d != 4 {
			t.Errorf("switch %d degree = %d, want 4", s, d)
		}
	}
	// Wrap-around shortens distance.
	if d := tor.HopDistance(tor.At(0, 0), tor.At(0, 2)); d != 1 {
		t.Errorf("torus wrap distance = %d, want 1", d)
	}
	if _, err := NewTorus(2, 3, 1); err == nil {
		t.Error("2x3 torus should be rejected")
	}
}

func TestMaxCores(t *testing.T) {
	m, err := NewMesh(2, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.MaxCores() != 48 {
		t.Errorf("MaxCores = %d, want 48", m.MaxCores())
	}
}

func TestString(t *testing.T) {
	m, _ := NewMesh(2, 3, 1)
	if s := m.String(); s != "2x3 mesh (6 switches)" {
		t.Errorf("String = %q", s)
	}
	if KindTorus.String() != "torus" || Kind(9).String() == "" {
		t.Error("Kind.String broken")
	}
}

func TestGrowthSequence(t *testing.T) {
	dims := GrowthSequence(3)
	// All r<=c pairs up to 3x3: (1,1),(1,2),(1,3),(2,2),(2,3),(3,3)
	want := []Dim{{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3}, {3, 3}}
	if len(dims) != len(want) {
		t.Fatalf("len = %d, want %d (%v)", len(dims), len(want), dims)
	}
	for i := range want {
		if dims[i] != want[i] {
			t.Errorf("dims[%d] = %v, want %v", i, dims[i], want[i])
		}
	}
	if GrowthSequence(0) != nil {
		t.Error("GrowthSequence(0) should be nil")
	}
}

func TestGrowthSequenceMonotoneProperty(t *testing.T) {
	f := func(raw uint8) bool {
		maxDim := 1 + int(raw%20)
		dims := GrowthSequence(maxDim)
		if len(dims) != maxDim*(maxDim+1)/2 {
			return false
		}
		prev := 0
		for _, d := range dims {
			if d.Rows > d.Cols || d.Rows < 1 || d.Cols > maxDim {
				return false
			}
			if d.Switches() < prev {
				return false
			}
			prev = d.Switches()
		}
		// First must be 1x1, squarest shapes first among equal counts.
		return dims[0] == Dim{1, 1}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: in any mesh, HopDistance equals the unit-cost shortest path
// length through the link graph, and the returned path is link-contiguous.
func TestHopDistanceMatchesGraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(5), 1+rng.Intn(5)
		m, err := NewMesh(rows, cols, 1)
		if err != nil {
			return false
		}
		a := rng.Intn(m.NumSwitches())
		b := rng.Intn(m.NumSwitches())
		path, cost, err := m.Graph().ShortestPath(a, b, func(graph.Arc) float64 { return 1 })
		if err != nil {
			return false // meshes are connected
		}
		if int(cost) != m.HopDistance(SwitchID(a), SwitchID(b)) {
			return false
		}
		for i := 0; i+1 < len(path); i++ {
			if m.Link(LinkID(path[i])).To != m.Link(LinkID(path[i+1])).From {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
