package topology

import (
	"bytes"
	"testing"
)

// FuzzTopologySpec feeds arbitrary bytes to the custom-fabric loader. The
// loader must never panic; whenever it accepts an input, the resulting
// fabric must actually build and honour the loader's own invariants
// (connectivity, no duplicate links), since everything downstream — the
// growth loop, routing, the engines — relies on them.
func FuzzTopologySpec(f *testing.F) {
	f.Add([]byte(`{"name":"ring4","switches":4,"links":[[0,1],[1,2],[2,3],[3,0]]}`))
	f.Add([]byte(`{"switches":1,"links":[]}`))
	f.Add([]byte(`{"switches":4,"links":[[0,1],[2,3]]}`))           // disconnected
	f.Add([]byte(`{"switches":3,"links":[[0,1],[1,0],[1,2]]}`))     // duplicate link
	f.Add([]byte(`{"switches":2,"links":[[0,0],[0,1]]}`))           // self-loop
	f.Add([]byte(`{"switches":2,"links":[[0,7]]}`))                 // out of range
	f.Add([]byte(`{"switches":-3,"links":[]}`))                     // negative
	f.Add([]byte(`{"switches":4000000000,"links":[[0,1]]}`))        // hostile size
	f.Add([]byte(`{"switches":2,"links":[[0,1]],"extra":"field"}`)) // unknown field
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCustomJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected without panicking: fine
		}
		top, err := c.Build(2)
		if err != nil {
			t.Fatalf("accepted fabric fails to build: %v (input %q)", err, data)
		}
		// Connectivity invariant: every switch reachable from every other.
		n := top.NumSwitches()
		for a := SwitchID(0); int(a) < n; a++ {
			for b := SwitchID(0); int(b) < n; b++ {
				if top.HopDistance(a, b) < 0 {
					t.Fatalf("accepted fabric is disconnected: %d unreachable from %d (input %q)", b, a, data)
				}
			}
		}
		// The canonical ID must be insensitive to link order.
		flipped := &Custom{Name: c.Name, Switches: c.Switches}
		for i := len(c.Links) - 1; i >= 0; i-- {
			flipped.Links = append(flipped.Links, [2]int{c.Links[i][1], c.Links[i][0]})
		}
		if c.CanonicalID() != flipped.CanonicalID() {
			t.Fatalf("canonical ID depends on link order (input %q)", data)
		}
	})
}
