package topology

import (
	"fmt"
	"strings"
)

// Spec names an interconnect family without fixing an instance: the mapper's
// outer loop supplies concrete dimensions per growth attempt (ForDim), while
// Build instantiates the spec's own Rows/Cols directly. It is the value that
// threads topology choice through core.Params into every search engine, the
// CLIs and the mapping service.
type Spec struct {
	Kind Kind
	// Rows and Cols fix the dimensions for Build; the growth loop ignores
	// them and supplies its own per attempt.
	Rows, Cols int
	// CoresPerSwitch is the per-switch core capacity for Build; zero defaults
	// to 1. The mapper always derives it from its NI parameters instead.
	CoresPerSwitch int
	// Custom describes the fabric when Kind is KindCustom.
	Custom *Custom
}

// MeshSpec is the default spec: the paper's 2-D mesh family.
func MeshSpec() Spec { return Spec{Kind: KindMesh} }

// KindNames lists the values accepted by ParseKind, in display order.
func KindNames() []string { return []string{"mesh", "torus"} }

// ParseKind resolves a topology-family name; the empty string means mesh.
func ParseKind(name string) (Kind, error) {
	switch name {
	case "", "mesh":
		return KindMesh, nil
	case "torus":
		return KindTorus, nil
	default:
		return KindMesh, fmt.Errorf("topology: unknown kind %q (have %s)", name, strings.Join(KindNames(), ", "))
	}
}

// ParseSpec resolves a CLI topology argument: "mesh", "torus", the empty
// string (mesh), or "@file.json" naming a custom fabric description.
func ParseSpec(arg string) (Spec, error) {
	if strings.HasPrefix(arg, "@") {
		c, err := ReadCustomFile(strings.TrimPrefix(arg, "@"))
		if err != nil {
			return Spec{}, err
		}
		return Spec{Kind: KindCustom, Custom: c}, nil
	}
	kind, err := ParseKind(arg)
	if err != nil {
		return Spec{}, err
	}
	return Spec{Kind: kind}, nil
}

// Validate rejects malformed specs: an unknown kind, a custom kind without a
// fabric description (or a non-custom kind with one), or an invalid fabric.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindMesh, KindTorus:
		if s.Custom != nil {
			return fmt.Errorf("topology: %s spec must not carry a custom fabric", s.Kind)
		}
		return nil
	case KindCustom:
		if s.Custom == nil {
			return fmt.Errorf("topology: custom spec has no fabric description")
		}
		return s.Custom.Validate()
	default:
		return fmt.Errorf("topology: unknown kind %v", s.Kind)
	}
}

// Grows reports whether the mapper's outer growth loop applies: mesh and
// torus families grow through the dimension sequence, a custom fabric is a
// single fixed instance.
func (s Spec) Grows() bool { return s.Kind != KindCustom }

// ForDim instantiates the family at the given dimensions with the given
// per-switch core capacity. Tori below 3x3 degrade to meshes — their wrap
// links would duplicate mesh links — so the torus growth sequence starts
// from the same small shapes as the mesh one.
func (s Spec) ForDim(d Dim, coresPerSwitch int) (*Topology, error) {
	switch s.Kind {
	case KindCustom:
		return s.Custom.Build(coresPerSwitch)
	case KindTorus:
		if d.Rows >= 3 && d.Cols >= 3 {
			return NewTorus(d.Rows, d.Cols, coresPerSwitch)
		}
		return NewMesh(d.Rows, d.Cols, coresPerSwitch)
	default:
		return NewMesh(d.Rows, d.Cols, coresPerSwitch)
	}
}

// Build instantiates the spec using its own Rows/Cols and CoresPerSwitch
// (defaulting to 1 core per switch; custom fabrics ignore the dimensions).
func (s Spec) Build() (*Topology, error) {
	cps := s.CoresPerSwitch
	if cps <= 0 {
		cps = 1
	}
	return s.ForDim(Dim{Rows: s.Rows, Cols: s.Cols}, cps)
}

// CanonicalID returns the digest-stable fabric identifier: "mesh", "torus",
// or the custom fabric's structural digest. It is what design digests and
// service cache keys embed so otherwise identical requests on different
// fabrics never collide.
func (s Spec) CanonicalID() string {
	if s.Kind == KindCustom && s.Custom != nil {
		return s.Custom.CanonicalID()
	}
	return s.Kind.String()
}
