package topology

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"nocmap/internal/graph"
)

// Custom describes an arbitrary switch-level fabric: a switch count and an
// undirected link list. It is the validated, in-memory form of the custom
// topology interchange JSON; Build turns it into a routable Topology (each
// undirected link becomes two opposing directed links, matching how mesh
// edges are represented).
type Custom struct {
	// Name labels the fabric in reports; optional.
	Name string `json:"name,omitempty"`
	// Switches is the number of switches, numbered 0..Switches-1.
	Switches int `json:"switches"`
	// Links lists undirected switch pairs. Self-loops and duplicate links
	// (in either orientation) are rejected, and the fabric must be connected.
	Links [][2]int `json:"links"`
}

// ReadCustomJSON parses and validates a custom fabric description.
func ReadCustomJSON(r io.Reader) (*Custom, error) {
	var c Custom
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("topology: decode custom fabric: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// ReadCustomFile loads a custom fabric description from a JSON file.
func ReadCustomFile(path string) (*Custom, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topology: open custom fabric: %w", err)
	}
	defer f.Close()
	c, err := ReadCustomJSON(f)
	if err != nil {
		return nil, fmt.Errorf("topology: %s: %w", path, err)
	}
	return c, nil
}

// MaxSwitches bounds loadable custom fabrics. It sits far above any network
// the methodology explores (the paper's growth loop stops at 20x20 = 400
// switches) while keeping a hostile "switches" count from allocating
// unbounded adjacency and hop-table memory before validation can reject it.
const MaxSwitches = 1024

// Validate checks the fabric description: switch count within [1,
// MaxSwitches], link endpoints in range, no self-loops, no duplicate links,
// and a connected graph. The size check runs before any size-proportional
// allocation.
func (c *Custom) Validate() error {
	if c.Switches < 1 {
		return fmt.Errorf("topology: custom fabric needs >= 1 switch, got %d", c.Switches)
	}
	if c.Switches > MaxSwitches {
		return fmt.Errorf("topology: custom fabric has %d switches, limit %d", c.Switches, MaxSwitches)
	}
	if c.Switches > 1 && len(c.Links) == 0 {
		return fmt.Errorf("topology: custom fabric with %d switches has no links", c.Switches)
	}
	seen := make(map[[2]int]bool, len(c.Links))
	u := graph.NewUndirected(c.Switches)
	for i, l := range c.Links {
		a, b := l[0], l[1]
		if a < 0 || a >= c.Switches || b < 0 || b >= c.Switches {
			return fmt.Errorf("topology: custom link %d (%d,%d) out of range [0,%d)", i, a, b, c.Switches)
		}
		if a == b {
			return fmt.Errorf("topology: custom link %d is a self-loop on switch %d", i, a)
		}
		key := [2]int{a, b}
		if a > b {
			key = [2]int{b, a}
		}
		if seen[key] {
			return fmt.Errorf("topology: duplicate custom link (%d,%d)", a, b)
		}
		seen[key] = true
		if err := u.AddEdge(a, b); err != nil {
			return err
		}
	}
	if comps := u.Components(); len(comps) > 1 {
		return fmt.Errorf("topology: custom fabric is disconnected (%d components; switch %d unreachable from 0)",
			len(comps), comps[1][0])
	}
	return nil
}

// CanonicalID returns a deterministic identifier of the fabric's structure:
// "custom:" plus a digest over the switch count and the normalized, sorted
// link list. Link order, link orientation and the name do not affect it, so
// it is usable inside design digests and service cache keys.
func (c *Custom) CanonicalID() string {
	links := make([][2]int, 0, len(c.Links))
	for _, l := range c.Links {
		if l[0] > l[1] {
			l[0], l[1] = l[1], l[0]
		}
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i][0] != links[j][0] {
			return links[i][0] < links[j][0]
		}
		return links[i][1] < links[j][1]
	})
	h := sha256.New()
	fmt.Fprintf(h, "nocmap-fabric-v1\nswitches %d\n", c.Switches)
	for _, l := range links {
		fmt.Fprintf(h, "link %d %d\n", l[0], l[1])
	}
	return "custom:" + hex.EncodeToString(h.Sum(nil))[:16]
}

// Build turns the validated description into a Topology where every switch
// hosts up to coresPerSwitch cores. Hop distances are precomputed by BFS and
// the centre is the minimum-eccentricity switch (lowest ID on ties).
func (c *Custom) Build(coresPerSwitch int) (*Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if coresPerSwitch < 1 {
		return nil, fmt.Errorf("topology: coresPerSwitch %d invalid", coresPerSwitch)
	}
	n := c.Switches
	t := &Topology{
		Kind: KindCustom, Rows: 1, Cols: n,
		CoresPerSwitch: coresPerSwitch, name: c.Name,
	}
	t.g = graph.NewDirected(n)
	for _, l := range c.Links {
		for _, pair := range [][2]int{{l[0], l[1]}, {l[1], l[0]}} {
			id, err := t.g.AddArc(pair[0], pair[1])
			if err != nil {
				return nil, err
			}
			t.links = append(t.links, Link{ID: LinkID(id), From: SwitchID(pair[0]), To: SwitchID(pair[1])})
		}
	}
	t.hop = allPairsHops(t)
	t.centre = minEccentricity(t.hop)
	return t, nil
}

// allPairsHops runs one BFS per switch over the directed link graph.
func allPairsHops(t *Topology) [][]int {
	n := t.NumSwitches()
	hop := make([][]int, n)
	for src := 0; src < n; src++ {
		d := make([]int, n)
		for i := range d {
			d[i] = -1
		}
		d[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, id := range t.g.Out(v) {
				to := int(t.links[id].To)
				if d[to] < 0 {
					d[to] = d[v] + 1
					queue = append(queue, to)
				}
			}
		}
		hop[src] = d
	}
	return hop
}

// minEccentricity picks the switch whose farthest peer is nearest.
func minEccentricity(hop [][]int) SwitchID {
	best, bestEcc := 0, -1
	for s, row := range hop {
		ecc := 0
		for _, d := range row {
			if d > ecc {
				ecc = d
			}
		}
		if bestEcc < 0 || ecc < bestEcc {
			best, bestEcc = s, ecc
		}
	}
	return SwitchID(best)
}
