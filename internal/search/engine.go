// Package search is the pluggable mapping-optimizer subsystem. The paper's
// Phase 2 heuristic (internal/core) is one-shot and greedy; related work on
// mesh mapping shows metaheuristics routinely find smaller or better-loaded
// networks from the same inputs. This package defines a common Engine
// interface over the prepared use-cases, a unified cost model on top of
// core.Stats, and three engines:
//
//   - greedy:    the paper's Algorithm 2, unchanged (core.Map).
//   - anneal:    simulated annealing over core placements, re-routing and
//     re-reserving slots for every candidate via core.EvaluateFixed,
//     including attempts to shrink below the greedy mesh size.
//   - portfolio: a parallel multi-start portfolio that races the greedy
//     engine against N deterministically-seeded annealers under a shared
//     context and wall-clock budget and returns the best feasible result.
//
// The population subpackage registers three metaheuristic engines over the
// same encoding (ga, pso, abc), and the exact subpackage registers a
// branch-and-bound engine that computes provable switch-count lower bounds
// on small designs. Every future strategy plugs in by registering another
// Engine.
package search

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"nocmap/internal/core"
	"nocmap/internal/usecase"
)

// Engine is one mapping strategy. Search returns the best mapping the
// strategy found, or an error when it found none (infeasible design,
// cancelled context before any solution).
type Engine interface {
	Name() string
	Search(ctx context.Context, prep *usecase.Prepared, numCores int,
		p core.Params, opts Options) (*core.Result, error)
}

// Options tune the search engines. The zero value is not useful; start from
// DefaultOptions.
type Options struct {
	// Seed is the base PRNG seed. Every derived seed (multi-start annealers)
	// is a deterministic function of it, so a fixed Seed reproduces the run.
	Seed int64
	// Seeds is the number of multi-start annealers the portfolio launches in
	// addition to the greedy engine.
	Seeds int
	// Budget bounds the wall-clock time of the improvement phase of one
	// Search call; zero means unbounded. Engines return their best-so-far
	// when the budget expires. The constructive greedy base always runs to
	// completion (a truncated constructive pass has nothing to return), so
	// a budgeted anneal/portfolio degrades to the greedy result, never to
	// an error; only external context cancellation aborts outright.
	Budget time.Duration
	// Workers caps the goroutines of the portfolio pool (default: one per
	// job).
	Workers int
	// Iters is the number of annealing moves per start.
	Iters int
	// SpecK enables speculative move evaluation: each annealing step
	// proposes SpecK candidate moves of the current placement and scores
	// them concurrently, one per cloned evaluation session, accepting the
	// best improving candidate (with a Metropolis draw on the least-bad one
	// when nothing improves). Iters still counts candidate evaluations, so
	// runs at different SpecK spend comparable search effort. 0 and 1 run
	// the serial chain — the speculative path is never entered, and results
	// are identical to previous releases. Values above 64 are rejected:
	// past that the replay synchronization outweighs any conceivable core
	// count.
	SpecK int
	// Restarts is how many random placements the annealer tries per
	// smaller-than-greedy mesh size when probing for a feasible start.
	Restarts int
	// Population is the number of candidate placements the population-based
	// engines (ga, pso, abc) carry per generation. Zero means the engine
	// default (16).
	Population int
	// Generations is the number of evolution rounds the population-based
	// engines run per fabric. Zero means the engine default (24).
	Generations int
	// Nodes bounds the exact branch-and-bound engine's search effort in
	// weighted node units (an internal tree node costs 1 unit, a leaf
	// evaluation 100). Zero means the engine default (500000). The bound the
	// engine reports is provable at whatever depth the budget allowed.
	Nodes int
	// Weights score candidate mappings.
	Weights CostWeights
	// Progress, when set, receives streaming events while the search runs:
	// the constructive base (StageMapped), every strict improvement of an
	// annealer's incumbent (StageImproved), and the final result (StageDone).
	// The callback runs synchronously on the searching goroutine and is
	// never invoked concurrently with itself — the portfolio serializes its
	// members — so a slow callback slows the search. Progress does not
	// affect the result and is excluded from service cache keys.
	Progress func(Event)

	// base, when set, is a precomputed greedy result the annealer starts
	// from instead of running core.Map itself. The portfolio uses it to run
	// the deterministic greedy pass once for all members.
	base *core.Result
	// evals, when set, is a shared per-topology evaluator cache. The
	// portfolio hands one cache to all its annealers so the per-topology
	// precomputation (validation, flow templates, candidate-path tables)
	// happens once across the whole pool.
	evals *EvalCache
	// Board, when set, is a shared incumbent exchange: engines publish
	// strict improvements and may adopt better incumbents between phases.
	// The portfolio wires one up for its members when SpecK > 1 — the
	// exchange makes member results depend on scheduling, which the serial
	// portfolio's determinism guarantee forbids. It is exported so engine
	// subpackages (population, exact) publish to the same board when raced.
	Board *IncumbentBoard
}

// DefaultOptions returns the evaluation defaults: a modest annealing length
// that keeps D1-class designs interactive, four portfolio seeds, no budget.
func DefaultOptions() Options {
	return Options{
		Seed:     1,
		Seeds:    4,
		Iters:    120,
		Restarts: 3,
		Weights:  DefaultCostWeights(),
	}
}

// Validate rejects nonsensical option combinations.
func (o Options) Validate() error {
	switch {
	case o.Seeds < 0:
		return fmt.Errorf("search: seeds %d invalid", o.Seeds)
	case o.Iters < 0:
		return fmt.Errorf("search: iters %d invalid", o.Iters)
	case o.Restarts < 0:
		return fmt.Errorf("search: restarts %d invalid", o.Restarts)
	case o.Budget < 0:
		return fmt.Errorf("search: budget %v invalid", o.Budget)
	case o.Workers < 0:
		return fmt.Errorf("search: workers %d invalid", o.Workers)
	case o.SpecK < 0 || o.SpecK > 64:
		return fmt.Errorf("search: speculation width %d invalid (want 0..64)", o.SpecK)
	case o.Population < 0:
		return fmt.Errorf("search: population %d invalid", o.Population)
	case o.Generations < 0:
		return fmt.Errorf("search: generations %d invalid", o.Generations)
	case o.Nodes < 0:
		return fmt.Errorf("search: node budget %d invalid", o.Nodes)
	}
	return nil
}

// CostWeights combine the paper's size metric with the load statistics of
// core.Stats into one scalar objective. Switch count dominates by
// construction — a mapping on a smaller mesh always wins — with mean mesh
// hops and the worst slot-table occupancy breaking ties within one size.
type CostWeights struct {
	SwitchCount float64
	MeanHops    float64
	MaxUtil     float64
}

// DefaultCostWeights weight one saved switch above any achievable hop or
// utilization improvement (hops and utilization are bounded far below 1000
// on every mesh the growth loop visits).
func DefaultCostWeights() CostWeights {
	return CostWeights{SwitchCount: 1000, MeanHops: 1, MaxUtil: 10}
}

// Of scores a result; lower is better.
func (w CostWeights) Of(r *core.Result) float64 {
	return w.OfParts(r.Mapping.SwitchCount(), r.Stats)
}

// OfParts scores a candidate from its switch count and statistics alone.
// The annealer's incremental evaluation produces Stats without
// materializing a Result, so the move loop scores candidates through this
// form.
func (w CostWeights) OfParts(switches int, s core.Stats) float64 {
	return w.SwitchCount*float64(switches) +
		w.MeanHops*s.AvgMeshHops +
		w.MaxUtil*s.MaxLinkUtil
}

// engines is the registry; New resolves names against it. The mutex makes
// registration safe while a concurrent service resolves engines.
var (
	enginesMu sync.RWMutex
	engines   = map[string]func() Engine{
		"greedy":    func() Engine { return Greedy{} },
		"anneal":    func() Engine { return Anneal{} },
		"portfolio": func() Engine { return Portfolio{} },
	}
)

// Register adds (or replaces) an engine constructor under name. Strategies
// outside this package — and test doubles — plug into every consumer
// (nocmap, nocbench, the mapping service) by registering here.
func Register(name string, mk func() Engine) {
	enginesMu.Lock()
	defer enginesMu.Unlock()
	engines[name] = mk
}

// New returns the engine registered under name.
func New(name string) (Engine, error) {
	enginesMu.RLock()
	mk, ok := engines[name]
	enginesMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("search: unknown engine %q (have %v)", name, Names())
	}
	return mk(), nil
}

// Names lists the registered engines in sorted order.
func Names() []string {
	enginesMu.RLock()
	defer enginesMu.RUnlock()
	out := make([]string, 0, len(engines))
	for n := range engines {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
