package search

import (
	"context"
	"math"
	"math/rand"
	"slices"

	"nocmap/internal/core"
	"nocmap/internal/topology"
	"nocmap/internal/usecase"
)

// Anneal is simulated annealing over core placements. It starts from the
// greedy mapping and explores swap and relocate moves on the placement
// through a core.Session: a move tears down and re-reserves only the flows
// whose endpoints changed seats (falling back to a full configuration pass
// when the incremental order wedges), so every accepted candidate is still
// a complete, feasible multi-use-case configuration — at a fraction of the
// re-validate-and-re-configure cost the per-move core.EvaluateFixed calls
// used to pay. Beyond refining the greedy mesh, it probes smaller meshes
// the greedy constructive order could not fill, using seeded random
// restarts to find a feasible starting placement there. By construction the
// engine never returns a result worse than greedy's under the configured
// cost weights.
type Anneal struct{}

// Name implements Engine.
func (Anneal) Name() string { return "anneal" }

// Search implements Engine.
func (an Anneal) Search(ctx context.Context, prep *usecase.Prepared, numCores int,
	p core.Params, opts Options) (*core.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The greedy base is computed outside the budget: Options.Budget bounds
	// the improvement search, not feasibility, so a tight budget degrades to
	// the greedy result instead of to an error. External cancellation via
	// ctx still aborts the base — that is a hard deadline, not a budget.
	base := opts.base
	if base == nil {
		var err error
		base, err = core.MapContext(ctx, prep, numCores, p)
		if err != nil {
			return nil, err
		}
	}
	opts.emit(an.Name(), StageMapped, base)
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}
	evals := opts.evals
	if evals == nil {
		evals = NewEvalCache(prep, numCores, p)
	}
	a := &annealer{
		prep: prep, numCores: numCores, p: p, opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
		best: base, bestCost: opts.Weights.Of(base),
		evals: evals,
	}
	a.run(ctx, base)
	opts.emitCounts(an.Name(), StageDone, a.best, a.counts)
	return a.best, nil
}

// annealer carries the state of one annealing run; all randomness flows from
// the single seeded PRNG, so a fixed Options.Seed reproduces the run.
type annealer struct {
	prep     *usecase.Prepared
	numCores int
	p        core.Params
	opts     Options
	rng      *rand.Rand
	evals    *EvalCache

	best     *core.Result
	bestCost float64
	// counts accumulate the run's search effort; every emitted event carries
	// the totals so far, so observers need no hook into the move loop.
	counts Counts

	// Proposal scratch, reused across the whole run: the candidate
	// placement, the NI occupancy and the free-seat list. The session's
	// move path allocates nothing, and with these buffers neither does the
	// proposal loop around it.
	csBuf, cnBuf []int
	niLoad       []int
	freeBuf      []int
}

// ensureScratch sizes the proposal buffers for a chain on a fabric with
// numNIs network interfaces.
func (a *annealer) ensureScratch(numNIs int) {
	if a.csBuf == nil {
		a.csBuf = make([]int, a.numCores)
		a.cnBuf = make([]int, a.numCores)
	}
	if cap(a.niLoad) < numNIs {
		a.niLoad = make([]int, numNIs)
		a.freeBuf = make([]int, 0, numNIs)
	}
	a.niLoad = a.niLoad[:numNIs]
}

// run anneals the greedy solution in place, then probes every smaller mesh
// that could still hold the attached cores, largest first. Meshes at or
// above the best-known switch count are skipped: the cost weights make any
// same-or-larger mesh a guaranteed non-improvement.
func (a *annealer) run(ctx context.Context, base *core.Result) {
	a.annealFrom(ctx, base)
	attached := attachedCores(base.Mapping.CoreSwitch)
	for _, dim := range a.shrinkDims(base, len(attached)) {
		if ctx.Err() != nil {
			return
		}
		// Adopt a better incumbent from the portfolio's exchange before
		// committing restart effort: a mesh size some other member already
		// beat is not worth probing, and the adopted result seeds the
		// remaining search from the pool's best placement.
		if a.opts.Board != nil {
			if res, cost, ok := a.opts.Board.Best(); ok && cost < a.bestCost-1e-12 {
				a.best, a.bestCost = res, cost
			}
		}
		if dim.Switches() >= a.best.Mapping.SwitchCount() {
			continue
		}
		start := a.feasibleStart(ctx, dim, attached)
		if start == nil {
			continue
		}
		a.consider(start)
		a.annealFrom(ctx, start)
	}
}

// shrinkDims lists topologies smaller than the greedy solution with enough
// core seats, in descending switch count (nearest the greedy size first,
// where a feasible placement is most likely to exist). A custom fabric is a
// single fixed instance, so there is nothing to shrink to.
func (a *annealer) shrinkDims(base *core.Result, attached int) []topology.Dim {
	if !a.p.Topology.Grows() {
		return nil
	}
	baseSwitches := base.Mapping.SwitchCount()
	var dims []topology.Dim
	for _, d := range topology.GrowthSequence(a.p.MaxMeshDim) {
		if d.Switches() >= baseSwitches {
			continue
		}
		if d.Switches()*a.p.CoresPerSwitch() < attached {
			continue
		}
		dims = append(dims, d)
	}
	slices.Reverse(dims)
	return dims
}

// feasibleStart tries Options.Restarts seeded random placements on the
// given size of the configured topology family and returns the first that
// configures feasibly, or nil. The probed size is rejected up front when it
// seats fewer cores than are attached — a shrunk dim must never panic, just
// fail to produce a start.
func (a *annealer) feasibleStart(ctx context.Context, dim topology.Dim, attached []int) *core.Result {
	top, err := a.p.Topology.ForDim(dim, a.p.CoresPerSwitch())
	if err != nil {
		return nil
	}
	ev, err := a.evals.For(top)
	if err != nil {
		return nil
	}
	top = ev.Topology() // the cache's canonical instance for this shape
	numNIs := top.NumSwitches() * a.p.NIsPerSwitch
	seats := make([]int, 0, numNIs*a.p.CoresPerNI)
	for ni := 0; ni < numNIs; ni++ {
		for k := 0; k < a.p.CoresPerNI; k++ {
			seats = append(seats, ni)
		}
	}
	if len(attached) > len(seats) {
		return nil // not enough seats: the probe cannot host every core
	}
	if a.opts.SpecK > 1 {
		return a.feasibleStartSpec(ctx, ev, seats, attached)
	}
	for r := 0; r < a.opts.Restarts; r++ {
		if ctx.Err() != nil {
			return nil
		}
		a.counts.Restarts++
		a.rng.Shuffle(len(seats), func(i, j int) { seats[i], seats[j] = seats[j], seats[i] })
		cs := make([]int, a.numCores)
		cn := make([]int, a.numCores)
		for i := range cs {
			cs[i], cn[i] = -1, -1
		}
		for i, c := range attached {
			cn[c] = seats[i]
			cs[c] = seats[i] / a.p.NIsPerSwitch
		}
		res, err := ev.Evaluate(cs, cn)
		if err == nil {
			return res
		}
	}
	return nil
}

// shuffledPlacement draws one random placement of the attached cores over
// the shuffled seats (the serial restart probe's body, factored out so the
// speculative prober generates identical candidates from the chain PRNG).
func (a *annealer) shuffledPlacement(seats []int, attached []int) (cs, cn []int) {
	a.rng.Shuffle(len(seats), func(i, j int) { seats[i], seats[j] = seats[j], seats[i] })
	cs = make([]int, a.numCores)
	cn = make([]int, a.numCores)
	for i := range cs {
		cs[i], cn[i] = -1, -1
	}
	for i, c := range attached {
		cn[c] = seats[i]
		cs[c] = seats[i] / a.p.NIsPerSwitch
	}
	return cs, cn
}

// annealFrom runs one simulated-annealing chain starting at the given
// feasible result, with a geometric temperature schedule and Metropolis
// acceptance. Moves permute the placement and are scored through a
// core.Session — incremental teardown and re-reservation of the moved
// flows only — with one repair attempt (relocating a disturbed core to the
// emptiest NI) before a candidate is rejected.
func (a *annealer) annealFrom(ctx context.Context, start *core.Result) {
	attached := attachedCores(start.Mapping.CoreSwitch)
	if len(attached) < 2 || a.opts.Iters == 0 {
		return
	}
	ev, err := a.evals.For(start.Mapping.Topology)
	if err != nil {
		return
	}
	// Adopt the start's reservations instead of re-evaluating its placement:
	// constructive results are not always reproducible under fixed-placement
	// routing order, and the chain must start from the configuration the
	// incumbent actually scored.
	sess, err := ev.SessionFrom(start)
	if err != nil {
		return
	}
	switches := ev.Topology().NumSwitches()
	numNIs := switches * a.p.NIsPerSwitch
	a.ensureScratch(numNIs)
	curCost := a.opts.Weights.OfParts(switches, sess.Stats())
	// Initial temperature accepts ~5%-of-cost uphill moves; cool to 1/1000 of
	// that over the run.
	t0 := 0.05*curCost + 1e-9
	alpha := math.Pow(1e-3, 1/float64(a.opts.Iters))
	if a.opts.SpecK > 1 {
		a.annealBatch(ctx, sess, switches, attached, curCost, t0, alpha)
		return
	}
	temp := t0
	for it := 0; it < a.opts.Iters; it++ {
		if ctx.Err() != nil {
			return
		}
		a.counts.Moves++
		stats, ok := a.propose(sess, numNIs, attached)
		if !ok {
			temp *= alpha
			continue
		}
		candCost := a.opts.Weights.OfParts(switches, stats)
		delta := candCost - curCost
		if delta <= 0 || a.rng.Float64() < math.Exp(-delta/temp) {
			sess.Keep()
			a.counts.Accepted++
			curCost = candCost
			if candCost < a.bestCost-1e-12 {
				a.consider(sess.Result())
			}
		} else {
			sess.Undo()
		}
		temp *= alpha
	}
}

// propose generates one neighbouring placement (swap of two cores' seats, or
// relocation of one core to a free seat) and evaluates it incrementally on
// the session. When the configuration phase rejects the candidate — some
// use-case's flows no longer route or fit their slot tables — repair
// relocates one moved core to the emptiest NI and retries once. On success
// the move is left pending on the session (caller decides Keep/Undo);
// returns ok=false when no feasible neighbour was found.
func (a *annealer) propose(sess *core.Session, numNIs int, attached []int) (core.Stats, bool) {
	cs, cn := a.csBuf, a.cnBuf
	sess.PlacementInto(cs, cn)
	niLoad := niOccupancyInto(a.niLoad, cn)

	var moved [2]int
	// forbidden marks the repaired core's original NI on relocate moves:
	// repairing back to it would reproduce the current placement and waste a
	// configuration pass on a no-op. After a swap the other core stays
	// moved, so any repair target yields a genuine neighbour.
	forbidden := -1
	if a.rng.Float64() < 0.7 {
		// Swap two cores on different NIs.
		x := attached[a.rng.Intn(len(attached))]
		y := attached[a.rng.Intn(len(attached))]
		if x == y || cn[x] == cn[y] {
			return core.Stats{}, false
		}
		cs[x], cs[y] = cs[y], cs[x]
		cn[x], cn[y] = cn[y], cn[x]
		moved = [2]int{x, y}
	} else {
		// Relocate one core to an NI with a free seat.
		x := attached[a.rng.Intn(len(attached))]
		free := freeNIsInto(a.freeBuf[:0], niLoad, cn[x], a.p.CoresPerNI)
		a.freeBuf = free
		if len(free) == 0 {
			return core.Stats{}, false
		}
		ni := free[a.rng.Intn(len(free))]
		niLoad[cn[x]]--
		niLoad[ni]++
		forbidden = cn[x]
		cn[x] = ni
		cs[x] = ni / a.p.NIsPerSwitch
		moved = [2]int{x, x}
	}
	stats, err := sess.TryMove(cs, cn, moved[0], moved[1])
	if err == nil {
		return stats, true
	}
	// Repair: move one of the disturbed cores to the least-loaded NI and give
	// the configuration one more chance.
	x := moved[a.rng.Intn(2)]
	ni := emptiestNI(niLoad, cn[x], forbidden, a.p.CoresPerNI)
	if ni < 0 {
		return core.Stats{}, false
	}
	niLoad[cn[x]]--
	niLoad[ni]++
	cn[x] = ni
	cs[x] = ni / a.p.NIsPerSwitch
	stats, err = sess.TryMove(cs, cn, moved[0], moved[1])
	if err != nil {
		return core.Stats{}, false
	}
	return stats, true
}

// consider updates the incumbent when the candidate scores strictly better,
// emitting one StageImproved progress event per strict improvement.
func (a *annealer) consider(r *core.Result) {
	if c := a.opts.Weights.Of(r); c < a.bestCost-1e-12 {
		a.best, a.bestCost = r, c
		if a.opts.Board != nil {
			a.opts.Board.Publish(r, c)
		}
		a.opts.emitCounts("anneal", StageImproved, r, a.counts)
	}
}

// attachedCores lists the cores with an NI seat.
func attachedCores(coreSwitch []int) []int {
	var out []int
	for c, s := range coreSwitch {
		if s >= 0 {
			out = append(out, c)
		}
	}
	return out
}

// niOccupancyInto counts the cores seated on each NI into load, which fixes
// the NI count.
func niOccupancyInto(load []int, coreNI []int) []int {
	for i := range load {
		load[i] = 0
	}
	for _, ni := range coreNI {
		if ni >= 0 {
			load[ni]++
		}
	}
	return load
}

// freeNIsInto appends the NIs other than `exclude` with a free core seat to
// out.
func freeNIsInto(out []int, load []int, exclude, coresPerNI int) []int {
	for ni, n := range load {
		if ni != exclude && n < coresPerNI {
			out = append(out, ni)
		}
	}
	return out
}

// emptiestNI returns the least-loaded NI with a free seat other than the
// excluded pair, or -1.
func emptiestNI(load []int, exclude, exclude2, coresPerNI int) int {
	best, bestLoad := -1, 0
	for ni, n := range load {
		if ni == exclude || ni == exclude2 || n >= coresPerNI {
			continue
		}
		if best < 0 || n < bestLoad {
			best, bestLoad = ni, n
		}
	}
	return best
}
