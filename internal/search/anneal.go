package search

import (
	"context"
	"math"
	"math/rand"
	"slices"

	"nocmap/internal/core"
	"nocmap/internal/topology"
	"nocmap/internal/usecase"
)

// Anneal is simulated annealing over core placements. It starts from the
// greedy mapping, explores swap and relocate moves on the placement, and
// scores every candidate by re-running the full configuration phase (path
// selection plus TDMA slot reservation, core.EvaluateFixed) — so an accepted
// move is always a complete, feasible multi-use-case configuration. Beyond
// refining the greedy mesh, it probes smaller meshes the greedy constructive
// order could not fill, using seeded random restarts to find a feasible
// starting placement there. By construction the engine never returns a
// result worse than greedy's under the configured cost weights.
type Anneal struct{}

// Name implements Engine.
func (Anneal) Name() string { return "anneal" }

// Search implements Engine.
func (Anneal) Search(ctx context.Context, prep *usecase.Prepared, numCores int,
	p core.Params, opts Options) (*core.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The greedy base is computed outside the budget: Options.Budget bounds
	// the improvement search, not feasibility, so a tight budget degrades to
	// the greedy result instead of to an error. External cancellation via
	// ctx still aborts the base — that is a hard deadline, not a budget.
	base := opts.base
	if base == nil {
		var err error
		base, err = core.MapContext(ctx, prep, numCores, p)
		if err != nil {
			return nil, err
		}
	}
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}
	a := &annealer{
		prep: prep, numCores: numCores, p: p, opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
		best: base, bestCost: opts.Weights.Of(base),
	}
	a.run(ctx, base)
	return a.best, nil
}

// annealer carries the state of one annealing run; all randomness flows from
// the single seeded PRNG, so a fixed Options.Seed reproduces the run.
type annealer struct {
	prep     *usecase.Prepared
	numCores int
	p        core.Params
	opts     Options
	rng      *rand.Rand

	best     *core.Result
	bestCost float64
}

// run anneals the greedy solution in place, then probes every smaller mesh
// that could still hold the attached cores, largest first. Meshes at or
// above the best-known switch count are skipped: the cost weights make any
// same-or-larger mesh a guaranteed non-improvement.
func (a *annealer) run(ctx context.Context, base *core.Result) {
	a.annealFrom(ctx, base)
	attached := attachedCores(base.Mapping.CoreSwitch)
	for _, dim := range a.shrinkDims(base, len(attached)) {
		if ctx.Err() != nil {
			return
		}
		if dim.Switches() >= a.best.Mapping.SwitchCount() {
			continue
		}
		start := a.feasibleStart(ctx, dim, attached)
		if start == nil {
			continue
		}
		a.consider(start)
		a.annealFrom(ctx, start)
	}
}

// shrinkDims lists topologies smaller than the greedy solution with enough
// core seats, in descending switch count (nearest the greedy size first,
// where a feasible placement is most likely to exist). A custom fabric is a
// single fixed instance, so there is nothing to shrink to.
func (a *annealer) shrinkDims(base *core.Result, attached int) []topology.Dim {
	if !a.p.Topology.Grows() {
		return nil
	}
	baseSwitches := base.Mapping.SwitchCount()
	var dims []topology.Dim
	for _, d := range topology.GrowthSequence(a.p.MaxMeshDim) {
		if d.Switches() >= baseSwitches {
			continue
		}
		if d.Switches()*a.p.CoresPerSwitch() < attached {
			continue
		}
		dims = append(dims, d)
	}
	slices.Reverse(dims)
	return dims
}

// feasibleStart tries Options.Restarts seeded random placements on the
// given size of the configured topology family and returns the first that
// configures feasibly, or nil.
func (a *annealer) feasibleStart(ctx context.Context, dim topology.Dim, attached []int) *core.Result {
	top, err := a.p.Topology.ForDim(dim, a.p.CoresPerSwitch())
	if err != nil {
		return nil
	}
	numNIs := top.NumSwitches() * a.p.NIsPerSwitch
	seats := make([]int, 0, numNIs*a.p.CoresPerNI)
	for ni := 0; ni < numNIs; ni++ {
		for k := 0; k < a.p.CoresPerNI; k++ {
			seats = append(seats, ni)
		}
	}
	for r := 0; r < a.opts.Restarts; r++ {
		if ctx.Err() != nil {
			return nil
		}
		a.rng.Shuffle(len(seats), func(i, j int) { seats[i], seats[j] = seats[j], seats[i] })
		cs := make([]int, a.numCores)
		cn := make([]int, a.numCores)
		for i := range cs {
			cs[i], cn[i] = -1, -1
		}
		for i, c := range attached {
			cn[c] = seats[i]
			cs[c] = seats[i] / a.p.NIsPerSwitch
		}
		res, err := core.EvaluateFixed(a.prep, a.numCores, top, cs, cn, a.p)
		if err == nil {
			return res
		}
	}
	return nil
}

// annealFrom runs one simulated-annealing chain starting at the given
// feasible result, with a geometric temperature schedule and Metropolis
// acceptance. Moves permute the placement; every candidate is re-configured
// from scratch, and an infeasible candidate goes through one repair attempt
// before being rejected.
func (a *annealer) annealFrom(ctx context.Context, start *core.Result) {
	attached := attachedCores(start.Mapping.CoreSwitch)
	if len(attached) < 2 || a.opts.Iters == 0 {
		return
	}
	cur := start
	curCost := a.opts.Weights.Of(cur)
	// Initial temperature accepts ~5%-of-cost uphill moves; cool to 1/1000 of
	// that over the run.
	t0 := 0.05*curCost + 1e-9
	alpha := math.Pow(1e-3, 1/float64(a.opts.Iters))
	temp := t0
	for it := 0; it < a.opts.Iters; it++ {
		if ctx.Err() != nil {
			return
		}
		cand := a.propose(cur, attached)
		if cand == nil {
			temp *= alpha
			continue
		}
		candCost := a.opts.Weights.Of(cand)
		delta := candCost - curCost
		if delta <= 0 || a.rng.Float64() < math.Exp(-delta/temp) {
			cur, curCost = cand, candCost
			a.consider(cand)
		}
		temp *= alpha
	}
}

// propose generates one neighbouring placement (swap of two cores' seats, or
// relocation of one core to a free seat) and evaluates it. When the
// configuration phase rejects the candidate — some use-case's flows no
// longer route or fit their slot tables — repair relocates one moved core to
// the emptiest NI and retries once. Returns nil when no feasible neighbour
// was found.
func (a *annealer) propose(cur *core.Result, attached []int) *core.Result {
	m := cur.Mapping
	cs := append([]int(nil), m.CoreSwitch...)
	cn := append([]int(nil), m.CoreNI...)
	niLoad := niOccupancy(cn, m.Topology.NumSwitches()*a.p.NIsPerSwitch)

	var moved [2]int
	// forbidden marks the repaired core's original NI on relocate moves:
	// repairing back to it would reproduce the current placement and waste a
	// full configuration pass on a no-op. After a swap the other core stays
	// moved, so any repair target yields a genuine neighbour.
	forbidden := -1
	if a.rng.Float64() < 0.7 {
		// Swap two cores on different NIs.
		x := attached[a.rng.Intn(len(attached))]
		y := attached[a.rng.Intn(len(attached))]
		if x == y || cn[x] == cn[y] {
			return nil
		}
		cs[x], cs[y] = cs[y], cs[x]
		cn[x], cn[y] = cn[y], cn[x]
		moved = [2]int{x, y}
	} else {
		// Relocate one core to an NI with a free seat.
		x := attached[a.rng.Intn(len(attached))]
		free := freeNIs(niLoad, cn[x], a.p.CoresPerNI)
		if len(free) == 0 {
			return nil
		}
		ni := free[a.rng.Intn(len(free))]
		niLoad[cn[x]]--
		niLoad[ni]++
		forbidden = cn[x]
		cn[x] = ni
		cs[x] = ni / a.p.NIsPerSwitch
		moved = [2]int{x, x}
	}
	res, err := core.EvaluateFixed(a.prep, a.numCores, m.Topology, cs, cn, a.p)
	if err == nil {
		return res
	}
	// Repair: move one of the disturbed cores to the least-loaded NI and give
	// the configuration one more chance.
	x := moved[a.rng.Intn(2)]
	ni := emptiestNI(niLoad, cn[x], forbidden, a.p.CoresPerNI)
	if ni < 0 {
		return nil
	}
	niLoad[cn[x]]--
	niLoad[ni]++
	cn[x] = ni
	cs[x] = ni / a.p.NIsPerSwitch
	res, err = core.EvaluateFixed(a.prep, a.numCores, m.Topology, cs, cn, a.p)
	if err != nil {
		return nil
	}
	return res
}

// consider updates the incumbent when the candidate scores strictly better.
func (a *annealer) consider(r *core.Result) {
	if c := a.opts.Weights.Of(r); c < a.bestCost-1e-12 {
		a.best, a.bestCost = r, c
	}
}

// attachedCores lists the cores with an NI seat.
func attachedCores(coreSwitch []int) []int {
	var out []int
	for c, s := range coreSwitch {
		if s >= 0 {
			out = append(out, c)
		}
	}
	return out
}

// niOccupancy counts the cores seated on each NI.
func niOccupancy(coreNI []int, numNIs int) []int {
	load := make([]int, numNIs)
	for _, ni := range coreNI {
		if ni >= 0 {
			load[ni]++
		}
	}
	return load
}

// freeNIs lists the NIs other than `exclude` with a free core seat.
func freeNIs(load []int, exclude, coresPerNI int) []int {
	var out []int
	for ni, n := range load {
		if ni != exclude && n < coresPerNI {
			out = append(out, ni)
		}
	}
	return out
}

// emptiestNI returns the least-loaded NI with a free seat other than the
// excluded pair, or -1.
func emptiestNI(load []int, exclude, exclude2, coresPerNI int) int {
	best, bestLoad := -1, 0
	for ni, n := range load {
		if ni == exclude || ni == exclude2 || n >= coresPerNI {
			continue
		}
		if best < 0 || n < bestLoad {
			best, bestLoad = ni, n
		}
	}
	return best
}
