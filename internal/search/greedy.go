package search

import (
	"context"

	"nocmap/internal/core"
	"nocmap/internal/usecase"
)

// Greedy wraps the paper's Algorithm 2 (core.Map) behind the Engine
// interface. It is the portfolio's safety net: deterministic, fast, and the
// baseline every metaheuristic engine must beat or match.
type Greedy struct{}

// Name implements Engine.
func (Greedy) Name() string { return "greedy" }

// Search implements Engine by running the constructive heuristic once.
// External cancellation (a caller deadline, a disconnected service client)
// is observed between mesh sizes of the growth loop (core.MapContext).
// Options.Budget deliberately does not apply here: greedy has no
// best-so-far to salvage from a truncated constructive pass, so a budget
// would only turn "slow" into "no result". Budgets bound the improvement
// engines built on top (anneal, portfolio), which fall back to this
// engine's completed result.
func (g Greedy) Search(ctx context.Context, prep *usecase.Prepared, numCores int,
	p core.Params, opts Options) (*core.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	res, err := core.MapContext(ctx, prep, numCores, p)
	if err != nil {
		return nil, err
	}
	o := opts
	o.Seed = 0 // deterministic: no PRNG stream to report
	o.emit(g.Name(), StageDone, res)
	return res, nil
}
