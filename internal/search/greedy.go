package search

import (
	"context"

	"nocmap/internal/core"
	"nocmap/internal/usecase"
)

// Greedy wraps the paper's Algorithm 2 (core.Map) behind the Engine
// interface. It is the portfolio's safety net: deterministic, fast, and the
// baseline every metaheuristic engine must beat or match.
type Greedy struct{}

// Name implements Engine.
func (Greedy) Name() string { return "greedy" }

// Search implements Engine by running the constructive heuristic once. The
// context is only consulted up front — one greedy pass is the smallest unit
// of work in this subsystem.
func (Greedy) Search(ctx context.Context, prep *usecase.Prepared, numCores int,
	p core.Params, opts Options) (*core.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return core.Map(prep, numCores, p)
}
