package search

import (
	"context"
	"sync"

	"nocmap/internal/core"
	"nocmap/internal/usecase"
)

// Portfolio runs the greedy engine once and races Options.Seeds
// deterministically-seeded annealers (all starting from the greedy result)
// on a shared worker pool, returning the best feasible result under the
// cost weights. All workers observe one context: external cancellation and
// the wall-clock budget stop the whole portfolio, with each annealer
// contributing its best-so-far. Ties break toward the greedy base, then the
// lowest-numbered annealer, so with a fixed base seed and no budget the
// outcome is independent of goroutine scheduling.
type Portfolio struct{}

// Name implements Engine.
func (Portfolio) Name() string { return "portfolio" }

// job is one engine run of the portfolio.
type job struct {
	order  int
	engine Engine
	opts   Options
}

// Search implements Engine.
func (Portfolio) Search(ctx context.Context, prep *usecase.Prepared, numCores int,
	p core.Params, opts Options) (*core.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// The greedy pass is deterministic, so it runs once up front — outside
	// the budget, so even a budget too tight for any annealing still yields
	// the feasible greedy result. The annealers all start from its result;
	// if greedy finds no mapping the annealers cannot either, since they
	// explore from the greedy solution.
	base, err := Greedy{}.Search(ctx, prep, numCores, p, opts)
	if err != nil {
		return nil, err
	}
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}

	// The member annealers run without their own budget (the shared context
	// carries it) and with derived seeds.
	var jobs []job
	for i := 0; i < opts.Seeds; i++ {
		o := opts
		o.Budget = 0
		o.Seed = opts.Seed + int64(i)*7919 // distinct deterministic streams
		o.base = base
		jobs = append(jobs, job{order: i + 1, engine: Anneal{}, opts: o})
	}

	workers := opts.Workers
	if workers <= 0 || workers > len(jobs) {
		workers = len(jobs)
	}
	type outcome struct {
		order int
		res   *core.Result
		err   error
	}
	results := make([]outcome, len(jobs))
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				j := jobs[i]
				res, err := j.engine.Search(ctx, prep, numCores, p, j.opts)
				results[i] = outcome{order: j.order, res: res, err: err}
			}
		}()
	}
	for i := range jobs {
		queue <- i
	}
	close(queue)
	wg.Wait()

	best, bestCost, bestOrder := base, opts.Weights.Of(base), 0
	for _, o := range results {
		if o.err != nil {
			continue // the greedy base already guarantees a feasible result
		}
		c := opts.Weights.Of(o.res)
		if c < bestCost-1e-12 || (c < bestCost+1e-12 && o.order < bestOrder) {
			best, bestCost, bestOrder = o.res, c, o.order
		}
	}
	return best, nil
}
