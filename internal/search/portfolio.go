package search

import (
	"context"
	"sync"

	"nocmap/internal/core"
	"nocmap/internal/usecase"
)

// Portfolio runs the greedy engine once and races Options.Seeds
// deterministically-seeded annealers (all starting from the greedy result)
// on a shared worker pool, returning the best feasible result under the
// cost weights. All workers observe one context: external cancellation and
// the wall-clock budget stop the whole portfolio, with each annealer
// contributing its best-so-far. Ties break toward the greedy base, then the
// lowest-numbered annealer, so with a fixed base seed and no budget the
// outcome is independent of goroutine scheduling.
type Portfolio struct{}

// Name implements Engine.
func (Portfolio) Name() string { return "portfolio" }

// job is one engine run of the portfolio.
type job struct {
	order  int
	engine Engine
	opts   Options
}

// Search implements Engine.
func (pf Portfolio) Search(ctx context.Context, prep *usecase.Prepared, numCores int,
	p core.Params, opts Options) (*core.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// The greedy pass is deterministic, so it runs once up front — outside
	// the budget, so even a budget too tight for any annealing still yields
	// the feasible greedy result. The annealers all start from its result;
	// if greedy finds no mapping the annealers cannot either, since they
	// explore from the greedy solution.
	// One serialized progress callback is shared by the base run and every
	// member annealer, so the caller's callback never runs concurrently with
	// itself no matter how the pool schedules.
	opts.Progress = serializedProgress(opts.Progress)
	baseOpts := opts
	baseOpts.Progress = nil // the base is re-announced by each member's StageMapped
	base, err := Greedy{}.Search(ctx, prep, numCores, p, baseOpts)
	if err != nil {
		return nil, err
	}
	opts.emit(pf.Name(), StageMapped, base)
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}

	// The member annealers run without their own budget (the shared context
	// carries it), with derived seeds, and against one shared evaluator
	// cache: the per-topology precomputation (validation, flow templates,
	// candidate-path tables) is paid once for the whole pool instead of
	// once per member.
	evals := NewEvalCache(prep, numCores, p)
	// With speculation on, members collaborate through a shared incumbent
	// exchange: strict improvements are published as they happen, and each
	// member adopts the pool's best before probing smaller fabrics, so
	// restarts seed from good placements instead of re-exploring sizes the
	// pool already beat. The exchange trades the serial portfolio's
	// scheduling-independence for cross-member pruning, so it is wired up
	// only when the caller opted into speculation.
	var board *IncumbentBoard
	if opts.SpecK > 1 {
		board = &IncumbentBoard{}
		board.Publish(base, opts.Weights.Of(base))
	}
	var jobs []job
	for i := 0; i < opts.Seeds; i++ {
		o := opts
		o.Budget = 0
		o.Seed = opts.Seed + int64(i)*7919 // distinct deterministic streams
		o.base = base
		o.evals = evals
		o.Board = board
		jobs = append(jobs, job{order: i + 1, engine: Anneal{}, opts: o})
	}

	// Zero and over-large Workers values clamp to one goroutine per job.
	workers := opts.Workers
	if workers <= 0 || workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]outcome, len(jobs))
	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				j := jobs[i]
				res, err := j.engine.Search(ctx, prep, numCores, p, j.opts)
				results[i] = outcome{order: j.order, res: res, err: err}
			}
		}()
	}
	for i := range jobs {
		queue <- i
	}
	close(queue)
	wg.Wait()

	best := pickBest(base, results, opts.Weights)
	opts.emit(pf.Name(), StageDone, best)
	return best, nil
}

// outcome is one member's finished run, tagged with its deterministic order
// (0 is reserved for the greedy base).
type outcome struct {
	order int
	res   *core.Result
	err   error
}

// pickBest selects the portfolio winner: the lowest-cost feasible result,
// with ties (within the float tolerance) breaking toward the greedy base
// and then the lowest-numbered annealer — so a fixed base seed yields one
// outcome regardless of goroutine scheduling.
func pickBest(base *core.Result, results []outcome, w CostWeights) *core.Result {
	best, bestCost, bestOrder := base, w.Of(base), 0
	for _, o := range results {
		if o.err != nil || o.res == nil {
			continue // the greedy base already guarantees a feasible result
		}
		c := w.Of(o.res)
		if c < bestCost-1e-12 || (c < bestCost+1e-12 && o.order < bestOrder) {
			best, bestCost, bestOrder = o.res, c, o.order
		}
	}
	return best
}
