package search

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"nocmap/internal/core"
)

// Speculative move evaluation. A serial annealing chain scores one
// candidate placement per step; with Options.SpecK = K > 1 the annealer
// instead proposes K candidate moves of the current placement and scores
// them concurrently, one per cloned core.Session, then accepts the best
// improving candidate (or puts the least-bad one through a single
// Metropolis draw). All K sessions are kept in lockstep: after a batch
// commits, the losers replay the winning move — a deterministic re-route,
// since every session holds the identical configuration.
//
// Candidate generation stays serial and draws only from the chain's seeded
// PRNG before any evaluation starts, so a run's trajectory depends only on
// (Seed, SpecK, Iters) — never on goroutine scheduling. Iters counts
// candidate evaluations, not batches, so serial and speculative runs of
// the same Iters spend comparable search effort.

// candKind discriminates the two neighbourhood moves.
type candKind int

const (
	candSwap  candKind = iota // two cores exchange seats
	candReloc                 // one core relocates to a free seat
)

// specCand is one speculative move proposal: a pure description of the
// placement perturbation, generated from the chain PRNG against the
// current placement, with every random choice the evaluation could need
// (including the repair pick) pre-drawn so workers never touch the PRNG.
type specCand struct {
	valid      bool
	kind       candKind
	x, y       int // swap partners (swap)
	ni         int // relocation target seat (reloc)
	repairPick int // which disturbed core the repair relocates (0 or 1)
}

// specResult is one worker's verdict on its candidate.
type specResult struct {
	ok    bool
	stats core.Stats
	cost  float64
}

// specWorker owns one cloned session and the buffers to evaluate one
// candidate per batch on it.
type specWorker struct {
	sess   *core.Session
	cs, cn []int
	niLoad []int
	moved  [2]int
}

func newSpecWorker(sess *core.Session, numCores, numNIs int) *specWorker {
	return &specWorker{
		sess:   sess,
		cs:     make([]int, numCores),
		cn:     make([]int, numCores),
		niLoad: make([]int, numNIs),
	}
}

// evaluate scores one candidate on the worker's session: apply the
// perturbation, TryMove, and on rejection repair once (relocate the
// pre-picked disturbed core to the emptiest NI) — the same policy as the
// serial chain's propose. On ok the move is left pending on the session
// for the selection step to Keep or Undo.
func (w *specWorker) evaluate(a *annealer, switches int, cand specCand) specResult {
	w.sess.PlacementInto(w.cs, w.cn)
	cs, cn := w.cs, w.cn
	forbidden := -1
	switch cand.kind {
	case candSwap:
		cs[cand.x], cs[cand.y] = cs[cand.y], cs[cand.x]
		cn[cand.x], cn[cand.y] = cn[cand.y], cn[cand.x]
		w.moved = [2]int{cand.x, cand.y}
	case candReloc:
		forbidden = cn[cand.x]
		cn[cand.x] = cand.ni
		cs[cand.x] = cand.ni / a.p.NIsPerSwitch
		w.moved = [2]int{cand.x, cand.x}
	}
	stats, err := w.sess.TryMove(cs, cn, w.moved[0], w.moved[1])
	if err != nil {
		x := w.moved[cand.repairPick]
		niLoad := niOccupancyInto(w.niLoad, cn)
		ni := emptiestNI(niLoad, cn[x], forbidden, a.p.CoresPerNI)
		if ni < 0 {
			return specResult{}
		}
		cn[x] = ni
		cs[x] = ni / a.p.NIsPerSwitch
		stats, err = w.sess.TryMove(cs, cn, w.moved[0], w.moved[1])
		if err != nil {
			return specResult{}
		}
	}
	return specResult{ok: true, stats: stats, cost: a.opts.Weights.OfParts(switches, stats)}
}

// generateCand draws one move proposal from the chain PRNG against the
// current placement (cs/cn/niLoad are the batch-shared snapshots). The
// draw structure mirrors the serial propose, plus one pre-drawn repair
// pick per proposal so the concurrent evaluations stay PRNG-free.
func (a *annealer) generateCand(cn, niLoad []int, attached []int) specCand {
	if a.rng.Float64() < 0.7 {
		x := attached[a.rng.Intn(len(attached))]
		y := attached[a.rng.Intn(len(attached))]
		pick := a.rng.Intn(2)
		if x == y || cn[x] == cn[y] {
			return specCand{}
		}
		return specCand{valid: true, kind: candSwap, x: x, y: y, repairPick: pick}
	}
	x := attached[a.rng.Intn(len(attached))]
	free := freeNIsInto(a.freeBuf[:0], niLoad, cn[x], a.p.CoresPerNI)
	a.freeBuf = free
	if len(free) == 0 {
		return specCand{}
	}
	ni := free[a.rng.Intn(len(free))]
	pick := a.rng.Intn(2)
	return specCand{valid: true, kind: candReloc, x: x, ni: ni, repairPick: pick}
}

// annealBatch is the speculative counterpart of the serial move loop in
// annealFrom: batches of up to SpecK candidates, evaluated concurrently on
// cloned sessions, best-improving acceptance with a Metropolis fallback.
// sess arrives positioned at the chain's start and becomes worker 0's
// session.
func (a *annealer) annealBatch(ctx context.Context, sess *core.Session, switches int, attached []int, curCost, t0, alpha float64) {
	K := a.opts.SpecK
	workers := make([]*specWorker, K)
	workers[0] = newSpecWorker(sess, a.numCores, len(a.niLoad))
	for i := 1; i < K; i++ {
		c, err := sess.Clone()
		if err != nil {
			return
		}
		workers[i] = newSpecWorker(c, a.numCores, len(a.niLoad))
	}
	cands := make([]specCand, K)
	results := make([]specResult, K)
	temp := t0
	for done := 0; done < a.opts.Iters; {
		if ctx.Err() != nil {
			break
		}
		batch := min(K, a.opts.Iters-done)
		done += batch

		// Generation: serial, PRNG-driven, against the shared current
		// placement (all sessions are in lockstep — worker 0 is as good a
		// source as any).
		workers[0].sess.PlacementInto(a.csBuf, a.cnBuf)
		niLoad := niOccupancyInto(a.niLoad, a.cnBuf)
		for k := 0; k < batch; k++ {
			cands[k] = a.generateCand(a.cnBuf, niLoad, attached)
		}
		a.counts.Moves += int64(batch)
		a.counts.Speculated += int64(batch)

		// Evaluation: one candidate per cloned session, concurrently. A
		// worker that sees the context cancelled reports a miss without
		// touching its session, so the lockstep invariant survives
		// mid-batch cancellation.
		var wg sync.WaitGroup
		for k := 0; k < batch; k++ {
			results[k] = specResult{}
			if !cands[k].valid {
				continue
			}
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				if ctx.Err() != nil {
					return
				}
				results[k] = workers[k].evaluate(a, switches, cands[k])
			}(k)
		}
		wg.Wait()

		// Selection: the best-scoring feasible candidate, ties toward the
		// lowest index (the candidate the serial chain would have met
		// first). An improving winner is accepted outright; a worsening
		// one gets the chain's single Metropolis draw.
		bestK := -1
		for k := 0; k < batch; k++ {
			if results[k].ok && (bestK < 0 || results[k].cost < results[bestK].cost-1e-12) {
				bestK = k
			}
		}
		accept := false
		if bestK >= 0 {
			delta := results[bestK].cost - curCost
			accept = delta <= 0 || a.rng.Float64() < math.Exp(-delta/temp)
		}
		if accept {
			winner := workers[bestK]
			winner.sess.Keep()
			a.syncLosers(workers, results, batch, bestK)
			curCost = results[bestK].cost
			a.counts.Accepted++
			a.counts.SpecAccepted++
			if curCost < a.bestCost-1e-12 {
				a.consider(winner.sess.Result())
			}
		} else {
			for k := 0; k < batch; k++ {
				if results[k].ok {
					workers[k].sess.Undo()
				}
			}
		}
		// The serial chain cools once per candidate; one batch is `batch`
		// candidates' worth of schedule.
		temp *= math.Pow(alpha, float64(batch))
	}
	// Leave no move pending on the chain's primary session (worker 0 owns
	// the caller's sess): every path above Keeps or Undoes before looping,
	// so this is already true; stated for the reader.
}

// syncLosers restores lockstep after a committed batch: every session but
// the winner's undoes its own pending candidate and replays the winning
// move. The replay is a deterministic re-route of identical state, so it
// cannot fail; if it ever does, the session is replaced by a fresh clone
// of the winner rather than left diverged.
func (a *annealer) syncLosers(workers []*specWorker, results []specResult, batch, bestK int) {
	winner := workers[bestK]
	for k, w := range workers {
		if k == bestK {
			continue
		}
		if k < batch && results[k].ok {
			w.sess.Undo()
		}
		if _, err := w.sess.TryMove(winner.cs, winner.cn, winner.moved[0], winner.moved[1]); err == nil {
			w.sess.Keep()
			continue
		}
		if c, err := winner.sess.Clone(); err == nil {
			w.sess = c
		}
	}
}

// feasibleStartSpec is the speculative restart prober: it draws the same
// shuffled placements the serial prober would, in waves of SpecK, scores
// each wave concurrently (core.Evaluator is safe for concurrent use) and
// returns the lowest-indexed feasible probe — the one the serial prober
// would have returned had it evaluated that far.
func (a *annealer) feasibleStartSpec(ctx context.Context, ev *core.Evaluator, seats []int, attached []int) *core.Result {
	type probe struct{ cs, cn []int }
	probes := make([]probe, a.opts.SpecK)
	results := make([]*core.Result, a.opts.SpecK)
	for r := 0; r < a.opts.Restarts; {
		if ctx.Err() != nil {
			return nil
		}
		wave := min(a.opts.SpecK, a.opts.Restarts-r)
		r += wave
		for i := 0; i < wave; i++ {
			a.counts.Restarts++
			probes[i].cs, probes[i].cn = a.shuffledPlacement(seats, attached)
			results[i] = nil
		}
		var wg sync.WaitGroup
		for i := 0; i < wave; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if ctx.Err() != nil {
					return
				}
				if res, err := ev.Evaluate(probes[i].cs, probes[i].cn); err == nil {
					results[i] = res
				}
			}(i)
		}
		wg.Wait()
		for i := 0; i < wave; i++ {
			if results[i] != nil {
				return results[i]
			}
		}
	}
	return nil
}

// IncumbentBoard is a shared best-so-far exchange: engines publish strict
// improvements and adopt the pool's best between phases. Publication is a
// compare-and-swap loop on an atomic pointer — lock-free, safe from any
// number of workers. The portfolio wires one up for its speculative
// members; engine subpackages publish to Options.Board when one is set.
type IncumbentBoard struct {
	best atomic.Pointer[incumbent]
}

// incumbent is one published result with its score under the portfolio's
// cost weights.
type incumbent struct {
	res  *core.Result
	cost float64
}

// Publish installs the result if it is strictly better (beyond the float
// tolerance) than the current incumbent. Returns whether it won.
func (b *IncumbentBoard) Publish(r *core.Result, cost float64) bool {
	for {
		cur := b.best.Load()
		if cur != nil && cost >= cur.cost-1e-12 {
			return false
		}
		if b.best.CompareAndSwap(cur, &incumbent{res: r, cost: cost}) {
			return true
		}
	}
}

// Best returns the current incumbent and its cost; ok is false when nothing
// was published yet.
func (b *IncumbentBoard) Best() (r *core.Result, cost float64, ok bool) {
	cur := b.best.Load()
	if cur == nil {
		return nil, 0, false
	}
	return cur.res, cur.cost, true
}
