package search

import (
	"sync"

	"nocmap/internal/core"
	"nocmap/internal/topology"
	"nocmap/internal/usecase"
)

// EvalCache shares one core.Evaluator per topology across a search. A
// single annealer reuses the evaluator between its move chain and its
// shrink probes on the same fabric; the portfolio shares one cache across
// every member, so N annealers probing the same smaller mesh build its
// validation, flow templates and candidate-path tables once. Evaluators are
// safe for concurrent use, so handing one to multiple workers is sound.
// Engine subpackages (population, exact) build their own cache per Search
// call through NewEvalCache.
type EvalCache struct {
	prep     *usecase.Prepared
	numCores int
	p        core.Params

	mu sync.Mutex
	m  map[string]*core.Evaluator
}

// NewEvalCache returns an empty evaluator cache over the prepared design.
func NewEvalCache(prep *usecase.Prepared, numCores int, p core.Params) *EvalCache {
	return &EvalCache{prep: prep, numCores: numCores, p: p, m: make(map[string]*core.Evaluator)}
}

// For returns the cached evaluator for the topology, constructing it on
// first use. Topologies are keyed by their description (family plus
// dimensions, or the custom fabric's name), so shape-equal instances built
// by different workers share one evaluator; callers must use the returned
// evaluator's Topology() rather than their own instance.
func (c *EvalCache) For(top *topology.Topology) (*core.Evaluator, error) {
	key := top.String()
	c.mu.Lock()
	defer c.mu.Unlock()
	if ev, ok := c.m[key]; ok {
		return ev, nil
	}
	ev, err := core.NewEvaluator(c.prep, c.numCores, top, c.p)
	if err != nil {
		return nil, err
	}
	c.m[key] = ev
	return ev, nil
}
