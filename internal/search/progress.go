package search

import (
	"sync"

	"nocmap/internal/core"
)

// Stage identifies what a progress Event reports.
type Stage string

// Progress stages, in the order one engine run emits them.
const (
	// StageMapped announces the constructive base mapping an improvement
	// engine starts from (the greedy result, or a feasible placement found on
	// a probed smaller fabric).
	StageMapped Stage = "mapped"
	// StageImproved announces a new best-so-far under the cost weights.
	// Every strict improvement of an annealer's incumbent emits exactly one
	// event with this stage.
	StageImproved Stage = "improved"
	// StageDone announces the engine's final result.
	StageDone Stage = "done"
)

// Event is one progress notification from a running engine. Options.Progress
// receives events synchronously from the goroutine performing the search;
// the portfolio serializes its members' callbacks, so a callback never runs
// concurrently with itself.
type Event struct {
	// Engine names the emitting engine ("greedy", "anneal", "portfolio").
	// Portfolio members report as "anneal" with their derived Seed, followed
	// by one final "portfolio" StageDone event for the pool's winner.
	Engine string `json:"engine"`
	Stage  Stage  `json:"stage"`
	// Seed is the PRNG seed of the emitting annealer (0 for deterministic
	// engines), distinguishing portfolio members.
	Seed int64 `json:"seed,omitempty"`
	// Switches and Dim describe the candidate's fabric size.
	Switches int    `json:"switches"`
	Dim      string `json:"dim"`
	// Cost is the candidate's score under the configured cost weights
	// (lower is better).
	Cost float64 `json:"cost"`
	// LowerBound is a provable lower bound on the switch count of any
	// feasible mapping of the design: the exact engine's branch-and-bound
	// bound when the result carries one, otherwise the seat bound (every
	// attached core needs an NI seat). Always at least 1 on events carrying
	// a result.
	LowerBound int `json:"lower_bound,omitempty"`
	// Gap is the relative optimality gap of the candidate,
	// (Switches - LowerBound) / LowerBound. Zero means the candidate is
	// proven optimal in switch count when the bound is exact, or merely
	// matches the weak seat bound otherwise.
	Gap float64 `json:"gap"`
	// BoundExact reports that LowerBound came from a completed exact search
	// rather than the seat heuristic.
	BoundExact bool `json:"bound_exact,omitempty"`
	// Stats are the candidate's load statistics.
	Stats core.Stats `json:"stats"`
	// Counts are the emitting engine's cumulative search-effort counters at
	// the time of the event; deterministic engines report zeros. They ride
	// on the events so observers (the service's metrics layer, the CLI) see
	// search effort without any engine-side hook beyond this plumbing.
	Counts

	// Result is the engine's incumbent snapshot at the event: a fully
	// materialized result, safe to retain past the callback (the annealer's
	// Session.Result copies every reservation out of the session's recycled
	// buffers). It never serializes — wire consumers receive the summarized
	// form — and is what lets the mapping service turn progress events into
	// servable anytime results.
	Result *core.Result `json:"-"`
}

// Counts are cumulative search-effort counters for one engine run: candidate
// placements evaluated (Moves), candidates kept by the acceptance rule
// (Accepted), and random-restart placements probed on shrunk fabrics
// (Restarts). Speculative runs (Options.SpecK > 1) additionally report the
// candidates evaluated in speculative batches (Speculated) and the batches
// that committed a candidate (SpecAccepted) — their ratio is the
// speculation hit rate.
type Counts struct {
	Moves        int64 `json:"moves,omitempty"`
	Accepted     int64 `json:"accepted,omitempty"`
	Restarts     int64 `json:"restarts,omitempty"`
	Speculated   int64 `json:"speculated,omitempty"`
	SpecAccepted int64 `json:"spec_accepted,omitempty"`
}

// emit delivers an event for the given result when a progress callback is
// configured.
func (o Options) emit(engine string, stage Stage, r *core.Result) {
	o.Emit(engine, stage, r, Counts{})
}

// emitCounts is emit with the engine's cumulative effort counters attached.
func (o Options) emitCounts(engine string, stage Stage, r *core.Result, c Counts) {
	o.Emit(engine, stage, r, c)
}

// Emit delivers a progress event for the given result with the engine's
// cumulative effort counters attached; a nil callback or result is a no-op.
// It is exported for engine implementations outside this package (the
// population and exact subpackages), which must report through the same
// event stream the in-package engines use.
func (o Options) Emit(engine string, stage Stage, r *core.Result, c Counts) {
	if o.Progress == nil || r == nil {
		return
	}
	lb, exact := BoundOf(r)
	o.Progress(Event{
		Engine:     engine,
		Stage:      stage,
		Seed:       o.Seed,
		Switches:   r.Mapping.SwitchCount(),
		Dim:        r.Dim().String(),
		Cost:       o.Weights.Of(r),
		LowerBound: lb,
		Gap:        Gap(r.Mapping.SwitchCount(), lb),
		BoundExact: exact,
		Stats:      r.Stats,
		Counts:     c,
		Result:     r,
	})
}

// BoundOf resolves the switch-count lower bound a result reports: the exact
// engine's branch-and-bound bound when the result carries one, otherwise
// the mapping's seat bound. The second return reports whether the bound is
// exact (proven tight by a completed exact search).
func BoundOf(r *core.Result) (lb int, exact bool) {
	if r.LowerBoundSwitches > 0 {
		return r.LowerBoundSwitches, r.LowerBoundExact
	}
	return r.Mapping.SeatLowerBound(), false
}

// Gap is the relative optimality gap of a candidate with the given switch
// count against a lower bound: (switches - lb) / lb, clamped at zero. A
// non-positive bound yields zero (no meaningful gap).
func Gap(switches, lb int) float64 {
	if lb <= 0 || switches <= lb {
		return 0
	}
	return float64(switches-lb) / float64(lb)
}

// serializedProgress wraps a progress callback so concurrent emitters (the
// portfolio's worker pool) never run it in parallel. A nil callback wraps to
// nil, keeping the fast no-progress path allocation-free.
func serializedProgress(fn func(Event)) func(Event) {
	if fn == nil {
		return nil
	}
	var mu sync.Mutex
	return func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		fn(e)
	}
}
