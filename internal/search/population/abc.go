package population

import (
	"context"

	"nocmap/internal/core"
	"nocmap/internal/search"
	"nocmap/internal/usecase"
)

// ABC is an artificial bee colony over placements. Each population member
// is a food source; every cycle runs the three canonical phases: employed
// bees probe one neighbouring placement per source (greedy acceptance),
// onlooker bees re-probe sources drawn fitness-proportionally, and a scout
// abandons the source with the most consecutive failures once it exceeds
// the abandonment limit, reseeding it from a fresh random placement (or
// re-diversifying it with random moves when no random placement
// configures). Neighbours are the annealer's swap/relocate moves evaluated
// incrementally on the source's session.
type ABC struct{}

// Name implements search.Engine.
func (ABC) Name() string { return "abc" }

// Search implements search.Engine.
func (a ABC) Search(ctx context.Context, prep *usecase.Prepared, numCores int,
	p core.Params, opts search.Options) (*core.Result, error) {
	return run(ctx, abcEvolver{}, a.Name(), prep, numCores, p, opts)
}

type abcEvolver struct{}

func (abcEvolver) evolve(ctx context.Context, d *driver, ev *core.Evaluator,
	switches int, pop []*indiv, attached []int) {
	// The abandonment limit scales with the colony so larger populations
	// tolerate proportionally longer droughts before scouting.
	limit := max(10, len(pop))
	fitness := make([]float64, len(pop))
	for gen := 0; gen < d.gens; gen++ {
		if ctx.Err() != nil {
			return
		}
		// Employed phase: one neighbour per source.
		for _, m := range pop {
			d.probeSource(m, switches, attached)
		}
		// Onlooker phase: len(pop) more probes, allocated to sources by
		// fitness-proportional roulette (lower cost → higher fitness).
		minCost := pop[rankedIndices(pop)[0]].cost
		total := 0.0
		for i, m := range pop {
			fitness[i] = 1 / (1 + m.cost - minCost)
			total += fitness[i]
		}
		for t := 0; t < len(pop); t++ {
			draw := d.rng.Float64() * total
			pick := len(pop) - 1
			for i, f := range fitness {
				if draw < f {
					pick = i
					break
				}
				draw -= f
			}
			d.probeSource(pop[pick], switches, attached)
		}
		// Scout phase: abandon the most-exhausted source past the limit.
		worst := 0
		for i, m := range pop {
			if m.trial > pop[worst].trial {
				worst = i
			}
		}
		if pop[worst].trial > limit {
			d.scout(ctx, pop[worst], ev, switches, attached)
		}
	}
}

// probeSource evaluates one neighbouring placement of the source and keeps
// it on strict improvement (greedy acceptance); otherwise the move is
// undone and the source's trial counter grows toward abandonment.
func (d *driver) probeSource(m *indiv, switches int, attached []int) {
	stats, ok := d.proposeMove(m.sess, attached)
	if !ok {
		m.trial++
		return
	}
	cost := d.opts.Weights.OfParts(switches, stats)
	if cost < m.cost-1e-12 {
		m.sess.Keep()
		d.counts.Accepted++
		m.cost = cost
		m.trial = 0
		d.considerMember(m)
		return
	}
	m.sess.Undo()
	m.trial++
}

// scout replaces an abandoned source with a fresh random placement on the
// same fabric, falling back to re-diversifying the existing source when no
// random placement configures within Options.Restarts draws.
func (d *driver) scout(ctx context.Context, m *indiv, ev *core.Evaluator, switches int, attached []int) {
	numNIs := ev.Topology().NumSwitches() * d.p.NIsPerSwitch
	seats := make([]int, 0, numNIs*d.p.CoresPerNI)
	for ni := 0; ni < numNIs; ni++ {
		for k := 0; k < d.p.CoresPerNI; k++ {
			seats = append(seats, ni)
		}
	}
	tries := max(1, d.opts.Restarts)
	for r := 0; r < tries; r++ {
		if ctx.Err() != nil {
			return
		}
		d.counts.Restarts++
		d.rng.Shuffle(len(seats), func(i, j int) { seats[i], seats[j] = seats[j], seats[i] })
		cs := make([]int, d.numCores)
		cn := make([]int, d.numCores)
		for i := range cs {
			cs[i], cn[i] = -1, -1
		}
		for i, c := range attached {
			cn[c] = seats[i]
			cs[c] = seats[i] / d.p.NIsPerSwitch
		}
		res, err := ev.Evaluate(cs, cn)
		if err != nil {
			continue
		}
		sess, err := ev.SessionFrom(res)
		if err != nil {
			continue
		}
		m.sess = sess
		m.cost = d.opts.Weights.OfParts(switches, sess.Stats())
		m.trial = 0
		d.considerMember(m)
		return
	}
	// No random placement configured: shake the source instead.
	for k := 0; k < 3; k++ {
		d.randomMove(m.sess, attached)
	}
	m.cost = d.opts.Weights.OfParts(switches, m.sess.Stats())
	m.trial = 0
	d.considerMember(m)
}
