// Package population implements the population-based metaheuristic engines
// of the search registry: genetic algorithm (ga), particle swarm (pso) and
// artificial bee colony (abc). All three share one problem encoding — a
// placement of the attached cores over the NI seats of a candidate fabric —
// and one evaluation path: every candidate is scored through a zero-alloc
// core.Session move (incremental teardown and re-reservation of the flows
// whose endpoints changed seats), so a population step costs a handful of
// delta evaluations instead of full re-configurations.
//
// The engines share the annealer's outer structure: the greedy constructive
// result is the feasibility anchor and first incumbent, the population
// evolves on the greedy fabric, then the engine probes every smaller fabric
// that could still seat the attached cores (seeded random restarts) and
// evolves there too. By construction no engine returns a result worse than
// greedy's under the configured cost weights. All randomness flows from the
// single seeded PRNG and candidates are generated and scored serially, so a
// fixed Options.Seed reproduces the run bit for bit.
//
// Strict incumbent improvements are published to Options.Board when a
// shared exchange is wired up, and every improvement emits one
// StageImproved progress event — the same contract the annealer follows.
package population

import (
	"context"
	"math/rand"
	"slices"
	"sort"

	"nocmap/internal/core"
	"nocmap/internal/search"
	"nocmap/internal/topology"
	"nocmap/internal/usecase"
)

// Engine defaults: a compact population keeps D1-class designs interactive
// while still racing well against the annealer's 120 serial moves.
const (
	defaultPopulation  = 16
	defaultGenerations = 24
)

func init() {
	search.Register("ga", func() search.Engine { return GA{} })
	search.Register("pso", func() search.Engine { return PSO{} })
	search.Register("abc", func() search.Engine { return ABC{} })
}

// evolver is one metaheuristic's per-fabric evolution step: it receives a
// population of individuals positioned at feasible configurations on one
// evaluator and improves them in place, reporting incumbents through
// d.consider.
type evolver interface {
	evolve(ctx context.Context, d *driver, ev *core.Evaluator, switches int, pop []*indiv, attached []int)
}

// indiv is one population member: a session holding its committed
// configuration and the member's score under the cost weights.
type indiv struct {
	sess *core.Session
	cost float64
	// trial counts consecutive failed improvement attempts (abc's
	// abandonment rule; unused by ga and pso).
	trial int
}

// driver carries the state shared by all population engines: the incumbent,
// the seeded PRNG, the evaluator cache and the proposal scratch buffers.
type driver struct {
	prep     *usecase.Prepared
	numCores int
	p        core.Params
	opts     search.Options
	name     string
	rng      *rand.Rand
	evals    *search.EvalCache

	pop, gens int

	best     *core.Result
	bestCost float64
	counts   search.Counts

	// Proposal scratch, reused across the run: candidate placements, parent
	// placements, NI occupancy, the free-seat list and the moved-core list.
	csBuf, cnBuf []int
	paBuf, pbBuf []int
	niLoad       []int
	freeBuf      []int
	movedBuf     []int
}

// run is the shared engine body: greedy base, evolution on the base fabric,
// then evolution on every feasible smaller fabric.
func run(ctx context.Context, e evolver, name string, prep *usecase.Prepared,
	numCores int, p core.Params, opts search.Options) (*core.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The greedy base runs outside the budget, exactly like the annealer's:
	// a tight budget degrades to the greedy result, never to an error.
	base, err := core.MapContext(ctx, prep, numCores, p)
	if err != nil {
		return nil, err
	}
	opts.Emit(name, search.StageMapped, base, search.Counts{})
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}
	d := &driver{
		prep: prep, numCores: numCores, p: p, opts: opts, name: name,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		evals: search.NewEvalCache(prep, numCores, p),
		pop:   opts.Population, gens: opts.Generations,
		best: base, bestCost: opts.Weights.Of(base),
	}
	if d.pop == 0 {
		d.pop = defaultPopulation
	}
	if d.gens == 0 {
		d.gens = defaultGenerations
	}
	d.csBuf = make([]int, numCores)
	d.cnBuf = make([]int, numCores)
	d.paBuf = make([]int, numCores)
	d.pbBuf = make([]int, numCores)
	d.movedBuf = make([]int, 0, numCores)

	attached := attachedCores(base.Mapping.CoreSwitch)
	d.evolveOn(ctx, e, base, attached)
	for _, dim := range d.shrinkDims(base, len(attached)) {
		if ctx.Err() != nil {
			break
		}
		// Adopt a better incumbent from a shared exchange before committing
		// restart effort — same pruning the annealer applies.
		if d.opts.Board != nil {
			if res, cost, ok := d.opts.Board.Best(); ok && cost < d.bestCost-1e-12 {
				d.best, d.bestCost = res, cost
			}
		}
		if dim.Switches() >= d.best.Mapping.SwitchCount() {
			continue
		}
		start := d.feasibleStart(ctx, dim, attached)
		if start == nil {
			continue
		}
		d.consider(start)
		d.evolveOn(ctx, e, start, attached)
	}
	opts.Emit(name, search.StageDone, d.best, d.counts)
	return d.best, nil
}

// evolveOn initializes a population around start's fabric and runs the
// metaheuristic's evolution step on it. Member 0 adopts start's exact
// configuration; the rest are diversified by accepted random moves.
func (d *driver) evolveOn(ctx context.Context, e evolver, start *core.Result, attached []int) {
	if len(attached) < 2 || d.gens == 0 || d.pop == 0 {
		return
	}
	ev, err := d.evals.For(start.Mapping.Topology)
	if err != nil {
		return
	}
	sess, err := ev.SessionFrom(start)
	if err != nil {
		return
	}
	switches := ev.Topology().NumSwitches()
	numNIs := switches * d.p.NIsPerSwitch
	d.ensureScratch(numNIs)
	pop := make([]*indiv, 0, d.pop)
	pop = append(pop, &indiv{sess: sess, cost: d.opts.Weights.OfParts(switches, sess.Stats())})
	for i := 1; i < d.pop; i++ {
		if ctx.Err() != nil {
			return
		}
		c, err := sess.Clone()
		if err != nil {
			return
		}
		m := &indiv{sess: c}
		// Diversify with one to three accepted random moves; a member that
		// accepts none simply starts at the base configuration.
		for k := 1 + d.rng.Intn(3); k > 0; k-- {
			d.randomMove(m.sess, attached)
		}
		m.cost = d.opts.Weights.OfParts(switches, m.sess.Stats())
		pop = append(pop, m)
	}
	e.evolve(ctx, d, ev, switches, pop, attached)
}

// ensureScratch sizes the per-fabric proposal buffers.
func (d *driver) ensureScratch(numNIs int) {
	if cap(d.niLoad) < numNIs {
		d.niLoad = make([]int, numNIs)
		d.freeBuf = make([]int, 0, numNIs)
	}
	d.niLoad = d.niLoad[:numNIs]
}

// consider updates the incumbent when the candidate scores strictly better,
// publishing to the shared board and emitting one StageImproved event.
func (d *driver) consider(r *core.Result) {
	if c := d.opts.Weights.Of(r); c < d.bestCost-1e-12 {
		d.best, d.bestCost = r, c
		if d.opts.Board != nil {
			d.opts.Board.Publish(r, c)
		}
		d.opts.Emit(d.name, search.StageImproved, r, d.counts)
	}
}

// considerMember folds one improved member into the incumbent bookkeeping.
func (d *driver) considerMember(m *indiv) {
	if m.cost < d.bestCost-1e-12 {
		d.consider(m.sess.Result())
	}
}

// proposeMove generates one neighbouring placement of the session (swap of
// two attached cores' seats, or relocation of one core to a free seat — the
// annealer's neighbourhood) and evaluates it incrementally, repairing a
// rejected candidate once by moving a disturbed core to the emptiest NI.
// On success the move is left pending on the session (caller decides
// Keep/Undo) and the candidate's stats are returned; ok=false means no
// feasible neighbour was found and the session is unchanged.
func (d *driver) proposeMove(sess *core.Session, attached []int) (core.Stats, bool) {
	cs, cn := d.csBuf, d.cnBuf
	sess.PlacementInto(cs, cn)
	niLoad := niOccupancyInto(d.niLoad, cn)
	var moved [2]int
	forbidden := -1
	if d.rng.Float64() < 0.7 {
		x := attached[d.rng.Intn(len(attached))]
		y := attached[d.rng.Intn(len(attached))]
		if x == y || cn[x] == cn[y] {
			return core.Stats{}, false
		}
		cs[x], cs[y] = cs[y], cs[x]
		cn[x], cn[y] = cn[y], cn[x]
		moved = [2]int{x, y}
	} else {
		x := attached[d.rng.Intn(len(attached))]
		free := freeNIsInto(d.freeBuf[:0], niLoad, cn[x], d.p.CoresPerNI)
		d.freeBuf = free
		if len(free) == 0 {
			return core.Stats{}, false
		}
		ni := free[d.rng.Intn(len(free))]
		niLoad[cn[x]]--
		niLoad[ni]++
		forbidden = cn[x]
		cn[x] = ni
		cs[x] = ni / d.p.NIsPerSwitch
		moved = [2]int{x, x}
	}
	d.counts.Moves++
	if stats, err := sess.TryMove(cs, cn, moved[0], moved[1]); err == nil {
		return stats, true
	}
	x := moved[d.rng.Intn(2)]
	ni := emptiestNI(niLoad, cn[x], forbidden, d.p.CoresPerNI)
	if ni < 0 {
		return core.Stats{}, false
	}
	cn[x] = ni
	cs[x] = ni / d.p.NIsPerSwitch
	if stats, err := sess.TryMove(cs, cn, moved[0], moved[1]); err == nil {
		return stats, true
	}
	return core.Stats{}, false
}

// randomMove is proposeMove with unconditional acceptance — the
// diversification primitive. Returns whether the session changed.
func (d *driver) randomMove(sess *core.Session, attached []int) bool {
	if _, ok := d.proposeMove(sess, attached); ok {
		sess.Keep()
		d.counts.Accepted++
		return true
	}
	return false
}

// adopt moves a member's session to the target placement through one
// incremental TryMove over the differing cores. On success the move is
// committed and the member's cost updated; on failure the member is
// unchanged. Returns whether the member moved.
func (d *driver) adopt(m *indiv, switches int, targetCS, targetCN []int) bool {
	m.sess.PlacementInto(d.paBuf, d.pbBuf)
	moved := d.movedBuf[:0]
	for c := 0; c < d.numCores; c++ {
		if d.paBuf[c] != targetCS[c] || d.pbBuf[c] != targetCN[c] {
			moved = append(moved, c)
		}
	}
	d.movedBuf = moved
	if len(moved) == 0 {
		return false
	}
	d.counts.Moves++
	stats, err := m.sess.TryMove(targetCS, targetCN, moved...)
	if err != nil {
		return false
	}
	m.sess.Keep()
	d.counts.Accepted++
	m.cost = d.opts.Weights.OfParts(switches, stats)
	return true
}

// shrinkDims lists topologies smaller than the base solution with enough
// core seats, in descending switch count (mirrors the annealer's probe
// order). A custom fabric is a single fixed instance with nothing to shrink
// to.
func (d *driver) shrinkDims(base *core.Result, attached int) []topology.Dim {
	if !d.p.Topology.Grows() {
		return nil
	}
	baseSwitches := base.Mapping.SwitchCount()
	var dims []topology.Dim
	for _, dim := range topology.GrowthSequence(d.p.MaxMeshDim) {
		if dim.Switches() >= baseSwitches {
			continue
		}
		if dim.Switches()*d.p.CoresPerSwitch() < attached {
			continue
		}
		dims = append(dims, dim)
	}
	slices.Reverse(dims)
	return dims
}

// feasibleStart tries Options.Restarts seeded random placements on the
// given size and returns the first that configures feasibly, or nil.
func (d *driver) feasibleStart(ctx context.Context, dim topology.Dim, attached []int) *core.Result {
	top, err := d.p.Topology.ForDim(dim, d.p.CoresPerSwitch())
	if err != nil {
		return nil
	}
	ev, err := d.evals.For(top)
	if err != nil {
		return nil
	}
	top = ev.Topology()
	numNIs := top.NumSwitches() * d.p.NIsPerSwitch
	seats := make([]int, 0, numNIs*d.p.CoresPerNI)
	for ni := 0; ni < numNIs; ni++ {
		for k := 0; k < d.p.CoresPerNI; k++ {
			seats = append(seats, ni)
		}
	}
	if len(attached) > len(seats) {
		return nil
	}
	for r := 0; r < d.opts.Restarts; r++ {
		if ctx.Err() != nil {
			return nil
		}
		d.counts.Restarts++
		d.rng.Shuffle(len(seats), func(i, j int) { seats[i], seats[j] = seats[j], seats[i] })
		cs := make([]int, d.numCores)
		cn := make([]int, d.numCores)
		for i := range cs {
			cs[i], cn[i] = -1, -1
		}
		for i, c := range attached {
			cn[c] = seats[i]
			cs[c] = seats[i] / d.p.NIsPerSwitch
		}
		if res, err := ev.Evaluate(cs, cn); err == nil {
			return res
		}
	}
	return nil
}

// rankedIndices returns population indices sorted by ascending cost with
// index as the deterministic tie-break.
func rankedIndices(pop []*indiv) []int {
	order := make([]int, len(pop))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := pop[order[a]].cost, pop[order[b]].cost
		if ca != cb {
			return ca < cb
		}
		return order[a] < order[b]
	})
	return order
}

// attachedCores lists the cores with an NI seat.
func attachedCores(coreSwitch []int) []int {
	var out []int
	for c, s := range coreSwitch {
		if s >= 0 {
			out = append(out, c)
		}
	}
	return out
}

// niOccupancyInto counts the cores seated on each NI into load.
func niOccupancyInto(load []int, coreNI []int) []int {
	for i := range load {
		load[i] = 0
	}
	for _, ni := range coreNI {
		if ni >= 0 {
			load[ni]++
		}
	}
	return load
}

// freeNIsInto appends the NIs other than exclude with a free core seat.
func freeNIsInto(out []int, load []int, exclude, coresPerNI int) []int {
	for ni, n := range load {
		if ni != exclude && n < coresPerNI {
			out = append(out, ni)
		}
	}
	return out
}

// emptiestNI returns the least-loaded NI with a free seat other than the
// excluded pair, or -1.
func emptiestNI(load []int, exclude, exclude2, coresPerNI int) int {
	best, bestLoad := -1, 0
	for ni, n := range load {
		if ni == exclude || ni == exclude2 || n >= coresPerNI {
			continue
		}
		if best < 0 || n < bestLoad {
			best, bestLoad = ni, n
		}
	}
	return best
}
