package population

import (
	"context"

	"nocmap/internal/core"
	"nocmap/internal/search"
	"nocmap/internal/usecase"
)

// GA is a genetic algorithm over placement permutations: tournament parent
// selection, uniform crossover on the core→NI assignment with greedy
// capacity repair, a low-rate swap mutation, and elitism (the best quarter
// of the population survives every generation untouched). Children are
// scored through one incremental Session move over the cores the crossover
// actually relocated; an infeasible child (routing or slot rejection)
// leaves its slot's previous occupant in place.
type GA struct{}

// Name implements search.Engine.
func (GA) Name() string { return "ga" }

// Search implements search.Engine.
func (g GA) Search(ctx context.Context, prep *usecase.Prepared, numCores int,
	p core.Params, opts search.Options) (*core.Result, error) {
	return run(ctx, gaEvolver{}, g.Name(), prep, numCores, p, opts)
}

type gaEvolver struct{}

// mutationRate is the per-child probability of one extra random swap after
// crossover.
const mutationRate = 0.2

func (gaEvolver) evolve(ctx context.Context, d *driver, ev *core.Evaluator,
	switches int, pop []*indiv, attached []int) {
	elite := max(1, len(pop)/4)
	for gen := 0; gen < d.gens; gen++ {
		if ctx.Err() != nil {
			return
		}
		order := rankedIndices(pop)
		// Replace the worst len(pop)-elite members with crossover children,
		// steady-state style: a child created earlier in the generation can
		// be drawn as a parent later in it.
		for _, slot := range order[elite:] {
			pa := pop[d.tournament(pop, 3)]
			pb := pop[d.tournament(pop, 3)]
			pa.sess.PlacementInto(d.csBuf, d.paBuf) // csBuf is scratch here
			pb.sess.PlacementInto(d.csBuf, d.pbBuf)
			d.crossover(attached, d.paBuf, d.pbBuf)
			if d.rng.Float64() < mutationRate {
				d.mutateSwap(attached)
			}
			m := pop[slot]
			if d.adopt(m, switches, d.csBuf, d.cnBuf) {
				d.considerMember(m)
			}
		}
	}
}

// tournament returns the index of the best of k uniformly drawn members
// (ties toward the earlier draw).
func (d *driver) tournament(pop []*indiv, k int) int {
	best := d.rng.Intn(len(pop))
	for i := 1; i < k; i++ {
		c := d.rng.Intn(len(pop))
		if pop[c].cost < pop[best].cost-1e-12 {
			best = c
		}
	}
	return best
}

// crossover builds a child placement in d.cnBuf/d.csBuf from two parents'
// core→NI assignments (paCN, pbCN): each attached core inherits one
// parent's seat uniformly at random, falling back to the other parent's —
// and then to the emptiest free NI — when the inherited NI is already full.
// The single greedy pass keeps every child seat-feasible by construction.
func (d *driver) crossover(attached []int, paCN, pbCN []int) {
	cn, cs := d.cnBuf, d.csBuf
	for c := 0; c < d.numCores; c++ {
		cn[c], cs[c] = -1, -1
	}
	load := niOccupancyInto(d.niLoad, cn)
	for _, c := range attached {
		pick, alt := paCN[c], pbCN[c]
		if d.rng.Intn(2) == 1 {
			pick, alt = alt, pick
		}
		if load[pick] >= d.p.CoresPerNI {
			pick = alt
		}
		if load[pick] >= d.p.CoresPerNI {
			pick = emptiestNI(load, -1, -1, d.p.CoresPerNI)
			if pick < 0 {
				// No seat anywhere — impossible on a fabric that seated the
				// parents, but keep the child well-formed regardless.
				pick = paCN[c]
			}
		}
		load[pick]++
		cn[c] = pick
		cs[c] = pick / d.p.NIsPerSwitch
	}
}

// mutateSwap exchanges the seats of two random attached cores in the child
// buffers.
func (d *driver) mutateSwap(attached []int) {
	cn, cs := d.cnBuf, d.csBuf
	x := attached[d.rng.Intn(len(attached))]
	y := attached[d.rng.Intn(len(attached))]
	if x == y || cn[x] == cn[y] {
		return
	}
	cn[x], cn[y] = cn[y], cn[x]
	cs[x], cs[y] = cs[y], cs[x]
}
