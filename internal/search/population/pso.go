package population

import (
	"context"

	"nocmap/internal/core"
	"nocmap/internal/search"
	"nocmap/internal/usecase"
)

// PSO is a discrete particle swarm over placements. A particle's velocity
// is a short swap sequence rather than a real-valued vector: each iteration
// the particle applies up to one inertial random perturbation plus a few
// alignment swaps that move differing cores toward its personal best and
// the swarm's global best (the classic swap-sequence formulation of PSO on
// permutation problems). The combined target placement is scored through
// one incremental Session move; an infeasible target leaves the particle
// where it was — velocity dissipates instead of wedging the swarm.
type PSO struct{}

// Name implements search.Engine.
func (PSO) Name() string { return "pso" }

// Search implements search.Engine.
func (ps PSO) Search(ctx context.Context, prep *usecase.Prepared, numCores int,
	p core.Params, opts search.Options) (*core.Result, error) {
	return run(ctx, psoEvolver{}, ps.Name(), prep, numCores, p, opts)
}

type psoEvolver struct{}

// PSO coefficients: inertia keeps a particle exploring (one random
// perturbation with probability psoInertia), and each differing core is
// pulled toward the personal / global best with the cognitive / social
// probabilities. At most psoMaxAlign cores per attractor move in one
// iteration, so a velocity step stays a cheap incremental re-route.
const (
	psoInertia   = 0.3
	psoCognitive = 0.5
	psoSocial    = 0.5
	psoMaxAlign  = 2
)

func (psoEvolver) evolve(ctx context.Context, d *driver, ev *core.Evaluator,
	switches int, pop []*indiv, attached []int) {
	// Personal bests start at the initial positions; the global best is the
	// lowest-cost member (ties toward the lower index).
	pbestCN := make([][]int, len(pop))
	pbestCost := make([]float64, len(pop))
	for i, m := range pop {
		_, cn := m.sess.Placement()
		pbestCN[i] = cn
		pbestCost[i] = m.cost
	}
	gbest := rankedIndices(pop)[0]
	gbestCN := append([]int(nil), pbestCN[gbest]...)
	gbestCost := pbestCost[gbest]

	for gen := 0; gen < d.gens; gen++ {
		if ctx.Err() != nil {
			return
		}
		for i, m := range pop {
			// Build the iteration's target placement in cnBuf/csBuf.
			m.sess.PlacementInto(d.csBuf, d.cnBuf)
			changed := false
			if d.rng.Float64() < psoInertia {
				changed = d.perturbTarget(attached) || changed
			}
			changed = d.alignTarget(attached, pbestCN[i], psoCognitive) || changed
			changed = d.alignTarget(attached, gbestCN, psoSocial) || changed
			if !changed {
				continue
			}
			if !d.adopt(m, switches, d.csBuf, d.cnBuf) {
				continue
			}
			if m.cost < pbestCost[i]-1e-12 {
				pbestCost[i] = m.cost
				_, pbestCN[i] = m.sess.Placement()
			}
			if m.cost < gbestCost-1e-12 {
				gbestCost = m.cost
				gbestCN = append(gbestCN[:0], pbestCN[i]...)
				d.considerMember(m)
			}
		}
	}
}

// perturbTarget applies one random swap or relocation to the target buffers
// (the inertial component of the velocity). Returns whether anything moved.
func (d *driver) perturbTarget(attached []int) bool {
	cn, cs := d.cnBuf, d.csBuf
	if d.rng.Float64() < 0.7 {
		x := attached[d.rng.Intn(len(attached))]
		y := attached[d.rng.Intn(len(attached))]
		if x == y || cn[x] == cn[y] {
			return false
		}
		cn[x], cn[y] = cn[y], cn[x]
		cs[x], cs[y] = cs[y], cs[x]
		return true
	}
	load := niOccupancyInto(d.niLoad, cn)
	x := attached[d.rng.Intn(len(attached))]
	free := freeNIsInto(d.freeBuf[:0], load, cn[x], d.p.CoresPerNI)
	d.freeBuf = free
	if len(free) == 0 {
		return false
	}
	ni := free[d.rng.Intn(len(free))]
	cn[x] = ni
	cs[x] = ni / d.p.NIsPerSwitch
	return true
}

// alignTarget pulls up to psoMaxAlign differing attached cores of the
// target buffers toward the attractor placement: each selected core takes
// the attractor's seat, swapping with the lowest-indexed core currently on
// that seat's NI when it is full. Cores are scanned in a rotated
// deterministic order so the pull does not always favour low-indexed cores.
func (d *driver) alignTarget(attached []int, attractor []int, prob float64) bool {
	cn, cs := d.cnBuf, d.csBuf
	load := niOccupancyInto(d.niLoad, cn)
	moved, changed := 0, false
	off := d.rng.Intn(len(attached))
	for k := 0; k < len(attached) && moved < psoMaxAlign; k++ {
		c := attached[(k+off)%len(attached)]
		want := attractor[c]
		if want < 0 || cn[c] == want || d.rng.Float64() >= prob {
			continue
		}
		if load[want] < d.p.CoresPerNI {
			load[cn[c]]--
			load[want]++
			cn[c] = want
			cs[c] = want / d.p.NIsPerSwitch
		} else {
			// Seat full: swap with the lowest-indexed core on the wanted NI.
			partner := -1
			for _, o := range attached {
				if o != c && cn[o] == want {
					partner = o
					break
				}
			}
			if partner < 0 {
				continue
			}
			cn[c], cn[partner] = cn[partner], cn[c]
			cs[c], cs[partner] = cs[partner], cs[c]
		}
		moved++
		changed = true
	}
	return changed
}
