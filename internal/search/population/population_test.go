package population

import (
	"context"
	"testing"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/search"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
	"nocmap/internal/verify"
)

// engineNames are the three engines this package registers.
var engineNames = []string{"ga", "pso", "abc"}

func fig5(t *testing.T) (*usecase.Prepared, int) {
	t.Helper()
	d := &traffic.Design{
		Name:  "fig5",
		Cores: traffic.MakeCores(4),
		UseCases: []*traffic.UseCase{
			{Name: "use-case-1", Flows: []traffic.Flow{
				{Src: 0, Dst: 1, BandwidthMBs: 10},
				{Src: 1, Dst: 2, BandwidthMBs: 75},
				{Src: 2, Dst: 3, BandwidthMBs: 100},
			}},
			{Name: "use-case-2", Flows: []traffic.Flow{
				{Src: 2, Dst: 3, BandwidthMBs: 42},
				{Src: 0, Dst: 2, BandwidthMBs: 11},
				{Src: 1, Dst: 3, BandwidthMBs: 52},
			}},
		},
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	return prep, d.NumCores()
}

func d1(t *testing.T) (*usecase.Prepared, int) {
	t.Helper()
	d, err := bench.D1()
	if err != nil {
		t.Fatal(err)
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	return prep, d.NumCores()
}

// testOptions keeps the population runs fast enough for the unit suite.
func testOptions(seed int64) search.Options {
	opts := search.DefaultOptions()
	opts.Seed = seed
	opts.Population = 8
	opts.Generations = 6
	opts.Restarts = 2
	return opts
}

func TestRegistered(t *testing.T) {
	names := search.Names()
	for _, want := range engineNames {
		eng, err := search.New(want)
		if err != nil {
			t.Fatalf("New(%q): %v (registry: %v)", want, err, names)
		}
		if eng.Name() != want {
			t.Fatalf("New(%q).Name() = %q", want, eng.Name())
		}
	}
}

// TestDeterministicVerifiedNeverWorseThanGreedy is the package's core
// contract: for every engine, a fixed seed reproduces the run exactly, the
// result passes full verification, and the cost never exceeds greedy's.
func TestDeterministicVerifiedNeverWorseThanGreedy(t *testing.T) {
	for _, tc := range []struct {
		name string
		prep func(*testing.T) (*usecase.Prepared, int)
	}{{"fig5", fig5}, {"d1", d1}} {
		prep, n := tc.prep(t)
		p := core.DefaultParams()
		w := search.DefaultCostWeights()
		greedy, err := core.Map(prep, n, p)
		if err != nil {
			t.Fatal(err)
		}
		greedyCost := w.Of(greedy)
		for _, name := range engineNames {
			t.Run(tc.name+"/"+name, func(t *testing.T) {
				eng, err := search.New(name)
				if err != nil {
					t.Fatal(err)
				}
				run := func() *core.Result {
					r, err := eng.Search(context.Background(), prep, n, p, testOptions(7))
					if err != nil {
						t.Fatal(err)
					}
					return r
				}
				a, b := run(), run()
				if a.Stats != b.Stats || a.Mapping.SwitchCount() != b.Mapping.SwitchCount() {
					t.Fatalf("%s not deterministic: %+v (%d switches) vs %+v (%d switches)",
						name, a.Stats, a.Mapping.SwitchCount(), b.Stats, b.Mapping.SwitchCount())
				}
				for c := range a.Mapping.CoreSwitch {
					if a.Mapping.CoreSwitch[c] != b.Mapping.CoreSwitch[c] ||
						a.Mapping.CoreNI[c] != b.Mapping.CoreNI[c] {
						t.Fatalf("%s placements diverge at core %d", name, c)
					}
				}
				if v := verify.Check(a.Mapping); len(v) > 0 {
					t.Fatalf("%s result fails verification: %v", name, v)
				}
				if c := w.Of(a); c > greedyCost+1e-9 {
					t.Fatalf("%s cost %.3f worse than greedy %.3f", name, c, greedyCost)
				}
			})
		}
	}
}

// TestProgressEvents: every engine must announce its base, report
// improvements with monotonically non-increasing cost, and end with one
// StageDone event for its final result.
func TestProgressEvents(t *testing.T) {
	prep, n := d1(t)
	p := core.DefaultParams()
	for _, name := range engineNames {
		t.Run(name, func(t *testing.T) {
			var events []search.Event
			opts := testOptions(3)
			opts.Progress = func(e search.Event) { events = append(events, e) }
			eng, err := search.New(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.Search(context.Background(), prep, n, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(events) < 2 {
				t.Fatalf("want at least mapped+done events, got %d", len(events))
			}
			if events[0].Stage != search.StageMapped {
				t.Fatalf("first event stage = %q, want mapped", events[0].Stage)
			}
			last := events[len(events)-1]
			if last.Stage != search.StageDone || last.Engine != name {
				t.Fatalf("last event = %+v, want done from %s", last, name)
			}
			if last.Switches != res.Mapping.SwitchCount() {
				t.Fatalf("done event switches %d != result %d", last.Switches, res.Mapping.SwitchCount())
			}
			if last.LowerBound < 1 || last.Gap < 0 {
				t.Fatalf("done event bound/gap malformed: lb=%d gap=%v", last.LowerBound, last.Gap)
			}
			prevCost := events[0].Cost
			for _, e := range events[1:] {
				if e.Stage == search.StageImproved && e.Cost > prevCost+1e-9 {
					t.Fatalf("improvement event cost rose: %.3f -> %.3f", prevCost, e.Cost)
				}
				if e.Stage != search.StageMapped {
					prevCost = e.Cost
				}
			}
		})
	}
}

// TestBoardPublication: with a shared incumbent board wired up, a strict
// improvement over the published incumbent must land on the board.
func TestBoardPublication(t *testing.T) {
	prep, n := d1(t)
	p := core.DefaultParams()
	board := &search.IncumbentBoard{}
	opts := testOptions(5)
	opts.Board = board
	eng, err := search.New("ga")
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Search(context.Background(), prep, n, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	w := search.DefaultCostWeights()
	greedy, err := core.Map(prep, n, p)
	if err != nil {
		t.Fatal(err)
	}
	if w.Of(res) >= w.Of(greedy)-1e-12 {
		t.Skip("run found no strict improvement to publish")
	}
	bres, bcost, ok := board.Best()
	if !ok {
		t.Fatal("engine improved on greedy but published nothing")
	}
	if bcost > w.Of(res)+1e-9 {
		t.Fatalf("board cost %.3f worse than final result %.3f", bcost, w.Of(res))
	}
	if bres == nil {
		t.Fatal("board incumbent result is nil")
	}
}
