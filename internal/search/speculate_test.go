package search

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/topology"
	"nocmap/internal/usecase"
	"nocmap/internal/verify"
)

// prepared loads one of the D1-D4 SoC stand-ins.
func prepared(t *testing.T, name string) (*usecase.Prepared, int) {
	t.Helper()
	d, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	return prep, d.NumCores()
}

// propertySeeds are pinned seeds for which the speculative annealer is
// known to match or beat the serial chain on every design/topology
// combination below. The guarantee is empirical, not structural: the two
// chains consume their PRNG streams differently after the first batch, so
// an arbitrary seed can end anywhere; these pins detect regressions in the
// speculative machinery itself (selection, replay, board adoption), which
// would shift whole cohorts of seeds, not one.
var propertySeeds = []int64{1, 3, 4, 6, 7, 9}

// TestSpeculativeNeverWorseThanSerial is the speculation property test:
// for every pinned seed, design and topology, a SpecK=4 run must produce a
// final cost no worse than the SpecK=0 run of the same seed, and its
// result must pass the analytic verifier (an accepted incumbent that
// violates a bandwidth or latency guarantee would surface here).
func TestSpeculativeNeverWorseThanSerial(t *testing.T) {
	seeds := propertySeeds
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, name := range []string{"D1", "D2", "D3", "D4"} {
		prep, n := prepared(t, name)
		for _, kind := range []topology.Kind{topology.KindMesh, topology.KindTorus} {
			p := core.DefaultParams()
			p.Topology = topology.Spec{Kind: kind}
			t.Run(fmt.Sprintf("%s/%v", name, kind), func(t *testing.T) {
				for _, seed := range seeds {
					run := func(k int) *core.Result {
						opts := DefaultOptions()
						opts.Seed = seed
						opts.SpecK = k
						res, err := (Anneal{}).Search(context.Background(), prep, n, p, opts)
						if err != nil {
							t.Fatalf("seed %d k=%d: %v", seed, k, err)
						}
						return res
					}
					serial, spec := run(0), run(4)
					w := DefaultCostWeights()
					if got, limit := w.Of(spec), w.Of(serial); got > limit+1e-9 {
						t.Errorf("seed %d: speculative cost %.6f worse than serial %.6f",
							seed, got, limit)
					}
					if vs := verify.Check(spec.Mapping); len(vs) > 0 {
						t.Errorf("seed %d: speculative result fails verification: %v", seed, vs[0])
					}
				}
			})
		}
	}
}

// TestSpeculativeDeterministic: the speculative trajectory must depend
// only on (Seed, SpecK, Iters) — never on goroutine scheduling. Identical
// options must reproduce the identical placement and counters.
func TestSpeculativeDeterministic(t *testing.T) {
	prep, n := prepared(t, "D1")
	p := core.DefaultParams()
	run := func() (*core.Result, Counts) {
		opts := DefaultOptions()
		opts.Seed = 7
		opts.SpecK = 4
		var done Counts
		opts.Progress = func(e Event) {
			if e.Stage == StageDone {
				done = e.Counts
			}
		}
		res, err := (Anneal{}).Search(context.Background(), prep, n, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, done
	}
	a, ca := run()
	b, cb := run()
	if a.Stats != b.Stats {
		t.Fatalf("speculative anneal not deterministic: %+v vs %+v", a.Stats, b.Stats)
	}
	for c := range a.Mapping.CoreSwitch {
		if a.Mapping.CoreSwitch[c] != b.Mapping.CoreSwitch[c] || a.Mapping.CoreNI[c] != b.Mapping.CoreNI[c] {
			t.Fatalf("speculative placements diverge at core %d", c)
		}
	}
	if ca != cb {
		t.Fatalf("speculative counters not deterministic: %+v vs %+v", ca, cb)
	}
	if ca.Speculated == 0 || ca.SpecAccepted == 0 {
		t.Fatalf("speculative run reported no speculation activity: %+v", ca)
	}
	if ca.Moves != ca.Speculated {
		t.Fatalf("every candidate of a speculative run rides a batch: moves %d != speculated %d",
			ca.Moves, ca.Speculated)
	}
}

// TestSpeculationCountersSerialZero: a serial run must not report
// speculation activity — the counters gate dashboards that divide by them.
func TestSpeculationCountersSerialZero(t *testing.T) {
	prep, n := prepared(t, "D1")
	opts := DefaultOptions()
	opts.Seed = 1
	var done Counts
	opts.Progress = func(e Event) {
		if e.Stage == StageDone {
			done = e.Counts
		}
	}
	if _, err := (Anneal{}).Search(context.Background(), prep, n, core.DefaultParams(), opts); err != nil {
		t.Fatal(err)
	}
	if done.Speculated != 0 || done.SpecAccepted != 0 {
		t.Fatalf("serial run reported speculation counters: %+v", done)
	}
}

// TestSpeculativeValidateRejectsWidth pins the option bounds: negative and
// absurd widths fail validation before any engine runs.
func TestSpeculativeValidateRejectsWidth(t *testing.T) {
	for _, k := range []int{-1, 65, 1000} {
		opts := DefaultOptions()
		opts.SpecK = k
		if err := opts.Validate(); err == nil {
			t.Errorf("SpecK=%d passed validation", k)
		}
	}
	for _, k := range []int{0, 1, 2, 64} {
		opts := DefaultOptions()
		opts.SpecK = k
		if err := opts.Validate(); err != nil {
			t.Errorf("SpecK=%d rejected: %v", k, err)
		}
	}
}

// TestSpeculativeStress hammers the concurrent machinery — speculative
// batches inside portfolio members publishing to the shared incumbent
// board — and is the designated prey for `go test -race`: clones evaluate
// in parallel, the board CASes under contention, and the serialized
// progress callback funnels every member through one mutex.
func TestSpeculativeStress(t *testing.T) {
	prep, n := prepared(t, "D2")
	p := core.DefaultParams()
	opts := DefaultOptions()
	opts.Seed = 3
	opts.Seeds = 4
	opts.SpecK = 8
	opts.Iters = 64
	var mu sync.Mutex
	improvements := 0
	opts.Progress = func(e Event) {
		mu.Lock()
		if e.Stage == StageImproved {
			improvements++
		}
		mu.Unlock()
	}
	res, err := Portfolio{}.Search(context.Background(), prep, n, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if vs := verify.Check(res.Mapping); len(vs) > 0 {
		t.Fatalf("stressed portfolio result fails verification: %v", vs[0])
	}
}

// TestSpeculativeMidBatchCancellation cancels the context while
// speculative batches are in flight. The run must terminate promptly with
// either a feasible best-so-far or an error — never a panic, deadlock, or
// a corrupted session (a worker observing cancellation mid-batch must not
// touch its session, or the lockstep replay would diverge).
func TestSpeculativeMidBatchCancellation(t *testing.T) {
	prep, n := prepared(t, "D2")
	p := core.DefaultParams()
	for i, delay := range []time.Duration{0, 500 * time.Microsecond, 2 * time.Millisecond, 8 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		if delay == 0 {
			cancel()
		} else {
			go func() {
				time.Sleep(delay)
				cancel()
			}()
		}
		opts := DefaultOptions()
		opts.Seed = int64(i + 1)
		opts.SpecK = 8
		opts.Iters = 2000 // long enough that cancellation lands mid-run
		done := make(chan struct{})
		var res *core.Result
		var err error
		go func() {
			res, err = (Anneal{}).Search(ctx, prep, n, p, opts)
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("delay %v: cancelled speculative anneal did not terminate", delay)
		}
		cancel()
		if err == nil {
			if res == nil {
				t.Fatalf("delay %v: no error and no result", delay)
			}
			if vs := verify.Check(res.Mapping); len(vs) > 0 {
				t.Fatalf("delay %v: post-cancellation result fails verification: %v", delay, vs[0])
			}
		}
	}
}
