// Package exact implements the registry's branch-and-bound engine: an
// exhaustive search over placements along the topology growth sequence that
// turns the heuristic engines' "best found" into a provable statement. The
// engine walks candidate fabrics in ascending switch count and, for each
// one smaller than the heuristic incumbent, either finds a feasible
// placement (which is then optimal in switch count — every smaller fabric
// was already proven infeasible) or proves none exists. The largest fabric
// reached this way is a provable lower bound on the switch count of ANY
// feasible mapping, which consumers report as the optimality gap
// (best - lower) / lower.
//
// Three admissible prunes keep the tree honest and small:
//
//   - seat capacity: a fabric whose NI seats cannot hold the attached cores
//     is infeasible outright (this alone settles designs the heuristics
//     already map onto the seat-minimal fabric, e.g. D1);
//   - NI seat capacity during the descent (CoresPerNI per NI);
//   - slot demand: every distinct pair of a smooth-switching group reserves
//     at least ceil(bw/slotBW) TDMA slots on its source NI's egress link
//     and its destination NI's ingress link, so a partial assignment whose
//     per-(group, NI link) demand exceeds the slot table is infeasible no
//     matter where the remaining cores go.
//
// Complete placements are evaluated through the real evaluator (routing,
// slot alignment, group sharing), so a "feasible" verdict is a genuine
// mapping, returned as the engine's result. The search is bounded by a
// deterministic weighted node budget (Options.Nodes) rather than
// wall-clock, so a fixed budget reproduces the identical bound on every
// run; Options.Budget and context cancellation still bound the wall-clock,
// trading bound strength for time.
package exact

import (
	"context"
	"sort"

	"nocmap/internal/core"
	"nocmap/internal/search"
	"nocmap/internal/tdma"
	"nocmap/internal/topology"
	"nocmap/internal/usecase"
)

// Node-budget weights: descending one assignment edge costs one unit, a
// full evaluation of a leaf placement costs leafCost. The default budget
// keeps the engine interactive (well under a second of tree work) while
// still exhausting small fabrics.
const (
	defaultNodeBudget = 500000
	leafCost          = 100
)

func init() {
	search.Register("exact", func() search.Engine { return BranchBound{} })
}

// BranchBound is the exact engine. Its result is never worse than greedy's
// (the greedy mapping is the incumbent the search tries to beat) and always
// carries LowerBoundSwitches; LowerBoundExact reports whether the bound was
// proven tight within the budget.
type BranchBound struct{}

// Name implements search.Engine.
func (BranchBound) Name() string { return "exact" }

// dimOutcome is the verdict on one candidate fabric.
type dimOutcome int

const (
	dimInfeasible dimOutcome = iota // every placement proven infeasible
	dimFeasible                     // a feasible placement was found
	dimExhausted                    // budget or deadline ran out first
)

// Search implements search.Engine.
func (bb BranchBound) Search(ctx context.Context, prep *usecase.Prepared, numCores int,
	p core.Params, opts search.Options) (*core.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The greedy base is the incumbent to beat and the fallback result; like
	// the other engines it runs outside the budget.
	base, err := core.MapContext(ctx, prep, numCores, p)
	if err != nil {
		return nil, err
	}
	opts.Emit(bb.Name(), search.StageMapped, base, search.Counts{})
	if opts.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Budget)
		defer cancel()
	}

	best := base
	incSwitches := base.Mapping.SwitchCount()
	b := newBnb(prep, numCores, p, opts, base)

	// A fixed custom fabric has exactly one candidate size: the base proves
	// it feasible, so the bound is tight by construction.
	if !p.Topology.Grows() {
		best.LowerBoundSwitches = incSwitches
		best.LowerBoundExact = true
		opts.Emit(bb.Name(), search.StageDone, best, b.counts)
		return best, nil
	}

	evals := search.NewEvalCache(prep, numCores, p)
	lb, exact := 0, false
	for _, dim := range topology.GrowthSequence(p.MaxMeshDim) {
		s := dim.Switches()
		if s >= incSwitches {
			// Every fabric smaller than the incumbent is proven infeasible:
			// the incumbent is optimal in switch count.
			lb, exact = incSwitches, true
			break
		}
		if ctx.Err() != nil || b.nodes <= 0 {
			lb = s // smaller fabrics are all proven infeasible
			break
		}
		if s*p.CoresPerSwitch() < len(b.order) {
			continue // seat bound: proven infeasible without descending
		}
		outcome, res := b.searchDim(ctx, evals, dim)
		if outcome == dimInfeasible {
			continue
		}
		lb = s
		if outcome == dimFeasible {
			// Optimal: feasible here, infeasible everywhere smaller.
			exact = true
			if opts.Weights.Of(res) < opts.Weights.Of(best)-1e-12 {
				best = res
				best.LowerBoundSwitches = lb
				best.LowerBoundExact = true
				opts.Emit(bb.Name(), search.StageImproved, best, b.counts)
			}
		}
		break
	}
	if lb == 0 {
		// The growth sequence ended below the incumbent's size — impossible
		// when the incumbent came from the same sequence, but keep the bound
		// well-formed regardless.
		lb, exact = incSwitches, true
	}
	best.LowerBoundSwitches = lb
	best.LowerBoundExact = exact && best.Mapping.SwitchCount() == lb
	opts.Emit(bb.Name(), search.StageDone, best, b.counts)
	return best, nil
}

// bnb carries the state of one branch-and-bound run across candidate
// fabrics: the descent order, the per-(core, group) minimum slot demands
// and the remaining weighted node budget.
type bnb struct {
	prep     *usecase.Prepared
	numCores int
	p        core.Params
	opts     search.Options
	nodes    int
	counts   search.Counts

	// order lists the attached cores most-constrained first (highest total
	// slot demand, then lowest index) — failing early keeps the tree small.
	order []int
	// egressNeed[c][g] / ingressNeed[c][g] are the slots core c's pairs
	// provably occupy on its NI's egress / ingress link in group g's slot
	// table: the sum of ceil(bw/slotBW) over the group's distinct pairs
	// with c as source / destination, sized by the group's heaviest flow.
	egressNeed, ingressNeed [][]int
}

func newBnb(prep *usecase.Prepared, numCores int, p core.Params, opts search.Options, base *core.Result) *bnb {
	b := &bnb{prep: prep, numCores: numCores, p: p, opts: opts, nodes: opts.Nodes}
	if b.nodes == 0 {
		b.nodes = defaultNodeBudget
	}
	groups := len(prep.Groups)
	b.egressNeed = make([][]int, numCores)
	b.ingressNeed = make([][]int, numCores)
	for c := 0; c < numCores; c++ {
		b.egressNeed[c] = make([]int, groups)
		b.ingressNeed[c] = make([]int, groups)
	}
	slotBW := p.SlotBandwidthMBs()
	for g, members := range prep.Groups {
		// Distinct pairs of the group, sized by the heaviest same-pair flow
		// — exactly how the mapper sizes shared reservations.
		maxBW := make(map[[2]int]float64)
		for _, uc := range members {
			for _, f := range prep.UseCases[uc].Flows {
				k := [2]int{int(f.Src), int(f.Dst)}
				if f.BandwidthMBs > maxBW[k] {
					maxBW[k] = f.BandwidthMBs
				}
			}
		}
		for k, bw := range maxBW {
			need := tdma.SlotsNeeded(bw, slotBW)
			b.egressNeed[k[0]][g] += need
			b.ingressNeed[k[1]][g] += need
		}
	}
	attached := make([]int, 0, numCores)
	for c, s := range base.Mapping.CoreSwitch {
		if s >= 0 {
			attached = append(attached, c)
		}
	}
	demand := func(c int) int {
		total := 0
		for g := 0; g < groups; g++ {
			total += b.egressNeed[c][g] + b.ingressNeed[c][g]
		}
		return total
	}
	sort.SliceStable(attached, func(i, j int) bool {
		di, dj := demand(attached[i]), demand(attached[j])
		if di != dj {
			return di > dj
		}
		return attached[i] < attached[j]
	})
	b.order = attached
	return b
}

// searchDim runs the depth-first descent over placements of the attached
// cores onto the fabric's NI seats. It returns dimFeasible with a genuine
// evaluated mapping, dimInfeasible when the whole tree was exhausted
// without one, or dimExhausted when the node budget or deadline ran out
// with branches still unexplored.
func (b *bnb) searchDim(ctx context.Context, evals *search.EvalCache, dim topology.Dim) (dimOutcome, *core.Result) {
	top, err := b.p.Topology.ForDim(dim, b.p.CoresPerSwitch())
	if err != nil {
		return dimInfeasible, nil // the family cannot instantiate this size
	}
	ev, err := evals.For(top)
	if err != nil {
		return dimInfeasible, nil
	}
	numNIs := ev.Topology().NumSwitches() * b.p.NIsPerSwitch
	groups := len(b.prep.Groups)
	T := b.p.SlotTableSize

	niLoad := make([]int, numNIs)
	egress := make([][]int, numNIs)
	ingress := make([][]int, numNIs)
	for ni := 0; ni < numNIs; ni++ {
		egress[ni] = make([]int, groups)
		ingress[ni] = make([]int, groups)
	}
	cs := make([]int, b.numCores)
	cn := make([]int, b.numCores)
	for c := range cs {
		cs[c], cn[c] = -1, -1
	}

	var res *core.Result
	var dfs func(i int) dimOutcome
	dfs = func(i int) dimOutcome {
		if ctx.Err() != nil || b.nodes <= 0 {
			return dimExhausted
		}
		if i == len(b.order) {
			b.nodes -= leafCost
			b.counts.Moves++
			r, err := ev.Evaluate(cs, cn)
			if err != nil {
				return dimInfeasible
			}
			b.counts.Accepted++
			res = r
			return dimFeasible
		}
		c := b.order[i]
		for ni := 0; ni < numNIs; ni++ {
			if niLoad[ni] >= b.p.CoresPerNI {
				continue
			}
			b.nodes--
			fits := true
			for g := 0; g < groups; g++ {
				egress[ni][g] += b.egressNeed[c][g]
				ingress[ni][g] += b.ingressNeed[c][g]
				if egress[ni][g] > T || ingress[ni][g] > T {
					fits = false
				}
			}
			if fits {
				niLoad[ni]++
				cn[c] = ni
				cs[c] = ni / b.p.NIsPerSwitch
				out := dfs(i + 1)
				niLoad[ni]--
				cn[c], cs[c] = -1, -1
				if out != dimInfeasible {
					for g := 0; g < groups; g++ {
						egress[ni][g] -= b.egressNeed[c][g]
						ingress[ni][g] -= b.ingressNeed[c][g]
					}
					return out
				}
			}
			for g := 0; g < groups; g++ {
				egress[ni][g] -= b.egressNeed[c][g]
				ingress[ni][g] -= b.ingressNeed[c][g]
			}
			if b.nodes <= 0 {
				return dimExhausted
			}
		}
		return dimInfeasible
	}
	return dfs(0), res
}
