package exact

import (
	"context"
	"strings"
	"testing"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/search"
	_ "nocmap/internal/search/population" // register ga/pso/abc for the soundness sweep
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
	"nocmap/internal/verify"
)

func prepare(t *testing.T, d *traffic.Design) (*usecase.Prepared, int) {
	t.Helper()
	prep, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	return prep, d.NumCores()
}

// grid16 is the hand-checkable design whose optimum is provably the 2x2
// mesh under default parameters: eight disjoint flows of 1900 MB/s. One
// flow needs ceil(1900 / 31.25) = 61 of the 64 slots of its source NI's
// egress link, so no NI can host two sources (or two destinations). Eight
// sources therefore need eight NIs — four switches. The growth sequence's
// smaller fabrics die exactly as the branch-and-bound must prove: 1x1
// seats only 8 of the 16 cores, and 1x2 / 1x3 (4 / 6 NIs) cannot give the
// eight sources an egress link each.
func grid16(t *testing.T) (*usecase.Prepared, int) {
	t.Helper()
	var flows []traffic.Flow
	for i := 0; i < 8; i++ {
		flows = append(flows, traffic.Flow{Src: traffic.CoreID(i), Dst: traffic.CoreID(8 + i), BandwidthMBs: 1900})
	}
	return prepare(t, &traffic.Design{
		Name:  "grid16",
		Cores: traffic.MakeCores(16),
		UseCases: []*traffic.UseCase{
			{Name: "all", Flows: flows},
		},
	})
}

func d1(t *testing.T) (*usecase.Prepared, int) {
	t.Helper()
	d, err := bench.D1()
	if err != nil {
		t.Fatal(err)
	}
	return prepare(t, d)
}

func d2(t *testing.T) (*usecase.Prepared, int) {
	t.Helper()
	d, err := bench.D2()
	if err != nil {
		t.Fatal(err)
	}
	return prepare(t, d)
}

// TestGrid16Optimum: the branch-and-bound must prove the 2x2 optimum on
// the hand-checkable design — a tight bound established by real tree
// search (1x2 and 1x3 are seat-feasible, so only the slot-demand descent
// can rule them out).
func TestGrid16Optimum(t *testing.T) {
	prep, n := grid16(t)
	p := core.DefaultParams()
	res, err := BranchBound{}.Search(context.Background(), prep, n, p, search.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.LowerBoundSwitches != 4 {
		t.Fatalf("lower bound = %d, want 4 (hand-checked optimum)", res.LowerBoundSwitches)
	}
	if !res.LowerBoundExact {
		t.Fatal("bound not proven exact within the default budget")
	}
	if got := res.Mapping.SwitchCount(); got != 4 {
		t.Fatalf("returned mapping has %d switches, want the proven optimum 4", got)
	}
	if v := verify.Check(res.Mapping); len(v) > 0 {
		t.Fatalf("exact result fails verification: %v", v)
	}
}

// TestD1ProvenOptimal: D1's greedy mapping sits on the seat-minimal fabric
// (26 cores, 8 seats per switch -> at least 4 switches), so the exact
// engine proves optimality by seat bounds alone — instantly and within any
// budget. This is the bound behind the optimality gap the service reports
// for D1.
func TestD1ProvenOptimal(t *testing.T) {
	prep, n := d1(t)
	p := core.DefaultParams()
	res, err := BranchBound{}.Search(context.Background(), prep, n, p, search.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.LowerBoundExact {
		t.Fatalf("D1 bound not exact: lb=%d, switches=%d", res.LowerBoundSwitches, res.Mapping.SwitchCount())
	}
	if res.LowerBoundSwitches != res.Mapping.SwitchCount() {
		t.Fatalf("exact bound %d does not match returned mapping's %d switches",
			res.LowerBoundSwitches, res.Mapping.SwitchCount())
	}
	if lb, seat := res.LowerBoundSwitches, res.Mapping.SeatLowerBound(); lb < seat {
		t.Fatalf("exact bound %d below the seat bound %d", lb, seat)
	}
	if gap := search.Gap(res.Mapping.SwitchCount(), res.LowerBoundSwitches); gap != 0 {
		t.Fatalf("proven-optimal D1 reports gap %v, want 0", gap)
	}
}

// TestBoundSoundAcrossEngines: on every design the bound must sit at or
// below the switch count of every heuristic engine's result — a bound that
// ever exceeds a feasible mapping is a soundness bug, not a weak bound.
func TestBoundSoundAcrossEngines(t *testing.T) {
	cases := []struct {
		name string
		prep func(*testing.T) (*usecase.Prepared, int)
	}{{"grid16", grid16}, {"d1", d1}, {"d2", d2}}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prep, n := tc.prep(t)
			p := core.DefaultParams()
			opts := search.DefaultOptions()
			opts.Nodes = 50000 // keep the exhaustive phase fast; the bound stays provable
			res, err := BranchBound{}.Search(context.Background(), prep, n, p, opts)
			if err != nil {
				t.Fatal(err)
			}
			lb := res.LowerBoundSwitches
			if lb < 1 {
				t.Fatalf("lower bound %d malformed", lb)
			}
			for _, name := range search.Names() {
				if name == "exact" {
					continue
				}
				eng, err := search.New(name)
				if err != nil {
					t.Fatal(err)
				}
				hopts := search.DefaultOptions()
				hopts.Seed = 11
				hopts.Iters = 40
				hopts.Seeds = 2
				hopts.Restarts = 2
				hopts.Population = 8
				hopts.Generations = 4
				hres, err := eng.Search(context.Background(), prep, n, p, hopts)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if hres.Mapping.SwitchCount() < lb {
					t.Fatalf("engine %s found %d switches BELOW the claimed lower bound %d",
						name, hres.Mapping.SwitchCount(), lb)
				}
			}
		})
	}
}

// TestDeterministicBound: the node budget is counted in deterministic tree
// units, so a fixed budget reproduces the identical bound and result.
func TestDeterministicBound(t *testing.T) {
	prep, n := d2(t)
	p := core.DefaultParams()
	opts := search.DefaultOptions()
	opts.Nodes = 20000
	run := func() *core.Result {
		r, err := BranchBound{}.Search(context.Background(), prep, n, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.LowerBoundSwitches != b.LowerBoundSwitches || a.LowerBoundExact != b.LowerBoundExact {
		t.Fatalf("bound not deterministic: (%d,%v) vs (%d,%v)",
			a.LowerBoundSwitches, a.LowerBoundExact, b.LowerBoundSwitches, b.LowerBoundExact)
	}
	if a.Stats != b.Stats || a.Mapping.SwitchCount() != b.Mapping.SwitchCount() {
		t.Fatalf("result not deterministic: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestNodesBudgetHonored: a tiny budget must still produce a well-formed
// (weaker) bound, never an error.
func TestNodesBudgetHonored(t *testing.T) {
	prep, n := d2(t)
	p := core.DefaultParams()
	for _, nodes := range []int{1, 100, 5000} {
		opts := search.DefaultOptions()
		opts.Nodes = nodes
		res, err := BranchBound{}.Search(context.Background(), prep, n, p, opts)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if res.LowerBoundSwitches < 1 || res.LowerBoundSwitches > res.Mapping.SwitchCount() {
			t.Fatalf("nodes=%d: bound %d out of range (mapping has %d switches)",
				nodes, res.LowerBoundSwitches, res.Mapping.SwitchCount())
		}
	}
}

// TestRegistered: the engine joins the registry as "exact".
func TestRegistered(t *testing.T) {
	eng, err := search.New("exact")
	if err != nil {
		t.Fatal(err)
	}
	if eng.Name() != "exact" {
		t.Fatalf("Name() = %q", eng.Name())
	}
	// The registry error text should list it for exit-2 CLI messages.
	_, err = search.New("no-such-engine")
	if err == nil || !strings.Contains(err.Error(), "exact") {
		t.Fatalf("unknown-engine error should enumerate exact: %v", err)
	}
}
