package search

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

// fig5 is the paper's two-use-case worked example: small enough that every
// engine finishes in milliseconds.
func fig5(t *testing.T) (*usecase.Prepared, int) {
	t.Helper()
	d := &traffic.Design{
		Name:  "fig5",
		Cores: traffic.MakeCores(4),
		UseCases: []*traffic.UseCase{
			{Name: "use-case-1", Flows: []traffic.Flow{
				{Src: 0, Dst: 1, BandwidthMBs: 10},
				{Src: 1, Dst: 2, BandwidthMBs: 75},
				{Src: 2, Dst: 3, BandwidthMBs: 100},
			}},
			{Name: "use-case-2", Flows: []traffic.Flow{
				{Src: 2, Dst: 3, BandwidthMBs: 42},
				{Src: 0, Dst: 2, BandwidthMBs: 11},
				{Src: 1, Dst: 3, BandwidthMBs: 52},
			}},
		},
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	return prep, d.NumCores()
}

func d1(t *testing.T) (*usecase.Prepared, int) {
	t.Helper()
	d, err := bench.D1()
	if err != nil {
		t.Fatal(err)
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	return prep, d.NumCores()
}

func TestRegistry(t *testing.T) {
	want := []string{"anneal", "greedy", "portfolio"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
		e, err := New(want[i])
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() != want[i] {
			t.Fatalf("New(%q).Name() = %q", want[i], e.Name())
		}
	}
	if _, err := New("tabu"); err == nil {
		t.Fatal("New(tabu) should fail until the engine exists")
	}
}

func TestGreedyMatchesCoreMap(t *testing.T) {
	prep, n := fig5(t)
	p := core.DefaultParams()
	want, err := core.Map(prep, n, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Greedy{}.Search(context.Background(), prep, n, p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got.Mapping.SwitchCount() != want.Mapping.SwitchCount() || got.Stats != want.Stats {
		t.Fatalf("greedy engine diverged from core.Map: %+v vs %+v", got.Stats, want.Stats)
	}
}

// TestAnnealDeterministic: a fixed seed must reproduce the run exactly —
// same placement, same statistics.
func TestAnnealDeterministic(t *testing.T) {
	prep, n := fig5(t)
	p := core.DefaultParams()
	opts := DefaultOptions()
	opts.Seed = 42
	run := func() *core.Result {
		r, err := Anneal{}.Search(context.Background(), prep, n, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Stats != b.Stats {
		t.Fatalf("anneal not deterministic under fixed seed: %+v vs %+v", a.Stats, b.Stats)
	}
	for c := range a.Mapping.CoreSwitch {
		if a.Mapping.CoreSwitch[c] != b.Mapping.CoreSwitch[c] || a.Mapping.CoreNI[c] != b.Mapping.CoreNI[c] {
			t.Fatalf("anneal placements diverge at core %d", c)
		}
	}
}

// TestAnnealNeverWorseThanGreedyD1: on the D1 suite the annealer must not
// lose to its own starting point, in switch count or in weighted cost.
func TestAnnealNeverWorseThanGreedyD1(t *testing.T) {
	prep, n := d1(t)
	p := core.DefaultParams()
	opts := DefaultOptions()
	greedy, err := core.Map(prep, n, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2, 3} {
		opts.Seed = seed
		res, err := Anneal{}.Search(context.Background(), prep, n, p, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Mapping.SwitchCount() > greedy.Mapping.SwitchCount() {
			t.Fatalf("seed %d: anneal used %d switches, greedy %d",
				seed, res.Mapping.SwitchCount(), greedy.Mapping.SwitchCount())
		}
		if got, want := opts.Weights.Of(res), opts.Weights.Of(greedy); got > want+1e-9 {
			t.Fatalf("seed %d: anneal cost %.6f worse than greedy %.6f", seed, got, want)
		}
	}
}

func TestPortfolioDeterministicAndNotWorse(t *testing.T) {
	prep, n := fig5(t)
	p := core.DefaultParams()
	opts := DefaultOptions()
	opts.Seeds = 3
	greedy, err := core.Map(prep, n, p)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *core.Result {
		r, err := Portfolio{}.Search(context.Background(), prep, n, p, opts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Stats != b.Stats {
		t.Fatalf("portfolio not deterministic under fixed seed: %+v vs %+v", a.Stats, b.Stats)
	}
	if got, want := opts.Weights.Of(a), opts.Weights.Of(greedy); got > want+1e-9 {
		t.Fatalf("portfolio cost %.6f worse than greedy %.6f", got, want)
	}
}

// TestPortfolioCancellation: a context cancelled before the search starts
// must surface promptly as an error, not hang the worker pool.
func TestPortfolioCancellation(t *testing.T) {
	prep, n := d1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := Portfolio{}.Search(ctx, prep, n, core.DefaultParams(), DefaultOptions())
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled portfolio returned no error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled portfolio did not return")
	}
}

// TestPortfolioBudget: with a tight wall-clock budget the portfolio still
// terminates and, because the greedy member runs to completion, still
// produces a feasible result.
func TestPortfolioBudget(t *testing.T) {
	prep, n := d1(t)
	opts := DefaultOptions()
	opts.Budget = 50 * time.Millisecond
	done := make(chan struct{})
	var res *core.Result
	var err error
	go func() {
		res, err = Portfolio{}.Search(context.Background(), prep, n, core.DefaultParams(), opts)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("budgeted portfolio did not terminate")
	}
	if err != nil {
		t.Fatalf("budgeted portfolio failed: %v", err)
	}
	if res == nil || res.Mapping == nil {
		t.Fatal("budgeted portfolio returned no mapping")
	}
}

// Every engine must honour the topology spec in core.Params: on a torus
// request large enough to leave the degenerate sizes, the solution fabric
// carries wrap links, and the metaheuristics still never do worse than
// greedy under the shared cost weights.
func TestEnginesExploreTorus(t *testing.T) {
	prep, numCores := fig5(t)
	p := core.DefaultParams()
	p.NIsPerSwitch = 1
	p.CoresPerNI = 1 // 4 cores -> at least 4 switches, so wrap links can exist
	p.MaxMeshDim = 6
	p.Topology = topology.Spec{Kind: topology.KindTorus}
	opts := DefaultOptions()
	opts.Iters = 12
	opts.Seeds = 2

	greedyRes, err := Greedy{}.Search(context.Background(), prep, numCores, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := opts.Weights.Of(greedyRes)
	for _, name := range Names() {
		eng, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Search(context.Background(), prep, numCores, p, opts)
		if err != nil {
			t.Fatalf("%s on torus: %v", name, err)
		}
		top := res.Mapping.Topology
		if top.Kind == topology.KindTorus && (top.Rows < 3 || top.Cols < 3) {
			t.Errorf("%s: degenerate torus %s", name, top)
		}
		if got := opts.Weights.Of(res); got > base+1e-9 {
			t.Errorf("%s on torus scored %v, worse than greedy %v", name, got, base)
		}
	}

	// A custom fabric pins every engine to the one loaded instance.
	ringTop := &topology.Custom{Name: "ring", Switches: 4, Links: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}
	p.Topology = topology.Spec{Kind: topology.KindCustom, Custom: ringTop}
	for _, name := range Names() {
		eng, _ := New(name)
		res, err := eng.Search(context.Background(), prep, numCores, p, opts)
		if err != nil {
			t.Fatalf("%s on ring: %v", name, err)
		}
		if res.Mapping.Topology.Kind != topology.KindCustom || res.Mapping.SwitchCount() != 4 {
			t.Errorf("%s: solved on %s, want the 4-switch ring", name, res.Mapping.Topology)
		}
	}
}

// TestFeasibleStartShrinkProbeTooSmall is the regression test for the
// seats-index panic: probing a dim with fewer NI seats than attached cores
// must return nil instead of panicking on seats[i].
func TestFeasibleStartShrinkProbeTooSmall(t *testing.T) {
	prep, n := fig5(t)
	p := core.DefaultParams()
	p.NIsPerSwitch = 1
	p.CoresPerNI = 1 // a 1x1 mesh seats exactly one core
	opts := DefaultOptions()
	opts.Restarts = 2
	a := &annealer{
		prep: prep, numCores: n, p: p, opts: opts,
		rng:   rand.New(rand.NewSource(1)),
		evals: NewEvalCache(prep, n, p),
	}
	attached := []int{0, 1, 2, 3} // four cores, one seat
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("feasibleStart panicked on a too-small probe: %v", r)
		}
	}()
	if res := a.feasibleStart(context.Background(), topology.Dim{Rows: 1, Cols: 1}, attached); res != nil {
		t.Fatalf("feasibleStart produced a start on a 1-seat mesh for 4 cores: %v", res.Mapping.Topology)
	}
}

// fakeResult builds a result with a given switch count and stats for
// exercising the portfolio's winner selection without running engines.
func fakeResult(t *testing.T, switches int, hops float64) *core.Result {
	t.Helper()
	top, err := topology.NewMesh(1, switches, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Result{
		Mapping: &core.Mapping{Topology: top},
		Stats:   core.Stats{AvgMeshHops: hops},
	}
}

// TestPortfolioPickBestTieBreaks pins the documented determinism contract:
// ties break toward the greedy base (order 0), then toward the
// lowest-numbered annealer; errors and nil results are skipped.
func TestPortfolioPickBestTieBreaks(t *testing.T) {
	w := DefaultCostWeights()
	base := fakeResult(t, 4, 2.0)

	// All members tie with the base: the base must win.
	tied := []outcome{
		{order: 2, res: fakeResult(t, 4, 2.0)},
		{order: 1, res: fakeResult(t, 4, 2.0)},
	}
	if got := pickBest(base, tied, w); got != base {
		t.Error("tie with the base did not resolve to the greedy base")
	}

	// Two members strictly better and tied with each other: lowest order wins.
	b1, b2 := fakeResult(t, 3, 2.0), fakeResult(t, 3, 2.0)
	better := []outcome{
		{order: 3, res: b2},
		{order: 1, res: b1},
	}
	if got := pickBest(base, better, w); got != b1 {
		t.Error("tie between annealers did not resolve to the lowest order")
	}

	// A strictly better result beats a lower-ordered worse one.
	best := fakeResult(t, 2, 5.0)
	mixed := []outcome{
		{order: 1, res: fakeResult(t, 3, 1.0)},
		{order: 4, res: best},
	}
	if got := pickBest(base, mixed, w); got != best {
		t.Error("lowest cost did not win over lower order")
	}

	// Errors and nil results never dethrone the base.
	failed := []outcome{
		{order: 1, err: context.Canceled},
		{order: 2, res: nil},
	}
	if got := pickBest(base, failed, w); got != base {
		t.Error("failed members displaced the greedy base")
	}
}

// TestPortfolioWorkersClamped: zero and absurdly large Workers values are
// clamped to the job count — the search terminates and, with a fixed seed,
// produces the same result regardless of the pool shape.
func TestPortfolioWorkersClamped(t *testing.T) {
	prep, n := fig5(t)
	p := core.DefaultParams()
	var ref *core.Result
	for _, workers := range []int{0, 1, 1000} {
		opts := DefaultOptions()
		opts.Seeds = 3
		opts.Workers = workers
		res, err := Portfolio{}.Search(context.Background(), prep, n, p, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Stats != ref.Stats || res.Mapping.SwitchCount() != ref.Mapping.SwitchCount() {
			t.Errorf("workers=%d diverged: %+v vs %+v", workers, res.Stats, ref.Stats)
		}
	}
	// Seeds=0 degenerates to the pure greedy result without deadlocking.
	opts := DefaultOptions()
	opts.Seeds = 0
	res, err := Portfolio{}.Search(context.Background(), prep, n, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := core.Map(prep, n, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != greedy.Stats {
		t.Errorf("seeds=0 portfolio returned %+v, want the greedy result %+v", res.Stats, greedy.Stats)
	}
}

// TestAnnealProgressCounts: the annealer's progress events carry cumulative
// move counters — monotone across events, final totals on StageDone, and
// identical across runs with the same seed.
func TestAnnealProgressCounts(t *testing.T) {
	prep, n := d1(t)
	p := core.DefaultParams()
	run := func() []Event {
		var events []Event
		opts := DefaultOptions()
		opts.Seed = 2
		opts.Progress = func(e Event) { events = append(events, e) }
		if _, err := (Anneal{}).Search(context.Background(), prep, n, p, opts); err != nil {
			t.Fatal(err)
		}
		return events
	}
	events := run()

	var prev Counts
	var done *Event
	for i := range events {
		e := events[i]
		if e.Moves < prev.Moves || e.Accepted < prev.Accepted || e.Restarts < prev.Restarts {
			t.Fatalf("counts went backwards at event %d: %+v after %+v", i, e.Counts, prev)
		}
		prev = e.Counts
		if e.Stage == StageDone {
			done = &events[i]
		}
	}
	if done == nil {
		t.Fatal("no StageDone event")
	}
	if done.Moves <= 0 || done.Accepted <= 0 {
		t.Fatalf("final counts %+v should show moves and acceptances", done.Counts)
	}
	if done.Accepted > done.Moves {
		t.Fatalf("accepted %d exceeds moves tried %d", done.Accepted, done.Moves)
	}

	again := run()
	if len(again) != len(events) || again[len(again)-1].Counts != *(&done.Counts) {
		t.Fatalf("counts not reproducible under fixed seed: %+v vs %+v",
			again[len(again)-1].Counts, done.Counts)
	}
}
