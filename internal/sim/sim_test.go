package sim

import (
	"testing"

	"nocmap/internal/core"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

func mapped(t *testing.T, d *traffic.Design) *core.Mapping {
	t.Helper()
	pr, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Map(pr, d.NumCores(), core.DefaultParams())
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	return res.Mapping
}

func design() *traffic.Design {
	return &traffic.Design{
		Name:  "simfix",
		Cores: traffic.MakeCores(6),
		UseCases: []*traffic.UseCase{
			{Name: "a", Flows: []traffic.Flow{
				{Src: 0, Dst: 1, BandwidthMBs: 500},
				{Src: 1, Dst: 2, BandwidthMBs: 250, MaxLatencyNS: 2000},
				{Src: 3, Dst: 4, BandwidthMBs: 125},
			}},
			{Name: "b", Flows: []traffic.Flow{
				{Src: 0, Dst: 1, BandwidthMBs: 100},
				{Src: 4, Dst: 5, BandwidthMBs: 800},
			}},
			{Name: "c", Flows: []traffic.Flow{
				{Src: 5, Dst: 0, BandwidthMBs: 300},
			}},
		},
		SmoothPairs: [][2]int{{0, 2}},
	}
}

func TestRunDeliversReservedBandwidth(t *testing.T) {
	m := mapped(t, design())
	cfg := DefaultConfig(m)
	r, err := Run(m, 0, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r.Conflicts != 0 {
		t.Fatalf("conflicts = %d, want 0 (contention-free routing)", r.Conflicts)
	}
	if r.SimulatedSlots != cfg.Slots || r.UseCase != "a" {
		t.Errorf("result header wrong: %+v", r)
	}
	for _, f := range r.Flows {
		// Delivered rate must reach the demanded rate within a few percent
		// (start-up transient of the first table rotation).
		var want float64
		for _, fl := range m.Prep.UseCases[0].Flows {
			if fl.Key() == f.Pair {
				want = fl.BandwidthMBs
			}
		}
		if f.DeliveredMBs < 0.93*want {
			t.Errorf("flow %d->%d delivered %.1f MB/s, demanded %.1f",
				f.Pair.Src, f.Pair.Dst, f.DeliveredMBs, want)
		}
		if f.Packets == 0 {
			t.Errorf("flow %d->%d delivered no packets", f.Pair.Src, f.Pair.Dst)
		}
	}
}

func TestRunLatencyWithinAnalyticBound(t *testing.T) {
	m := mapped(t, design())
	for uc := range m.Prep.UseCases {
		r, err := Run(m, uc, DefaultConfig(m))
		if err != nil {
			t.Fatalf("Run(%d): %v", uc, err)
		}
		for _, f := range r.Flows {
			if f.Packets > 0 && f.MaxLatencySlots > f.AnalyticBoundSlots {
				t.Errorf("use-case %d flow %d->%d: observed latency %d > bound %d",
					uc, f.Pair.Src, f.Pair.Dst, f.MaxLatencySlots, f.AnalyticBoundSlots)
			}
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	m := mapped(t, design())
	if _, err := Run(m, -1, DefaultConfig(m)); err == nil {
		t.Error("negative use-case accepted")
	}
	if _, err := Run(m, 99, DefaultConfig(m)); err == nil {
		t.Error("out-of-range use-case accepted")
	}
	if _, err := Run(m, 0, Config{Slots: 0}); err == nil {
		t.Error("zero slots accepted")
	}
}

func TestSwitchCost(t *testing.T) {
	m := mapped(t, design())
	cfg := DefaultConfig(m)
	// Use-cases 0 and 2 share a group (smooth pair): zero cost.
	c, err := SwitchCost(m, 0, 2, cfg)
	if err != nil || c != 0 {
		t.Errorf("smooth switch cost = %d, %v; want 0", c, err)
	}
	// Cross-group switch costs per reloaded slot-table entry.
	c, err = SwitchCost(m, 0, 1, cfg)
	if err != nil || c <= 0 {
		t.Errorf("cross-group switch cost = %d, %v; want > 0", c, err)
	}
	// Cost scales with the target configuration's entries.
	entries := 0
	for _, a := range m.Configs[1].Assignments {
		entries += a.SlotCount * len(a.Path)
	}
	if c != entries*cfg.ReconfigCyclesPerEntry {
		t.Errorf("cost = %d, want %d entries x %d cycles", c, entries, cfg.ReconfigCyclesPerEntry)
	}
	if _, err := SwitchCost(m, 0, 99, cfg); err == nil {
		t.Error("out-of-range switch accepted")
	}
}

func TestVerifyAgainstAnalyticClean(t *testing.T) {
	m := mapped(t, design())
	if problems := VerifyAgainstAnalytic(m, 16*m.Params.SlotTableSize); len(problems) != 0 {
		t.Errorf("clean mapping reported problems: %v", problems)
	}
}

func TestVerifyDetectsBrokenReservation(t *testing.T) {
	m := mapped(t, design())
	// Sabotage: give two flows of use-case "a" identical paths and starts.
	ucA := m.Configs[0].Assignments
	var first *core.Assignment
	for _, f := range m.Prep.UseCases[0].Flows {
		a := ucA[f.Key()]
		if first == nil {
			first = a
			continue
		}
		a.Path = append([]int(nil), first.Path...)
		a.Starts = append([]int(nil), first.Starts...)
		a.SlotCount = first.SlotCount
		break
	}
	r, err := Run(m, 0, DefaultConfig(m))
	if err != nil {
		t.Fatal(err)
	}
	if r.Conflicts == 0 {
		t.Error("sabotaged configuration showed no conflicts")
	}
}
