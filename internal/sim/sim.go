// Package sim is the phase-4 validation substrate: a slot-accurate simulator
// of the TDMA NoC that executes a mapped configuration and measures what the
// mapper only promised analytically. It replaces the paper's SystemC/RTL
// simulation flow.
//
// The simulator advances time in TDMA slots. Each guaranteed-throughput flow
// accumulates traffic at its nominal bandwidth in its source NI queue; when
// one of the flow's reserved starting slots comes up and the queue holds a
// packet, the packet enters the network and advances one link per slot
// (contention-free routing). The simulator asserts that no two packets ever
// occupy the same (link, slot) — the hardware invariant behind Æthereal's
// guarantees — and reports per-flow delivered bandwidth and observed
// worst-case latency, which must not exceed the analytic bound.
//
// Use-case switches are modelled explicitly: switching within a
// smooth-switching group keeps the slot tables (zero reconfiguration cost),
// while switching across groups tears down and reloads every slot-table
// entry of the new configuration, costing a programmable number of cycles
// per entry (Section 3: the re-configuration happens during the use-case
// switching time).
package sim

import (
	"fmt"

	"nocmap/internal/core"
	"nocmap/internal/tdma"
	"nocmap/internal/traffic"
)

// Config parameterizes a run.
type Config struct {
	// Slots is the number of TDMA slots to simulate (whole table rotations
	// are recommended: a multiple of the mapping's slot-table size).
	Slots int
	// ReconfigCyclesPerEntry is the cost of writing one slot-table entry
	// during a cross-group use-case switch.
	ReconfigCyclesPerEntry int
}

// DefaultConfig simulates 64 table rotations.
func DefaultConfig(m *core.Mapping) Config {
	return Config{
		Slots:                  64 * m.Params.SlotTableSize,
		ReconfigCyclesPerEntry: 4,
	}
}

// FlowStats reports one flow's measured behaviour.
type FlowStats struct {
	Pair traffic.PairKey
	// InjectedBytes and DeliveredBytes measure offered and delivered load.
	InjectedBytes  float64
	DeliveredBytes float64
	// DeliveredMBs is the delivered rate over the simulated window.
	DeliveredMBs float64
	// Packets counts delivered packets (one packet per granted slot use).
	Packets int
	// MaxLatencySlots is the worst observed source-queue wait plus network
	// traversal, in slots.
	MaxLatencySlots int
	// AnalyticBoundSlots is the mapper's worst-case bound.
	AnalyticBoundSlots int
}

// Result is the outcome of simulating one use-case.
type Result struct {
	UseCase string
	Flows   []FlowStats
	// Conflicts counts (link, slot) double-bookings observed; it must be 0
	// for a sound configuration.
	Conflicts int
	// SimulatedSlots echoes the run length.
	SimulatedSlots int
}

// Run simulates use-case uc of the mapping for cfg.Slots slots.
func Run(m *core.Mapping, uc int, cfg Config) (*Result, error) {
	if uc < 0 || uc >= len(m.Prep.UseCases) {
		return nil, fmt.Errorf("sim: use-case %d out of range", uc)
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("sim: slot budget %d invalid", cfg.Slots)
	}
	u := m.Prep.UseCases[uc]
	cfgAssign := m.Configs[uc].Assignments
	T := m.Params.SlotTableSize
	// One slot carries SlotCycles flits of LinkWidth bits.
	slotBytes := float64(m.Params.SlotCycles) * float64(m.Params.LinkWidthBits) / 8

	type flowState struct {
		pair      traffic.PairKey
		assign    *core.Assignment
		rateBytes float64 // bytes accumulated per slot period
		queue     float64 // backlog bytes
		// queuedAt tracks the age (in slots) of the oldest queued packet.
		oldest   int
		hasOld   bool
		starts   map[int]bool
		stats    FlowStats
		slotTime float64
	}
	slotSeconds := float64(m.Params.SlotCycles) / (m.Params.FreqMHz * 1e6)
	flows := make([]*flowState, 0, len(u.Flows))
	for _, f := range u.Flows {
		a := cfgAssign[f.Key()]
		if a == nil {
			return nil, fmt.Errorf("sim: flow %d->%d has no assignment", f.Src, f.Dst)
		}
		fs := &flowState{
			pair:      f.Key(),
			assign:    a,
			rateBytes: f.BandwidthMBs * 1e6 * slotSeconds,
			starts:    make(map[int]bool, len(a.Starts)),
		}
		for _, s := range a.Starts {
			fs.starts[s] = true
		}
		fs.stats.Pair = f.Key()
		fs.stats.AnalyticBoundSlots = tdma.WorstCaseLatencySlots(a.Starts, len(a.Path), T)
		flows = append(flows, fs)
	}

	// Occupancy check: (link, absolute slot) -> flow index.
	res := &Result{UseCase: u.Name, SimulatedSlots: cfg.Slots}
	occupied := make(map[[2]int]int)
	for t := 0; t < cfg.Slots; t++ {
		tableSlot := t % T
		for fi, fs := range flows {
			// Traffic accumulates continuously.
			fs.queue += fs.rateBytes
			fs.stats.InjectedBytes += fs.rateBytes
			if fs.queue >= slotBytes && !fs.hasOld {
				fs.hasOld = true
				fs.oldest = t
			}
			if !fs.starts[tableSlot] || fs.queue < slotBytes {
				continue
			}
			// A packet departs: it occupies link h at slot t+h.
			for h, link := range fs.assign.Path {
				cell := [2]int{link, t + h}
				if other, dup := occupied[cell]; dup && other != fi {
					res.Conflicts++
				}
				occupied[cell] = fi
			}
			fs.queue -= slotBytes
			fs.stats.DeliveredBytes += slotBytes
			fs.stats.Packets++
			lat := (t - fs.oldest) + len(fs.assign.Path) + 1
			if lat > fs.stats.MaxLatencySlots {
				fs.stats.MaxLatencySlots = lat
			}
			if fs.queue < slotBytes {
				fs.hasOld = false
			} else {
				// The next queued packet reaches the head of the queue once
				// this slot completes.
				fs.oldest = t + 1
			}
		}
	}
	window := float64(cfg.Slots) * slotSeconds
	for _, fs := range flows {
		fs.stats.DeliveredMBs = fs.stats.DeliveredBytes / 1e6 / window
		res.Flows = append(res.Flows, fs.stats)
	}
	return res, nil
}

// SwitchCost reports the reconfiguration cost, in cycles, of switching from
// use-case a to use-case b: zero within a smooth-switching group, otherwise
// proportional to the number of slot-table entries of b's configuration.
func SwitchCost(m *core.Mapping, a, b int, cfg Config) (int, error) {
	n := len(m.Prep.UseCases)
	if a < 0 || a >= n || b < 0 || b >= n {
		return 0, fmt.Errorf("sim: switch %d->%d out of range", a, b)
	}
	if m.Prep.SameGroup(a, b) {
		return 0, nil
	}
	entries := 0
	for _, as := range m.Configs[b].Assignments {
		entries += as.SlotCount * len(as.Path)
	}
	return entries * cfg.ReconfigCyclesPerEntry, nil
}

// VerifyAgainstAnalytic runs every use-case briefly and reports any flow
// whose measured behaviour contradicts the mapper's guarantees: conflicts,
// under-delivery (when backlogged), or latency above the analytic bound.
func VerifyAgainstAnalytic(m *core.Mapping, slots int) []string {
	var problems []string
	for uc := range m.Prep.UseCases {
		r, err := Run(m, uc, Config{Slots: slots, ReconfigCyclesPerEntry: 4})
		if err != nil {
			problems = append(problems, err.Error())
			continue
		}
		if r.Conflicts > 0 {
			problems = append(problems, fmt.Sprintf("use-case %s: %d slot conflicts", r.UseCase, r.Conflicts))
		}
		for _, f := range r.Flows {
			if f.Packets > 0 && f.MaxLatencySlots > f.AnalyticBoundSlots {
				problems = append(problems, fmt.Sprintf(
					"use-case %s flow %d->%d: latency %d slots exceeds bound %d",
					r.UseCase, f.Pair.Src, f.Pair.Dst, f.MaxLatencySlots, f.AnalyticBoundSlots))
			}
		}
	}
	return problems
}
