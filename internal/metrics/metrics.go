// Package metrics is the toolkit's dependency-free instrumentation layer:
// counters, gauges and fixed-bucket latency histograms over atomic
// operations, collected in a Registry and rendered in the Prometheus text
// exposition format (version 0.0.4). The service scrapes one Registry at
// GET /v1/metrics; any embedder can mount Registry.Handler on its own mux.
//
// Design constraints, in order:
//
//   - Zero dependencies. The whole package is stdlib-only, so the toolkit's
//     go.mod stays empty and the hot paths pay no abstraction tax they did
//     not ask for: incrementing a Counter is one atomic add.
//   - Safe under full concurrency. Every metric type may be updated from any
//     number of goroutines while another renders the exposition; scrapes are
//     wait-free for writers. A scrape is not an atomic snapshot across
//     series — histogram sums may trail their buckets by in-flight
//     observations — which is the standard exposition-format looseness.
//   - Convention-checked at registration. Metric and label names are
//     validated against the Prometheus grammar and duplicate registrations
//     panic immediately: a misnamed metric is a programming error that
//     should fail the first test that touches it, not a silent scrape-time
//     omission (CI greps the exposition output for naming violations on top).
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter is a monotonically increasing count. The zero value is unusable;
// obtain one from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (a counter never goes down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer value that can go up and down (queue lengths, running
// jobs). For values computed at scrape time, use Registry.GaugeFunc.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a float64 value that can go up and down. It backs the
// labeled gauge families (GaugeVec), whose values are not always integers
// (utilizations, optimality gaps); the unlabeled integer Gauge stays the
// cheap common case.
type FloatGauge struct {
	v atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Value reads the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Histogram is a fixed-bucket distribution of float64 observations
// (typically seconds). Buckets are cumulative upper bounds, Prometheus
// style; an implicit +Inf bucket catches everything beyond the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, or the +Inf slot
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reads the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets returns the default latency bounds, in seconds: 1ms to 60s,
// spanning cache-hit-fast handlers through multi-second portfolio runs.
func DefBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
		0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
}

// vec is the shared child table of the labeled metric types.
type vec[T any] struct {
	labels []string
	mk     func() *T

	mu       sync.RWMutex
	children map[string]*T
	keys     []string // sorted child keys for stable rendering
}

func newVec[T any](labels []string, mk func() *T) *vec[T] {
	return &vec[T]{labels: labels, mk: mk, children: make(map[string]*T)}
}

// with returns the child for the given label values, creating it on first
// use. The value count must match the label count.
func (v *vec[T]) with(values []string) *T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %d label values for %d labels %v", len(values), len(v.labels), v.labels))
	}
	key := strings.Join(values, "\xff")
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[key]; ok {
		return c
	}
	c = v.mk()
	v.children[key] = c
	v.keys = append(v.keys, key)
	sort.Strings(v.keys)
	return c
}

// snapshot returns the children in sorted-key order with their label values.
func (v *vec[T]) snapshot() (keys [][]string, children []*T) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, k := range v.keys {
		keys = append(keys, strings.Split(k, "\xff"))
		children = append(children, v.children[k])
	}
	return keys, children
}

// CounterVec is a Counter family partitioned by label values, e.g. HTTP
// requests by route and status.
type CounterVec struct {
	*vec[Counter]
}

// WithLabelValues returns the counter for the given label values (in the
// order the labels were declared), creating it on first use.
func (cv *CounterVec) WithLabelValues(values ...string) *Counter { return cv.with(values) }

// GaugeVec is a FloatGauge family partitioned by label values, e.g. the
// latest optimality gap by engine.
type GaugeVec struct {
	*vec[FloatGauge]
}

// WithLabelValues returns the gauge for the given label values (in the order
// the labels were declared), creating it on first use.
func (gv *GaugeVec) WithLabelValues(values ...string) *FloatGauge { return gv.with(values) }

// HistogramVec is a Histogram family partitioned by label values, e.g.
// engine latency by engine name. All children share one bucket layout.
type HistogramVec struct {
	*vec[Histogram]
}

// WithLabelValues returns the histogram for the given label values, creating
// it on first use.
func (hv *HistogramVec) WithLabelValues(values ...string) *Histogram { return hv.with(values) }

// family is one registered metric name: its metadata plus a renderer.
type family struct {
	name, help, typ string
	render          func(w *errWriter, name string)
}

// Registry holds the registered metric families of one process (or one
// service instance) and renders them as a Prometheus text exposition.
// Registration methods panic on invalid or duplicate names — both are
// programming errors. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string, labels []string, render func(*errWriter, string)) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.families[name]; ok {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	r.families[name] = &family{name: name, help: help, typ: typ, render: render}
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", nil, func(w *errWriter, n string) {
		w.seriesInt(n, nil, nil, c.Value())
	})
	return c
}

// CounterVec registers and returns a new labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	cv := &CounterVec{newVec(labels, func() *Counter { return &Counter{} })}
	r.register(name, help, "counter", labels, func(w *errWriter, n string) {
		values, children := cv.snapshot()
		for i, c := range children {
			w.seriesInt(n, labels, values[i], c.Value())
		}
	})
	return cv
}

// CounterFunc registers a counter whose value is computed by fn at scrape
// time — for monotonic counts owned by another subsystem (a store backend's
// forward counter) that would otherwise need double bookkeeping. fn must be
// monotonically non-decreasing and safe for concurrent use, and must not
// call back into the registry.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, help, "counter", nil, func(w *errWriter, n string) {
		w.seriesInt(n, nil, nil, fn())
	})
}

// Gauge registers and returns a new integer gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", nil, func(w *errWriter, n string) {
		w.seriesInt(n, nil, nil, g.Value())
	})
	return g
}

// GaugeVec registers and returns a new labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	gv := &GaugeVec{newVec(labels, func() *FloatGauge { return &FloatGauge{} })}
	r.register(name, help, "gauge", labels, func(w *errWriter, n string) {
		values, children := gv.snapshot()
		for i, g := range children {
			w.seriesFloat(n, labels, values[i], g.Value())
		}
	})
	return gv
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time
// (queue lengths, uptime). fn must be safe for concurrent use and must not
// call back into the registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, func(w *errWriter, n string) {
		w.seriesFloat(n, nil, nil, fn())
	})
}

// Histogram registers and returns a new histogram with the given bucket
// upper bounds (DefBuckets when none are given).
func (r *Registry) Histogram(name, help string, buckets ...float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets()
	}
	h := newHistogram(buckets)
	r.register(name, help, "histogram", nil, func(w *errWriter, n string) {
		renderHistogram(w, n, nil, nil, h)
	})
	return h
}

// HistogramVec registers and returns a new labeled histogram family; every
// child shares the given bucket upper bounds (DefBuckets when nil).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets()
	}
	hv := &HistogramVec{newVec(labels, func() *Histogram { return newHistogram(buckets) })}
	r.register(name, help, "histogram", labels, func(w *errWriter, n string) {
		values, children := hv.snapshot()
		for i, h := range children {
			renderHistogram(w, n, labels, values[i], h)
		}
	})
	return hv
}

// WritePrometheus renders every registered family, sorted by name, in the
// Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	ew := &errWriter{w: w}
	for _, f := range fams {
		fmt.Fprintf(ew, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(ew, "# TYPE %s %s\n", f.name, f.typ)
		f.render(ew, f.name)
	}
	return ew.err
}

// Handler serves the exposition over HTTP with the 0.0.4 content type.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // headers sent; nothing to report
	})
}

// renderHistogram writes the cumulative _bucket series plus _sum and _count.
// The +Inf bucket and _count are computed from the same per-bucket reads, so
// they always agree within one scrape.
func renderHistogram(w *errWriter, name string, labels, values []string, h *Histogram) {
	var cum int64
	bl := append(append([]string(nil), labels...), "le")
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		bv := append(append([]string(nil), values...), formatFloat(bound))
		w.seriesInt(name+"_bucket", bl, bv, cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	bv := append(append([]string(nil), values...), "+Inf")
	w.seriesInt(name+"_bucket", bl, bv, cum)
	w.seriesFloat(name+"_sum", labels, values, h.Sum())
	w.seriesInt(name+"_count", labels, values, cum)
}

// errWriter accumulates the first write error so rendering code stays
// straight-line.
type errWriter struct {
	w   io.Writer
	err error
}

func (w *errWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.w.Write(p)
	if err != nil {
		w.err = err
	}
	return n, err
}

func (w *errWriter) seriesInt(name string, labels, values []string, v int64) {
	fmt.Fprintf(w, "%s%s %s\n", name, labelString(labels, values), strconv.FormatInt(v, 10))
}

func (w *errWriter) seriesFloat(name string, labels, values []string, v float64) {
	fmt.Fprintf(w, "%s%s %s\n", name, labelString(labels, values), formatFloat(v))
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func labelString(labels, values []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
