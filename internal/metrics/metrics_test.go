package metrics

import (
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("noc_things_total", "Things seen.")
	g := r.Gauge("noc_level", "Current level.")
	r.GaugeFunc("noc_constant", "A computed gauge.", func() float64 { return 2.5 })

	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters never go down
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Dec()

	out := render(t, r)
	for _, want := range []string{
		"# HELP noc_things_total Things seen.\n# TYPE noc_things_total counter\nnoc_things_total 5\n",
		"# HELP noc_level Current level.\n# TYPE noc_level gauge\nnoc_level 6\n",
		"noc_constant 2.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestCounterFuncExposition(t *testing.T) {
	r := NewRegistry()
	var n int64
	r.CounterFunc("noc_forwards_total", "Computed at scrape time.", func() int64 { return n })
	n = 42
	out := render(t, r)
	want := "# HELP noc_forwards_total Computed at scrape time.\n# TYPE noc_forwards_total counter\nnoc_forwards_total 42\n"
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing %q:\n%s", want, out)
	}
}

func TestCounterVecExposition(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("noc_http_requests_total", "Requests by route and status.", "route", "status")
	cv.WithLabelValues("/v1/map", "200").Add(3)
	cv.WithLabelValues("/v1/map", "400").Inc()
	cv.WithLabelValues("/healthz", "200").Inc()

	out := render(t, r)
	// Children render sorted by label values, so the output is stable.
	want := `noc_http_requests_total{route="/healthz",status="200"} 1
noc_http_requests_total{route="/v1/map",status="200"} 3
noc_http_requests_total{route="/v1/map",status="400"} 1
`
	if !strings.Contains(out, want) {
		t.Errorf("exposition missing sorted vec block:\nwant:\n%s\ngot:\n%s", want, out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("noc_latency_seconds", "Latency.", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 102.65; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Sum = %v, want %v", got, want)
	}

	out := render(t, r)
	want := `noc_latency_seconds_bucket{le="0.1"} 2
noc_latency_seconds_bucket{le="1"} 3
noc_latency_seconds_bucket{le="10"} 4
noc_latency_seconds_bucket{le="+Inf"} 5
noc_latency_seconds_sum 102.65
noc_latency_seconds_count 5
`
	if !strings.Contains(out, want) {
		t.Errorf("histogram exposition wrong:\nwant:\n%s\ngot:\n%s", want, out)
	}
}

func TestHistogramVecSharedBuckets(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("noc_engine_duration_seconds", "Engine latency.", []float64{1}, "engine")
	hv.WithLabelValues("greedy").Observe(0.5)
	hv.WithLabelValues("anneal").Observe(2)

	out := render(t, r)
	for _, want := range []string{
		`noc_engine_duration_seconds_bucket{engine="anneal",le="1"} 0`,
		`noc_engine_duration_seconds_bucket{engine="anneal",le="+Inf"} 1`,
		`noc_engine_duration_seconds_bucket{engine="greedy",le="1"} 1`,
		`noc_engine_duration_seconds_count{engine="greedy"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("noc_weird_total", "Help with \\ and\nnewline.", "what")
	cv.WithLabelValues("a\"b\\c\nd").Inc()

	out := render(t, r)
	if !strings.Contains(out, `# HELP noc_weird_total Help with \\ and\nnewline.`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `noc_weird_total{what="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"invalid metric name", func(r *Registry) { r.Counter("0bad", "h") }},
		{"invalid label name", func(r *Registry) { r.CounterVec("noc_ok_total", "h", "0bad") }},
		{"duplicate name", func(r *Registry) { r.Counter("noc_dup_total", "h"); r.Gauge("noc_dup_total", "h") }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", c.name)
				}
			}()
			c.fn(NewRegistry())
		})
	}

	t.Run("wrong label value count", func(t *testing.T) {
		r := NewRegistry()
		cv := r.CounterVec("noc_ok_total", "h", "a", "b")
		defer func() {
			if recover() == nil {
				t.Error("mismatched WithLabelValues did not panic")
			}
		}()
		cv.WithLabelValues("only-one")
	})
}

// TestConcurrentUpdatesAndScrapes hammers every metric type from many
// goroutines while scraping concurrently; run under -race this is the
// registry's thread-safety proof, and the final counts must be exact.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("noc_c_total", "c")
	cv := r.CounterVec("noc_cv_total", "cv", "who")
	g := r.Gauge("noc_g", "g")
	h := r.Histogram("noc_h_seconds", "h", 0.5)
	hv := r.HistogramVec("noc_hv_seconds", "hv", []float64{0.5}, "who")

	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			who := string(rune('a' + w%4))
			for i := 0; i < iters; i++ {
				c.Inc()
				cv.WithLabelValues(who).Inc()
				g.Inc()
				h.Observe(float64(i) / iters)
				hv.WithLabelValues(who).Observe(0.25)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			render(t, r)
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	out := render(t, r)
	if !strings.Contains(out, "noc_c_total 8000") {
		t.Errorf("final exposition missing exact counter total:\n%s", out)
	}
}
