package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"nocmap/internal/traffic"
)

// scrapeMetrics GETs /v1/metrics and returns the exposition body.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q is not Prometheus text 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one sample ("name" includes any label set, verbatim)
// from an exposition body; missing samples fail the test.
func metricValue(t *testing.T, body, name string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return v
		}
	}
	t.Fatalf("metric %q not found in exposition:\n%s", name, body)
	return ""
}

func wantMetric(t *testing.T, body, name, want string) {
	t.Helper()
	if got := metricValue(t, body, name); got != want {
		t.Errorf("%s = %s, want %s", name, got, want)
	}
}

func designJSON(t *testing.T, d *traffic.Design) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMetricsEndToEnd drives the service through a map, a cache hit, and a
// deduplicated batch over HTTP and asserts the exact counter deltas on
// /v1/metrics. CacheEntries=1 additionally forces an observable eviction.
// When METRICS_SNAPSHOT_FILE is set the final scrape is written there, which
// CI lints for naming conventions and uploads as a build artifact.
func TestMetricsEndToEnd(t *testing.T) {
	gate := make(chan struct{})
	registerGate("gate-metrics", gate)
	s := New(Config{Workers: 2, CacheEntries: 1})
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	cold := scrapeMetrics(t, ts.URL)
	wantMetric(t, cold, "noc_cache_hits_total", "0")
	wantMetric(t, cold, "noc_cache_misses_total", "0")
	wantMetric(t, cold, "noc_cache_evictions_total", "0")
	wantMetric(t, cold, "noc_cache_upgrades_total", "0")
	wantMetric(t, cold, "noc_dedup_joins_total", "0")
	wantMetric(t, cold, "noc_stream_events_total", "0")
	wantMetric(t, cold, "noc_queue_capacity", "64")
	wantMetric(t, cold, "noc_workers", "2")

	// One miss, then one hit on the identical request.
	mapReq := MapRequest{Design: designJSON(t, testDesign("metrics-d")), Engine: "greedy"}
	for range 2 {
		resp, body := postJSON(t, ts.URL+"/v1/map", mapReq)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/map = %d: %s", resp.StatusCode, body)
		}
	}

	// Three identical gated requests in one batch: admission is serialized
	// under the service mutex and no run can finish while the gate is open,
	// so exactly one misses and two join the in-flight run.
	batch := BatchRequest{Requests: make([]MapRequest, 3)}
	for i := range batch.Requests {
		batch.Requests[i] = MapRequest{Design: designJSON(t, testDesign("metrics-gated")), Engine: "gate-metrics"}
	}
	batchDone := make(chan struct{})
	go func() {
		defer close(batchDone)
		resp, body := postJSON(t, ts.URL+"/v1/batch", batch)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("POST /v1/batch = %d: %s", resp.StatusCode, body)
		}
	}()
	waitFor(t, "two dedup joins", func() bool {
		return s.Stats().Deduped == 2
	})
	close(gate)
	<-batchDone

	final := scrapeMetrics(t, ts.URL)
	wantMetric(t, final, "noc_cache_hits_total", "1")
	wantMetric(t, final, "noc_cache_misses_total", "2")
	wantMetric(t, final, "noc_dedup_joins_total", "2")
	// The gated result landed in the 1-entry cache, evicting the greedy one.
	wantMetric(t, final, "noc_cache_evictions_total", "1")
	wantMetric(t, final, "noc_cache_entries", "1")
	wantMetric(t, final, `noc_jobs_total{status="done"}`, "2")
	wantMetric(t, final, `noc_engine_duration_seconds_count{engine="greedy"}`, "1")
	wantMetric(t, final, `noc_engine_duration_seconds_count{engine="gate-metrics"}`, "1")
	wantMetric(t, final, `noc_http_requests_total{route="/v1/map",status="200"}`, "2")
	wantMetric(t, final, `noc_http_requests_total{route="/v1/batch",status="200"}`, "1")
	if v := metricValue(t, final, `noc_http_request_duration_seconds_count{route="/v1/map"}`); v != "2" {
		t.Errorf("map route histogram count = %s, want 2", v)
	}
	if v := metricValue(t, final, "noc_uptime_seconds"); v == "0" {
		t.Errorf("noc_uptime_seconds = %s, want > 0", v)
	}
	// Every finished job above published exactly its final event on its
	// stream log (the sync cache hit synthesizes no job): 2 jobs, 2 events.
	wantMetric(t, final, "noc_stream_events_total", "2")
	wantMetric(t, final, "noc_cache_upgrades_total", "0")

	// Serve-then-improve: a streamed greedy request completes at admission
	// with a single done event; a streamed D1 anneal (seed 2 is pinned to
	// improve past its greedy base) additionally streams a mapped event,
	// at least one improvement, and upgrades the cache entry in place.
	seed := int64(2)
	resp, body := postJSON(t, ts.URL+"/v1/map", MapRequest{
		Design: designJSON(t, testDesign("metrics-stream")), Engine: "greedy", Mode: "stream",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("streamed greedy map = %d: %s", resp.StatusCode, body)
	}
	afterGreedy := scrapeMetrics(t, ts.URL)
	wantMetric(t, afterGreedy, "noc_stream_events_total", "3")
	wantMetric(t, afterGreedy, "noc_cache_upgrades_total", "0")

	resp, body = postJSON(t, ts.URL+"/v1/map", MapRequest{
		Design: designJSON(t, d1Design(t)), Engine: "anneal", Seed: &seed,
		Mode: "stream", WaitMS: 30_000,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("streamed anneal map = %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("streamed anneal not done within its wait: %+v", st)
	}
	streamed := scrapeMetrics(t, ts.URL)
	if events := counterOf(t, streamed, "noc_stream_events_total"); events < 6 {
		// 3 from above + mapped + >=1 improved + done.
		t.Errorf("noc_stream_events_total = %v after an improving stream, want >= 6", events)
	}
	if upgrades := counterOf(t, streamed, "noc_cache_upgrades_total"); upgrades < 1 {
		t.Errorf("noc_cache_upgrades_total = %v after an improving stream, want >= 1", upgrades)
	}

	if path := os.Getenv("METRICS_SNAPSHOT_FILE"); path != "" {
		if err := os.WriteFile(path, []byte(streamed), 0o644); err != nil {
			t.Fatalf("write metrics snapshot: %v", err)
		}
		t.Logf("metrics snapshot written to %s", path)
	}
}

// counterOf parses one plain counter sample as a number.
func counterOf(t *testing.T, body, name string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscanf(metricValue(t, body, name), "%g", &v); err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return v
}

// TestMetricsSearchCounters maps with the real annealer through the service
// and checks the progress-event tap feeds the search counter families.
func TestMetricsSearchCounters(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	seed := int64(2)
	resp, body := postJSON(t, ts.URL+"/v1/map", MapRequest{
		Design: designJSON(t, testDesign("metrics-anneal")), Engine: "anneal", Seed: &seed,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/map = %d: %s", resp.StatusCode, body)
	}

	out := scrapeMetrics(t, ts.URL)
	for _, name := range []string{
		`noc_search_moves_total{engine="anneal"}`,
		`noc_search_moves_accepted_total{engine="anneal"}`,
	} {
		if v := metricValue(t, out, name); v == "0" {
			t.Errorf("%s = 0, want > 0 after an anneal run", name)
		}
	}
}

// TestMetricsTimingsOnResponse checks the per-stage timing breakdown rides
// the response envelope for fresh runs and survives cache hits.
func TestMetricsTimingsOnResponse(t *testing.T) {
	s := New(Config{Workers: 1})
	t.Cleanup(s.Close)

	for i, cached := range []bool{false, true} {
		resp, err := s.Map(t.Context(), testRequest("greedy", testDesign("timings-d")))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Cached != cached {
			t.Errorf("call %d: Cached = %v, want %v", i, resp.Cached, cached)
		}
		if resp.Timings == nil {
			t.Fatalf("call %d: response has no timings", i)
		}
		if resp.Timings.TotalMS <= 0 {
			t.Errorf("call %d: TotalMS = %v, want > 0", i, resp.Timings.TotalMS)
		}
		if resp.Timings.SearchMS > resp.Timings.TotalMS {
			t.Errorf("call %d: SearchMS %v exceeds TotalMS %v", i, resp.Timings.SearchMS, resp.Timings.TotalMS)
		}
	}
}

// TestMetricsConcurrentJobsAndScrapes hammers the shared registry from
// concurrent jobs, HTTP requests and scrapes; run under -race it proves the
// instrumentation adds no data races.
func TestMetricsConcurrentJobsAndScrapes(t *testing.T) {
	s := New(Config{Workers: 4})
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})

	var wg sync.WaitGroup
	for i := range 8 {
		wg.Add(2)
		go func() {
			defer wg.Done()
			// Distinct designs force real runs; repeats hit the cache.
			d := testDesign(fmt.Sprintf("race-%d", i%4))
			resp, body := postJSON(t, ts.URL+"/v1/map", MapRequest{Design: designJSON(t, d), Engine: "greedy"})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("POST /v1/map = %d: %s", resp.StatusCode, body)
			}
		}()
		go func() {
			defer wg.Done()
			scrapeMetrics(t, ts.URL)
		}()
	}
	wg.Wait()

	out := scrapeMetrics(t, ts.URL)
	if v := metricValue(t, out, "noc_cache_misses_total"); v == "0" {
		t.Error("no cache misses recorded after 8 concurrent maps")
	}
}
