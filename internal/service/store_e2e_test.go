package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nocmap/internal/store"
)

// newDiskService builds a service over a disk-backed store rooted at dir.
func newDiskService(t *testing.T, dir string) *Service {
	t.Helper()
	d, err := store.OpenDisk(dir, store.DiskOptions{Codec: ResponseCodec{}})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	return New(Config{Workers: 2, Store: d})
}

// TestDiskStoreSurvivesServiceRestart is the durability e2e: a result mapped
// by one service process is a byte-identical cache hit in the next process
// over the same store directory — no engine re-run.
func TestDiskStoreSurvivesServiceRestart(t *testing.T) {
	dir := t.TempDir()
	runs := registerGate("count-disk-restart", nil)
	req := testRequest("count-disk-restart", testDesign("disk-restart"))

	s1 := newDiskService(t, dir)
	first, err := s1.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request reported as cached")
	}
	if st := s1.Stats(); st.StoreBackend != "disk" || st.StoreEntries != 1 || st.CacheEntries != 1 {
		t.Errorf("stats after map = %+v, want disk backend with 1 entry", st)
	}
	s1.Close() // the "crash": the process goes away, the directory stays

	s2 := newDiskService(t, dir)
	defer s2.Close()
	second, err := s2.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("identical request after restart missed the durable cache")
	}
	if runs.Load() != 1 {
		t.Errorf("engine ran %d times across the restart, want 1", runs.Load())
	}
	j1, _ := json.Marshal(first.Result)
	j2, _ := json.Marshal(second.Result)
	if string(j1) != string(j2) {
		t.Errorf("post-restart result differs from the original:\n%s\nvs\n%s", j1, j2)
	}
	if st := s2.Stats(); st.CacheHits != 1 || st.CacheMisses != 0 {
		t.Errorf("post-restart stats = %+v, want 1 hit / 0 misses", st)
	}
}

// TestDiskStoreNeverDowngradesAcrossRestart drives the replace-only-with-
// better invariant through the service layer: a durable entry survives a
// restart and a plain re-Put of a costlier result for the same key is
// refused by the disk tier.
func TestDiskStoreNeverDowngradesAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	req := testRequest("greedy", testDesign("disk-cas"))
	key, err := req.Key()
	if err != nil {
		t.Fatal(err)
	}

	s1 := newDiskService(t, dir)
	resp, err := s1.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	cost := costOfResult(resp.Result, req.Opts.Weights)
	s1.Close()

	d, err := store.OpenDisk(dir, store.DiskOptions{Codec: ResponseCodec{}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	pr, err := d.Put(context.Background(), key, store.Entry{Cost: cost + 100, Val: resp})
	if err != nil || pr.Installed {
		t.Fatalf("costlier Put after restart = %+v, %v; want refused", pr, err)
	}
	e, ok, err := d.Get(context.Background(), key)
	if err != nil || !ok || e.Cost != cost {
		t.Fatalf("durable entry = %+v ok=%v err=%v, want original cost %v", e, ok, err, cost)
	}
}

// TestDesignsEndpoint pins GET /v1/designs/{digest}: the cached result for
// a known digest, 404 for an unknown one.
func TestDesignsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	h := NewHandler(s)

	req := testRequest("greedy", testDesign("designs-endpoint"))
	resp, err := s.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/designs/"+resp.Key, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/designs/{digest} = %d, body %s", rec.Code, rec.Body)
	}
	var got Response
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !got.Cached || got.Key != resp.Key {
		t.Errorf("designs response = cached=%v key=%q, want cached copy of %q", got.Cached, got.Key, resp.Key)
	}
	j1, _ := json.Marshal(resp.Result)
	j2, _ := json.Marshal(got.Result)
	if string(j1) != string(j2) {
		t.Errorf("designs result differs from the mapped result:\n%s\nvs\n%s", j1, j2)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/designs/"+strings.Repeat("0", 64), nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown digest = %d, want 404", rec.Code)
	}
}

// TestStatsReportsStoreBackend pins the /v1/stats satellite: the new
// store_backend/store_entries keys and the legacy cache_entries alias carry
// the same entry count.
func TestStatsReportsStoreBackend(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Map(context.Background(), testRequest("greedy", testDesign("stats-backend"))); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	NewHandler(s).ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["store_backend"] != "memory" {
		t.Errorf("store_backend = %v, want memory", got["store_backend"])
	}
	if got["store_entries"] != float64(1) || got["cache_entries"] != float64(1) {
		t.Errorf("store_entries = %v, cache_entries = %v, want both 1", got["store_entries"], got["cache_entries"])
	}
}
