package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strings"
)

// Request IDs tie one mapping request's trail together: the HTTP layer
// accepts a caller-supplied X-Request-ID (or generates one), echoes it on
// the response, stamps it into the job record, and every structured log line
// the request touches — admission, queueing, engine stages, cache write —
// carries it. A slow mapping is then traceable end to end with one grep.

// ctxKey keeps the context key private to the package.
type ctxKey int

const requestIDKey ctxKey = iota

// NewRequestID returns a fresh 16-hex-digit random request ID.
func NewRequestID() string {
	var b [8]byte
	rand.Read(b[:]) //nolint:errcheck // crypto/rand.Read never fails post-Go 1.24
	return hex.EncodeToString(b[:])
}

// ContextWithRequestID returns a context tagged with the request ID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the context's request ID, or "" when untagged.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// maxRequestIDLen bounds accepted caller-supplied IDs: long enough for any
// UUID or trace-context format, short enough that a hostile header cannot
// bloat logs and job records.
const maxRequestIDLen = 128

// sanitizeRequestID validates a caller-supplied X-Request-ID value. IDs that
// are empty, over-long or contain non-printable characters are rejected (the
// caller then generates a fresh one) so log lines and response headers can
// never carry control bytes.
func sanitizeRequestID(id string) string {
	id = strings.TrimSpace(id)
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for _, r := range id {
		if r < 0x21 || r > 0x7e { // printable non-space ASCII only
			return ""
		}
	}
	return id
}
