// Package service is the serving layer of the toolkit: it turns the
// one-shot mapping library (pre-processing → search engine → verification)
// into a long-lived, concurrent mapping service. Three mechanisms carry the
// scaling load:
//
//   - Canonical design hashing. Every request is keyed by a deterministic
//     digest over the canonicalized design (traffic.Design.Digest), the
//     engine name, the architecture parameters and the search options, so
//     identical requests are recognized regardless of JSON field order or
//     use-case ordering.
//   - A result cache with single-flight deduplication. Results are kept in
//     an LRU keyed by that digest; while a key is being computed, every
//     further request for it waits on the in-flight job instead of starting
//     another engine run — N concurrent identical requests cost one run.
//   - A bounded worker pool. Engine runs execute on a fixed number of
//     workers behind a bounded queue (backpressure: asynchronous submissions
//     are rejected with ErrQueueFull when the queue is full, synchronous
//     ones block until there is room or their context expires). Every job
//     runs under its own context deadline and is queryable by ID through the
//     queued → running → done/failed lifecycle.
//
// The HTTP facade over this API lives in handler.go and is served by
// cmd/nocserved; cmd/nocmap -server delegates to it.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strconv"
	"sync"
	"time"

	"nocmap/internal/area"
	"nocmap/internal/core"
	"nocmap/internal/metrics"
	"nocmap/internal/power"
	"nocmap/internal/search"
	"nocmap/internal/store"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
	"nocmap/internal/verify"
)

// Errors the service reports to callers. The HTTP layer maps them to status
// codes (429, 503).
var (
	// ErrQueueFull is returned by Submit when the job queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed is returned for requests arriving after Close.
	ErrClosed = errors.New("service: closed")
)

// Config sizes the service. The zero value is usable: Defaults fills in one
// worker per CPU, a 64-deep queue, a 128-entry cache and no job deadline.
type Config struct {
	// Workers is the number of concurrent engine runs (default: NumCPU).
	Workers int
	// QueueDepth bounds the jobs waiting for a worker (default 64).
	QueueDepth int
	// CacheEntries bounds the result LRU (default 128). It sizes the default
	// in-memory store; an explicit Store brings its own capacity.
	CacheEntries int
	// Store is the result store behind the cache. Nil means a process-local
	// in-memory LRU of CacheEntries entries (the pre-store behavior). A
	// disk-backed or sharded store (internal/store, assembled by pkg/noc's
	// OpenStore) makes results durable across restarts or shared across a
	// replica fleet. The service owns the store and closes it on Close.
	Store store.Store
	// DefaultTimeout is the per-job deadline applied when a request does not
	// carry its own; zero means no deadline.
	DefaultTimeout time.Duration
	// RetainJobs bounds how many finished jobs stay queryable by ID before
	// the oldest are forgotten (default 1024). The result cache is unaffected.
	RetainJobs int
	// Logger receives the service's structured request/job trail (slog).
	// Every line a request touches carries its request_id. Nil discards.
	Logger *slog.Logger
	// Metrics is the registry the service instruments (served at
	// GET /v1/metrics). Nil creates a private one, readable via
	// Service.Metrics. The service registers its families at construction,
	// so one registry backs at most one Service.
	Metrics *metrics.Registry
}

// Defaults returns cfg with every unset field filled in.
func (cfg Config) Defaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 128
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 1024
	}
	return cfg
}

// Request is one mapping problem: a validated design plus the engine and
// parameters to solve it with.
type Request struct {
	Design *traffic.Design
	// Engine names a registered search engine (search.Names).
	Engine string
	// Params are the NoC architecture parameters.
	Params core.Params
	// Opts tune the search engines.
	Opts search.Options
	// Timeout overrides the service's default per-job deadline when positive.
	Timeout time.Duration
	// RequestID tags the request for tracing: it is stamped into the job
	// record and every log line the request produces. It never affects Key —
	// identical problems still share one cache entry and one flight
	// regardless of who asked.
	RequestID string
}

// Key returns the canonical cache key of the request: a SHA-256 digest over
// the design digest, the engine name, and every result-affecting parameter
// and option, written field by field (no struct printing, so the key is
// stable across Go versions and immune to unexported fields).
//
// Options that cannot affect the result are normalized away before hashing
// so they cannot cause spurious cache misses: Workers is pure scheduling
// concurrency (every engine is documented scheduling-independent), and the
// deterministic greedy engine ignores the stochastic options entirely, so
// for it they all hash as zero. Every other engine — including ones added
// via search.Register — hashes every remaining option, since the service
// cannot know which of them the engine reads.
func (r *Request) Key() (string, error) {
	if r.Design == nil {
		return "", fmt.Errorf("service: request has no design")
	}
	if _, err := search.New(r.Engine); err != nil {
		return "", err
	}
	if err := r.Params.Validate(); err != nil {
		return "", err
	}
	if err := r.Opts.Validate(); err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "nocmap-request-v1\ndesign %s\nengine %s\n", r.Design.Digest(), r.Engine)
	p := r.Params
	fmt.Fprintf(h, "params %d %s %d %d %d %d %d %s %s %s %d %d %t %t %t %d\n",
		p.LinkWidthBits, hexf(p.FreqMHz), p.SlotTableSize, p.SlotCycles,
		p.NIsPerSwitch, p.CoresPerNI, p.MaxMeshDim, p.Topology.CanonicalID(),
		hexf(p.Cost.HopCost), hexf(p.Cost.LoadWeight), p.Cost.MaxCandidates,
		p.PlacementCandidates, p.DisableMappedPreference, p.DisableUnifiedSlots,
		p.Improve, p.ImproveIters)
	o := r.Opts
	o.Workers = 0
	if r.Engine == "greedy" {
		o = search.Options{}
	}
	fmt.Fprintf(h, "opts %d %d %d %d %d %d %d %d %d %s %s %s\n",
		o.Seed, o.Seeds, int64(o.Budget), o.Workers, o.Iters, o.Restarts,
		o.Population, o.Generations, o.Nodes,
		hexf(o.Weights.SwitchCount), hexf(o.Weights.MeanHops), hexf(o.Weights.MaxUtil))
	return hex.EncodeToString(h.Sum(nil)), nil
}

func hexf(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }

// State is a job's position in its lifecycle.
type State string

// Job lifecycle states.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Job is one engine run owned by the pool. All fields except ID and Key are
// guarded by the service mutex; callers observe jobs through JobStatus
// snapshots.
type Job struct {
	ID  string
	Key string
	// RequestID is the tracing ID of the request that created the job
	// (joiners of an in-flight run keep their own IDs in their own logs).
	RequestID string

	req      Request
	state    State
	err      error
	resp     *Response
	done     chan struct{}
	enqueued time.Time
	started  time.Time
	finished time.Time

	// streamed marks a serve-then-improve job: the greedy result was served
	// at admission and interim incumbents upgrade the cache in place.
	streamed bool
	// prep is the prepared design, kept on streamed jobs so interim
	// incumbents can be summarized without re-preparing.
	prep *usecase.Prepared
	// stream is the job's append-only event log (every job has one; only
	// streamed jobs receive interim events before the final one).
	stream *jobStream
}

// JobStatus is an immutable snapshot of a job, safe to serialize.
type JobStatus struct {
	ID  string `json:"id"`
	Key string `json:"key"`
	// RequestID traces the job back to the HTTP request that created it.
	RequestID string `json:"request_id,omitempty"`
	State     State  `json:"state"`
	// Error is set when State is failed.
	Error string `json:"error,omitempty"`
	// Result is set when State is done; on a running streamed job it is the
	// best incumbent published so far (the anytime answer).
	Result *Response `json:"result,omitempty"`
	// ElapsedMS is the run time so far (running) or total (finished).
	ElapsedMS int64 `json:"elapsed_ms"`
	// Stream marks a serve-then-improve job whose incumbent improvements
	// are published on GET /v1/jobs/{id}/events.
	Stream bool `json:"stream,omitempty"`
	// LastSeq is the sequence number of the job's latest stream event.
	LastSeq int64 `json:"last_seq,omitempty"`
}

// Stats exposes the cache and pool gauges served at /stats. The same
// signals, plus histograms and per-engine breakdowns, are exposed in
// Prometheus form at /v1/metrics.
type Stats struct {
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	// CacheEntries is the resident entry count of the result store. It is
	// the historical name for what StoreEntries also reports; both keys
	// carry the same value so pre-store dashboards keep working.
	CacheEntries int `json:"cache_entries"`
	// StoreBackend names the result-store backend serving this process:
	// "memory", "disk" or "sharded".
	StoreBackend string `json:"store_backend"`
	// StoreEntries is the resident entry count of the result store (the
	// local tier for a sharded store).
	StoreEntries int `json:"store_entries"`
	// Deduped counts requests that joined an in-flight identical run instead
	// of starting their own.
	Deduped     int64 `json:"deduped"`
	JobsDone    int64 `json:"jobs_done"`
	JobsFailed  int64 `json:"jobs_failed"`
	JobsRunning int   `json:"jobs_running"`
	QueueLen    int   `json:"queue_len"`
	QueueDepth  int   `json:"queue_depth"`
	Workers     int   `json:"workers"`
}

// Service is a concurrent mapping service; create one with New and release
// it with Close.
type Service struct {
	cfg   Config
	queue chan *Job
	quit  chan struct{}
	wg    sync.WaitGroup
	// admits tracks admissions between job registration and the enqueue
	// attempt resolving, so Close can wait for every in-flight sender
	// before draining the queue.
	admits sync.WaitGroup

	log *slog.Logger
	met *serviceMetrics

	// store holds finished results keyed by request digest. It is
	// self-locking and is never called with s.mu held: the disk and sharded
	// backends do file and network I/O that must not serialize admission.
	store store.Store

	mu       sync.Mutex
	closed   bool
	nextID   int64
	jobs     map[string]*Job
	jobOrder []string // finished job IDs, oldest first, for retention
	flight   map[string]*Job

	hits, misses, evictions, deduped, jobsDone, jobsFailed int64
	running                                                int
}

// New starts a service with cfg.Workers pool workers.
func New(cfg Config) *Service {
	cfg = cfg.Defaults()
	s := &Service{
		cfg:    cfg,
		queue:  make(chan *Job, cfg.QueueDepth),
		quit:   make(chan struct{}),
		jobs:   make(map[string]*Job),
		flight: make(map[string]*Job),
		store:  cfg.Store,
		log:    cfg.Logger,
	}
	if s.store == nil {
		s.store = store.NewMemory(cfg.CacheEntries)
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s.met = newServiceMetrics(reg, s)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics returns the registry the service instruments; the HTTP facade
// serves it at GET /v1/metrics.
func (s *Service) Metrics() *metrics.Registry { return s.met.reg }

// Close stops the workers and fails every job still waiting in the queue.
// In-flight runs finish; Close returns after the pool is drained.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	// Order matters: first every in-flight admission resolves (enqueues or
	// abandons — quit guarantees none stays blocked), then the workers
	// drain out, and only then is the queue provably quiescent to drain.
	s.admits.Wait()
	s.wg.Wait()
	for {
		select {
		case j := <-s.queue:
			s.finish(j, nil, ErrClosed, false)
		default:
			// The pool is quiescent; release the store last so every
			// finished job's result reached it (a disk store syncs its
			// index here).
			if err := s.store.Close(); err != nil {
				s.log.Warn("store close failed", "backend", s.store.Backend(), "error", err)
			}
			return
		}
	}
}

// Map resolves the request synchronously: a cache hit returns immediately,
// an identical in-flight run is joined, and otherwise the request is
// enqueued (blocking for queue room) and awaited. The context bounds only
// the caller's wait — a run that outlives its caller still completes and
// populates the cache.
func (s *Service) Map(ctx context.Context, req Request) (*Response, error) {
	j, resp, err := s.admit(ctx, req, true)
	if err != nil || resp != nil {
		return resp, err
	}
	select {
	case <-j.done:
		return s.outcome(j)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Submit resolves the request asynchronously and returns a job ID to poll.
// A cache hit yields an already-done job; joining an in-flight run returns
// that run's ID. A full queue is reported as ErrQueueFull — the service's
// backpressure signal.
func (s *Service) Submit(req Request) (string, error) {
	j, _, err := s.admit(context.Background(), req, false)
	if err != nil {
		return "", err
	}
	return j.ID, nil
}

// admit implements the shared front door: store lookup, single-flight join,
// then enqueue. When sync is true a full queue blocks (bounded by ctx)
// instead of failing; the returned Response is non-nil only on a cache hit.
//
// The store read runs outside the service mutex — a disk or sharded
// backend pays file or network latency there, which must not serialize
// every other request — so the flight table is re-checked under the lock
// afterwards: of N concurrent identical misses exactly one registers the
// flight (one miss), the rest join it (deduped), same as when one lock
// covered both.
func (s *Service) admit(ctx context.Context, req Request, sync bool) (*Job, *Response, error) {
	key, err := req.Key()
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, ErrClosed
	}
	s.mu.Unlock()
	if resp, ok := s.storeGet(ctx, key); ok {
		s.mu.Lock()
		s.hits++
		s.met.cacheHits.Inc()
		if sync {
			s.mu.Unlock()
			s.log.Debug("cache hit", "request_id", req.RequestID, "key", key, "engine", req.Engine)
			return nil, resp.cached(), nil
		}
		// Async callers poll a job either way; synthesize a done one.
		j := s.newJobLocked(key, req)
		j.state = StateDone
		j.resp = resp.cached()
		j.finished = time.Now()
		close(j.done)
		s.retainLocked(j)
		s.appendEvent(j, StreamEvent{Stage: StreamDone, Engine: req.Engine,
			Cost: costOfResult(j.resp.Result, req.Opts.Weights), Response: j.resp, Final: true})
		s.mu.Unlock()
		s.log.Debug("cache hit", "request_id", req.RequestID, "key", key, "engine", req.Engine, "job", j.ID)
		return j, nil, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, nil, ErrClosed
	}
	if j, ok := s.flight[key]; ok {
		s.deduped++
		s.met.dedupJoins.Inc()
		s.mu.Unlock()
		s.log.Debug("joined in-flight run", "request_id", req.RequestID, "key", key, "job", j.ID)
		return j, nil, nil
	}
	s.misses++
	s.met.cacheMisses.Inc()
	j := s.newJobLocked(key, req)
	s.flight[key] = j
	s.admits.Add(1)
	s.mu.Unlock()
	defer s.admits.Done()
	// Admitted: the job owns the flight for its key; the enqueue attempt
	// below may still fail (backpressure), which finish() logs as a failure.
	s.log.Info("job admitted", "request_id", req.RequestID, "job", j.ID, "key", key, "engine", req.Engine)

	if sync {
		select {
		case s.queue <- j:
			return j, nil, nil
		case <-ctx.Done():
			s.abandon(j, ctx.Err())
			return nil, nil, ctx.Err()
		case <-s.quit:
			s.abandon(j, ErrClosed)
			return nil, nil, ErrClosed
		}
	}
	select {
	case s.queue <- j:
		return j, nil, nil
	default:
		s.abandon(j, ErrQueueFull)
		return nil, nil, ErrQueueFull
	}
}

func (s *Service) newJobLocked(key string, req Request) *Job {
	s.nextID++
	j := &Job{
		ID:        "j" + strconv.FormatInt(s.nextID, 10),
		Key:       key,
		RequestID: req.RequestID,
		req:       req,
		state:     StateQueued,
		done:      make(chan struct{}),
		enqueued:  time.Now(),
		stream:    newJobStream(),
	}
	s.jobs[j.ID] = j
	return j
}

// abandon fails a job that never made it into the queue. Identical requests
// may already have joined its flight between registration and the failed
// enqueue, so the job must be finished — waking every joiner with the
// admission error — not silently deleted, or those joiners would wait on
// j.done forever.
func (s *Service) abandon(j *Job, err error) {
	s.finish(j, nil, err, false)
}

// Job returns a snapshot of the job, if it is still retained.
func (s *Service) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	st := JobStatus{ID: j.ID, Key: j.Key, RequestID: j.RequestID, State: j.state,
		Result: j.resp, Stream: j.streamed, LastSeq: j.stream.lastSeq()}
	if st.Result == nil && j.streamed {
		// A running streamed job already has an answer: its best incumbent.
		st.Result = j.stream.latest()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	switch {
	case !j.finished.IsZero():
		st.ElapsedMS = j.finished.Sub(j.enqueued).Milliseconds()
	default:
		st.ElapsedMS = time.Since(j.enqueued).Milliseconds()
	}
	return st, true
}

// BatchItem is one outcome of MapBatch, in request order.
type BatchItem struct {
	Response *Response
	Err      error
}

// MapBatch maps every request on the shared pool and returns when all are
// resolved. Identical requests inside one batch (or racing other callers)
// collapse to one engine run via the same single-flight path as Map.
func (s *Service) MapBatch(ctx context.Context, reqs []Request) []BatchItem {
	out := make([]BatchItem, len(reqs))
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := s.Map(ctx, reqs[i])
			out[i] = BatchItem{Response: resp, Err: err}
		}(i)
	}
	wg.Wait()
	return out
}

// Stats returns the current counters and gauges.
func (s *Service) Stats() Stats {
	entries := s.store.Len() // self-locking; read outside s.mu
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		CacheHits:      s.hits,
		CacheMisses:    s.misses,
		CacheEvictions: s.evictions,
		CacheEntries:   entries,
		StoreBackend:   s.store.Backend(),
		StoreEntries:   entries,
		Deduped:        s.deduped,
		JobsDone:       s.jobsDone,
		JobsFailed:     s.jobsFailed,
		JobsRunning:    s.running,
		QueueLen:       len(s.queue),
		QueueDepth:     s.cfg.QueueDepth,
		Workers:        s.cfg.Workers,
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.run(j)
		case <-s.quit:
			return
		}
	}
}

// run executes one job under its deadline and publishes the outcome. It is
// where the per-engine latency histogram is fed and where the engines'
// progress events are tapped into the search metrics.
func (s *Service) run(j *Job) {
	s.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	s.running++
	s.mu.Unlock()
	s.log.Debug("job started", "request_id", j.RequestID, "job", j.ID,
		"engine", j.req.Engine, "queue_ms", ms(j.started.Sub(j.enqueued)))

	ctx := context.Background()
	timeout := j.req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	req := j.req
	if j.streamed {
		// Streamed jobs publish every strict job-level incumbent improvement
		// on their event log as it lands (and upgrade the cache in place).
		req.Opts.Progress = s.streamTap(j)
	}
	req.Opts.Progress = s.met.progressTap(req.Opts.Progress)
	resp, tm, err := solve(ctx, req)
	if j.streamed && err != nil && isExpiry(err) {
		// A streamed job's deadline expiring is not a failure: the stream
		// already served its incumbents, and the engines return their best
		// so far on context expiry — solve only reports the expiry when the
		// run died before producing even the greedy base. Fall back to the
		// best streamed incumbent so the job finishes done, not failed.
		if latest := j.stream.latest(); latest != nil {
			c := *latest // copy: the streamed pointer is shared with readers
			resp, err = &c, nil
		}
	}
	s.met.engineSeconds.WithLabelValues(req.Engine).Observe(tm.TotalMS / 1e3)
	if resp != nil {
		tm.QueueMS = ms(j.started.Sub(j.enqueued))
		resp.Timings = &tm
	}
	s.finish(j, resp, err, true)
}

// finish publishes a job outcome: store insert on success (a CAS upgrade
// for streamed jobs, whose interim incumbents already live in the store),
// state flip, flight removal, the final event on the job's stream, waiter
// wakeup, retention bookkeeping. ran is false for jobs drained at Close
// that never reached a worker.
//
// The store write happens before the state flip and before waiters wake,
// so a caller released by j.done always finds the result resident; it runs
// outside the service mutex (a disk store fsyncs here), which is safe
// because the flight entry is still registered — identical requests join
// the job rather than recompute.
func (s *Service) finish(j *Job, resp *Response, err error, ran bool) {
	var cost float64
	if err == nil {
		cost = costOfResult(resp.Result, j.req.Opts.Weights)
		if j.streamed {
			// The stream already installed interim incumbents; the final
			// result replaces them unless a concurrent writer did better.
			s.storeUpgrade(j.Key, resp, cost)
		} else {
			s.storePut(j.Key, resp, cost)
		}
	}
	s.mu.Lock()
	if ran {
		s.running--
	}
	if err != nil {
		j.state = StateFailed
		j.err = err
		s.jobsFailed++
		s.met.jobs.WithLabelValues(string(StateFailed)).Inc()
		s.appendEvent(j, StreamEvent{Stage: StreamFailed, Engine: j.req.Engine, Error: err.Error(), Final: true})
	} else {
		j.state = StateDone
		j.resp = resp
		s.jobsDone++
		s.met.jobs.WithLabelValues(string(StateDone)).Inc()
		s.appendEvent(j, StreamEvent{Stage: StreamDone, Engine: j.req.Engine, Cost: cost, Response: resp, Final: true})
	}
	j.finished = time.Now()
	delete(s.flight, j.Key)
	s.retainLocked(j)
	s.mu.Unlock()
	if err != nil {
		s.log.Info("job failed", "request_id", j.RequestID, "job", j.ID,
			"engine", j.req.Engine, "elapsed_ms", ms(j.finished.Sub(j.enqueued)), "error", err)
	} else {
		attrs := []any{"request_id", j.RequestID, "job", j.ID, "engine", j.req.Engine,
			"elapsed_ms", ms(j.finished.Sub(j.enqueued)), "cache_write", true}
		if tm := resp.Timings; tm != nil {
			attrs = append(attrs, "queue_ms", tm.QueueMS, "prepare_ms", tm.PrepareMS,
				"search_ms", tm.SearchMS, "summarize_ms", tm.SummarizeMS)
		}
		s.log.Info("job done", attrs...)
	}
	close(j.done)
}

// retainLocked records a finished job and evicts the oldest beyond the
// retention bound.
func (s *Service) retainLocked(j *Job) {
	s.jobOrder = append(s.jobOrder, j.ID)
	for len(s.jobOrder) > s.cfg.RetainJobs {
		delete(s.jobs, s.jobOrder[0])
		s.jobOrder = s.jobOrder[1:]
	}
}

// outcome reads a finished job's result.
func (s *Service) outcome(j *Job) (*Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.err != nil {
		return nil, j.err
	}
	return j.resp, nil
}

// solve runs the full pipeline for one request: pre-process, search, verify,
// summarize. It is deliberately free of service state — the pure function
// the pool executes — and reports where the wall clock went, stage by stage,
// even on failure (so a timeout shows which stage ate the budget).
func solve(ctx context.Context, req Request) (_ *Response, tm Timings, _ error) {
	start := time.Now()
	defer func() { tm.TotalMS = ms(time.Since(start)) }()
	eng, err := search.New(req.Engine)
	if err != nil {
		return nil, tm, err
	}
	prep, err := usecase.Prepare(req.Design)
	tm.PrepareMS = ms(time.Since(start))
	if err != nil {
		return nil, tm, err
	}
	searchStart := time.Now()
	res, err := eng.Search(ctx, prep, req.Design.NumCores(), req.Params, req.Opts)
	tm.SearchMS = ms(time.Since(searchStart))
	if err != nil {
		return nil, tm, err
	}
	sumStart := time.Now()
	resp := summarize(req, prep, res)
	tm.SummarizeMS = ms(time.Since(sumStart))
	return resp, tm, nil
}

// Response is the service's result envelope. Cached marks a cache hit; the
// Result payload of a hit is byte-identical to the original run's (the
// determinism the cache-hit tests assert).
type Response struct {
	Key    string `json:"key"`
	Engine string `json:"engine"`
	Cached bool   `json:"cached"`
	// Timings breaks the producing run's wall clock into pipeline stages; a
	// cache hit reports the original run's timings (the envelope says
	// Cached, so a 2ms hit on a 30s anneal stays interpretable).
	Timings *Timings `json:"timings,omitempty"`
	Result  Result   `json:"result"`
}

// cached returns a copy marked as a cache hit.
func (r *Response) cached() *Response {
	c := *r
	c.Cached = true
	return &c
}

// Result is the JSON-serializable summary of one mapping.
type Result struct {
	Design string `json:"design"`
	// Topology names the fabric family of the solution ("mesh", "torus",
	// "custom"). A torus request can legitimately report "mesh" when the
	// smallest feasible shape is below 3x3, where wrap links degenerate.
	Topology string `json:"topology"`
	Rows     int    `json:"rows"`
	Cols     int    `json:"cols"`
	Switches int    `json:"switches"`

	MaxLinkUtil   float64 `json:"max_link_util"`
	AvgMeshHops   float64 `json:"avg_mesh_hops"`
	SlotsReserved int     `json:"slots_reserved"`

	// LowerBoundSwitches is a provable lower bound on the switch count of any
	// feasible mapping of this design under these parameters. BoundSource says
	// where it came from: "seats" (NI seat capacity — always available) or
	// "bnb" (the exact engine's branch-and-bound proof, carried on its
	// result). OptimalityGap is (switches - bound) / bound; BoundExact marks
	// the bound proven tight, i.e. the mapping is optimal in switch count.
	LowerBoundSwitches int     `json:"lower_bound_switches"`
	OptimalityGap      float64 `json:"optimality_gap"`
	BoundSource        string  `json:"bound_source"`
	BoundExact         bool    `json:"bound_exact,omitempty"`

	AreaMM2 float64 `json:"area_mm2"`
	PowerMW float64 `json:"power_mw"`

	// CoreSwitch and CoreNI give the shared placement (-1 = unattached).
	CoreSwitch []int `json:"core_switch"`
	CoreNI     []int `json:"core_ni"`

	UseCases []UseCaseResult `json:"use_cases"`

	// Violations lists analytic verification failures; empty means every
	// invariant holds.
	Violations []string `json:"violations,omitempty"`
}

// UseCaseResult summarizes one use-case of the mapped design.
type UseCaseResult struct {
	Name     string `json:"name"`
	Compound bool   `json:"compound,omitempty"`
	Flows    int    `json:"flows"`
	Group    int    `json:"group"`
}

// summarize flattens an engine result into the wire form.
func summarize(req Request, prep *usecase.Prepared, res *core.Result) *Response {
	key, _ := req.Key() // validated at admission; cannot fail here
	return &Response{Key: key, Engine: req.Engine, Result: SummarizeResult(req.Design.Name, prep, res)}
}

// SummarizeResult flattens an engine result into the stable wire Result:
// fabric shape, load statistics, area/power estimates, placement, use-case
// roster and analytic verification verdicts. The SDK (pkg/noc) uses the same
// summary for local runs, so a design mapped in-process and the same design
// mapped through the service encode identically.
func SummarizeResult(designName string, prep *usecase.Prepared, res *core.Result) Result {
	m := res.Mapping
	lb, exact := search.BoundOf(res)
	source := "seats"
	if res.LowerBoundSwitches > 0 {
		source = "bnb"
	}
	out := Result{
		Design:        designName,
		Topology:      m.Topology.Kind.String(),
		Rows:          m.Topology.Rows,
		Cols:          m.Topology.Cols,
		Switches:      m.SwitchCount(),
		MaxLinkUtil:   res.Stats.MaxLinkUtil,
		AvgMeshHops:   res.Stats.AvgMeshHops,
		SlotsReserved: res.Stats.SlotsReserved,

		LowerBoundSwitches: lb,
		OptimalityGap:      search.Gap(m.SwitchCount(), lb),
		BoundSource:        source,
		BoundExact:         exact,
		AreaMM2:            area.DefaultModel().NoCMM2(m),
		PowerMW:            power.Watts(m.SwitchCount(), m.Params.FreqMHz) * 1000,
		CoreSwitch:         append([]int(nil), m.CoreSwitch...),
		CoreNI:             append([]int(nil), m.CoreNI...),
	}
	for i, u := range prep.UseCases {
		out.UseCases = append(out.UseCases, UseCaseResult{
			Name: u.Name, Compound: u.Compound, Flows: len(u.Flows), Group: prep.GroupOf[i],
		})
	}
	for _, v := range verify.Check(m) {
		out.Violations = append(out.Violations, v.String())
	}
	return out
}
