package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"nocmap/internal/core"
	"nocmap/internal/search"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
)

// MapRequest is the wire form of one mapping request. Design embeds the
// standard design interchange JSON (the format nocgen writes and nocmap
// reads) unchanged; the remaining fields override the engine defaults.
// Pointer fields distinguish "absent" from an explicit zero.
type MapRequest struct {
	Design json.RawMessage `json:"design"`
	// Engine picks the search engine (default "greedy").
	Engine string `json:"engine,omitempty"`
	// Topology picks the interconnect family: "mesh" (default) or "torus".
	// When empty, a "topology" tag inside the design JSON applies. The
	// choice flows into the design's canonical digest, so requests on
	// different fabrics never share a cache entry. Custom fabrics carry
	// their link lists and are CLI-only (nocmap -topology @file.json).
	Topology string `json:"topology,omitempty"`
	// Seed, Seeds, Iters override search.DefaultOptions.
	Seed  *int64 `json:"seed,omitempty"`
	Seeds *int   `json:"seeds,omitempty"`
	Iters *int   `json:"iters,omitempty"`
	// Population and Generations size the population engines (ga, pso, abc);
	// Nodes is the exact engine's deterministic node budget.
	Population  *int `json:"population,omitempty"`
	Generations *int `json:"generations,omitempty"`
	Nodes       *int `json:"nodes,omitempty"`
	// Budget is a Go duration string ("30s") bounding the search.
	Budget string `json:"budget,omitempty"`
	// FreqMHz, Slots, MaxDim, Improve override core.DefaultParams.
	FreqMHz *float64 `json:"freq_mhz,omitempty"`
	Slots   *int     `json:"slots,omitempty"`
	MaxDim  *int     `json:"max_dim,omitempty"`
	Improve bool     `json:"improve,omitempty"`
	// TimeoutMS bounds the engine run, measured from when a worker picks
	// the job up; time spent waiting in the queue does not count.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Async makes POST /map return a job ID immediately (HTTP 202) instead
	// of the result; poll GET /jobs/{id} for completion.
	Async bool `json:"async,omitempty"`
	// Mode selects the answer discipline. "stream" serves-then-improves:
	// the greedy result is computed inline and returned with HTTP 202 in
	// milliseconds while the requested engine keeps improving in the
	// background; incumbent improvements arrive on GET /jobs/{id}/events
	// (SSE, or long-poll with ?mode=poll). Empty (or "sync") keeps the
	// blocking behavior. Mode and Async are mutually exclusive.
	Mode string `json:"mode,omitempty"`
	// WaitMS, with the stream mode, bounds how long POST /map waits for the
	// background improvement before answering with the best incumbent so
	// far — the "pay only for the quality you wait for" knob. WaitMS alone
	// (no Mode) implies stream mode.
	WaitMS int64 `json:"wait_ms,omitempty"`
}

// streaming reports whether the request asked for serve-then-improve mode.
func (mr *MapRequest) streaming() bool {
	return mr.Mode == "stream" || (mr.Mode == "" && mr.WaitMS > 0)
}

// ToRequest validates the wire form into a service Request.
func (mr *MapRequest) ToRequest() (Request, error) {
	var req Request
	if len(mr.Design) == 0 {
		return req, fmt.Errorf("service: request has no design")
	}
	d, err := traffic.ReadJSON(bytes.NewReader(mr.Design))
	if err != nil {
		return req, err
	}
	req.Design = d
	req.Engine = mr.Engine
	if req.Engine == "" {
		req.Engine = "greedy"
	}
	req.Params = core.DefaultParams()
	// Resolve the fabric: the request field wins, then the design's own tag.
	tag := mr.Topology
	if tag == "" {
		tag = d.Topology
	}
	if strings.HasPrefix(tag, "custom:") {
		return req, fmt.Errorf("service: custom fabrics (%s) carry their link lists and are CLI-only; map locally with nocmap -topology @fabric.json", tag)
	}
	kind, err := topology.ParseKind(tag)
	if err != nil {
		return req, fmt.Errorf("service: %w", err)
	}
	req.Params.Topology = topology.Spec{Kind: kind}
	d.Topology = req.Params.Topology.CanonicalID()
	req.Opts = search.DefaultOptions()
	if mr.Seed != nil {
		req.Opts.Seed = *mr.Seed
	}
	if mr.Seeds != nil {
		req.Opts.Seeds = *mr.Seeds
	}
	if mr.Iters != nil {
		req.Opts.Iters = *mr.Iters
	}
	if mr.Population != nil {
		req.Opts.Population = *mr.Population
	}
	if mr.Generations != nil {
		req.Opts.Generations = *mr.Generations
	}
	if mr.Nodes != nil {
		req.Opts.Nodes = *mr.Nodes
	}
	if mr.Budget != "" {
		b, err := time.ParseDuration(mr.Budget)
		if err != nil {
			return req, fmt.Errorf("service: bad budget %q: %w", mr.Budget, err)
		}
		req.Opts.Budget = b
	}
	if mr.FreqMHz != nil {
		req.Params.FreqMHz = *mr.FreqMHz
	}
	if mr.Slots != nil {
		req.Params.SlotTableSize = *mr.Slots
	}
	if mr.MaxDim != nil {
		req.Params.MaxMeshDim = *mr.MaxDim
	}
	req.Params.Improve = mr.Improve
	if mr.TimeoutMS > 0 {
		req.Timeout = time.Duration(mr.TimeoutMS) * time.Millisecond
	}
	return req, nil
}

// BatchRequest is the wire form of POST /batch.
type BatchRequest struct {
	Requests []MapRequest `json:"requests"`
}

// BatchResponse is the wire form of the POST /batch reply; Results is in
// request order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// BatchResult is one entry of a batch reply: a response or an error.
type BatchResult struct {
	Response *Response `json:"response,omitempty"`
	Error    string    `json:"error,omitempty"`
}

// NewHandler returns the HTTP facade of the service. The blessed surface is
// versioned under /v1:
//
//	POST /v1/map       — map one design; {"async":true} returns 202 + job ID;
//	                     {"mode":"stream"} serves the greedy result in a 202
//	                     immediately and improves in the background
//	POST /v1/batch     — map many designs in one call on the shared pool
//	GET  /v1/jobs/{id} — job state (queued|running|done|failed) and result
//	GET  /v1/jobs/{id}/events — serve-then-improve event stream (SSE by
//	                     default, ?mode=poll long-poll; resume with ?after)
//	GET  /v1/designs/{digest} — the cached result for a request digest
//	                     (404 when the store holds none); on a sharded
//	                     store, foreign digests resolve via their owner
//	GET  /v1/stats     — cache hit/miss counters, store and pool gauges
//	GET  /v1/metrics   — Prometheus text exposition of the service metrics
//	GET  /v1/version   — build identity (module version, VCS revision)
//	GET  /healthz      — liveness, build version, uptime (unversioned on
//	                     purpose: probe configs outlive API revisions)
//
// Every route runs behind the observability middleware: the request is
// tagged with an X-Request-ID (caller-supplied or generated, echoed on the
// response and stamped into job records), counted in
// noc_http_requests_total{route,status}, timed into
// noc_http_request_duration_seconds{route}, and logged structurally.
//
// The pre-/v1 routes (POST /map, POST /batch, GET /jobs/{id}, GET /stats)
// remain mounted as thin deprecated aliases of their /v1 equivalents; they
// answer identically (and count under their /v1 route label) but carry a
// Deprecation header and a Link to the successor route.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	// instrument wraps a handler with the observability middleware. route is
	// the canonical pattern ("/v1/jobs/{id}"), not the concrete path, so
	// metric cardinality stays bounded.
	instrument := func(route string, h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			id := sanitizeRequestID(r.Header.Get("X-Request-ID"))
			if id == "" {
				id = NewRequestID()
			}
			w.Header().Set("X-Request-ID", id)
			r = r.WithContext(ContextWithRequestID(r.Context(), id))
			rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
			h(rec, r)
			elapsed := time.Since(start)
			s.met.httpRequests.WithLabelValues(route, strconv.Itoa(rec.status)).Inc()
			s.met.httpSeconds.WithLabelValues(route).Observe(elapsed.Seconds())
			s.log.Info("http request", "request_id", id, "method", r.Method,
				"route", route, "path", r.URL.Path, "status", rec.status,
				"duration_ms", ms(elapsed))
		}
	}
	// handle mounts one route at its /v1 home and as a deprecated legacy
	// alias at the original unversioned path. The Link header names the
	// request's actual successor URL (path parameters substituted), so
	// following it lands on the equivalent /v1 resource.
	handle := func(method, path string, h http.HandlerFunc) {
		ih := instrument("/v1"+path, h)
		mux.HandleFunc(method+" /v1"+path, ih)
		mux.HandleFunc(method+" "+path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", "</v1"+r.URL.Path+">; rel=\"successor-version\"")
			ih(w, r)
		})
	}

	handle("POST", "/map", func(w http.ResponseWriter, r *http.Request) {
		var mr MapRequest
		if err := json.NewDecoder(r.Body).Decode(&mr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		req, err := mr.ToRequest()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		req.RequestID = RequestIDFrom(r.Context())
		switch mr.Mode {
		case "", "sync", "stream":
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: unknown mode %q (valid: sync, stream)", mr.Mode))
			return
		}
		if mr.streaming() {
			if mr.Async {
				writeError(w, http.StatusBadRequest, fmt.Errorf("service: async and stream mode are mutually exclusive"))
				return
			}
			st, err := s.SubmitStream(r.Context(), req)
			if err != nil {
				writeError(w, statusOf(err), err)
				return
			}
			if mr.WaitMS > 0 && st.State != StateDone && st.State != StateFailed {
				// Trade patience for quality: wait up to WaitMS for the
				// background improvement, then answer with the best so far.
				wctx, cancel := context.WithTimeout(r.Context(), time.Duration(mr.WaitMS)*time.Millisecond)
				st, _ = s.WaitJob(wctx, st.ID)
				cancel()
			}
			writeJSON(w, http.StatusAccepted, st)
			return
		}
		if mr.Async {
			id, err := s.Submit(req)
			if err != nil {
				writeError(w, statusOf(err), err)
				return
			}
			st, _ := s.Job(id)
			writeJSON(w, http.StatusAccepted, st)
			return
		}
		resp, err := s.Map(r.Context(), req)
		if err != nil {
			writeError(w, statusOf(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	handle("POST", "/batch", func(w http.ResponseWriter, r *http.Request) {
		var br BatchRequest
		if err := json.NewDecoder(r.Body).Decode(&br); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		if len(br.Requests) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("batch has no requests"))
			return
		}
		reqs := make([]Request, len(br.Requests))
		for i := range br.Requests {
			if br.Requests[i].streaming() {
				writeError(w, http.StatusBadRequest, fmt.Errorf("request %d: stream mode is not supported in a batch; submit it on /v1/map", i))
				return
			}
			req, err := br.Requests[i].ToRequest()
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("request %d: %w", i, err))
				return
			}
			req.RequestID = RequestIDFrom(r.Context())
			reqs[i] = req
		}
		items := s.MapBatch(r.Context(), reqs)
		out := BatchResponse{Results: make([]BatchResult, len(items))}
		for i, it := range items {
			out.Results[i] = BatchResult{Response: it.Response}
			if it.Err != nil {
				out.Results[i].Error = it.Err.Error()
			}
		}
		writeJSON(w, http.StatusOK, out)
	})

	handle("GET", "/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})

	handle("GET", "/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveJobEvents(s, w, r)
	})

	handle("GET", "/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	// /v1/designs is post-versioning surface: it mounts under /v1 only, no
	// legacy alias. It is also the peer-forwarding path of a sharded store —
	// replicas resolve foreign digests against their owner here.
	mux.HandleFunc("GET /v1/designs/{digest}", instrument("/v1/designs/{digest}", func(w http.ResponseWriter, r *http.Request) {
		digest := r.PathValue("digest")
		resp, ok := s.Design(r.Context(), digest)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no cached result for digest %q", digest))
			return
		}
		writeJSON(w, http.StatusOK, resp)
	}))

	mux.HandleFunc("GET /v1/version", instrument("/v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, BuildVersion())
	}))

	metricsHandler := s.Metrics().Handler()
	mux.HandleFunc("GET /v1/metrics", instrument("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		metricsHandler.ServeHTTP(w, r)
	}))

	mux.HandleFunc("GET /healthz", instrument("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, healthResponse{
			OK:            true,
			Version:       BuildVersion(),
			StartedAt:     startedAt.UTC().Format(time.RFC3339),
			UptimeSeconds: time.Since(startedAt).Seconds(),
		})
	}))

	return mux
}

// healthResponse is the GET /healthz body: liveness, build identity, and the
// process start/uptime pair that tells a fresh restart from a long-running
// healthy daemon.
type healthResponse struct {
	OK      bool        `json:"ok"`
	Version VersionInfo `json:"version"`
	// StartedAt is the process start time, RFC 3339 UTC.
	StartedAt string `json:"started_at"`
	// UptimeSeconds is the seconds elapsed since StartedAt.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// statusRecorder captures the status code a handler writes so the middleware
// can label metrics and logs with it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes (the SSE events route) to the wrapped
// writer, preserving its http.Flusher capability through the middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// statusOf maps service errors to HTTP status codes. Unrecognized errors map
// to 400: at this point the request has been admitted, so what remains are
// engine-level rejections of the request's content (bad parameters, invalid
// prepared use-cases), which are the client's to fix.
func statusOf(err error) int {
	var inf *core.InfeasibleError
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.As(err, &inf):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers already sent; nothing to report
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
