package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"nocmap/internal/core"
	"nocmap/internal/search"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

// testDesign is a small two-use-case design that maps onto a 1x1 mesh in
// well under a millisecond.
func testDesign(name string) *traffic.Design {
	return &traffic.Design{
		Name:  name,
		Cores: traffic.MakeCores(6),
		UseCases: []*traffic.UseCase{
			{Name: "play", Flows: []traffic.Flow{
				{Src: 0, Dst: 1, BandwidthMBs: 200, MaxLatencyNS: 2000},
				{Src: 1, Dst: 2, BandwidthMBs: 150},
				{Src: 3, Dst: 4, BandwidthMBs: 90},
			}},
			{Name: "record", Flows: []traffic.Flow{
				{Src: 2, Dst: 0, BandwidthMBs: 120},
				{Src: 4, Dst: 5, BandwidthMBs: 60},
			}},
		},
		ParallelSets: [][]int{{0, 1}},
	}
}

func testRequest(engine string, d *traffic.Design) Request {
	return Request{Design: d, Engine: engine, Params: core.DefaultParams(), Opts: search.DefaultOptions()}
}

// gateEngine counts its runs and, when gate is non-nil, blocks each run
// until the gate closes or the context expires. It makes pool scheduling
// observable and deterministic in tests.
type gateEngine struct {
	name string
	gate chan struct{}
	runs *atomic.Int64
}

func (e gateEngine) Name() string { return e.name }

func (e gateEngine) Search(ctx context.Context, prep *usecase.Prepared, numCores int,
	p core.Params, opts search.Options) (*core.Result, error) {
	e.runs.Add(1)
	if e.gate != nil {
		select {
		case <-e.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return search.Greedy{}.Search(ctx, prep, numCores, p, opts)
}

// registerGate installs a uniquely named gate engine for one test.
func registerGate(name string, gate chan struct{}) *atomic.Int64 {
	runs := &atomic.Int64{}
	search.Register(name, func() search.Engine {
		return gateEngine{name: name, gate: gate, runs: runs}
	})
	return runs
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestCacheHitDeterminism(t *testing.T) {
	runs := registerGate("count-cache", nil)
	s := New(Config{Workers: 2})
	defer s.Close()

	req := testRequest("count-cache", testDesign("cache-demo"))
	first, err := s.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request reported as cached")
	}
	second, err := s.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("identical second request missed the cache")
	}
	if runs.Load() != 1 {
		t.Errorf("engine ran %d times for two identical requests, want 1", runs.Load())
	}
	j1, _ := json.Marshal(first.Result)
	j2, _ := json.Marshal(second.Result)
	if string(j1) != string(j2) {
		t.Errorf("cached result JSON differs from original:\n%s\nvs\n%s", j1, j2)
	}
	if first.Key != second.Key || first.Key == "" {
		t.Errorf("keys differ: %q vs %q", first.Key, second.Key)
	}

	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.JobsDone != 1 || st.CacheEntries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 done / 1 entry", st)
	}
}

// TestCacheHitAcrossReordering exercises the canonical-hashing promise end
// to end: the same design with use-cases and flows permuted is one cache
// entry.
func TestCacheHitAcrossReordering(t *testing.T) {
	runs := registerGate("count-reorder", nil)
	s := New(Config{Workers: 2})
	defer s.Close()

	d1 := testDesign("reorder-demo")
	d2 := &traffic.Design{
		Name:  "reorder-demo",
		Cores: traffic.MakeCores(6),
		UseCases: []*traffic.UseCase{
			// "record" first, and its flows reversed.
			{Name: "record", Flows: []traffic.Flow{
				{Src: 4, Dst: 5, BandwidthMBs: 60},
				{Src: 2, Dst: 0, BandwidthMBs: 120},
			}},
			{Name: "play", Flows: []traffic.Flow{
				{Src: 3, Dst: 4, BandwidthMBs: 90},
				{Src: 1, Dst: 2, BandwidthMBs: 150},
				{Src: 0, Dst: 1, BandwidthMBs: 200, MaxLatencyNS: 2000},
			}},
		},
		ParallelSets: [][]int{{1, 0}},
	}

	r1, err := s.Map(context.Background(), testRequest("count-reorder", d1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Map(context.Background(), testRequest("count-reorder", d2))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("permuted identical design missed the cache")
	}
	if r1.Key != r2.Key {
		t.Errorf("permuted design keyed differently: %q vs %q", r1.Key, r2.Key)
	}
	if runs.Load() != 1 {
		t.Errorf("engine ran %d times, want 1", runs.Load())
	}
}

func TestSingleFlightDeduplication(t *testing.T) {
	gate := make(chan struct{})
	runs := registerGate("gate-dedup", gate)
	s := New(Config{Workers: 4})
	defer s.Close()

	req := testRequest("gate-dedup", testDesign("dedup-demo"))
	const callers = 8
	results := make(chan *Response, callers)
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			r, err := s.Map(context.Background(), req)
			results <- r
			errs <- err
		}()
	}
	waitFor(t, "the one deduplicated run to start", func() bool { return runs.Load() >= 1 })
	waitFor(t, "followers to join the flight", func() bool { return s.Stats().Deduped >= callers-1 })
	close(gate)

	var key string
	for i := 0; i < callers; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		r := <-results
		if key == "" {
			key = r.Key
		} else if r.Key != key {
			t.Errorf("caller got key %q, want %q", r.Key, key)
		}
	}
	if runs.Load() != 1 {
		t.Errorf("%d concurrent identical requests cost %d engine runs, want 1", callers, runs.Load())
	}
}

func TestSubmitJobLifecycle(t *testing.T) {
	gate := make(chan struct{})
	registerGate("gate-life", gate)
	s := New(Config{Workers: 1})
	defer s.Close()

	id, err := s.Submit(testRequest("gate-life", testDesign("life-demo")))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to start running", func() bool {
		st, ok := s.Job(id)
		return ok && st.State == StateRunning
	})
	close(gate)
	waitFor(t, "job to finish", func() bool {
		st, _ := s.Job(id)
		return st.State == StateDone
	})
	st, _ := s.Job(id)
	if st.Result == nil || st.Result.Result.Switches < 1 {
		t.Errorf("done job carries no result: %+v", st)
	}
	if _, ok := s.Job("j999999"); ok {
		t.Error("lookup of unknown job succeeded")
	}

	// A second submit of the same request is an immediate cache hit: the
	// synthesized job is done before the first poll.
	id2, err := s.Submit(testRequest("gate-life", testDesign("life-demo")))
	if err != nil {
		t.Fatal(err)
	}
	st2, ok := s.Job(id2)
	if !ok || st2.State != StateDone || st2.Result == nil || !st2.Result.Cached {
		t.Errorf("cached submit = %+v, want done+cached", st2)
	}
}

func TestQueueBackpressure(t *testing.T) {
	gate := make(chan struct{})
	registerGate("gate-full", gate)
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	// A occupies the single worker; B fills the single queue slot; C must be
	// rejected with the backpressure error.
	if _, err := s.Submit(testRequest("gate-full", testDesign("bp-a"))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job to occupy the worker", func() bool { return s.Stats().JobsRunning == 1 })
	if _, err := s.Submit(testRequest("gate-full", testDesign("bp-b"))); err != nil {
		t.Fatal(err)
	}
	_, err := s.Submit(testRequest("gate-full", testDesign("bp-c")))
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("submit to full queue returned %v, want ErrQueueFull", err)
	}
	close(gate)
	waitFor(t, "queued jobs to drain", func() bool { return s.Stats().JobsDone == 2 })
}

// TestAbandonWakesJoiners pins the single-flight liveness guarantee: when a
// leader abandons its job (context canceled while blocked on a full queue),
// a follower that joined the flight must be woken with the admission error,
// not left waiting on a job that will never run.
func TestAbandonWakesJoiners(t *testing.T) {
	gate := make(chan struct{})
	registerGate("gate-abandon", gate)
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	// Fill the worker and the queue with unrelated jobs.
	if _, err := s.Submit(testRequest("gate-abandon", testDesign("ab-a"))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job to occupy the worker", func() bool { return s.Stats().JobsRunning == 1 })
	if _, err := s.Submit(testRequest("gate-abandon", testDesign("ab-b"))); err != nil {
		t.Fatal(err)
	}

	// Leader: blocks trying to enqueue design C.
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := s.Map(leaderCtx, testRequest("gate-abandon", testDesign("ab-c")))
		leaderErr <- err
	}()
	// Follower: joins C's flight once the leader has registered it.
	waitFor(t, "leader to register its flight", func() bool { return s.Stats().CacheMisses == 3 })
	followerErr := make(chan error, 1)
	go func() {
		_, err := s.Map(context.Background(), testRequest("gate-abandon", testDesign("ab-c")))
		followerErr <- err
	}()
	waitFor(t, "follower to join the flight", func() bool { return s.Stats().Deduped == 1 })

	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Errorf("leader returned %v, want context.Canceled", err)
	}
	select {
	case err := <-followerErr:
		if err == nil {
			t.Error("follower of an abandoned flight returned success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower of an abandoned flight is stuck")
	}
	close(gate)
}

func TestJobDeadline(t *testing.T) {
	gate := make(chan struct{}) // never closed: the deadline must fire
	registerGate("gate-slow", gate)
	s := New(Config{Workers: 1})
	defer s.Close()

	req := testRequest("gate-slow", testDesign("deadline-demo"))
	req.Timeout = 20 * time.Millisecond
	_, err := s.Map(context.Background(), req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Map with expired job deadline returned %v, want DeadlineExceeded", err)
	}
	if st := s.Stats(); st.JobsFailed != 1 {
		t.Errorf("stats = %+v, want 1 failed job", st)
	}
}

// TestMapBatchConcurrent is the race-detector workout: many goroutines,
// duplicate keys, one shared cache and pool. Duplicates must collapse to one
// engine run per distinct design whether they hit the flight or the cache.
func TestMapBatchConcurrent(t *testing.T) {
	runs := registerGate("count-batch", nil)
	s := New(Config{Workers: 4})
	defer s.Close()

	const distinct, copies = 4, 4
	var reqs []Request
	for c := 0; c < copies; c++ {
		for i := 0; i < distinct; i++ {
			reqs = append(reqs, testRequest("count-batch", testDesign(fmt.Sprintf("batch-%d", i))))
		}
	}
	items := s.MapBatch(context.Background(), reqs)
	if len(items) != distinct*copies {
		t.Fatalf("got %d results, want %d", len(items), distinct*copies)
	}
	byDesign := make(map[string]string) // design name -> result JSON
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("batch item %d: %v", i, it.Err)
		}
		j, _ := json.Marshal(it.Response.Result)
		name := reqs[i].Design.Name
		if prev, ok := byDesign[name]; ok && prev != string(j) {
			t.Errorf("design %s produced two different results", name)
		}
		byDesign[name] = string(j)
	}
	if runs.Load() != distinct {
		t.Errorf("batch of %d requests over %d designs cost %d engine runs, want %d",
			len(reqs), distinct, runs.Load(), distinct)
	}
}

func TestRequestKeyValidation(t *testing.T) {
	d := testDesign("key-demo")
	bad := testRequest("no-such-engine", d)
	if _, err := bad.Key(); err == nil {
		t.Error("unknown engine accepted by Key")
	}
	none := testRequest("greedy", nil)
	if _, err := none.Key(); err == nil {
		t.Error("nil design accepted by Key")
	}

	// Distinct engines and parameters must key differently.
	a := testRequest("greedy", d)
	b := testRequest("anneal", d)
	ka, err := a.Key()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ka == kb {
		t.Error("different engines share a key")
	}
	c := testRequest("greedy", d)
	c.Params.FreqMHz = 300
	kc, err := c.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kc == ka {
		t.Error("different frequencies share a key")
	}

	// Stochastic engines key on the seed; the deterministic greedy engine
	// ignores it (and every other search option), so differing seeds must
	// still hit one cache entry there.
	a1, a2 := testRequest("anneal", d), testRequest("anneal", d)
	a2.Opts.Seed = 99
	k1, err := a1.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := a2.Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("anneal requests with different seeds share a key")
	}
	g2 := testRequest("greedy", d)
	g2.Opts.Seed = 99
	g2.Opts.Workers = 7
	kg, err := g2.Key()
	if err != nil {
		t.Fatal(err)
	}
	if kg != ka {
		t.Error("greedy requests differing only in result-irrelevant options keyed differently")
	}
}

func TestCloseFailsQueuedJobs(t *testing.T) {
	gate := make(chan struct{})
	registerGate("gate-close", gate)
	s := New(Config{Workers: 1, QueueDepth: 4})

	if _, err := s.Submit(testRequest("gate-close", testDesign("close-a"))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job to occupy the worker", func() bool { return s.Stats().JobsRunning == 1 })
	idB, err := s.Submit(testRequest("gate-close", testDesign("close-b")))
	if err != nil {
		t.Fatal(err)
	}
	close(gate) // let the running job finish; Close fails the queued one
	s.Close()

	waitFor(t, "queued job to be failed by Close", func() bool {
		st, ok := s.Job(idB)
		return ok && (st.State == StateFailed || st.State == StateDone)
	})
	if _, err := s.Submit(testRequest("gate-close", testDesign("close-c"))); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after Close returned %v, want ErrClosed", err)
	}
	if _, err := s.Map(context.Background(), testRequest("gate-close", testDesign("close-d"))); !errors.Is(err, ErrClosed) {
		t.Errorf("map after Close returned %v, want ErrClosed", err)
	}
}

// Acceptance: an otherwise identical request on a different fabric must get
// a different cache key, both when the fabric arrives via core.Params and
// when it arrives as the design's own topology tag.
func TestRequestKeyDistinguishesTopologies(t *testing.T) {
	key := func(mutate func(*Request)) string {
		req := testRequest("greedy", testDesign("fabrics"))
		if mutate != nil {
			mutate(&req)
		}
		k, err := req.Key()
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	mesh := key(nil)
	torusParams := key(func(r *Request) { r.Params.Topology = topology.Spec{Kind: topology.KindTorus} })
	if torusParams == mesh {
		t.Error("torus params share the mesh cache key")
	}
	torusTag := key(func(r *Request) { r.Design.Topology = "torus" })
	if torusTag == mesh {
		t.Error("torus design tag shares the mesh cache key")
	}
	if meshTag := key(func(r *Request) { r.Design.Topology = "mesh" }); meshTag != mesh {
		t.Error("explicit mesh tag must equal the default key")
	}
}

// A torus request must run the full pipeline and serve cache hits on repeat.
func TestMapTorusEndToEnd(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	req := testRequest("greedy", testDesign("torus-e2e"))
	req.Params.Topology = topology.Spec{Kind: topology.KindTorus}
	req.Design.Topology = req.Params.Topology.CanonicalID()
	resp, err := s.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Violations) != 0 {
		t.Fatalf("torus mapping has violations: %v", resp.Result.Violations)
	}
	if resp.Result.Topology != "mesh" && resp.Result.Topology != "torus" {
		t.Errorf("result topology = %q", resp.Result.Topology)
	}
	again, err := s.Map(context.Background(), req)
	if err != nil || !again.Cached {
		t.Fatalf("second torus request not served from cache: %v cached=%v", err, again != nil && again.Cached)
	}
}
