package service

import (
	"runtime/debug"
	"sync"
)

// VersionInfo is the build identity served at GET /v1/version and folded
// into /healthz. Fields are best-effort: binaries built outside a module or
// without VCS stamping report what the Go runtime recorded.
type VersionInfo struct {
	// Version is the main module's version: a tag for released builds,
	// "(devel)" for builds from a working tree.
	Version string `json:"version"`
	// GoVersion is the toolchain that produced the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit the binary was built from, when stamped.
	Revision string `json:"revision,omitempty"`
	// BuildTime is the VCS commit timestamp (RFC 3339), when stamped.
	BuildTime string `json:"build_time,omitempty"`
	// Dirty reports uncommitted changes in the build's working tree.
	Dirty bool `json:"dirty,omitempty"`
}

// String renders the version for log lines: "v1.2.3 (abc1234)".
func (v VersionInfo) String() string {
	s := v.Version
	if rev := v.Revision; rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " (" + rev
		if v.Dirty {
			s += "-dirty"
		}
		s += ")"
	}
	return s
}

var buildVersion = sync.OnceValue(func() VersionInfo {
	v := VersionInfo{Version: "(devel)"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return v
	}
	v.GoVersion = info.GoVersion
	if info.Main.Version != "" {
		v.Version = info.Main.Version
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			v.Revision = s.Value
		case "vcs.time":
			v.BuildTime = s.Value
		case "vcs.modified":
			v.Dirty = s.Value == "true"
		}
	}
	return v
})

// BuildVersion reports the running binary's build identity, read once from
// runtime/debug.ReadBuildInfo.
func BuildVersion() VersionInfo { return buildVersion() }
