package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"
)

// d1JSON loads the checked-in D1 example design — the same file the CLI
// documentation exercises.
func d1JSON(t *testing.T) json.RawMessage {
	t.Helper()
	raw, err := os.ReadFile("../../examples/designs/d1.json")
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func newTestServer(t *testing.T) (*httptest.Server, *Service) {
	t.Helper()
	s := New(Config{Workers: 4})
	ts := httptest.NewServer(NewHandler(s))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, s
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestServerMapD1AllEngines is the acceptance-path e2e: POST /map serves the
// checked-in D1 design with every registered engine, a repeated identical
// request is a cache hit, and /stats proves it.
func TestServerMapD1AllEngines(t *testing.T) {
	ts, _ := newTestServer(t)
	design := d1JSON(t)

	small := 20 // keep the metaheuristic engines interactive under -race
	seeds := 2
	for _, engine := range []string{"greedy", "anneal", "portfolio"} {
		httpResp, body := postJSON(t, ts.URL+"/map", MapRequest{
			Design: design, Engine: engine, Iters: &small, Seeds: &seeds,
		})
		if httpResp.StatusCode != http.StatusOK {
			t.Fatalf("POST /map engine=%s: HTTP %d: %s", engine, httpResp.StatusCode, body)
		}
		var resp Response
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Engine != engine || resp.Cached {
			t.Errorf("engine %s: response engine=%q cached=%t", engine, resp.Engine, resp.Cached)
		}
		if resp.Result.Switches < 1 || resp.Result.Rows < 1 {
			t.Errorf("engine %s: degenerate result %+v", engine, resp.Result)
		}
		if len(resp.Result.Violations) > 0 {
			t.Errorf("engine %s: verification violations: %v", engine, resp.Result.Violations)
		}
		if resp.Result.Design != "D1-settopbox-4uc" || len(resp.Result.UseCases) != 4 {
			t.Errorf("engine %s: wrong design summary %+v", engine, resp.Result)
		}
	}

	// The repeat of the greedy request must be served from the cache …
	httpResp, body := postJSON(t, ts.URL+"/map", MapRequest{
		Design: design, Engine: "greedy", Iters: &small, Seeds: &seeds,
	})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("repeat POST /map: HTTP %d", httpResp.StatusCode)
	}
	var repeat Response
	if err := json.Unmarshal(body, &repeat); err != nil {
		t.Fatal(err)
	}
	if !repeat.Cached {
		t.Error("repeated identical request was not a cache hit")
	}

	// … and the counters must say so: three engine runs, one hit.
	var st Stats
	if code := getJSON(t, ts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("GET /stats: HTTP %d", code)
	}
	if st.CacheMisses != 3 || st.CacheHits != 1 || st.JobsDone != 3 {
		t.Errorf("stats after e2e run = %+v, want 3 misses / 1 hit / 3 done", st)
	}
}

// TestServerAsyncJob covers the async path: map → poll job → fetch result.
func TestServerAsyncJob(t *testing.T) {
	ts, _ := newTestServer(t)

	httpResp, body := postJSON(t, ts.URL+"/map", MapRequest{
		Design: d1JSON(t), Engine: "greedy", Async: true,
	})
	if httpResp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST /map: HTTP %d: %s", httpResp.StatusCode, body)
	}
	var job JobStatus
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.ID == "" {
		t.Fatalf("async response carries no job ID: %s", body)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := getJSON(t, ts.URL+"/jobs/"+job.ID, &job); code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: HTTP %d", job.ID, code)
		}
		if job.State == StateDone || job.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", job.ID, job.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if job.State != StateDone {
		t.Fatalf("job failed: %s", job.Error)
	}
	if job.Result == nil || job.Result.Result.Switches < 1 {
		t.Errorf("done job carries no result: %+v", job)
	}
}

func TestServerBatch(t *testing.T) {
	ts, _ := newTestServer(t)
	design := d1JSON(t)

	// Three identical requests plus one at a different frequency: the
	// duplicates must share a key (one engine run), the variant must not.
	var br BatchRequest
	for i := 0; i < 3; i++ {
		br.Requests = append(br.Requests, MapRequest{Design: design, Engine: "greedy"})
	}
	freq := 300.0
	br.Requests = append(br.Requests, MapRequest{Design: design, Engine: "greedy", FreqMHz: &freq})

	httpResp, body := postJSON(t, ts.URL+"/batch", br)
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("POST /batch: HTTP %d: %s", httpResp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 4 {
		t.Fatalf("got %d batch results, want 4", len(out.Results))
	}
	for i, r := range out.Results {
		if r.Error != "" || r.Response == nil {
			t.Fatalf("batch result %d: error %q", i, r.Error)
		}
	}
	if k := out.Results[0].Response.Key; out.Results[1].Response.Key != k || out.Results[2].Response.Key != k {
		t.Error("identical batch requests keyed differently")
	}
	if out.Results[3].Response.Key == out.Results[0].Response.Key {
		t.Error("different-frequency request shares the duplicates' key")
	}
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.JobsDone != 2 {
		t.Errorf("batch of 4 (3 identical) cost %d engine runs, want 2", st.JobsDone)
	}
}

func TestServerErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", "{", http.StatusBadRequest},
		{"no design", `{"engine":"greedy"}`, http.StatusBadRequest},
		{"unknown engine", fmt.Sprintf(`{"design":%s,"engine":"quantum"}`, d1JSON(t)), http.StatusBadRequest},
		{"bad budget", fmt.Sprintf(`{"design":%s,"budget":"soon"}`, d1JSON(t)), http.StatusBadRequest},
		{"invalid design", `{"design":{"name":"x","num_cores":0,"use_cases":[]}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/map", "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: HTTP %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}

	if code := getJSON(t, ts.URL+"/jobs/j404", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
	var health healthResponse
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || !health.OK {
		t.Errorf("healthz: HTTP %d, body %+v", code, health)
	}
	if health.Version.Version == "" {
		t.Errorf("healthz reports no build version: %+v", health)
	}

	// An infeasible design (more communicating cores than a 1x1 mesh can
	// seat, with growth capped at 1) maps to 422.
	infeasible := `{"design":{"name":"inf","num_cores":10,"use_cases":[{"name":"u","flows":[` +
		`{"src":0,"dst":1,"bandwidth_mbs":10},{"src":2,"dst":3,"bandwidth_mbs":10},` +
		`{"src":4,"dst":5,"bandwidth_mbs":10},{"src":6,"dst":7,"bandwidth_mbs":10},` +
		`{"src":8,"dst":9,"bandwidth_mbs":10}]}]},"max_dim":1}`
	resp, err := http.Post(ts.URL+"/map", "application/json", bytes.NewReader([]byte(infeasible)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("infeasible design: HTTP %d, want 422", resp.StatusCode)
	}
}

// POST /map with a topology field must run on that fabric, produce a cache
// key distinct from the mesh run of the same design, and reject unknown
// fabrics with 400.
func TestServerMapTopologyField(t *testing.T) {
	ts, _ := newTestServer(t)
	design := d1JSON(t)

	var keys []string
	for _, topo := range []string{"", "torus"} {
		httpResp, body := postJSON(t, ts.URL+"/map", MapRequest{Design: design, Topology: topo})
		if httpResp.StatusCode != http.StatusOK {
			t.Fatalf("topology %q: HTTP %d: %s", topo, httpResp.StatusCode, body)
		}
		var resp Response
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Result.Violations) != 0 {
			t.Fatalf("topology %q: violations %v", topo, resp.Result.Violations)
		}
		keys = append(keys, resp.Key)
	}
	if keys[0] == keys[1] {
		t.Errorf("mesh and torus requests share cache key %s", keys[0])
	}

	httpResp, body := postJSON(t, ts.URL+"/map", MapRequest{Design: design, Topology: "hypercube"})
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown topology: HTTP %d: %s", httpResp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("hypercube")) {
		t.Errorf("error body %s should name the bad fabric", body)
	}
}

// A "topology" tag inside the design JSON applies when the request carries
// no explicit override, keying the cache separately from the mesh run.
func TestServerDesignTopologyTag(t *testing.T) {
	ts, _ := newTestServer(t)
	design := d1JSON(t)
	var tagged map[string]any
	if err := json.Unmarshal(design, &tagged); err != nil {
		t.Fatal(err)
	}
	tagged["topology"] = "torus"
	taggedRaw, err := json.Marshal(tagged)
	if err != nil {
		t.Fatal(err)
	}

	httpResp, body := postJSON(t, ts.URL+"/map", MapRequest{Design: taggedRaw})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("tagged design: HTTP %d: %s", httpResp.StatusCode, body)
	}
	var torusResp Response
	if err := json.Unmarshal(body, &torusResp); err != nil {
		t.Fatal(err)
	}
	_, meshBody := postJSON(t, ts.URL+"/map", MapRequest{Design: design})
	var meshResp Response
	if err := json.Unmarshal(meshBody, &meshResp); err != nil {
		t.Fatal(err)
	}
	if torusResp.Key == meshResp.Key {
		t.Error("design-tagged torus request shares the mesh cache key")
	}
}
