package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// GET /v1/jobs/{id}/events — the wire surface of serve-then-improve.
//
// The default answer is a Server-Sent Events stream: one frame per stream
// event, `id:` carrying the incumbent sequence number, `event:` the stage
// (mapped | improved | done | failed) and `data:` the StreamEvent JSON. The
// stream replays from `?after=<seq>` (or the standard Last-Event-ID header,
// so EventSource reconnects resume seamlessly) and closes after the final
// event. `?mode=poll` answers one long-poll page of JSON instead — events
// past `after`, held up to `wait_ms` (default 30s, capped at 60s) when
// nothing new is available — for clients without SSE plumbing.

// EventsPage is the long-poll (?mode=poll) form of a job's event log: the
// events past the requested sequence number, whether the stream is
// complete, and the sequence number to pass as after on the next poll.
type EventsPage struct {
	Events []StreamEvent `json:"events"`
	Done   bool          `json:"done"`
	Next   int64         `json:"next"`
}

const (
	defaultPollWait = 30 * time.Second
	maxPollWait     = 60 * time.Second
)

// serveJobEvents implements GET /jobs/{id}/events for both disciplines.
func serveJobEvents(s *Service, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Job(id); !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	after := parseAfter(r)
	if r.URL.Query().Get("mode") == "poll" {
		serveEventsPoll(s, w, r, id, after)
		return
	}
	serveEventsSSE(s, w, r, id, after)
}

// parseAfter resolves the resume point: the after query parameter wins,
// then the SSE-standard Last-Event-ID reconnect header; 0 replays all.
func parseAfter(r *http.Request) int64 {
	raw := r.URL.Query().Get("after")
	if raw == "" {
		raw = r.Header.Get("Last-Event-ID")
	}
	after, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || after < 0 {
		return 0
	}
	return after
}

// serveEventsPoll answers one long-poll page: immediately when events past
// after exist (or the stream is complete), otherwise after holding the
// request up to wait_ms for the next event.
func serveEventsPoll(s *Service, w http.ResponseWriter, r *http.Request, id string, after int64) {
	wait := defaultPollWait
	if raw := r.URL.Query().Get("wait_ms"); raw != "" {
		msec, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || msec < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait_ms %q", raw))
			return
		}
		wait = min(time.Duration(msec)*time.Millisecond, maxPollWait)
	}
	ctx := r.Context()
	if wait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, wait)
		defer cancel()
	}
	evs, done, err := s.WaitEvents(ctx, id, after)
	if err != nil && ctx.Err() == nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	// A wait that simply timed out answers an empty page, not an error:
	// long-polling clients re-arm on empty pages.
	page := EventsPage{Events: evs, Done: done, Next: after}
	if page.Events == nil {
		page.Events = []StreamEvent{}
	}
	if n := len(evs); n > 0 {
		page.Next = evs[n-1].Seq
	}
	writeJSON(w, http.StatusOK, page)
}

// serveEventsSSE streams the event log as Server-Sent Events until the
// final event or client disconnect, flushing after every frame so each
// incumbent reaches the client the moment it lands.
func serveEventsSSE(s *Service, w http.ResponseWriter, r *http.Request, id string, after int64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		evs, done, err := s.WaitEvents(r.Context(), id, after)
		if err != nil {
			return // client went away (or the job aged out mid-stream)
		}
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Stage, data)
			after = e.Seq
		}
		flusher.Flush()
		if done {
			return
		}
	}
}
