package service

import "container/list"

// lruCache is a fixed-capacity least-recently-used map from request key to
// Response. It is not self-locking — the Service mutex guards every call.
type lruCache struct {
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	resp *Response
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) (*Response, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).resp, true
}

// put inserts or refreshes an entry and returns how many older entries were
// evicted to stay within capacity.
func (c *lruCache) put(key string, resp *Response) int {
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).resp = resp
		c.order.MoveToFront(el)
		return 0
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, resp: resp})
	evicted := 0
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		evicted++
	}
	return evicted
}

func (c *lruCache) len() int { return c.order.Len() }
