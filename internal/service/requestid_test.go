package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestNewRequestIDShape(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if !hexID.MatchString(a) || !hexID.MatchString(b) {
		t.Errorf("IDs %q, %q are not 16 hex digits", a, b)
	}
	if a == b {
		t.Errorf("two fresh IDs collided: %q", a)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	for in, want := range map[string]string{
		"abc-123":                     "abc-123",
		"  padded  ":                  "padded",
		"":                            "",
		"has space":                   "",
		"ctrl\x01byte":                "",
		"uniécode":                    "",
		strings.Repeat("x", 129):      "",
		strings.Repeat("y", 128):      strings.Repeat("y", 128),
		"0f3a9b2c-uuid-ish_OK.v2:tag": "0f3a9b2c-uuid-ish_OK.v2:tag",
	} {
		if got := sanitizeRequestID(in); got != want {
			t.Errorf("sanitizeRequestID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRequestIDEchoedOnResponses(t *testing.T) {
	ts, _ := newTestServer(t)

	// A caller-supplied well-formed ID is echoed verbatim.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Errorf("echoed ID = %q, want trace-me-42", got)
	}

	// No header (and a malformed one) gets a generated hex ID instead.
	for _, supplied := range []string{"", "bad id with spaces"} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if supplied != "" {
			req.Header.Set("X-Request-ID", supplied)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-ID"); !hexID.MatchString(got) {
			t.Errorf("supplied %q: response ID %q is not a generated hex ID", supplied, got)
		}
	}
}

func TestRequestIDOnAsyncJob(t *testing.T) {
	ts, s := newTestServer(t)

	body, err := json.Marshal(MapRequest{Design: d1JSON(t), Engine: "greedy", Async: true})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/map", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "job-trace-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST /v1/map = %d", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.RequestID != "job-trace-7" {
		t.Errorf("202 JobStatus.RequestID = %q, want job-trace-7", st.RequestID)
	}

	waitFor(t, "job completion", func() bool {
		got, ok := s.Job(st.ID)
		return ok && got.State == StateDone
	})
	var done JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID, &done); code != http.StatusOK {
		t.Fatalf("GET /v1/jobs/{id} = %d", code)
	}
	if done.RequestID != "job-trace-7" {
		t.Errorf("polled JobStatus.RequestID = %q, want job-trace-7", done.RequestID)
	}
}

func TestHealthzReportsUptime(t *testing.T) {
	ts, _ := newTestServer(t)

	var h struct {
		OK            bool    `json:"ok"`
		StartedAt     string  `json:"started_at"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("GET /healthz = %d", code)
	}
	if !h.OK {
		t.Error("healthz reports ok=false")
	}
	started, err := time.Parse(time.RFC3339, h.StartedAt)
	if err != nil {
		t.Errorf("started_at %q is not RFC3339: %v", h.StartedAt, err)
	} else if started.After(time.Now()) {
		t.Errorf("started_at %v is in the future", started)
	}
	if h.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %v, want > 0", h.UptimeSeconds)
	}
}
