package service

import (
	"time"

	"nocmap/internal/metrics"
	"nocmap/internal/search"
	"nocmap/internal/store"
)

// startedAt is the process start (package-load) instant: the anchor of the
// /healthz uptime report and the noc_uptime_seconds gauge, which is how a
// load balancer or a human tells a fresh restart from a long-lived healthy
// daemon.
var startedAt = time.Now()

// Timings breaks one mapping run's wall clock into pipeline stages, in
// milliseconds: time spent waiting for a worker (zero for in-process SDK
// runs), pre-processing the use-cases, running the search engine, and
// summarizing/verifying the result. Total covers prepare through summarize.
// On a cache hit the response carries the original run's timings.
type Timings struct {
	QueueMS     float64 `json:"queue_ms,omitempty"`
	PrepareMS   float64 `json:"prepare_ms"`
	SearchMS    float64 `json:"search_ms"`
	SummarizeMS float64 `json:"summarize_ms"`
	TotalMS     float64 `json:"total_ms"`
}

// ms converts a duration for a Timings field.
func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// serviceMetrics is the service's registered instrument set. Counter writes
// are single atomic adds, so the job pipeline's hot path pays nothing
// measurable; the pool and cache gauges read live service state at scrape
// time under the service mutex.
type serviceMetrics struct {
	reg *metrics.Registry

	cacheHits      *metrics.Counter
	cacheMisses    *metrics.Counter
	cacheEvictions *metrics.Counter
	cacheUpgrades  *metrics.Counter
	dedupJoins     *metrics.Counter
	streamEvents   *metrics.Counter

	jobs          *metrics.CounterVec   // by terminal status: done | failed
	engineSeconds *metrics.HistogramVec // end-to-end engine-run latency by engine

	httpRequests *metrics.CounterVec   // by route and status
	httpSeconds  *metrics.HistogramVec // handler latency by route

	storeGets     *metrics.CounterVec // store reads by backend
	storePuts     *metrics.CounterVec // store writes (puts and upgrades) by backend
	storeUpgrades *metrics.CounterVec // in-place replace-with-better writes by backend
	storeErrors   *metrics.CounterVec // failed store operations by backend

	searchImprovements *metrics.CounterVec // incumbent improvements by engine
	searchMoves        *metrics.CounterVec // moves tried by engine
	searchAccepted     *metrics.CounterVec // moves accepted by engine
	searchRestarts     *metrics.CounterVec // shrink-probe restarts by engine
	searchSpeculated   *metrics.CounterVec // candidates evaluated in speculative batches
	searchSpecAccepted *metrics.CounterVec // speculative batches that committed a candidate
	searchExactBounds  *metrics.CounterVec // runs that finished with a proven-tight bound, by engine

	searchLowerBound *metrics.GaugeVec // latest lower bound (switches) by engine
	searchGap        *metrics.GaugeVec // latest optimality gap by engine
}

// newServiceMetrics registers the service's metric families on reg. The
// gauges close over s, so one registry backs at most one Service.
func newServiceMetrics(reg *metrics.Registry, s *Service) *serviceMetrics {
	m := &serviceMetrics{
		reg: reg,

		cacheHits:      reg.Counter("noc_cache_hits_total", "Requests answered from the result cache."),
		cacheMisses:    reg.Counter("noc_cache_misses_total", "Requests that started a new engine run."),
		cacheEvictions: reg.Counter("noc_cache_evictions_total", "Results evicted from the LRU result cache."),
		cacheUpgrades:  reg.Counter("noc_cache_upgrades_total", "Cache entries replaced in place by a strictly better result from a streamed run."),
		dedupJoins:     reg.Counter("noc_dedup_joins_total", "Requests that joined an identical in-flight run (single-flight)."),
		streamEvents:   reg.Counter("noc_stream_events_total", "Events published on job event logs (serve-then-improve streams)."),

		jobs: reg.CounterVec("noc_jobs_total", "Finished jobs by terminal status.", "status"),
		engineSeconds: reg.HistogramVec("noc_engine_duration_seconds",
			"End-to-end engine-run latency (prepare through summarize) by engine.", nil, "engine"),

		httpRequests: reg.CounterVec("noc_http_requests_total", "HTTP requests by route and status.", "route", "status"),
		httpSeconds: reg.HistogramVec("noc_http_request_duration_seconds",
			"HTTP handler latency by route.", nil, "route"),

		storeGets: reg.CounterVec("noc_store_gets_total",
			"Result-store reads by backend.", "backend"),
		storePuts: reg.CounterVec("noc_store_puts_total",
			"Result-store writes (puts and upgrade attempts) by backend.", "backend"),
		storeUpgrades: reg.CounterVec("noc_store_upgrades_total",
			"Result-store entries replaced in place by a strictly better result, by backend.", "backend"),
		storeErrors: reg.CounterVec("noc_store_errors_total",
			"Failed result-store operations by backend (each degrades to a cache miss).", "backend"),

		searchImprovements: reg.CounterVec("noc_search_improvements_total",
			"Strict incumbent improvements streamed by the engines.", "engine"),
		searchMoves: reg.CounterVec("noc_search_moves_total",
			"Annealing moves tried, from the engines' progress counters.", "engine"),
		searchAccepted: reg.CounterVec("noc_search_moves_accepted_total",
			"Annealing moves accepted, from the engines' progress counters.", "engine"),
		searchRestarts: reg.CounterVec("noc_search_restarts_total",
			"Random-restart placements probed on shrunk fabrics, by engine.", "engine"),
		searchSpeculated: reg.CounterVec("noc_search_speculated_total",
			"Candidate moves evaluated in speculative batches, by engine.", "engine"),
		searchSpecAccepted: reg.CounterVec("noc_search_speculation_accepted_total",
			"Speculative batches that committed a candidate, by engine; divided by the batch count of noc_search_speculated_total this is the speculation hit rate.", "engine"),
		searchExactBounds: reg.CounterVec("noc_search_exact_bounds_total",
			"Runs that finished with a proven-tight lower bound (the result is optimal in switch count), by engine.", "engine"),

		searchLowerBound: reg.GaugeVec("noc_search_lower_bound_switches",
			"Lower bound on the switch count of the latest finished run, by engine (seat bound, or the exact engine's branch-and-bound proof).", "engine"),
		searchGap: reg.GaugeVec("noc_search_optimality_gap",
			"Optimality gap (switches - bound) / bound of the latest finished run, by engine; 0 means the mapping attains the bound.", "engine"),
	}

	reg.GaugeFunc("noc_uptime_seconds", "Seconds since process start.",
		func() float64 { return time.Since(startedAt).Seconds() })
	reg.GaugeFunc("noc_workers", "Engine-run worker goroutines.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("noc_queue_capacity", "Bounded job-queue capacity (backpressure beyond it).",
		func() float64 { return float64(s.cfg.QueueDepth) })
	reg.GaugeFunc("noc_queue_length", "Jobs waiting for a worker.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("noc_jobs_running", "Jobs currently executing on a worker.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.running)
		})
	reg.GaugeFunc("noc_cache_entries", "Results resident in the result store (local tier).",
		func() float64 { return float64(s.store.Len()) })
	// Backend-specific instruments register only when the backend is
	// present, so a memory-backed daemon's exposition stays free of
	// always-zero disk and shard series.
	if d := diskTierOf(s.store); d != nil {
		reg.GaugeFunc("noc_store_disk_bytes", "Bytes of result objects resident in the disk store.",
			func() float64 { return float64(d.Bytes()) })
	}
	if sh, ok := s.store.(*store.Sharded); ok {
		reg.CounterFunc("noc_shard_forwards_total",
			"Result reads forwarded to the owning replica (consistent-hash misses).",
			sh.Forwards)
	}
	return m
}

// diskTierOf unwraps the disk tier of a store stack, looking through a
// shard layer, so the disk byte gauge stays visible however the store is
// composed. Nil when no disk tier is present.
func diskTierOf(st store.Store) *store.Disk {
	if sh, ok := st.(*store.Sharded); ok {
		st = sh.Local()
	}
	d, _ := st.(*store.Disk)
	return d
}

// progressTap wraps a job's progress callback so every engine event also
// feeds the search metrics: one improvement count per StageImproved, and the
// run's cumulative move/accept/restart totals folded in at StageDone (the
// portfolio's member annealers each emit their own StageDone, so a portfolio
// run's totals land under engine="anneal", where the work happened). The
// caller's own callback, when present, still runs after the tap.
func (m *serviceMetrics) progressTap(next func(search.Event)) func(search.Event) {
	return func(e search.Event) {
		switch e.Stage {
		case search.StageImproved:
			m.searchImprovements.WithLabelValues(e.Engine).Inc()
		case search.StageDone:
			m.searchMoves.WithLabelValues(e.Engine).Add(e.Moves)
			m.searchAccepted.WithLabelValues(e.Engine).Add(e.Accepted)
			m.searchRestarts.WithLabelValues(e.Engine).Add(e.Restarts)
			if e.Speculated > 0 {
				m.searchSpeculated.WithLabelValues(e.Engine).Add(e.Speculated)
				m.searchSpecAccepted.WithLabelValues(e.Engine).Add(e.SpecAccepted)
			}
			if e.LowerBound > 0 {
				m.searchLowerBound.WithLabelValues(e.Engine).Set(float64(e.LowerBound))
				m.searchGap.WithLabelValues(e.Engine).Set(e.Gap)
			}
			if e.BoundExact {
				m.searchExactBounds.WithLabelValues(e.Engine).Inc()
			}
		}
		if next != nil {
			next(e)
		}
	}
}
