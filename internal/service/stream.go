package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"nocmap/internal/core"
	"nocmap/internal/search"
	"nocmap/internal/usecase"
)

// This file is the serve-then-improve half of the service: a mapping
// request in stream mode answers *now* with the greedy result and refines
// *later* on the worker pool, publishing every strict incumbent improvement
// on the job's event log. The three invariants the tests pin:
//
//   - Sequence numbers on one job's stream are strictly increasing (seq k
//     is the k-th event), and a final event (done | failed) is always last.
//   - Costs across result-bearing events are strictly improving: the tap
//     drops engine events that do not beat the job-level incumbent (the
//     portfolio's members each improve their own chains; only pool-wide
//     strict improvements stream).
//   - The cache entry for the job's key only ever gets better: interim
//     results are installed with a compare-and-swap on strictly-better
//     cost, so a concurrent cache hit never observes a regression.

// Stream event stages, in the order one streamed job emits them.
const (
	// StreamMapped is the first event of a streamed job: the inline greedy
	// result, served before the background engine starts.
	StreamMapped = "mapped"
	// StreamImproved announces a strictly better incumbent found by the
	// background engine.
	StreamImproved = "improved"
	// StreamDone is the final event of a successful job; its Response is
	// byte-identical to the finished job's GET /v1/jobs/{id} result.
	StreamDone = "done"
	// StreamFailed is the final event of a failed job.
	StreamFailed = "failed"
)

// StreamEvent is one anytime-results notification on a job's event log,
// served over SSE (and long-poll) at GET /v1/jobs/{id}/events.
type StreamEvent struct {
	// Seq is the monotonically increasing incumbent sequence number,
	// starting at 1; event seq k is the k-th event of the job.
	Seq int64 `json:"seq"`
	// Stage is one of mapped | improved | done | failed.
	Stage string `json:"stage"`
	// Engine names the engine that produced this incumbent ("greedy" for
	// the first event of a streamed job, the member engine for
	// improvements).
	Engine string `json:"engine"`
	// Cost is the incumbent's score under the job's cost weights (lower is
	// better); strictly decreasing across the result-bearing events of one
	// job.
	Cost float64 `json:"cost,omitempty"`
	// Counts are the emitting engine's cumulative search-effort counters at
	// the time of the event.
	Counts search.Counts `json:"counts"`
	// Response carries the incumbent's full result summary; nil only on
	// failed events.
	Response *Response `json:"response,omitempty"`
	// Error is set on failed events.
	Error string `json:"error,omitempty"`
	// Final marks the job's last event; the stream closes after it.
	Final bool `json:"final,omitempty"`
}

// jobStream is one job's append-only event log plus the change broadcast
// its readers block on. It has its own mutex — events are appended from the
// worker running the job while SSE handlers and long-pollers read
// concurrently — and must never be locked while the service mutex is
// wanted (the converse order, service mutex then stream, is allowed).
type jobStream struct {
	mu     sync.Mutex
	events []StreamEvent
	// bestCost is the job-level incumbent cost; only strictly better
	// results may append result-bearing events.
	bestCost float64
	closed   bool
	// change is closed and replaced on every append, waking every waiter.
	change chan struct{}
}

func newJobStream() *jobStream {
	return &jobStream{bestCost: math.Inf(1), change: make(chan struct{})}
}

// append assigns the next sequence number and publishes e. Result-bearing
// events must strictly beat the incumbent cost; others (failures) pass
// unconditionally. Appends after a final event are dropped. Reports whether
// the event was published.
func (st *jobStream) append(e StreamEvent) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return false
	}
	if e.Response != nil {
		if e.Cost > st.bestCost-costEps && !e.Final {
			return false // not a strict job-level improvement
		}
		if e.Cost < st.bestCost {
			st.bestCost = e.Cost
		}
	}
	e.Seq = int64(len(st.events)) + 1
	st.events = append(st.events, e)
	if e.Final {
		st.closed = true
	}
	close(st.change)
	st.change = make(chan struct{})
	return true
}

// wouldImprove reports whether cost strictly beats the stream's incumbent —
// the cheap pre-check the tap runs before paying for summarization.
func (st *jobStream) wouldImprove(cost float64) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return !st.closed && cost < st.bestCost-costEps
}

// next returns the events with Seq > after and whether the stream is
// complete. When nothing new is available it instead returns the channel
// that closes on the next append.
func (st *jobStream) next(after int64) ([]StreamEvent, bool, <-chan struct{}) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if int64(len(st.events)) > after {
		evs := make([]StreamEvent, int64(len(st.events))-after)
		copy(evs, st.events[after:])
		return evs, st.closed, nil
	}
	if st.closed {
		return nil, true, nil
	}
	return nil, false, st.change
}

// lastSeq returns the sequence number of the latest event (0 if none).
func (st *jobStream) lastSeq() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return int64(len(st.events))
}

// latest returns the most recent result-bearing event's response, or nil.
func (st *jobStream) latest() *Response {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := len(st.events) - 1; i >= 0; i-- {
		if st.events[i].Response != nil {
			return st.events[i].Response
		}
	}
	return nil
}

// costEps is the strict-improvement tolerance, matching the engines' own
// incumbent comparison.
const costEps = 1e-12

// costOfResult scores a wire Result under the weights the producing request
// ran with: the identical scalar the engines minimize, recomputed from the
// summary's fields (CostWeights.OfParts reads exactly the switch count and
// the two load statistics the summary carries, so no extra wire field is
// needed to compare cache entries).
func costOfResult(r Result, w search.CostWeights) float64 {
	return w.OfParts(r.Switches, core.Stats{
		MaxLinkUtil:   r.MaxLinkUtil,
		AvgMeshHops:   r.AvgMeshHops,
		SlotsReserved: r.SlotsReserved,
	})
}

// SubmitStream admits req in serve-then-improve mode: the greedy engine
// runs inline (bounded by ctx) and its feasible result is available on the
// returned snapshot within milliseconds, while the requested engine keeps
// improving on the worker pool under the job's own deadline. Strict
// incumbent improvements append to the job's event log (GET
// /v1/jobs/{id}/events) and upgrade the cache entry in place, so every
// later cache hit gets the best placement found so far.
//
// An identical in-flight job is joined — concurrent streamers share one
// run and one event log — and a cache hit returns an already-finished job
// whose log holds a single done event. The in-flight check deliberately
// precedes the cache lookup, the reverse of the synchronous path: a live
// stream outranks the interim snapshot it has already published.
func (s *Service) SubmitStream(ctx context.Context, req Request) (JobStatus, error) {
	key, err := req.Key()
	if err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, ErrClosed
	}
	if f, ok := s.flight[key]; ok {
		s.deduped++
		s.met.dedupJoins.Inc()
		s.mu.Unlock()
		s.log.Debug("joined in-flight stream", "request_id", req.RequestID, "key", key, "job", f.ID)
		st, _ := s.Job(f.ID)
		return st, nil
	}
	s.mu.Unlock()
	// The store read runs outside the mutex (disk/network backends pay
	// real latency here); the flight table is re-checked under the lock on
	// both sides, keeping the live-stream-outranks-cache ordering.
	if resp, ok := s.storeGet(ctx, key); ok {
		s.mu.Lock()
		if f, ok := s.flight[key]; ok {
			// A stream for this key started while the store was read; it
			// still outranks the snapshot it may already have published.
			s.deduped++
			s.met.dedupJoins.Inc()
			s.mu.Unlock()
			s.log.Debug("joined in-flight stream", "request_id", req.RequestID, "key", key, "job", f.ID)
			st, _ := s.Job(f.ID)
			return st, nil
		}
		s.hits++
		s.met.cacheHits.Inc()
		j := s.newJobLocked(key, req)
		j.streamed = true
		j.state = StateDone
		j.resp = resp.cached()
		j.finished = time.Now()
		close(j.done)
		s.retainLocked(j)
		s.mu.Unlock()
		s.appendEvent(j, StreamEvent{
			Stage: StreamDone, Engine: req.Engine,
			Cost: costOfResult(j.resp.Result, req.Opts.Weights), Response: j.resp, Final: true,
		})
		s.log.Debug("cache hit", "request_id", req.RequestID, "key", key, "engine", req.Engine, "job", j.ID)
		st, _ := s.Job(j.ID)
		return st, nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return JobStatus{}, ErrClosed
	}
	if f, ok := s.flight[key]; ok {
		s.deduped++
		s.met.dedupJoins.Inc()
		s.mu.Unlock()
		s.log.Debug("joined in-flight stream", "request_id", req.RequestID, "key", key, "job", f.ID)
		st, _ := s.Job(f.ID)
		return st, nil
	}
	s.misses++
	s.met.cacheMisses.Inc()
	j := s.newJobLocked(key, req)
	j.streamed = true
	s.flight[key] = j
	s.admits.Add(1)
	s.mu.Unlock()
	defer s.admits.Done()
	s.log.Info("stream job admitted", "request_id", req.RequestID, "job", j.ID, "key", key, "engine", req.Engine)

	// First incumbent: the greedy constructive pass, inline on the caller's
	// goroutine so the answer does not wait for a worker. Its result seeds
	// the event log and the cache entry for the job's key.
	start := time.Now()
	prep, err := usecase.Prepare(req.Design)
	if err != nil {
		s.abandon(j, err)
		return JobStatus{}, err
	}
	j.prep = prep
	prepMS := ms(time.Since(start))
	searchStart := time.Now()
	gres, err := core.MapContext(ctx, prep, req.Design.NumCores(), req.Params)
	if err != nil {
		s.abandon(j, err)
		return JobStatus{}, err
	}
	first := &Response{Key: key, Engine: req.Engine, Result: SummarizeResult(req.Design.Name, prep, gres)}
	cost := costOfResult(first.Result, req.Opts.Weights)

	if req.Engine == "greedy" {
		// Greedy *is* the requested engine: the first result is final, so the
		// job completes without touching the pool. finish appends the done
		// event and installs the cache entry.
		first.Timings = &Timings{
			PrepareMS: prepMS,
			SearchMS:  ms(time.Since(searchStart)),
			TotalMS:   ms(time.Since(start)),
		}
		s.finish(j, first, nil, false)
		st, _ := s.Job(j.ID)
		return st, nil
	}

	s.appendEvent(j, StreamEvent{Stage: StreamMapped, Engine: "greedy", Cost: cost, Response: first})
	s.storeUpgrade(j.Key, first, cost)

	// Hand the improvement phase to the pool; a full queue blocks, bounded
	// by the caller's context, mirroring the synchronous admission path.
	select {
	case s.queue <- j:
	case <-ctx.Done():
		s.abandon(j, ctx.Err())
		return JobStatus{}, ctx.Err()
	case <-s.quit:
		s.abandon(j, ErrClosed)
		return JobStatus{}, ErrClosed
	}
	st, _ := s.Job(j.ID)
	return st, nil
}

// appendEvent publishes one event on the job's log and counts it. Returns
// whether the log accepted it.
func (s *Service) appendEvent(j *Job, e StreamEvent) bool {
	if !j.stream.append(e) {
		return false
	}
	s.met.streamEvents.Inc()
	return true
}

// isExpiry reports whether err is a context expiry — the signal of a job
// deadline elapsing rather than the engine rejecting the problem.
func isExpiry(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

func errUnknownJob(id string) error { return fmt.Errorf("service: unknown job %q", id) }

// streamTap turns a streamed job's engine progress events into stream
// events and cache upgrades. Only strict job-level incumbent improvements
// pass: a portfolio member improving its own chain below the pool's best is
// filtered, so the log's costs are strictly decreasing. The callback runs
// serialized on the searching goroutine (the portfolio serializes its
// members), so appends for one job never race each other.
func (s *Service) streamTap(j *Job) func(search.Event) {
	return func(e search.Event) {
		if e.Stage != search.StageImproved || e.Result == nil {
			return
		}
		if !j.stream.wouldImprove(e.Cost) {
			return
		}
		resp := &Response{
			Key: j.Key, Engine: j.req.Engine,
			Result: SummarizeResult(j.req.Design.Name, j.prep, e.Result),
		}
		if !s.appendEvent(j, StreamEvent{
			Stage: StreamImproved, Engine: e.Engine, Cost: e.Cost, Counts: e.Counts, Response: resp,
		}) {
			return
		}
		// The store entry only ever gets better: the CAS inside
		// UpgradeIfBetter rejects anything a concurrent writer already beat.
		s.storeUpgrade(j.Key, resp, e.Cost)
		s.log.Debug("incumbent improved", "request_id", j.RequestID, "job", j.ID,
			"engine", e.Engine, "cost", e.Cost, "switches", e.Switches)
	}
}

// Events returns the job's stream events with Seq > after and whether the
// stream is complete; ok is false for unknown (or already forgotten) jobs.
func (s *Service) Events(id string, after int64) (evs []StreamEvent, done, ok bool) {
	s.mu.Lock()
	j, found := s.jobs[id]
	s.mu.Unlock()
	if !found {
		return nil, false, false
	}
	evs, done, _ = j.stream.next(after)
	return evs, done, true
}

// WaitEvents blocks until the job has events past after, its stream
// completes, or ctx expires; it returns the new events (possibly none on a
// completed stream) and whether the stream is complete. Unknown jobs and
// expired contexts report an error.
func (s *Service) WaitEvents(ctx context.Context, id string, after int64) ([]StreamEvent, bool, error) {
	s.mu.Lock()
	j, found := s.jobs[id]
	s.mu.Unlock()
	if !found {
		return nil, false, errUnknownJob(id)
	}
	for {
		evs, done, change := j.stream.next(after)
		if evs != nil || done {
			return evs, done, nil
		}
		select {
		case <-change:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// WaitJob blocks until the job finishes or ctx expires and returns the
// latest snapshot either way; ok is false for unknown jobs. It is how the
// wait_ms form of a streamed request trades patience for quality.
func (s *Service) WaitJob(ctx context.Context, id string) (JobStatus, bool) {
	s.mu.Lock()
	j, found := s.jobs[id]
	s.mu.Unlock()
	if !found {
		return JobStatus{}, false
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	return s.Job(id)
}
