package service

import (
	"context"
	"encoding/json"
	"fmt"

	"nocmap/internal/store"
)

// This file is the service's seam to the pluggable result store
// (internal/store): the codec that lets byte-oriented tiers round-trip
// Response envelopes, and the thin instrumented wrappers the admission and
// finish paths call. The wrappers are the only store call sites — every
// Get/Put/UpgradeIfBetter is counted per backend, and store failures are
// absorbed as cache misses (availability over durability: a broken disk
// degrades the service to compute-always, it does not take it down).
//
// None of the wrappers may be called with the service mutex held: the
// store is self-locking, and the disk and sharded backends do file and
// network I/O that must never serialize the admission path.

// ResponseCodec round-trips Response envelopes as JSON for byte-oriented
// store tiers (the disk store's objects are encoded with it). It is
// exported so embedders constructing their own store stack (pkg/noc,
// cmd/nocserved) encode entries exactly the way the service expects to
// decode them.
type ResponseCodec struct{}

// Encode marshals a *Response.
func (ResponseCodec) Encode(val any) ([]byte, error) {
	resp, ok := val.(*Response)
	if !ok {
		return nil, fmt.Errorf("service: store codec got %T, want *Response", val)
	}
	return json.Marshal(resp)
}

// Decode unmarshals a *Response.
func (ResponseCodec) Decode(data []byte) (any, error) {
	var resp Response
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("service: store codec: %w", err)
	}
	return &resp, nil
}

// storeGet reads the digest from the result store. Errors (and values that
// are not Response envelopes) are logged, counted and reported as misses.
func (s *Service) storeGet(ctx context.Context, digest string) (*Response, bool) {
	backend := s.store.Backend()
	s.met.storeGets.WithLabelValues(backend).Inc()
	e, ok, err := s.store.Get(ctx, digest)
	if err != nil {
		s.met.storeErrors.WithLabelValues(backend).Inc()
		s.log.Warn("store get failed", "backend", backend, "key", digest, "error", err)
		return nil, false
	}
	if !ok {
		return nil, false
	}
	resp, ok := e.Val.(*Response)
	if !ok {
		s.met.storeErrors.WithLabelValues(backend).Inc()
		s.log.Warn("store entry is not a response", "backend", backend, "key", digest)
		return nil, false
	}
	return resp, true
}

// storePut installs the response unconditionally (modulo the disk tier's
// own never-downgrade floor) and folds the result into the counters.
func (s *Service) storePut(digest string, resp *Response, cost float64) {
	backend := s.store.Backend()
	s.met.storePuts.WithLabelValues(backend).Inc()
	pr, err := s.store.Put(context.Background(), digest, store.Entry{Cost: cost, Val: resp})
	if err != nil {
		s.met.storeErrors.WithLabelValues(backend).Inc()
		s.log.Warn("store put failed", "backend", backend, "key", digest, "error", err)
		return
	}
	s.notePutResult(pr)
}

// storeUpgrade compare-and-swaps the entry for the digest: installed when
// absent or not-better, dropped when the resident entry is strictly better,
// counted as an upgrade when strictly better than the resident. It is the
// streamed jobs' replace-only-with-better path.
func (s *Service) storeUpgrade(digest string, resp *Response, cost float64) {
	backend := s.store.Backend()
	s.met.storePuts.WithLabelValues(backend).Inc()
	pr, err := s.store.UpgradeIfBetter(context.Background(), digest, store.Entry{Cost: cost, Val: resp})
	if err != nil {
		s.met.storeErrors.WithLabelValues(backend).Inc()
		s.log.Warn("store upgrade failed", "backend", backend, "key", digest, "error", err)
		return
	}
	if pr.Upgraded {
		s.met.cacheUpgrades.Inc()
		s.met.storeUpgrades.WithLabelValues(backend).Inc()
	}
	s.notePutResult(pr)
}

// notePutResult folds a write's evictions into the stats counters.
func (s *Service) notePutResult(pr store.PutResult) {
	if pr.Evicted > 0 {
		s.mu.Lock()
		s.evictions += int64(pr.Evicted)
		s.mu.Unlock()
		s.met.cacheEvictions.Add(int64(pr.Evicted))
	}
}

// Design returns the cached result for a request digest, if the store
// holds one (GET /v1/designs/{digest}). On a sharded store a digest owned
// by another replica is fetched from its owner. The lookup does not touch
// the admission hit/miss counters — it answers "what do you have", it does
// not admit work.
func (s *Service) Design(ctx context.Context, digest string) (*Response, bool) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, false
	}
	resp, ok := s.storeGet(ctx, digest)
	if !ok {
		return nil, false
	}
	return resp.cached(), true
}
