package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"nocmap/internal/bench"
	"nocmap/internal/traffic"
)

// d1Design returns the D1 benchmark, the smallest design the annealer
// reliably improves past its greedy base on pinned seeds.
func d1Design(t *testing.T) *traffic.Design {
	t.Helper()
	d, err := bench.ByName("D1")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// d1StreamRequest is a streamed anneal request on D1 with the pinned seed
// the search tests prove improves past the greedy base.
func d1StreamRequest(t *testing.T) Request {
	req := testRequest("anneal", d1Design(t))
	req.Opts.Seed = 2
	return req
}

// collectStream drains the job's event log through WaitEvents until the
// final event or the deadline.
func collectStream(t *testing.T, s *Service, id string) []StreamEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var evs []StreamEvent
	var after int64
	for {
		batch, done, err := s.WaitEvents(ctx, id, after)
		if err != nil {
			t.Fatalf("WaitEvents(%s, %d): %v", id, after, err)
		}
		evs = append(evs, batch...)
		if n := len(batch); n > 0 {
			after = batch[n-1].Seq
		}
		if done {
			return evs
		}
	}
}

// TestSubmitStreamLifecycle pins the serve-then-improve contract at the
// service level: the admission returns with the greedy incumbent already
// published, sequence numbers count 1,2,3,..., result-bearing costs
// strictly improve, the log ends with exactly one final done event, and
// the finished job reports the upgraded result — byte-identical to both
// the final stream event and the cache entry, never the greedy snapshot.
func TestSubmitStreamLifecycle(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	st, err := s.SubmitStream(context.Background(), d1StreamRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	if !st.Stream {
		t.Errorf("streamed job not marked Stream: %+v", st)
	}
	if st.LastSeq < 1 {
		t.Errorf("admission returned before the greedy incumbent was published: LastSeq=%d", st.LastSeq)
	}
	if st.Result == nil {
		t.Fatal("streamed admission carried no anytime result")
	}

	evs := collectStream(t, s, st.ID)
	if len(evs) < 3 {
		t.Fatalf("want mapped + >=1 improved + done on D1 seed 2, got %d events: %+v", len(evs), evs)
	}
	if evs[0].Stage != StreamMapped || evs[0].Engine != "greedy" {
		t.Errorf("first event is not the greedy base: %+v", evs[0])
	}
	lastCost := evs[0].Cost
	for i, e := range evs {
		if e.Seq != int64(i)+1 {
			t.Errorf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Final != (i == len(evs)-1) {
			t.Errorf("event %d Final=%v", i, e.Final)
		}
		if e.Stage == StreamImproved {
			if e.Response == nil {
				t.Fatalf("improved event %d has no response", i)
			}
			if e.Cost >= lastCost {
				t.Errorf("event %d cost %v does not improve on %v", i, e.Cost, lastCost)
			}
		}
		if e.Response != nil {
			lastCost = e.Cost
		}
	}
	final := evs[len(evs)-1]
	if final.Stage != StreamDone || final.Response == nil {
		t.Fatalf("final event: %+v", final)
	}
	if final.Cost >= evs[0].Cost {
		t.Errorf("background anneal never improved on the greedy base: %v >= %v", final.Cost, evs[0].Cost)
	}

	// The finished job reports the upgraded result (satellite regression):
	// identical bytes to the final event's response and to the cache entry.
	done, ok := s.Job(st.ID)
	if !ok || done.State != StateDone {
		t.Fatalf("job after stream: %+v", done)
	}
	jobJSON, _ := json.Marshal(done.Result.Result)
	finalJSON, _ := json.Marshal(final.Response.Result)
	if string(jobJSON) != string(finalJSON) {
		t.Errorf("finished job result diverges from the final stream event:\n%s\nvs\n%s", jobJSON, finalJSON)
	}
	if done.Result.Result.Switches == evs[0].Response.Result.Switches &&
		string(jobJSON) == mustJSON(t, evs[0].Response.Result) {
		t.Error("finished job still reports the greedy snapshot")
	}
	cached, ok := s.Design(context.Background(), st.Key)
	if !ok {
		t.Fatal("no cache entry for the streamed job")
	}
	cacheJSON, _ := json.Marshal(cached.Result)
	if string(cacheJSON) != string(jobJSON) {
		t.Errorf("cache entry diverges from the finished job:\n%s\nvs\n%s", cacheJSON, jobJSON)
	}
	if got := testCounterValue(t, s, "noc_cache_upgrades_total"); got < 1 {
		t.Errorf("noc_cache_upgrades_total = %v after an improving stream, want >= 1", got)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// testCounterValue scrapes one plain counter from the service's registry.
func testCounterValue(t *testing.T, s *Service, name string) float64 {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Metrics().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var v float64
	fmt.Sscanf(metricValue(t, rec.Body.String(), name), "%g", &v)
	return v
}

// TestSubmitStreamGreedyFinishesInline pins that a streamed request whose
// engine is greedy itself completes at admission: one final done event, no
// worker involved.
func TestSubmitStreamGreedyFinishesInline(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	st, err := s.SubmitStream(context.Background(), testRequest("greedy", testDesign("stream-greedy")))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("greedy stream not done at admission: %+v", st)
	}
	evs := collectStream(t, s, st.ID)
	if len(evs) != 1 || evs[0].Stage != StreamDone || !evs[0].Final || evs[0].Seq != 1 {
		t.Fatalf("greedy stream log: %+v", evs)
	}
}

// TestSubmitStreamJoinsFlight pins the admission order satellite: a second
// identical streamed request while the first is still improving joins the
// live job (same ID, same event log) instead of being served the interim
// cache entry as a synthesized done job.
func TestSubmitStreamJoinsFlight(t *testing.T) {
	gate := make(chan struct{})
	registerGate("stream-join", gate)
	s := New(Config{Workers: 1})
	defer s.Close()

	req := testRequest("stream-join", testDesign("stream-join"))
	first, err := s.SubmitStream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.SubmitStream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.ID != first.ID {
		t.Errorf("identical streamed request did not join the in-flight job: %s vs %s", second.ID, first.ID)
	}
	// A synchronous Map on the same key meanwhile is served the interim
	// greedy entry from the cache — the instant anytime answer.
	resp, err := s.Map(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("concurrent Map on a streaming key was not served the interim cache entry")
	}
	close(gate)
	evs := collectStream(t, s, first.ID)
	if evs[len(evs)-1].Stage != StreamDone {
		t.Fatalf("stream log after join: %+v", evs)
	}
}

// TestStreamDeadlineExpiryEndsDone pins the cancellation satellite's server
// half: a streamed job whose deadline expires mid-anneal terminates its
// stream with a final done event carrying the best incumbent so far — not
// failed.
func TestStreamDeadlineExpiryEndsDone(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	req := d1StreamRequest(t)
	req.Opts.Iters = 50_000_000 // far more work than the deadline allows
	req.Timeout = 150 * time.Millisecond
	st, err := s.SubmitStream(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	evs := collectStream(t, s, st.ID)
	final := evs[len(evs)-1]
	if final.Stage != StreamDone || !final.Final || final.Response == nil {
		t.Fatalf("deadline expiry did not end the stream done: %+v", final)
	}
	done, _ := s.Job(st.ID)
	if done.State != StateDone {
		t.Fatalf("deadline-expired streamed job state: %+v", done)
	}
}

// TestStreamDisconnectDoesNotLeak pins the cancellation satellite's client
// half: dropping an SSE connection mid-stream releases the handler
// goroutine while the background job keeps running to completion.
func TestStreamDisconnectDoesNotLeak(t *testing.T) {
	gate := make(chan struct{})
	registerGate("stream-leak", gate)
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	st, err := s.SubmitStream(context.Background(), testRequest("stream-leak", testDesign("stream-leak")))
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	// Read the replayed first event so the handler is provably mid-stream,
	// then drop the connection.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	waitFor(t, "SSE handler goroutine release", func() bool {
		return runtime.NumGoroutine() <= before
	})

	// The background job is unaffected by the disconnect.
	close(gate)
	waitFor(t, "job completion after disconnect", func() bool {
		done, _ := s.Job(st.ID)
		return done.State == StateDone
	})
}

// TestJobEventsLongPoll drives the ?mode=poll fallback: pages resume from
// `after`, Next advances, and the final page reports done.
func TestJobEventsLongPoll(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	st, err := s.SubmitStream(context.Background(), d1StreamRequest(t))
	if err != nil {
		t.Fatal(err)
	}
	var (
		after int64
		all   []StreamEvent
		done  bool
	)
	for !done {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?mode=poll&after=%d&wait_ms=5000", ts.URL, st.ID, after))
		if err != nil {
			t.Fatal(err)
		}
		var page EventsPage
		if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		for _, e := range page.Events {
			if e.Seq <= after {
				t.Fatalf("poll page replayed seq %d despite after=%d", e.Seq, after)
			}
		}
		all = append(all, page.Events...)
		if len(page.Events) > 0 && page.Next != page.Events[len(page.Events)-1].Seq {
			t.Fatalf("page Next=%d, last seq=%d", page.Next, page.Events[len(page.Events)-1].Seq)
		}
		after, done = page.Next, page.Done
	}
	if len(all) < 2 || all[len(all)-1].Stage != StreamDone {
		t.Fatalf("long-polled stream: %d events, last %+v", len(all), all[len(all)-1])
	}
	for i, e := range all {
		if e.Seq != int64(i)+1 {
			t.Fatalf("long-poll reassembly out of order at %d: %+v", i, e)
		}
	}
}

// TestMapWaitMS pins the wait_ms form: the request streams, waits up to the
// given patience for the background run, and answers with the best-so-far
// snapshot — done when the job beat the wait, still improving otherwise.
func TestMapWaitMS(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	raw := designJSON(t, d1Design(t))
	seed := int64(2)
	body, _ := json.Marshal(MapRequest{Design: raw, Engine: "anneal", Seed: &seed, WaitMS: 20_000})
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("wait_ms map: status %d: %s", resp.StatusCode, b)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Stream || st.Result == nil {
		t.Fatalf("wait_ms reply: %+v", st)
	}
	if st.State != StateDone {
		t.Fatalf("20s patience did not cover a D1 anneal: %+v", st)
	}
}

// TestMapStreamRejectsAsync pins that async and stream are mutually
// exclusive on the wire.
func TestMapStreamRejectsAsync(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(NewHandler(s))
	defer ts.Close()

	raw := designJSON(t, testDesign("stream-async"))
	body, _ := json.Marshal(MapRequest{Design: raw, Mode: "stream", Async: true})
	resp, err := http.Post(ts.URL+"/v1/map", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("async+stream accepted: status %d", resp.StatusCode)
	}
}
