package route

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nocmap/internal/tdma"
	"nocmap/internal/topology"
)

func mesh(t *testing.T, rows, cols int) *topology.Topology {
	t.Helper()
	m, err := topology.NewMesh(rows, cols, 8)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func state(t *testing.T, top *topology.Topology, slots int) *tdma.State {
	t.Helper()
	s, err := tdma.NewState(top.NumLinks(), slots)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLinkCostFreeAndLoaded(t *testing.T) {
	top := mesh(t, 1, 2)
	st := state(t, top, 8)
	p := DefaultCostParams()
	free := LinkCost(st, 0, 1, p)
	if free != p.HopCost {
		t.Errorf("free link cost = %v, want %v", free, p.HopCost)
	}
	// Occupy 4 of 8 slots on link 0.
	if err := st.Reserve(1, []int{0}, []int{0, 2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	loaded := LinkCost(st, 0, 1, p)
	if loaded <= free {
		t.Errorf("loaded link should cost more: %v vs %v", loaded, free)
	}
	// Insufficient slots: forbidden.
	if c := LinkCost(st, 0, 5, p); !math.IsInf(c, 1) {
		t.Errorf("infeasible link cost = %v, want +Inf", c)
	}
}

func TestXYandYXShape(t *testing.T) {
	top := mesh(t, 3, 3)
	src, dst := top.At(0, 0), top.At(2, 2)
	xy, err := XY(top, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	yx, err := YX(top, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(xy) != 4 || len(yx) != 4 {
		t.Fatalf("path lengths %d,%d, want 4,4", len(xy), len(yx))
	}
	if !Contiguous(top, xy, src, dst) || !Contiguous(top, yx, src, dst) {
		t.Error("paths not contiguous")
	}
	if !XYLegal(top, xy) {
		t.Error("XY path reported illegal")
	}
	if XYLegal(top, yx) {
		t.Error("YX path (row-first) must be XY-illegal for a true L-shape")
	}
	// Same row: both coincide and are legal.
	xy2, _ := XY(top, top.At(1, 0), top.At(1, 2))
	if len(xy2) != 2 || !XYLegal(top, xy2) {
		t.Error("straight path wrong")
	}
}

func TestXYSelfPath(t *testing.T) {
	top := mesh(t, 2, 2)
	p, err := XY(top, top.At(0, 0), top.At(0, 0))
	if err != nil || len(p) != 0 {
		t.Errorf("self path = %v, %v", p, err)
	}
}

// Regression: dim-ordered routing on a torus must take the shorter wrap
// direction, so no path exceeds ⌈rows/2⌉ + ⌈cols/2⌉ hops. Before the fix XY
// on a torus was rejected outright (and an unguarded walk would have taken
// the long way round).
func TestXYTorusWrapHopBound(t *testing.T) {
	for _, size := range [][2]int{{3, 3}, {4, 5}, {5, 4}, {5, 5}} {
		rows, cols := size[0], size[1]
		tor, err := topology.NewTorus(rows, cols, 8)
		if err != nil {
			t.Fatal(err)
		}
		bound := (rows+1)/2 + (cols+1)/2
		for src := topology.SwitchID(0); int(src) < tor.NumSwitches(); src++ {
			for dst := topology.SwitchID(0); int(dst) < tor.NumSwitches(); dst++ {
				for name, gen := range map[string]func(*topology.Topology, topology.SwitchID, topology.SwitchID) (Path, error){"XY": XY, "YX": YX} {
					p, err := gen(tor, src, dst)
					if err != nil {
						t.Fatalf("%s %dx%d %d->%d: %v", name, rows, cols, src, dst, err)
					}
					if len(p) > bound {
						t.Fatalf("%s %dx%d %d->%d: %d hops exceeds wrap bound %d (path %v)",
							name, rows, cols, src, dst, len(p), bound, p)
					}
					if want := tor.HopDistance(src, dst); len(p) != want {
						t.Fatalf("%s %dx%d %d->%d: %d hops, hop distance %d", name, rows, cols, src, dst, len(p), want)
					}
					if !Contiguous(tor, p, src, dst) {
						t.Fatalf("%s %dx%d %d->%d: discontiguous path %v", name, rows, cols, src, dst, p)
					}
				}
			}
		}
	}
}

// Torus minimal paths must use wrap links when they shorten the route, stay
// minimal, and remain within the candidate machinery (dedup, ordering).
func TestMinimalPathsTorusWrap(t *testing.T) {
	tor, err := topology.NewTorus(4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// (0,0) -> (0,3): one hop via the column wrap link, not three across.
	paths := MinimalPaths(tor, tor.At(0, 0), tor.At(0, 3), 0)
	if len(paths) != 1 || len(paths[0]) != 1 {
		t.Fatalf("wrap minimal paths = %v, want one single-hop path", paths)
	}
	if l := tor.Link(paths[0][0]); l.From != tor.At(0, 0) || l.To != tor.At(0, 3) {
		t.Errorf("wrap path uses link %v", l)
	}
	// (0,0) -> (3,3): one wrap hop per dimension, two interleavings.
	paths = MinimalPaths(tor, tor.At(0, 0), tor.At(3, 3), 0)
	if len(paths) != 2 {
		t.Fatalf("diagonal wrap minimal paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if len(p) != tor.HopDistance(tor.At(0, 0), tor.At(3, 3)) {
			t.Errorf("non-minimal torus path %v", p)
		}
		if !Contiguous(tor, p, tor.At(0, 0), tor.At(3, 3)) {
			t.Errorf("discontiguous torus path %v", p)
		}
	}
	// Tied ring directions (even dimension crossed halfway): both ways are
	// minimal and both must be enumerated.
	paths = MinimalPaths(tor, tor.At(0, 0), tor.At(0, 2), 0)
	if len(paths) != 2 {
		t.Fatalf("tied wrap minimal paths = %d, want 2 (one per ring direction)", len(paths))
	}
	for _, p := range paths {
		if len(p) != 2 || !Contiguous(tor, p, tor.At(0, 0), tor.At(0, 2)) {
			t.Errorf("bad tied-direction path %v", p)
		}
	}
	if pathKey(paths[0]) == pathKey(paths[1]) {
		t.Error("tied-direction paths are duplicates")
	}

	// Custom fabrics have no dimension order: MinimalPaths declines.
	custom, err := (&topology.Custom{Switches: 3, Links: [][2]int{{0, 1}, {1, 2}}}).Build(8)
	if err != nil {
		t.Fatal(err)
	}
	if got := MinimalPaths(custom, 0, 2, 0); got != nil {
		t.Errorf("custom minimal paths = %v, want nil", got)
	}
	if _, err := XY(custom, 0, 2); err == nil {
		t.Error("XY on a custom fabric should be rejected")
	}
}

func TestMinimalPathsCount(t *testing.T) {
	top := mesh(t, 3, 3)
	// (0,0) -> (2,2): C(4,2) = 6 minimal paths.
	paths := MinimalPaths(top, top.At(0, 0), top.At(2, 2), 0)
	if len(paths) != 6 {
		t.Fatalf("minimal path count = %d, want 6", len(paths))
	}
	for _, p := range paths {
		if len(p) != 4 || !Contiguous(top, p, top.At(0, 0), top.At(2, 2)) {
			t.Errorf("bad minimal path %v", p)
		}
	}
	// Cap respected.
	if got := MinimalPaths(top, top.At(0, 0), top.At(2, 2), 3); len(got) != 3 {
		t.Errorf("capped count = %d, want 3", len(got))
	}
	// Same switch: one empty path.
	if got := MinimalPaths(top, 0, 0, 0); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("self minimal paths = %v", got)
	}
}

func TestLeastCostAvoidsSaturation(t *testing.T) {
	top := mesh(t, 2, 2)
	st := state(t, top, 4)
	p := DefaultCostParams()
	src, dst := top.At(0, 0), top.At(0, 1)
	// Saturate the direct link (0,0)->(0,1).
	direct, ok := top.FindLink(src, dst)
	if !ok {
		t.Fatal("missing direct link")
	}
	if err := st.Reserve(9, []int{int(direct)}, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	path, _, err := LeastCost(top, st, src, dst, 1, p)
	if err != nil {
		t.Fatalf("LeastCost: %v", err)
	}
	if len(path) != 3 {
		t.Errorf("detour length = %d, want 3 (around the square)", len(path))
	}
	for _, l := range path {
		if l == direct {
			t.Error("path used the saturated link")
		}
	}
}

func TestLeastCostNoPath(t *testing.T) {
	top := mesh(t, 1, 2)
	st := state(t, top, 2)
	// Saturate both directions.
	if err := st.Reserve(1, []int{0}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.Reserve(1, []int{1}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LeastCost(top, st, 0, 1, 1, DefaultCostParams()); err == nil {
		t.Error("saturated network should yield no path")
	}
}

func TestLeastCostTree(t *testing.T) {
	top := mesh(t, 2, 3)
	st := state(t, top, 8)
	dist, err := LeastCostTree(top, st, top.At(0, 0), 1, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if dist[top.At(0, 0)] != 0 {
		t.Errorf("self distance = %v", dist[0])
	}
	// Under uniform cost (fresh state), distance = hop count * HopCost.
	for s := 0; s < top.NumSwitches(); s++ {
		want := float64(top.HopDistance(top.At(0, 0), topology.SwitchID(s)))
		if math.Abs(dist[s]-want) > 1e-12 {
			t.Errorf("dist[%d] = %v, want %v", s, dist[s], want)
		}
	}
}

func TestCandidatesOrderingAndDedup(t *testing.T) {
	top := mesh(t, 3, 3)
	st := state(t, top, 8)
	p := DefaultCostParams()
	cands := Candidates(top, st, top.At(0, 0), top.At(2, 2), 1, p)
	if len(cands) == 0 {
		t.Fatal("no candidates on a fresh mesh")
	}
	if len(cands) > p.MaxCandidates {
		t.Errorf("candidate count %d exceeds cap %d", len(cands), p.MaxCandidates)
	}
	seen := map[string]bool{}
	prev := -1.0
	for _, c := range cands {
		if !Contiguous(top, c, top.At(0, 0), top.At(2, 2)) {
			t.Errorf("candidate %v not contiguous", c)
		}
		k := pathKey(c)
		if seen[k] {
			t.Error("duplicate candidate")
		}
		seen[k] = true
		cost := PathCost(st, c, 1, p)
		if cost < prev {
			t.Error("candidates not sorted by cost")
		}
		prev = cost
	}
}

func TestCandidatesSkipInfeasible(t *testing.T) {
	top := mesh(t, 1, 2)
	st := state(t, top, 2)
	if err := st.Reserve(1, []int{0}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if cands := Candidates(top, st, 0, 1, 1, DefaultCostParams()); len(cands) != 0 {
		t.Errorf("saturated mesh candidates = %v, want none", cands)
	}
}

func TestPathInts(t *testing.T) {
	p := Path{3, 1, 2}
	ints := p.Ints()
	if len(ints) != 3 || ints[0] != 3 || ints[2] != 2 {
		t.Errorf("Ints = %v", ints)
	}
}

// Property: every minimal path has exactly HopDistance links and never
// leaves the bounding box of src/dst.
func TestMinimalPathsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 2+rng.Intn(4), 2+rng.Intn(4)
		top, err := topology.NewMesh(rows, cols, 4)
		if err != nil {
			return false
		}
		src := topology.SwitchID(rng.Intn(top.NumSwitches()))
		dst := topology.SwitchID(rng.Intn(top.NumSwitches()))
		want := top.HopDistance(src, dst)
		paths := MinimalPaths(top, src, dst, 20)
		if len(paths) == 0 {
			return false
		}
		sr, sc := top.Coord(src)
		dr, dc := top.Coord(dst)
		loR, hiR := min(sr, dr), max(sr, dr)
		loC, hiC := min(sc, dc), max(sc, dc)
		for _, p := range paths {
			if len(p) != want || !Contiguous(top, p, src, dst) {
				return false
			}
			for _, l := range p {
				r, c := top.Coord(top.Link(l).To)
				if r < loR || r > hiR || c < loC || c > hiC {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the Dijkstra least-cost path on a fresh (uniform) mesh is
// minimal, and XY/YX are always feasible alternatives of the same length.
func TestLeastCostMinimalOnFreshMesh(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 2+rng.Intn(4), 2+rng.Intn(4)
		top, err := topology.NewMesh(rows, cols, 4)
		if err != nil {
			return false
		}
		st, err := tdma.NewState(top.NumLinks(), 8)
		if err != nil {
			return false
		}
		src := topology.SwitchID(rng.Intn(top.NumSwitches()))
		dst := topology.SwitchID(rng.Intn(top.NumSwitches()))
		if src == dst {
			return true
		}
		path, _, err := LeastCost(top, st, src, dst, 1, DefaultCostParams())
		if err != nil {
			return false
		}
		if len(path) != top.HopDistance(src, dst) {
			return false
		}
		xy, err := XY(top, src, dst)
		if err != nil || len(xy) != len(path) || !XYLegal(top, xy) {
			return false
		}
		yx, err := YX(top, src, dst)
		return err == nil && len(yx) == len(path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestTableMatchesCandidates: the cached table must return exactly what the
// package-level Candidates returns, on fresh and on loaded states, across
// mesh, torus and repeated queries (cache hits).
func TestTableMatchesCandidates(t *testing.T) {
	tops := []*topology.Topology{}
	if m, err := topology.NewMesh(3, 4, 1); err == nil {
		tops = append(tops, m)
	}
	if tor, err := topology.NewTorus(3, 3, 1); err == nil {
		tops = append(tops, tor)
	}
	p := DefaultCostParams()
	for _, top := range tops {
		st, err := tdma.NewState(top.NumLinks(), 8)
		if err != nil {
			t.Fatal(err)
		}
		tab := NewTable(top, p)
		// Load a few links so the residual-cost ordering differs from hops.
		if err := st.Reserve(1, []int{0, 1}, []int{0, 2, 4}); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ { // second round exercises the cache hit
			for src := 0; src < top.NumSwitches(); src++ {
				for dst := 0; dst < top.NumSwitches(); dst++ {
					if src == dst {
						continue
					}
					want := Candidates(top, st, topology.SwitchID(src), topology.SwitchID(dst), 2, p)
					got := tab.Candidates(st, topology.SwitchID(src), topology.SwitchID(dst), 2, p)
					if len(got) != len(want) {
						t.Fatalf("%s %d->%d: table returned %d candidates, want %d", top, src, dst, len(got), len(want))
					}
					for i := range got {
						if pathKey(got[i]) != pathKey(want[i]) {
							t.Fatalf("%s %d->%d: candidate %d differs: %v vs %v", top, src, dst, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestTableConcurrent hammers one table from many goroutines; run under
// -race this pins the locking of the lazy fill.
func TestTableConcurrent(t *testing.T) {
	top, err := topology.NewMesh(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultCostParams()
	tab := NewTable(top, p)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(seed int) {
			defer func() { done <- struct{}{} }()
			st, _ := tdma.NewState(top.NumLinks(), 8)
			for i := 0; i < 50; i++ {
				src := topology.SwitchID((seed + i) % top.NumSwitches())
				dst := topology.SwitchID((seed*3 + i*7) % top.NumSwitches())
				if src == dst {
					continue
				}
				if got := tab.Candidates(st, src, dst, 1, p); len(got) == 0 {
					t.Errorf("no candidates %d->%d on empty state", src, dst)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
