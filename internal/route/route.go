// Package route implements the path-selection half of the unified
// mapping-configuration step. Following the paper's reference [20], the cost
// of a path combines hop delay with the residual bandwidth/slots of the
// links it crosses, so lightly loaded detours can beat congested shortcuts.
//
// Guaranteed-throughput flows are deadlock-free by construction — TDMA
// reservations mean flits never block inside the network — so GT path
// selection may use arbitrary paths on any topology (LeastCost is plain
// Dijkstra over the fabric graph). The dimension-ordered (XY) generator is
// wrap-aware on tori, taking the shorter ring direction per dimension; its
// paths are minimal on every fabric that has dimensions. On a mesh XY is
// additionally deadlock-free under the turn model and therefore usable for
// best-effort traffic; on a torus wrap links close cyclic channel
// dependencies within each ring, so torus XY paths are NOT deadlock-free
// for BE traffic without virtual channels or datelines — here they serve
// only as GT path candidates, where TDMA reservations make blocking
// impossible. Custom fabrics have no dimension structure: only least-cost
// routing applies there.
//
// The package is stateless: every query reads the caller's topology and
// slot-table state and allocates nothing shared, so concurrent engine runs
// on the service worker pool route independently without locking.
package route

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"nocmap/internal/graph"
	"nocmap/internal/tdma"
	"nocmap/internal/topology"
)

// Path is an ordered list of directed links from a source switch to a
// destination switch.
type Path []topology.LinkID

// CostParams weight the two components of link cost from [20]: a fixed hop
// cost (delay, energy) and a load penalty that grows with slot-table
// occupancy, discouraging bandwidth fragmentation.
type CostParams struct {
	// HopCost is the fixed price of traversing one link.
	HopCost float64
	// LoadWeight scales the occupancy penalty.
	LoadWeight float64
	// MaxCandidates bounds how many candidate paths are generated per query.
	MaxCandidates int
}

// DefaultCostParams mirror the defaults used throughout the evaluation.
func DefaultCostParams() CostParams {
	return CostParams{HopCost: 1.0, LoadWeight: 4.0, MaxCandidates: 8}
}

// LinkCost prices one link given the residual state: the fixed hop cost plus
// a convex load penalty. Links without enough free slots for the request are
// priced +Inf (forbidden).
func LinkCost(st *tdma.State, link int, neededSlots int, p CostParams) float64 {
	free := st.FreeSlots(link)
	if free < neededSlots {
		return math.Inf(1)
	}
	occ := 1 - float64(free)/float64(st.Slots())
	return p.HopCost + p.LoadWeight*occ*occ
}

// PathCost sums LinkCost over a path.
func PathCost(st *tdma.State, path Path, neededSlots int, p CostParams) float64 {
	var sum float64
	for _, l := range path {
		c := LinkCost(st, int(l), neededSlots, p)
		if math.IsInf(c, 1) {
			return c
		}
		sum += c
	}
	return sum
}

// LeastCost runs Dijkstra over the topology under the residual-state cost
// and returns the cheapest feasible path from src to dst. It reports
// ErrNoPath via the wrapped graph error if every route is saturated.
func LeastCost(top *topology.Topology, st *tdma.State, src, dst topology.SwitchID, neededSlots int, p CostParams) (Path, float64, error) {
	arcs, cost, err := top.Graph().ShortestPath(int(src), int(dst), func(a graph.Arc) float64 {
		return LinkCost(st, a.ID, neededSlots, p)
	})
	if err != nil {
		return nil, 0, fmt.Errorf("route: %d->%d with %d slots: %w", src, dst, neededSlots, err)
	}
	path := make(Path, len(arcs))
	for i, a := range arcs {
		path[i] = topology.LinkID(a)
	}
	return path, cost, nil
}

// LeastCostTree computes, from a single source, the least path cost to every
// switch (negative = unreachable) under the residual-state cost. The mapper
// uses it to evaluate every candidate placement of an unmapped core in one
// Dijkstra run.
func LeastCostTree(top *topology.Topology, st *tdma.State, src topology.SwitchID, neededSlots int, p CostParams) ([]float64, error) {
	dist, _, err := top.Graph().ShortestTree(int(src), func(a graph.Arc) float64 {
		return LinkCost(st, a.ID, neededSlots, p)
	})
	if err != nil {
		return nil, fmt.Errorf("route: tree from %d: %w", src, err)
	}
	return dist, nil
}

// XY returns the dimension-ordered path: first along the row (X/columns),
// then along the column (Y/rows). It is minimal everywhere and deadlock-free
// on a mesh; on a torus each dimension is traversed in the shorter wrap
// direction, so the hop count never exceeds ⌊Cols/2⌋ + ⌊Rows/2⌋ (see the
// package comment for the torus deadlock caveat).
func XY(top *topology.Topology, src, dst topology.SwitchID) (Path, error) {
	return dimOrdered(top, src, dst, true)
}

// YX returns the column-first dimension-ordered path.
func YX(top *topology.Topology, src, dst topology.SwitchID) (Path, error) {
	return dimOrdered(top, src, dst, false)
}

// dimSteps returns how many steps and in which per-step direction (+1/-1) to
// travel from a to b along one dimension of size n. With wrap the shorter
// ring direction is taken; ties prefer the direct (mesh) direction, keeping
// the choice deterministic.
func dimSteps(n, a, b int, wrap bool) (steps, dir int) {
	if a == b {
		return 0, 0
	}
	steps, dir = b-a, 1
	if steps < 0 {
		steps, dir = -steps, -1
	}
	if wrap {
		if around := n - steps; around < steps {
			return around, -dir
		}
	}
	return steps, dir
}

// step advances one position along a dimension of size n, wrapping modulo n.
func step(n, pos, dir int) int { return ((pos+dir)%n + n) % n }

func dimOrdered(top *topology.Topology, src, dst topology.SwitchID, xFirst bool) (Path, error) {
	if top.Kind == topology.KindCustom {
		return nil, fmt.Errorf("route: dimension-ordered routing needs a mesh or torus, have %s", top.Kind)
	}
	wrap := top.Kind == topology.KindTorus
	sr, sc := top.Coord(src)
	dr, dc := top.Coord(dst)
	colSteps, colDir := dimSteps(top.Cols, sc, dc, wrap)
	rowSteps, rowDir := dimSteps(top.Rows, sr, dr, wrap)
	var path Path
	cur := src
	stepCol := func() error {
		for ; colSteps > 0; colSteps-- {
			sc = step(top.Cols, sc, colDir)
			l, ok := top.FindLink(cur, top.At(sr, sc))
			if !ok {
				return fmt.Errorf("route: missing link at (%d,%d)", sr, sc)
			}
			path = append(path, l)
			cur = top.At(sr, sc)
		}
		return nil
	}
	stepRow := func() error {
		for ; rowSteps > 0; rowSteps-- {
			sr = step(top.Rows, sr, rowDir)
			l, ok := top.FindLink(cur, top.At(sr, sc))
			if !ok {
				return fmt.Errorf("route: missing link at (%d,%d)", sr, sc)
			}
			path = append(path, l)
			cur = top.At(sr, sc)
		}
		return nil
	}
	if xFirst {
		if err := stepCol(); err != nil {
			return nil, err
		}
		if err := stepRow(); err != nil {
			return nil, err
		}
	} else {
		if err := stepRow(); err != nil {
			return nil, err
		}
		if err := stepCol(); err != nil {
			return nil, err
		}
	}
	return path, nil
}

// MinimalPaths enumerates minimal (monotone) paths from src to dst, up to
// cap paths; with cap <= 0 all are returned. On a mesh these are the classic
// staircase paths; on a torus each dimension moves in its shorter wrap
// direction — and when the two ring directions tie (an even dimension
// crossed exactly halfway), both directions are enumerated, so no minimal
// path is missed. Custom fabrics have no dimension structure and return
// nil — callers fall back to least-cost search. Enumeration order is
// deterministic (direct directions first, column-step branches first).
func MinimalPaths(top *topology.Topology, src, dst topology.SwitchID, cap int) []Path {
	if top.Kind == topology.KindCustom {
		return nil
	}
	wrap := top.Kind == topology.KindTorus
	sr, sc := top.Coord(src)
	dr, dc := top.Coord(dst)
	colSteps, colDirs := dimDirs(top.Cols, sc, dc, wrap)
	rowSteps, rowDirs := dimDirs(top.Rows, sr, dr, wrap)
	var out []Path
	for _, colDir := range colDirs {
		for _, rowDir := range rowDirs {
			var walk func(r, c, colLeft, rowLeft int, acc Path)
			walk = func(r, c, colLeft, rowLeft int, acc Path) {
				if cap > 0 && len(out) >= cap {
					return
				}
				if colLeft == 0 && rowLeft == 0 {
					out = append(out, append(Path(nil), acc...))
					return
				}
				if colLeft > 0 {
					nc := step(top.Cols, c, colDir)
					if l, ok := top.FindLink(top.At(r, c), top.At(r, nc)); ok {
						walk(r, nc, colLeft-1, rowLeft, append(acc, l))
					}
				}
				if rowLeft > 0 {
					nr := step(top.Rows, r, rowDir)
					if l, ok := top.FindLink(top.At(r, c), top.At(nr, c)); ok {
						walk(nr, c, colLeft, rowLeft-1, append(acc, l))
					}
				}
			}
			walk(sr, sc, colSteps, rowSteps, nil)
		}
	}
	return out
}

// dimDirs returns the minimal step count along one dimension and every
// per-step direction achieving it: one direction normally, both on a torus
// tie (direct direction listed first for determinism).
func dimDirs(n, a, b int, wrap bool) (steps int, dirs []int) {
	steps, dir := dimSteps(n, a, b, wrap)
	if steps == 0 {
		return 0, []int{0}
	}
	dirs = []int{dir}
	if wrap && n == 2*steps {
		dirs = append(dirs, -dir)
	}
	return steps, dirs
}

// Candidates assembles a deterministic, deduplicated list of candidate paths
// for a flow, cheapest first: the Dijkstra least-cost path (which may detour
// around saturated links), then minimal paths ordered by residual cost. At
// most p.MaxCandidates paths are returned; infeasible (infinite-cost) paths
// are dropped.
func Candidates(top *topology.Topology, st *tdma.State, src, dst topology.SwitchID, neededSlots int, p CostParams) []Path {
	max := maxCandidates(p)
	return assemble(top, st, src, dst, neededSlots, p, MinimalPaths(top, src, dst, 2*max), max)
}

func maxCandidates(p CostParams) int {
	if p.MaxCandidates <= 0 {
		return 8
	}
	return p.MaxCandidates
}

// Table caches the state-independent half of candidate generation — the
// minimal-path enumeration per (src, dst) switch pair — for one fixed
// topology. An evaluation engine that scores thousands of placements on the
// same fabric (core.Evaluator under the annealer) pays the staircase-path
// recursion once per pair instead of once per flow per candidate placement.
// The state-dependent half (the Dijkstra least-cost path and the residual
// cost ordering) is still computed per query, so Table.Candidates returns
// exactly what Candidates would for the same inputs. A Table is safe for
// concurrent use; the portfolio's workers share one per topology.
type Table struct {
	top *topology.Topology
	max int // candidate cap the cached enumeration was sized for

	mu      sync.RWMutex
	minimal map[pairIndex][]Path
}

type pairIndex struct{ src, dst topology.SwitchID }

// NewTable creates an empty candidate-path table for the topology. The cost
// params fix the candidate cap; queries must use the same MaxCandidates (the
// evaluator owns both, so this holds by construction).
func NewTable(top *topology.Topology, p CostParams) *Table {
	return &Table{top: top, max: maxCandidates(p), minimal: make(map[pairIndex][]Path)}
}

// Candidates is Candidates computed against the cached minimal-path
// enumeration. Results are identical to the package-level function.
func (t *Table) Candidates(st *tdma.State, src, dst topology.SwitchID, neededSlots int, p CostParams) []Path {
	return assemble(t.top, st, src, dst, neededSlots, p, t.minimalFor(src, dst), t.max)
}

// minimalFor returns (computing and caching on first use) the minimal-path
// enumeration for one switch pair.
func (t *Table) minimalFor(src, dst topology.SwitchID) []Path {
	key := pairIndex{src, dst}
	t.mu.RLock()
	minimal, ok := t.minimal[key]
	t.mu.RUnlock()
	if !ok {
		minimal = MinimalPaths(t.top, src, dst, 2*t.max)
		t.mu.Lock()
		t.minimal[key] = minimal
		t.mu.Unlock()
	}
	return minimal
}

// Scratch holds the reusable working state of repeated candidate queries on
// one goroutine: the Dijkstra scratch, the cost closure, and the scoring and
// output buffers. Obtain one with NewScratch; a Scratch is not safe for
// concurrent use, and the paths a CandidatesInto call returns are valid only
// until the scratch's next use.
type Scratch struct {
	sp     graph.SPScratch
	st     *tdma.State
	needed int
	cp     CostParams
	costFn graph.CostFunc
	lc     Path
	scored []scoredPath
	out    []Path
}

type scoredPath struct {
	path Path
	cost float64
}

// NewScratch returns an empty candidate-query scratch. The cost closure is
// built once here, so per-query path searches capture no new state.
func NewScratch() *Scratch {
	sc := &Scratch{}
	sc.costFn = func(a graph.Arc) float64 {
		return LinkCost(sc.st, a.ID, sc.needed, sc.cp)
	}
	return sc
}

// CandidatesInto is Table.Candidates with every working allocation drawn
// from the scratch. The returned slice — and the least-cost path it may
// contain — are owned by the scratch and overwritten by the next call;
// minimal paths in the slice alias the table's immutable cache. Results are
// identical to Candidates.
func (t *Table) CandidatesInto(sc *Scratch, st *tdma.State, src, dst topology.SwitchID, neededSlots int, p CostParams) []Path {
	minimal := t.minimalFor(src, dst)
	sc.st, sc.needed, sc.cp = st, neededSlots, p
	sc.scored = sc.scored[:0]
	var lc Path
	if arcs, _, err := t.top.Graph().ShortestPathInto(int(src), int(dst), sc.costFn, &sc.sp); err == nil {
		buf := sc.lc[:0]
		for _, a := range arcs {
			buf = append(buf, topology.LinkID(a))
		}
		sc.lc = buf
		if c := PathCost(st, buf, neededSlots, p); !math.IsInf(c, 1) {
			lc = buf
			sc.scored = append(sc.scored, scoredPath{buf, c})
		}
	}
	for _, m := range minimal {
		if lc != nil && pathEqual(m, lc) {
			continue
		}
		c := PathCost(st, m, neededSlots, p)
		if math.IsInf(c, 1) {
			continue
		}
		sc.scored = append(sc.scored, scoredPath{m, c})
	}
	// Stable insertion sort by cost: equal-cost candidates keep their
	// insertion order, matching assemble's sort.SliceStable without its
	// reflection allocations (the candidate set is at most 2*max+1 paths).
	cands := sc.scored
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].cost < cands[j-1].cost; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if len(cands) > t.max {
		cands = cands[:t.max]
	}
	out := sc.out[:0]
	for _, c := range cands {
		out = append(out, c.path)
	}
	sc.out = out
	return out
}

// assemble scores, deduplicates, orders and trims the candidate set from the
// Dijkstra least-cost path plus the supplied minimal paths. The minimal
// enumeration never repeats a path, so the only possible duplicate is the
// least-cost path reappearing among the minimals — one slice comparison per
// minimal, no keying allocation on this very hot call.
func assemble(top *topology.Topology, st *tdma.State, src, dst topology.SwitchID, neededSlots int, p CostParams, minimal []Path, max int) []Path {
	type scored struct {
		path Path
		cost float64
	}
	cands := make([]scored, 0, len(minimal)+1)
	var lc Path
	if path, _, err := LeastCost(top, st, src, dst, neededSlots, p); err == nil {
		if c := PathCost(st, path, neededSlots, p); !math.IsInf(c, 1) {
			lc = path
			cands = append(cands, scored{path, c})
		}
	}
	for _, m := range minimal {
		if lc != nil && pathEqual(m, lc) {
			continue
		}
		c := PathCost(st, m, neededSlots, p)
		if math.IsInf(c, 1) {
			continue
		}
		cands = append(cands, scored{m, c})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].cost < cands[j].cost })
	if len(cands) > max {
		cands = cands[:max]
	}
	out := make([]Path, len(cands))
	for i, c := range cands {
		out[i] = c.path
	}
	return out
}

// pathKey is a comparable encoding of a path (used by tests to assert
// candidate-set equality).
func pathKey(p Path) string {
	b := make([]byte, 0, 4*len(p))
	for _, l := range p {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

func pathEqual(a, b Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Turn describes a change of direction at a switch.
type Turn struct {
	At   topology.SwitchID
	From topology.LinkID
	To   topology.LinkID
}

// XYLegal reports whether a path only makes turns permitted by
// dimension-ordered XY routing (column movement must precede row movement;
// once a path turns into a row direction it may not turn back). Used to
// validate best-effort routes on meshes, which rely on XY for deadlock
// freedom. It checks turn order only: on a torus it accepts wrap-using
// paths, which XY order alone does not make deadlock-free (ring cycles
// need virtual channels or datelines).
func XYLegal(top *topology.Topology, path Path) bool {
	turnedToRow := false
	for _, l := range path {
		link := top.Link(l)
		fr, fc := top.Coord(link.From)
		tr, tc := top.Coord(link.To)
		isRowMove := fr != tr
		isColMove := fc != tc
		switch {
		case isRowMove && isColMove:
			return false // diagonal links cannot occur in a mesh
		case isRowMove:
			turnedToRow = true
		case isColMove:
			if turnedToRow {
				return false
			}
		}
	}
	return true
}

// Contiguous verifies that a path's links join head-to-tail and start/end at
// the given switches.
func Contiguous(top *topology.Topology, path Path, src, dst topology.SwitchID) bool {
	if len(path) == 0 {
		return src == dst
	}
	if top.Link(path[0]).From != src || top.Link(path[len(path)-1]).To != dst {
		return false
	}
	for i := 0; i+1 < len(path); i++ {
		if top.Link(path[i]).To != top.Link(path[i+1]).From {
			return false
		}
	}
	return true
}

// Ints converts a Path to the []int form used by the tdma package.
func (p Path) Ints() []int {
	out := make([]int, len(p))
	for i, l := range p {
		out[i] = int(l)
	}
	return out
}
