package usecase

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"nocmap/internal/traffic"
)

// fig4Design reproduces the scenario of the paper's Figure 4: eight original
// use-cases U1..U8, parallel sets {U1,U2,U3} and {U4,U5}, and a smooth
// switching requirement between U6 and U7 (U7 is critical).
func fig4Design() *traffic.Design {
	ucs := make([]*traffic.UseCase, 8)
	for i := range ucs {
		ucs[i] = &traffic.UseCase{
			Name: []string{"U1", "U2", "U3", "U4", "U5", "U6", "U7", "U8"}[i],
			Flows: []traffic.Flow{
				{Src: traffic.CoreID(i % 3), Dst: traffic.CoreID(3 + i%2), BandwidthMBs: 10 * float64(i+1)},
			},
		}
	}
	return &traffic.Design{
		Name:         "fig4",
		Cores:        traffic.MakeCores(5),
		UseCases:     ucs,
		ParallelSets: [][]int{{0, 1, 2}, {3, 4}},
		SmoothPairs:  [][2]int{{5, 6}},
	}
}

func TestFig4Grouping(t *testing.T) {
	p, err := Prepare(fig4Design())
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if p.NumOriginal != 8 || len(p.UseCases) != 10 {
		t.Fatalf("NumOriginal=%d total=%d, want 8 and 10", p.NumOriginal, len(p.UseCases))
	}
	// Generated compounds are U_123 (index 8) and U_45 (index 9).
	if !p.IsCompound(8) || !p.IsCompound(9) || p.IsCompound(7) {
		t.Error("compound flags wrong")
	}
	// Figure 4 groups: {U1,U2,U3,U_123}, {U4,U5,U_45}, {U6,U7}, {U8}.
	want := [][]int{{0, 1, 2, 8}, {3, 4, 9}, {5, 6}, {7}}
	if !reflect.DeepEqual(p.Groups, want) {
		t.Errorf("Groups = %v, want %v", p.Groups, want)
	}
	if !p.SameGroup(0, 8) || p.SameGroup(0, 3) || !p.SameGroup(5, 6) {
		t.Error("SameGroup answers wrong")
	}
	if got := p.GroupMembers(9); !reflect.DeepEqual(got, []int{3, 4, 9}) {
		t.Errorf("GroupMembers(9) = %v", got)
	}
}

func TestPrepareNoSpecsYieldsSingletons(t *testing.T) {
	d := &traffic.Design{
		Name:  "plain",
		Cores: traffic.MakeCores(3),
		UseCases: []*traffic.UseCase{
			{Name: "a", Flows: []traffic.Flow{{Src: 0, Dst: 1, BandwidthMBs: 5}}},
			{Name: "b", Flows: []traffic.Flow{{Src: 1, Dst: 2, BandwidthMBs: 5}}},
		},
	}
	p, err := Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.UseCases) != 2 || len(p.Groups) != 2 {
		t.Errorf("got %d use-cases, %d groups; want 2 singleton groups", len(p.UseCases), len(p.Groups))
	}
	reconfig, smooth := p.ReconfigurableSwitches()
	if reconfig != 1 || smooth != 0 {
		t.Errorf("reconfig=%d smooth=%d, want 1,0", reconfig, smooth)
	}
}

func TestPrepareCompoundFlows(t *testing.T) {
	d := &traffic.Design{
		Name:  "cf",
		Cores: traffic.MakeCores(3),
		UseCases: []*traffic.UseCase{
			{Name: "a", Flows: []traffic.Flow{{Src: 0, Dst: 1, BandwidthMBs: 100, MaxLatencyNS: 800}}},
			{Name: "b", Flows: []traffic.Flow{{Src: 0, Dst: 1, BandwidthMBs: 40, MaxLatencyNS: 400}}},
		},
		ParallelSets: [][]int{{0, 1}},
	}
	p, err := Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	comp := p.UseCases[2]
	if !comp.Compound || len(comp.Flows) != 1 {
		t.Fatalf("compound = %+v", comp)
	}
	if comp.Flows[0].BandwidthMBs != 140 || comp.Flows[0].MaxLatencyNS != 400 {
		t.Errorf("compound flow = %+v, want bw 140 lat 400", comp.Flows[0])
	}
	// The compound must be grouped with both constituents.
	if !p.SameGroup(0, 2) || !p.SameGroup(1, 2) || !p.SameGroup(0, 1) {
		t.Error("compound constituents not grouped together")
	}
}

func TestPrepareDoesNotMutateInput(t *testing.T) {
	d := fig4Design()
	origLen := len(d.UseCases)
	origBW := d.UseCases[0].Flows[0].BandwidthMBs
	p, err := Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	p.UseCases[0].Flows[0].BandwidthMBs = 1e9
	if len(d.UseCases) != origLen || d.UseCases[0].Flows[0].BandwidthMBs != origBW {
		t.Error("Prepare mutated the input design")
	}
}

func TestPrepareRejectsInvalidDesign(t *testing.T) {
	d := fig4Design()
	d.UseCases[0].Flows[0].BandwidthMBs = -1
	if _, err := Prepare(d); err == nil {
		t.Error("Prepare accepted invalid design")
	}
}

func TestSwitchingGraphStructure(t *testing.T) {
	sg, err := SwitchingGraph(fig4Design())
	if err != nil {
		t.Fatal(err)
	}
	if sg.N() != 10 {
		t.Fatalf("N = %d, want 10", sg.N())
	}
	// Compound U_123 (8) connected to 0,1,2; U_45 (9) to 3,4; smooth 5-6.
	for _, e := range [][2]int{{8, 0}, {8, 1}, {8, 2}, {9, 3}, {9, 4}, {5, 6}} {
		if !sg.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if sg.HasEdge(0, 3) || sg.HasEdge(7, 5) {
		t.Error("unexpected edges present")
	}
}

// Property: groups partition the use-case set; every use-case appears in
// exactly one group, and GroupOf is consistent with Groups.
func TestGroupsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nUC := 2 + rng.Intn(10)
		ucs := make([]*traffic.UseCase, nUC)
		for i := range ucs {
			ucs[i] = &traffic.UseCase{
				Name:  "u" + string(rune('A'+i)),
				Flows: []traffic.Flow{{Src: 0, Dst: 1, BandwidthMBs: 1 + rng.Float64()*100}},
			}
		}
		d := &traffic.Design{Name: "r", Cores: traffic.MakeCores(4), UseCases: ucs}
		// Random smooth pairs.
		for i := 0; i < rng.Intn(nUC); i++ {
			a, b := rng.Intn(nUC), rng.Intn(nUC)
			d.SmoothPairs = append(d.SmoothPairs, [2]int{a, b})
		}
		// Maybe one parallel set.
		if nUC >= 3 && rng.Intn(2) == 0 {
			d.ParallelSets = [][]int{{0, 1, 2}}
		}
		p, err := Prepare(d)
		if err != nil {
			return false
		}
		seen := make(map[int]int)
		for gi, grp := range p.Groups {
			for _, u := range grp {
				if _, dup := seen[u]; dup {
					return false
				}
				seen[u] = gi
				if p.GroupOf[u] != gi {
					return false
				}
			}
		}
		if len(seen) != len(p.UseCases) {
			return false
		}
		// Smooth pairs must land in the same group.
		for _, pair := range d.SmoothPairs {
			if !p.SameGroup(pair[0], pair[1]) {
				return false
			}
		}
		// Parallel constituents must be grouped with their compound.
		for ci, set := range d.ParallelSets {
			comp := p.NumOriginal + ci
			for _, idx := range set {
				if !p.SameGroup(comp, idx) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestReconfigurableSwitchesCounts(t *testing.T) {
	p, err := Prepare(fig4Design())
	if err != nil {
		t.Fatal(err)
	}
	reconfig, smooth := p.ReconfigurableSwitches()
	// 10 use-cases -> 45 pairs. Same-group pairs: C(4,2)+C(3,2)+C(2,2 aka 1)
	// = 6+3+1 = 10. Reconfigurable = 35.
	if smooth != 10 || reconfig != 35 {
		t.Errorf("reconfig=%d smooth=%d, want 35,10", reconfig, smooth)
	}
}
