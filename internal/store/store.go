// Package store is the result-store layer of the serving stack: a pluggable
// keyed store of mapped-design results, content-addressed by the canonical
// request digest the service computes (see service.Request.Key). Three
// backends implement one Store interface:
//
//   - Memory — the fixed-capacity LRU the service has always had, now
//     behind the interface with behavior unchanged. Volatile: a restart
//     forgets everything.
//   - Disk — a stdlib-only durable content-addressed store: one JSON
//     envelope file per digest under a root directory, written with
//     atomic rename + fsync, tracked by an append-only index, recovered
//     on startup with torn entries quarantined rather than trusted. A
//     Memory tier in front makes reads hot (read-through) and writes
//     safe (write-through).
//   - Sharded — consistent hashing of digests over a static replica
//     roster: every digest has exactly one owning replica, local misses
//     on foreign digests are forwarded to the owner through a Fetcher,
//     and a fleet of daemons serves one logical cache.
//
// The replace-only-with-better invariant of the serve-then-improve stream
// is carried by the interface: UpgradeIfBetter installs an entry only when
// it is absent or not worse than the resident one, and the durable backend
// additionally refuses plain Puts that would overwrite a strictly better
// entry — a mapped design never regresses, even across a restart.
//
// The package is deliberately free of service types: entries carry an
// opaque value plus its scalar cost, and byte-oriented tiers (disk, the
// network) translate through a caller-supplied Codec.
package store

import (
	"context"
	"fmt"
)

// CostEps is the strict-improvement tolerance shared with the search
// engines' incumbent comparison: costs within CostEps are ties, and a tie
// may replace the resident entry (the final result of a streamed run wins
// ties so the stored envelope carries its timings).
const CostEps = 1e-12

// Entry is one stored result: an opaque value scored by the scalar cost
// the engines minimize. Byte-oriented tiers encode Val with their Codec.
type Entry struct {
	// Cost orders entries for the replace-only-with-better invariant;
	// lower is better. Entries fetched from a peer report a zero Cost —
	// the owner, not the reader, arbitrates upgrades.
	Cost float64
	// Val is the stored value. The service stores *service.Response.
	Val any
}

// PutResult reports what a write did.
type PutResult struct {
	// Installed is true when the entry is resident after the call (newly
	// inserted, refreshed, or a tie/better replacement).
	Installed bool
	// Upgraded is true when the write replaced an existing entry with a
	// strictly better one (cost lower by more than CostEps).
	Upgraded bool
	// Evicted counts older entries dropped from a capacity-bounded tier
	// to make room.
	Evicted int
}

// Store is the pluggable result store. Implementations are self-locking:
// every method is safe for concurrent use, and callers must not wrap calls
// in their own store-wide critical sections (the disk and sharded backends
// do I/O inside).
type Store interface {
	// Backend names the implementation ("memory", "disk", "sharded") for
	// stats and metric labels.
	Backend() string
	// Get returns the resident entry for digest. A false ok with a nil
	// error is a clean miss; an error reports a failed read (a quarantined
	// torn entry, an unreachable peer) that callers should treat as a miss
	// and count.
	Get(ctx context.Context, digest string) (Entry, bool, error)
	// Put installs e. Volatile tiers overwrite unconditionally; durable
	// tiers refuse to replace a strictly better resident entry (Installed
	// false) so a restart never resurrects a costlier result.
	Put(ctx context.Context, digest string, e Entry) (PutResult, error)
	// UpgradeIfBetter installs e only when the digest is absent or e is
	// not worse than the resident entry (ties replace); the compare-and-
	// swap is atomic with respect to concurrent writers.
	UpgradeIfBetter(ctx context.Context, digest string, e Entry) (PutResult, error)
	// Evict removes the digest from every tier this store owns and
	// reports whether an entry was removed.
	Evict(digest string) bool
	// Len counts resident entries (the durable count for tiered stores).
	Len() int
	// Close releases the store; reads and writes after Close fail.
	Close() error
}

// Codec translates stored values to and from bytes for byte-oriented
// tiers. Encode/Decode must round-trip: Decode(Encode(v)) is equivalent
// to v for every value the caller stores.
type Codec interface {
	Encode(val any) ([]byte, error)
	Decode(data []byte) (any, error)
}

// Fetcher retrieves a digest's value from a peer replica, used by the
// sharded store to forward local misses to the digest's owner. A false ok
// with nil error is a clean miss at the peer.
type Fetcher interface {
	Fetch(ctx context.Context, peer, digest string) (val any, ok bool, err error)
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = fmt.Errorf("store: closed")

// better reports whether cost a strictly beats b (by more than CostEps).
func better(a, b float64) bool { return a < b-CostEps }

// worse reports whether cost a is strictly worse than b.
func worse(a, b float64) bool { return a > b+CostEps }
