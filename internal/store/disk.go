package store

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Disk is the durable content-addressed backend: one self-verifying JSON
// envelope file per digest under root/objects, an append-only index at
// root/index.log, and a Memory tier in front (read-through on Get,
// write-through on Put). Layout:
//
//	root/
//	  index.log        append-only JSONL: {"digest","cost","size"} rows,
//	                   {"digest","del":true} tombstones; last row per
//	                   digest wins. A torn tail row is ignored on open.
//	  objects/
//	    <digest>.json  {"digest","cost","sum","body"} — sum is the hex
//	                   SHA-256 of body, so every object is verifiable
//	                   without the index.
//	  quarantine/      where startup recovery moves torn or corrupt
//	                   objects instead of serving or deleting them.
//
// Writes are crash-safe: the envelope lands in a temp file, is fsynced,
// renamed into place (atomic on POSIX), and the directory is fsynced
// before the index row is appended and fsynced. Startup recovery trusts
// only entries whose index row matches the object file's size; objects
// missing from the index (a crash between rename and index append) are
// re-verified byte-for-byte and adopted, and everything else is
// quarantined. The store never overwrites a resident entry with a
// strictly costlier result — not even via Put — so the streamed-job
// replace-only-with-better invariant holds across restarts.
type Disk struct {
	mu     sync.Mutex
	root   string
	mem    *Memory
	codec  Codec
	index  *os.File
	meta   map[string]diskMeta // digest → last committed row
	bytes  int64               // total object-file bytes resident on disk
	closed bool

	// Recovered describes what startup recovery found; informational.
	Recovered RecoveryReport
}

type diskMeta struct {
	cost float64
	size int64
}

// RecoveryReport summarizes one Open's startup recovery.
type RecoveryReport struct {
	// Entries survived recovery and are servable.
	Entries int
	// Adopted objects were valid but missing from the index (a crash
	// between rename and index append) and were re-indexed.
	Adopted int
	// Quarantined objects were torn or corrupt and moved aside.
	Quarantined int
	// SkippedIndexRows counts unparseable index rows (torn tail appends,
	// corrupted lines); the rows are ignored, never trusted.
	SkippedIndexRows int
}

// indexRow is one line of index.log.
type indexRow struct {
	Digest string  `json:"digest"`
	Cost   float64 `json:"cost,omitempty"`
	Size   int64   `json:"size,omitempty"`
	Del    bool    `json:"del,omitempty"`
}

// envelope is the on-disk object format.
type envelope struct {
	Digest string          `json:"digest"`
	Cost   float64         `json:"cost"`
	Sum    string          `json:"sum"`
	Body   json.RawMessage `json:"body"`
}

// DiskOptions sizes and equips a Disk store.
type DiskOptions struct {
	// CacheEntries bounds the in-memory read-through tier (default 128).
	CacheEntries int
	// Codec translates stored values to and from the envelope body;
	// required. Encode must produce JSON — the body is embedded verbatim
	// in the envelope object.
	Codec Codec
}

// OpenDisk opens (creating if needed) the durable store rooted at root and
// runs startup recovery.
func OpenDisk(root string, opts DiskOptions) (*Disk, error) {
	if opts.Codec == nil {
		return nil, fmt.Errorf("store: disk store needs a codec")
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 128
	}
	for _, dir := range []string{root, filepath.Join(root, "objects"), filepath.Join(root, "quarantine")} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	d := &Disk{
		root:  root,
		mem:   NewMemory(opts.CacheEntries),
		codec: opts.Codec,
		meta:  make(map[string]diskMeta),
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	idx, err := os.OpenFile(d.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d.index = idx
	return d, nil
}

func (d *Disk) indexPath() string           { return filepath.Join(d.root, "index.log") }
func (d *Disk) objectPath(dg string) string { return filepath.Join(d.root, "objects", dg+".json") }

// recover replays the index, verifies every referenced object by size,
// adopts valid orphans and quarantines everything torn.
func (d *Disk) recover() error {
	data, err := os.ReadFile(d.indexPath())
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	indexed := make(map[string]diskMeta)
	lines := bytes.Split(data, []byte("\n"))
	if n := len(lines); n > 0 && len(lines[n-1]) > 0 {
		// The trailing newline is a row's commit marker: a tail without
		// one is a torn append and is never parsed.
		lines = lines[:n-1]
		d.Recovered.SkippedIndexRows++
	}
	for _, line := range lines {
		if len(line) == 0 {
			continue
		}
		var row indexRow
		if json.Unmarshal(line, &row) != nil || row.Digest == "" || !safeDigest(row.Digest) {
			// A torn tail append or a corrupted row: skip it. If its
			// object file is intact, the orphan scan below re-adopts it.
			d.Recovered.SkippedIndexRows++
			continue
		}
		if row.Del {
			delete(indexed, row.Digest)
			continue
		}
		indexed[row.Digest] = diskMeta{cost: row.Cost, size: row.Size}
	}
	// Trust an indexed entry only when the object file is present at the
	// recorded size; anything else is torn and goes to quarantine.
	adopt := make([]indexRow, 0)
	for digest, m := range indexed {
		fi, err := os.Stat(d.objectPath(digest))
		if err != nil || fi.Size() != m.size {
			d.quarantine(digest)
			d.Recovered.Quarantined++
			continue
		}
		d.meta[digest] = m
		d.bytes += m.size
	}
	// Orphan scan: objects the index does not vouch for are adopted only
	// after full byte verification against their embedded checksum.
	names, err := os.ReadDir(filepath.Join(d.root, "objects"))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, de := range names {
		digest, ok := strings.CutSuffix(de.Name(), ".json")
		if !ok || !safeDigest(digest) {
			continue
		}
		if _, known := d.meta[digest]; known {
			continue
		}
		if _, tombstoned := indexed[digest]; tombstoned {
			continue // already handled above
		}
		env, size, err := d.readObject(digest)
		if err != nil {
			d.quarantine(digest)
			d.Recovered.Quarantined++
			continue
		}
		d.meta[digest] = diskMeta{cost: env.Cost, size: size}
		d.bytes += size
		adopt = append(adopt, indexRow{Digest: digest, Cost: env.Cost, Size: size})
		d.Recovered.Adopted++
	}
	d.Recovered.Entries = len(d.meta)
	// Re-index adoptions so the next open does not need to re-verify them.
	if len(adopt) > 0 {
		idx, err := os.OpenFile(d.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		defer idx.Close()
		for _, row := range adopt {
			if err := appendRow(idx, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// readObject loads and fully verifies one envelope: parseable JSON, the
// digest matching the filename, and the body matching its checksum.
func (d *Disk) readObject(digest string) (*envelope, int64, error) {
	data, err := os.ReadFile(d.objectPath(digest))
	if err != nil {
		return nil, 0, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, 0, fmt.Errorf("store: object %s: %w", digest, err)
	}
	if env.Digest != digest {
		return nil, 0, fmt.Errorf("store: object %s names digest %s", digest, env.Digest)
	}
	if sum := bodySum(env.Body); sum != env.Sum {
		return nil, 0, fmt.Errorf("store: object %s checksum mismatch", digest)
	}
	return &env, int64(len(data)), nil
}

// quarantine moves a torn object aside (never deletes: the bytes may still
// be useful forensically) and forgets it.
func (d *Disk) quarantine(digest string) {
	src := d.objectPath(digest)
	if _, err := os.Stat(src); err == nil {
		os.Rename(src, filepath.Join(d.root, "quarantine", digest+".json")) //nolint:errcheck // best-effort
	}
	if m, ok := d.meta[digest]; ok {
		d.bytes -= m.size
		delete(d.meta, digest)
	}
	d.mem.Evict(digest)
}

// Backend reports "disk".
func (d *Disk) Backend() string { return "disk" }

// Get serves from the memory tier, falling back to a verified disk read
// that promotes the entry back into memory. A torn object discovered at
// read time is quarantined and reported as an error.
func (d *Disk) Get(ctx context.Context, digest string) (Entry, bool, error) {
	if e, ok, err := d.mem.Get(ctx, digest); ok || err != nil {
		return e, ok, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return Entry{}, false, ErrClosed
	}
	if _, ok := d.meta[digest]; !ok {
		return Entry{}, false, nil
	}
	env, _, err := d.readObject(digest)
	if err != nil {
		d.quarantine(digest)
		return Entry{}, false, err
	}
	val, err := d.codec.Decode(env.Body)
	if err != nil {
		d.quarantine(digest)
		return Entry{}, false, fmt.Errorf("store: decode %s: %w", digest, err)
	}
	e := Entry{Cost: env.Cost, Val: val}
	d.mem.Put(ctx, digest, e) //nolint:errcheck // volatile tier promote
	return e, true, nil
}

// Put installs e durably unless the resident entry is strictly better:
// the durable tier refuses downgrades even on the unconditional-put path,
// so a restart can never resurrect a costlier result over a better one.
func (d *Disk) Put(ctx context.Context, digest string, e Entry) (PutResult, error) {
	return d.write(ctx, digest, e, false)
}

// UpgradeIfBetter installs e only when absent or not worse than resident.
func (d *Disk) UpgradeIfBetter(ctx context.Context, digest string, e Entry) (PutResult, error) {
	return d.write(ctx, digest, e, true)
}

func (d *Disk) write(ctx context.Context, digest string, e Entry, upgrade bool) (PutResult, error) {
	if !safeDigest(digest) {
		return PutResult{}, fmt.Errorf("store: unsafe digest %q", digest)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return PutResult{}, ErrClosed
	}
	cur, existed := d.meta[digest]
	if existed && worse(e.Cost, cur.cost) {
		return PutResult{}, nil // never downgrade a durable entry
	}
	body, err := d.codec.Encode(e.Val)
	if err != nil {
		return PutResult{}, fmt.Errorf("store: encode %s: %w", digest, err)
	}
	env := envelope{Digest: digest, Cost: e.Cost, Sum: bodySum(body), Body: body}
	data, err := json.Marshal(env)
	if err != nil {
		return PutResult{}, fmt.Errorf("store: %w", err)
	}
	if err := d.writeObject(digest, data); err != nil {
		return PutResult{}, err
	}
	if err := appendRow(d.index, indexRow{Digest: digest, Cost: e.Cost, Size: int64(len(data))}); err != nil {
		return PutResult{}, err
	}
	if existed {
		d.bytes -= cur.size
	}
	d.meta[digest] = diskMeta{cost: e.Cost, size: int64(len(data))}
	d.bytes += int64(len(data))
	pr, _ := d.mem.Put(ctx, digest, e)
	pr.Upgraded = upgrade && existed && better(e.Cost, cur.cost)
	return pr, nil
}

// writeObject lands data at the object path crash-safely: temp file,
// fsync, atomic rename, directory fsync.
func (d *Disk) writeObject(digest string, data []byte) error {
	dir := filepath.Join(d.root, "objects")
	tmp, err := os.CreateTemp(dir, "."+digest+".tmp-")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.objectPath(digest)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// Evict removes the digest from both tiers and tombstones it in the index.
func (d *Disk) Evict(digest string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false
	}
	m, ok := d.meta[digest]
	if !ok {
		return false
	}
	delete(d.meta, digest)
	d.bytes -= m.size
	d.mem.Evict(digest)
	os.Remove(d.objectPath(digest))                         //nolint:errcheck // tombstone row is authoritative
	appendRow(d.index, indexRow{Digest: digest, Del: true}) //nolint:errcheck // best-effort
	return true
}

// Len counts durable entries.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.meta)
}

// Bytes reports the object-file bytes resident on disk (the
// noc_store_disk_bytes gauge).
func (d *Disk) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}

// Close fsyncs and closes the index; further operations fail.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	d.mem.Close() //nolint:errcheck // always nil
	if err := d.index.Sync(); err != nil {
		d.index.Close()
		return fmt.Errorf("store: %w", err)
	}
	return d.index.Close()
}

// appendRow writes one index row and fsyncs it; the trailing newline is
// the row's commit marker (a torn append is skipped on recovery).
func appendRow(f *os.File, row indexRow) error {
	data, err := json.Marshal(row)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

func bodySum(body []byte) string {
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:])
}

// safeDigest accepts only digests that are safe as file names: the hex
// SHA-256 keys the service computes, and nothing that could traverse
// directories.
func safeDigest(digest string) bool {
	if len(digest) == 0 || len(digest) > 128 {
		return false
	}
	for _, c := range digest {
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}
