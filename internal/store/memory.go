package store

import (
	"container/list"
	"context"
	"sync"
)

// Memory is the fixed-capacity least-recently-used store: the in-memory
// result cache the service has always run on, now behind the Store
// interface. It is self-locking and volatile — Close is a no-op beyond
// rejecting further use.
type Memory struct {
	mu     sync.Mutex
	cap    int
	order  *list.List // front = most recent; values are *memEntry
	items  map[string]*list.Element
	closed bool
}

type memEntry struct {
	digest string
	entry  Entry
}

// NewMemory returns an empty LRU store holding at most capacity entries
// (minimum 1).
func NewMemory(capacity int) *Memory {
	if capacity < 1 {
		capacity = 1
	}
	return &Memory{cap: capacity, order: list.New(), items: make(map[string]*list.Element)}
}

// Backend reports "memory".
func (m *Memory) Backend() string { return "memory" }

// Get returns the entry and refreshes its recency.
func (m *Memory) Get(_ context.Context, digest string) (Entry, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Entry{}, false, ErrClosed
	}
	el, ok := m.items[digest]
	if !ok {
		return Entry{}, false, nil
	}
	m.order.MoveToFront(el)
	return el.Value.(*memEntry).entry, true, nil
}

// Put inserts or unconditionally refreshes an entry, evicting the least
// recently used beyond capacity.
func (m *Memory) Put(_ context.Context, digest string, e Entry) (PutResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return PutResult{}, ErrClosed
	}
	return m.putLocked(digest, e), nil
}

// UpgradeIfBetter installs e unless the resident entry is strictly better.
func (m *Memory) UpgradeIfBetter(_ context.Context, digest string, e Entry) (PutResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return PutResult{}, ErrClosed
	}
	if el, ok := m.items[digest]; ok {
		cur := el.Value.(*memEntry).entry
		if worse(e.Cost, cur.Cost) {
			return PutResult{}, nil // never downgrade
		}
		pr := m.putLocked(digest, e)
		pr.Upgraded = better(e.Cost, cur.Cost)
		return pr, nil
	}
	return m.putLocked(digest, e), nil
}

func (m *Memory) putLocked(digest string, e Entry) PutResult {
	if el, ok := m.items[digest]; ok {
		el.Value.(*memEntry).entry = e
		m.order.MoveToFront(el)
		return PutResult{Installed: true}
	}
	m.items[digest] = m.order.PushFront(&memEntry{digest: digest, entry: e})
	pr := PutResult{Installed: true}
	for m.order.Len() > m.cap {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.items, oldest.Value.(*memEntry).digest)
		pr.Evicted++
	}
	return pr
}

// Evict removes the digest, reporting whether it was resident.
func (m *Memory) Evict(digest string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[digest]
	if !ok {
		return false
	}
	m.order.Remove(el)
	delete(m.items, digest)
	return true
}

// Len counts resident entries.
func (m *Memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// Close marks the store unusable.
func (m *Memory) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
