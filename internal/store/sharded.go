package store

import (
	"context"
	"fmt"
	"sync/atomic"
)

// Sharded spreads digest ownership over a static replica roster with
// consistent hashing so a fleet of daemons serves one logical cache.
// Every digest has exactly one owning replica — a pure function of the
// (sorted) roster that every replica computes identically. Reads first
// try the local tier; a miss on a digest owned by another replica is
// forwarded to the owner through the Fetcher (in the daemon, a noc.Client
// hitting GET /v1/designs/{digest}), and a miss on a self-owned digest is
// a true miss that the local service computes and stores. Writes always
// land in the local tier: the owner accumulates every digest it is asked
// for, while non-owners keep a local working set for the designs they
// computed themselves.
//
// Forwarded hits are returned without being installed locally — the
// owner's copy stays the single authority on entry quality, so the
// replace-only-with-better invariant needs no cross-replica coordination.
type Sharded struct {
	local    Store
	ring     *ring
	self     string
	fetch    Fetcher
	forwards atomic.Int64
	errors   atomic.Int64
}

// NewSharded builds the sharded store. roster is the full fleet — every
// replica's base URL including this one's (self must appear in it) — and
// must be identical, up to order, on every replica. local is the tier
// owned entries live in (a Memory or Disk store).
func NewSharded(local Store, self string, roster []string, fetch Fetcher) (*Sharded, error) {
	if local == nil {
		return nil, fmt.Errorf("store: sharded store needs a local tier")
	}
	if fetch == nil {
		return nil, fmt.Errorf("store: sharded store needs a fetcher")
	}
	r, err := newRing(roster)
	if err != nil {
		return nil, err
	}
	found := false
	for _, p := range roster {
		if p == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("store: self %q is not in the peer roster %v", self, roster)
	}
	return &Sharded{local: local, ring: r, self: self, fetch: fetch}, nil
}

// Backend reports "sharded".
func (s *Sharded) Backend() string { return "sharded" }

// Owner returns the replica owning the digest; every replica started with
// the same roster returns the same answer.
func (s *Sharded) Owner(digest string) string { return s.ring.owner(digest) }

// Local returns the local tier, for metric unwrapping (a disk tier's
// byte gauge stays visible through the shard layer).
func (s *Sharded) Local() Store { return s.local }

// Forwards counts Gets forwarded to owning peers (the
// noc_shard_forwards_total counter).
func (s *Sharded) Forwards() int64 { return s.forwards.Load() }

// Get serves from the local tier, forwarding misses on foreign digests to
// their owner. Forwarded entries report a zero Cost — the owner
// arbitrates upgrades, and readers of a Get use only the value.
func (s *Sharded) Get(ctx context.Context, digest string) (Entry, bool, error) {
	if e, ok, err := s.local.Get(ctx, digest); ok || err != nil {
		return e, ok, err
	}
	owner := s.ring.owner(digest)
	if owner == s.self {
		return Entry{}, false, nil // true miss: this replica computes it
	}
	s.forwards.Add(1)
	val, ok, err := s.fetch.Fetch(ctx, owner, digest)
	if err != nil {
		s.errors.Add(1)
		return Entry{}, false, fmt.Errorf("store: forward %s to %s: %w", digest, owner, err)
	}
	if !ok {
		return Entry{}, false, nil
	}
	return Entry{Val: val}, true, nil
}

// Put stores locally; ownership only routes reads.
func (s *Sharded) Put(ctx context.Context, digest string, e Entry) (PutResult, error) {
	return s.local.Put(ctx, digest, e)
}

// UpgradeIfBetter upgrades the local tier.
func (s *Sharded) UpgradeIfBetter(ctx context.Context, digest string, e Entry) (PutResult, error) {
	return s.local.UpgradeIfBetter(ctx, digest, e)
}

// Evict removes the digest from the local tier.
func (s *Sharded) Evict(digest string) bool { return s.local.Evict(digest) }

// Len counts local entries.
func (s *Sharded) Len() int { return s.local.Len() }

// Close closes the local tier.
func (s *Sharded) Close() error { return s.local.Close() }
