package store

import (
	"context"
	"testing"
)

var ctx = context.Background()

func mustPut(t *testing.T, s Store, digest string, cost float64, val any) PutResult {
	t.Helper()
	pr, err := s.Put(ctx, digest, Entry{Cost: cost, Val: val})
	if err != nil {
		t.Fatalf("Put(%s): %v", digest, err)
	}
	return pr
}

func mustGet(t *testing.T, s Store, digest string) (Entry, bool) {
	t.Helper()
	e, ok, err := s.Get(ctx, digest)
	if err != nil {
		t.Fatalf("Get(%s): %v", digest, err)
	}
	return e, ok
}

func TestMemoryLRUSemantics(t *testing.T) {
	m := NewMemory(2)
	if m.Backend() != "memory" {
		t.Fatalf("backend = %q", m.Backend())
	}
	mustPut(t, m, "a", 1, "va")
	mustPut(t, m, "b", 2, "vb")
	// Touch a so b is the LRU victim.
	if e, ok := mustGet(t, m, "a"); !ok || e.Val != "va" || e.Cost != 1 {
		t.Fatalf("get a = %+v ok=%v", e, ok)
	}
	pr := mustPut(t, m, "c", 3, "vc")
	if pr.Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", pr.Evicted)
	}
	if _, ok := mustGet(t, m, "b"); ok {
		t.Error("b survived eviction; LRU order broken")
	}
	if _, ok := mustGet(t, m, "a"); !ok {
		t.Error("recently-used a was evicted")
	}
	if m.Len() != 2 {
		t.Errorf("len = %d, want 2", m.Len())
	}
	// Refreshing an existing digest never evicts.
	if pr := mustPut(t, m, "a", 0.5, "va2"); pr.Evicted != 0 || !pr.Installed {
		t.Errorf("refresh put = %+v", pr)
	}
	if e, _ := mustGet(t, m, "a"); e.Val != "va2" {
		t.Errorf("refresh did not replace value: %+v", e)
	}
}

func TestMemoryUpgradeIfBetter(t *testing.T) {
	m := NewMemory(8)
	// Absent digest: installs.
	pr, err := m.UpgradeIfBetter(ctx, "d", Entry{Cost: 10, Val: "first"})
	if err != nil || !pr.Installed || pr.Upgraded {
		t.Fatalf("install on absent = %+v, %v", pr, err)
	}
	// Strictly worse: rejected, resident untouched.
	pr, err = m.UpgradeIfBetter(ctx, "d", Entry{Cost: 11, Val: "worse"})
	if err != nil || pr.Installed {
		t.Fatalf("downgrade accepted: %+v, %v", pr, err)
	}
	if e, _ := mustGet(t, m, "d"); e.Val != "first" {
		t.Fatalf("downgrade replaced the resident value: %+v", e)
	}
	// Tie: replaces (the final streamed result wins ties) but is not an
	// upgrade.
	pr, err = m.UpgradeIfBetter(ctx, "d", Entry{Cost: 10, Val: "tie"})
	if err != nil || !pr.Installed || pr.Upgraded {
		t.Fatalf("tie = %+v, %v", pr, err)
	}
	if e, _ := mustGet(t, m, "d"); e.Val != "tie" {
		t.Fatalf("tie did not replace: %+v", e)
	}
	// Strictly better: replaces and counts as an upgrade.
	pr, err = m.UpgradeIfBetter(ctx, "d", Entry{Cost: 9, Val: "better"})
	if err != nil || !pr.Installed || !pr.Upgraded {
		t.Fatalf("upgrade = %+v, %v", pr, err)
	}
	if e, _ := mustGet(t, m, "d"); e.Val != "better" || e.Cost != 9 {
		t.Fatalf("upgrade did not land: %+v", e)
	}
}

func TestMemoryEvictAndClose(t *testing.T) {
	m := NewMemory(4)
	mustPut(t, m, "a", 1, "v")
	if !m.Evict("a") {
		t.Error("evict of resident digest reported false")
	}
	if m.Evict("a") {
		t.Error("evict of absent digest reported true")
	}
	if _, ok := mustGet(t, m, "a"); ok {
		t.Error("evicted digest still resident")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Get(ctx, "a"); err == nil {
		t.Error("Get after Close did not fail")
	}
	if _, err := m.Put(ctx, "a", Entry{}); err == nil {
		t.Error("Put after Close did not fail")
	}
}
