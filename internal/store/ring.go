package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// ringReplicas is the number of virtual nodes per peer on the hash ring.
// 128 points per peer keeps the ownership split within a few percent of
// even for small fleets while the ring stays tiny (a 16-replica fleet is
// 2048 points, one binary search per lookup).
const ringReplicas = 128

// ring is a consistent-hash ring over a static peer roster. Ownership is
// a pure function of the sorted roster, so every replica that was started
// with the same roster — in any order — agrees on which peer owns which
// digest without any coordination.
type ring struct {
	hashes []uint64
	peers  []string // peers[i] owns hashes[i]
}

// newRing builds the ring for the roster. The roster is deduplicated and
// sorted first: ownership must not depend on the order operators happened
// to list the replicas in.
func newRing(roster []string) (*ring, error) {
	uniq := make([]string, 0, len(roster))
	seen := make(map[string]bool, len(roster))
	for _, p := range roster {
		if p == "" {
			return nil, fmt.Errorf("store: empty peer in roster")
		}
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("store: empty roster")
	}
	sort.Strings(uniq)
	r := &ring{
		hashes: make([]uint64, 0, len(uniq)*ringReplicas),
		peers:  make([]string, 0, len(uniq)*ringReplicas),
	}
	points := make(map[uint64]string, len(uniq)*ringReplicas)
	for _, p := range uniq {
		for i := 0; i < ringReplicas; i++ {
			h := hash64(p + "#" + strconv.Itoa(i))
			// On the astronomically unlikely collision the lexically
			// smaller peer wins, deterministically on every replica.
			if cur, ok := points[h]; !ok || p < cur {
				points[h] = p
			}
		}
	}
	for h := range points {
		r.hashes = append(r.hashes, h)
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
	for _, h := range r.hashes {
		r.peers = append(r.peers, points[h])
	}
	return r, nil
}

// owner returns the peer owning the digest: the first ring point at or
// clockwise after the digest's hash.
func (r *ring) owner(digest string) string {
	h := hash64(digest)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap around the ring
	}
	return r.peers[i]
}

// hash64 maps a string onto the ring: the first 8 bytes of its SHA-256.
// A cryptographic hash (rather than FNV) keeps the spread uniform even
// for pathologically similar inputs, and SHA-256 is identical on every
// platform a replica might run on — a requirement, since ring agreement
// is what makes ownership coordination-free.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
