package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// payload is the test value type; the codec below round-trips it as JSON,
// the way the service round-trips Response envelopes.
type payload struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

type payloadCodec struct{}

func (payloadCodec) Encode(val any) ([]byte, error) { return json.Marshal(val) }
func (payloadCodec) Decode(data []byte) (any, error) {
	var p payload
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

func openDisk(t *testing.T, root string) *Disk {
	t.Helper()
	d, err := OpenDisk(root, DiskOptions{Codec: payloadCodec{}, CacheEntries: 4})
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	return d
}

// digestN returns a filename-safe fake digest.
func digestN(i int) string { return fmt.Sprintf("%064x", i) }

func TestDiskPutGetSurvivesReopen(t *testing.T) {
	root := t.TempDir()
	d := openDisk(t, root)
	mustPut(t, d, digestN(1), 5, &payload{Name: "one", N: 1})
	mustPut(t, d, digestN(2), 7, &payload{Name: "two", N: 2})
	if d.Len() != 2 {
		t.Fatalf("len = %d, want 2", d.Len())
	}
	if d.Bytes() <= 0 {
		t.Fatalf("bytes gauge = %d, want > 0", d.Bytes())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openDisk(t, root)
	defer d2.Close()
	if d2.Recovered.Entries != 2 || d2.Recovered.Quarantined != 0 {
		t.Fatalf("recovery = %+v, want 2 clean entries", d2.Recovered)
	}
	e, ok := mustGet(t, d2, digestN(1))
	if !ok {
		t.Fatal("entry 1 lost across reopen")
	}
	p := e.Val.(*payload)
	if p.Name != "one" || p.N != 1 || e.Cost != 5 {
		t.Errorf("entry 1 round-trip = %+v cost=%v", p, e.Cost)
	}
	// Second Get is served from the promoted memory tier: same value.
	if e2, ok := mustGet(t, d2, digestN(1)); !ok || e2.Val.(*payload).Name != "one" {
		t.Error("memory-tier promote lost the entry")
	}
}

func TestDiskNeverDowngradesEvenAcrossRestart(t *testing.T) {
	root := t.TempDir()
	d := openDisk(t, root)
	mustPut(t, d, digestN(1), 5, &payload{Name: "good"})
	// A costlier plain Put on the live store is refused.
	if pr := mustPut(t, d, digestN(1), 9, &payload{Name: "bad"}); pr.Installed {
		t.Fatal("costlier Put overwrote a better durable entry")
	}
	d.Close()

	// The invariant holds across restart: the memory tier is gone but the
	// durable cost survives the reopen.
	d2 := openDisk(t, root)
	defer d2.Close()
	if pr := mustPut(t, d2, digestN(1), 9, &payload{Name: "bad"}); pr.Installed {
		t.Fatal("costlier Put overwrote a better entry after restart")
	}
	pr, err := d2.UpgradeIfBetter(ctx, digestN(1), Entry{Cost: 9, Val: &payload{Name: "bad"}})
	if err != nil || pr.Installed {
		t.Fatalf("costlier UpgradeIfBetter installed after restart: %+v, %v", pr, err)
	}
	if e, ok := mustGet(t, d2, digestN(1)); !ok || e.Val.(*payload).Name != "good" {
		t.Fatalf("resident entry corrupted: %+v", e)
	}
	// A strictly better result still upgrades, and the upgrade is durable.
	pr, err = d2.UpgradeIfBetter(ctx, digestN(1), Entry{Cost: 3, Val: &payload{Name: "best"}})
	if err != nil || !pr.Installed || !pr.Upgraded {
		t.Fatalf("better UpgradeIfBetter = %+v, %v", pr, err)
	}
	d2.Close()
	d3 := openDisk(t, root)
	defer d3.Close()
	if e, ok := mustGet(t, d3, digestN(1)); !ok || e.Cost != 3 || e.Val.(*payload).Name != "best" {
		t.Fatalf("upgrade not durable: %+v ok=%v", e, ok)
	}
}

// TestDiskCrashRecovery is the torn-write satellite: entries are written,
// one object file is truncated mid-body and another entry's index row is
// corrupted, and the reopened store must serve the clean entries,
// quarantine the torn one, and accept a fresh Put of the same digest.
func TestDiskCrashRecovery(t *testing.T) {
	root := t.TempDir()
	d := openDisk(t, root)
	for i := 1; i <= 4; i++ {
		mustPut(t, d, digestN(i), float64(i), &payload{Name: "entry", N: i})
	}
	d.Close()

	// Tear entry 2: truncate its object file mid-way.
	torn := filepath.Join(root, "objects", digestN(2)+".json")
	fi, err := os.Stat(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(torn, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	// Corrupt entry 3's index row (flip its line into garbage of the same
	// length, so only that row is damaged).
	idxPath := filepath.Join(root, "index.log")
	idx, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(idx), "\n")
	found := false
	for i, line := range lines {
		if strings.Contains(line, digestN(3)) {
			lines[i] = strings.Repeat("#", len(line))
			found = true
		}
	}
	if !found {
		t.Fatalf("no index row for %s in:\n%s", digestN(3), idx)
	}
	if err := os.WriteFile(idxPath, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openDisk(t, root)
	defer d2.Close()
	// Clean entries survive; entry 3's valid object is re-adopted despite
	// its corrupt index row; the torn object is quarantined, not served.
	for _, i := range []int{1, 3, 4} {
		e, ok := mustGet(t, d2, digestN(i))
		if !ok {
			t.Fatalf("clean entry %d lost in recovery (report %+v)", i, d2.Recovered)
		}
		if p := e.Val.(*payload); p.N != i {
			t.Errorf("entry %d decoded as %+v", i, p)
		}
	}
	if _, ok := mustGet(t, d2, digestN(2)); ok {
		t.Fatal("torn entry served after recovery")
	}
	if d2.Recovered.Quarantined != 1 || d2.Recovered.Adopted != 1 || d2.Recovered.SkippedIndexRows == 0 {
		t.Errorf("recovery report = %+v, want 1 quarantined, 1 adopted, >0 skipped rows", d2.Recovered)
	}
	if _, err := os.Stat(filepath.Join(root, "quarantine", digestN(2)+".json")); err != nil {
		t.Errorf("torn object not in quarantine: %v", err)
	}
	// A fresh Put of the torn digest succeeds and is durable again.
	if pr := mustPut(t, d2, digestN(2), 2, &payload{Name: "entry", N: 2}); !pr.Installed {
		t.Fatal("re-Put of quarantined digest refused")
	}
	if e, ok := mustGet(t, d2, digestN(2)); !ok || e.Val.(*payload).N != 2 {
		t.Fatalf("re-Put entry unreadable: %+v ok=%v", e, ok)
	}
	d2.Close()
	d3 := openDisk(t, root)
	defer d3.Close()
	if e, ok := mustGet(t, d3, digestN(2)); !ok || e.Val.(*payload).N != 2 {
		t.Fatal("re-Put entry not durable")
	}
}

func TestDiskTornIndexTailIgnored(t *testing.T) {
	root := t.TempDir()
	d := openDisk(t, root)
	mustPut(t, d, digestN(1), 1, &payload{N: 1})
	d.Close()
	// Simulate a crash mid-append: a partial row with no newline commit.
	idx, err := os.OpenFile(filepath.Join(root, "index.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteString(`{"digest":"feedface","cost":`); err != nil {
		t.Fatal(err)
	}
	idx.Close()

	d2 := openDisk(t, root)
	defer d2.Close()
	if d2.Recovered.SkippedIndexRows != 1 || d2.Recovered.Entries != 1 {
		t.Fatalf("recovery = %+v, want 1 entry + 1 skipped torn row", d2.Recovered)
	}
	if _, ok := mustGet(t, d2, digestN(1)); !ok {
		t.Fatal("entry lost to a torn index tail")
	}
}

func TestDiskEvictTombstoneSurvivesReopen(t *testing.T) {
	root := t.TempDir()
	d := openDisk(t, root)
	mustPut(t, d, digestN(1), 1, &payload{N: 1})
	if !d.Evict(digestN(1)) {
		t.Fatal("evict reported false")
	}
	if d.Len() != 0 {
		t.Fatalf("len after evict = %d", d.Len())
	}
	d.Close()
	d2 := openDisk(t, root)
	defer d2.Close()
	if _, ok := mustGet(t, d2, digestN(1)); ok {
		t.Fatal("evicted entry resurrected on reopen")
	}
}

func TestDiskRejectsUnsafeDigests(t *testing.T) {
	d := openDisk(t, t.TempDir())
	defer d.Close()
	for _, bad := range []string{"", "../../etc/passwd", "a/b", "a b", strings.Repeat("x", 200)} {
		if _, err := d.Put(ctx, bad, Entry{Val: &payload{}}); err == nil {
			t.Errorf("Put accepted unsafe digest %q", bad)
		}
	}
}
