package store

import (
	"context"
	"errors"
	"testing"
)

func TestRingOwnershipIsRosterOrderIndependent(t *testing.T) {
	a, err := newRing([]string{"http://r1", "http://r2", "http://r3"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := newRing([]string{"http://r3", "http://r1", "http://r2", "http://r2"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		dg := digestN(i)
		if a.owner(dg) != b.owner(dg) {
			t.Fatalf("digest %s owned by %s vs %s under reordered roster", dg, a.owner(dg), b.owner(dg))
		}
	}
}

func TestRingSpreadsOwnership(t *testing.T) {
	peers := []string{"http://r1", "http://r2", "http://r3"}
	r, err := newRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.owner(digestN(i))]++
	}
	for _, p := range peers {
		// Non-degenerate spread: every replica owns a real share. With 128
		// virtual nodes the split is within a few percent of even; the
		// assertion only guards against a collapsed ring.
		if counts[p] < n/6 {
			t.Errorf("replica %s owns only %d/%d digests", p, counts[p], n)
		}
	}
	if _, err := newRing(nil); err == nil {
		t.Error("empty roster accepted")
	}
	if _, err := newRing([]string{""}); err == nil {
		t.Error("empty peer accepted")
	}
}

// mapFetcher serves fetches from a map of peer → digest → value and
// counts calls.
type mapFetcher struct {
	entries map[string]map[string]any
	calls   int
	err     error
}

func (f *mapFetcher) Fetch(_ context.Context, peer, digest string) (any, bool, error) {
	f.calls++
	if f.err != nil {
		return nil, false, f.err
	}
	v, ok := f.entries[peer][digest]
	return v, ok, nil
}

func TestShardedForwardsForeignMisses(t *testing.T) {
	roster := []string{"http://r1", "http://r2", "http://r3"}
	self := "http://r1"
	fetch := &mapFetcher{entries: make(map[string]map[string]any)}
	s, err := NewSharded(NewMemory(16), self, roster, fetch)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Backend() != "sharded" {
		t.Fatalf("backend = %q", s.Backend())
	}

	// Find one digest this replica owns and one a peer owns.
	var mine, foreign string
	for i := 0; mine == "" || foreign == ""; i++ {
		dg := digestN(i)
		if s.Owner(dg) == self {
			mine = dg
		} else if foreign == "" {
			foreign = dg
		}
	}

	// A miss on a self-owned digest is a true miss: no forward.
	if _, ok := mustGet(t, s, mine); ok || fetch.calls != 0 {
		t.Fatalf("self-owned miss forwarded (calls=%d)", fetch.calls)
	}
	// A local hit is served locally even for foreign digests.
	mustPut(t, s, foreign, 1, "local")
	if e, ok := mustGet(t, s, foreign); !ok || e.Val != "local" || fetch.calls != 0 {
		t.Fatalf("local hit forwarded (calls=%d, %+v)", fetch.calls, e)
	}
	// A miss on a foreign digest is forwarded to exactly its owner.
	s.Evict(foreign)
	owner := s.Owner(foreign)
	fetch.entries[owner] = map[string]any{foreign: "remote"}
	e, ok := mustGet(t, s, foreign)
	if !ok || e.Val != "remote" {
		t.Fatalf("forwarded get = %+v ok=%v", e, ok)
	}
	if fetch.calls != 1 || s.Forwards() != 1 {
		t.Fatalf("forwards = %d, fetch calls = %d, want 1/1", s.Forwards(), fetch.calls)
	}
	// Forwarded hits are not installed locally: the owner stays the
	// authority, and the next read forwards again.
	if _, ok := mustGet(t, s, foreign); !ok {
		t.Fatal("second forwarded get missed")
	}
	if fetch.calls != 2 {
		t.Fatalf("fetch calls = %d, want 2 (no local install)", fetch.calls)
	}
	// A peer miss is a clean miss, not an error.
	delete(fetch.entries[owner], foreign)
	if _, ok, err := s.Get(ctx, foreign); ok || err != nil {
		t.Fatalf("peer miss = ok=%v err=%v", ok, err)
	}
}

func TestShardedForwardErrorSurfaces(t *testing.T) {
	roster := []string{"http://r1", "http://r2"}
	boom := errors.New("peer down")
	fetch := &mapFetcher{err: boom}
	s, err := NewSharded(NewMemory(4), "http://r1", roster, fetch)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var foreign string
	for i := 0; ; i++ {
		if dg := digestN(i); s.Owner(dg) != "http://r1" {
			foreign = dg
			break
		}
	}
	if _, ok, err := s.Get(ctx, foreign); ok || !errors.Is(err, boom) {
		t.Fatalf("forward error = ok=%v err=%v, want wrapped peer error", ok, err)
	}
}

func TestShardedValidatesConstruction(t *testing.T) {
	fetch := &mapFetcher{}
	if _, err := NewSharded(NewMemory(1), "http://r9", []string{"http://r1"}, fetch); err == nil {
		t.Error("self outside roster accepted")
	}
	if _, err := NewSharded(nil, "http://r1", []string{"http://r1"}, fetch); err == nil {
		t.Error("nil local tier accepted")
	}
	if _, err := NewSharded(NewMemory(1), "http://r1", []string{"http://r1"}, nil); err == nil {
		t.Error("nil fetcher accepted")
	}
}
