package bench

import (
	"fmt"

	"nocmap/internal/traffic"
)

// The D1-D4 SoC design stand-ins. Sizes and structure follow the paper:
// D1/D2 are set-top box designs (external-memory bottleneck, 4 and 20
// use-cases), D3/D4 are TV-processor designs (streaming, spread, 8 and 20
// use-cases). D2 and D4 "are based on scaled versions of the designs D1 and
// D3 for supporting more use-cases" — the generators share structure and
// seed families with their small siblings.

// D1 is the 4-use-case set-top box SoC [11]: 26 cores around two memory
// controllers (external memory traffic dominates).
func D1() (*traffic.Design, error) {
	return settopbox("D1-settopbox-4uc", 4, 41)
}

// D2 is the 20-use-case set-top box SoC.
func D2() (*traffic.Design, error) {
	return settopbox("D2-settopbox-20uc", 20, 42)
}

// D3 is the 8-use-case TV-processor SoC: 24 cores in streaming pipelines
// with local memories.
func D3() (*traffic.Design, error) {
	return tvprocessor("D3-tvprocessor-8uc", 8, 43)
}

// D4 is the 20-use-case TV-processor SoC.
func D4() (*traffic.Design, error) {
	return tvprocessor("D4-tvprocessor-20uc", 20, 44)
}

// ByName returns one of D1-D4 or a synthetic family member.
func ByName(name string) (*traffic.Design, error) {
	switch name {
	case "D1":
		return D1()
	case "D2":
		return D2()
	case "D3":
		return D3()
	case "D4":
		return D4()
	default:
		return nil, fmt.Errorf("bench: unknown design %q (have D1-D4)", name)
	}
}

// settopbox generates a bottleneck-structured SoC: 26 cores, cores 0-1 are
// the memory/peripheral controllers carrying most traffic.
func settopbox(name string, useCases int, seed int64) (*traffic.Design, error) {
	d, err := Synthetic(SynthSpec{
		Name:        name,
		Class:       Bottleneck,
		Cores:       26,
		UseCases:    useCases,
		MinPairs:    50,
		MaxPairs:    90,
		OutDegree:   5,
		HDPerCore:   1,
		Hotspots:    2,
		HotCoverage: 0.7,
		HotActive:   0.65,
		Active:      0.45,
		Deviation:   0.25,
		BurstProb:   0.08,
		LightShare:  0.25,
		Seed:        seed,
	})
	if err != nil {
		return nil, err
	}
	nameCores(d, []string{"extmem", "periph"})
	return d, nil
}

// tvprocessor generates a spread-structured SoC: 24 cores with streaming
// pipelines and distributed local memories.
func tvprocessor(name string, useCases int, seed int64) (*traffic.Design, error) {
	d, err := Synthetic(SynthSpec{
		Name:       name,
		Class:      Spread,
		Cores:      24,
		UseCases:   useCases,
		MinPairs:   60,
		MaxPairs:   110,
		OutDegree:  10,
		HDPerCore:  2,
		Active:     0.28,
		Deviation:  0.22,
		BurstProb:  0.05,
		LightShare: 0.25,
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	nameCores(d, nil)
	return d, nil
}

// nameCores gives the first cores domain names and the rest generic ones.
func nameCores(d *traffic.Design, special []string) {
	for i := range d.Cores {
		if i < len(special) {
			d.Cores[i].Name = special[i]
		} else {
			d.Cores[i].Name = fmt.Sprintf("ip%02d", i)
		}
	}
}
