package harness

import (
	"encoding/json"
	"fmt"
	"os"
)

// The machine-readable benchmark-record format of the BENCH_*.json files
// committed at the repository root. Each record snapshots one measurement
// run: the named Go benchmarks with their reported metrics, the anneal-move
// throughput table, and (since the speculative evaluator) the speculative
// annealing measurements. CompareFiles diffs a fresh run against a
// committed record, which is what the CI regression gate executes.

// File is one benchmark record.
type File struct {
	Note   string `json:"note,omitempty"`
	Date   string `json:"date,omitempty"`
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`

	Benchmarks []Benchmark `json:"benchmarks,omitempty"`
	AnnealMove *AnnealMove `json:"anneal_move,omitempty"`
	Spec       *SpecRuns   `json:"speculation,omitempty"`
}

// Benchmark is one named benchmark result. Metrics holds the benchmark's
// custom b.ReportMetric values (switches, max_util_pct, norm_D1, ...); in
// the JSON form they are flattened into the benchmark object, matching the
// historical BENCH_*.json layout.
type Benchmark struct {
	Name       string
	Iterations int
	NsPerOp    float64
	Metrics    map[string]float64
}

// benchmarkKnown enumerates the fixed keys of the flattened benchmark
// object; everything else is a metric.
var benchmarkKnown = map[string]bool{"name": true, "iterations": true, "ns_per_op": true}

// MarshalJSON flattens Metrics into the object.
func (b Benchmark) MarshalJSON() ([]byte, error) {
	m := map[string]any{
		"name":       b.Name,
		"iterations": b.Iterations,
		"ns_per_op":  b.NsPerOp,
	}
	for k, v := range b.Metrics {
		if benchmarkKnown[k] {
			return nil, fmt.Errorf("harness: metric name %q collides with a fixed benchmark field", k)
		}
		m[k] = v
	}
	return json.Marshal(m)
}

// UnmarshalJSON splits the flattened object back into fixed fields and
// metrics.
func (b *Benchmark) UnmarshalJSON(data []byte) error {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*b = Benchmark{Metrics: map[string]float64{}}
	for k, raw := range m {
		switch k {
		case "name":
			if err := json.Unmarshal(raw, &b.Name); err != nil {
				return err
			}
		case "iterations":
			if err := json.Unmarshal(raw, &b.Iterations); err != nil {
				return err
			}
		case "ns_per_op":
			if err := json.Unmarshal(raw, &b.NsPerOp); err != nil {
				return err
			}
		default:
			var v float64
			if err := json.Unmarshal(raw, &v); err != nil {
				return fmt.Errorf("harness: benchmark %s metric %s: %w", b.Name, k, err)
			}
			b.Metrics[k] = v
		}
	}
	return nil
}

// AnnealMove is the anneal-move throughput table: the per-move cost of
// scoring one candidate placement through the full re-configuration path
// versus the incremental session, over the same seeded candidate sequence.
type AnnealMove struct {
	Note  string          `json:"note,omitempty"`
	Moves int             `json:"moves"`
	Seed  int64           `json:"seed"`
	Rows  []AnnealMoveRow `json:"rows"`
}

// AnnealMoveRow is one design's measurement.
type AnnealMoveRow struct {
	Design  string  `json:"design"`
	NsFull  int64   `json:"ns_full"`
	NsDelta int64   `json:"ns_delta"`
	Speedup float64 `json:"speedup"`
}

// SpecRuns records speculative annealing engine runs: wall-clock and
// speculation counters per design at a fixed width K, next to the serial
// run of the same seed and iteration budget.
type SpecRuns struct {
	Note  string    `json:"note,omitempty"`
	K     int       `json:"k"`
	Iters int       `json:"iters"`
	Seed  int64     `json:"seed"`
	Rows  []SpecRow `json:"rows"`
}

// SpecRow is one design's serial-versus-speculative engine comparison. The
// quality metrics (switches, max utilization) let the regression gate
// verify the speculative run still lands on a feasible result of the
// expected class.
type SpecRow struct {
	Design       string  `json:"design"`
	NsSerial     int64   `json:"ns_serial"`
	NsSpec       int64   `json:"ns_spec"`
	CostSerial   float64 `json:"cost_serial"`
	CostSpec     float64 `json:"cost_spec"`
	Switches     int     `json:"switches"`
	MaxUtilPct   float64 `json:"max_util_pct"`
	Speculated   int64   `json:"speculated"`
	SpecAccepted int64   `json:"spec_accepted"`
}

// ReadFile loads a benchmark record.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("harness: parse %s: %w", path, err)
	}
	return &f, nil
}

// WriteFile writes a benchmark record with stable formatting (object keys
// marshal in sorted order, so records diff cleanly across runs).
func (f *File) WriteFile(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Benchmark returns the named benchmark entry, or nil.
func (f *File) Benchmark(name string) *Benchmark {
	for i := range f.Benchmarks {
		if f.Benchmarks[i].Name == name {
			return &f.Benchmarks[i]
		}
	}
	return nil
}
