package harness

import (
	"fmt"
	"math"
)

// Compare diffs a fresh benchmark record against a committed baseline. It
// is the CI regression gate:
//
//   - anneal-move rows: ns_delta (the annealer's hot path) may not regress
//     by more than threshold (e.g. 0.25 = 25%) over the baseline row of the
//     same design. ns_full is informational — the legacy path is not what
//     production runs.
//   - benchmark entries present in both records: every quality metric
//     (switches, max_util_pct, norm_*, ...) must match the baseline
//     exactly; these are deterministic engine results, so any drift is a
//     behaviour change, not noise. ns_per_op of single-iteration benchmark
//     entries is ignored — one sample is all noise.
//   - speculation rows present in both records: the speculative run must
//     still land on the baseline's switch count (fabric size is the
//     paper's headline metric); wall-clock and hit rate are informational.
//
// Rows or entries present on only one side are reported but never fail the
// gate, so workloads of different breadth (quick vs full) stay comparable.
type Comparison struct {
	// Lines is the human-readable per-row report.
	Lines []string
	// Failures lists every gate violation; empty means the gate passes.
	Failures []string
}

// OK reports whether the gate passed.
func (c *Comparison) OK() bool { return len(c.Failures) == 0 }

func (c *Comparison) logf(format string, args ...any) {
	c.Lines = append(c.Lines, fmt.Sprintf(format, args...))
}

func (c *Comparison) failf(format string, args ...any) {
	c.Failures = append(c.Failures, fmt.Sprintf(format, args...))
}

// Compare runs the regression gate with the given relative ns threshold.
func Compare(old, fresh *File, threshold float64) *Comparison {
	c := &Comparison{}
	compareAnnealMove(c, old, fresh, threshold)
	compareBenchmarks(c, old, fresh)
	compareSpec(c, old, fresh)
	return c
}

func compareAnnealMove(c *Comparison, old, fresh *File, threshold float64) {
	if old.AnnealMove == nil || fresh.AnnealMove == nil {
		c.logf("anneal-move: table missing on one side, skipping")
		return
	}
	baseline := map[string]AnnealMoveRow{}
	for _, r := range old.AnnealMove.Rows {
		baseline[r.Design] = r
	}
	for _, r := range fresh.AnnealMove.Rows {
		b, ok := baseline[r.Design]
		if !ok {
			c.logf("anneal-move %s: no baseline row, skipping", r.Design)
			continue
		}
		ratio := math.Inf(1)
		if b.NsDelta > 0 {
			ratio = float64(r.NsDelta) / float64(b.NsDelta)
		}
		c.logf("anneal-move %s: delta %d -> %d ns/move (%+.1f%%), full %d -> %d",
			r.Design, b.NsDelta, r.NsDelta, (ratio-1)*100, b.NsFull, r.NsFull)
		if ratio > 1+threshold {
			c.failf("anneal-move %s: hot path regressed %.1f%% (%d -> %d ns/move, threshold %.0f%%)",
				r.Design, (ratio-1)*100, b.NsDelta, r.NsDelta, threshold*100)
		}
	}
}

func compareBenchmarks(c *Comparison, old, fresh *File) {
	for _, fb := range fresh.Benchmarks {
		ob := old.Benchmark(fb.Name)
		if ob == nil {
			c.logf("%s: no baseline entry, skipping", fb.Name)
			continue
		}
		for k, want := range ob.Metrics {
			got, ok := fb.Metrics[k]
			switch {
			case !ok:
				c.failf("%s: metric %s missing from fresh run (baseline %g)", fb.Name, k, want)
			case got != want:
				c.failf("%s: metric %s changed: %g -> %g (engine results must be identical)",
					fb.Name, k, want, got)
			}
		}
		c.logf("%s: %d quality metrics checked, ns/op %s",
			fb.Name, len(ob.Metrics), nsNote(ob, &fb))
	}
}

// nsNote renders the informational ns/op movement of a benchmark entry.
func nsNote(old, fresh *Benchmark) string {
	if old.NsPerOp <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f -> %.0f (%+.1f%%, informational)",
		old.NsPerOp, fresh.NsPerOp, (fresh.NsPerOp/old.NsPerOp-1)*100)
}

func compareSpec(c *Comparison, old, fresh *File) {
	if old.Spec == nil || fresh.Spec == nil {
		return
	}
	baseline := map[string]SpecRow{}
	for _, r := range old.Spec.Rows {
		baseline[r.Design] = r
	}
	for _, r := range fresh.Spec.Rows {
		b, ok := baseline[r.Design]
		if !ok {
			c.logf("spec %s: no baseline row, skipping", r.Design)
			continue
		}
		c.logf("spec %s: k=%d %.1f ms (serial %.1f ms), cost %.1f, hit rate %d/%d",
			r.Design, fresh.Spec.K, float64(r.NsSpec)/1e6, float64(r.NsSerial)/1e6,
			r.CostSpec, r.SpecAccepted, r.Speculated)
		if r.Switches != b.Switches {
			c.failf("spec %s: switch count changed: %d -> %d (fabric size must hold)",
				r.Design, b.Switches, r.Switches)
		}
	}
}
