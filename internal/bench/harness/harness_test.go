package harness

import (
	"path/filepath"
	"reflect"
	"testing"
)

// record builds a baseline File for the compare tests.
func record() *File {
	return &File{
		Note: "test",
		Benchmarks: []Benchmark{
			{Name: "BenchmarkEngineGreedyD1", Iterations: 1, NsPerOp: 600000,
				Metrics: map[string]float64{"switches": 4, "max_util_pct": 53.125}},
		},
		AnnealMove: &AnnealMove{
			Moves: 200, Seed: 1,
			Rows: []AnnealMoveRow{
				{Design: "D1-settopbox-4uc", NsFull: 600000, NsDelta: 30000, Speedup: 20},
			},
		},
		Spec: &SpecRuns{
			K: 4, Iters: 120, Seed: 1,
			Rows: []SpecRow{
				{Design: "D1-settopbox-4uc", NsSerial: 3_000_000, NsSpec: 6_000_000,
					CostSerial: 4006, CostSpec: 4005.7, Switches: 4, MaxUtilPct: 53.125,
					Speculated: 120, SpecAccepted: 30},
			},
		},
	}
}

func TestFileRoundTrip(t *testing.T) {
	f := record()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip diverged:\nwrote %+v\nread  %+v", f, got)
	}
}

// TestReadCommittedRecord parses the repository's committed PR 4 record —
// the flattened metric keys of the historical format must keep loading.
func TestReadCommittedRecord(t *testing.T) {
	f, err := ReadFile(filepath.Join("..", "..", "..", "BENCH_pr4.json"))
	if err != nil {
		t.Fatal(err)
	}
	b := f.Benchmark("BenchmarkEngineAnnealD1")
	if b == nil {
		t.Fatal("BenchmarkEngineAnnealD1 missing from BENCH_pr4.json")
	}
	if b.Metrics["switches"] != 4 {
		t.Fatalf("switches metric = %v, want 4", b.Metrics["switches"])
	}
	if f.AnnealMove == nil || len(f.AnnealMove.Rows) != 4 {
		t.Fatalf("anneal_move table incomplete: %+v", f.AnnealMove)
	}
}

func TestCompareGate(t *testing.T) {
	base := record()

	// Identical records pass.
	if c := Compare(base, record(), 0.25); !c.OK() {
		t.Fatalf("identical records fail the gate: %v", c.Failures)
	}

	// A hot-path regression within the threshold passes.
	fresh := record()
	fresh.AnnealMove.Rows[0].NsDelta = 36000 // +20%
	if c := Compare(base, fresh, 0.25); !c.OK() {
		t.Fatalf("+20%% delta fails a 25%% gate: %v", c.Failures)
	}

	// Beyond the threshold fails.
	fresh = record()
	fresh.AnnealMove.Rows[0].NsDelta = 40000 // +33%
	if c := Compare(base, fresh, 0.25); c.OK() {
		t.Fatal("+33% delta passed a 25% gate")
	}

	// A slower legacy path alone never fails the gate.
	fresh = record()
	fresh.AnnealMove.Rows[0].NsFull = 10 * base.AnnealMove.Rows[0].NsFull
	if c := Compare(base, fresh, 0.25); !c.OK() {
		t.Fatalf("ns_full regression failed the gate: %v", c.Failures)
	}

	// Engine-quality drift fails regardless of timing.
	fresh = record()
	fresh.Benchmarks[0].Metrics = map[string]float64{"switches": 5, "max_util_pct": 53.125}
	if c := Compare(base, fresh, 0.25); c.OK() {
		t.Fatal("switch-count drift passed the gate")
	}

	// A missing metric fails.
	fresh = record()
	fresh.Benchmarks[0].Metrics = map[string]float64{"switches": 4}
	if c := Compare(base, fresh, 0.25); c.OK() {
		t.Fatal("missing metric passed the gate")
	}

	// A speculative run landing on a different fabric size fails.
	fresh = record()
	fresh.Spec.Rows[0].Switches = 6
	if c := Compare(base, fresh, 0.25); c.OK() {
		t.Fatal("speculative switch drift passed the gate")
	}

	// Rows and entries unknown to the baseline are reported, not failed.
	fresh = record()
	fresh.AnnealMove.Rows = append(fresh.AnnealMove.Rows,
		AnnealMoveRow{Design: "D9-new", NsFull: 1, NsDelta: 1})
	fresh.Benchmarks = append(fresh.Benchmarks,
		Benchmark{Name: "BenchmarkNew", Iterations: 1})
	if c := Compare(base, fresh, 0.25); !c.OK() {
		t.Fatalf("new rows failed the gate: %v", c.Failures)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	for _, name := range WorkloadNames() {
		w, err := WorkloadByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(w.Designs) == 0 || w.Moves <= 0 {
			t.Fatalf("workload %s underspecified: %+v", name, w)
		}
	}
	if _, err := WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload resolved")
	}
}

// TestBenchmarkMetricCollision: a metric named like a fixed field must be
// rejected at write time, not silently swallowed at read time.
func TestBenchmarkMetricCollision(t *testing.T) {
	b := Benchmark{Name: "x", Metrics: map[string]float64{"ns_per_op": 1}}
	if _, err := b.MarshalJSON(); err == nil {
		t.Fatal("metric shadowing ns_per_op marshalled")
	}
}
