package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/search"
	"nocmap/internal/usecase"

	// The harness measures every registered engine, so it registers the
	// population and exact subpackages itself rather than relying on a
	// pkg/noc import it does not otherwise need.
	_ "nocmap/internal/search/exact"
	_ "nocmap/internal/search/population"
)

// The measurement harness behind `nocbench -out/-compare`: it produces File
// records from named workload configurations so a fresh run can be diffed
// against a committed BENCH_*.json. It measures the three quantities the
// regression gate cares about: anneal-move throughput (the incremental
// Session path versus the legacy full re-configuration), engine wall-clock
// with result-quality metrics, and the speculative annealer versus the
// serial chain.
//
// The harness measures directly against internal/core and internal/search
// rather than reusing internal/experiments: experiments imports this
// package for its designs, so the dependency can only point this way.

// Workload is one named measurement configuration.
type Workload struct {
	Name string
	// Designs lists the SoC stand-ins to measure, by bench.ByName name.
	Designs []string
	// Moves is the number of candidate swaps each anneal-move path scores.
	Moves int
	// Seed seeds the candidate generator and the engines.
	Seed int64
	// Iters and SpecK configure the serial-versus-speculative engine
	// comparison (annealing moves per run, speculation width).
	Iters int
	SpecK int
	// Engines toggles the D1 engine wall-clock measurements.
	Engines bool
}

// workloadTable is the registry of named workloads. "quick" is sized for a
// CI gate (a couple of minutes on one core); "full" covers all four designs
// for the committed record.
var workloadTable = []Workload{
	{Name: "quick", Designs: []string{"D1", "D2"}, Moves: 200, Seed: 1, Iters: 120, SpecK: 4, Engines: true},
	{Name: "full", Designs: []string{"D1", "D2", "D3", "D4"}, Moves: 200, Seed: 1, Iters: 120, SpecK: 4, Engines: true},
}

// WorkloadNames lists the registered workloads in display order.
func WorkloadNames() []string {
	out := make([]string, len(workloadTable))
	for i, w := range workloadTable {
		out[i] = w.Name
	}
	return out
}

// WorkloadByName resolves a workload configuration.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range workloadTable {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("harness: unknown workload %q (have %s)", name, strings.Join(WorkloadNames(), ", "))
}

// Run executes the workload and returns its record. logf, when non-nil,
// receives one progress line per measurement.
func Run(ctx context.Context, w Workload, logf func(format string, args ...any)) (*File, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	f := &File{
		Note: fmt.Sprintf("nocbench workload %q: %d anneal-move candidates, engine runs, speculative anneal at K=%d (seed %d).",
			w.Name, w.Moves, w.SpecK, w.Seed),
		Date:   time.Now().Format("2006-01-02"),
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		CPU:    cpuModel(),
	}

	am, err := runAnnealMove(ctx, w, logf)
	if err != nil {
		return nil, err
	}
	f.AnnealMove = am

	if w.Engines {
		bs, err := runEngines(ctx, w, logf)
		if err != nil {
			return nil, err
		}
		f.Benchmarks = bs
	}

	if w.SpecK > 1 {
		sp, err := runSpec(ctx, w, logf)
		if err != nil {
			return nil, err
		}
		f.Spec = sp
	}
	return f, nil
}

// prepDesign loads a design and its greedy base mapping.
func prepDesign(name string, p core.Params) (*usecase.Prepared, int, *core.Result, error) {
	d, err := bench.ByName(name)
	if err != nil {
		return nil, 0, nil, err
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		return nil, 0, nil, err
	}
	base, err := core.Map(prep, d.NumCores(), p)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("harness: %s: greedy base: %w", name, err)
	}
	return prep, d.NumCores(), base, nil
}

// swapMove is one candidate: cores X and Y exchange seats.
type swapMove struct{ X, Y int }

// moveSequence pre-generates a deterministic candidate sequence over the
// attached cores (same draw structure as the experiments perf figure, so
// records stay comparable across releases). Returns nil when no cross-NI
// swap exists.
func moveSequence(seed int64, attached, coreNI []int, moves int) []swapMove {
	possible := false
	for _, c := range attached {
		if coreNI[c] != coreNI[attached[0]] {
			possible = true
			break
		}
	}
	if !possible || moves <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]swapMove, 0, moves)
	for len(out) < moves {
		x := attached[rng.Intn(len(attached))]
		y := attached[rng.Intn(len(attached))]
		if x == y || coreNI[x] == coreNI[y] {
			continue
		}
		out = append(out, swapMove{x, y})
	}
	return out
}

// runAnnealMove measures per-move scoring cost on each design: the legacy
// full re-configuration (core.EvaluateFixed) versus the incremental Session
// (TryMove/Undo), both over the identical seeded candidate sequence from
// the greedy placement.
func runAnnealMove(ctx context.Context, w Workload, logf func(string, ...any)) (*AnnealMove, error) {
	p := core.DefaultParams()
	am := &AnnealMove{
		Note:  fmt.Sprintf("identical seeded %d-move candidate sequence from the greedy placement, scored by legacy core.EvaluateFixed (full) vs core.Session TryMove/Undo (delta). ns_full/ns_delta are per move.", w.Moves),
		Moves: w.Moves,
		Seed:  w.Seed,
	}
	for _, name := range w.Designs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		prep, numCores, base, err := prepDesign(name, p)
		if err != nil {
			return nil, err
		}
		m := base.Mapping
		var attached []int
		for c, s := range m.CoreSwitch {
			if s >= 0 {
				attached = append(attached, c)
			}
		}
		seq := moveSequence(w.Seed, attached, m.CoreNI, w.Moves)
		if len(seq) == 0 {
			continue // no swap neighbours on this placement
		}
		cs := make([]int, len(m.CoreSwitch))
		cn := make([]int, len(m.CoreNI))
		place := func(mv swapMove) {
			copy(cs, m.CoreSwitch)
			copy(cn, m.CoreNI)
			cs[mv.X], cs[mv.Y] = cs[mv.Y], cs[mv.X]
			cn[mv.X], cn[mv.Y] = cn[mv.Y], cn[mv.X]
		}

		full := bestOf(3, func() {
			for _, mv := range seq {
				place(mv)
				_, _ = core.EvaluateFixed(prep, numCores, m.Topology, cs, cn, p)
			}
		})

		ev, err := core.NewEvaluator(prep, numCores, m.Topology, p)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: evaluator: %w", m.Topology, err)
		}
		sess, err := ev.SessionFrom(base)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: session: %w", name, err)
		}
		deltaPass := func() {
			for _, mv := range seq {
				place(mv)
				if _, err := sess.TryMove(cs, cn, mv.X, mv.Y); err == nil {
					sess.Undo()
				}
			}
		}
		// One untimed pass lets every per-record buffer reach its steady-state
		// size, so the timed passes measure the allocation-free regime the
		// annealer actually runs in.
		deltaPass()
		delta := bestOf(3, deltaPass)

		row := AnnealMoveRow{
			Design:  designLabel(name),
			NsFull:  full.Nanoseconds() / int64(len(seq)),
			NsDelta: delta.Nanoseconds() / int64(len(seq)),
		}
		if row.NsDelta > 0 {
			row.Speedup = math.Round(float64(row.NsFull)/float64(row.NsDelta)*100) / 100
		}
		am.Rows = append(am.Rows, row)
		logf("anneal-move %s: full %d ns/move, delta %d ns/move (%.2fx)",
			row.Design, row.NsFull, row.NsDelta, row.Speedup)
	}
	return am, nil
}

// bestOf times n runs of pass and returns the fastest — the estimator least
// disturbed by scheduler noise on a shared CI host, which is what the
// regression gate's threshold assumes.
func bestOf(n int, pass func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		pass()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// designLabel resolves a short design name to its full label (the name the
// committed records use), falling back to the short name.
func designLabel(name string) string {
	d, err := bench.ByName(name)
	if err != nil {
		return name
	}
	return d.Name
}

// runEngines measures one complete Search per registered engine on design
// D1, reporting wall-clock plus the result-quality metrics the regression
// gate matches exactly (including the run's switch-count lower bound). The
// roster comes from the search registry, so a newly registered engine joins
// the record without touching the harness; the pre-registry engines keep
// their historical benchmark names so records from `go test -bench` and
// from the harness diff against each other.
func runEngines(ctx context.Context, w Workload, logf func(string, ...any)) ([]Benchmark, error) {
	p := core.DefaultParams()
	prep, numCores, _, err := prepDesign("D1", p)
	if err != nil {
		return nil, err
	}
	opts := search.DefaultOptions()
	opts.Seed = w.Seed
	// The historical record names of the pre-registry engines.
	benchName := map[string]string{
		"greedy":    "BenchmarkEngineGreedyD1",
		"anneal":    "BenchmarkEngineAnnealD1",
		"portfolio": "BenchmarkEnginePortfolioD1",
	}
	var out []Benchmark
	for _, name := range search.Names() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		eng, err := search.New(name)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res, err := eng.Search(ctx, prep, numCores, p, opts)
		if err != nil {
			return nil, fmt.Errorf("harness: engine %s on D1: %w", name, err)
		}
		ns := time.Since(t0).Nanoseconds()
		entry := benchName[name]
		if entry == "" {
			entry = "BenchmarkEngine" + strings.ToUpper(name[:1]) + name[1:] + "D1"
		}
		lb, _ := search.BoundOf(res)
		b := Benchmark{
			Name:       entry,
			Iterations: 1,
			NsPerOp:    float64(ns),
			Metrics: map[string]float64{
				"switches":     float64(res.Mapping.SwitchCount()),
				"max_util_pct": res.Stats.MaxLinkUtil * 100,
				"lower_bound":  float64(lb),
			},
		}
		out = append(out, b)
		logf("engine %s D1: %.1f ms, %d switches, %.2f%% max util, bound %d",
			name, float64(ns)/1e6, res.Mapping.SwitchCount(), res.Stats.MaxLinkUtil*100, lb)
	}
	return out, nil
}

// runSpec compares the serial annealing chain against the speculative one
// (width w.SpecK) on each design: same seed, same candidate budget. The
// speculation counters come off the annealer's StageDone progress event.
func runSpec(ctx context.Context, w Workload, logf func(string, ...any)) (*SpecRuns, error) {
	p := core.DefaultParams()
	sp := &SpecRuns{
		Note:  "serial anneal vs speculative anneal at width k: same seed and candidate budget; cost is the configured weight score (lower is better). speculated/spec_accepted are the batch counters (ratio = hit rate).",
		K:     w.SpecK,
		Iters: w.Iters,
		Seed:  w.Seed,
	}
	for _, name := range w.Designs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		prep, numCores, _, err := prepDesign(name, p)
		if err != nil {
			return nil, err
		}
		run := func(specK int) (*core.Result, search.Counts, time.Duration, error) {
			opts := search.DefaultOptions()
			opts.Seed = w.Seed
			opts.Iters = w.Iters
			opts.SpecK = specK
			var counts search.Counts
			opts.Progress = func(e search.Event) {
				if e.Stage == search.StageDone {
					counts = e.Counts
				}
			}
			t0 := time.Now()
			res, err := (search.Anneal{}).Search(ctx, prep, numCores, p, opts)
			return res, counts, time.Since(t0), err
		}
		serRes, _, serDur, err := run(0)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: serial anneal: %w", name, err)
		}
		specRes, specCounts, specDur, err := run(w.SpecK)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: speculative anneal: %w", name, err)
		}
		weights := search.DefaultCostWeights()
		row := SpecRow{
			Design:       designLabel(name),
			NsSerial:     serDur.Nanoseconds(),
			NsSpec:       specDur.Nanoseconds(),
			CostSerial:   weights.Of(serRes),
			CostSpec:     weights.Of(specRes),
			Switches:     specRes.Mapping.SwitchCount(),
			MaxUtilPct:   specRes.Stats.MaxLinkUtil * 100,
			Speculated:   specCounts.Speculated,
			SpecAccepted: specCounts.SpecAccepted,
		}
		sp.Rows = append(sp.Rows, row)
		logf("spec %s: serial %.1f ms cost %.1f, k=%d %.1f ms cost %.1f (hit rate %d/%d)",
			row.Design, float64(row.NsSerial)/1e6, row.CostSerial,
			w.SpecK, float64(row.NsSpec)/1e6, row.CostSpec,
			row.SpecAccepted, row.Speculated)
	}
	return sp, nil
}

// cpuModel best-effort reads the host CPU model for the record header.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}
