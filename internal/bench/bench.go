// Package bench provides the experimental workloads of Section 6.1: four
// SoC-design stand-ins (D1-D4) and the two synthetic benchmark families —
// Spread (Sp) and Bottleneck (Bot).
//
// The real D1-D4 traffic specifications (Philips Viper2 set-top box and TV
// processor) are proprietary; the paper discloses only their structural
// properties, which these generators reproduce:
//
//   - The set-top box designs (D1 with 4 use-cases, D2 with 20) use an
//     external memory: "the amount of data communicated to the memory is
//     very large when compared to the rest of the design" — bottleneck
//     traffic through designated memory-controller cores.
//   - The TV processor designs (D3 with 8 use-cases, D4 with 20) use "a
//     streaming architecture with local memories on the chip, thereby
//     distributing the communication load" — spread traffic.
//   - "Each use-case has a large number of (50 to 150) communicating pairs."
//   - Traffic parameters fall into 3-4 clusters (HD video at hundreds of
//     MB/s, SD video at tens, audio low-bandwidth, control low-bandwidth but
//     latency-critical), "with small deviations in the values within each
//     cluster".
//
// The generators model a stream's type as a property of the core pair: a
// video-input port sends HD frames in every use-case that activates it. Each
// design therefore has a fixed set of potential pairs, each with a fixed
// cluster and base rate; a use-case activates a subset of the pairs and
// draws its rate with a small in-cluster deviation. This matches the quote
// above and produces the paper's scaling behaviour: as use-cases accumulate,
// the worst-case union covers ever more pairs at ever higher per-pair
// maxima, while any single use-case stays cheap.
//
// The synthetic Sp/Bot benchmarks fix 20 cores with 60-100 connections per
// use-case and vary the use-case count, exactly as in Section 6.2.
//
// All generation is deterministic given the seed.
package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"nocmap/internal/traffic"
)

// Class selects the synthetic communication structure.
type Class int

const (
	// Spread traffic: every core communicates with a few fixed peers.
	Spread Class = iota
	// Bottleneck traffic: most streams touch one of a few hotspot cores.
	Bottleneck
)

func (c Class) String() string {
	if c == Bottleneck {
		return "Bot"
	}
	return "Sp"
}

// ClassNames lists the synthetic families by the names ClassByName
// resolves, in display order. The single source for every class listing
// (nocgen -class, the SDK's noc.Synthetic, the experiments sweeps).
func ClassNames() []string { return []string{Spread.String(), Bottleneck.String()} }

// ClassByName resolves a class name ("Sp", "Bot").
func ClassByName(name string) (Class, error) {
	for _, c := range []Class{Spread, Bottleneck} {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("bench: unknown synthetic class %q (have %s)", name, strings.Join(ClassNames(), ", "))
}

// SpecFor returns the Section 6.2 benchmark spec of the class.
func (c Class) SpecFor(useCases int, seed int64) SynthSpec {
	if c == Bottleneck {
		return BottleneckSpec(useCases, seed)
	}
	return SpreadSpec(useCases, seed)
}

// cluster is one traffic class of the paper's value model.
type cluster struct {
	name  string
	loMBs float64
	hiMBs float64
	loLat float64 // ns; 0 = unconstrained
	hiLat float64
}

var clusterTable = []cluster{
	{name: "hd", loMBs: 150, hiMBs: 300},
	{name: "sd", loMBs: 30, hiMBs: 60},
	{name: "audio", loMBs: 5, hiMBs: 15},
	{name: "control", loMBs: 1, hiMBs: 5, loLat: 900, hiLat: 2500},
}

const (
	clHD = iota
	clSD
	clAudio
	clControl
)

// stream is one potential directed pair with its fixed type and base rate.
type stream struct {
	key     traffic.PairKey
	cluster int
	baseMBs float64
	latNS   float64
	// hot marks streams touching a hotspot core; they are activated with
	// HotActive probability instead of Active.
	hot bool
	// burstable SD streams may run in peak mode (see SynthSpec.BurstProb).
	// At most two burstable streams source from or sink at any one core, so
	// no core's worst-case union can outgrow its NI link — worst-case
	// infeasibility is a property of the whole mesh, not of a single port.
	burstable bool
}

// SynthSpec fully parameterizes a synthetic design.
type SynthSpec struct {
	Name     string
	Class    Class
	Cores    int
	UseCases int
	// MinPairs/MaxPairs bound the communicating pairs per use-case.
	MinPairs int
	MaxPairs int
	// OutDegree is each core's number of potential outgoing streams
	// (Spread class; also the background traffic of Bottleneck designs).
	OutDegree int
	// HDPerCore caps how many of a core's potential streams are HD.
	HDPerCore int
	// Hotspots is the number of bottleneck cores (Bottleneck class only).
	// Every other core gets one stream to and one from each hotspot.
	Hotspots int
	// HotCoverage is the fraction of regular cores attached to each hotspot
	// (not every IP block exchanges data with the external memory). Zero
	// means all of them.
	HotCoverage float64
	// HotActive is the per-use-case activation probability of hotspot
	// streams (bottleneck traffic recurs in almost every mode).
	HotActive float64
	// Active is the activation probability of background streams; when the
	// pair budget of a use-case is not met, more streams are activated.
	Active float64
	// Deviation is the relative in-cluster rate deviation per use-case.
	Deviation float64
	// BurstProb is the per-use-case probability that an active SD stream
	// runs in peak mode (HD-class rate) — e.g. a scaler fed with
	// double-rate content. Bursts are what make the worst-case union keep
	// growing long after pair coverage saturates: the more use-cases, the
	// more pairs have seen a peak draw.
	BurstProb float64
	// LightShare is the fraction of use-cases that are light modes (standby,
	// audio playback, EPG browsing): they activate no HD streams and no
	// bursts, so they run at a far lower NoC frequency — the headroom
	// DVS/DFS converts into power savings (Section 6.4). Light use-cases
	// are assigned deterministically (every ceil(1/LightShare)-th use-case),
	// so every design gets its share regardless of size.
	LightShare float64
	Seed       int64
}

// SpreadSpec is the Sp benchmark of Section 6.2: 20 cores, 60-100
// connections per use-case.
func SpreadSpec(useCases int, seed int64) SynthSpec {
	return SynthSpec{
		Name:      fmt.Sprintf("Sp-%duc", useCases),
		Class:     Spread,
		Cores:     20,
		UseCases:  useCases,
		MinPairs:  60,
		MaxPairs:  100,
		OutDegree: 12,
		HDPerCore: 2,
		Active:    0.32,
		Deviation: 0.25,
		BurstProb: 0.10,
		Seed:      seed,
	}
}

// BottleneckSpec is the Bot benchmark of Section 6.2.
func BottleneckSpec(useCases int, seed int64) SynthSpec {
	return SynthSpec{
		Name:        fmt.Sprintf("Bot-%duc", useCases),
		Class:       Bottleneck,
		Cores:       20,
		UseCases:    useCases,
		MinPairs:    60,
		MaxPairs:    100,
		OutDegree:   8,
		HDPerCore:   2,
		Hotspots:    2,
		HotCoverage: 0.85,
		HotActive:   0.55,
		Active:      0.3,
		Deviation:   0.25,
		BurstProb:   0.10,
		Seed:        seed,
	}
}

// Synthetic generates a deterministic design from the spec.
func Synthetic(spec SynthSpec) (*traffic.Design, error) {
	if spec.Cores < 3 || spec.UseCases < 1 {
		return nil, fmt.Errorf("bench: spec needs >=3 cores and >=1 use-case, got %d/%d", spec.Cores, spec.UseCases)
	}
	if spec.MinPairs < 1 || spec.MaxPairs < spec.MinPairs {
		return nil, fmt.Errorf("bench: pair bounds [%d,%d] invalid", spec.MinPairs, spec.MaxPairs)
	}
	if spec.OutDegree < 1 || spec.OutDegree >= spec.Cores {
		return nil, fmt.Errorf("bench: out-degree %d invalid for %d cores", spec.OutDegree, spec.Cores)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	streams := buildStreams(rng, spec)
	if len(streams) < spec.MaxPairs {
		return nil, fmt.Errorf("bench: only %d potential streams for %d requested pairs", len(streams), spec.MaxPairs)
	}
	d := &traffic.Design{Name: spec.Name, Cores: traffic.MakeCores(spec.Cores)}
	for u := 0; u < spec.UseCases; u++ {
		target := spec.MinPairs
		if spec.MaxPairs > spec.MinPairs {
			target += rng.Intn(spec.MaxPairs - spec.MinPairs + 1)
		}
		light := false
		if spec.LightShare > 0 {
			period := int(1/spec.LightShare + 0.5)
			if period < 1 {
				period = 1
			}
			light = u%period == period-1
		}
		name := fmt.Sprintf("uc%02d", u)
		if light {
			name += "-light"
		}
		if light {
			target = spec.MinPairs / 2
		}
		d.UseCases = append(d.UseCases, genUseCase(rng, name, spec, streams, target, light))
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("bench: generated design invalid: %w", err)
	}
	return d, nil
}

// buildStreams lays out the design's fixed potential pairs with their stream
// types.
func buildStreams(rng *rand.Rand, spec SynthSpec) []stream {
	var streams []stream
	used := make(map[traffic.PairKey]bool)
	add := func(src, dst, cl int, hot bool) {
		key := traffic.PairKey{Src: traffic.CoreID(src), Dst: traffic.CoreID(dst)}
		if src == dst || used[key] {
			return
		}
		used[key] = true
		c := clusterTable[cl]
		s := stream{
			key:     key,
			cluster: cl,
			baseMBs: c.loMBs + rng.Float64()*(c.hiMBs-c.loMBs),
			hot:     hot,
		}
		if c.hiLat > 0 {
			s.latNS = c.loLat + rng.Float64()*(c.hiLat-c.loLat)
		}
		streams = append(streams, s)
	}
	// Bottleneck designs: regular cores exchange one stream each way with
	// each hotspot they are attached to. Stream types are stratified
	// deterministically so the union of all potential memory streams always
	// fits the memory controller's single NI link: frame traffic dominates
	// in aggregate (the paper: memory traffic is "very large when compared
	// to the rest of the design") without unlucky seeds oversubscribing the
	// port.
	if spec.Class == Bottleneck && spec.Hotspots > 0 {
		cov := spec.HotCoverage
		if cov <= 0 || cov > 1 {
			cov = 1
		}
		var attached []int
		for c := spec.Hotspots; c < spec.Cores; c++ {
			if rng.Float64() < cov {
				attached = append(attached, c)
			}
		}
		for h := 0; h < spec.Hotspots; h++ {
			for i, c := range attached {
				add(c, h, hotCluster(i, len(attached)), true)
				add(h, c, hotCluster(i+1, len(attached)), true)
			}
		}
	}
	// Background / spread streams: per core, OutDegree fixed peers with a
	// bounded number of HD streams. In-degree is capped as well, so no
	// core's union ingress outgrows its NI link. Hotspot cores carry no
	// background streams — all traffic of a memory controller is the hot
	// traffic above, keeping its port union bounded.
	hotCores := 0
	if spec.Class == Bottleneck {
		hotCores = spec.Hotspots
	}
	inDeg := make([]int, spec.Cores)
	hdIn := make([]int, spec.Cores)
	inCap := spec.OutDegree + 1
	for c := hotCores; c < spec.Cores; c++ {
		perm := rng.Perm(spec.Cores)
		hd := 0
		added := 0
		for _, dst := range perm {
			if added >= spec.OutDegree {
				break
			}
			if dst == c || dst < hotCores || inDeg[dst] >= inCap {
				continue
			}
			cl := backgroundCluster(rng)
			if cl == clHD && (hd >= spec.HDPerCore || hdIn[dst] >= spec.HDPerCore) {
				cl = clSD
			}
			before := len(streams)
			add(c, dst, cl, false)
			if len(streams) > before {
				inDeg[dst]++
				added++
				if cl == clHD {
					hd++
					hdIn[dst]++
				}
			}
		}
	}
	// Mark burstable SD streams, at most two per core in each direction.
	burstOut := make([]int, spec.Cores)
	burstIn := make([]int, spec.Cores)
	for i := range streams {
		st := &streams[i]
		if st.cluster != clSD || st.hot {
			continue
		}
		if burstOut[st.key.Src] < 2 && burstIn[st.key.Dst] < 2 {
			st.burstable = true
			burstOut[st.key.Src]++
			burstIn[st.key.Dst]++
		}
	}
	return streams
}

// hotCluster stratifies memory-stream types: of n streams through a memory
// port, roughly 15% are HD frames, 40% SD, 30% audio and the rest control —
// assigned round-robin so every seed carries the same aggregate mix and the
// port's union demand stays bounded.
func hotCluster(i, n int) int {
	if n <= 0 {
		return clSD
	}
	switch {
	case 20*i < 3*n: // first 15%
		return clHD
	case 20*i < 11*n: // next 40%
		return clSD
	case 20*i < 17*n: // next 30%
		return clAudio
	default:
		return clControl
	}
}

// backgroundCluster draws the type of a regular stream with the paper's
// cluster mix.
func backgroundCluster(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < 0.20:
		return clHD
	case r < 0.55:
		return clSD
	case r < 0.80:
		return clAudio
	default:
		return clControl
	}
}

// genUseCase activates a subset of the potential streams for one use-case
// and draws per-use-case rates with the in-cluster deviation. Light
// use-cases exclude HD streams and peak modes entirely.
func genUseCase(rng *rand.Rand, name string, spec SynthSpec, streams []stream, target int, light bool) *traffic.UseCase {
	uc := &traffic.UseCase{Name: name}
	// Light modes carry control, audio and a little SD traffic — no HD.
	eligible := func(s stream) bool {
		if !light {
			return true
		}
		return s.cluster == clAudio || s.cluster == clControl || (s.cluster == clSD && !s.burstable)
	}
	active := make([]bool, len(streams))
	count := 0
	// First pass: probabilistic activation.
	for i, s := range streams {
		if !eligible(s) {
			continue
		}
		p := spec.Active
		if s.hot {
			p = spec.HotActive
		}
		if rng.Float64() < p {
			active[i] = true
			count++
		}
	}
	// Adjust to the pair budget deterministically.
	order := rng.Perm(len(streams))
	for _, i := range order {
		if count >= target {
			break
		}
		if !active[i] && eligible(streams[i]) {
			active[i] = true
			count++
		}
	}
	for _, i := range order {
		if count <= target {
			break
		}
		if active[i] {
			active[i] = false
			count--
		}
	}
	for i, s := range streams {
		if !active[i] {
			continue
		}
		dev := 1 + spec.Deviation*(2*rng.Float64()-1)
		bw := s.baseMBs * dev
		if s.burstable && !light && spec.BurstProb > 0 && rng.Float64() < spec.BurstProb {
			hd := clusterTable[clHD]
			bw = (hd.loMBs + rng.Float64()*(hd.hiMBs-hd.loMBs)) * dev
		}
		uc.Flows = append(uc.Flows, traffic.Flow{
			Src: s.key.Src, Dst: s.key.Dst,
			BandwidthMBs: bw,
			MaxLatencyNS: s.latNS,
		})
	}
	uc.SortFlows()
	return uc
}
