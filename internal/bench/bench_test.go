package bench

import (
	"reflect"
	"strings"
	"testing"

	"nocmap/internal/traffic"
)

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(SpreadSpec(5, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(SpreadSpec(5, 7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different designs")
	}
	c, err := Synthetic(SpreadSpec(5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.UseCases[0].Flows, c.UseCases[0].Flows) {
		t.Error("different seeds produced identical flows")
	}
}

func TestSyntheticShape(t *testing.T) {
	d, err := Synthetic(SpreadSpec(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cores) != 20 || len(d.UseCases) != 10 {
		t.Fatalf("shape = %d cores, %d use-cases", len(d.Cores), len(d.UseCases))
	}
	for _, u := range d.UseCases {
		if len(u.Flows) < 60 || len(u.Flows) > 100 {
			t.Errorf("use-case %q has %d pairs, want 60-100", u.Name, len(u.Flows))
		}
		if err := u.Validate(20); err != nil {
			t.Errorf("generated use-case invalid: %v", err)
		}
	}
}

func TestSyntheticClusters(t *testing.T) {
	d, err := Synthetic(SpreadSpec(20, 3))
	if err != nil {
		t.Fatal(err)
	}
	var hd, control, latencyConstrained int
	total := 0
	for _, u := range d.UseCases {
		for _, f := range u.Flows {
			total++
			if f.BandwidthMBs >= 150 {
				hd++
			}
			if f.BandwidthMBs <= 5 {
				control++
			}
			if f.MaxLatencyNS > 0 {
				latencyConstrained++
				// Control streams: <= 5 MB/s base plus 25% deviation.
				if f.BandwidthMBs > 5*1.25 {
					t.Errorf("latency constraint on non-control flow (%.1f MB/s)", f.BandwidthMBs)
				}
			}
		}
	}
	// Cluster weights: HD ≈ 15%, control ≈ 20%.
	if frac := float64(hd) / float64(total); frac < 0.08 || frac > 0.25 {
		t.Errorf("HD fraction = %v, want ≈0.15", frac)
	}
	if latencyConstrained == 0 {
		t.Error("no latency-critical control flows generated")
	}
}

func TestBottleneckStructure(t *testing.T) {
	d, err := Synthetic(BottleneckSpec(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	// "Most of the communication" means bandwidth share: the hotspot cores
	// must carry a large share of the total traffic volume, and a
	// substantial share of the flow count.
	var hotBW, totBW float64
	touching, total := 0, 0
	for _, u := range d.UseCases {
		for _, f := range u.Flows {
			total++
			totBW += f.BandwidthMBs
			if f.Src < 2 || f.Dst < 2 {
				touching++
				hotBW += f.BandwidthMBs
			}
		}
	}
	if frac := hotBW / totBW; frac < 0.35 {
		t.Errorf("hotspot bandwidth fraction = %v, want >= 0.35", frac)
	}
	if frac := float64(touching) / float64(total); frac < 0.3 {
		t.Errorf("hotspot flow fraction = %v, want >= 0.3", frac)
	}
}

func TestSpreadHasNoDesignatedHotspot(t *testing.T) {
	d, err := Synthetic(SpreadSpec(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	// In spread traffic no single core should dominate: count per-core flow
	// endpoints and compare max to mean.
	counts := make([]int, 20)
	total := 0
	for _, u := range d.UseCases {
		for _, f := range u.Flows {
			counts[f.Src]++
			counts[f.Dst]++
			total += 2
		}
	}
	mean := float64(total) / 20
	for c, n := range counts {
		if float64(n) > 2.2*mean {
			t.Errorf("core %d touches %d flows, mean %v — spread benchmark has a hotspot", c, n, mean)
		}
	}
}

func TestSyntheticRejectsBadSpecs(t *testing.T) {
	bad := []SynthSpec{
		{Cores: 2, UseCases: 1, MinPairs: 1, MaxPairs: 1, OutDegree: 1},
		{Cores: 5, UseCases: 0, MinPairs: 1, MaxPairs: 1, OutDegree: 1},
		{Cores: 5, UseCases: 1, MinPairs: 0, MaxPairs: 1, OutDegree: 1},
		{Cores: 5, UseCases: 1, MinPairs: 5, MaxPairs: 2, OutDegree: 1},
		{Cores: 5, UseCases: 1, MinPairs: 1, MaxPairs: 100, OutDegree: 2}, // only 10 streams exist
		{Cores: 5, UseCases: 1, MinPairs: 1, MaxPairs: 2, OutDegree: 0},
		{Cores: 5, UseCases: 1, MinPairs: 1, MaxPairs: 2, OutDegree: 5}, // degree must be < cores
	}
	for i, s := range bad {
		if _, err := Synthetic(s); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestSoCDesigns(t *testing.T) {
	cases := []struct {
		name     string
		gen      func() (*traffic.Design, error)
		cores    int
		useCases int
	}{
		{"D1", D1, 26, 4},
		{"D2", D2, 26, 20},
		{"D3", D3, 24, 8},
		{"D4", D4, 24, 20},
	}
	for _, tc := range cases {
		d, err := tc.gen()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(d.Cores) != tc.cores || len(d.UseCases) != tc.useCases {
			t.Errorf("%s shape = %d cores %d use-cases, want %d/%d",
				tc.name, len(d.Cores), len(d.UseCases), tc.cores, tc.useCases)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s invalid: %v", tc.name, err)
		}
		for _, u := range d.UseCases {
			lo := 50
			if strings.HasSuffix(u.Name, "-light") {
				lo = 20 // standby/audio modes carry fewer streams
			}
			if len(u.Flows) < lo || len(u.Flows) > 150 {
				t.Errorf("%s use-case %q has %d pairs, want %d-150", tc.name, u.Name, len(u.Flows), lo)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"D1", "D2", "D3", "D4"} {
		if _, err := ByName(n); err != nil {
			t.Errorf("ByName(%s): %v", n, err)
		}
	}
	if _, err := ByName("D9"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSettopboxIsBottleneckHeavy(t *testing.T) {
	d, err := D1()
	if err != nil {
		t.Fatal(err)
	}
	// Memory-controller cores must carry a large share of total bandwidth.
	var memBW, totBW float64
	for _, u := range d.UseCases {
		for _, f := range u.Flows {
			totBW += f.BandwidthMBs
			if f.Src < 2 || f.Dst < 2 {
				memBW += f.BandwidthMBs
			}
		}
	}
	// Memory streams carry the largest single share of traffic; background
	// streams are spread over 24 cores, so per-core the memory dominates.
	if frac := memBW / totBW; frac < 0.35 {
		t.Errorf("memory traffic fraction = %v, want >= 0.35", frac)
	}
	if d.Cores[0].Name != "extmem" {
		t.Errorf("core 0 name = %q", d.Cores[0].Name)
	}
}

func TestClassString(t *testing.T) {
	if Spread.String() != "Sp" || Bottleneck.String() != "Bot" {
		t.Error("Class.String wrong")
	}
}
