package experiments

import (
	"testing"

	"nocmap/internal/bench"
	"nocmap/internal/traffic"
)

// TestPerfComparisonShape keeps the CI cost low (one design, few moves)
// while pinning the contract: both paths score the same number of moves,
// timings are populated, and the incremental path is not slower than the
// from-scratch path (the recorded BENCH figures show the real >=3x margin;
// asserting it here would make the test hostage to CI noise).
func TestPerfComparisonShape(t *testing.T) {
	d1, err := bench.D1()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := PerfComparison([]*traffic.Design{d1}, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Design != d1.Name || r.Moves != 40 {
		t.Errorf("row mislabelled: %+v", r)
	}
	if r.Full <= 0 || r.Delta <= 0 {
		t.Errorf("timings not populated: %+v", r)
	}
	if r.Speedup < 1 {
		t.Errorf("incremental evaluation slower than from-scratch: speedup %.2f", r.Speedup)
	}
}

// TestPerfMoveSequenceDeterministic: the candidate sequence is a pure
// function of the seed, so recorded figures are reproducible.
func TestPerfMoveSequenceDeterministic(t *testing.T) {
	attached := []int{0, 1, 2, 3, 4}
	coreNI := []int{0, 1, 2, 3, 4}
	a := PerfMoveSequence(9, attached, coreNI, 25)
	b := PerfMoveSequence(9, attached, coreNI, 25)
	if len(a) != 25 || len(b) != 25 {
		t.Fatalf("wrong lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestPerfMoveSequenceNoSwapPossible: with every attached core on one NI
// (or a non-positive move budget) the generator must return nil instead of
// drawing candidates forever.
func TestPerfMoveSequenceNoSwapPossible(t *testing.T) {
	attached := []int{0, 1, 2}
	oneNI := []int{5, 5, 5}
	if seq := PerfMoveSequence(1, attached, oneNI, 10); seq != nil {
		t.Errorf("single-NI placement yielded %d moves, want none", len(seq))
	}
	if seq := PerfMoveSequence(1, attached, []int{0, 1, 2}, 0); seq != nil {
		t.Errorf("zero move budget yielded %d moves, want none", len(seq))
	}
}
