package experiments

import (
	"nocmap/internal/bench"
)

// SyntheticClassNames lists the Figure 6 synthetic families by the names
// the CLI and the name-keyed runners accept.
func SyntheticClassNames() []string { return bench.ClassNames() }

// Fig6SyntheticNamed is Fig6Synthetic keyed by class name ("Sp", "Bot"),
// for callers that stay off the internal bench types (cmd/nocbench).
func Fig6SyntheticNamed(class string, useCases []int) ([]Comparison, error) {
	c, err := bench.ClassByName(class)
	if err != nil {
		return nil, err
	}
	return Fig6Synthetic(c, useCases)
}

// TopologySweepNamed is TopologySweep keyed by class name ("Sp", "Bot").
func TopologySweepNamed(class string, useCases []int) ([]TopologyRow, error) {
	c, err := bench.ClassByName(class)
	if err != nil {
		return nil, err
	}
	return TopologySweep(c, useCases)
}
