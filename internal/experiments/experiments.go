// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each runner returns the series the corresponding
// figure plots; cmd/nocbench prints them and bench_test.go wraps them as
// testing.B benchmarks.
//
// The comparison experiments fix the NoC frequency and link width to
// 500 MHz / 32 bits as in Section 6.2 and report the smallest feasible
// network for the proposed method and the worst-case (WC) baseline.
package experiments

import (
	"fmt"

	"nocmap/internal/area"
	"nocmap/internal/baseline"
	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/power"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

// Params returns the evaluation-wide mapper parameters.
func Params() core.Params { return core.DefaultParams() }

// Family seeds for the synthetic sweeps. One seed per family makes the
// sweep nested: the k-use-case design is a prefix of the 40-use-case design,
// so the worst-case union grows monotonically along the x-axis of Figure
// 6(b)/(c).
const (
	SpFamilySeed  int64 = 7
	BotFamilySeed int64 = 23
)

// Comparison is one point of Figure 6: proposed method versus WC baseline.
type Comparison struct {
	Label        string
	OursSwitches int
	OursDim      string
	WCSwitches   int
	WCDim        string
	WCFeasible   bool
	// Normalized is ours/WC switch count (the y-axis of Figure 6); zero when
	// the WC method found no feasible mapping.
	Normalized float64
}

// compare maps a design with both methods.
func compare(d *traffic.Design, p core.Params) (Comparison, error) {
	pr, err := usecase.Prepare(d)
	if err != nil {
		return Comparison{}, err
	}
	ours, err := core.Map(pr, d.NumCores(), p)
	if err != nil {
		return Comparison{}, fmt.Errorf("proposed method on %s: %w", d.Name, err)
	}
	c := Comparison{
		Label:        d.Name,
		OursSwitches: ours.Mapping.SwitchCount(),
		OursDim:      ours.Dim().String(),
	}
	wc, err := baseline.Map(pr, d.NumCores(), p)
	if err == nil {
		c.WCFeasible = true
		c.WCSwitches = wc.Mapping.SwitchCount()
		c.WCDim = wc.Dim().String()
		c.Normalized = float64(c.OursSwitches) / float64(c.WCSwitches)
	}
	return c, nil
}

// Fig6a reproduces Figure 6(a): normalized switch count for the SoC designs
// D1-D4.
func Fig6a() ([]Comparison, error) {
	gens := []func() (*traffic.Design, error){bench.D1, bench.D2, bench.D3, bench.D4}
	labels := []string{"D1", "D2", "D3", "D4"}
	p := Params()
	var out []Comparison
	for i, gen := range gens {
		d, err := gen()
		if err != nil {
			return nil, err
		}
		c, err := compare(d, p)
		if err != nil {
			return nil, err
		}
		c.Label = labels[i]
		out = append(out, c)
	}
	return out, nil
}

// Fig6Synthetic runs the use-case sweep of Figures 6(b) and 6(c) for the
// given class. The paper plots 2-20 use-cases and reports the 40-use-case
// point in the text (WC infeasible there).
func Fig6Synthetic(class bench.Class, useCases []int) ([]Comparison, error) {
	p := Params()
	var out []Comparison
	for _, n := range useCases {
		var spec bench.SynthSpec
		if class == bench.Bottleneck {
			spec = bench.BottleneckSpec(n, BotFamilySeed)
		} else {
			spec = bench.SpreadSpec(n, SpFamilySeed)
		}
		d, err := bench.Synthetic(spec)
		if err != nil {
			return nil, err
		}
		c, err := compare(d, p)
		if err != nil {
			return nil, err
		}
		c.Label = fmt.Sprintf("%d uc", n)
		out = append(out, c)
	}
	return out, nil
}

// DefaultSweep is the use-case axis of Figure 6(b)/(c).
func DefaultSweep() []int { return []int{2, 5, 10, 15, 20} }

// ParetoPoint is one point of Figure 7(a).
type ParetoPoint struct {
	FreqMHz  float64
	Feasible bool
	Switches int
	Dim      string
	AreaMM2  float64
}

// Fig7a reproduces Figure 7(a): the area-frequency trade-off for D1. At each
// frequency the full methodology runs and the resulting switch area is
// evaluated with the 0.13 µm model.
func Fig7a(freqsMHz []float64) ([]ParetoPoint, error) {
	d, err := bench.D1()
	if err != nil {
		return nil, err
	}
	pr, err := usecase.Prepare(d)
	if err != nil {
		return nil, err
	}
	model := area.DefaultModel()
	var out []ParetoPoint
	for _, f := range freqsMHz {
		p := Params().WithFrequency(f)
		pt := ParetoPoint{FreqMHz: f}
		res, err := core.Map(pr, d.NumCores(), p)
		if err == nil {
			pt.Feasible = true
			pt.Switches = res.Mapping.SwitchCount()
			pt.Dim = res.Dim().String()
			pt.AreaMM2 = model.NoCMM2(res.Mapping)
		}
		out = append(out, pt)
	}
	return out, nil
}

// DefaultParetoFreqs spans the x-axis of Figure 7(a).
func DefaultParetoFreqs() []float64 {
	return []float64{100, 150, 200, 250, 300, 350, 400, 500, 650, 800, 1000, 1250, 1500, 1750, 2000}
}

// DVSResult is one bar of Figure 7(b).
type DVSResult struct {
	Label string
	// FDesignMHz is the fixed frequency a non-DVS design would run at: the
	// maximum of the per-use-case minima on the designed NoC.
	FDesignMHz float64
	// PerUseCaseMHz holds each use-case's minimum feasible frequency.
	PerUseCaseMHz []float64
	// Savings is the fractional power reduction of DVS/DFS (P ∝ f²).
	Savings float64
}

// Fig7b reproduces Figure 7(b): DVS/DFS power savings for D1-D4.
func Fig7b() ([]DVSResult, error) {
	gens := []func() (*traffic.Design, error){bench.D1, bench.D2, bench.D3, bench.D4}
	labels := []string{"D1", "D2", "D3", "D4"}
	p := Params()
	grid := power.Grid{LoMHz: 25, HiMHz: 2000, StepMHz: 25}
	var out []DVSResult
	for i, gen := range gens {
		d, err := gen()
		if err != nil {
			return nil, err
		}
		pr, err := usecase.Prepare(d)
		if err != nil {
			return nil, err
		}
		res, err := core.Map(pr, d.NumCores(), p)
		if err != nil {
			return nil, err
		}
		freqs, err := power.PerUseCaseFrequencies(res.Mapping, d.NumCores(), grid)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", labels[i], err)
		}
		fmax := 0.0
		for _, f := range freqs {
			if f > fmax {
				fmax = f
			}
		}
		out = append(out, DVSResult{
			Label:         labels[i],
			FDesignMHz:    fmax,
			PerUseCaseMHz: freqs,
			Savings:       power.DVSSavings(freqs),
		})
	}
	return out, nil
}

// ParallelPoint is one point of Figure 7(c).
type ParallelPoint struct {
	Parallel int
	// FreqMHz is the minimum NoC frequency supporting the compound mode of
	// the first `Parallel` use-cases on the fixed design.
	FreqMHz  float64
	Feasible bool
}

// Fig7c reproduces Figure 7(c): required NoC frequency versus the number of
// use-cases running in parallel, on the 20-core 10-use-case Sp benchmark.
// The NoC (topology and placement) is designed once for the individual
// use-cases; each compound mode is then configured on the fixed design at
// the lowest feasible frequency.
func Fig7c(maxParallel int) ([]ParallelPoint, error) {
	d, err := bench.Synthetic(bench.SpreadSpec(10, SpFamilySeed))
	if err != nil {
		return nil, err
	}
	pr, err := usecase.Prepare(d)
	if err != nil {
		return nil, err
	}
	p := Params()
	res, err := core.Map(pr, d.NumCores(), p)
	if err != nil {
		return nil, err
	}
	grid := power.Grid{LoMHz: 50, HiMHz: 4000, StepMHz: 50}
	var out []ParallelPoint
	for k := 1; k <= maxParallel; k++ {
		comp := traffic.Combine(fmt.Sprintf("par%d", k), d.UseCases[:k])
		solo := &usecase.Prepared{
			UseCases:    []*traffic.UseCase{comp},
			Groups:      [][]int{{0}},
			GroupOf:     []int{0},
			NumOriginal: 1,
		}
		pt := ParallelPoint{Parallel: k}
		f, err := power.MinFeasibleFrequency(solo, d.NumCores(), res.Mapping, grid)
		if err == nil {
			pt.Feasible = true
			pt.FreqMHz = f
		}
		out = append(out, pt)
	}
	return out, nil
}

// Extreme is one row of the Section 6.2 scalability extremes.
type Extreme struct {
	Label      string
	OursDim    string
	OursCount  int
	WCDim      string
	WCCount    int
	WCFeasible bool
}

// Sec62Extremes reproduces the scalability claims quoted in Section 6.2: the
// D3 design (ours on a small mesh, WC far larger) and the 40-use-case Sp and
// Bot benchmarks (WC infeasible even at 20x20).
func Sec62Extremes() ([]Extreme, error) {
	p := Params()
	var out []Extreme

	d3, err := bench.D3()
	if err != nil {
		return nil, err
	}
	c, err := compare(d3, p)
	if err != nil {
		return nil, err
	}
	out = append(out, Extreme{Label: "D3", OursDim: c.OursDim, OursCount: c.OursSwitches,
		WCDim: c.WCDim, WCCount: c.WCSwitches, WCFeasible: c.WCFeasible})

	for _, class := range []bench.Class{bench.Spread, bench.Bottleneck} {
		var spec bench.SynthSpec
		if class == bench.Bottleneck {
			spec = bench.BottleneckSpec(40, BotFamilySeed)
		} else {
			spec = bench.SpreadSpec(40, SpFamilySeed)
		}
		d, err := bench.Synthetic(spec)
		if err != nil {
			return nil, err
		}
		c, err := compare(d, p)
		if err != nil {
			return nil, err
		}
		out = append(out, Extreme{Label: fmt.Sprintf("%s 40 uc", class), OursDim: c.OursDim,
			OursCount: c.OursSwitches, WCDim: c.WCDim, WCCount: c.WCSwitches, WCFeasible: c.WCFeasible})
	}
	return out, nil
}

// Headline aggregates the abstract's claims: average NoC area reduction
// versus the WC method (over all comparison points where WC is feasible) and
// average DVS/DFS power savings.
type Headline struct {
	AreaReductionPct float64
	PowerSavingsPct  float64
	Points           int
}

// RunHeadline computes the headline numbers from Figures 6(a,b,c) and 7(b).
func RunHeadline() (Headline, error) {
	var ratios []float64
	collect := func(cs []Comparison, err error) error {
		if err != nil {
			return err
		}
		model := area.DefaultModel()
		for _, c := range cs {
			if !c.WCFeasible {
				continue
			}
			// Area ratio at fixed frequency via the area model; switch
			// counts dominate but port mixes differ slightly.
			_ = model
			ratios = append(ratios, c.Normalized)
		}
		return nil
	}
	if err := collect(Fig6a()); err != nil {
		return Headline{}, err
	}
	if err := collect(Fig6Synthetic(bench.Spread, DefaultSweep())); err != nil {
		return Headline{}, err
	}
	if err := collect(Fig6Synthetic(bench.Bottleneck, DefaultSweep())); err != nil {
		return Headline{}, err
	}
	var h Headline
	h.Points = len(ratios)
	if len(ratios) > 0 {
		var sum float64
		for _, r := range ratios {
			sum += r
		}
		h.AreaReductionPct = (1 - sum/float64(len(ratios))) * 100
	}
	dvs, err := Fig7b()
	if err != nil {
		return Headline{}, err
	}
	var s float64
	for _, d := range dvs {
		s += d.Savings
	}
	if len(dvs) > 0 {
		h.PowerSavingsPct = s / float64(len(dvs)) * 100
	}
	return h, nil
}
