package experiments

import (
	"context"
	"testing"
)

// TestEngineComparisonPortfolioNotWorse checks the acceptance criterion of
// the search subsystem: on every design of the comparison suite (D1-D4 plus
// the synthetic pair) the portfolio's switch count is at most greedy's.
func TestEngineComparisonPortfolioNotWorse(t *testing.T) {
	designs, err := EngineDesigns()
	if err != nil {
		t.Fatal(err)
	}
	// Trimmed search effort: the invariant under test is structural
	// (portfolio contains greedy), not a function of annealing length.
	opts := EngineOptions{Seed: 1, Seeds: 2, Iters: 30, Restarts: 1}
	rows, err := EngineComparison(context.Background(), designs, opts)
	if err != nil {
		t.Fatal(err)
	}
	switches := make(map[string]map[string]int)
	for _, r := range rows {
		if switches[r.Design] == nil {
			switches[r.Design] = make(map[string]int)
		}
		switches[r.Design][r.Engine] = r.Switches
	}
	if len(switches) != len(designs) {
		t.Fatalf("expected rows for %d designs, got %d", len(designs), len(switches))
	}
	for design, byEngine := range switches {
		g, ok := byEngine["greedy"]
		if !ok {
			t.Fatalf("%s: no greedy row", design)
		}
		for _, engine := range []string{"anneal", "portfolio"} {
			s, ok := byEngine[engine]
			if !ok {
				t.Fatalf("%s: no %s row", design, engine)
			}
			if s > g {
				t.Errorf("%s: %s used %d switches, greedy %d", design, engine, s, g)
			}
		}
	}
}
