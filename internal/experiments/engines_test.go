package experiments

import (
	"context"
	"testing"
)

// TestEngineComparisonPortfolioNotWorse checks the acceptance criterion of
// the search subsystem: on every design of the comparison suite (D1-D4 plus
// the synthetic pair) no improving engine's switch count exceeds greedy's,
// and no engine's mapping undercuts the exact engine's lower bound.
func TestEngineComparisonPortfolioNotWorse(t *testing.T) {
	designs, err := EngineDesigns()
	if err != nil {
		t.Fatal(err)
	}
	// Trimmed search effort: the invariant under test is structural (every
	// improving engine starts from the greedy base), not a function of
	// annealing length, population size or exact-search budget.
	opts := EngineOptions{Seed: 1, Seeds: 2, Iters: 30, Restarts: 1,
		Population: 6, Generations: 3, Nodes: 5000}
	rows, err := EngineComparison(context.Background(), designs, opts)
	if err != nil {
		t.Fatal(err)
	}
	switches := make(map[string]map[string]int)
	for _, r := range rows {
		if switches[r.Design] == nil {
			switches[r.Design] = make(map[string]int)
		}
		switches[r.Design][r.Engine] = r.Switches
	}
	if len(switches) != len(designs) {
		t.Fatalf("expected rows for %d designs, got %d", len(designs), len(switches))
	}
	for design, byEngine := range switches {
		g, ok := byEngine["greedy"]
		if !ok {
			t.Fatalf("%s: no greedy row", design)
		}
		for _, engine := range []string{"anneal", "portfolio", "ga", "pso", "abc", "exact"} {
			s, ok := byEngine[engine]
			if !ok {
				t.Fatalf("%s: no %s row", design, engine)
			}
			if s > g {
				t.Errorf("%s: %s used %d switches, greedy %d", design, engine, s, g)
			}
		}
	}
	// Every row carries a well-formed bound, and no engine ever undercuts
	// the exact engine's claimed lower bound.
	for _, r := range rows {
		if r.LowerBound < 1 || r.LowerBound > r.Switches {
			t.Errorf("%s/%s: bound %d out of range (switches %d)", r.Design, r.Engine, r.LowerBound, r.Switches)
		}
	}
	for design, byEngine := range switches {
		var exactLB int
		for _, r := range rows {
			if r.Design == design && r.Engine == "exact" {
				exactLB = r.LowerBound
			}
		}
		for engine, s := range byEngine {
			if s < exactLB {
				t.Errorf("%s: %s found %d switches below the exact bound %d", design, engine, s, exactLB)
			}
		}
	}
}
