package experiments

import (
	"testing"

	"nocmap/internal/bench"
)

// Acceptance: the mesh-vs-torus comparison runs every suite design end to
// end, and at equal cores-per-switch the torus solution is never larger
// than the mesh solution — wrap links only ever add routing options.
func TestTopologyComparisonTorusNeverLarger(t *testing.T) {
	designs, err := TopologyDesigns()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := TopologyComparison(designs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(designs) {
		t.Fatalf("got %d rows for %d designs", len(rows), len(designs))
	}
	for _, r := range rows {
		if r.TorusSwitches > r.MeshSwitches {
			t.Errorf("%s: torus %s (%d switches) larger than mesh %s (%d)",
				r.Design, r.TorusDim, r.TorusSwitches, r.MeshDim, r.MeshSwitches)
		}
		if r.Ratio > 1 {
			t.Errorf("%s: ratio %.3f > 1", r.Design, r.Ratio)
		}
		// At equal size the torus must not route worse: same placement
		// freedom plus wrap links.
		if r.TorusSwitches == r.MeshSwitches && r.TorusHops > r.MeshHops+1e-9 {
			t.Errorf("%s: torus mean hops %.3f worse than mesh %.3f at equal size",
				r.Design, r.TorusHops, r.MeshHops)
		}
	}
}

// The synthetic sweep variant must run end to end as well (one short sweep
// per class keeps the test cheap).
func TestTopologySweep(t *testing.T) {
	for _, class := range []bench.Class{bench.Spread, bench.Bottleneck} {
		rows, err := TopologySweep(class, []int{2, 5})
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		for _, r := range rows {
			if r.TorusSwitches > r.MeshSwitches {
				t.Errorf("%s %s: torus %d switches > mesh %d", class, r.Design, r.TorusSwitches, r.MeshSwitches)
			}
		}
	}
}
