package experiments

import (
	"fmt"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

// TopologyRow is one design of the fabric comparison: the smallest feasible
// network the methodology finds on each topology family at identical
// architecture parameters, with the bandwidth-weighted mean hop count as the
// quality metric within a size.
type TopologyRow struct {
	Design        string
	MeshDim       string
	MeshSwitches  int
	MeshHops      float64
	TorusDim      string
	TorusSwitches int
	TorusHops     float64
	// Ratio is torus/mesh switch count. Wrap links add path diversity and
	// halve worst-case distances, so the ratio is expected to be <= 1.
	Ratio float64
}

// TopologyParams returns the fabric-comparison parameters: the evaluation
// defaults tightened to one core per switch (one NI, one core per NI) — the
// classic NoC mapping assumption — so designs spread across fabrics large
// enough for wrap links to matter. At the default eight cores per switch
// every benchmark collapses onto a 2x2, where a torus degenerates to the
// mesh and the comparison is vacuous.
func TopologyParams() core.Params {
	p := Params()
	p.NIsPerSwitch = 1
	p.CoresPerNI = 1
	return p
}

// TopologyDesigns returns the comparison suite: D1-D4 plus one design per
// synthetic family from the Figure 6 sweeps.
func TopologyDesigns() ([]*traffic.Design, error) {
	return EngineDesigns()
}

// TopologyComparison maps every design on the mesh and torus families and
// reports the smallest feasible network of each. Both runs share one set of
// architecture parameters (TopologyParams), so switch counts and hop
// statistics are directly comparable.
func TopologyComparison(designs []*traffic.Design) ([]TopologyRow, error) {
	var rows []TopologyRow
	for _, d := range designs {
		prep, err := usecase.Prepare(d)
		if err != nil {
			return nil, err
		}
		row := TopologyRow{Design: d.Name}
		for _, kind := range []topology.Kind{topology.KindMesh, topology.KindTorus} {
			p := TopologyParams()
			p.Topology = topology.Spec{Kind: kind}
			res, err := core.Map(prep, d.NumCores(), p)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", kind, d.Name, err)
			}
			switch kind {
			case topology.KindMesh:
				row.MeshDim = res.Dim().String()
				row.MeshSwitches = res.Mapping.SwitchCount()
				row.MeshHops = res.Stats.AvgMeshHops
			case topology.KindTorus:
				row.TorusDim = res.Dim().String()
				row.TorusSwitches = res.Mapping.SwitchCount()
				row.TorusHops = res.Stats.AvgMeshHops
			}
		}
		row.Ratio = float64(row.TorusSwitches) / float64(row.MeshSwitches)
		rows = append(rows, row)
	}
	return rows, nil
}

// TopologySweep runs the mesh-vs-torus comparison along a synthetic use-case
// sweep of the given class, mirroring the Figure 6(b)/(c) axes.
func TopologySweep(class bench.Class, useCases []int) ([]TopologyRow, error) {
	var designs []*traffic.Design
	for _, n := range useCases {
		var spec bench.SynthSpec
		if class == bench.Bottleneck {
			spec = bench.BottleneckSpec(n, BotFamilySeed)
		} else {
			spec = bench.SpreadSpec(n, SpFamilySeed)
		}
		d, err := bench.Synthetic(spec)
		if err != nil {
			return nil, err
		}
		designs = append(designs, d)
	}
	return TopologyComparison(designs)
}
