package experiments

import (
	"context"
	"fmt"
	"time"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/traffic"
	"nocmap/pkg/noc"
)

// EngineRow is one (design, engine) cell of the search-engine comparison:
// the network the engine designed and how long it searched.
type EngineRow struct {
	Design   string
	Engine   string
	Switches int
	Dim      string
	AvgHops  float64
	MaxUtil  float64
	Cost     float64
	Elapsed  time.Duration
	// LowerBound is the run's lower bound on the feasible switch count (the
	// seat bound, or the exact engine's branch-and-bound proof); Gap is the
	// optimality gap (Switches - LowerBound) / LowerBound. BoundExact marks a
	// row proven optimal in switch count.
	LowerBound int
	Gap        float64
	BoundExact bool
}

// EngineOptions tune the comparison's stochastic engines. Seed and Seeds
// are passed to the engines verbatim (seed 0 is a valid PRNG stream and
// seeds 0 a pure-greedy portfolio); DefaultEngineOptions matches the CLI
// defaults.
type EngineOptions struct {
	// Seed is the base PRNG seed; derived member seeds are deterministic
	// functions of it.
	Seed int64
	// Seeds is the number of multi-start annealers in the portfolio engine.
	Seeds int
	// Budget bounds each engine run's improvement phase (0 = unbounded).
	Budget time.Duration
	// Iters overrides the annealing moves per start when positive.
	Iters int
	// Restarts overrides the feasible-start probes per shrunk fabric size
	// when positive.
	Restarts int
	// Population and Generations override the population engines' sizing
	// when positive; Nodes overrides the exact engine's node budget.
	Population  int
	Generations int
	Nodes       int
}

// DefaultEngineOptions returns the comparison defaults (seed 1, four
// portfolio annealers, unbounded) — the values nocbench's flags default to.
func DefaultEngineOptions() EngineOptions { return EngineOptions{Seed: 1, Seeds: 4} }

// EngineDesigns returns the comparison suite: the D1-D4 SoC stand-ins plus
// one Spread and one Bottleneck synthetic design from the Figure 6 families.
func EngineDesigns() ([]*traffic.Design, error) {
	var out []*traffic.Design
	for _, gen := range []func() (*traffic.Design, error){bench.D1, bench.D2, bench.D3, bench.D4} {
		d, err := gen()
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	sp, err := bench.Synthetic(bench.SpreadSpec(10, SpFamilySeed))
	if err != nil {
		return nil, err
	}
	bot, err := bench.Synthetic(bench.BottleneckSpec(10, BotFamilySeed))
	if err != nil {
		return nil, err
	}
	return append(out, sp, bot), nil
}

// EngineComparison runs every registered search engine over the given
// designs through the public SDK (noc.Map) and reports one row per
// (design, engine) pair. The portfolio contains the greedy engine as a
// member, so its switch count is never above greedy's on any design.
func EngineComparison(ctx context.Context, designs []*traffic.Design, opts EngineOptions) ([]EngineRow, error) {
	weights := noc.DefaultWeights()
	var rows []EngineRow
	for _, d := range designs {
		for _, name := range noc.Engines() {
			mapOpts := []noc.Option{
				noc.WithEngine(name),
				noc.WithSeed(opts.Seed),
				noc.WithSeeds(opts.Seeds),
				noc.WithBudget(opts.Budget),
			}
			if opts.Iters > 0 {
				mapOpts = append(mapOpts, noc.WithIters(opts.Iters))
			}
			if opts.Restarts > 0 {
				mapOpts = append(mapOpts, noc.WithRestarts(opts.Restarts))
			}
			if opts.Population > 0 {
				mapOpts = append(mapOpts, noc.WithPopulation(opts.Population))
			}
			if opts.Generations > 0 {
				mapOpts = append(mapOpts, noc.WithGenerations(opts.Generations))
			}
			if opts.Nodes > 0 {
				mapOpts = append(mapOpts, noc.WithExactNodes(opts.Nodes))
			}
			t0 := time.Now()
			res, err := noc.Map(ctx, d, mapOpts...)
			if err != nil {
				return nil, fmt.Errorf("engine %s on %s: %w", name, d.Name, err)
			}
			stats := core.Stats{
				MaxLinkUtil:   res.MaxLinkUtil,
				AvgMeshHops:   res.AvgMeshHops,
				SlotsReserved: res.SlotsReserved,
			}
			rows = append(rows, EngineRow{
				Design:     d.Name,
				Engine:     name,
				Switches:   res.Switches,
				Dim:        fmt.Sprintf("%dx%d", res.Rows, res.Cols),
				AvgHops:    res.AvgMeshHops,
				MaxUtil:    res.MaxLinkUtil,
				Cost:       weights.OfParts(res.Switches, stats),
				Elapsed:    time.Since(t0),
				LowerBound: res.LowerBoundSwitches,
				Gap:        res.OptimalityGap,
				BoundExact: res.BoundExact,
			})
		}
	}
	return rows, nil
}
