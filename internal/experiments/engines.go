package experiments

import (
	"context"
	"fmt"
	"time"

	"nocmap/internal/bench"
	"nocmap/internal/search"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

// EngineRow is one (design, engine) cell of the search-engine comparison:
// the network the engine designed and how long it searched.
type EngineRow struct {
	Design   string
	Engine   string
	Switches int
	Dim      string
	AvgHops  float64
	MaxUtil  float64
	Cost     float64
	Elapsed  time.Duration
}

// EngineDesigns returns the comparison suite: the D1-D4 SoC stand-ins plus
// one Spread and one Bottleneck synthetic design from the Figure 6 families.
func EngineDesigns() ([]*traffic.Design, error) {
	var out []*traffic.Design
	for _, gen := range []func() (*traffic.Design, error){bench.D1, bench.D2, bench.D3, bench.D4} {
		d, err := gen()
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	sp, err := bench.Synthetic(bench.SpreadSpec(10, SpFamilySeed))
	if err != nil {
		return nil, err
	}
	bot, err := bench.Synthetic(bench.BottleneckSpec(10, BotFamilySeed))
	if err != nil {
		return nil, err
	}
	return append(out, sp, bot), nil
}

// EngineComparison runs every registered search engine over the given
// designs and reports one row per (design, engine) pair. The portfolio
// contains the greedy engine as a member, so its switch count is never above
// greedy's on any design.
func EngineComparison(ctx context.Context, designs []*traffic.Design, opts search.Options) ([]EngineRow, error) {
	p := Params()
	var rows []EngineRow
	for _, d := range designs {
		prep, err := usecase.Prepare(d)
		if err != nil {
			return nil, err
		}
		for _, name := range search.Names() {
			eng, err := search.New(name)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			res, err := eng.Search(ctx, prep, d.NumCores(), p, opts)
			if err != nil {
				return nil, fmt.Errorf("engine %s on %s: %w", name, d.Name, err)
			}
			rows = append(rows, EngineRow{
				Design:   d.Name,
				Engine:   name,
				Switches: res.Mapping.SwitchCount(),
				Dim:      res.Dim().String(),
				AvgHops:  res.Stats.AvgMeshHops,
				MaxUtil:  res.Stats.MaxLinkUtil,
				Cost:     opts.Weights.Of(res),
				Elapsed:  time.Since(t0),
			})
		}
	}
	return rows, nil
}
