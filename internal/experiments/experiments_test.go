package experiments

import (
	"testing"

	"nocmap/internal/bench"
)

// The experiment runners are exercised on reduced sweeps so the unit-test
// suite stays fast; the full sweeps run from bench_test.go and cmd/nocbench.

func TestFig6SyntheticShapes(t *testing.T) {
	for _, class := range []bench.Class{bench.Spread, bench.Bottleneck} {
		cs, err := Fig6Synthetic(class, []int{2, 10})
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		if len(cs) != 2 {
			t.Fatalf("%v: %d points", class, len(cs))
		}
		for _, c := range cs {
			if c.OursSwitches <= 0 {
				t.Errorf("%v %s: proposed method produced no mapping", class, c.Label)
			}
			if !c.WCFeasible {
				t.Errorf("%v %s: WC infeasible at small use-case counts", class, c.Label)
			}
			if c.Normalized > 1.0+1e-9 {
				t.Errorf("%v %s: normalized %v > 1 — ours larger than WC", class, c.Label, c.Normalized)
			}
		}
		// The methodology's key claim: the advantage grows with use-cases.
		if cs[1].Normalized > cs[0].Normalized+1e-9 {
			t.Errorf("%v: normalized count grew from %v to %v between 2 and 10 use-cases",
				class, cs[0].Normalized, cs[1].Normalized)
		}
	}
}

func TestFig7aShape(t *testing.T) {
	pts, err := Fig7a([]float64{300, 500, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if !p.Feasible {
			t.Fatalf("D1 infeasible at %.0f MHz", p.FreqMHz)
		}
	}
	// More frequency never needs more switches.
	if pts[0].Switches < pts[1].Switches || pts[1].Switches < pts[2].Switches {
		t.Errorf("switch counts not non-increasing: %d %d %d",
			pts[0].Switches, pts[1].Switches, pts[2].Switches)
	}
}

func TestFig7cMonotone(t *testing.T) {
	pts, err := Fig7c(3)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, p := range pts {
		if !p.Feasible {
			t.Fatalf("parallel=%d infeasible", p.Parallel)
		}
		if p.FreqMHz < prev {
			t.Errorf("required frequency fell from %v to %v at k=%d", prev, p.FreqMHz, p.Parallel)
		}
		prev = p.FreqMHz
	}
}

func TestFig7bSavingsPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("full D1-D4 DVS search in -short mode")
	}
	rs, err := Fig7b()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("results = %d", len(rs))
	}
	for _, r := range rs {
		if r.Savings <= 0.1 || r.Savings >= 0.9 {
			t.Errorf("%s: savings %.2f implausible", r.Label, r.Savings)
		}
		if len(r.PerUseCaseMHz) == 0 || r.FDesignMHz <= 0 {
			t.Errorf("%s: incomplete result %+v", r.Label, r)
		}
	}
}

func TestSec62ExtremesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("40-use-case WC searches in -short mode")
	}
	es, err := Sec62Extremes()
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 3 {
		t.Fatalf("rows = %d", len(es))
	}
	// D3: both feasible, ours far smaller.
	if !es[0].WCFeasible || es[0].OursCount*2 > es[0].WCCount {
		t.Errorf("D3 extreme wrong: %+v", es[0])
	}
	// 40-use-case synthetics: ours small, WC infeasible.
	for _, e := range es[1:] {
		if e.OursCount <= 0 || e.OursCount > 12 {
			t.Errorf("%s: ours = %d switches, want small", e.Label, e.OursCount)
		}
		if e.WCFeasible {
			t.Errorf("%s: WC should be infeasible at 40 use-cases, got %d switches", e.Label, e.WCCount)
		}
	}
}
