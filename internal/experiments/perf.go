package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

// PerfRow is one design of the evaluation-throughput figure: the cost of
// scoring one annealing move through the legacy from-scratch path
// (core.EvaluateFixed: re-validate, rebuild the flow list, reallocate
// states, re-route everything) versus the incremental engine
// (core.Session.TryMove: tear down and re-route only the moved flows).
// Both paths score the identical candidate sequence from the identical
// greedy starting placement.
type PerfRow struct {
	Design  string
	Moves   int           // candidate moves scored by each path
	Full    time.Duration // total wall-clock of the EvaluateFixed path
	Delta   time.Duration // total wall-clock of the Session path
	Speedup float64       // Full / Delta
}

// PerfDesigns returns the throughput suite: the D1-D4 SoC stand-ins.
func PerfDesigns() ([]*traffic.Design, error) {
	var out []*traffic.Design
	for _, gen := range []func() (*traffic.Design, error){bench.D1, bench.D2, bench.D3, bench.D4} {
		d, err := gen()
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// PerfMove is one swap candidate: cores X and Y exchange seats.
type PerfMove struct {
	X, Y int
}

// PerfMoveSequence pre-generates a deterministic sequence of swap
// candidates over the attached cores, so independent evaluation paths (the
// perf figure's two timers, the BenchmarkAnnealMove pair) score the same
// neighbours. It returns nil when no swap exists — fewer than two attached
// cores, or every attached core seated on one NI — instead of drawing
// forever.
func PerfMoveSequence(seed int64, attached []int, coreNI []int, moves int) []PerfMove {
	possible := false
	for _, c := range attached {
		if coreNI[c] != coreNI[attached[0]] {
			possible = true
			break
		}
	}
	if !possible || moves <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var out []PerfMove
	for len(out) < moves {
		x := attached[rng.Intn(len(attached))]
		y := attached[rng.Intn(len(attached))]
		if x == y || coreNI[x] == coreNI[y] {
			continue
		}
		out = append(out, PerfMove{x, y})
	}
	return out
}

// PerfComparison measures both evaluation paths on each design: greedy maps
// the design, then `moves` seeded swap candidates of the greedy placement
// are scored (a) by full re-configuration via core.EvaluateFixed and (b)
// incrementally via one core.Session with TryMove/Undo, leaving the base
// placement in force so every candidate is a neighbour of the same state.
func PerfComparison(designs []*traffic.Design, moves int, seed int64) ([]PerfRow, error) {
	p := Params()
	var rows []PerfRow
	for _, d := range designs {
		prep, err := usecase.Prepare(d)
		if err != nil {
			return nil, err
		}
		base, err := core.Map(prep, d.NumCores(), p)
		if err != nil {
			return nil, fmt.Errorf("design %s: greedy base: %w", d.Name, err)
		}
		m := base.Mapping
		var attached []int
		for c, s := range m.CoreSwitch {
			if s >= 0 {
				attached = append(attached, c)
			}
		}
		seq := PerfMoveSequence(seed, attached, m.CoreNI, moves)
		if len(seq) == 0 {
			continue // no swap neighbours exist on this design's placement
		}
		swap := func(mv PerfMove) (cs, cn []int) {
			cs = append([]int(nil), m.CoreSwitch...)
			cn = append([]int(nil), m.CoreNI...)
			cs[mv.X], cs[mv.Y] = cs[mv.Y], cs[mv.X]
			cn[mv.X], cn[mv.Y] = cn[mv.Y], cn[mv.X]
			return cs, cn
		}

		t0 := time.Now()
		for _, mv := range seq {
			cs, cn := swap(mv)
			_, _ = core.EvaluateFixed(prep, d.NumCores(), m.Topology, cs, cn, p)
		}
		full := time.Since(t0)

		ev, err := core.NewEvaluator(prep, d.NumCores(), m.Topology, p)
		if err != nil {
			return nil, fmt.Errorf("design %s: evaluator: %w", d.Name, err)
		}
		sess, err := ev.SessionFrom(base)
		if err != nil {
			return nil, fmt.Errorf("design %s: session: %w", d.Name, err)
		}
		t0 = time.Now()
		for _, mv := range seq {
			cs, cn := swap(mv)
			if _, err := sess.TryMove(cs, cn, mv.X, mv.Y); err == nil {
				sess.Undo()
			}
		}
		delta := time.Since(t0)

		speedup := 0.0
		if delta > 0 {
			speedup = float64(full) / float64(delta)
		}
		rows = append(rows, PerfRow{Design: d.Name, Moves: len(seq), Full: full, Delta: delta, Speedup: speedup})
	}
	return rows, nil
}
