package tdma

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustState(t *testing.T, links, slots int) *State {
	t.Helper()
	s, err := NewState(links, slots)
	if err != nil {
		t.Fatalf("NewState(%d,%d): %v", links, slots, err)
	}
	return s
}

func TestNewStateValidation(t *testing.T) {
	if _, err := NewState(-1, 8); err == nil {
		t.Error("negative links accepted")
	}
	if _, err := NewState(4, 0); err == nil {
		t.Error("zero slots accepted")
	}
	s := mustState(t, 3, 8)
	if s.NumLinks() != 3 || s.Slots() != 8 {
		t.Errorf("dims = %d,%d", s.NumLinks(), s.Slots())
	}
	for l := 0; l < 3; l++ {
		if s.FreeSlots(l) != 8 {
			t.Errorf("link %d not fully free", l)
		}
		if s.Utilization(l) != 0 {
			t.Errorf("utilization = %v", s.Utilization(l))
		}
	}
}

func TestReserveAndAlignment(t *testing.T) {
	s := mustState(t, 3, 8)
	path := []int{0, 1, 2}
	if err := s.Reserve(7, path, []int{2}); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	// Contention-free alignment: link 0 slot 2, link 1 slot 3, link 2 slot 4.
	if s.Owner(0, 2) != 7 || s.Owner(1, 3) != 7 || s.Owner(2, 4) != 7 {
		t.Error("aligned slots not owned")
	}
	if s.Owner(0, 3) != Free || s.Owner(1, 2) != Free {
		t.Error("unrelated slots disturbed")
	}
	if s.FreeSlots(0) != 7 {
		t.Errorf("link 0 free = %d, want 7", s.FreeSlots(0))
	}
}

func TestReserveWrapAround(t *testing.T) {
	s := mustState(t, 2, 4)
	path := []int{0, 1}
	if err := s.Reserve(1, path, []int{3}); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	// Slot 3 on link 0 wraps to slot 0 on link 1.
	if s.Owner(1, 0) != 1 {
		t.Error("wrap-around slot not reserved")
	}
}

func TestReserveConflicts(t *testing.T) {
	s := mustState(t, 2, 4)
	if err := s.Reserve(1, []int{0, 1}, []int{0}); err != nil {
		t.Fatal(err)
	}
	// Same start on overlapping path must fail.
	if err := s.Reserve(2, []int{0}, []int{0}); err == nil {
		t.Error("conflicting reservation accepted")
	}
	// Flow 1 holds link 0 slot 0 and, via alignment, link 1 slot 1. A new
	// single-link reservation on link 1 starting at slot 1 must collide.
	if err := s.Reserve(2, []int{1}, []int{1}); err == nil {
		t.Error("second-hop collision accepted")
	}
	// Invalid owner and out-of-range starts.
	if err := s.Reserve(-1, []int{0}, []int{0}); err == nil {
		t.Error("negative owner accepted")
	}
	if err := s.Reserve(3, []int{0}, []int{9}); err == nil {
		t.Error("out-of-range start accepted")
	}
}

func TestReleaseOnlyOwn(t *testing.T) {
	s := mustState(t, 1, 4)
	if err := s.Reserve(1, []int{0}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Reserve(2, []int{0}, []int{1}); err != nil {
		t.Fatal(err)
	}
	// Releasing flow 1's slot with flow 2's token must not free it.
	s.Release(2, []int{0}, []int{0})
	if s.Owner(0, 0) != 1 {
		t.Error("Release freed a slot it did not own")
	}
	s.Release(1, []int{0}, []int{0})
	if s.Owner(0, 0) != Free {
		t.Error("Release failed to free owned slot")
	}
	// Out-of-range starts are ignored.
	s.Release(2, []int{0}, []int{-3, 99})
	if s.Owner(0, 1) != 2 {
		t.Error("Release with junk starts disturbed state")
	}
}

func TestAvailableStarts(t *testing.T) {
	s := mustState(t, 2, 4)
	if got := s.AvailableStarts(nil); got != nil {
		t.Errorf("empty path starts = %v", got)
	}
	if got := s.AvailableStarts([]int{0, 1}); len(got) != 4 {
		t.Errorf("fresh table starts = %v, want all 4", got)
	}
	if err := s.Reserve(5, []int{0, 1}, []int{1}); err != nil {
		t.Fatal(err)
	}
	got := s.AvailableStarts([]int{0, 1})
	if !reflect.DeepEqual(got, []int{0, 2, 3}) {
		t.Errorf("starts after reservation = %v, want [0 2 3]", got)
	}
}

func TestFindAlignedSpacing(t *testing.T) {
	s := mustState(t, 1, 8)
	starts, ok := s.FindAligned([]int{0}, 2)
	if !ok || len(starts) != 2 {
		t.Fatalf("FindAligned = %v,%v", starts, ok)
	}
	// Two slots on an empty table of 8 should be spread ~4 apart.
	if MaxGap(starts, 8) > 4 {
		t.Errorf("starts %v poorly spread: max gap %d", starts, MaxGap(starts, 8))
	}
}

func TestFindAlignedExactAndFail(t *testing.T) {
	s := mustState(t, 1, 4)
	if err := s.Reserve(1, []int{0}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	starts, ok := s.FindAligned([]int{0}, 2)
	if !ok || !reflect.DeepEqual(starts, []int{2, 3}) {
		t.Errorf("exact-fit FindAligned = %v,%v", starts, ok)
	}
	if _, ok := s.FindAligned([]int{0}, 3); ok {
		t.Error("FindAligned found more slots than free")
	}
	if _, ok := s.FindAligned([]int{0}, 0); ok {
		t.Error("n=0 should fail")
	}
	if _, ok := s.FindAligned(nil, 1); ok {
		t.Error("empty path should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := mustState(t, 1, 4)
	if err := s.Reserve(1, []int{0}, []int{0}); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if err := c.Reserve(2, []int{0}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if s.Owner(0, 1) != Free {
		t.Error("Clone shares backing storage")
	}
	if c.Owner(0, 0) != 1 {
		t.Error("Clone lost existing reservation")
	}
}

func TestMaxGap(t *testing.T) {
	cases := []struct {
		starts []int
		slots  int
		want   int
	}{
		{nil, 8, 8},
		{[]int{3}, 8, 7},
		{[]int{0, 4}, 8, 3},
		{[]int{0, 1, 2, 3}, 4, 0},
		{[]int{0, 2}, 8, 5},
		{[]int{7, 0}, 8, 6},
	}
	for _, tc := range cases {
		if got := MaxGap(tc.starts, tc.slots); got != tc.want {
			t.Errorf("MaxGap(%v,%d) = %d, want %d", tc.starts, tc.slots, got, tc.want)
		}
	}
}

func TestWorstCaseLatencySlots(t *testing.T) {
	// One slot of 8, path of 3 hops: wait up to 7, plus 3 hops, plus the
	// serialization slot = 11.
	if got := WorstCaseLatencySlots([]int{0}, 3, 8); got != 11 {
		t.Errorf("latency = %d, want 11", got)
	}
	// Fully reserved table: no waiting.
	if got := WorstCaseLatencySlots([]int{0, 1, 2, 3}, 2, 4); got != 3 {
		t.Errorf("latency = %d, want 3", got)
	}
}

func TestSlotsNeeded(t *testing.T) {
	cases := []struct {
		bw, slotBW float64
		want       int
	}{
		{100, 31.25, 4}, // 3.2 slots -> 4
		{31.25, 31.25, 1},
		{62.5, 31.25, 2},
		{0, 31.25, 0},
		{-5, 31.25, 0},
		{10, 0, 0},
		{1, 31.25, 1},
	}
	for _, tc := range cases {
		if got := SlotsNeeded(tc.bw, tc.slotBW); got != tc.want {
			t.Errorf("SlotsNeeded(%v,%v) = %d, want %d", tc.bw, tc.slotBW, got, tc.want)
		}
	}
}

// Property: Reserve then Release restores the exact prior state, and
// reservations never overlap.
func TestReserveReleaseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		links := 2 + rng.Intn(6)
		slots := 4 + rng.Intn(28)
		s, err := NewState(links, slots)
		if err != nil {
			return false
		}
		type res struct {
			owner  int32
			path   []int
			starts []int
		}
		var made []res
		for owner := int32(0); owner < 6; owner++ {
			plen := 1 + rng.Intn(links)
			path := rng.Perm(links)[:plen]
			n := 1 + rng.Intn(3)
			starts, ok := s.FindAligned(path, n)
			if !ok {
				continue
			}
			if err := s.Reserve(owner, path, starts); err != nil {
				return false // FindAligned result must always be reservable
			}
			made = append(made, res{owner, path, starts})
		}
		// No slot has two owners (trivially true by representation) and every
		// reservation's slots are correctly owned.
		for _, r := range made {
			for _, st := range r.starts {
				for h, link := range r.path {
					if s.Owner(link, st+h) != r.owner {
						return false
					}
				}
			}
		}
		// Release everything; state must be fully free.
		for _, r := range made {
			s.Release(r.owner, r.path, r.starts)
		}
		for l := 0; l < links; l++ {
			if s.FreeSlots(l) != slots {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FindAligned returns sorted, distinct, in-range starts and the
// count requested.
func TestFindAlignedShapeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slots := 4 + rng.Intn(60)
		s, err := NewState(3, slots)
		if err != nil {
			return false
		}
		// Pre-occupy random slots.
		for i := 0; i < rng.Intn(slots); i++ {
			st := rng.Intn(slots)
			_ = s.Reserve(99, []int{rng.Intn(3)}, []int{st}) // may fail; fine
		}
		path := []int{0, 1, 2}
		n := 1 + rng.Intn(4)
		starts, ok := s.FindAligned(path, n)
		if !ok {
			return len(s.AvailableStarts(path)) < n
		}
		if len(starts) != n {
			return false
		}
		for i, st := range starts {
			if st < 0 || st >= slots {
				return false
			}
			if i > 0 && starts[i-1] >= st {
				return false
			}
			if !s.startFree(path, st) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// countFree is the O(T) reference implementation of FreeSlots; the
// incremental counter must agree with it after any Reserve/Release/Reset
// sequence.
func countFree(s *State, link int) int {
	n := 0
	for slot := 0; slot < s.Slots(); slot++ {
		if s.Owner(link, slot) == Free {
			n++
		}
	}
	return n
}

func TestFreeSlotsMatchesTableScan(t *testing.T) {
	s, err := NewState(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	path := []int{0, 1, 2}
	starts, ok := s.FindAligned(path, 3)
	if !ok {
		t.Fatal("FindAligned failed on empty state")
	}
	if err := s.Reserve(7, path, starts); err != nil {
		t.Fatal(err)
	}
	path2 := []int{1, 3}
	starts2, ok := s.FindAligned(path2, 2)
	if !ok {
		t.Fatal("second FindAligned failed")
	}
	if err := s.Reserve(8, path2, starts2); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < s.NumLinks(); l++ {
		if got, want := s.FreeSlots(l), countFree(s, l); got != want {
			t.Errorf("after reserve: FreeSlots(%d) = %d, table scan = %d", l, got, want)
		}
	}
	s.Release(7, path, starts)
	for l := 0; l < s.NumLinks(); l++ {
		if got, want := s.FreeSlots(l), countFree(s, l); got != want {
			t.Errorf("after release: FreeSlots(%d) = %d, table scan = %d", l, got, want)
		}
	}
}

func TestResetRestoresNewState(t *testing.T) {
	s, err := NewState(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	path := []int{0, 2}
	starts, ok := s.FindAligned(path, 4)
	if !ok {
		t.Fatal("FindAligned failed")
	}
	if err := s.Reserve(1, path, starts); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	fresh, _ := NewState(3, 6)
	for l := 0; l < s.NumLinks(); l++ {
		if s.FreeSlots(l) != fresh.FreeSlots(l) {
			t.Errorf("link %d: FreeSlots %d after Reset, want %d", l, s.FreeSlots(l), fresh.FreeSlots(l))
		}
		for slot := 0; slot < s.Slots(); slot++ {
			if s.Owner(l, slot) != Free {
				t.Errorf("link %d slot %d not free after Reset", l, slot)
			}
		}
	}
}

func TestCloneCopiesFreeCounts(t *testing.T) {
	s, _ := NewState(2, 4)
	path := []int{0}
	starts, _ := s.FindAligned(path, 2)
	if err := s.Reserve(3, path, starts); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if c.FreeSlots(0) != s.FreeSlots(0) {
		t.Fatalf("clone FreeSlots(0) = %d, want %d", c.FreeSlots(0), s.FreeSlots(0))
	}
	c.Release(3, path, starts)
	if c.FreeSlots(0) != 4 {
		t.Errorf("clone release: FreeSlots = %d, want 4", c.FreeSlots(0))
	}
	if s.FreeSlots(0) != 2 {
		t.Errorf("original mutated by clone release: FreeSlots = %d, want 2", s.FreeSlots(0))
	}
}
