// Package tdma models the Æthereal-style TDMA slot tables that provide
// guaranteed-throughput (GT) connections. Every link owns a table of T
// slots. A GT flow that holds slot s on the first link of its path uses slot
// (s+1) mod T on the second link, (s+2) mod T on the third, and so on
// (contention-free routing): flits never wait inside the network, so two
// reservations can conflict only if they claim the same (link, slot) pair,
// which allocation forbids.
//
// Reserving n slots on a path grants n/T of the raw link bandwidth. The
// worst-case latency of a flow is the longest wait for its next reserved
// slot (the maximum cyclic gap between reserved slots) plus the pipeline
// traversal of the path.
//
// A State is mutable and not safe for concurrent use; each mapping attempt
// (one engine run, one candidate placement) owns its own States, which is
// how parallel searches — the portfolio engine, the service worker pool —
// stay independent.
package tdma

import (
	"fmt"
	"sort"
)

// Free marks an unowned slot.
const Free int32 = -1

// State holds the slot tables of every link of one NoC configuration. The
// mapper keeps one State per use-case (the paper's key data structure);
// use-cases in one smooth-switching group carry identical reservations.
type State struct {
	numLinks int
	slots    int
	tables   []int32 // numLinks * slots, row-major; Free or owner token
}

// NewState creates tables of `slots` slots for numLinks links, all free.
func NewState(numLinks, slots int) (*State, error) {
	if numLinks < 0 {
		return nil, fmt.Errorf("tdma: negative link count %d", numLinks)
	}
	if slots < 1 {
		return nil, fmt.Errorf("tdma: slot table size %d invalid", slots)
	}
	s := &State{numLinks: numLinks, slots: slots, tables: make([]int32, numLinks*slots)}
	for i := range s.tables {
		s.tables[i] = Free
	}
	return s, nil
}

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	c := &State{numLinks: s.numLinks, slots: s.slots, tables: make([]int32, len(s.tables))}
	copy(c.tables, s.tables)
	return c
}

// NumLinks reports how many links the state covers.
func (s *State) NumLinks() int { return s.numLinks }

// Slots reports the slot-table size T.
func (s *State) Slots() int { return s.slots }

// Owner returns the owner token of (link, slot), or Free.
func (s *State) Owner(link, slot int) int32 {
	return s.tables[link*s.slots+((slot%s.slots+s.slots)%s.slots)]
}

// FreeSlots counts the free slots of a link's table.
func (s *State) FreeSlots(link int) int {
	n := 0
	base := link * s.slots
	for i := 0; i < s.slots; i++ {
		if s.tables[base+i] == Free {
			n++
		}
	}
	return n
}

// Utilization returns the fraction of reserved slots on a link in [0,1].
func (s *State) Utilization(link int) float64 {
	return 1 - float64(s.FreeSlots(link))/float64(s.slots)
}

// StartFree reports whether starting slot st is free along the whole path
// under contention-free alignment. The mapper uses it to intersect
// availability across the states of a smooth-switching group, whose members
// must carry identical reservations.
func (s *State) StartFree(path []int, st int) bool {
	return s.startFree(path, (st%s.slots+s.slots)%s.slots)
}

// startFree reports whether starting slot st is free along the whole path
// under contention-free alignment: link path[h] must be free at (st+h) mod T.
func (s *State) startFree(path []int, st int) bool {
	for h, link := range path {
		if s.tables[link*s.slots+(st+h)%s.slots] != Free {
			return false
		}
	}
	return true
}

// AvailableStarts lists the starting slots (on the first link) from which a
// flit could traverse the whole path without conflict.
func (s *State) AvailableStarts(path []int) []int {
	if len(path) == 0 {
		return nil
	}
	var starts []int
	for st := 0; st < s.slots; st++ {
		if s.startFree(path, st) {
			starts = append(starts, st)
		}
	}
	return starts
}

// FindAligned selects n starting slots for a reservation along path,
// spreading them as evenly as possible around the table to minimize the
// worst-case waiting gap. It returns nil, false if fewer than n aligned
// starts exist. The path must be non-empty.
func (s *State) FindAligned(path []int, n int) ([]int, bool) {
	if n <= 0 || len(path) == 0 {
		return nil, false
	}
	avail := s.AvailableStarts(path)
	if len(avail) < n {
		return nil, false
	}
	if len(avail) == n {
		return avail, true
	}
	// Greedy even spacing: for each ideal position i*T/n choose the nearest
	// unused available slot (cyclically).
	chosen := make([]int, 0, n)
	used := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		target := i * s.slots / n
		best, bestDist := -1, s.slots+1
		for _, a := range avail {
			if used[a] {
				continue
			}
			d := cyclicDist(a, target, s.slots)
			if d < bestDist || (d == bestDist && a < best) {
				best, bestDist = a, d
			}
		}
		used[best] = true
		chosen = append(chosen, best)
	}
	sort.Ints(chosen)
	return chosen, true
}

// Reserve claims the aligned slots for owner along path. The starts must be
// free (as returned by FindAligned); otherwise an error is returned and the
// state is left unchanged.
func (s *State) Reserve(owner int32, path []int, starts []int) error {
	if owner < 0 {
		return fmt.Errorf("tdma: owner token %d must be non-negative", owner)
	}
	for _, st := range starts {
		if st < 0 || st >= s.slots {
			return fmt.Errorf("tdma: start slot %d out of range [0,%d)", st, s.slots)
		}
		if !s.startFree(path, st) {
			return fmt.Errorf("tdma: start slot %d not free along path", st)
		}
	}
	for _, st := range starts {
		for h, link := range path {
			s.tables[link*s.slots+(st+h)%s.slots] = owner
		}
	}
	return nil
}

// Release frees the aligned slots previously reserved by owner. Slots not
// owned by owner are left untouched, so Release is safe to call on partially
// rolled-back reservations.
func (s *State) Release(owner int32, path []int, starts []int) {
	for _, st := range starts {
		if st < 0 || st >= s.slots {
			continue
		}
		for h, link := range path {
			idx := link*s.slots + (st+h)%s.slots
			if s.tables[idx] == owner {
				s.tables[idx] = Free
			}
		}
	}
}

// Reservation records a granted slot allocation: the path and the starting
// slots on its first link.
type Reservation struct {
	Owner  int32
	Path   []int // link IDs in traversal order
	Starts []int // starting slots on Path[0], sorted
}

// MaxGap returns the worst-case number of whole slots a flit waits at the NI
// for the next reserved start, i.e. the largest cyclic gap between
// consecutive reserved starts minus one. A single reserved slot yields T-1;
// an empty reservation yields T (nothing is ever sent).
func MaxGap(starts []int, slots int) int {
	if len(starts) == 0 {
		return slots
	}
	sorted := append([]int(nil), starts...)
	sort.Ints(sorted)
	max := 0
	for i := range sorted {
		next := sorted[(i+1)%len(sorted)]
		gap := next - sorted[i]
		if gap <= 0 {
			gap += slots
		}
		if gap-1 > max {
			max = gap - 1 // slots of waiting strictly between consecutive starts
		}
	}
	return max
}

// WorstCaseLatencySlots bounds a GT flow's packet latency in slot periods:
// the worst wait for the next reserved start plus one slot per hop of the
// path plus the slot in which the flit is serialized.
func WorstCaseLatencySlots(starts []int, pathLen, slots int) int {
	return MaxGap(starts, slots) + pathLen + 1
}

// SlotsNeeded returns how many slots a flow of bandwidthMBs requires when
// each slot grants slotBandwidthMBs.
func SlotsNeeded(bandwidthMBs, slotBandwidthMBs float64) int {
	if bandwidthMBs <= 0 || slotBandwidthMBs <= 0 {
		return 0
	}
	n := int(bandwidthMBs / slotBandwidthMBs)
	if float64(n)*slotBandwidthMBs < bandwidthMBs-1e-9 {
		n++
	}
	return n
}

func cyclicDist(a, b, m int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if m-d < d {
		d = m - d
	}
	return d
}
