// Package tdma models the Æthereal-style TDMA slot tables that provide
// guaranteed-throughput (GT) connections. Every link owns a table of T
// slots. A GT flow that holds slot s on the first link of its path uses slot
// (s+1) mod T on the second link, (s+2) mod T on the third, and so on
// (contention-free routing): flits never wait inside the network, so two
// reservations can conflict only if they claim the same (link, slot) pair,
// which allocation forbids.
//
// Reserving n slots on a path grants n/T of the raw link bandwidth. The
// worst-case latency of a flow is the longest wait for its next reserved
// slot (the maximum cyclic gap between reserved slots) plus the pipeline
// traversal of the path.
//
// A State is mutable and not safe for concurrent use; each mapping attempt
// (one engine run, one candidate placement) owns its own States, which is
// how parallel searches — the portfolio engine, the service worker pool —
// stay independent.
package tdma

import (
	"fmt"
	"math/bits"
	"sort"
)

// Free marks an unowned slot.
const Free int32 = -1

// State holds the slot tables of every link of one NoC configuration. The
// mapper keeps one State per use-case (the paper's key data structure);
// use-cases in one smooth-switching group carry identical reservations.
type State struct {
	numLinks int
	slots    int
	tables   []int32 // numLinks * slots, row-major; Free or owner token
	free     []int   // per-link free-slot count, kept in sync by Reserve/Release
	// masks holds one free-slot bitmask per link when the table fits a
	// machine word (slots <= 64, which covers every configuration the
	// evaluation uses): bit s is set iff slot s is free. Alignment queries
	// — "is start st free on every link of the path with the
	// contention-free shift applied" — then collapse to one rotate-and-AND
	// per link instead of a per-slot scan. Nil for larger tables, where the
	// scan fallback applies.
	masks []uint64
}

// fullMask returns the all-free mask for a table of `slots` bits.
func fullMask(slots int) uint64 {
	if slots >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << slots) - 1
}

// rotR cyclically rotates a slots-bit mask right by h: bit i of the result
// is bit (i+h) mod slots of m.
func rotR(m uint64, h, slots int) uint64 {
	h %= slots
	if h == 0 {
		return m
	}
	return ((m >> h) | (m << (slots - h))) & fullMask(slots)
}

// NewState creates tables of `slots` slots for numLinks links, all free.
func NewState(numLinks, slots int) (*State, error) {
	if numLinks < 0 {
		return nil, fmt.Errorf("tdma: negative link count %d", numLinks)
	}
	if slots < 1 {
		return nil, fmt.Errorf("tdma: slot table size %d invalid", slots)
	}
	s := &State{numLinks: numLinks, slots: slots,
		tables: make([]int32, numLinks*slots), free: make([]int, numLinks)}
	for i := range s.tables {
		s.tables[i] = Free
	}
	for i := range s.free {
		s.free[i] = slots
	}
	if slots <= 64 {
		s.masks = make([]uint64, numLinks)
		for i := range s.masks {
			s.masks[i] = fullMask(slots)
		}
	}
	return s, nil
}

// Clone returns an independent copy of the state.
func (s *State) Clone() *State {
	c := &State{numLinks: s.numLinks, slots: s.slots,
		tables: make([]int32, len(s.tables)), free: make([]int, len(s.free))}
	copy(c.tables, s.tables)
	copy(c.free, s.free)
	if s.masks != nil {
		c.masks = append([]uint64(nil), s.masks...)
	}
	return c
}

// Reset frees every slot of every link, returning the state to its
// NewState condition without reallocating. Evaluation arenas (core.Evaluator)
// reuse one State per group across many candidate placements this way.
func (s *State) Reset() {
	for i := range s.tables {
		s.tables[i] = Free
	}
	for i := range s.free {
		s.free[i] = s.slots
	}
	for i := range s.masks {
		s.masks[i] = fullMask(s.slots)
	}
}

// NumLinks reports how many links the state covers.
func (s *State) NumLinks() int { return s.numLinks }

// Slots reports the slot-table size T.
func (s *State) Slots() int { return s.slots }

// Owner returns the owner token of (link, slot), or Free.
func (s *State) Owner(link, slot int) int32 {
	return s.tables[link*s.slots+((slot%s.slots+s.slots)%s.slots)]
}

// FreeSlots counts the free slots of a link's table. It is O(1): the count
// is maintained incrementally by Reserve/Release, which keeps the per-link
// cost query of path selection (route.LinkCost, evaluated once per arc per
// Dijkstra relaxation) independent of the slot-table size.
func (s *State) FreeSlots(link int) int {
	return s.free[link]
}

// Utilization returns the fraction of reserved slots on a link in [0,1].
func (s *State) Utilization(link int) float64 {
	return 1 - float64(s.FreeSlots(link))/float64(s.slots)
}

// StartFree reports whether starting slot st is free along the whole path
// under contention-free alignment. The mapper uses it to intersect
// availability across the states of a smooth-switching group, whose members
// must carry identical reservations.
func (s *State) StartFree(path []int, st int) bool {
	return s.startFree(path, (st%s.slots+s.slots)%s.slots)
}

// startFree reports whether starting slot st is free along the whole path
// under contention-free alignment: link path[h] must be free at (st+h) mod T.
func (s *State) startFree(path []int, st int) bool {
	if s.masks != nil {
		for h, link := range path {
			if s.masks[link]>>((st+h)%s.slots)&1 == 0 {
				return false
			}
		}
		return true
	}
	for h, link := range path {
		if s.tables[link*s.slots+(st+h)%s.slots] != Free {
			return false
		}
	}
	return true
}

// startMask intersects the free masks of the path's links with the
// contention-free shift applied: bit st of the result is set iff starting
// slot st is free along the whole path.
func (s *State) startMask(path []int) uint64 {
	acc := fullMask(s.slots)
	for h, link := range path {
		acc &= rotR(s.masks[link], h, s.slots)
		if acc == 0 {
			break
		}
	}
	return acc
}

// AvailableStarts lists the starting slots (on the first link) from which a
// flit could traverse the whole path without conflict.
func (s *State) AvailableStarts(path []int) []int {
	if len(path) == 0 {
		return nil
	}
	if s.masks != nil {
		acc := s.startMask(path)
		if acc == 0 {
			return nil
		}
		starts := make([]int, 0, bits.OnesCount64(acc))
		for a := acc; a != 0; a &= a - 1 {
			starts = append(starts, bits.TrailingZeros64(a))
		}
		return starts
	}
	var starts []int
	for st := 0; st < s.slots; st++ {
		if s.startFree(path, st) {
			starts = append(starts, st)
		}
	}
	return starts
}

// FindAligned selects n starting slots for a reservation along path,
// spreading them as evenly as possible around the table to minimize the
// worst-case waiting gap. It returns nil, false if fewer than n aligned
// starts exist. The path must be non-empty.
func (s *State) FindAligned(path []int, n int) ([]int, bool) {
	return s.FindAlignedInto(path, n, nil)
}

// FindAlignedInto is FindAligned writing the chosen starts into buf
// (append semantics from buf[:0]; pass nil to allocate). With a word-sized
// table (slots <= 64) a successful probe performs no heap allocation beyond
// buf's one-time growth — the hot evaluation path reuses one buffer per
// record. The returned starts are sorted ascending, identical to
// FindAligned's.
func (s *State) FindAlignedInto(path []int, n int, buf []int) ([]int, bool) {
	if n <= 0 || len(path) == 0 {
		return nil, false
	}
	if s.masks != nil {
		// The popcount decides feasibility before any slot is materialized —
		// on loaded fabrics most alignment probes fail, and a failed probe
		// costs one rotate-AND per link.
		acc := s.startMask(path)
		count := bits.OnesCount64(acc)
		if count < n {
			return nil, false
		}
		chosen := buf[:0]
		if count == n {
			for a := acc; a != 0; a &= a - 1 {
				chosen = append(chosen, bits.TrailingZeros64(a))
			}
			return chosen, true
		}
		// Greedy even spacing: for each ideal position i*T/n choose the
		// nearest unused available slot (cyclically), scanning the mask's set
		// bits ascending — the same order the avail slice used to impose.
		var used uint64
		for i := 0; i < n; i++ {
			target := i * s.slots / n
			best, bestDist := -1, s.slots+1
			for a := acc &^ used; a != 0; a &= a - 1 {
				cand := bits.TrailingZeros64(a)
				d := cyclicDist(cand, target, s.slots)
				if d < bestDist || (d == bestDist && cand < best) {
					best, bestDist = cand, d
				}
			}
			used |= uint64(1) << best
			chosen = append(chosen, best)
		}
		// Insertion sort: n is small and the slice is nearly sorted.
		for i := 1; i < len(chosen); i++ {
			for j := i; j > 0 && chosen[j] < chosen[j-1]; j-- {
				chosen[j], chosen[j-1] = chosen[j-1], chosen[j]
			}
		}
		return chosen, true
	}
	avail := s.AvailableStarts(path)
	if len(avail) < n {
		return nil, false
	}
	if len(avail) == n {
		return append(buf[:0], avail...), true
	}
	// Large-table fallback (slots > 64): correctness over allocation
	// discipline.
	chosen := buf[:0]
	{
		used := make(map[int]bool, n)
		for i := 0; i < n; i++ {
			target := i * s.slots / n
			best, bestDist := -1, s.slots+1
			for _, a := range avail {
				if used[a] {
					continue
				}
				d := cyclicDist(a, target, s.slots)
				if d < bestDist || (d == bestDist && a < best) {
					best, bestDist = a, d
				}
			}
			used[best] = true
			chosen = append(chosen, best)
		}
	}
	sort.Ints(chosen)
	return chosen, true
}

// Reserve claims the aligned slots for owner along path. The starts must be
// free (as returned by FindAligned); otherwise an error is returned and the
// state is left unchanged.
func (s *State) Reserve(owner int32, path []int, starts []int) error {
	if owner < 0 {
		return fmt.Errorf("tdma: owner token %d must be non-negative", owner)
	}
	for _, st := range starts {
		if st < 0 || st >= s.slots {
			return fmt.Errorf("tdma: start slot %d out of range [0,%d)", st, s.slots)
		}
		if !s.startFree(path, st) {
			return fmt.Errorf("tdma: start slot %d not free along path", st)
		}
	}
	for _, st := range starts {
		for h, link := range path {
			slot := (st + h) % s.slots
			idx := link*s.slots + slot
			if s.tables[idx] == Free {
				s.tables[idx] = owner
				s.free[link]--
				if s.masks != nil {
					s.masks[link] &^= uint64(1) << slot
				}
			}
		}
	}
	return nil
}

// Release frees the aligned slots previously reserved by owner. Slots not
// owned by owner are left untouched, so Release is safe to call on partially
// rolled-back reservations.
func (s *State) Release(owner int32, path []int, starts []int) {
	for _, st := range starts {
		if st < 0 || st >= s.slots {
			continue
		}
		for h, link := range path {
			slot := (st + h) % s.slots
			idx := link*s.slots + slot
			if s.tables[idx] == owner {
				s.tables[idx] = Free
				s.free[link]++
				if s.masks != nil {
					s.masks[link] |= uint64(1) << slot
				}
			}
		}
	}
}

// Reservation records a granted slot allocation: the path and the starting
// slots on its first link.
type Reservation struct {
	Owner  int32
	Path   []int // link IDs in traversal order
	Starts []int // starting slots on Path[0], sorted
}

// MaxGap returns the worst-case number of whole slots a flit waits at the NI
// for the next reserved start, i.e. the largest cyclic gap between
// consecutive reserved starts minus one. A single reserved slot yields T-1;
// an empty reservation yields T (nothing is ever sent).
func MaxGap(starts []int, slots int) int {
	if len(starts) == 0 {
		return slots
	}
	sorted := append([]int(nil), starts...)
	sort.Ints(sorted)
	return maxGapSorted(sorted, slots)
}

// MaxGapSorted is MaxGap for starts already sorted ascending (the form
// FindAligned returns), skipping the defensive copy-and-sort.
func MaxGapSorted(starts []int, slots int) int {
	if len(starts) == 0 {
		return slots
	}
	return maxGapSorted(starts, slots)
}

func maxGapSorted(sorted []int, slots int) int {
	max := 0
	for i := range sorted {
		next := sorted[(i+1)%len(sorted)]
		gap := next - sorted[i]
		if gap <= 0 {
			gap += slots
		}
		if gap-1 > max {
			max = gap - 1 // slots of waiting strictly between consecutive starts
		}
	}
	return max
}

// WorstCaseLatencySlots bounds a GT flow's packet latency in slot periods:
// the worst wait for the next reserved start plus one slot per hop of the
// path plus the slot in which the flit is serialized.
func WorstCaseLatencySlots(starts []int, pathLen, slots int) int {
	return MaxGap(starts, slots) + pathLen + 1
}

// WorstCaseLatencySlotsSorted is WorstCaseLatencySlots for starts already
// sorted ascending.
func WorstCaseLatencySlotsSorted(starts []int, pathLen, slots int) int {
	return MaxGapSorted(starts, slots) + pathLen + 1
}

// MinFree returns the smallest free-slot count over all links — the
// saturation the worst link has reached. It scans the incrementally
// maintained counters, so sessions derive the max-utilization statistic
// without walking slot tables.
func (s *State) MinFree() int {
	min := s.slots
	for _, f := range s.free {
		if f < min {
			min = f
		}
	}
	return min
}

// CopyFrom overwrites this state with src's contents without allocating.
// The two states must have identical shape (same link count and table size).
func (s *State) CopyFrom(src *State) error {
	if s.numLinks != src.numLinks || s.slots != src.slots {
		return fmt.Errorf("tdma: copy between mismatched states (%d/%d links, %d/%d slots)",
			s.numLinks, src.numLinks, s.slots, src.slots)
	}
	copy(s.tables, src.tables)
	copy(s.free, src.free)
	copy(s.masks, src.masks)
	return nil
}

// SlotsNeeded returns how many slots a flow of bandwidthMBs requires when
// each slot grants slotBandwidthMBs.
func SlotsNeeded(bandwidthMBs, slotBandwidthMBs float64) int {
	if bandwidthMBs <= 0 || slotBandwidthMBs <= 0 {
		return 0
	}
	n := int(bandwidthMBs / slotBandwidthMBs)
	if float64(n)*slotBandwidthMBs < bandwidthMBs-1e-9 {
		n++
	}
	return n
}

func cyclicDist(a, b, m int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if m-d < d {
		d = m - d
	}
	return d
}
