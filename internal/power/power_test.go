package power

import (
	"math"
	"testing"

	"nocmap/internal/core"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

func TestDynamicQuadratic(t *testing.T) {
	if got := Dynamic(500, 500); got != 1 {
		t.Errorf("Dynamic(500,500) = %v", got)
	}
	if got := Dynamic(250, 500); got != 0.25 {
		t.Errorf("Dynamic(250,500) = %v, want 0.25 (P ∝ f²)", got)
	}
	if got := Dynamic(100, 0); got != 0 {
		t.Errorf("zero reference should yield 0, got %v", got)
	}
}

func TestDVSSavings(t *testing.T) {
	if got := DVSSavings(nil); got != 0 {
		t.Errorf("empty savings = %v", got)
	}
	// All use-cases at the max frequency: no savings.
	if got := DVSSavings([]float64{500, 500}); got != 0 {
		t.Errorf("uniform savings = %v, want 0", got)
	}
	// Half the use-cases at half frequency: 1 - (1 + 0.25)/2 = 0.375.
	if got := DVSSavings([]float64{500, 250}); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("savings = %v, want 0.375", got)
	}
	if got := DVSSavings([]float64{0, 0}); got != 0 {
		t.Errorf("all-zero savings = %v", got)
	}
}

func TestGridValidate(t *testing.T) {
	bad := []Grid{
		{LoMHz: 0, HiMHz: 100, StepMHz: 10},
		{LoMHz: 200, HiMHz: 100, StepMHz: 10},
		{LoMHz: 100, HiMHz: 200, StepMHz: 0},
	}
	for _, g := range bad {
		if _, err := MinFeasibleFrequency(nil, 0, nil, g); err == nil {
			t.Errorf("grid %+v accepted", g)
		}
	}
}

func fixture(t *testing.T) (*core.Mapping, int) {
	t.Helper()
	light := &traffic.UseCase{Name: "light", Flows: []traffic.Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 60},
	}}
	heavy := &traffic.UseCase{Name: "heavy", Flows: []traffic.Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 900},
		{Src: 2, Dst: 1, BandwidthMBs: 700},
	}}
	d := &traffic.Design{Name: "d", Cores: traffic.MakeCores(3),
		UseCases: []*traffic.UseCase{light, heavy}}
	pr, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Map(pr, 3, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return res.Mapping, 3
}

func TestPerUseCaseFrequencies(t *testing.T) {
	m, n := fixture(t)
	freqs, err := PerUseCaseFrequencies(m, n, Grid{LoMHz: 25, HiMHz: 1000, StepMHz: 25})
	if err != nil {
		t.Fatalf("PerUseCaseFrequencies: %v", err)
	}
	if len(freqs) != 2 {
		t.Fatalf("freqs = %v", freqs)
	}
	if freqs[0] >= freqs[1] {
		t.Errorf("light use-case needs %v MHz >= heavy %v MHz", freqs[0], freqs[1])
	}
	// The light use-case (60 MB/s on one flow) should run far below 500 MHz.
	if freqs[0] > 200 {
		t.Errorf("light use-case min frequency = %v MHz, expected <= 200", freqs[0])
	}
	// Savings must be positive given the asymmetry.
	if s := DVSSavings(freqs); s <= 0.2 {
		t.Errorf("savings = %v, want > 0.2", s)
	}
}

func TestMinFeasibleFrequencyMonotoneFeasibility(t *testing.T) {
	m, n := fixture(t)
	g := Grid{LoMHz: 25, HiMHz: 1000, StepMHz: 25}
	heavy := m.Prep.UseCases[1]
	fmin, err := MinFeasibleFrequency(soloPrep(heavy), n, m, g)
	if err != nil {
		t.Fatal(err)
	}
	// Feasible exactly at and above the returned frequency.
	if !feasibleAt(soloPrep(heavy), n, m, fmin) {
		t.Error("returned frequency not feasible")
	}
	if fmin > g.LoMHz && feasibleAt(soloPrep(heavy), n, m, fmin-g.StepMHz) {
		t.Error("frequency below minimum is feasible — search not tight")
	}
}

func TestMinFeasibleFrequencyInfeasible(t *testing.T) {
	m, n := fixture(t)
	mega := &traffic.UseCase{Name: "mega", Flows: []traffic.Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 1e6},
	}}
	if _, err := MinFeasibleFrequency(soloPrep(mega), n, m, Grid{LoMHz: 100, HiMHz: 400, StepMHz: 100}); err == nil {
		t.Error("impossible demand accepted")
	}
}

func TestWatts(t *testing.T) {
	if got := Watts(4, 500); math.Abs(got-0.04) > 1e-12 {
		t.Errorf("Watts(4,500) = %v, want 0.04", got)
	}
	if Watts(4, 1000) != 4*Watts(1, 1000) {
		t.Error("Watts not linear in switches")
	}
	if Watts(1, 1000) != 0.04 {
		t.Errorf("Watts(1,1000) = %v, want 0.04 (quadratic in f)", Watts(1, 1000))
	}
}
