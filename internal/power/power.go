// Package power models NoC power consumption and the dynamic voltage and
// frequency scaling (DVS/DFS) evaluation of Section 6.4. Following the
// paper's conservative scaling model ([24]), the square of the supply
// voltage scales linearly with frequency, so dynamic power P ∝ f·V² ∝ f².
//
// When the SoC switches use-cases and the switching time is large (hundreds
// of microseconds to milliseconds), the NoC frequency and voltage can be
// re-scaled to the minimum that still satisfies the running use-case's
// constraints on the already-fabricated topology and placement. The package
// finds those per-use-case minimum frequencies by re-running the
// configuration phase (core.ConfigureFixed) over a frequency grid.
package power

import (
	"fmt"

	"nocmap/internal/core"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

// Grid is the frequency search grid in MHz.
type Grid struct {
	LoMHz   float64
	HiMHz   float64
	StepMHz float64
}

// DefaultGrid spans 25 MHz to 2 GHz in 25 MHz steps.
func DefaultGrid() Grid { return Grid{LoMHz: 25, HiMHz: 2000, StepMHz: 25} }

func (g Grid) validate() error {
	if g.LoMHz <= 0 || g.HiMHz < g.LoMHz || g.StepMHz <= 0 {
		return fmt.Errorf("power: invalid grid %+v", g)
	}
	return nil
}

// steps returns the grid points, ascending.
func (g Grid) steps() []float64 {
	var out []float64
	for f := g.LoMHz; f <= g.HiMHz+1e-9; f += g.StepMHz {
		out = append(out, f)
	}
	return out
}

// feasibleAt reports whether the use-cases can be configured on the fixed
// mapping at frequency f.
func feasibleAt(prep *usecase.Prepared, numCores int, m *core.Mapping, f float64) bool {
	_, err := core.ConfigureFixed(prep, numCores, m.Topology, m.CoreSwitch, m.CoreNI, m.Params.WithFrequency(f))
	return err == nil
}

// MinFeasibleFrequency binary-searches the grid for the lowest frequency at
// which the given use-cases can be configured on the fixed mapping.
// Feasibility is monotone in frequency (higher frequency raises per-slot
// bandwidth and loosens latency budgets).
func MinFeasibleFrequency(prep *usecase.Prepared, numCores int, m *core.Mapping, g Grid) (float64, error) {
	if err := g.validate(); err != nil {
		return 0, err
	}
	pts := g.steps()
	lo, hi := 0, len(pts)-1
	if !feasibleAt(prep, numCores, m, pts[hi]) {
		return 0, fmt.Errorf("power: infeasible even at %.0f MHz", pts[hi])
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if feasibleAt(prep, numCores, m, pts[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return pts[lo], nil
}

// soloPrep wraps one use-case as a standalone prepared set.
func soloPrep(u *traffic.UseCase) *usecase.Prepared {
	return &usecase.Prepared{
		UseCases:    []*traffic.UseCase{u},
		Groups:      [][]int{{0}},
		GroupOf:     []int{0},
		NumOriginal: 1,
	}
}

// PerUseCaseFrequencies finds, for every use-case of the mapping's design,
// the minimum NoC frequency at which that use-case alone is feasible on the
// fixed topology and placement.
func PerUseCaseFrequencies(m *core.Mapping, numCores int, g Grid) ([]float64, error) {
	out := make([]float64, len(m.Prep.UseCases))
	for i, u := range m.Prep.UseCases {
		f, err := MinFeasibleFrequency(soloPrep(u), numCores, m, g)
		if err != nil {
			return nil, fmt.Errorf("use-case %q: %w", u.Name, err)
		}
		out[i] = f
	}
	return out, nil
}

// Dynamic returns the relative dynamic power at frequency f normalized to
// reference frequency fRef: (f/fRef)² under the conservative V² ∝ f model.
func Dynamic(f, fRef float64) float64 {
	if fRef <= 0 {
		return 0
	}
	r := f / fRef
	return r * r
}

// DVSSavings computes the fractional power saving of per-use-case DVS/DFS
// versus running every use-case at the fixed design frequency (the maximum
// of the per-use-case minima). Use-cases are weighted equally, as in the
// paper's evaluation.
func DVSSavings(freqs []float64) float64 {
	if len(freqs) == 0 {
		return 0
	}
	fmax := 0.0
	for _, f := range freqs {
		if f > fmax {
			fmax = f
		}
	}
	if fmax == 0 {
		return 0
	}
	var sum float64
	for _, f := range freqs {
		sum += Dynamic(f, fmax)
	}
	return 1 - sum/float64(len(freqs))
}

// Watts estimates absolute NoC power for reporting: a switches-only model
// where one 6-port Æthereal-class switch dissipates ≈10 mW at 500 MHz in
// 0.13 µm, scaled by (f/500)². Only relative numbers enter the paper's
// figures; the absolute anchor makes reports readable.
func Watts(switches int, freqMHz float64) float64 {
	const perSwitchAt500 = 0.010 // W
	return float64(switches) * perSwitchAt500 * Dynamic(freqMHz, 500)
}
