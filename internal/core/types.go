// Package core implements the paper's primary contribution: the unified
// multi-use-case mapping and NoC configuration heuristic (Algorithm 2).
//
// The mapper receives the pre-processed use-cases (originals plus generated
// compound modes, partitioned into smooth-switching groups) and searches the
// mesh growth sequence for the smallest topology on which every use-case's
// flows can be placed, routed and granted TDMA slots. The defining property
// of the algorithm — and its advantage over the worst-case baseline of
// reference [25] — is that every use-case keeps its own residual resource
// state: a flow reserved for use-case A does not consume bandwidth visible
// to use-case B, because the network is re-configured when the SoC switches
// between them. Only use-cases within one smooth-switching group share
// reservations, which are then sized by the largest flow in the group.
package core

import (
	"fmt"

	"nocmap/internal/route"
	"nocmap/internal/tdma"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

// Params configure the NoC architecture model and the mapper's search.
type Params struct {
	// LinkWidthBits is the flit width of every link (default 32).
	LinkWidthBits int
	// FreqMHz is the NoC operating frequency (default 500, the frequency the
	// paper fixes for the method comparison).
	FreqMHz float64
	// SlotTableSize is the TDMA table length T of every link (default 64).
	SlotTableSize int
	// SlotCycles is the length of one TDMA slot in clock cycles (default 3,
	// the Æthereal 3-word slot).
	SlotCycles int
	// NIsPerSwitch is how many network interfaces attach to one switch
	// (default 2). Each NI contributes one ingress and one egress link with
	// their own slot tables, so it bounds the bandwidth in and out of the
	// cores of one switch.
	NIsPerSwitch int
	// CoresPerNI is how many cores share one NI (default 4).
	CoresPerNI int
	// MaxMeshDim caps the outer growth loop at MaxMeshDim x MaxMeshDim
	// (default 20, where the paper reports the WC method failing).
	MaxMeshDim int
	// Topology selects the interconnect family the search explores: the
	// growth loop instantiates mesh or torus shapes from it, while a custom
	// spec pins the search to one fixed fabric (default: mesh).
	Topology topology.Spec
	// Cost weights the path-selection objective.
	Cost route.CostParams
	// PlacementCandidates bounds how many candidate switches are examined
	// when placing an unmapped core (default 6).
	PlacementCandidates int

	// DisableMappedPreference turns off Algorithm 2's preference for flows
	// whose endpoints are already mapped (ablation A1).
	DisableMappedPreference bool
	// DisableUnifiedSlots drops TDMA alignment from the inner loop: paths
	// are selected on bandwidth alone and slots are assigned post hoc
	// (ablation A2, approximating a non-unified flow as criticized in §5).
	DisableUnifiedSlots bool
	// Improve enables the placement-refinement pass (extension X1, the
	// vertex-swap exploration the paper cites from [19]).
	Improve bool
	// ImproveIters bounds the refinement pass (default 64 swaps).
	ImproveIters int
}

// DefaultParams returns the architecture defaults used throughout the
// evaluation.
func DefaultParams() Params {
	return Params{
		LinkWidthBits:       32,
		FreqMHz:             500,
		SlotTableSize:       64,
		SlotCycles:          3,
		NIsPerSwitch:        2,
		CoresPerNI:          4,
		MaxMeshDim:          20,
		Topology:            topology.MeshSpec(),
		Cost:                route.DefaultCostParams(),
		PlacementCandidates: 6,
		ImproveIters:        64,
	}
}

// Validate rejects nonsensical parameter combinations.
func (p Params) Validate() error {
	switch {
	case p.LinkWidthBits <= 0:
		return fmt.Errorf("core: link width %d invalid", p.LinkWidthBits)
	case p.FreqMHz <= 0:
		return fmt.Errorf("core: frequency %v invalid", p.FreqMHz)
	case p.SlotTableSize < 2:
		return fmt.Errorf("core: slot table size %d invalid", p.SlotTableSize)
	case p.SlotCycles <= 0:
		return fmt.Errorf("core: slot cycles %d invalid", p.SlotCycles)
	case p.NIsPerSwitch <= 0 || p.CoresPerNI <= 0:
		return fmt.Errorf("core: NI shape %dx%d invalid", p.NIsPerSwitch, p.CoresPerNI)
	case p.MaxMeshDim < 1:
		return fmt.Errorf("core: max mesh dim %d invalid", p.MaxMeshDim)
	case p.PlacementCandidates < 1:
		return fmt.Errorf("core: placement candidates %d invalid", p.PlacementCandidates)
	}
	return p.Topology.Validate()
}

// LinkBandwidthMBs is the raw bandwidth of one link: width/8 bytes per cycle
// at FreqMHz million cycles per second = width/8 * FreqMHz MB/s.
func (p Params) LinkBandwidthMBs() float64 {
	return float64(p.LinkWidthBits) / 8 * p.FreqMHz
}

// SlotBandwidthMBs is the bandwidth granted by one reserved TDMA slot.
func (p Params) SlotBandwidthMBs() float64 {
	return p.LinkBandwidthMBs() / float64(p.SlotTableSize)
}

// CoresPerSwitch is the core-hosting capacity of one switch.
func (p Params) CoresPerSwitch() int { return p.NIsPerSwitch * p.CoresPerNI }

// LatencyBudgetSlots converts a latency constraint in nanoseconds to a
// whole-slot budget at the configured frequency. Zero (unconstrained)
// returns a negative sentinel meaning "no bound".
func (p Params) LatencyBudgetSlots(latencyNS float64) int {
	if latencyNS <= 0 {
		return -1
	}
	cycles := latencyNS * p.FreqMHz / 1000 // ns * cycles/ns
	return int(cycles / float64(p.SlotCycles))
}

// WithFrequency returns a copy of the parameters at a different frequency.
// Slot tables keep their size, so per-slot bandwidth scales with f.
func (p Params) WithFrequency(freqMHz float64) Params {
	p.FreqMHz = freqMHz
	return p
}

// Assignment is one flow's granted resources in one use-case configuration:
// the full path (NI egress link, mesh links, NI ingress link) and the slot
// starts reserved on its first link.
type Assignment struct {
	// Path holds link IDs in traversal order. IDs below the topology's mesh
	// link count are mesh links; the rest are NI links (see Mapping.NILinks).
	Path []int
	// Starts are the reserved starting slots on Path[0], sorted ascending.
	Starts []int
	// SlotCount is the number of reserved slots (len(Starts) when granted).
	SlotCount int
}

// MeshHops counts the mesh links of the path (excludes NI links).
func (a *Assignment) MeshHops(meshLinks int) int {
	n := 0
	for _, l := range a.Path {
		if l < meshLinks {
			n++
		}
	}
	return n
}

// Config is the NoC configuration of one use-case: one assignment per flow,
// keyed by the flow's directed core pair. Use-cases in one smooth-switching
// group have identical assignments for their shared pairs.
type Config struct {
	Assignments map[traffic.PairKey]*Assignment
}

// Mapping is the complete output of the methodology for one design: the
// chosen topology, the shared placement of cores onto switches and NIs, and
// one configuration per use-case.
type Mapping struct {
	Topology *topology.Topology
	Params   Params
	Prep     *usecase.Prepared

	// CoreSwitch maps each core to its switch, or -1 if the core never
	// communicates and was left unattached.
	CoreSwitch []int
	// CoreNI maps each core to its global NI index (switch*NIsPerSwitch+ni),
	// or -1.
	CoreNI []int
	// Configs holds one configuration per use-case, indexed like Prep.UseCases.
	Configs []*Config
}

// MeshLinks returns the number of mesh links; link IDs at or above this are
// NI links.
func (m *Mapping) MeshLinks() int { return m.Topology.NumLinks() }

// TotalLinks returns mesh plus NI link count.
func (m *Mapping) TotalLinks() int {
	return m.MeshLinks() + 2*m.Topology.NumSwitches()*m.Params.NIsPerSwitch
}

// NIEgressLink returns the link ID carrying traffic from NI `globalNI` into
// its switch.
func (m *Mapping) NIEgressLink(globalNI int) int { return m.MeshLinks() + 2*globalNI }

// NIIngressLink returns the link ID carrying traffic from the switch out to
// NI `globalNI`.
func (m *Mapping) NIIngressLink(globalNI int) int { return m.MeshLinks() + 2*globalNI + 1 }

// SwitchCount reports the number of switches of the chosen topology — the
// paper's primary size metric.
func (m *Mapping) SwitchCount() int { return m.Topology.NumSwitches() }

// SeatLowerBound is the weakest admissible lower bound on the switch count
// of any feasible mapping of this design: every attached core needs one NI
// seat, and a switch seats NIsPerSwitch*CoresPerNI of them. A fixed custom
// fabric does not grow or shrink, so its own switch count is the bound. The
// bound never exceeds SwitchCount() — the mapping in hand seats every
// attached core.
func (m *Mapping) SeatLowerBound() int {
	if !m.Params.Topology.Grows() {
		return m.Topology.NumSwitches()
	}
	attached := 0
	for _, s := range m.CoreSwitch {
		if s >= 0 {
			attached++
		}
	}
	per := m.Params.CoresPerSwitch()
	lb := (attached + per - 1) / per
	if lb < 1 {
		lb = 1
	}
	return lb
}

// Attempt records one iteration of the outer growth loop.
type Attempt struct {
	Dim topology.Dim
	// Skipped is true when the size was rejected on core capacity alone.
	Skipped bool
	// Err holds the failure reason; empty for the successful attempt.
	Err string
}

// Stats summarize a successful mapping for reporting.
type Stats struct {
	// MaxLinkUtil is the highest slot-table occupancy of any link in any
	// use-case configuration.
	MaxLinkUtil float64
	// AvgMeshHops is the bandwidth-weighted mean mesh path length.
	AvgMeshHops float64
	// SlotsReserved is the total number of (link, slot) entries reserved
	// across all configurations.
	SlotsReserved int
}

// Result couples a successful mapping with the search trace.
type Result struct {
	Mapping  *Mapping
	Attempts []Attempt
	Stats    Stats

	// LowerBoundSwitches, when positive, is a provable lower bound on the
	// switch count of any feasible mapping of the same design under the same
	// parameters, established by an exact search (branch-and-bound over the
	// growth sequence). Zero means no exact bound was computed; consumers
	// fall back to Mapping.SeatLowerBound().
	LowerBoundSwitches int
	// LowerBoundExact reports that LowerBoundSwitches is tight: the exact
	// search proved no mapping with fewer switches exists AND the returned
	// mapping attains the bound, so the result is optimal in switch count.
	LowerBoundExact bool
}

// Dim returns the mesh dimensions of the solution.
func (r *Result) Dim() topology.Dim {
	return topology.Dim{Rows: r.Mapping.Topology.Rows, Cols: r.Mapping.Topology.Cols}
}

// computeStats derives summary statistics from a finished mapping.
func computeStats(m *Mapping, states []*tdma.State) Stats {
	var st Stats
	for _, s := range states {
		for l := 0; l < s.NumLinks(); l++ {
			if u := s.Utilization(l); u > st.MaxLinkUtil {
				st.MaxLinkUtil = u
			}
		}
	}
	// Iterate flows in their declared order, not the assignment map's: float
	// summation is order-sensitive at the last ulp, and run-to-run stats of
	// one deterministic engine must be bit-identical.
	var bwHops, bwSum float64
	for uc, cfg := range m.Configs {
		for _, f := range m.Prep.UseCases[uc].Flows {
			a := cfg.Assignments[f.Key()]
			if a == nil {
				continue
			}
			st.SlotsReserved += a.SlotCount * len(a.Path)
			bwHops += f.BandwidthMBs * float64(a.MeshHops(m.MeshLinks()))
			bwSum += f.BandwidthMBs
		}
	}
	if bwSum > 0 {
		st.AvgMeshHops = bwHops / bwSum
	}
	return st
}
