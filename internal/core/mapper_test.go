package core

import (
	"errors"
	"strings"
	"testing"

	"nocmap/internal/tdma"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

// prep builds a Prepared from a bare design (no parallel/smooth specs).
func prep(t *testing.T, numCores int, ucs ...*traffic.UseCase) *usecase.Prepared {
	t.Helper()
	d := &traffic.Design{Name: "t", Cores: traffic.MakeCores(numCores), UseCases: ucs}
	p, err := usecase.Prepare(d)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return p
}

func mustMap(t *testing.T, pr *usecase.Prepared, numCores int, p Params) *Result {
	t.Helper()
	res, err := Map(pr, numCores, p)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	return res
}

func TestDefaultParamsValid(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	if got := p.LinkBandwidthMBs(); got != 2000 {
		t.Errorf("link bandwidth = %v, want 2000 (32-bit @ 500 MHz)", got)
	}
	if got := p.SlotBandwidthMBs(); got != 31.25 {
		t.Errorf("slot bandwidth = %v, want 31.25", got)
	}
	if got := p.CoresPerSwitch(); got != 8 {
		t.Errorf("cores per switch = %d, want 8", got)
	}
}

func TestParamsValidateRejects(t *testing.T) {
	mut := []func(*Params){
		func(p *Params) { p.LinkWidthBits = 0 },
		func(p *Params) { p.FreqMHz = -1 },
		func(p *Params) { p.SlotTableSize = 1 },
		func(p *Params) { p.SlotCycles = 0 },
		func(p *Params) { p.NIsPerSwitch = 0 },
		func(p *Params) { p.CoresPerNI = -1 },
		func(p *Params) { p.MaxMeshDim = 0 },
		func(p *Params) { p.PlacementCandidates = 0 },
	}
	for i, f := range mut {
		p := DefaultParams()
		f(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestLatencyBudgetSlots(t *testing.T) {
	p := DefaultParams() // 500 MHz, 3 cycles/slot: 1 slot = 6 ns
	if got := p.LatencyBudgetSlots(600); got != 100 {
		t.Errorf("budget(600ns) = %d, want 100", got)
	}
	if got := p.LatencyBudgetSlots(0); got >= 0 {
		t.Errorf("unconstrained budget = %d, want negative", got)
	}
}

func TestMapSingleFlow(t *testing.T) {
	u := &traffic.UseCase{Name: "u", Flows: []traffic.Flow{{Src: 0, Dst: 1, BandwidthMBs: 100}}}
	res := mustMap(t, prep(t, 2, u), 2, DefaultParams())
	if res.Mapping.SwitchCount() != 1 {
		t.Errorf("switches = %d, want 1 (two cores fit one switch)", res.Mapping.SwitchCount())
	}
	a := res.Mapping.Configs[0].Assignments[traffic.PairKey{Src: 0, Dst: 1}]
	if a == nil {
		t.Fatal("missing assignment")
	}
	// 100 MB/s at 31.25 MB/s per slot -> 4 slots.
	if a.SlotCount != 4 {
		t.Errorf("slots = %d, want 4", a.SlotCount)
	}
	// Same switch: path = NI egress + NI ingress only.
	if len(a.Path) != 2 {
		t.Errorf("path = %v, want 2 NI links only", a.Path)
	}
	if res.Stats.SlotsReserved == 0 || res.Stats.MaxLinkUtil <= 0 {
		t.Errorf("stats not computed: %+v", res.Stats)
	}
}

// TestExample1Fig5 reproduces Example 1 / Figure 5 of the paper: two
// use-cases over cores C1..C4. The largest flow (C3->C4, 100 MB/s in
// use-case 1) is mapped first; the same pair in use-case 2 (42 MB/s) then
// gets its own path and reservation in its own residual state, while both
// use-cases share one placement of the cores.
func TestExample1Fig5(t *testing.T) {
	u1 := &traffic.UseCase{Name: "uc1", Flows: []traffic.Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 10},
		{Src: 1, Dst: 2, BandwidthMBs: 75},
		{Src: 2, Dst: 3, BandwidthMBs: 100},
	}}
	u2 := &traffic.UseCase{Name: "uc2", Flows: []traffic.Flow{
		{Src: 2, Dst: 3, BandwidthMBs: 42},
		{Src: 0, Dst: 2, BandwidthMBs: 11},
		{Src: 1, Dst: 3, BandwidthMBs: 52},
	}}
	pr := prep(t, 4, u1, u2)
	res := mustMap(t, pr, 4, DefaultParams())
	m := res.Mapping

	// Shared placement: every core attached exactly once, same for both UCs
	// (there is only one CoreSwitch array by construction; assert all 4 are
	// attached).
	for c := 0; c < 4; c++ {
		if m.CoreSwitch[c] < 0 {
			t.Errorf("core %d not attached", c)
		}
	}
	key := traffic.PairKey{Src: 2, Dst: 3}
	a1 := m.Configs[0].Assignments[key]
	a2 := m.Configs[1].Assignments[key]
	if a1 == nil || a2 == nil {
		t.Fatal("missing assignments for C3->C4")
	}
	if a1 == a2 {
		t.Error("use-cases are not grouped; assignments must be independent")
	}
	// Separate residual accounting: slot counts reflect each use-case's own
	// bandwidth (100 -> 4 slots, 42 -> 2 slots at 31.25 MB/s per slot).
	if a1.SlotCount != 4 || a2.SlotCount != 2 {
		t.Errorf("slot counts = %d,%d, want 4,2", a1.SlotCount, a2.SlotCount)
	}
}

func TestMapGrowsWithCoreCount(t *testing.T) {
	// 20 communicating cores need >= ceil(20/8) = 3 switches.
	var flows []traffic.Flow
	for i := 0; i < 19; i++ {
		flows = append(flows, traffic.Flow{Src: traffic.CoreID(i), Dst: traffic.CoreID(i + 1), BandwidthMBs: 10})
	}
	u := &traffic.UseCase{Name: "chain", Flows: flows}
	res := mustMap(t, prep(t, 20, u), 20, DefaultParams())
	if got := res.Mapping.SwitchCount(); got < 3 {
		t.Errorf("switches = %d, want >= 3", got)
	}
	// The first attempts (1x1, 1x2) must be skipped on capacity.
	if !res.Attempts[0].Skipped || !res.Attempts[1].Skipped {
		t.Errorf("capacity skips not recorded: %+v", res.Attempts[:2])
	}
}

func TestMapGrowsWithBandwidth(t *testing.T) {
	// 8 cores fit one switch, but their aggregate NI egress demand exceeds
	// one switch's 2 NIs x 2000 MB/s, forcing a larger mesh.
	var flows []traffic.Flow
	for i := 0; i < 8; i += 2 {
		flows = append(flows,
			traffic.Flow{Src: traffic.CoreID(i), Dst: traffic.CoreID(i + 1), BandwidthMBs: 1500},
			traffic.Flow{Src: traffic.CoreID(i + 1), Dst: traffic.CoreID(i), BandwidthMBs: 1500})
	}
	u := &traffic.UseCase{Name: "hot", Flows: flows}
	res := mustMap(t, prep(t, 8, u), 8, DefaultParams())
	if got := res.Mapping.SwitchCount(); got < 2 {
		t.Errorf("switches = %d, want >= 2 (NI bandwidth bound)", got)
	}
}

func TestMapPerUseCaseStatesScale(t *testing.T) {
	// Ten use-cases each loading the same pair at near link capacity: with
	// separate residual state per use-case this still fits a single switch.
	var ucs []*traffic.UseCase
	for i := 0; i < 10; i++ {
		ucs = append(ucs, &traffic.UseCase{
			Name:  "u" + string(rune('0'+i)),
			Flows: []traffic.Flow{{Src: 0, Dst: 1, BandwidthMBs: 1800}},
		})
	}
	res := mustMap(t, prep(t, 2, ucs...), 2, DefaultParams())
	if got := res.Mapping.SwitchCount(); got != 1 {
		t.Errorf("switches = %d, want 1 — per-use-case states must not accumulate", got)
	}
}

func TestMapInfeasibleBandwidth(t *testing.T) {
	u := &traffic.UseCase{Name: "u", Flows: []traffic.Flow{{Src: 0, Dst: 1, BandwidthMBs: 5000}}}
	p := DefaultParams()
	p.MaxMeshDim = 3
	_, err := Map(prep(t, 2, u), 2, p)
	var inf *InfeasibleError
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want InfeasibleError", err)
	}
	if inf.MaxDim != 3 || len(inf.Attempts) == 0 {
		t.Errorf("InfeasibleError = %+v", inf)
	}
	if !strings.Contains(err.Error(), "no feasible mapping") {
		t.Errorf("error text = %q", err)
	}
}

func TestMapLatencyEscalatesSlots(t *testing.T) {
	// 40 MB/s needs only 2 slots, but a 150 ns budget (25 slots at 6 ns)
	// with a short path forces a small slot gap -> more slots.
	u := &traffic.UseCase{Name: "u", Flows: []traffic.Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 40, MaxLatencyNS: 150},
	}}
	res := mustMap(t, prep(t, 2, u), 2, DefaultParams())
	a := res.Mapping.Configs[0].Assignments[traffic.PairKey{Src: 0, Dst: 1}]
	if a.SlotCount <= 2 {
		t.Errorf("slots = %d, want > 2 (latency-driven escalation)", a.SlotCount)
	}
	wc := tdma.WorstCaseLatencySlots(a.Starts, len(a.Path), DefaultParams().SlotTableSize)
	if budget := DefaultParams().LatencyBudgetSlots(150); wc > budget {
		t.Errorf("worst case %d slots exceeds budget %d", wc, budget)
	}
}

func TestMapImpossibleLatency(t *testing.T) {
	u := &traffic.UseCase{Name: "u", Flows: []traffic.Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 40, MaxLatencyNS: 1}, // < 1 slot
	}}
	p := DefaultParams()
	p.MaxMeshDim = 2
	if _, err := Map(prep(t, 2, u), 2, p); err == nil {
		t.Error("impossible latency accepted")
	}
}

func TestMapDeterministic(t *testing.T) {
	u1 := &traffic.UseCase{Name: "a", Flows: []traffic.Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 300}, {Src: 2, Dst: 3, BandwidthMBs: 200},
		{Src: 4, Dst: 5, BandwidthMBs: 100}, {Src: 1, Dst: 4, BandwidthMBs: 250},
	}}
	u2 := &traffic.UseCase{Name: "b", Flows: []traffic.Flow{
		{Src: 5, Dst: 0, BandwidthMBs: 400}, {Src: 3, Dst: 2, BandwidthMBs: 150},
	}}
	r1 := mustMap(t, prep(t, 6, u1, u2), 6, DefaultParams())
	r2 := mustMap(t, prep(t, 6, u1, u2), 6, DefaultParams())
	for c := 0; c < 6; c++ {
		if r1.Mapping.CoreSwitch[c] != r2.Mapping.CoreSwitch[c] || r1.Mapping.CoreNI[c] != r2.Mapping.CoreNI[c] {
			t.Fatalf("placement of core %d differs between runs", c)
		}
	}
	if r1.Mapping.SwitchCount() != r2.Mapping.SwitchCount() {
		t.Error("topology differs between runs")
	}
}

func TestGroupSharedAssignments(t *testing.T) {
	u1 := &traffic.UseCase{Name: "a", Flows: []traffic.Flow{{Src: 0, Dst: 1, BandwidthMBs: 100}}}
	u2 := &traffic.UseCase{Name: "b", Flows: []traffic.Flow{{Src: 0, Dst: 1, BandwidthMBs: 40}}}
	u3 := &traffic.UseCase{Name: "c", Flows: []traffic.Flow{{Src: 0, Dst: 1, BandwidthMBs: 70}}}
	d := &traffic.Design{
		Name:        "g",
		Cores:       traffic.MakeCores(2),
		UseCases:    []*traffic.UseCase{u1, u2, u3},
		SmoothPairs: [][2]int{{0, 1}}, // a,b share a configuration; c is alone
	}
	pr, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	res := mustMap(t, pr, 2, DefaultParams())
	key := traffic.PairKey{Src: 0, Dst: 1}
	aa := res.Mapping.Configs[0].Assignments[key]
	ab := res.Mapping.Configs[1].Assignments[key]
	ac := res.Mapping.Configs[2].Assignments[key]
	if aa != ab {
		t.Error("grouped use-cases must share the assignment")
	}
	if ac == aa {
		t.Error("ungrouped use-case must have its own assignment")
	}
	// Shared assignment sized by the group max (100 -> 4 slots), not b's 40.
	if aa.SlotCount != 4 {
		t.Errorf("group slots = %d, want 4", aa.SlotCount)
	}
	if ac.SlotCount != 3 {
		t.Errorf("solo slots = %d, want 3 (70 MB/s)", ac.SlotCount)
	}
}

func TestConfigureFixedRoundTrip(t *testing.T) {
	u := &traffic.UseCase{Name: "u", Flows: []traffic.Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 500}, {Src: 1, Dst: 2, BandwidthMBs: 300},
	}}
	pr := prep(t, 3, u)
	res := mustMap(t, pr, 3, DefaultParams())
	m := res.Mapping
	// Same frequency: must succeed again on the fixed placement.
	again, err := ConfigureFixed(pr, 3, m.Topology, m.CoreSwitch, m.CoreNI, m.Params)
	if err != nil {
		t.Fatalf("ConfigureFixed same freq: %v", err)
	}
	if again.SwitchCount() != m.SwitchCount() {
		t.Error("topology changed under fixed placement")
	}
	// Far lower frequency: per-slot bandwidth shrinks 20x, must fail.
	if _, err := ConfigureFixed(pr, 3, m.Topology, m.CoreSwitch, m.CoreNI, m.Params.WithFrequency(25)); err == nil {
		t.Error("ConfigureFixed at 25 MHz should fail")
	}
}

func TestConfigureFixedRejectsBadPlacement(t *testing.T) {
	u := &traffic.UseCase{Name: "u", Flows: []traffic.Flow{{Src: 0, Dst: 1, BandwidthMBs: 10}}}
	pr := prep(t, 2, u)
	res := mustMap(t, pr, 2, DefaultParams())
	m := res.Mapping
	bad := []int{99, 0}
	if _, err := ConfigureFixed(pr, 2, m.Topology, bad, m.CoreNI, m.Params); err == nil {
		t.Error("invalid fixed placement accepted")
	}
	if _, err := ConfigureFixed(pr, 2, m.Topology, m.CoreSwitch[:1], m.CoreNI, m.Params); err == nil {
		t.Error("short fixed placement accepted")
	}
}

func TestMapRejectsBadInput(t *testing.T) {
	if _, err := Map(nil, 2, DefaultParams()); err == nil {
		t.Error("nil prep accepted")
	}
	u := &traffic.UseCase{Name: "u", Flows: []traffic.Flow{{Src: 0, Dst: 9, BandwidthMBs: 10}}}
	pr := &usecase.Prepared{UseCases: []*traffic.UseCase{u}, Groups: [][]int{{0}}, GroupOf: []int{0}, NumOriginal: 1}
	if _, err := Map(pr, 2, DefaultParams()); err == nil {
		t.Error("out-of-range flow accepted")
	}
	bad := DefaultParams()
	bad.SlotTableSize = 0
	if _, err := Map(pr, 10, bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestAblationMappedPreference(t *testing.T) {
	// Both variants must still produce valid mappings.
	u1 := &traffic.UseCase{Name: "a", Flows: []traffic.Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 400}, {Src: 1, Dst: 2, BandwidthMBs: 350},
		{Src: 3, Dst: 4, BandwidthMBs: 300}, {Src: 4, Dst: 5, BandwidthMBs: 250},
	}}
	p := DefaultParams()
	base := mustMap(t, prep(t, 6, u1), 6, p)
	p.DisableMappedPreference = true
	abl := mustMap(t, prep(t, 6, u1), 6, p)
	if base.Mapping.SwitchCount() == 0 || abl.Mapping.SwitchCount() == 0 {
		t.Error("ablation variant failed to map")
	}
}

func TestAblationUnifiedSlots(t *testing.T) {
	u1 := &traffic.UseCase{Name: "a", Flows: []traffic.Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 900}, {Src: 1, Dst: 0, BandwidthMBs: 900},
		{Src: 2, Dst: 3, BandwidthMBs: 900}, {Src: 3, Dst: 2, BandwidthMBs: 900},
	}}
	p := DefaultParams()
	p.DisableUnifiedSlots = true
	res := mustMap(t, prep(t, 4, u1), 4, p)
	if res.Mapping.SwitchCount() == 0 {
		t.Error("non-unified variant failed entirely")
	}
}

func TestImprovePreservesFeasibility(t *testing.T) {
	var flows []traffic.Flow
	for i := 0; i < 12; i++ {
		flows = append(flows, traffic.Flow{
			Src: traffic.CoreID(i), Dst: traffic.CoreID((i + 3) % 12), BandwidthMBs: 400,
		})
	}
	u := &traffic.UseCase{Name: "ring", Flows: flows}
	p := DefaultParams()
	p.Improve = true
	p.ImproveIters = 16
	res := mustMap(t, prep(t, 12, u), 12, p)
	base := DefaultParams()
	ref := mustMap(t, prep(t, 12, u), 12, base)
	if res.Stats.AvgMeshHops > ref.Stats.AvgMeshHops+1e-9 {
		t.Errorf("improve worsened hops: %v > %v", res.Stats.AvgMeshHops, ref.Stats.AvgMeshHops)
	}
}
