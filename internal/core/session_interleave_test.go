// Regression tests for Keep/Undo sequencing across cloned sessions — the
// audit of the speculative batch protocol: several clones of one session
// try moves concurrently-in-spirit (here in a deterministic interleaving),
// one winner Keeps, the losers Undo, and a failed TryMove in the middle of
// a batch must leave its session byte-equivalent to never having tried.
// Every committed state is cross-checked against core.EvaluateFixed, the
// from-scratch oracle.
package core_test

import (
	"math/rand"
	"testing"

	"nocmap/internal/core"
	"nocmap/internal/topology"
	"nocmap/internal/usecase"
)

// sessionOracle cross-checks a session's committed stats against a
// from-scratch evaluation of its current placement.
func sessionOracle(t *testing.T, label string, fx *evalFixture, sess *core.Session) {
	t.Helper()
	cs, cn := sess.Placement()
	want, err := core.EvaluateFixed(fx.prep, fx.numCores, fx.top, cs, cn, fx.p)
	if err != nil {
		t.Fatalf("%s: oracle rejects the session's own placement: %v", label, err)
	}
	if got := sess.Stats(); got != want.Stats {
		t.Fatalf("%s: session stats %+v diverge from EvaluateFixed %+v", label, got, want.Stats)
	}
}

// evalFixture carries what the oracle needs alongside the session factory.
type evalFixture struct {
	prep     *usecase.Prepared
	numCores int
	top      *topology.Topology
	p        core.Params
	base     *core.Result
	ev       *core.Evaluator
}

func newEvalFixture(t *testing.T) *evalFixture {
	t.Helper()
	prep, n := evalDesign(t)
	p := core.DefaultParams()
	base, err := core.Map(prep, n, p)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluator(prep, n, base.Mapping.Topology, p)
	if err != nil {
		t.Fatal(err)
	}
	return &evalFixture{prep: prep, numCores: n, top: base.Mapping.Topology, p: p, base: base, ev: ev}
}

// swapCandidates enumerates the cross-NI swaps of the base placement.
func swapCandidates(base *core.Result) [][2]int {
	m := base.Mapping
	var attached []int
	for c, s := range m.CoreSwitch {
		if s >= 0 {
			attached = append(attached, c)
		}
	}
	var out [][2]int
	for i, x := range attached {
		for _, y := range attached[i+1:] {
			if m.CoreNI[x] != m.CoreNI[y] {
				out = append(out, [2]int{x, y})
			}
		}
	}
	return out
}

// applySwap produces the placement with cores x and y exchanged.
func applySwap(sess *core.Session, x, y int) (cs, cn []int) {
	cs, cn = sess.Placement()
	cs[x], cs[y] = cs[y], cs[x]
	cn[x], cn[y] = cn[y], cn[x]
	return cs, cn
}

// TestSessionCloneInterleavedKeepUndo replays the speculative batch
// protocol deterministically: per round, every cloned session tries the
// same batch of candidates (one each), exactly one Keeps and the others
// Undo, then the losers replay the winner's move so the cohort stays in
// lockstep. After every round each session's stats must match the
// from-scratch oracle of its own placement, and the whole cohort must
// agree with each other.
func TestSessionCloneInterleavedKeepUndo(t *testing.T) {
	fx := newEvalFixture(t)
	root, err := fx.ev.SessionFrom(fx.base)
	if err != nil {
		t.Fatal(err)
	}
	cands := swapCandidates(fx.base)
	if len(cands) < 3 {
		t.Fatalf("fixture has only %d swap candidates", len(cands))
	}
	const workers = 3
	sessions := []*core.Session{root}
	for i := 1; i < workers; i++ {
		c, err := root.Clone()
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, c)
	}

	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 12; round++ {
		type attempt struct {
			ok   bool
			x, y int
		}
		attempts := make([]attempt, workers)
		for w, sess := range sessions {
			mv := cands[rng.Intn(len(cands))]
			cs, cn := applySwap(sess, mv[0], mv[1])
			if _, err := sess.TryMove(cs, cn, mv[0], mv[1]); err == nil {
				attempts[w] = attempt{ok: true, x: mv[0], y: mv[1]}
			}
		}
		// Deterministic winner: the lowest-indexed session with a pending
		// move; rounds where nothing succeeded just roll everything back.
		winner := -1
		for w, a := range attempts {
			if a.ok {
				winner = w
				break
			}
		}
		for w := len(sessions) - 1; w >= 0; w-- {
			sess := sessions[w]
			switch {
			case w == winner:
				sess.Keep()
			case attempts[w].ok:
				sess.Undo()
			}
		}
		if winner >= 0 {
			// Losers replay the winner's committed placement.
			wcs, wcn := sessions[winner].Placement()
			for w, sess := range sessions {
				if w == winner {
					continue
				}
				if _, err := sess.TryMove(wcs, wcn, attempts[winner].x, attempts[winner].y); err != nil {
					t.Fatalf("round %d: session %d cannot replay the winner's move: %v", round, w, err)
				}
				sess.Keep()
			}
		}
		for w, sess := range sessions {
			sessionOracle(t, labelOf(round, w), fx, sess)
		}
		s0 := sessions[0].Stats()
		for w, sess := range sessions[1:] {
			if sess.Stats() != s0 {
				t.Fatalf("round %d: session %d diverged from session 0: %+v vs %+v",
					round, w+1, sess.Stats(), s0)
			}
		}
	}
}

func labelOf(round, w int) string {
	return "round " + itoa(round) + " session " + itoa(w)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestSessionUndoAfterFailedTryMove is the regression test for the batch
// audit: a TryMove that fails (validation error or infeasible re-route)
// must leave the session with no pending move, an Undo right after it must
// be a no-op, and the session must remain fully usable — further moves
// evaluate against the unchanged configuration and still match the oracle.
func TestSessionUndoAfterFailedTryMove(t *testing.T) {
	fx := newEvalFixture(t)
	sess, err := fx.ev.SessionFrom(fx.base)
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Stats()
	csBase, cnBase := sess.Placement()

	// Failure 1: a placement that moves a core without listing it.
	cands := swapCandidates(fx.base)
	mv := cands[0]
	cs, cn := applySwap(sess, mv[0], mv[1])
	if _, err := sess.TryMove(cs, cn); err == nil {
		t.Fatal("TryMove with an unlisted moved core succeeded")
	}
	sess.Undo() // must be a no-op, not a rollback of a phantom move
	if got := sess.Stats(); got != before {
		t.Fatalf("stats changed across failed TryMove + Undo: %+v vs %+v", got, before)
	}

	// Failure 2: an out-of-range moved index.
	if _, err := sess.TryMove(cs, cn, -1); err == nil {
		t.Fatal("TryMove with an out-of-range moved core succeeded")
	}
	sess.Undo()

	// The placement must be untouched by either failure.
	csNow, cnNow := sess.Placement()
	for c := range csBase {
		if csNow[c] != csBase[c] || cnNow[c] != cnBase[c] {
			t.Fatalf("failed TryMove moved core %d", c)
		}
	}

	// The session still evaluates correctly after the failures, including
	// inside a batch shape: try, keep, cross-check.
	if _, err := sess.TryMove(cs, cn, mv[0], mv[1]); err != nil {
		t.Fatalf("session unusable after failed TryMove: %v", err)
	}
	sess.Keep()
	sessionOracle(t, "post-failure keep", fx, sess)

	// And a double Undo around a pending move stays exact: the second is a
	// no-op.
	mv2 := cands[1]
	cs2, cn2 := applySwap(sess, mv2[0], mv2[1])
	if _, err := sess.TryMove(cs2, cn2, mv2[0], mv2[1]); err == nil {
		committed := sess.Stats()
		sess.Undo()
		sess.Undo()
		if got := sess.Stats(); got != committed {
			t.Fatalf("double Undo corrupted stats: %+v vs %+v", got, committed)
		}
		sessionOracle(t, "double undo", fx, sess)
	}
}
