package core

import (
	"context"
	"fmt"
	"sort"

	"nocmap/internal/route"
	"nocmap/internal/tdma"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

// Map runs the full methodology on pre-processed use-cases: the outer loop
// walks the mesh growth sequence (Algorithm 2, steps 1 and 8) and the inner
// loop performs the unified mapping, path selection and slot reservation
// (steps 2-7). It returns the smallest feasible mapping.
func Map(prep *usecase.Prepared, numCores int, p Params) (*Result, error) {
	return MapContext(context.Background(), prep, numCores, p)
}

// MapContext is Map with cancellation: the context is consulted before every
// mesh size of the growth loop, so a server-side deadline or client
// disconnect stops a long infeasible search between attempts. One attempt
// (one mesh size) is the unit of cancellation — it is the smallest step
// after which the partial trace is still meaningful.
func MapContext(ctx context.Context, prep *usecase.Prepared, numCores int, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := validateInput(prep, numCores); err != nil {
		return nil, err
	}
	active := activeCores(prep, numCores)
	// A custom fabric is a single fixed instance: no growth loop, one
	// attempt on the loaded topology.
	if !p.Topology.Grows() {
		top, err := p.Topology.ForDim(topology.Dim{}, p.CoresPerSwitch())
		if err != nil {
			return nil, err
		}
		dim := topology.Dim{Rows: top.Rows, Cols: top.Cols}
		if top.MaxCores() < active {
			err := fmt.Errorf("core: %s hosts %d cores, design needs %d", top, top.MaxCores(), active)
			return nil, &InfeasibleError{Fabric: top.String(), Attempts: []Attempt{{Dim: dim, Skipped: true}}, Last: err}
		}
		ev := newEvaluator(prep, numCores, top, p)
		m, states, _, err := ev.attempt(nil)
		if err != nil {
			return nil, &InfeasibleError{Fabric: top.String(), Attempts: []Attempt{{Dim: dim, Err: err.Error()}}, Last: err}
		}
		res := &Result{Mapping: m, Attempts: []Attempt{{Dim: dim}}, Stats: computeStats(m, states)}
		if p.Improve {
			res = improveResult(ev, res)
		}
		return res, nil
	}
	var attempts []Attempt
	var lastErr error
	for _, dim := range topology.GrowthSequence(p.MaxMeshDim) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if dim.Switches()*p.CoresPerSwitch() < active {
			attempts = append(attempts, Attempt{Dim: dim, Skipped: true})
			continue
		}
		top, err := p.Topology.ForDim(dim, p.CoresPerSwitch())
		if err != nil {
			return nil, err
		}
		ev := newEvaluator(prep, numCores, top, p)
		m, states, _, err := ev.attempt(nil)
		if err != nil {
			attempts = append(attempts, Attempt{Dim: dim, Err: err.Error()})
			lastErr = err
			continue
		}
		attempts = append(attempts, Attempt{Dim: dim})
		res := &Result{Mapping: m, Attempts: attempts, Stats: computeStats(m, states)}
		if p.Improve {
			res = improveResult(ev, res)
		}
		return res, nil
	}
	return nil, &InfeasibleError{MaxDim: p.MaxMeshDim, Attempts: attempts, Last: lastErr}
}

// ConfigureFixed re-runs only the configuration phase (path selection and
// slot reservation) on an existing placement, typically at a different
// frequency. It is the primitive behind the DVS/DFS and parallel-mode
// frequency searches.
func ConfigureFixed(prep *usecase.Prepared, numCores int, top *topology.Topology,
	coreSwitch, coreNI []int, p Params) (*Mapping, error) {
	res, err := EvaluateFixed(prep, numCores, top, coreSwitch, coreNI, p)
	if err != nil {
		return nil, err
	}
	return res.Mapping, nil
}

// EvaluateFixed runs the configuration phase on a fixed core placement and
// returns the complete Result, including the summary statistics that score
// the mapping. It is the evaluation hook of the internal/search engines: a
// candidate placement is feasible exactly when EvaluateFixed succeeds, and
// its quality is read off the returned Stats. The given topology is used as
// is — mesh, torus or custom — so engines explore whatever fabric they
// built the placement on.
//
// EvaluateFixed is a compatibility wrapper that builds a throwaway
// Evaluator per call; callers scoring many placements on one topology
// should construct the Evaluator once and call Evaluate (or drive a
// Session) to amortize validation, precomputation and state allocation.
func EvaluateFixed(prep *usecase.Prepared, numCores int, top *topology.Topology,
	coreSwitch, coreNI []int, p Params) (*Result, error) {
	ev, err := NewEvaluator(prep, numCores, top, p)
	if err != nil {
		return nil, err
	}
	return ev.Evaluate(coreSwitch, coreNI)
}

// InfeasibleError reports that no fabric the search explored could satisfy
// every use-case: no mesh/torus up to the size cap (the outcome the paper
// reports for the WC method on the 40-use-case benchmarks), or the one
// fixed custom fabric.
type InfeasibleError struct {
	// MaxDim is the growth-loop cap; zero when a fixed custom fabric (named
	// by Fabric) was the only candidate.
	MaxDim   int
	Fabric   string
	Attempts []Attempt
	Last     error
}

func (e *InfeasibleError) Error() string {
	if e.Fabric != "" {
		return fmt.Sprintf("core: no feasible mapping on %s (last: %v)", e.Fabric, e.Last)
	}
	return fmt.Sprintf("core: no feasible mapping up to %dx%d mesh (last: %v)", e.MaxDim, e.MaxDim, e.Last)
}

func validateInput(prep *usecase.Prepared, numCores int) error {
	if prep == nil || len(prep.UseCases) == 0 {
		return fmt.Errorf("core: no use-cases")
	}
	for _, u := range prep.UseCases {
		if err := u.Validate(numCores); err != nil {
			return err
		}
	}
	if len(prep.GroupOf) != len(prep.UseCases) {
		return fmt.Errorf("core: prepared groups inconsistent with use-cases")
	}
	return nil
}

// activeCores counts cores that appear in at least one flow; only they need
// NI attachment.
func activeCores(prep *usecase.Prepared, numCores int) int {
	seen := make([]bool, numCores)
	n := 0
	for _, u := range prep.UseCases {
		for _, f := range u.Flows {
			for _, c := range []traffic.CoreID{f.Src, f.Dst} {
				if !seen[c] {
					seen[c] = true
					n++
				}
			}
		}
	}
	return n
}

// placementFix pins the core placement for configuration-only runs.
type placementFix struct {
	CoreSwitch []int
	CoreNI     []int
}

// flowInst is one flow occurrence in the global work list.
type flowInst struct {
	uc   int
	idx  int
	bw   float64
	lat  float64
	key  traffic.PairKey
	done bool
}

// mapper carries the working state of one attempt on one topology. The
// immutable tables (byPair, pairSlots, the routing plans reached through
// ev) are shared with the owning Evaluator; the mutable ones are per
// attempt, drawn from the evaluator's scratch pool or freshly allocated.
type mapper struct {
	ev   *Evaluator
	prep *usecase.Prepared
	p    Params
	top  *topology.Topology

	meshLinks  int
	totalLinks int

	// One residual state and one configuration per smooth-switching group:
	// group members share a single NoC configuration (paper Section 4), so a
	// reservation made for any member occupies slots for all of them. With
	// no smooth-switching constraints every group is a singleton and this
	// degenerates to the per-use-case data structures of Algorithm 2.
	states  []*tdma.State
	configs []map[traffic.PairKey]*Assignment

	coreSwitch  []int
	coreNI      []int
	switchCores []int
	niCores     []int

	flows  []flowInst
	byPair map[traffic.PairKey][]int

	// pairSlots caches, per group and pair, the bandwidth-driven slot count
	// of the group's heaviest same-pair flow. remOut/remIn hold, per group
	// and core, the not-yet-reserved slot demand the core will still source
	// or sink. Projected NI occupancy (current reservations + remaining
	// demand of the NI's cores) steers placement: greedy per-flow decisions
	// would otherwise co-locate cores whose later flows overrun the NI.
	// Both rem tables are nil when the fix places every communicating core
	// — no placement decisions remain, so no projection is ever read.
	pairSlots []map[traffic.PairKey]int
	remOut    [][]int
	remIn     [][]int

	journal   []resRecord
	nextOwner int32
	// scanFrom skips the done prefix of the flow list in chooseNext; flows
	// only ever transition to done, so the hint is monotone and safe.
	scanFrom int
}

type resRecord struct {
	group  int
	owner  int32
	path   []int
	start  []int
	key    traffic.PairKey
	demand int
	// idx and hops serve the session's dense bookkeeping: the pair's index
	// in the evaluator's pairList and the mesh-hop count of path. The
	// mapper's journal leaves them zero; sessions fill them on adoption.
	idx  int32
	hops int32
}

type placement struct {
	placeSrc, placeDst bool
	srcSwitch          int
	dstSwitch          int
	src, dst           traffic.CoreID
}

// placeFixed initializes the placement arrays and applies the fix, if any.
func (m *mapper) placeFixed(fix *placementFix) error {
	numCores := m.ev.numCores
	m.coreSwitch = make([]int, numCores)
	m.coreNI = make([]int, numCores)
	for i := range m.coreSwitch {
		m.coreSwitch[i] = -1
		m.coreNI[i] = -1
	}
	m.switchCores = make([]int, m.top.NumSwitches())
	m.niCores = make([]int, m.top.NumSwitches()*m.p.NIsPerSwitch)
	if fix == nil {
		return nil
	}
	if len(fix.CoreSwitch) != numCores || len(fix.CoreNI) != numCores {
		return fmt.Errorf("core: fixed placement has wrong length")
	}
	for c := 0; c < numCores; c++ {
		s, ni := fix.CoreSwitch[c], fix.CoreNI[c]
		if s < 0 {
			continue
		}
		if s >= m.top.NumSwitches() || ni < 0 || ni >= len(m.niCores) || ni/m.p.NIsPerSwitch != s {
			return fmt.Errorf("core: fixed placement of core %d (switch %d, NI %d) invalid", c, s, ni)
		}
		m.coreSwitch[c] = s
		m.coreNI[c] = ni
		m.switchCores[s]++
		m.niCores[ni]++
	}
	return nil
}

// run performs Algorithm 2 steps 3-7: repeatedly choose the heaviest
// remaining flow (preferring already-mapped endpoints), place and route it
// together with the same-pair flows of every other use-case, until all
// flows are mapped; then assemble the Mapping.
func (m *mapper) run() (*Mapping, error) {
	for {
		fi := m.chooseNext()
		if fi < 0 {
			break
		}
		if err := m.placeAndRoute(fi); err != nil {
			return nil, err
		}
	}
	mapping := &Mapping{
		Topology:   m.top,
		Params:     m.p,
		Prep:       m.prep,
		CoreSwitch: m.coreSwitch,
		CoreNI:     m.coreNI,
	}
	// Per-use-case configurations are restrictions of the group
	// configuration to the use-case's own flows; assignments are shared.
	mapping.Configs = make([]*Config, len(m.prep.UseCases))
	for uc, u := range m.prep.UseCases {
		cfg := &Config{Assignments: make(map[traffic.PairKey]*Assignment, len(u.Flows))}
		g := m.prep.GroupOf[uc]
		for _, f := range u.Flows {
			a, ok := m.configs[g][f.Key()]
			if !ok {
				return nil, fmt.Errorf("core: internal: flow %d->%d of use-case %d unassigned", f.Src, f.Dst, uc)
			}
			cfg.Assignments[f.Key()] = a
		}
		mapping.Configs[uc] = cfg
	}
	return mapping, nil
}

// projectedNIUsed returns the projected slot usage of an NI link in group g:
// slots already reserved plus the remaining demand of every core attached to
// the NI (and of extraCore, a core about to be attached).
func (m *mapper) projectedNIUsed(ni, g int, role niRole, extraCore int) int {
	link := m.niEgress(ni)
	rem := m.remOut[g]
	if role == roleDst {
		link = m.niIngress(ni)
		rem = m.remIn[g]
	}
	used := m.p.SlotTableSize - m.states[g].FreeSlots(link)
	for c, n := range m.coreNI {
		if n == ni {
			used += rem[c]
		}
	}
	if extraCore >= 0 {
		used += rem[extraCore]
	}
	return used
}

// bestProjectedNI returns the lowest projected usage over the NIs of switch
// s that still have core capacity, or -1 when all NIs are full.
func (m *mapper) bestProjectedNI(s, g int, role niRole, extraCore int) int {
	base := s * m.p.NIsPerSwitch
	best := -1
	for ni := base; ni < base+m.p.NIsPerSwitch; ni++ {
		if m.niCores[ni] >= m.p.CoresPerNI {
			continue
		}
		u := m.projectedNIUsed(ni, g, role, extraCore)
		if best < 0 || u < best {
			best = u
		}
	}
	return best
}

// chooseNext implements Algorithm 2 step 3: the heaviest remaining flow,
// preferring flows between already-mapped cores, then flows with one mapped
// endpoint. The list is bandwidth-sorted, so the first hit per tier is the
// heaviest of that tier.
func (m *mapper) chooseNext() int {
	for m.scanFrom < len(m.flows) && m.flows[m.scanFrom].done {
		m.scanFrom++
	}
	tierBest := [3]int{-1, -1, -1}
	for i := m.scanFrom; i < len(m.flows); i++ {
		f := &m.flows[i]
		if f.done {
			continue
		}
		if m.p.DisableMappedPreference {
			return i
		}
		sm := m.coreSwitch[f.key.Src] >= 0
		dm := m.coreSwitch[f.key.Dst] >= 0
		tier := 2
		switch {
		case sm && dm:
			tier = 0
		case sm || dm:
			tier = 1
		}
		if tierBest[tier] < 0 {
			tierBest[tier] = i
			if tier == 0 {
				break
			}
		}
	}
	for _, t := range tierBest {
		if t >= 0 {
			return t
		}
	}
	return -1
}

// placeAndRoute handles one chosen flow (steps 4-6): try candidate
// placements for any unmapped endpoint; for each, route and reserve the
// flow's pair in every group that communicates over it (the precomputed
// routing plan). The first placement for which all groups succeed is
// committed.
func (m *mapper) placeAndRoute(fi int) error {
	f := m.flows[fi]
	plan := m.ev.plans[f.key]

	placements, err := m.candidatePlacements(f)
	if err != nil {
		return err
	}
	var lastErr error
	for _, pl := range placements {
		if err := m.applyPlacement(pl); err != nil {
			lastErr = err
			continue
		}
		mark := len(m.journal)
		err := m.routeGroups(f.key, plan)
		if err == nil {
			for _, i := range plan.allInsts {
				m.flows[i].done = true
			}
			return nil
		}
		lastErr = err
		m.rollback(mark)
		m.undoPlacement(pl)
	}
	return fmt.Errorf("core: flow %d->%d (%.1f MB/s, use-case %q): %v",
		f.key.Src, f.key.Dst, f.bw, m.prep.UseCases[f.uc].Name, lastErr)
}

// candidatePlacements enumerates (src switch, dst switch) options for the
// flow's endpoints, cheapest placements first.
func (m *mapper) candidatePlacements(f flowInst) ([]placement, error) {
	src, dst := f.key.Src, f.key.Dst
	ss, ds := m.coreSwitch[src], m.coreSwitch[dst]
	g := m.prep.GroupOf[f.uc]
	switch {
	case ss >= 0 && ds >= 0:
		return []placement{{srcSwitch: ss, dstSwitch: ds, src: src, dst: dst}}, nil
	case ss >= 0:
		cands := m.rankPlacements(ss, g, dst, -1)
		out := make([]placement, 0, len(cands))
		for _, c := range cands {
			out = append(out, placement{placeDst: true, srcSwitch: ss, dstSwitch: c, src: src, dst: dst})
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("no switch has NI capacity for core %d", dst)
		}
		return out, nil
	case ds >= 0:
		cands := m.rankPlacements(ds, g, src, -1)
		out := make([]placement, 0, len(cands))
		for _, c := range cands {
			out = append(out, placement{placeSrc: true, srcSwitch: c, dstSwitch: ds, src: src, dst: dst})
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("no switch has NI capacity for core %d", src)
		}
		return out, nil
	default:
		// Neither endpoint mapped: seed the source at switches with NI
		// headroom near the mesh centre, then rank destinations around each
		// seed.
		seeds := m.seedSwitches(2, src)
		if len(seeds) == 0 {
			return nil, fmt.Errorf("no switch has NI capacity for core %d", src)
		}
		var out []placement
		for _, s := range seeds {
			// The destination may share the seed switch only if two core
			// slots are free there.
			for _, c := range m.rankPlacements(s, g, dst, s) {
				out = append(out, placement{placeSrc: true, placeDst: true, srcSwitch: s, dstSwitch: c, src: src, dst: dst})
				if len(out) >= m.p.PlacementCandidates {
					return out, nil
				}
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("no switch pair has NI capacity for cores %d,%d", src, dst)
		}
		return out, nil
	}
}

// Roles for NI-feasibility checks: a source core needs egress slots on its
// NI, a destination core needs ingress slots.
type niRole int

const (
	roleSrc niRole = iota
	roleDst
)

// niChoice selects the NI of switch s best suited to host core: the one
// whose worst projected usage (over all groups and both directions,
// including the core's own remaining demand) is lowest. ok is false when no
// NI of the switch can host the core within the slot table.
func (m *mapper) niChoice(s int, core traffic.CoreID) (ni, worst int, ok bool) {
	base := s * m.p.NIsPerSwitch
	ni, worst = -1, 0
	for cand := base; cand < base+m.p.NIsPerSwitch; cand++ {
		if m.niCores[cand] >= m.p.CoresPerNI {
			continue
		}
		w := 0
		for g := range m.states {
			if u := m.projectedNIUsed(cand, g, roleSrc, int(core)); u > w {
				w = u
			}
			if u := m.projectedNIUsed(cand, g, roleDst, int(core)); u > w {
				w = u
			}
		}
		if ni < 0 || w < worst {
			ni, worst = cand, w
		}
	}
	if ni < 0 || worst > m.p.SlotTableSize {
		return -1, worst, false
	}
	return ni, worst, true
}

// attachPenalty prices attaching core to switch s: the same convex load term
// route.LinkCost applies to mesh links, evaluated on the projected occupancy
// of the NI the core would use. Pricing projected NI load into placement
// makes cores spread to fresh switches before NIs saturate — distance-only
// ranking would pack every core onto the central switches, and no mesh
// growth could ever help.
func (m *mapper) attachPenalty(worst int) float64 {
	occ := float64(worst) / float64(m.p.SlotTableSize)
	if occ > 1 {
		occ = 1
	}
	return m.p.Cost.LoadWeight * occ * occ
}

// rankPlacements orders candidate switches for an unmapped endpoint: only
// switches with an NI that can absorb the core's projected demand qualify,
// scored by least-cost-tree distance from the mapped endpoint's switch under
// the group's residual state plus the projected NI load penalty. seedShared
// marks a switch that must keep room for two cores (used when both endpoints
// are placed at once).
func (m *mapper) rankPlacements(from, group int, core traffic.CoreID, seedShared int) []int {
	// Rank reachability with a 1-slot requirement: per-link feasibility for
	// the actual reservation is re-checked during routing.
	dist, err := route.LeastCostTree(m.top, m.states[group], topology.SwitchID(from), 1, m.p.Cost)
	if err != nil {
		return nil
	}
	type cand struct {
		s int
		d float64
	}
	var cands []cand
	for s := 0; s < m.top.NumSwitches(); s++ {
		free := m.p.CoresPerSwitch() - m.switchCores[s]
		need := 1
		if s == seedShared {
			need = 2 // the seed core also lands here
		}
		if free < need {
			continue
		}
		_, worst, ok := m.niChoice(s, core)
		if !ok {
			continue // no NI on this switch can absorb the core
		}
		d := dist[s]
		if s == from {
			d = 0
		}
		if d < 0 {
			continue // unreachable under current load
		}
		cands = append(cands, cand{s, d + m.attachPenalty(worst)})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].s < cands[j].s
	})
	if len(cands) > m.p.PlacementCandidates {
		cands = cands[:m.p.PlacementCandidates]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.s
	}
	return out
}

// seedSwitches returns up to n switches that can absorb the core's projected
// demand, scored by distance to the topology's centre plus the projected NI
// load penalty (deterministic seed order for flows with no mapped endpoint).
func (m *mapper) seedSwitches(n int, core traffic.CoreID) []int {
	centre := m.top.Centre()
	type cand struct {
		s int
		d float64
	}
	var cands []cand
	for s := 0; s < m.top.NumSwitches(); s++ {
		if m.switchCores[s] >= m.p.CoresPerSwitch() {
			continue
		}
		_, worst, ok := m.niChoice(s, core)
		if !ok {
			continue
		}
		d := float64(m.top.HopDistance(topology.SwitchID(s), centre))*m.p.Cost.HopCost +
			m.attachPenalty(worst)
		cands = append(cands, cand{s, d})
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].s < cands[j].s
	})
	if len(cands) > n {
		cands = cands[:n]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.s
	}
	return out
}

// applyPlacement tentatively attaches unmapped endpoint cores to their
// switches, choosing the NI with the most projected headroom.
func (m *mapper) applyPlacement(pl placement) error {
	place := func(core traffic.CoreID, s int) error {
		ni, _, ok := m.niChoice(s, core)
		if !ok {
			return fmt.Errorf("switch %d cannot absorb core %d", s, core)
		}
		m.coreSwitch[core] = s
		m.coreNI[core] = ni
		m.switchCores[s]++
		m.niCores[ni]++
		return nil
	}
	if pl.placeSrc {
		if err := place(pl.src, pl.srcSwitch); err != nil {
			return err
		}
	}
	if pl.placeDst {
		if err := place(pl.dst, pl.dstSwitch); err != nil {
			if pl.placeSrc {
				m.unplace(pl.src)
			}
			return err
		}
	}
	return nil
}

func (m *mapper) unplace(core traffic.CoreID) {
	s, ni := m.coreSwitch[core], m.coreNI[core]
	if s >= 0 {
		m.switchCores[s]--
		m.niCores[ni]--
	}
	m.coreSwitch[core] = -1
	m.coreNI[core] = -1
}

func (m *mapper) undoPlacement(pl placement) {
	if pl.placeSrc {
		m.unplace(pl.src)
	}
	if pl.placeDst {
		m.unplace(pl.dst)
	}
}

// routeGroups reserves the pair in every group of its routing plan: the
// reservation is sized by the group's heaviest same-pair flow and must
// satisfy the group's tightest latency constraint; it is recorded once in
// the group's shared state (Algorithm 2 steps 4-6).
func (m *mapper) routeGroups(key traffic.PairKey, plan *pairPlan) error {
	for i, g := range plan.groups {
		if err := m.reservePair(g, key, plan.bw[i], plan.lat[i]); err != nil {
			return fmt.Errorf("group %d: %w", g, err)
		}
	}
	return nil
}

// reservePair selects a path and aligned slots for one pair in one group's
// state (via the evaluator's shared reservation primitive) and journals the
// result.
func (m *mapper) reservePair(g int, key traffic.PairKey, bw float64, latencyNS float64) error {
	srcS, dstS := m.coreSwitch[key.Src], m.coreSwitch[key.Dst]
	egress := m.niEgress(m.coreNI[key.Src])
	ingress := m.niIngress(m.coreNI[key.Dst])
	path, starts, n, err := m.ev.reserveSlots(m.states[g], m.nextOwner, key, srcS, dstS, egress, ingress, bw, latencyNS)
	if err != nil {
		return err
	}
	owner := m.nextOwner
	m.nextOwner++
	m.configs[g][key] = &Assignment{Path: path, Starts: starts, SlotCount: n}
	// The pair's projected demand is now realized.
	demand := 0
	if m.remOut != nil {
		demand = m.pairSlots[g][key]
		m.remOut[g][key.Src] -= demand
		m.remIn[g][key.Dst] -= demand
	}
	m.journal = append(m.journal, resRecord{group: g, owner: owner, path: path, start: starts, key: key, demand: demand})
	return nil
}

func (m *mapper) rollback(mark int) {
	for i := len(m.journal) - 1; i >= mark; i-- {
		r := m.journal[i]
		m.states[r.group].Release(r.owner, r.path, r.start)
		delete(m.configs[r.group], r.key)
		if m.remOut != nil {
			m.remOut[r.group][r.key.Src] += r.demand
			m.remIn[r.group][r.key.Dst] += r.demand
		}
	}
	m.journal = m.journal[:mark]
}

func (m *mapper) niEgress(globalNI int) int  { return m.meshLinks + 2*globalNI }
func (m *mapper) niIngress(globalNI int) int { return m.meshLinks + 2*globalNI + 1 }
