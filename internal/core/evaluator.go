package core

import (
	"fmt"
	"sort"
	"sync"

	"nocmap/internal/route"
	"nocmap/internal/tdma"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

// Evaluator is the reusable evaluation engine for one (prepared design,
// topology, params) triple. The one-shot entry points (Map, EvaluateFixed)
// re-validate the inputs, rebuild the bandwidth-sorted flow work list and
// reallocate every group's TDMA slot tables on every call; a search engine
// scoring thousands of candidate placements on the same fabric pays that
// fixed cost per candidate. The Evaluator pays it once:
//
//   - inputs (params, use-cases, topology) are validated at construction;
//   - the flow work list, per-pair routing plans (group order, reservation
//     bandwidth and latency) and NI demand projections are precomputed;
//   - candidate mesh paths are cached per switch pair (route.Table);
//   - TDMA states and flow lists live in a scratch arena that is reset
//     between evaluations instead of reallocated.
//
// An Evaluator is immutable after construction and safe for concurrent use:
// every Evaluate call draws its mutable state from an internal pool, so the
// portfolio's workers share one Evaluator (and its precomputation) per
// topology. Delta evaluation of single moves is layered on top via Session.
type Evaluator struct {
	prep     *usecase.Prepared
	numCores int
	top      *topology.Topology
	p        Params

	meshLinks  int
	totalLinks int

	// flowsTpl is the bandwidth-sorted global flow list (Algorithm 2 step
	// 2); evaluations copy it instead of re-sorting.
	flowsTpl []flowInst
	// byPair indexes flowsTpl by directed core pair.
	byPair map[traffic.PairKey][]int
	// pairList holds the distinct pairs in first-occurrence (descending
	// bandwidth) order — the order the fully-fixed configuration phase
	// routes them in.
	pairList []traffic.PairKey
	// plans precomputes, per pair, everything the routing step derives from
	// the flow list alone: the group order and each group's reservation
	// size and latency bound.
	plans map[traffic.PairKey]*pairPlan
	// pairSlots caches, per group and pair, the slot demand of the group's
	// heaviest same-pair flow (immutable; evaluations read it).
	pairSlots []map[traffic.PairKey]int
	// remOutTpl/remInTpl are the initial per-group, per-core not-yet-routed
	// slot demands; partial-placement evaluations copy and consume them.
	remOutTpl, remInTpl [][]int
	// active lists the cores that appear in at least one flow.
	active []int
	// groupPairs lists, per group, its pairs with their bandwidth-driven
	// slot demand (pairSlots flattened for cheap deterministic iteration in
	// the session's capacity prechecks).
	groupPairs [][]pairDemand
	// ucPairs lists, per use-case, its distinct pairs with the flow
	// bandwidth — the iteration computeStats performs over Config maps,
	// precomputed so sessions can recompute stats without building Configs.
	ucPairs [][]ucPairStat

	// Dense pair indexing for the session hot path: pairIdx numbers the
	// distinct pairs in pairList order, planOf mirrors plans by that index,
	// pairsOf lists per core the (ascending) indices of the pairs touching
	// it, and ucPairIdx mirrors ucPairs as indices. Together they let a move
	// evaluation find and walk its affected pairs with array indexing where
	// the one-shot path uses map lookups.
	pairIdx   map[traffic.PairKey]int32
	planOf    []*pairPlan
	pairsOf   [][]int32
	ucPairIdx [][]int32

	// paths caches candidate mesh paths per switch pair.
	paths *route.Table

	pool sync.Pool // *evalScratch
}

// pairPlan is the placement-independent routing plan of one directed pair:
// the smooth-switching groups that communicate over it in reservation order
// (driving group first, then descending heaviest-flow bandwidth), each with
// its reservation bandwidth and tightest latency bound.
type pairPlan struct {
	groups   []int
	bw       []float64
	lat      []float64
	allInsts []int // indices into the flow list, every instance of the pair
}

type ucPairStat struct {
	key traffic.PairKey
	bw  float64
}

// pairDemand is one pair of one group's routing worklist: its slot demand
// plus the group's reservation bandwidth and latency bound (copied from the
// pair's plan for cheap per-group iteration), and the pair's dense index.
type pairDemand struct {
	key   traffic.PairKey
	idx   int32
	slots int
	bw    float64
	lat   float64
}

// evalScratch is the reusable mutable state of one evaluation.
type evalScratch struct {
	states        []*tdma.State
	flows         []flowInst
	remOut, remIn [][]int
	journal       []resRecord
}

// NewEvaluator validates the inputs once and precomputes the shared
// evaluation state. The topology is used as given — mesh, torus or custom —
// exactly like EvaluateFixed.
func NewEvaluator(prep *usecase.Prepared, numCores int, top *topology.Topology, p Params) (*Evaluator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := validateInput(prep, numCores); err != nil {
		return nil, err
	}
	if top == nil {
		return nil, fmt.Errorf("core: evaluator needs a topology")
	}
	return newEvaluator(prep, numCores, top, p), nil
}

// newEvaluator builds the evaluator without re-validating (the growth loop
// validates once up front).
func newEvaluator(prep *usecase.Prepared, numCores int, top *topology.Topology, p Params) *Evaluator {
	ev := &Evaluator{prep: prep, numCores: numCores, top: top, p: p}
	ev.meshLinks = top.NumLinks()
	ev.totalLinks = ev.meshLinks + 2*top.NumSwitches()*p.NIsPerSwitch
	ev.paths = route.NewTable(top, p.Cost)
	ev.buildTemplates()
	return ev
}

// Topology returns the fabric the evaluator scores placements on.
func (ev *Evaluator) Topology() *topology.Topology { return ev.top }

// buildTemplates assembles the sorted flow list, pair index, routing plans
// and demand projections (the work buildFlows used to redo per attempt).
func (ev *Evaluator) buildTemplates() {
	for uc, u := range ev.prep.UseCases {
		for idx, f := range u.Flows {
			ev.flowsTpl = append(ev.flowsTpl, flowInst{
				uc: uc, idx: idx, bw: f.BandwidthMBs, lat: f.MaxLatencyNS, key: f.Key(),
			})
		}
	}
	sort.SliceStable(ev.flowsTpl, func(i, j int) bool {
		a, b := ev.flowsTpl[i], ev.flowsTpl[j]
		if a.bw != b.bw {
			return a.bw > b.bw
		}
		if a.key.Src != b.key.Src {
			return a.key.Src < b.key.Src
		}
		if a.key.Dst != b.key.Dst {
			return a.key.Dst < b.key.Dst
		}
		return a.uc < b.uc
	})
	ev.byPair = make(map[traffic.PairKey][]int)
	for i, f := range ev.flowsTpl {
		if _, seen := ev.byPair[f.key]; !seen {
			ev.pairList = append(ev.pairList, f.key)
		}
		ev.byPair[f.key] = append(ev.byPair[f.key], i)
	}
	// Demand projection templates: per group, the heaviest flow per pair
	// determines the reservation size; each core's remaining demand is the
	// sum over its pairs.
	numGroups := len(ev.prep.Groups)
	ev.pairSlots = make([]map[traffic.PairKey]int, numGroups)
	ev.remOutTpl = make([][]int, numGroups)
	ev.remInTpl = make([][]int, numGroups)
	for g := 0; g < numGroups; g++ {
		ev.pairSlots[g] = make(map[traffic.PairKey]int)
		ev.remOutTpl[g] = make([]int, ev.numCores)
		ev.remInTpl[g] = make([]int, ev.numCores)
	}
	for _, f := range ev.flowsTpl {
		g := ev.prep.GroupOf[f.uc]
		n := tdma.SlotsNeeded(f.bw, ev.p.SlotBandwidthMBs())
		if n > ev.pairSlots[g][f.key] {
			ev.pairSlots[g][f.key] = n
		}
	}
	for g := 0; g < numGroups; g++ {
		for key, n := range ev.pairSlots[g] {
			ev.remOutTpl[g][key.Src] += n
			ev.remInTpl[g][key.Dst] += n
		}
	}
	// Routing plans. The driving group is the group of the pair's heaviest
	// instance (the flow chooseNext selects — same-pair flows share a
	// preference tier, so the sorted list's first instance always drives);
	// the remaining groups follow in descending order of their heaviest
	// same-pair flow, matching Algorithm 2 step 6.
	ev.plans = make(map[traffic.PairKey]*pairPlan, len(ev.pairList))
	for _, key := range ev.pairList {
		insts := ev.byPair[key]
		maxBW := make(map[int]float64)
		minLat := make(map[int]float64)
		for _, i := range insts {
			f := ev.flowsTpl[i]
			g := ev.prep.GroupOf[f.uc]
			if _, ok := maxBW[g]; !ok {
				minLat[g] = -1
			}
			if f.bw > maxBW[g] {
				maxBW[g] = f.bw
			}
			if f.lat > 0 && (minLat[g] < 0 || f.lat < minLat[g]) {
				minLat[g] = f.lat
			}
		}
		drive := ev.prep.GroupOf[ev.flowsTpl[insts[0]].uc]
		var rest []int
		for g := range maxBW {
			if g != drive {
				rest = append(rest, g)
			}
		}
		sort.Slice(rest, func(a, b int) bool {
			if maxBW[rest[a]] != maxBW[rest[b]] {
				return maxBW[rest[a]] > maxBW[rest[b]]
			}
			return rest[a] < rest[b]
		})
		plan := &pairPlan{allInsts: insts}
		for _, g := range append([]int{drive}, rest...) {
			plan.groups = append(plan.groups, g)
			plan.bw = append(plan.bw, maxBW[g])
			plan.lat = append(plan.lat, minLat[g])
		}
		ev.plans[key] = plan
	}
	// Dense pair index in pairList order, with the per-core incidence lists
	// the session's move evaluation walks instead of scanning every pair.
	ev.pairIdx = make(map[traffic.PairKey]int32, len(ev.pairList))
	ev.planOf = make([]*pairPlan, len(ev.pairList))
	for i, key := range ev.pairList {
		ev.pairIdx[key] = int32(i)
		ev.planOf[i] = ev.plans[key]
	}
	ev.pairsOf = make([][]int32, ev.numCores)
	for i, key := range ev.pairList {
		ev.pairsOf[key.Src] = append(ev.pairsOf[key.Src], int32(i))
		if key.Dst != key.Src {
			ev.pairsOf[key.Dst] = append(ev.pairsOf[key.Dst], int32(i))
		}
	}
	// Per-group routing worklists in global (bandwidth-sorted) pair order.
	// With a fixed placement the groups never interact — each owns its slot
	// tables and candidate costs read only its own state — so evaluating a
	// group against this list alone reproduces exactly what a full pass
	// would grant it. The session's per-group rebuild fallback rests on
	// this decomposition.
	ev.groupPairs = make([][]pairDemand, numGroups)
	for _, key := range ev.pairList {
		plan := ev.plans[key]
		for i, g := range plan.groups {
			ev.groupPairs[g] = append(ev.groupPairs[g], pairDemand{
				key: key, idx: ev.pairIdx[key], slots: ev.pairSlots[g][key], bw: plan.bw[i], lat: plan.lat[i],
			})
		}
	}
	// Per-use-case stat iteration: distinct pairs with the flow bandwidth
	// (use-case validation forbids duplicate pairs, so flows ≡ pairs).
	ev.ucPairs = make([][]ucPairStat, len(ev.prep.UseCases))
	ev.ucPairIdx = make([][]int32, len(ev.prep.UseCases))
	for uc, u := range ev.prep.UseCases {
		for _, f := range u.Flows {
			ev.ucPairs[uc] = append(ev.ucPairs[uc], ucPairStat{key: f.Key(), bw: f.BandwidthMBs})
			ev.ucPairIdx[uc] = append(ev.ucPairIdx[uc], ev.pairIdx[f.Key()])
		}
	}
	ev.active = make([]int, 0, ev.numCores)
	seen := make([]bool, ev.numCores)
	for _, f := range ev.flowsTpl {
		for _, c := range []traffic.CoreID{f.key.Src, f.key.Dst} {
			if !seen[c] {
				seen[c] = true
				ev.active = append(ev.active, int(c))
			}
		}
	}
	sort.Ints(ev.active)
}

// ValidatePlacement checks a fixed placement against the evaluator's
// topology and NI shape without running the configuration phase: slice
// lengths, switch/NI ranges, NI-on-switch consistency and per-NI core
// capacity. Cores with a negative switch are unattached and skipped.
func (ev *Evaluator) ValidatePlacement(coreSwitch, coreNI []int) error {
	if len(coreSwitch) != ev.numCores || len(coreNI) != ev.numCores {
		return fmt.Errorf("core: fixed placement has wrong length (switch %d, NI %d entries, design has %d cores)",
			len(coreSwitch), len(coreNI), ev.numCores)
	}
	numNIs := ev.top.NumSwitches() * ev.p.NIsPerSwitch
	seats := make([]int, numNIs)
	for c := 0; c < ev.numCores; c++ {
		s, ni := coreSwitch[c], coreNI[c]
		if s < 0 {
			continue
		}
		if s >= ev.top.NumSwitches() || ni < 0 || ni >= numNIs || ni/ev.p.NIsPerSwitch != s {
			return fmt.Errorf("core: fixed placement of core %d (switch %d, NI %d) invalid", c, s, ni)
		}
		seats[ni]++
		if seats[ni] > ev.p.CoresPerNI {
			return fmt.Errorf("core: fixed placement overfills NI %d (%d cores, capacity %d)", ni, seats[ni], ev.p.CoresPerNI)
		}
	}
	return nil
}

// covered reports whether the fix places every communicating core, which
// lets the evaluation skip the NI demand projections entirely (they only
// steer the placement of unmapped cores).
func (ev *Evaluator) covered(fix *placementFix) bool {
	if fix == nil {
		return false
	}
	for _, c := range ev.active {
		if fix.CoreSwitch[c] < 0 {
			return false
		}
	}
	return true
}

// getScratch draws (or creates) a clean scratch arena.
func (ev *Evaluator) getScratch() *evalScratch {
	if sc, ok := ev.pool.Get().(*evalScratch); ok {
		return sc
	}
	sc := &evalScratch{}
	sc.states = make([]*tdma.State, len(ev.prep.Groups))
	for g := range sc.states {
		st, err := tdma.NewState(ev.totalLinks, ev.p.SlotTableSize)
		if err != nil {
			// Params were validated at construction; NewState cannot fail.
			panic(fmt.Sprintf("core: internal: %v", err))
		}
		sc.states[g] = st
	}
	sc.flows = make([]flowInst, len(ev.flowsTpl))
	return sc
}

// putScratch releases every reservation the evaluation journaled (restoring
// the states to all-free without an O(links*slots) wipe) and returns the
// arena to the pool.
func (ev *Evaluator) putScratch(sc *evalScratch) {
	for i := len(sc.journal) - 1; i >= 0; i-- {
		r := sc.journal[i]
		sc.states[r.group].Release(r.owner, r.path, r.start)
	}
	sc.journal = sc.journal[:0]
	ev.pool.Put(sc)
}

// mapperFor assembles a mapper over the scratch arena. Immutable tables are
// shared with the evaluator; mutable ones are copied from the templates.
func (ev *Evaluator) mapperFor(sc *evalScratch, fix *placementFix) (*mapper, error) {
	m := &mapper{
		ev: ev, prep: ev.prep, p: ev.p, top: ev.top,
		meshLinks: ev.meshLinks, totalLinks: ev.totalLinks,
		states:    sc.states,
		byPair:    ev.byPair,
		pairSlots: ev.pairSlots,
		journal:   sc.journal[:0],
	}
	copy(sc.flows, ev.flowsTpl)
	m.flows = sc.flows
	if !ev.covered(fix) {
		if sc.remOut == nil {
			sc.remOut = make([][]int, len(ev.prep.Groups))
			sc.remIn = make([][]int, len(ev.prep.Groups))
			for g := range sc.remOut {
				sc.remOut[g] = make([]int, ev.numCores)
				sc.remIn[g] = make([]int, ev.numCores)
			}
		}
		for g := range sc.remOut {
			copy(sc.remOut[g], ev.remOutTpl[g])
			copy(sc.remIn[g], ev.remInTpl[g])
		}
		m.remOut, m.remIn = sc.remOut, sc.remIn
	}
	m.configs = make([]map[traffic.PairKey]*Assignment, len(ev.prep.Groups))
	for g := range m.configs {
		m.configs[g] = make(map[traffic.PairKey]*Assignment)
	}
	if err := m.placeFixed(fix); err != nil {
		return nil, err
	}
	return m, nil
}

// Evaluate runs the configuration phase on a fixed core placement using the
// pooled scratch state and returns the complete Result. The output is
// bit-identical to EvaluateFixed on the same inputs; only the fixed
// per-call costs are gone.
func (ev *Evaluator) Evaluate(coreSwitch, coreNI []int) (*Result, error) {
	if err := ev.ValidatePlacement(coreSwitch, coreNI); err != nil {
		return nil, err
	}
	sc := ev.getScratch()
	m, err := ev.mapperFor(sc, &placementFix{CoreSwitch: coreSwitch, CoreNI: coreNI})
	if err != nil {
		ev.putScratch(sc)
		return nil, err
	}
	mapping, err := m.run()
	res := (*Result)(nil)
	if err == nil {
		dim := topology.Dim{Rows: ev.top.Rows, Cols: ev.top.Cols}
		res = &Result{Mapping: mapping, Attempts: []Attempt{{Dim: dim}}, Stats: computeStats(mapping, m.states)}
	}
	sc.journal = m.journal
	ev.putScratch(sc)
	return res, err
}

// attempt runs one constructive/configuration pass and, on success, hands
// the final TDMA states and reservation journal to the caller (the growth
// loop and Session initialization keep them). The scratch arena backs the
// run: a failed attempt recycles it, a successful one detaches it — the
// pool lazily allocates a replacement — so the frequent outcome of a
// saturated fabric (infeasible) costs no state allocation at all.
func (ev *Evaluator) attempt(fix *placementFix) (*Mapping, []*tdma.State, []resRecord, error) {
	sc := ev.getScratch()
	m, err := ev.mapperFor(sc, fix)
	if err != nil {
		ev.putScratch(sc)
		return nil, nil, nil, err
	}
	mapping, err := m.run()
	if err != nil {
		sc.journal = m.journal
		ev.putScratch(sc)
		return nil, nil, nil, err
	}
	return mapping, m.states, m.journal, nil
}

// reserveSlots selects a path and aligned slots for one pair on one state:
// candidate paths cheapest-first (from the per-pair cache), slot count
// escalating past the bandwidth requirement when the latency bound needs a
// smaller gap. On success the reservation is committed to st under owner
// and the full path, starts and slot count are returned.
func (ev *Evaluator) reserveSlots(st *tdma.State, owner int32, key traffic.PairKey,
	srcS, dstS, egress, ingress int, bw, latencyNS float64) (path []int, starts []int, n int, err error) {
	T := ev.p.SlotTableSize
	slots0 := tdma.SlotsNeeded(bw, ev.p.SlotBandwidthMBs())
	if slots0 > T {
		return nil, nil, 0, fmt.Errorf("flow %d->%d needs %d slots, table has %d (bandwidth %0.1f exceeds link capacity %0.1f MB/s)",
			key.Src, key.Dst, slots0, T, bw, ev.p.LinkBandwidthMBs())
	}
	latBudget := ev.p.LatencyBudgetSlots(latencyNS)
	var meshCands []route.Path
	if srcS == dstS {
		meshCands = []route.Path{nil}
	} else {
		meshCands = ev.paths.Candidates(st, topology.SwitchID(srcS), topology.SwitchID(dstS), slots0, ev.p.Cost)
		if len(meshCands) == 0 {
			return nil, nil, 0, fmt.Errorf("flow %d->%d: no feasible path %d->%d (%d slots)", key.Src, key.Dst, srcS, dstS, slots0)
		}
		if ev.p.DisableUnifiedSlots {
			// Ablation A2: path selection ignores slot alignment — commit to
			// the single cheapest bandwidth-feasible path.
			meshCands = meshCands[:1]
		}
	}
	maxLen := 2
	for _, cand := range meshCands {
		if len(cand)+2 > maxLen {
			maxLen = len(cand) + 2
		}
	}
	full := make([]int, 0, maxLen) // shared probe buffer; cloned only on success
	for _, cand := range meshCands {
		full = full[:0]
		full = append(full, egress)
		for _, l := range cand {
			full = append(full, int(l))
		}
		full = append(full, ingress)
		for n := slots0; n <= T; n++ {
			starts, ok := st.FindAligned(full, n)
			if !ok {
				break // more slots cannot become available
			}
			if latBudget >= 0 && tdma.WorstCaseLatencySlotsSorted(starts, len(full), T) > latBudget {
				continue // spread more slots to shrink the gap
			}
			if err := st.Reserve(owner, full, starts); err != nil {
				return nil, nil, 0, fmt.Errorf("internal: reserve after FindAligned: %w", err)
			}
			return append([]int(nil), full...), starts, n, nil
		}
	}
	return nil, nil, 0, fmt.Errorf("flow %d->%d: no aligned slots (need %d, latency budget %d slots) on any of %d paths",
		key.Src, key.Dst, slots0, latBudget, len(meshCands))
}

// Infeasibility sentinels of the session's delta re-route. The move loop of
// a search engine probes thousands of placements whose rejections are
// ordinary control flow, so the hot path reports them without formatting;
// the one-shot entry points keep their descriptive errors.
var (
	errOverCapacity = fmt.Errorf("core: flow bandwidth exceeds link capacity")
	errNoPath       = fmt.Errorf("core: no bandwidth-feasible path")
	errNoAligned    = fmt.Errorf("core: no aligned slots on any candidate path")
)

// reserveScratch is the per-session working state of reserveSlotsInto: the
// route-query scratch and the shared path probe buffer.
type reserveScratch struct {
	route *route.Scratch
	full  []int
}

// reserveSlotsInto is reserveSlots for the session hot path: path and start
// buffers come from (and are retained by) the record, route queries reuse
// the session's scratch, and infeasibility is reported through shared
// sentinel errors. The selected path, starts and slot count are identical
// to reserveSlots' on the same state — both probe the same candidates in
// the same order.
func (ev *Evaluator) reserveSlotsInto(sc *reserveScratch, st *tdma.State, owner int32, key traffic.PairKey,
	srcS, dstS, egress, ingress int, bw, latencyNS float64, rec *resRecord) error {
	T := ev.p.SlotTableSize
	slots0 := tdma.SlotsNeeded(bw, ev.p.SlotBandwidthMBs())
	if slots0 > T {
		return errOverCapacity
	}
	if cap(rec.start) < T {
		// A reservation never holds more than T starts; sizing the record's
		// buffer once keeps every later probe allocation-free no matter which
		// pair the recycled record serves.
		rec.start = make([]int, 0, T)
	}
	latBudget := ev.p.LatencyBudgetSlots(latencyNS)
	var meshCands []route.Path
	if srcS != dstS {
		meshCands = ev.paths.CandidatesInto(sc.route, st, topology.SwitchID(srcS), topology.SwitchID(dstS), slots0, ev.p.Cost)
		if len(meshCands) == 0 {
			return errNoPath
		}
		if ev.p.DisableUnifiedSlots {
			meshCands = meshCands[:1]
		}
	} else {
		meshCands = sameSwitchCands
	}
	for _, cand := range meshCands {
		full := sc.full[:0]
		full = append(full, egress)
		for _, l := range cand {
			full = append(full, int(l))
		}
		full = append(full, ingress)
		sc.full = full
		for n := slots0; n <= T; n++ {
			starts, ok := st.FindAlignedInto(full, n, rec.start[:0])
			if !ok {
				break // more slots cannot become available
			}
			rec.start = starts // retain buffer growth across rejected probes
			if latBudget >= 0 && tdma.WorstCaseLatencySlotsSorted(starts, len(full), T) > latBudget {
				continue // spread more slots to shrink the gap
			}
			if err := st.Reserve(owner, full, starts); err != nil {
				return fmt.Errorf("internal: reserve after FindAligned: %w", err)
			}
			rec.path = append(rec.path[:0], full...)
			rec.start = starts
			hops := 0
			for _, l := range rec.path {
				if l < ev.meshLinks {
					hops++
				}
			}
			rec.hops = int32(hops)
			return nil
		}
	}
	return errNoAligned
}

// sameSwitchCands is the single empty mesh path of a src==dst reservation.
var sameSwitchCands = []route.Path{nil}
