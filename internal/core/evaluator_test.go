// Equivalence and regression tests for the incremental evaluation engine,
// written against the public API (external test package so the analytic
// verifier can be imported without a cycle).
package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"nocmap/internal/core"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
	"nocmap/internal/verify"
)

// evalDesign is a three-use-case, eight-core design with one shared pair
// and a latency-bound flow — enough structure to exercise group ordering,
// slot escalation and multi-candidate routing.
func evalDesign(t *testing.T) (*usecase.Prepared, int) {
	t.Helper()
	d := &traffic.Design{
		Name:  "eval-eq",
		Cores: traffic.MakeCores(8),
		UseCases: []*traffic.UseCase{
			{Name: "u0", Flows: []traffic.Flow{
				{Src: 0, Dst: 1, BandwidthMBs: 400},
				{Src: 1, Dst: 2, BandwidthMBs: 220},
				{Src: 2, Dst: 3, BandwidthMBs: 90, MaxLatencyNS: 900},
				{Src: 4, Dst: 5, BandwidthMBs: 150},
			}},
			{Name: "u1", Flows: []traffic.Flow{
				{Src: 0, Dst: 1, BandwidthMBs: 180},
				{Src: 5, Dst: 6, BandwidthMBs: 240},
				{Src: 6, Dst: 7, BandwidthMBs: 60},
			}},
			{Name: "u2", Flows: []traffic.Flow{
				{Src: 3, Dst: 0, BandwidthMBs: 120},
				{Src: 7, Dst: 4, BandwidthMBs: 200},
			}},
		},
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	return prep, d.NumCores()
}

func evalParams() core.Params {
	p := core.DefaultParams()
	p.NIsPerSwitch = 1
	p.CoresPerNI = 2
	return p
}

// randomPlacement seats every core on a random NI seat of the topology.
func randomPlacement(rng *rand.Rand, top *topology.Topology, p core.Params, numCores int) (cs, cn []int) {
	numNIs := top.NumSwitches() * p.NIsPerSwitch
	var seats []int
	for ni := 0; ni < numNIs; ni++ {
		for k := 0; k < p.CoresPerNI; k++ {
			seats = append(seats, ni)
		}
	}
	rng.Shuffle(len(seats), func(i, j int) { seats[i], seats[j] = seats[j], seats[i] })
	cs = make([]int, numCores)
	cn = make([]int, numCores)
	for c := 0; c < numCores; c++ {
		cn[c] = seats[c]
		cs[c] = seats[c] / p.NIsPerSwitch
	}
	return cs, cn
}

func sameResult(t *testing.T, label string, a, b *core.Result) {
	t.Helper()
	if a.Stats != b.Stats {
		t.Fatalf("%s: stats differ: %+v vs %+v", label, a.Stats, b.Stats)
	}
	for c := range a.Mapping.CoreSwitch {
		if a.Mapping.CoreSwitch[c] != b.Mapping.CoreSwitch[c] || a.Mapping.CoreNI[c] != b.Mapping.CoreNI[c] {
			t.Fatalf("%s: placements differ at core %d", label, c)
		}
	}
	for uc := range a.Mapping.Configs {
		ca, cb := a.Mapping.Configs[uc].Assignments, b.Mapping.Configs[uc].Assignments
		if len(ca) != len(cb) {
			t.Fatalf("%s: use-case %d has %d vs %d assignments", label, uc, len(ca), len(cb))
		}
		for key, aa := range ca {
			bb, ok := cb[key]
			if !ok {
				t.Fatalf("%s: use-case %d missing pair %v", label, uc, key)
			}
			if aa.SlotCount != bb.SlotCount || len(aa.Path) != len(bb.Path) || len(aa.Starts) != len(bb.Starts) {
				t.Fatalf("%s: use-case %d pair %v: assignments differ in shape", label, uc, key)
			}
			for i := range aa.Path {
				if aa.Path[i] != bb.Path[i] {
					t.Fatalf("%s: use-case %d pair %v: paths differ", label, uc, key)
				}
			}
			for i := range aa.Starts {
				if aa.Starts[i] != bb.Starts[i] {
					t.Fatalf("%s: use-case %d pair %v: starts differ", label, uc, key)
				}
			}
		}
	}
}

// TestEvaluatorMatchesEvaluateFixed: one shared Evaluator (pooled scratch,
// cached path tables) must produce bit-identical Results to the
// per-call EvaluateFixed wrapper on randomized placements, across mesh,
// torus and custom fabrics, with infeasible placements interleaved so the
// arena is also proven clean after failed evaluations.
func TestEvaluatorMatchesEvaluateFixed(t *testing.T) {
	prep, numCores := evalDesign(t)
	p := evalParams()

	mesh, err := topology.NewMesh(3, 3, p.CoresPerSwitch())
	if err != nil {
		t.Fatal(err)
	}
	torus, err := topology.NewTorus(3, 3, p.CoresPerSwitch())
	if err != nil {
		t.Fatal(err)
	}
	ring := &topology.Custom{Name: "ring6", Switches: 6,
		Links: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}}
	customTop, err := ring.Build(p.CoresPerSwitch())
	if err != nil {
		t.Fatal(err)
	}

	evaluated := 0
	for _, top := range []*topology.Topology{mesh, torus, customTop} {
		ev, err := core.NewEvaluator(prep, numCores, top, p)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		feasible := 0
		for trial := 0; trial < 25; trial++ {
			cs, cn := randomPlacement(rng, top, p, numCores)
			label := fmt.Sprintf("%s trial %d", top, trial)
			got, gotErr := ev.Evaluate(cs, cn)
			want, wantErr := core.EvaluateFixed(prep, numCores, top, cs, cn, p)
			if (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%s: feasibility diverged: evaluator err=%v, wrapper err=%v", label, gotErr, wantErr)
			}
			evaluated++
			if gotErr != nil {
				continue
			}
			feasible++
			sameResult(t, label, got, want)
			if vs := verify.Check(got.Mapping); len(vs) != 0 {
				t.Fatalf("%s: %d verification violations, first: %v", label, len(vs), vs[0])
			}
		}
		if feasible == 0 {
			t.Errorf("%s: no feasible random placement in 25 trials; equivalence untested", top)
		}
	}
	if evaluated < 50 {
		t.Fatalf("only %d placements compared, want >= 50", evaluated)
	}
}

// TestEvaluateFixedValidatesPlacement: nil, short, out-of-range,
// wrong-switch and overfull placements from a custom engine must surface as
// errors from the wrapper (and the Evaluator), never as panics deep in the
// configuration phase.
func TestEvaluateFixedValidatesPlacement(t *testing.T) {
	prep, numCores := evalDesign(t)
	p := evalParams()
	top, err := topology.NewMesh(3, 3, p.CoresPerSwitch())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluator(prep, numCores, top, p)
	if err != nil {
		t.Fatal(err)
	}
	good := make([]int, numCores)
	goodNI := make([]int, numCores)
	for c := 0; c < numCores; c++ {
		good[c] = c % top.NumSwitches()
		goodNI[c] = good[c] * p.NIsPerSwitch
	}
	overfull := func() ([]int, []int) {
		cs := make([]int, numCores)
		cn := make([]int, numCores)
		for c := range cs {
			cs[c], cn[c] = 0, 0 // every core on NI 0: capacity is CoresPerNI=2
		}
		return cs, cn
	}
	cases := []struct {
		name   string
		cs, cn []int
	}{
		{"nil switch slice", nil, goodNI},
		{"nil NI slice", good, nil},
		{"short switch slice", good[:numCores-1], goodNI},
		{"switch out of range", replace(good, 0, top.NumSwitches()), goodNI},
		{"NI out of range", good, replace(goodNI, 0, top.NumSwitches()*p.NIsPerSwitch)},
		{"NI on wrong switch", good, replace(goodNI, 0, goodNI[1]+p.NIsPerSwitch)},
	}
	ocs, ocn := overfull()
	cases = append(cases, struct {
		name   string
		cs, cn []int
	}{"overfull NI", ocs, ocn})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panicked instead of returning an error: %v", r)
				}
			}()
			if _, err := core.EvaluateFixed(prep, numCores, top, tc.cs, tc.cn, p); err == nil {
				t.Errorf("EvaluateFixed accepted %s", tc.name)
			}
			if _, err := ev.Evaluate(tc.cs, tc.cn); err == nil {
				t.Errorf("Evaluator.Evaluate accepted %s", tc.name)
			}
			if _, err := ev.NewSession(tc.cs, tc.cn); err == nil {
				t.Errorf("NewSession accepted %s", tc.name)
			}
		})
	}
}

func replace(s []int, i, v int) []int {
	out := append([]int(nil), s...)
	if i < len(out) {
		out[i] = v
	}
	return out
}

// TestSessionMovesStayVerifiedAndUndoRestores drives a session through a
// random move sequence: every kept configuration must pass the full
// analytic verification with statistics matching what TryMove reported,
// and every undone move must restore the previous configuration exactly.
func TestSessionMovesStayVerifiedAndUndoRestores(t *testing.T) {
	prep, numCores := evalDesign(t)
	p := evalParams()
	top, err := topology.NewMesh(3, 3, p.CoresPerSwitch())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluator(prep, numCores, top, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var sess *core.Session
	for trial := 0; trial < 50 && sess == nil; trial++ {
		cs, cn := randomPlacement(rng, top, p, numCores)
		if s, err := ev.NewSession(cs, cn); err == nil {
			sess = s
		}
	}
	if sess == nil {
		t.Fatal("no feasible start found for the session")
	}
	moves, kept := 0, 0
	for it := 0; it < 200; it++ {
		before := sess.Result()
		cs, cn := sess.Placement()
		x, y := rng.Intn(numCores), rng.Intn(numCores)
		if x == y || cn[x] == cn[y] {
			continue
		}
		cs[x], cs[y] = cs[y], cs[x]
		cn[x], cn[y] = cn[y], cn[x]
		stats, err := sess.TryMove(cs, cn, x, y)
		if err != nil {
			// Infeasible: the session must be untouched.
			sameResult(t, fmt.Sprintf("it %d (infeasible move)", it), sess.Result(), before)
			continue
		}
		moves++
		if rng.Float64() < 0.5 {
			sess.Keep()
			kept++
			res := sess.Result()
			if res.Stats != stats {
				t.Fatalf("it %d: TryMove stats %+v, committed result stats %+v", it, stats, res.Stats)
			}
			if vs := verify.Check(res.Mapping); len(vs) != 0 {
				t.Fatalf("it %d: kept move violates invariants: %v", it, vs[0])
			}
		} else {
			sess.Undo()
			sameResult(t, fmt.Sprintf("it %d (undo)", it), sess.Result(), before)
		}
	}
	if moves == 0 || kept == 0 {
		t.Fatalf("move sequence exercised nothing (moves=%d kept=%d)", moves, kept)
	}
}

// TestSessionRejectsUnlistedMoves: a placement that changes seats of cores
// not listed as moved must be rejected — silently re-routing only part of
// the change would corrupt the configuration.
func TestSessionRejectsUnlistedMoves(t *testing.T) {
	prep, numCores := evalDesign(t)
	p := evalParams()
	top, err := topology.NewMesh(3, 3, p.CoresPerSwitch())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.NewEvaluator(prep, numCores, top, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var sess *core.Session
	for trial := 0; trial < 50 && sess == nil; trial++ {
		cs, cn := randomPlacement(rng, top, p, numCores)
		if s, err := ev.NewSession(cs, cn); err == nil {
			sess = s
		}
	}
	if sess == nil {
		t.Fatal("no feasible start found")
	}
	cs, cn := sess.Placement()
	x, y := 0, 1
	for cn[x] == cn[y] {
		y++
	}
	cs[x], cs[y] = cs[y], cs[x]
	cn[x], cn[y] = cn[y], cn[x]
	if _, err := sess.TryMove(cs, cn, x); err == nil {
		t.Error("TryMove accepted a swap that listed only one moved core")
	}
}
