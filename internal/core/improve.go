package core

import (
	"math/rand"
)

// improveResult is the placement-refinement pass (extension X1). The paper
// notes that after the constructive mapping "the solution space can be
// explored further by considering swapping of vertices using simulated
// annealing or tabu search" [19]. This implementation performs
// deterministic greedy hill-climbing: candidate core swaps are proposed
// from a seeded PRNG and re-scored through the evaluator's pooled
// configuration phase (identical output to a from-scratch re-run, without
// the per-candidate validation and allocation), and a swap is kept only
// when it remains feasible and strictly lowers the bandwidth-weighted mesh
// hop count.
func improveResult(ev *Evaluator, res *Result) *Result {
	iters := ev.p.ImproveIters
	if iters <= 0 {
		return res
	}
	rng := rand.New(rand.NewSource(1)) // fixed seed: runs are reproducible
	best := res
	bestCost := res.Stats.AvgMeshHops

	// Collect attached cores once; swaps permute their switch/NI seats.
	var attached []int
	for c, s := range res.Mapping.CoreSwitch {
		if s >= 0 {
			attached = append(attached, c)
		}
	}
	if len(attached) < 2 {
		return res
	}
	for it := 0; it < iters; it++ {
		a := attached[rng.Intn(len(attached))]
		b := attached[rng.Intn(len(attached))]
		if a == b || best.Mapping.CoreSwitch[a] == best.Mapping.CoreSwitch[b] {
			continue
		}
		cs := append([]int(nil), best.Mapping.CoreSwitch...)
		cn := append([]int(nil), best.Mapping.CoreNI...)
		cs[a], cs[b] = cs[b], cs[a]
		cn[a], cn[b] = cn[b], cn[a]
		cand, err := ev.Evaluate(cs, cn)
		if err != nil {
			continue
		}
		if cand.Stats.AvgMeshHops < bestCost-1e-12 {
			// Keep the original search trace; only the mapping improves.
			cand.Attempts = best.Attempts
			best, bestCost = cand, cand.Stats.AvgMeshHops
		}
	}
	return best
}
