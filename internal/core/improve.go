package core

import (
	"math/rand"

	"nocmap/internal/tdma"
	"nocmap/internal/usecase"
)

// improve is the placement-refinement pass (extension X1). The paper notes
// that after the constructive mapping "the solution space can be explored
// further by considering swapping of vertices using simulated annealing or
// tabu search" [19]. This implementation performs deterministic greedy
// hill-climbing: candidate core swaps are proposed from a seeded PRNG, the
// configuration phase is re-run with the swapped placement, and the swap is
// kept only when it remains feasible and strictly lowers the
// bandwidth-weighted mesh hop count.
func improve(m *Mapping, states []*tdma.State, prep *usecase.Prepared, numCores int, p Params) (*Mapping, []*tdma.State) {
	iters := p.ImproveIters
	if iters <= 0 {
		return m, states
	}
	rng := rand.New(rand.NewSource(1)) // fixed seed: runs are reproducible
	best := m
	bestStates := states
	bestCost := computeStats(best, bestStates).AvgMeshHops

	// Collect attached cores once; swaps permute their switch/NI seats.
	var attached []int
	for c, s := range m.CoreSwitch {
		if s >= 0 {
			attached = append(attached, c)
		}
	}
	if len(attached) < 2 {
		return m, states
	}
	for it := 0; it < iters; it++ {
		a := attached[rng.Intn(len(attached))]
		b := attached[rng.Intn(len(attached))]
		if a == b || best.CoreSwitch[a] == best.CoreSwitch[b] {
			continue
		}
		cs := append([]int(nil), best.CoreSwitch...)
		cn := append([]int(nil), best.CoreNI...)
		cs[a], cs[b] = cs[b], cs[a]
		cn[a], cn[b] = cn[b], cn[a]
		cand, candStates, err := attemptMap(prep, numCores, best.Topology, p, &placementFix{CoreSwitch: cs, CoreNI: cn})
		if err != nil {
			continue
		}
		if cost := computeStats(cand, candStates).AvgMeshHops; cost < bestCost-1e-12 {
			best, bestStates, bestCost = cand, candStates, cost
		}
	}
	return best, bestStates
}
