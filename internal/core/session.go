package core

import (
	"fmt"
	"slices"

	"nocmap/internal/route"
	"nocmap/internal/tdma"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
)

// Session is incremental evaluation over one evolving placement. It owns a
// fully-configured state (every flow of every group routed and reserved)
// and evaluates a move — a few cores changing seats — by tearing down and
// re-routing only the pairs whose endpoints moved, instead of
// re-configuring the world. When the delta path cannot re-route a pair
// (the incremental order wedges where a from-scratch pass would not), it
// falls back to a full re-evaluation transparently — and because the
// groups of a fixed placement never share slot tables, that fallback
// decomposes per smooth-switching group: only the wedged group is re-routed
// from scratch, and one group's from-scratch failure rejects the move
// without evaluating the rest.
//
// A move is two-phase: TryMove reserves the new configuration and returns
// its statistics with the move pending; Keep commits it, Undo restores the
// previous configuration exactly. This is the shape a Metropolis acceptance
// loop needs — the annealer scores the candidate before deciding.
//
// The move path performs no heap allocation in steady state: records,
// their path/start buffers, the pending-move bookkeeping and every scratch
// live on the session and are recycled move over move (the per-group
// rebuild fallback and error formatting on cold validation paths are the
// deliberate exceptions). BenchmarkSessionMove gates this at 0 allocs/op
// in CI.
//
// The configurations a session reaches by deltas are always feasible,
// verified reservations, but they are not guaranteed to be the same
// configuration a from-scratch evaluation of the same placement would
// build: the incremental pass re-routes moved pairs against the standing
// reservations of unmoved ones, while a full pass routes everything in
// global bandwidth order. Search engines only need feasibility plus a
// deterministic score, which both paths provide.
//
// A Session is single-owner mutable state, like tdma.State: concurrent
// searches each own one (the evaluator underneath is shared). Clone forks
// an independent session at the same configuration — the speculative batch
// loop evaluates one candidate per clone concurrently.
type Session struct {
	ev *Evaluator

	// cs/cn hold the current placement; csAlt/cnAlt are the spare buffers
	// the next TryMove writes its candidate into (the pair swaps, so no
	// placement copy ever allocates).
	cs, cn       []int
	csAlt, cnAlt []int

	states []*tdma.State
	// recs holds the live reservation records dense by [group][pair index]
	// (nil where the group does not communicate over the pair).
	recs      [][]*resRecord
	nextOwner int32
	stats     Stats

	pending bool
	pm      pendingMove

	// freeRecs recycles records — and, through them, their path/start
	// buffers — across moves.
	freeRecs []*resRecord

	sc moveScratch
}

// pendingMove remembers how to undo the in-flight TryMove. Its slices are
// reused across moves.
type pendingMove struct {
	stats Stats

	// Delta bookkeeping per group: records released by the teardown and
	// fresh records the re-route granted.
	oldByGroup [][]*resRecord
	newByGroup [][]*resRecord

	// rebuilt lists the groups the fallback re-evaluated from scratch;
	// snap[g] then holds the group's complete pre-move record set
	// (restored wholesale on Undo).
	rebuilt []int
	snap    [][]*resRecord

	// swapped records whether the placement buffers were exchanged, so a
	// rollback from any point restores them correctly.
	swapped bool
}

// moveScratch is the reusable working state of one session's moves.
type moveScratch struct {
	res      reserveScratch
	affected []int32
	seenPair []bool
	seats    []int
	swCheck  []int
}

// Move-rejection sentinels: a search engine probes thousands of placements
// whose rejections are ordinary control flow, so the hot path reports them
// without formatting.
var (
	errPendingMove    = fmt.Errorf("core: session has a pending move (Keep or Undo it first)")
	errNICapacity     = fmt.Errorf("core: move overfills an NI's slot-table capacity")
	errSwitchCapacity = fmt.Errorf("core: move overfills a switch's mesh-link capacity")
	errMoveInfeasible = fmt.Errorf("core: move infeasible: a group's flows no longer route or fit their slot tables")
)

// newSessionShell builds an empty session with every buffer sized for the
// evaluator's design; callers fill states, records and the placement.
func (ev *Evaluator) newSessionShell() *Session {
	numGroups := len(ev.prep.Groups)
	numPairs := len(ev.pairList)
	s := &Session{
		ev:     ev,
		cs:     make([]int, ev.numCores),
		cn:     make([]int, ev.numCores),
		csAlt:  make([]int, ev.numCores),
		cnAlt:  make([]int, ev.numCores),
		states: make([]*tdma.State, numGroups),
		recs:   make([][]*resRecord, numGroups),
	}
	for g := range s.recs {
		s.recs[g] = make([]*resRecord, numPairs)
	}
	s.pm.oldByGroup = make([][]*resRecord, numGroups)
	s.pm.newByGroup = make([][]*resRecord, numGroups)
	s.pm.snap = make([][]*resRecord, numGroups)
	s.sc.res.route = route.NewScratch()
	s.sc.affected = make([]int32, 0, numPairs)
	s.sc.seenPair = make([]bool, numPairs)
	return s
}

func (s *Session) getRec() *resRecord {
	if n := len(s.freeRecs); n > 0 {
		r := s.freeRecs[n-1]
		s.freeRecs = s.freeRecs[:n-1]
		return r
	}
	return &resRecord{}
}

func (s *Session) putRec(r *resRecord) { s.freeRecs = append(s.freeRecs, r) }

// pathHops counts the mesh links of a full path (NI links excluded).
func (ev *Evaluator) pathHops(path []int) int32 {
	hops := int32(0)
	for _, l := range path {
		if l < ev.meshLinks {
			hops++
		}
	}
	return hops
}

// NewSession fully evaluates the placement and, on success, returns a
// session positioned at it. Every communicating core must be placed: a
// session evaluates moves of an existing complete placement, it does not
// run the constructive placement phase.
func (ev *Evaluator) NewSession(coreSwitch, coreNI []int) (*Session, error) {
	if err := ev.ValidatePlacement(coreSwitch, coreNI); err != nil {
		return nil, err
	}
	fix := &placementFix{CoreSwitch: coreSwitch, CoreNI: coreNI}
	if !ev.covered(fix) {
		return nil, fmt.Errorf("core: session placement leaves communicating cores unattached")
	}
	mapping, states, journal, err := ev.attempt(fix)
	if err != nil {
		return nil, err
	}
	s := ev.newSessionShell()
	copy(s.cs, coreSwitch)
	copy(s.cn, coreNI)
	s.states = states
	// Adopt the journal's records: the successful attempt detached its
	// scratch, so the records — and their path/start buffers — are
	// exclusively this session's and can enter the recycling pool.
	for i := range journal {
		r := &journal[i]
		r.idx = ev.pairIdx[r.key]
		r.hops = ev.pathHops(r.path)
		s.recs[r.group][r.idx] = r
	}
	s.nextOwner = int32(len(journal))
	s.stats = computeStats(mapping, states)
	return s, nil
}

// SessionFrom positions a session at an existing Result's configuration
// without re-running the configuration phase: the result's reservations are
// replayed into fresh slot tables exactly as granted. This matters beyond
// speed — a constructive (growth-loop) result is not always reproducible by
// a fixed-placement re-evaluation, because the constructive pass routed
// flows while the placement was still emerging; adopting the reservations
// keeps such results annealable. The result must be a feasible
// configuration on this evaluator's topology (engine results verified by
// internal/verify always are). The reservation data is copied, never
// aliased: the session's buffer recycling must not reach into the source
// result.
func (ev *Evaluator) SessionFrom(res *Result) (*Session, error) {
	if res == nil || res.Mapping == nil {
		return nil, fmt.Errorf("core: session from nil result")
	}
	m := res.Mapping
	if m.Topology.NumSwitches() != ev.top.NumSwitches() || m.Topology.NumLinks() != ev.top.NumLinks() {
		return nil, fmt.Errorf("core: result fabric %s does not match evaluator fabric %s", m.Topology, ev.top)
	}
	if err := ev.ValidatePlacement(m.CoreSwitch, m.CoreNI); err != nil {
		return nil, err
	}
	s := ev.newSessionShell()
	copy(s.cs, m.CoreSwitch)
	copy(s.cn, m.CoreNI)
	for g := range s.states {
		st, err := tdma.NewState(ev.totalLinks, ev.p.SlotTableSize)
		if err != nil {
			return nil, err
		}
		s.states[g] = st
	}
	// Collect the group-shared assignment of every (group, pair) from the
	// per-use-case configurations, then replay it.
	for uc := range ev.prep.UseCases {
		g := ev.prep.GroupOf[uc]
		cfg := m.Configs[uc]
		if cfg == nil {
			return nil, fmt.Errorf("core: result misses configuration of use-case %d", uc)
		}
		for i, ps := range ev.ucPairs[uc] {
			a := cfg.Assignments[ps.key]
			if a == nil {
				return nil, fmt.Errorf("core: result misses assignment of pair %d->%d", ps.key.Src, ps.key.Dst)
			}
			idx := ev.ucPairIdx[uc][i]
			if s.recs[g][idx] != nil {
				continue
			}
			r := s.getRec()
			r.group, r.owner, r.key, r.idx = g, s.nextOwner, ps.key, idx
			r.path = append(r.path[:0], a.Path...)
			r.start = append(r.start[:0], a.Starts...)
			r.hops = ev.pathHops(r.path)
			if err := s.states[g].Reserve(r.owner, r.path, r.start); err != nil {
				return nil, fmt.Errorf("core: result not reservable (pair %d->%d, group %d): %w", ps.key.Src, ps.key.Dst, g, err)
			}
			s.nextOwner++
			s.recs[g][idx] = r
		}
	}
	s.stats = s.statsFromRecs()
	return s, nil
}

// Clone forks an independent session at the same committed configuration:
// same placement, same reservations, same statistics, disjoint mutable
// state. The clones share only the immutable evaluator underneath, so each
// can run its own move loop concurrently — the speculative batch evaluator
// scores one candidate per clone. Cloning with a pending move is an error.
func (s *Session) Clone() (*Session, error) {
	if s.pending {
		return nil, errPendingMove
	}
	c := s.ev.newSessionShell()
	copy(c.cs, s.cs)
	copy(c.cn, s.cn)
	c.nextOwner = s.nextOwner
	c.stats = s.stats
	for g := range s.states {
		c.states[g] = s.states[g].Clone()
		for idx, r := range s.recs[g] {
			if r == nil {
				continue
			}
			nr := c.getRec()
			nr.group, nr.owner, nr.key, nr.idx, nr.hops = r.group, r.owner, r.key, r.idx, r.hops
			nr.path = append(nr.path[:0], r.path...)
			nr.start = append(nr.start[:0], r.start...)
			c.recs[g][idx] = nr
		}
	}
	return c, nil
}

// Stats returns the statistics of the current committed configuration.
func (s *Session) Stats() Stats { return s.stats }

// Placement returns copies of the current placement.
func (s *Session) Placement() (coreSwitch, coreNI []int) {
	return append([]int(nil), s.cs...), append([]int(nil), s.cn...)
}

// PlacementInto copies the current placement into the caller's buffers
// (each must have the design's core count) — the allocation-free form of
// Placement for proposal loops.
func (s *Session) PlacementInto(coreSwitch, coreNI []int) {
	copy(coreSwitch, s.cs)
	copy(coreNI, s.cn)
}

// TryMove evaluates the placement (coreSwitch, coreNI), which must differ
// from the session's current placement only at the listed moved cores. On
// success the move is pending — commit with Keep or roll back with Undo —
// and the returned Stats describe the new configuration. On error the
// session is unchanged and no move is pending.
func (s *Session) TryMove(coreSwitch, coreNI []int, moved ...int) (Stats, error) {
	if s.pending {
		return Stats{}, errPendingMove
	}
	if err := s.validatePlacement(coreSwitch, coreNI); err != nil {
		return Stats{}, err
	}
	for _, c := range moved {
		if c < 0 || c >= s.ev.numCores {
			return Stats{}, fmt.Errorf("core: moved core %d out of range", c)
		}
	}
	for c := 0; c < s.ev.numCores; c++ {
		if coreSwitch[c] == s.cs[c] && coreNI[c] == s.cn[c] {
			continue
		}
		listed := false
		for _, m := range moved {
			if m == c {
				listed = true
				break
			}
		}
		if !listed {
			return Stats{}, fmt.Errorf("core: core %d changed seats but is not listed as moved", c)
		}
	}
	if err := s.niCapacityCheck(coreNI, moved); err != nil {
		return Stats{}, err
	}
	if err := s.switchCapacityCheck(coreSwitch, moved); err != nil {
		return Stats{}, err
	}

	// Collect the pairs with a moved endpoint in the deterministic global
	// routing order (the incidence lists are ascending; the merge is sorted
	// back after dedup).
	affected := s.sc.affected[:0]
	for mi, c := range moved {
		dup := false
		for _, c2 := range moved[:mi] {
			if c2 == c {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		for _, idx := range s.ev.pairsOf[c] {
			if !s.sc.seenPair[idx] {
				s.sc.seenPair[idx] = true
				affected = append(affected, idx)
			}
		}
	}
	slices.Sort(affected)
	for _, idx := range affected {
		s.sc.seenPair[idx] = false
	}
	s.sc.affected = affected

	// Adopt the candidate placement (buffer swap; rollback swaps back).
	pm := &s.pm
	copy(s.csAlt, coreSwitch)
	copy(s.cnAlt, coreNI)
	s.cs, s.csAlt = s.csAlt, s.cs
	s.cn, s.cnAlt = s.cnAlt, s.cn
	pm.swapped = true

	// Tear down every affected pair.
	numGroups := len(s.ev.prep.Groups)
	for _, idx := range affected {
		plan := s.ev.planOf[idx]
		for _, g := range plan.groups {
			r := s.recs[g][idx]
			if r == nil {
				s.rollbackMove()
				return Stats{}, fmt.Errorf("core: internal: pair %d missing from group %d", idx, g)
			}
			s.states[g].Release(r.owner, r.path, r.start)
			s.recs[g][idx] = nil
			pm.oldByGroup[g] = append(pm.oldByGroup[g], r)
		}
	}

	// Re-route group by group. The groups of a fixed placement are fully
	// independent — each owns its slot tables — so a group whose delta
	// re-route wedges falls back to a from-scratch re-route of that group
	// alone (identical to its share of a full re-evaluation), and a group
	// whose from-scratch pass fails proves the whole move infeasible
	// without touching the remaining groups.
	for g := 0; g < numGroups; g++ {
		ok := true
		for _, idx := range affected {
			plan := s.ev.planOf[idx]
			gi := -1
			for i, pg := range plan.groups {
				if pg == g {
					gi = i
					break
				}
			}
			if gi < 0 {
				continue // this group does not communicate over the pair
			}
			key := s.ev.pairList[idx]
			rec := s.getRec()
			err := s.ev.reserveSlotsInto(&s.sc.res, s.states[g], s.nextOwner, key,
				s.cs[key.Src], s.cs[key.Dst], s.niEgress(s.cn[key.Src]), s.niIngress(s.cn[key.Dst]),
				plan.bw[gi], plan.lat[gi], rec)
			if err != nil {
				s.putRec(rec)
				ok = false
				break
			}
			rec.group, rec.owner, rec.key, rec.idx = g, s.nextOwner, key, idx
			s.nextOwner++
			s.recs[g][idx] = rec
			pm.newByGroup[g] = append(pm.newByGroup[g], rec)
		}
		if ok {
			continue
		}
		if err := s.rebuildGroup(g); err != nil {
			s.rollbackMove()
			return Stats{}, errMoveInfeasible
		}
	}
	pm.stats = s.statsFromRecs()
	s.pending = true
	return pm.stats, nil
}

// rebuildGroup re-routes every pair of group g from scratch in the global
// order, after undoing the group's partial delta. On success the group
// carries exactly the configuration a full re-evaluation of the placement
// would grant it; on failure the group is restored to its pre-move
// configuration.
func (s *Session) rebuildGroup(g int) error {
	pm := &s.pm
	for _, r := range pm.newByGroup[g] {
		s.states[g].Release(r.owner, r.path, r.start)
		s.recs[g][r.idx] = nil
		s.putRec(r)
	}
	pm.newByGroup[g] = pm.newByGroup[g][:0]
	// Snapshot the pre-move record set: the current (untouched) records
	// plus the ones the teardown released.
	if pm.snap[g] == nil {
		pm.snap[g] = make([]*resRecord, len(s.recs[g]))
	}
	snap := pm.snap[g]
	copy(snap, s.recs[g])
	for _, r := range pm.oldByGroup[g] {
		snap[r.idx] = r
	}
	pm.oldByGroup[g] = pm.oldByGroup[g][:0]
	pm.rebuilt = append(pm.rebuilt, g)

	s.states[g].Reset()
	cur := s.recs[g]
	for i := range cur {
		cur[i] = nil
	}
	for _, pd := range s.ev.groupPairs[g] {
		key := pd.key
		rec := s.getRec()
		err := s.ev.reserveSlotsInto(&s.sc.res, s.states[g], s.nextOwner, key,
			s.cs[key.Src], s.cs[key.Dst], s.niEgress(s.cn[key.Src]), s.niIngress(s.cn[key.Dst]),
			pd.bw, pd.lat, rec)
		if err != nil {
			s.putRec(rec)
			s.restoreGroupFromSnap(g)
			pm.rebuilt = pm.rebuilt[:len(pm.rebuilt)-1]
			return err
		}
		rec.group, rec.owner, rec.key, rec.idx = g, s.nextOwner, key, pd.idx
		s.nextOwner++
		cur[pd.idx] = rec
	}
	return nil
}

// restoreGroupFromSnap resets group g's state, frees its current records and
// replays the snapshot taken by rebuildGroup.
func (s *Session) restoreGroupFromSnap(g int) {
	cur := s.recs[g]
	for i, r := range cur {
		if r != nil {
			s.putRec(r)
			cur[i] = nil
		}
	}
	s.states[g].Reset()
	for _, r := range s.pm.snap[g] {
		if r == nil {
			continue
		}
		if err := s.states[g].Reserve(r.owner, r.path, r.start); err != nil {
			// The set was simultaneously live before; replay cannot conflict.
			panic(fmt.Sprintf("core: internal: group restore failed: %v", err))
		}
	}
	copy(cur, s.pm.snap[g])
}

// rollbackMove restores every group and the placement to the pre-move
// configuration and recycles the rejected records.
func (s *Session) rollbackMove() {
	pm := &s.pm
	for _, g := range pm.rebuilt {
		s.restoreGroupFromSnap(g)
	}
	pm.rebuilt = pm.rebuilt[:0]
	for g := range pm.newByGroup {
		lst := pm.newByGroup[g]
		for i := len(lst) - 1; i >= 0; i-- {
			r := lst[i]
			s.states[g].Release(r.owner, r.path, r.start)
			s.recs[g][r.idx] = nil
			s.putRec(r)
		}
		pm.newByGroup[g] = lst[:0]
		for _, r := range pm.oldByGroup[g] {
			if err := s.states[g].Reserve(r.owner, r.path, r.start); err != nil {
				panic(fmt.Sprintf("core: internal: session rollback failed: %v", err))
			}
			s.recs[g][r.idx] = r
		}
		pm.oldByGroup[g] = pm.oldByGroup[g][:0]
	}
	if pm.swapped {
		s.cs, s.csAlt = s.csAlt, s.cs
		s.cn, s.cnAlt = s.cnAlt, s.cn
		pm.swapped = false
	}
}

// validatePlacement is ValidatePlacement against session-owned scratch.
func (s *Session) validatePlacement(coreSwitch, coreNI []int) error {
	ev := s.ev
	if len(coreSwitch) != ev.numCores || len(coreNI) != ev.numCores {
		return fmt.Errorf("core: fixed placement has wrong length (switch %d, NI %d entries, design has %d cores)",
			len(coreSwitch), len(coreNI), ev.numCores)
	}
	numNIs := ev.top.NumSwitches() * ev.p.NIsPerSwitch
	if cap(s.sc.seats) < numNIs {
		s.sc.seats = make([]int, numNIs)
	}
	seats := s.sc.seats[:numNIs]
	for i := range seats {
		seats[i] = 0
	}
	for c := 0; c < ev.numCores; c++ {
		sw, ni := coreSwitch[c], coreNI[c]
		if sw < 0 {
			continue
		}
		if sw >= ev.top.NumSwitches() || ni < 0 || ni >= numNIs || ni/ev.p.NIsPerSwitch != sw {
			return fmt.Errorf("core: fixed placement of core %d (switch %d, NI %d) invalid", c, sw, ni)
		}
		seats[ni]++
		if seats[ni] > ev.p.CoresPerNI {
			return fmt.Errorf("core: fixed placement overfills NI %d (%d cores, capacity %d)", ni, seats[ni], ev.p.CoresPerNI)
		}
	}
	return nil
}

// niCapacityCheck rejects moves that are infeasible regardless of routing:
// every pair a core sources (sinks) crosses its NI's egress (ingress) link,
// and each pair needs at least its bandwidth-driven slot count there, so a
// group's total demand on any NI link is bounded below by the sum of its
// cores' demands. When a moved-to NI exceeds the slot table on that bound,
// no re-route — incremental or from scratch — can succeed, and the
// expensive fallback is skipped. The bound is exact-necessary, so no
// feasible move is ever rejected here.
func (s *Session) niCapacityCheck(coreNI []int, moved []int) error {
	T := s.ev.p.SlotTableSize
	for mi, c := range moved {
		ni := coreNI[c]
		if ni < 0 {
			continue
		}
		dup := false
		for _, c2 := range moved[:mi] {
			if coreNI[c2] == ni {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		for g := range s.ev.prep.Groups {
			sumOut, sumIn := 0, 0
			for c2, n := range coreNI {
				if n == ni {
					sumOut += s.ev.remOutTpl[g][c2]
					sumIn += s.ev.remInTpl[g][c2]
				}
			}
			if sumOut > T || sumIn > T {
				return errNICapacity
			}
		}
	}
	return nil
}

// switchCapacityCheck extends the NI bound to the mesh side: every pair
// between distinct switches must leave its source switch through one of its
// outgoing mesh links and enter the destination switch through an incoming
// one, so a group's cross-switch demand at a switch is bounded by its link
// degree times the slot table. Only the switches whose core membership the
// move changes are re-checked. Like the NI bound this is exact-necessary:
// violating it proves the placement infeasible before any routing runs.
func (s *Session) switchCapacityCheck(coreSwitch []int, moved []int) error {
	T := s.ev.p.SlotTableSize
	buf := s.sc.swCheck[:0]
	for _, c := range moved {
		for _, sw := range [2]int{coreSwitch[c], s.cs[c]} {
			if sw < 0 {
				continue
			}
			seen := false
			for _, s2 := range buf {
				if s2 == sw {
					seen = true
					break
				}
			}
			if !seen {
				buf = append(buf, sw)
			}
		}
	}
	s.sc.swCheck = buf
	for _, sw := range buf {
		cap := s.ev.top.Degree(topology.SwitchID(sw)) * T
		for _, pairs := range s.ev.groupPairs {
			sumOut, sumIn := 0, 0
			for _, pd := range pairs {
				srcS, dstS := coreSwitch[pd.key.Src], coreSwitch[pd.key.Dst]
				if srcS == sw && dstS != sw {
					sumOut += pd.slots
				}
				if dstS == sw && srcS != sw {
					sumIn += pd.slots
				}
			}
			if sumOut > cap || sumIn > cap {
				return errSwitchCapacity
			}
		}
	}
	return nil
}

// Keep commits the pending move and recycles the displaced records.
func (s *Session) Keep() {
	if !s.pending {
		return
	}
	pm := &s.pm
	s.stats = pm.stats
	for _, g := range pm.rebuilt {
		for i, r := range pm.snap[g] {
			if r != nil {
				s.putRec(r)
				pm.snap[g][i] = nil
			}
		}
	}
	pm.rebuilt = pm.rebuilt[:0]
	for g := range pm.oldByGroup {
		for _, r := range pm.oldByGroup[g] {
			s.putRec(r)
		}
		pm.oldByGroup[g] = pm.oldByGroup[g][:0]
		pm.newByGroup[g] = pm.newByGroup[g][:0]
	}
	pm.swapped = false
	s.pending = false
}

// Undo rolls back the pending move, restoring the previous configuration
// exactly.
func (s *Session) Undo() {
	if !s.pending {
		return
	}
	s.pending = false
	s.rollbackMove()
}

// Result materializes the current committed configuration as a complete
// Result, equivalent in shape to an EvaluateFixed output. It must not be
// called while a move is pending. All reservation data is copied out of the
// session: the session recycles its record buffers move over move, so a
// result that aliased them would be corrupted by the next TryMove.
func (s *Session) Result() *Result {
	if s.pending {
		panic("core: Session.Result with a pending move")
	}
	mapping := &Mapping{
		Topology:   s.ev.top,
		Params:     s.ev.p,
		Prep:       s.ev.prep,
		CoreSwitch: append([]int(nil), s.cs...),
		CoreNI:     append([]int(nil), s.cn...),
	}
	// One shared Assignment per (group, pair), mirroring the mapper.
	asn := make([]map[traffic.PairKey]*Assignment, len(s.recs))
	for g := range s.recs {
		asn[g] = make(map[traffic.PairKey]*Assignment)
		for _, r := range s.recs[g] {
			if r == nil {
				continue
			}
			asn[g][r.key] = &Assignment{
				Path:      append([]int(nil), r.path...),
				Starts:    append([]int(nil), r.start...),
				SlotCount: len(r.start),
			}
		}
	}
	mapping.Configs = make([]*Config, len(s.ev.prep.UseCases))
	for uc := range s.ev.prep.UseCases {
		g := s.ev.prep.GroupOf[uc]
		cfg := &Config{Assignments: make(map[traffic.PairKey]*Assignment, len(s.ev.ucPairs[uc]))}
		for _, ps := range s.ev.ucPairs[uc] {
			cfg.Assignments[ps.key] = asn[g][ps.key]
		}
		mapping.Configs[uc] = cfg
	}
	dim := topology.Dim{Rows: s.ev.top.Rows, Cols: s.ev.top.Cols}
	return &Result{Mapping: mapping, Attempts: []Attempt{{Dim: dim}}, Stats: s.stats}
}

// statsFromRecs recomputes the summary statistics of the current
// reservation set — the same quantities computeStats derives from a
// finished Mapping, without materializing one. The iteration order matches
// the legacy per-use-case walk exactly, so the floating-point sums are
// bit-identical to the one-shot path's.
func (s *Session) statsFromRecs() Stats {
	var st Stats
	T := s.ev.p.SlotTableSize
	minFree := T
	for _, state := range s.states {
		if f := state.MinFree(); f < minFree {
			minFree = f
		}
	}
	st.MaxLinkUtil = 1 - float64(minFree)/float64(T)
	var bwHops, bwSum float64
	for uc := range s.ev.prep.UseCases {
		g := s.ev.prep.GroupOf[uc]
		recsG := s.recs[g]
		stats := s.ev.ucPairs[uc]
		for i, idx := range s.ev.ucPairIdx[uc] {
			r := recsG[idx]
			if r == nil {
				continue
			}
			st.SlotsReserved += len(r.start) * len(r.path)
			bwHops += stats[i].bw * float64(r.hops)
			bwSum += stats[i].bw
		}
	}
	if bwSum > 0 {
		st.AvgMeshHops = bwHops / bwSum
	}
	return st
}

func (s *Session) niEgress(globalNI int) int  { return s.ev.meshLinks + 2*globalNI }
func (s *Session) niIngress(globalNI int) int { return s.ev.meshLinks + 2*globalNI + 1 }
