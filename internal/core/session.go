package core

import (
	"fmt"

	"nocmap/internal/tdma"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
)

// Session is incremental evaluation over one evolving placement. It owns a
// fully-configured state (every flow of every group routed and reserved)
// and evaluates a move — a few cores changing seats — by tearing down and
// re-routing only the pairs whose endpoints moved, instead of
// re-configuring the world. When the delta path cannot re-route a pair
// (the incremental order wedges where a from-scratch pass would not), it
// falls back to a full re-evaluation transparently — and because the
// groups of a fixed placement never share slot tables, that fallback
// decomposes per smooth-switching group: only the wedged group is re-routed
// from scratch, and one group's from-scratch failure rejects the move
// without evaluating the rest.
//
// A move is two-phase: TryMove reserves the new configuration and returns
// its statistics with the move pending; Keep commits it, Undo restores the
// previous configuration exactly. This is the shape a Metropolis acceptance
// loop needs — the annealer scores the candidate before deciding.
//
// The configurations a session reaches by deltas are always feasible,
// verified reservations, but they are not guaranteed to be the same
// configuration a from-scratch evaluation of the same placement would
// build: the incremental pass re-routes moved pairs against the standing
// reservations of unmoved ones, while a full pass routes everything in
// global bandwidth order. Search engines only need feasibility plus a
// deterministic score, which both paths provide.
//
// A Session is single-owner mutable state, like tdma.State: concurrent
// searches each own one (the evaluator underneath is shared).
type Session struct {
	ev *Evaluator

	cs, cn    []int
	states    []*tdma.State
	recs      []map[traffic.PairKey]*resRecord
	nextOwner int32
	stats     Stats

	pending *pendingMove
}

// pendingMove remembers how to undo the in-flight TryMove.
type pendingMove struct {
	stats Stats

	// Delta bookkeeping per group: records released by the teardown and
	// fresh records the re-route granted.
	oldByGroup [][]*resRecord
	newByGroup [][]*resRecord

	// rebuilt maps each group the fallback re-evaluated from scratch to its
	// complete pre-move record set (restored wholesale on Undo).
	rebuilt map[int]map[traffic.PairKey]*resRecord

	oldCS, oldCN []int
}

// NewSession fully evaluates the placement and, on success, returns a
// session positioned at it. Every communicating core must be placed: a
// session evaluates moves of an existing complete placement, it does not
// run the constructive placement phase.
func (ev *Evaluator) NewSession(coreSwitch, coreNI []int) (*Session, error) {
	if err := ev.ValidatePlacement(coreSwitch, coreNI); err != nil {
		return nil, err
	}
	fix := &placementFix{CoreSwitch: coreSwitch, CoreNI: coreNI}
	if !ev.covered(fix) {
		return nil, fmt.Errorf("core: session placement leaves communicating cores unattached")
	}
	mapping, states, journal, err := ev.attempt(fix)
	if err != nil {
		return nil, err
	}
	s := &Session{
		ev:     ev,
		cs:     append([]int(nil), coreSwitch...),
		cn:     append([]int(nil), coreNI...),
		states: states,
	}
	s.recs = recsFromJournal(ev, journal)
	s.nextOwner = int32(len(journal))
	s.stats = computeStats(mapping, states)
	return s, nil
}

// SessionFrom positions a session at an existing Result's configuration
// without re-running the configuration phase: the result's reservations are
// replayed into fresh slot tables exactly as granted. This matters beyond
// speed — a constructive (growth-loop) result is not always reproducible by
// a fixed-placement re-evaluation, because the constructive pass routed
// flows while the placement was still emerging; adopting the reservations
// keeps such results annealable. The result must be a feasible
// configuration on this evaluator's topology (engine results verified by
// internal/verify always are).
func (ev *Evaluator) SessionFrom(res *Result) (*Session, error) {
	if res == nil || res.Mapping == nil {
		return nil, fmt.Errorf("core: session from nil result")
	}
	m := res.Mapping
	if m.Topology.NumSwitches() != ev.top.NumSwitches() || m.Topology.NumLinks() != ev.top.NumLinks() {
		return nil, fmt.Errorf("core: result fabric %s does not match evaluator fabric %s", m.Topology, ev.top)
	}
	if err := ev.ValidatePlacement(m.CoreSwitch, m.CoreNI); err != nil {
		return nil, err
	}
	s := &Session{
		ev:     ev,
		cs:     append([]int(nil), m.CoreSwitch...),
		cn:     append([]int(nil), m.CoreNI...),
		states: make([]*tdma.State, len(ev.prep.Groups)),
		recs:   make([]map[traffic.PairKey]*resRecord, len(ev.prep.Groups)),
	}
	for g := range s.states {
		st, err := tdma.NewState(ev.totalLinks, ev.p.SlotTableSize)
		if err != nil {
			return nil, err
		}
		s.states[g] = st
		s.recs[g] = make(map[traffic.PairKey]*resRecord)
	}
	// Collect the group-shared assignment of every (group, pair) from the
	// per-use-case configurations, then replay it.
	for uc := range ev.prep.UseCases {
		g := ev.prep.GroupOf[uc]
		cfg := m.Configs[uc]
		if cfg == nil {
			return nil, fmt.Errorf("core: result misses configuration of use-case %d", uc)
		}
		for _, ps := range ev.ucPairs[uc] {
			a := cfg.Assignments[ps.key]
			if a == nil {
				return nil, fmt.Errorf("core: result misses assignment of pair %d->%d", ps.key.Src, ps.key.Dst)
			}
			if _, done := s.recs[g][ps.key]; done {
				continue
			}
			r := &resRecord{group: g, owner: s.nextOwner, path: a.Path, start: a.Starts, key: ps.key}
			if err := s.states[g].Reserve(r.owner, r.path, r.start); err != nil {
				return nil, fmt.Errorf("core: result not reservable (pair %d->%d, group %d): %w", ps.key.Src, ps.key.Dst, g, err)
			}
			s.nextOwner++
			s.recs[g][ps.key] = r
		}
	}
	s.stats = s.statsFromRecs()
	return s, nil
}

func recsFromJournal(ev *Evaluator, journal []resRecord) []map[traffic.PairKey]*resRecord {
	recs := make([]map[traffic.PairKey]*resRecord, len(ev.prep.Groups))
	for g := range recs {
		recs[g] = make(map[traffic.PairKey]*resRecord)
	}
	for i := range journal {
		r := journal[i]
		recs[r.group][r.key] = &r
	}
	return recs
}

// Stats returns the statistics of the current committed configuration.
func (s *Session) Stats() Stats { return s.stats }

// Placement returns copies of the current committed placement.
func (s *Session) Placement() (coreSwitch, coreNI []int) {
	return append([]int(nil), s.cs...), append([]int(nil), s.cn...)
}

// TryMove evaluates the placement (coreSwitch, coreNI), which must differ
// from the session's current placement only at the listed moved cores. On
// success the move is pending — commit with Keep or roll back with Undo —
// and the returned Stats describe the new configuration. On error the
// session is unchanged and no move is pending.
func (s *Session) TryMove(coreSwitch, coreNI []int, moved ...int) (Stats, error) {
	if s.pending != nil {
		return Stats{}, fmt.Errorf("core: session has a pending move (Keep or Undo it first)")
	}
	if err := s.ev.ValidatePlacement(coreSwitch, coreNI); err != nil {
		return Stats{}, err
	}
	movedSet := make(map[int]bool, len(moved))
	for _, c := range moved {
		if c < 0 || c >= s.ev.numCores {
			return Stats{}, fmt.Errorf("core: moved core %d out of range", c)
		}
		movedSet[c] = true
	}
	for c := 0; c < s.ev.numCores; c++ {
		if !movedSet[c] && (coreSwitch[c] != s.cs[c] || coreNI[c] != s.cn[c]) {
			return Stats{}, fmt.Errorf("core: core %d changed seats but is not listed as moved", c)
		}
	}
	if err := s.niCapacityCheck(coreNI, movedSet); err != nil {
		return Stats{}, err
	}
	if err := s.switchCapacityCheck(coreSwitch, movedSet); err != nil {
		return Stats{}, err
	}

	// Tear down every pair with a moved endpoint, in the deterministic
	// global routing order.
	numGroups := len(s.ev.prep.Groups)
	pm := &pendingMove{
		oldCS: s.cs, oldCN: s.cn,
		oldByGroup: make([][]*resRecord, numGroups),
		newByGroup: make([][]*resRecord, numGroups),
	}
	var affected []traffic.PairKey
	for _, key := range s.ev.pairList {
		if !movedSet[int(key.Src)] && !movedSet[int(key.Dst)] {
			continue
		}
		affected = append(affected, key)
		plan := s.ev.plans[key]
		for _, g := range plan.groups {
			r := s.recs[g][key]
			if r == nil {
				s.rollbackMove(pm)
				return Stats{}, fmt.Errorf("core: internal: pair %d->%d missing from group %d", key.Src, key.Dst, g)
			}
			s.states[g].Release(r.owner, r.path, r.start)
			delete(s.recs[g], key)
			pm.oldByGroup[g] = append(pm.oldByGroup[g], r)
		}
	}
	s.cs = append([]int(nil), coreSwitch...)
	s.cn = append([]int(nil), coreNI...)

	// Re-route group by group. The groups of a fixed placement are fully
	// independent — each owns its slot tables — so a group whose delta
	// re-route wedges falls back to a from-scratch re-route of that group
	// alone (identical to its share of a full re-evaluation), and a group
	// whose from-scratch pass fails proves the whole move infeasible
	// without touching the remaining groups.
	for g := 0; g < numGroups; g++ {
		ok := true
		for _, key := range affected {
			plan := s.ev.plans[key]
			gi := -1
			for i, pg := range plan.groups {
				if pg == g {
					gi = i
					break
				}
			}
			if gi < 0 {
				continue // this group does not communicate over the pair
			}
			path, starts, _, err := s.ev.reserveSlots(s.states[g], s.nextOwner, key,
				s.cs[key.Src], s.cs[key.Dst], s.niEgress(s.cn[key.Src]), s.niIngress(s.cn[key.Dst]),
				plan.bw[gi], plan.lat[gi])
			if err != nil {
				ok = false
				break
			}
			r := &resRecord{group: g, owner: s.nextOwner, path: path, start: starts, key: key}
			s.nextOwner++
			s.recs[g][key] = r
			pm.newByGroup[g] = append(pm.newByGroup[g], r)
		}
		if ok {
			continue
		}
		if err := s.rebuildGroup(g, pm); err != nil {
			s.rollbackMove(pm)
			return Stats{}, fmt.Errorf("core: move infeasible: group %d: %w", g, err)
		}
	}
	pm.stats = s.statsFromRecs()
	s.pending = pm
	return pm.stats, nil
}

// rebuildGroup re-routes every pair of group g from scratch in the global
// order, after undoing the group's partial delta. On success the group
// carries exactly the configuration a full re-evaluation of the placement
// would grant it; on failure the group is restored to its pre-move
// configuration and the error reports the wedging pair.
func (s *Session) rebuildGroup(g int, pm *pendingMove) error {
	for _, r := range pm.newByGroup[g] {
		s.states[g].Release(r.owner, r.path, r.start)
		delete(s.recs[g], r.key)
	}
	pm.newByGroup[g] = nil
	// The pre-move record set: the current (untouched) records plus the
	// ones the teardown released.
	oldMap := s.recs[g]
	for _, r := range pm.oldByGroup[g] {
		oldMap[r.key] = r
	}
	pm.oldByGroup[g] = nil
	if pm.rebuilt == nil {
		pm.rebuilt = make(map[int]map[traffic.PairKey]*resRecord)
	}
	pm.rebuilt[g] = oldMap

	s.states[g].Reset()
	s.recs[g] = make(map[traffic.PairKey]*resRecord, len(s.ev.groupPairs[g]))
	for _, pd := range s.ev.groupPairs[g] {
		key := pd.key
		path, starts, _, err := s.ev.reserveSlots(s.states[g], s.nextOwner, key,
			s.cs[key.Src], s.cs[key.Dst], s.niEgress(s.cn[key.Src]), s.niIngress(s.cn[key.Dst]),
			pd.bw, pd.lat)
		if err != nil {
			s.restoreGroup(g, oldMap)
			delete(pm.rebuilt, g)
			return fmt.Errorf("flow %d->%d: %w", key.Src, key.Dst, err)
		}
		s.recs[g][key] = &resRecord{group: g, owner: s.nextOwner, path: path, start: starts, key: key}
		s.nextOwner++
	}
	return nil
}

// restoreGroup resets group g's state and replays a complete record set.
func (s *Session) restoreGroup(g int, recs map[traffic.PairKey]*resRecord) {
	s.states[g].Reset()
	for _, r := range recs {
		if err := s.states[g].Reserve(r.owner, r.path, r.start); err != nil {
			// The set was simultaneously live before; replay cannot conflict.
			panic(fmt.Sprintf("core: internal: group restore failed: %v", err))
		}
	}
	s.recs[g] = recs
}

// rollbackMove restores every group and the placement to the pre-move
// configuration.
func (s *Session) rollbackMove(pm *pendingMove) {
	for g, oldMap := range pm.rebuilt {
		s.restoreGroup(g, oldMap)
	}
	for g := range pm.newByGroup {
		for i := len(pm.newByGroup[g]) - 1; i >= 0; i-- {
			r := pm.newByGroup[g][i]
			s.states[g].Release(r.owner, r.path, r.start)
			delete(s.recs[g], r.key)
		}
		for _, r := range pm.oldByGroup[g] {
			if err := s.states[g].Reserve(r.owner, r.path, r.start); err != nil {
				panic(fmt.Sprintf("core: internal: session rollback failed: %v", err))
			}
			s.recs[g][r.key] = r
		}
	}
	s.cs, s.cn = pm.oldCS, pm.oldCN
}

// niCapacityCheck rejects moves that are infeasible regardless of routing:
// every pair a core sources (sinks) crosses its NI's egress (ingress) link,
// and each pair needs at least its bandwidth-driven slot count there, so a
// group's total demand on any NI link is bounded below by the sum of its
// cores' demands. When a moved-to NI exceeds the slot table on that bound,
// no re-route — incremental or from scratch — can succeed, and the
// expensive fallback is skipped. The bound is exact-necessary, so no
// feasible move is ever rejected here.
func (s *Session) niCapacityCheck(coreNI []int, movedSet map[int]bool) error {
	T := s.ev.p.SlotTableSize
	checked := make(map[int]bool, len(movedSet))
	for c := range movedSet {
		ni := coreNI[c]
		if ni < 0 || checked[ni] {
			continue
		}
		checked[ni] = true
		for g := range s.ev.prep.Groups {
			sumOut, sumIn := 0, 0
			for c2, n := range coreNI {
				if n == ni {
					sumOut += s.ev.remOutTpl[g][c2]
					sumIn += s.ev.remInTpl[g][c2]
				}
			}
			if sumOut > T || sumIn > T {
				return fmt.Errorf("core: NI %d over capacity in group %d (%d egress / %d ingress slots of %d)",
					ni, g, sumOut, sumIn, T)
			}
		}
	}
	return nil
}

// switchCapacityCheck extends the NI bound to the mesh side: every pair
// between distinct switches must leave its source switch through one of its
// outgoing mesh links and enter the destination switch through an incoming
// one, so a group's cross-switch demand at a switch is bounded by its link
// degree times the slot table. Only the switches whose core membership the
// move changes are re-checked. Like the NI bound this is exact-necessary:
// violating it proves the placement infeasible before any routing runs.
func (s *Session) switchCapacityCheck(coreSwitch []int, movedSet map[int]bool) error {
	T := s.ev.p.SlotTableSize
	checked := make(map[int]bool, 2*len(movedSet))
	for c := range movedSet {
		for _, sw := range [2]int{coreSwitch[c], s.cs[c]} {
			if sw < 0 || checked[sw] {
				continue
			}
			checked[sw] = true
			cap := s.ev.top.Degree(topology.SwitchID(sw)) * T
			for g, pairs := range s.ev.groupPairs {
				sumOut, sumIn := 0, 0
				for _, pd := range pairs {
					srcS, dstS := coreSwitch[pd.key.Src], coreSwitch[pd.key.Dst]
					if srcS == sw && dstS != sw {
						sumOut += pd.slots
					}
					if dstS == sw && srcS != sw {
						sumIn += pd.slots
					}
				}
				if sumOut > cap || sumIn > cap {
					return fmt.Errorf("core: switch %d over mesh capacity in group %d (%d egress / %d ingress slots of %d)",
						sw, g, sumOut, sumIn, cap)
				}
			}
		}
	}
	return nil
}

// Keep commits the pending move.
func (s *Session) Keep() {
	if s.pending == nil {
		return
	}
	s.stats = s.pending.stats
	s.pending = nil
}

// Undo rolls back the pending move, restoring the previous configuration
// exactly.
func (s *Session) Undo() {
	pm := s.pending
	if pm == nil {
		return
	}
	s.pending = nil
	s.rollbackMove(pm)
}

// Result materializes the current committed configuration as a complete
// Result, equivalent in shape to an EvaluateFixed output. It must not be
// called while a move is pending.
func (s *Session) Result() *Result {
	if s.pending != nil {
		panic("core: Session.Result with a pending move")
	}
	mapping := &Mapping{
		Topology:   s.ev.top,
		Params:     s.ev.p,
		Prep:       s.ev.prep,
		CoreSwitch: append([]int(nil), s.cs...),
		CoreNI:     append([]int(nil), s.cn...),
	}
	// One shared Assignment per (group, pair), mirroring the mapper.
	asn := make([]map[traffic.PairKey]*Assignment, len(s.recs))
	for g := range s.recs {
		asn[g] = make(map[traffic.PairKey]*Assignment, len(s.recs[g]))
		for key, r := range s.recs[g] {
			asn[g][key] = &Assignment{Path: r.path, Starts: r.start, SlotCount: len(r.start)}
		}
	}
	mapping.Configs = make([]*Config, len(s.ev.prep.UseCases))
	for uc := range s.ev.prep.UseCases {
		g := s.ev.prep.GroupOf[uc]
		cfg := &Config{Assignments: make(map[traffic.PairKey]*Assignment, len(s.ev.ucPairs[uc]))}
		for _, ps := range s.ev.ucPairs[uc] {
			cfg.Assignments[ps.key] = asn[g][ps.key]
		}
		mapping.Configs[uc] = cfg
	}
	dim := topology.Dim{Rows: s.ev.top.Rows, Cols: s.ev.top.Cols}
	return &Result{Mapping: mapping, Attempts: []Attempt{{Dim: dim}}, Stats: s.stats}
}

// statsFromRecs recomputes the summary statistics of the current
// reservation set — the same quantities computeStats derives from a
// finished Mapping, without materializing one.
func (s *Session) statsFromRecs() Stats {
	var st Stats
	for _, state := range s.states {
		for l := 0; l < state.NumLinks(); l++ {
			if u := state.Utilization(l); u > st.MaxLinkUtil {
				st.MaxLinkUtil = u
			}
		}
	}
	var bwHops, bwSum float64
	for uc := range s.ev.prep.UseCases {
		g := s.ev.prep.GroupOf[uc]
		for _, ps := range s.ev.ucPairs[uc] {
			r := s.recs[g][ps.key]
			if r == nil {
				continue
			}
			st.SlotsReserved += len(r.start) * len(r.path)
			hops := 0
			for _, l := range r.path {
				if l < s.ev.meshLinks {
					hops++
				}
			}
			bwHops += ps.bw * float64(hops)
			bwSum += ps.bw
		}
	}
	if bwSum > 0 {
		st.AvgMeshHops = bwHops / bwSum
	}
	return st
}

func (s *Session) niEgress(globalNI int) int  { return s.ev.meshLinks + 2*globalNI }
func (s *Session) niIngress(globalNI int) int { return s.ev.meshLinks + 2*globalNI + 1 }
