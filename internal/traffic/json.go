package traffic

import (
	"encoding/json"
	"fmt"
	"io"
)

// MaxCores bounds the num_cores shorthand of the interchange format — far
// beyond any SoC (the paper's designs have ~30 cores) but small enough that
// parsing a hostile count cannot exhaust memory.
const MaxCores = 1 << 16

// designJSON is the on-disk representation of a Design. Core names are
// optional; cores may be given either as a count or as a name list.
type designJSON struct {
	Name         string        `json:"name"`
	NumCores     int           `json:"num_cores,omitempty"`
	CoreNames    []string      `json:"core_names,omitempty"`
	UseCases     []useCaseJSON `json:"use_cases"`
	ParallelSets [][]int       `json:"parallel_sets,omitempty"`
	SmoothPairs  [][2]int      `json:"smooth_pairs,omitempty"`
	Topology     string        `json:"topology,omitempty"`
}

type useCaseJSON struct {
	Name  string     `json:"name"`
	Flows []flowJSON `json:"flows"`
}

type flowJSON struct {
	Src       int     `json:"src"`
	Dst       int     `json:"dst"`
	Bandwidth float64 `json:"bandwidth_mbs"`
	Latency   float64 `json:"max_latency_ns,omitempty"`
}

// WriteJSON serializes the design in the tool interchange format.
func (d *Design) WriteJSON(w io.Writer) error {
	out := designJSON{
		Name:         d.Name,
		ParallelSets: d.ParallelSets,
		SmoothPairs:  d.SmoothPairs,
		Topology:     d.Topology,
	}
	for _, c := range d.Cores {
		out.CoreNames = append(out.CoreNames, c.Name)
	}
	for _, u := range d.UseCases {
		uj := useCaseJSON{Name: u.Name}
		for _, f := range u.Flows {
			uj.Flows = append(uj.Flows, flowJSON{
				Src: int(f.Src), Dst: int(f.Dst),
				Bandwidth: f.BandwidthMBs, Latency: f.MaxLatencyNS,
			})
		}
		out.UseCases = append(out.UseCases, uj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a design from the tool interchange format and validates it.
func ReadJSON(r io.Reader) (*Design, error) {
	var in designJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("traffic: decode design: %w", err)
	}
	d := &Design{
		Name:         in.Name,
		ParallelSets: in.ParallelSets,
		SmoothPairs:  in.SmoothPairs,
		Topology:     in.Topology,
	}
	switch {
	case len(in.CoreNames) > 0:
		for i, name := range in.CoreNames {
			d.Cores = append(d.Cores, Core{ID: CoreID(i), Name: name})
		}
	case in.NumCores > 0:
		// Cap before MakeCores allocates one named struct per claimed core:
		// a hostile count must not exhaust memory ahead of validation. (The
		// core_names path is naturally bounded by the input length.)
		if in.NumCores > MaxCores {
			return nil, fmt.Errorf("traffic: design %q: num_cores %d exceeds limit %d", in.Name, in.NumCores, MaxCores)
		}
		d.Cores = MakeCores(in.NumCores)
	default:
		return nil, fmt.Errorf("traffic: design %q: neither core_names nor num_cores given", in.Name)
	}
	for _, uj := range in.UseCases {
		u := &UseCase{Name: uj.Name}
		for _, fj := range uj.Flows {
			u.Flows = append(u.Flows, Flow{
				Src: CoreID(fj.Src), Dst: CoreID(fj.Dst),
				BandwidthMBs: fj.Bandwidth, MaxLatencyNS: fj.Latency,
			})
		}
		d.UseCases = append(d.UseCases, u)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
