package traffic

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Canonicalize returns a semantically identical deep copy of the design in
// canonical form: use-cases sorted by name (with ParallelSets and SmoothPairs
// re-indexed to follow), flows within each use-case sorted by (src, dst),
// compound part lists sorted, every parallel set sorted ascending with the
// sets themselves in lexicographic order, smooth pairs normalized to
// (low, high) and sorted, and the topology tag normalized (empty → "mesh").
// Core order is preserved — core IDs are positional and renumbering them
// would change the design's meaning.
//
// Two designs that differ only in use-case order, flow order, or the order
// of the parallel/smooth declarations canonicalize to equal values, which is
// what makes Digest a usable cache key. Designs on different fabrics do NOT
// canonicalize equal: the topology tag is part of the design's meaning.
func (d *Design) Canonicalize() *Design {
	out := &Design{Name: d.Name, Topology: d.Topology}
	if out.Topology == "" {
		out.Topology = "mesh"
	}
	out.Cores = append([]Core(nil), d.Cores...)

	// Sort use-cases by name and remember where each old index went.
	perm := make([]int, len(d.UseCases)) // perm[old] = position in sorted order
	order := make([]int, len(d.UseCases))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return d.UseCases[order[a]].Name < d.UseCases[order[b]].Name
	})
	for newIdx, oldIdx := range order {
		perm[oldIdx] = newIdx
		u := d.UseCases[oldIdx].Clone()
		u.SortByPair()
		sort.Strings(u.Parts)
		out.UseCases = append(out.UseCases, u)
	}

	for _, set := range d.ParallelSets {
		ns := make([]int, len(set))
		for i, idx := range set {
			ns[i] = perm[idx]
		}
		sort.Ints(ns)
		out.ParallelSets = append(out.ParallelSets, ns)
	}
	sort.Slice(out.ParallelSets, func(a, b int) bool {
		x, y := out.ParallelSets[a], out.ParallelSets[b]
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return len(x) < len(y)
	})

	for _, p := range d.SmoothPairs {
		a, b := perm[p[0]], perm[p[1]]
		if a > b {
			a, b = b, a
		}
		out.SmoothPairs = append(out.SmoothPairs, [2]int{a, b})
	}
	sort.Slice(out.SmoothPairs, func(a, b int) bool {
		x, y := out.SmoothPairs[a], out.SmoothPairs[b]
		if x[0] != y[0] {
			return x[0] < y[0]
		}
		return x[1] < y[1]
	})
	return out
}

// SortByPair orders the use-case's flows by (src, dst). Validate guarantees
// pair uniqueness, so this order is total; it is the canonical flow order
// used by Digest (SortFlows, by contrast, is the mapper's bandwidth-first
// processing order).
func (u *UseCase) SortByPair() {
	sort.Slice(u.Flows, func(i, j int) bool {
		a, b := u.Flows[i], u.Flows[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// Digest returns a deterministic SHA-256 hex digest of the canonicalized
// design. It is independent of JSON field order, use-case order, flow order,
// and the order of the parallel/smooth declarations, so it identifies a
// design up to those permutations — but it does depend on the topology tag,
// so the same traffic targeted at a mesh and at a torus digests differently.
// Bandwidth and latency values are encoded as exact hexadecimal floats — no
// rounding, no locale, no float-printing ambiguity.
func (d *Design) Digest() string {
	c := d.Canonicalize()
	h := sha256.New()
	writeCanonical(h, c)
	return hex.EncodeToString(h.Sum(nil))
}

// writeCanonical streams the canonical byte encoding of an
// already-canonicalized design. The format is versioned (v2 added the
// topology tag) so an encoding change invalidates old digests instead of
// colliding with them.
func writeCanonical(w io.Writer, c *Design) {
	fmt.Fprintf(w, "nocmap-design-v2\nname %q\ntopology %q\ncores %d\n", c.Name, c.Topology, len(c.Cores))
	for _, core := range c.Cores {
		fmt.Fprintf(w, "core %d %q\n", core.ID, core.Name)
	}
	for _, u := range c.UseCases {
		fmt.Fprintf(w, "usecase %q compound=%t parts=%q\n", u.Name, u.Compound, u.Parts)
		for _, f := range u.Flows {
			fmt.Fprintf(w, "flow %d %d %s %s\n", f.Src, f.Dst,
				hexFloat(f.BandwidthMBs), hexFloat(f.MaxLatencyNS))
		}
	}
	for _, set := range c.ParallelSets {
		fmt.Fprintf(w, "parallel %v\n", set)
	}
	for _, p := range c.SmoothPairs {
		fmt.Fprintf(w, "smooth %d %d\n", p[0], p[1])
	}
}

// hexFloat renders a float64 exactly (hexadecimal mantissa/exponent form).
func hexFloat(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }
