package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// shuffledDesign builds the same logical design twice: once in natural order
// and once with use-cases, flows and declarations permuted (with indices
// re-pointed so the permuted design means the same thing).
func digestPair() (*Design, *Design) {
	a := &Design{
		Name:  "demo",
		Cores: MakeCores(4),
		UseCases: []*UseCase{
			{Name: "alpha", Flows: []Flow{
				{Src: 0, Dst: 1, BandwidthMBs: 100, MaxLatencyNS: 500},
				{Src: 2, Dst: 3, BandwidthMBs: 50},
			}},
			{Name: "beta", Flows: []Flow{
				{Src: 1, Dst: 0, BandwidthMBs: 75},
			}},
			{Name: "gamma", Flows: []Flow{
				{Src: 3, Dst: 0, BandwidthMBs: 25},
			}},
		},
		ParallelSets: [][]int{{0, 1}},
		SmoothPairs:  [][2]int{{1, 2}},
	}
	// Same design: use-cases listed gamma, beta, alpha; flows of "alpha"
	// reversed; the parallel set and smooth pair re-pointed accordingly and
	// written in the opposite member order.
	b := &Design{
		Name:  "demo",
		Cores: MakeCores(4),
		UseCases: []*UseCase{
			{Name: "gamma", Flows: []Flow{
				{Src: 3, Dst: 0, BandwidthMBs: 25},
			}},
			{Name: "beta", Flows: []Flow{
				{Src: 1, Dst: 0, BandwidthMBs: 75},
			}},
			{Name: "alpha", Flows: []Flow{
				{Src: 2, Dst: 3, BandwidthMBs: 50},
				{Src: 0, Dst: 1, BandwidthMBs: 100, MaxLatencyNS: 500},
			}},
		},
		ParallelSets: [][]int{{1, 2}},
		SmoothPairs:  [][2]int{{1, 0}},
	}
	return a, b
}

func TestDigestInvariantUnderReordering(t *testing.T) {
	a, b := digestPair()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if da, db := a.Digest(), b.Digest(); da != db {
		t.Errorf("permuted designs digest differently:\n a %s\n b %s", da, db)
	}
}

func TestDigestInvariantUnderJSONRoundTrip(t *testing.T) {
	a, _ := digestPair()
	var buf bytes.Buffer
	if err := a.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != back.Digest() {
		t.Error("JSON round-trip changed the digest")
	}
}

func TestDigestSensitivity(t *testing.T) {
	base, _ := digestPair()
	d0 := base.Digest()

	mutations := map[string]func(*Design){
		"bandwidth": func(d *Design) { d.UseCases[0].Flows[0].BandwidthMBs += 1e-9 },
		"latency":   func(d *Design) { d.UseCases[0].Flows[0].MaxLatencyNS = 501 },
		"endpoint":  func(d *Design) { d.UseCases[1].Flows[0].Dst = 2 },
		"name":      func(d *Design) { d.Name = "demo2" },
		"core name": func(d *Design) { d.Cores[0].Name = "renamed" },
		"uc name":   func(d *Design) { d.UseCases[2].Name = "delta" },
		"parallel":  func(d *Design) { d.ParallelSets = [][]int{{0, 2}} },
		"smooth":    func(d *Design) { d.SmoothPairs = nil },
		"add flow": func(d *Design) {
			d.UseCases[1].Flows = append(d.UseCases[1].Flows, Flow{Src: 2, Dst: 0, BandwidthMBs: 1})
		},
	}
	for what, mutate := range mutations {
		d, _ := digestPair()
		mutate(d)
		if d.Digest() == d0 {
			t.Errorf("%s change did not change the digest", what)
		}
	}
}

func TestCanonicalizePreservesMeaning(t *testing.T) {
	a, b := digestPair()
	ca, cb := a.Canonicalize(), b.Canonicalize()
	if err := ca.Validate(); err != nil {
		t.Fatalf("canonical form invalid: %v", err)
	}
	// Canonical forms of the two permutations must be structurally equal.
	var wa, wb strings.Builder
	writeCanonical(&wa, ca)
	writeCanonical(&wb, cb)
	if wa.String() != wb.String() {
		t.Errorf("canonical encodings differ:\n%s\nvs\n%s", wa.String(), wb.String())
	}
	// Canonicalize must not mutate its receiver.
	if a.UseCases[0].Name != "alpha" || a.UseCases[0].Flows[0].Src != 0 {
		t.Error("Canonicalize mutated the original design")
	}
}

// The topology tag is part of the design's meaning: identical traffic on
// different fabrics must digest differently, while the empty tag and the
// explicit "mesh" tag are the same fabric and must digest identically.
func TestDigestDistinguishesTopologies(t *testing.T) {
	mk := func(tag string) *Design {
		d, _ := digestPair()
		d.Topology = tag
		return d
	}
	mesh := mk("").Digest()
	if got := mk("mesh").Digest(); got != mesh {
		t.Errorf("empty and explicit mesh tags digest differently: %s vs %s", got, mesh)
	}
	torus := mk("torus").Digest()
	if torus == mesh {
		t.Error("mesh and torus designs share a digest")
	}
	custom := mk("custom:deadbeef12345678").Digest()
	if custom == mesh || custom == torus {
		t.Error("custom fabric design collides with a built-in fabric")
	}
	if c := mk("torus").Canonicalize(); c.Topology != "torus" {
		t.Errorf("canonical topology tag = %q, want torus", c.Topology)
	}
	if c := mk("").Canonicalize(); c.Topology != "mesh" {
		t.Errorf("canonical empty tag = %q, want mesh", c.Topology)
	}
}
