package traffic

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func validUC(name string) *UseCase {
	return &UseCase{Name: name, Flows: []Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 100, MaxLatencyNS: 1000},
		{Src: 1, Dst: 2, BandwidthMBs: 50},
	}}
}

func TestValidateOK(t *testing.T) {
	if err := validUC("u").Validate(3); err != nil {
		t.Errorf("valid use-case rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		uc   *UseCase
		n    int
	}{
		{"endpoint out of range", &UseCase{Name: "u", Flows: []Flow{{Src: 0, Dst: 3, BandwidthMBs: 1}}}, 3},
		{"negative endpoint", &UseCase{Name: "u", Flows: []Flow{{Src: -1, Dst: 1, BandwidthMBs: 1}}}, 3},
		{"self flow", &UseCase{Name: "u", Flows: []Flow{{Src: 1, Dst: 1, BandwidthMBs: 1}}}, 3},
		{"zero bandwidth", &UseCase{Name: "u", Flows: []Flow{{Src: 0, Dst: 1, BandwidthMBs: 0}}}, 3},
		{"negative bandwidth", &UseCase{Name: "u", Flows: []Flow{{Src: 0, Dst: 1, BandwidthMBs: -5}}}, 3},
		{"NaN bandwidth", &UseCase{Name: "u", Flows: []Flow{{Src: 0, Dst: 1, BandwidthMBs: math.NaN()}}}, 3},
		{"Inf bandwidth", &UseCase{Name: "u", Flows: []Flow{{Src: 0, Dst: 1, BandwidthMBs: math.Inf(1)}}}, 3},
		{"negative latency", &UseCase{Name: "u", Flows: []Flow{{Src: 0, Dst: 1, BandwidthMBs: 1, MaxLatencyNS: -1}}}, 3},
		{"duplicate pair", &UseCase{Name: "u", Flows: []Flow{
			{Src: 0, Dst: 1, BandwidthMBs: 1}, {Src: 0, Dst: 1, BandwidthMBs: 2}}}, 3},
	}
	for _, tc := range cases {
		if err := tc.uc.Validate(tc.n); err == nil {
			t.Errorf("%s: Validate accepted invalid use-case", tc.name)
		}
	}
}

func TestTotalsAndMax(t *testing.T) {
	u := validUC("u")
	if got := u.TotalBandwidth(); got != 150 {
		t.Errorf("TotalBandwidth = %v, want 150", got)
	}
	if got := u.MaxBandwidth(); got != 100 {
		t.Errorf("MaxBandwidth = %v, want 100", got)
	}
	empty := &UseCase{Name: "e"}
	if empty.TotalBandwidth() != 0 || empty.MaxBandwidth() != 0 {
		t.Error("empty use-case totals should be zero")
	}
}

func TestFlowByPair(t *testing.T) {
	u := validUC("u")
	f, ok := u.FlowByPair(PairKey{Src: 0, Dst: 1})
	if !ok || f.BandwidthMBs != 100 {
		t.Errorf("FlowByPair(0,1) = %+v,%v", f, ok)
	}
	if _, ok := u.FlowByPair(PairKey{Src: 1, Dst: 0}); ok {
		t.Error("reverse pair should be absent (flows are directed)")
	}
}

func TestSortFlows(t *testing.T) {
	u := &UseCase{Name: "u", Flows: []Flow{
		{Src: 2, Dst: 3, BandwidthMBs: 10},
		{Src: 0, Dst: 1, BandwidthMBs: 99},
		{Src: 1, Dst: 2, BandwidthMBs: 99},
	}}
	u.SortFlows()
	want := []PairKey{{0, 1}, {1, 2}, {2, 3}}
	for i, k := range want {
		if u.Flows[i].Key() != k {
			t.Fatalf("flow %d = %v, want %v (order %v)", i, u.Flows[i].Key(), k, u.Flows)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	u := validUC("u")
	c := u.Clone()
	c.Flows[0].BandwidthMBs = 1
	c.Name = "other"
	if u.Flows[0].BandwidthMBs != 100 || u.Name != "u" {
		t.Error("Clone shares state with original")
	}
}

func TestCombineFig2Style(t *testing.T) {
	// Two use-cases sharing pair (0,1); compound must sum bandwidths and take
	// min latency.
	u1 := &UseCase{Name: "uc1", Flows: []Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 100, MaxLatencyNS: 500},
		{Src: 1, Dst: 2, BandwidthMBs: 50, MaxLatencyNS: 0},
	}}
	u2 := &UseCase{Name: "uc2", Flows: []Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 30, MaxLatencyNS: 200},
		{Src: 2, Dst: 0, BandwidthMBs: 70, MaxLatencyNS: 900},
	}}
	c := Combine("uc1+uc2", []*UseCase{u1, u2})
	if !c.Compound {
		t.Error("Combine result must be marked Compound")
	}
	if !reflect.DeepEqual(c.Parts, []string{"uc1", "uc2"}) {
		t.Errorf("Parts = %v", c.Parts)
	}
	if len(c.Flows) != 3 {
		t.Fatalf("compound has %d flows, want 3: %+v", len(c.Flows), c.Flows)
	}
	f01, ok := c.FlowByPair(PairKey{0, 1})
	if !ok || f01.BandwidthMBs != 130 || f01.MaxLatencyNS != 200 {
		t.Errorf("combined (0,1) = %+v, want bw 130 lat 200", f01)
	}
	f12, ok := c.FlowByPair(PairKey{1, 2})
	if !ok || f12.BandwidthMBs != 50 || f12.MaxLatencyNS != 0 {
		t.Errorf("combined (1,2) = %+v, want bw 50 lat 0 (unconstrained)", f12)
	}
	f20, ok := c.FlowByPair(PairKey{2, 0})
	if !ok || f20.BandwidthMBs != 70 || f20.MaxLatencyNS != 900 {
		t.Errorf("combined (2,0) = %+v", f20)
	}
}

func TestCombineLatencyUnconstrainedNeverTightens(t *testing.T) {
	u1 := &UseCase{Name: "a", Flows: []Flow{{Src: 0, Dst: 1, BandwidthMBs: 10, MaxLatencyNS: 0}}}
	u2 := &UseCase{Name: "b", Flows: []Flow{{Src: 0, Dst: 1, BandwidthMBs: 10, MaxLatencyNS: 300}}}
	c := Combine("ab", []*UseCase{u1, u2})
	f, _ := c.FlowByPair(PairKey{0, 1})
	if f.MaxLatencyNS != 300 {
		t.Errorf("latency = %v, want 300 (zero must not be treated as tightest)", f.MaxLatencyNS)
	}
}

// Property: compound total bandwidth equals the sum of constituent totals,
// and per-pair bandwidth is the sum of per-pair bandwidths.
func TestCombineBandwidthConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		mk := func(name string) *UseCase {
			u := &UseCase{Name: name}
			used := map[PairKey]bool{}
			for i := 0; i < 1+rng.Intn(12); i++ {
				s, d := rng.Intn(n), rng.Intn(n)
				if s == d || used[PairKey{CoreID(s), CoreID(d)}] {
					continue
				}
				used[PairKey{CoreID(s), CoreID(d)}] = true
				u.Flows = append(u.Flows, Flow{
					Src: CoreID(s), Dst: CoreID(d),
					BandwidthMBs: 1 + rng.Float64()*400,
					MaxLatencyNS: float64(rng.Intn(2)) * (100 + rng.Float64()*900),
				})
			}
			return u
		}
		parts := []*UseCase{mk("a"), mk("b"), mk("c")}
		c := Combine("abc", parts)
		var want float64
		for _, p := range parts {
			want += p.TotalBandwidth()
		}
		if math.Abs(c.TotalBandwidth()-want) > 1e-6 {
			return false
		}
		// Per-pair check and latency = min of positive latencies.
		for _, cf := range c.Flows {
			var bw, lat float64
			for _, p := range parts {
				if pf, ok := p.FlowByPair(cf.Key()); ok {
					bw += pf.BandwidthMBs
					if pf.MaxLatencyNS > 0 && (lat == 0 || pf.MaxLatencyNS < lat) {
						lat = pf.MaxLatencyNS
					}
				}
			}
			if math.Abs(cf.BandwidthMBs-bw) > 1e-6 || cf.MaxLatencyNS != lat {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func validDesign() *Design {
	return &Design{
		Name:  "d",
		Cores: MakeCores(3),
		UseCases: []*UseCase{
			validUC("u0"),
			{Name: "u1", Flows: []Flow{{Src: 2, Dst: 0, BandwidthMBs: 10}}},
		},
		ParallelSets: [][]int{{0, 1}},
		SmoothPairs:  [][2]int{{0, 1}},
	}
}

func TestDesignValidateOK(t *testing.T) {
	if err := validDesign().Validate(); err != nil {
		t.Errorf("valid design rejected: %v", err)
	}
}

func TestDesignValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Design)
	}{
		{"no cores", func(d *Design) { d.Cores = nil }},
		{"sparse core IDs", func(d *Design) { d.Cores[1].ID = 5 }},
		{"no use-cases", func(d *Design) { d.UseCases = nil }},
		{"unnamed use-case", func(d *Design) { d.UseCases[0].Name = "" }},
		{"duplicate names", func(d *Design) { d.UseCases[1].Name = "u0" }},
		{"invalid flow", func(d *Design) { d.UseCases[0].Flows[0].BandwidthMBs = -1 }},
		{"parallel set too small", func(d *Design) { d.ParallelSets = [][]int{{0}} }},
		{"parallel out of range", func(d *Design) { d.ParallelSets = [][]int{{0, 7}} }},
		{"parallel repeats", func(d *Design) { d.ParallelSets = [][]int{{1, 1}} }},
		{"smooth out of range", func(d *Design) { d.SmoothPairs = [][2]int{{0, 9}} }},
	}
	for _, m := range mutations {
		d := validDesign()
		m.mut(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid design", m.name)
		}
	}
}

func TestMakeCores(t *testing.T) {
	cores := MakeCores(4)
	if len(cores) != 4 {
		t.Fatalf("len = %d", len(cores))
	}
	for i, c := range cores {
		if int(c.ID) != i || c.Name == "" {
			t.Errorf("core %d = %+v", i, c)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := validDesign()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if back.Name != d.Name || len(back.Cores) != len(d.Cores) || len(back.UseCases) != len(d.UseCases) {
		t.Errorf("round trip mismatch: %+v", back)
	}
	for i, u := range back.UseCases {
		if !reflect.DeepEqual(u.Flows, d.UseCases[i].Flows) {
			t.Errorf("use-case %d flows differ: %+v vs %+v", i, u.Flows, d.UseCases[i].Flows)
		}
	}
	if !reflect.DeepEqual(back.ParallelSets, d.ParallelSets) || !reflect.DeepEqual(back.SmoothPairs, d.SmoothPairs) {
		t.Error("parallel/smooth specs lost in round trip")
	}
}

func TestReadJSONNumCoresOnly(t *testing.T) {
	in := `{"name":"x","num_cores":2,"use_cases":[{"name":"u","flows":[{"src":0,"dst":1,"bandwidth_mbs":5}]}]}`
	d, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if len(d.Cores) != 2 || d.UseCases[0].Flows[0].BandwidthMBs != 5 {
		t.Errorf("parsed design = %+v", d)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":        `{`,
		"no cores":       `{"name":"x","use_cases":[{"name":"u","flows":[]}]}`,
		"unknown field":  `{"name":"x","num_cores":2,"bogus":1,"use_cases":[{"name":"u","flows":[]}]}`,
		"invalid design": `{"name":"x","num_cores":2,"use_cases":[{"name":"u","flows":[{"src":0,"dst":5,"bandwidth_mbs":5}]}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadJSON accepted invalid input", name)
		}
	}
}

// Regression: a hostile num_cores must be rejected before any
// size-proportional allocation, not after (the fuzz-smoke CI job mutates
// the count digits).
func TestReadJSONRejectsHostileCoreCount(t *testing.T) {
	in := `{"name":"huge","num_cores":999999999,"use_cases":[{"name":"u","flows":[{"src":0,"dst":1,"bandwidth_mbs":1}]}]}`
	if _, err := ReadJSON(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("hostile num_cores: err = %v, want a limit rejection", err)
	}
}
