package traffic

import (
	"bytes"
	"testing"
)

// FuzzDesignJSON feeds arbitrary bytes to the design parser. The parser must
// never panic, and for every design it accepts the canonical digest must be
// stable under the permutations Canonicalize promises to erase: use-case
// order (with parallel/smooth indices remapped to follow), flow order, and
// a JSON write/read round trip.
func FuzzDesignJSON(f *testing.F) {
	f.Add([]byte(`{"name":"d","num_cores":3,"use_cases":[` +
		`{"name":"a","flows":[{"src":0,"dst":1,"bandwidth_mbs":10},{"src":1,"dst":2,"bandwidth_mbs":5,"max_latency_ns":900}]},` +
		`{"name":"b","flows":[{"src":2,"dst":0,"bandwidth_mbs":7}]}],` +
		`"parallel_sets":[[0,1]],"smooth_pairs":[[1,0]]}`))
	f.Add([]byte(`{"name":"t","num_cores":2,"topology":"torus","use_cases":[{"name":"u","flows":[{"src":0,"dst":1,"bandwidth_mbs":1}]}]}`))
	f.Add([]byte(`{"name":"named","core_names":["cpu","dsp"],"use_cases":[{"name":"u","flows":[{"src":1,"dst":0,"bandwidth_mbs":2.5}]}]}`))
	f.Add([]byte(`{"name":"bad","num_cores":0,"use_cases":[]}`))
	f.Add([]byte(`{"name":"huge","num_cores":999999999,"use_cases":[]}`)) // hostile size
	f.Add([]byte(`{"name":"dup","num_cores":2,"use_cases":[{"name":"u","flows":[{"src":0,"dst":1,"bandwidth_mbs":1},{"src":0,"dst":1,"bandwidth_mbs":2}]}]}`))
	f.Add([]byte(`{"name":"fab","num_cores":2,"topology":"hypercube","use_cases":[{"name":"u","flows":[{"src":0,"dst":1,"bandwidth_mbs":1}]}]}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected without panicking: fine
		}
		want := d.Digest()

		// Reversing the use-case order (remapping the index-bearing
		// declarations to follow) must not change the digest.
		perm := reverseUseCases(d)
		if got := perm.Digest(); got != want {
			t.Fatalf("digest changed under use-case reordering: %s vs %s (input %q)", got, want, data)
		}

		// Neither must reversing each use-case's flow order.
		flows := clone(d)
		for _, u := range flows.UseCases {
			for i, j := 0, len(u.Flows)-1; i < j; i, j = i+1, j-1 {
				u.Flows[i], u.Flows[j] = u.Flows[j], u.Flows[i]
			}
		}
		if got := flows.Digest(); got != want {
			t.Fatalf("digest changed under flow reordering: %s vs %s (input %q)", got, want, data)
		}

		// A write/read round trip must preserve validity and the digest.
		var buf bytes.Buffer
		if err := d.WriteJSON(&buf); err != nil {
			t.Fatalf("accepted design fails to serialize: %v (input %q)", err, data)
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round-tripped design rejected: %v (input %q)", err, data)
		}
		if got := back.Digest(); got != want {
			t.Fatalf("digest changed over round trip: %s vs %s (input %q)", got, want, data)
		}
	})
}

// clone deep-copies a design.
func clone(d *Design) *Design {
	out := &Design{Name: d.Name, Topology: d.Topology}
	out.Cores = append([]Core(nil), d.Cores...)
	for _, u := range d.UseCases {
		out.UseCases = append(out.UseCases, u.Clone())
	}
	for _, s := range d.ParallelSets {
		out.ParallelSets = append(out.ParallelSets, append([]int(nil), s...))
	}
	out.SmoothPairs = append([][2]int(nil), d.SmoothPairs...)
	return out
}

// reverseUseCases returns a semantically identical design with the use-case
// list reversed and every index-bearing declaration remapped accordingly.
func reverseUseCases(d *Design) *Design {
	out := clone(d)
	n := len(out.UseCases)
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		out.UseCases[i], out.UseCases[j] = out.UseCases[j], out.UseCases[i]
	}
	remap := func(idx int) int { return n - 1 - idx }
	for _, set := range out.ParallelSets {
		for i := range set {
			set[i] = remap(set[i])
		}
	}
	for i := range out.SmoothPairs {
		out.SmoothPairs[i][0] = remap(out.SmoothPairs[i][0])
		out.SmoothPairs[i][1] = remap(out.SmoothPairs[i][1])
	}
	return out
}
