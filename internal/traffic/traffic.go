// Package traffic models the communication constraints the methodology takes
// as input: cores, directed traffic flows with bandwidth and latency
// constraints, and use-cases (Definition 2 of the paper). It also implements
// the compound-mode combination rule of Section 4: the bandwidth of a flow in
// a parallel mode is the sum of the flows between the same pair of cores
// across the constituent use-cases, and its latency constraint is the
// minimum.
package traffic

import (
	"fmt"
	"math"
	"sort"
)

// CoreID identifies a core (IP block) of the SoC. Cores are numbered
// 0..NumCores-1 within a design.
type CoreID int

// Core is an IP block of the SoC that attaches to the NoC through a network
// interface.
type Core struct {
	ID   CoreID
	Name string
}

// Flow is a directed guaranteed-throughput traffic stream between two cores
// within one use-case.
type Flow struct {
	Src CoreID
	Dst CoreID
	// BandwidthMBs is the maximum rate of traffic on the flow in MB/s.
	BandwidthMBs float64
	// MaxLatencyNS is the maximum delay, in nanoseconds, by which a packet of
	// the flow must reach the destination. Zero means unconstrained.
	MaxLatencyNS float64
}

// PairKey identifies a directed (source, destination) core pair.
type PairKey struct {
	Src CoreID
	Dst CoreID
}

// Key returns the flow's directed pair key.
func (f Flow) Key() PairKey { return PairKey{Src: f.Src, Dst: f.Dst} }

// UseCase is one application mode of the SoC: a named set of flows with
// their constraints (the set F_i of Definition 2).
type UseCase struct {
	Name  string
	Flows []Flow
	// Compound marks use-cases synthesized by the pre-processing phase to
	// represent parallel modes of operation.
	Compound bool
	// Parts holds the names of the constituent use-cases when Compound.
	Parts []string
}

// Validate checks a use-case against a design with numCores cores: all
// endpoints in range, no self-flows, positive bandwidth, non-negative
// latency, and no duplicate (src,dst) pairs (per Definition 2 the flows of a
// use-case are the communication between pairs of cores, so a pair appears
// at most once; aggregate duplicates before constructing the use-case).
func (u *UseCase) Validate(numCores int) error {
	seen := make(map[PairKey]struct{}, len(u.Flows))
	for i, f := range u.Flows {
		if f.Src < 0 || int(f.Src) >= numCores || f.Dst < 0 || int(f.Dst) >= numCores {
			return fmt.Errorf("traffic: use-case %q flow %d: endpoint out of range [0,%d)", u.Name, i, numCores)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("traffic: use-case %q flow %d: self-flow on core %d", u.Name, i, f.Src)
		}
		if f.BandwidthMBs <= 0 || math.IsNaN(f.BandwidthMBs) || math.IsInf(f.BandwidthMBs, 0) {
			return fmt.Errorf("traffic: use-case %q flow %d: bandwidth %v not positive finite", u.Name, i, f.BandwidthMBs)
		}
		if f.MaxLatencyNS < 0 || math.IsNaN(f.MaxLatencyNS) {
			return fmt.Errorf("traffic: use-case %q flow %d: latency %v negative", u.Name, i, f.MaxLatencyNS)
		}
		k := f.Key()
		if _, dup := seen[k]; dup {
			return fmt.Errorf("traffic: use-case %q: duplicate flow %d->%d", u.Name, f.Src, f.Dst)
		}
		seen[k] = struct{}{}
	}
	return nil
}

// TotalBandwidth returns the sum of the bandwidths of all flows, in MB/s.
func (u *UseCase) TotalBandwidth() float64 {
	var sum float64
	for _, f := range u.Flows {
		sum += f.BandwidthMBs
	}
	return sum
}

// MaxBandwidth returns the largest single-flow bandwidth, in MB/s.
func (u *UseCase) MaxBandwidth() float64 {
	var max float64
	for _, f := range u.Flows {
		if f.BandwidthMBs > max {
			max = f.BandwidthMBs
		}
	}
	return max
}

// FlowByPair returns the flow between the given directed pair, if present.
func (u *UseCase) FlowByPair(k PairKey) (Flow, bool) {
	for _, f := range u.Flows {
		if f.Key() == k {
			return f, true
		}
	}
	return Flow{}, false
}

// SortFlows orders the use-case's flows by descending bandwidth, breaking
// ties by (src, dst) for determinism.
func (u *UseCase) SortFlows() {
	sort.SliceStable(u.Flows, func(i, j int) bool {
		a, b := u.Flows[i], u.Flows[j]
		if a.BandwidthMBs != b.BandwidthMBs {
			return a.BandwidthMBs > b.BandwidthMBs
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})
}

// Clone returns a deep copy of the use-case.
func (u *UseCase) Clone() *UseCase {
	c := &UseCase{Name: u.Name, Compound: u.Compound}
	c.Flows = append([]Flow(nil), u.Flows...)
	c.Parts = append([]string(nil), u.Parts...)
	return c
}

// Combine builds the compound-mode use-case representing the given use-cases
// running in parallel (Section 4): per directed core pair, bandwidth is the
// sum across constituents and the latency constraint is the minimum of the
// constrained latencies (unconstrained flows do not tighten the bound).
func Combine(name string, parts []*UseCase) *UseCase {
	type acc struct {
		bw  float64
		lat float64 // 0 = unconstrained so far
	}
	sum := make(map[PairKey]*acc)
	var order []PairKey
	names := make([]string, 0, len(parts))
	for _, p := range parts {
		names = append(names, p.Name)
		for _, f := range p.Flows {
			k := f.Key()
			a, ok := sum[k]
			if !ok {
				a = &acc{}
				sum[k] = a
				order = append(order, k)
			}
			a.bw += f.BandwidthMBs
			if f.MaxLatencyNS > 0 && (a.lat == 0 || f.MaxLatencyNS < a.lat) {
				a.lat = f.MaxLatencyNS
			}
		}
	}
	// Deterministic flow order: by pair.
	sort.Slice(order, func(i, j int) bool {
		if order[i].Src != order[j].Src {
			return order[i].Src < order[j].Src
		}
		return order[i].Dst < order[j].Dst
	})
	out := &UseCase{Name: name, Compound: true, Parts: names}
	for _, k := range order {
		a := sum[k]
		out.Flows = append(out.Flows, Flow{Src: k.Src, Dst: k.Dst, BandwidthMBs: a.bw, MaxLatencyNS: a.lat})
	}
	return out
}

// Design couples the core list of an SoC with its use-cases; it is the raw
// input (U1..Un of Figure 3) before pre-processing.
type Design struct {
	Name  string
	Cores []Core
	// UseCases are the individual application modes.
	UseCases []*UseCase
	// ParallelSets lists groups of use-case indices that can run in parallel
	// (the PUC input); a compound mode is generated for each set.
	ParallelSets [][]int
	// SmoothPairs lists use-case index pairs requiring smooth switching (the
	// SUC input); both members must share one NoC configuration.
	SmoothPairs [][2]int
	// Topology tags the interconnect family the design targets: "mesh",
	// "torus", or a custom fabric's canonical identifier ("custom:…",
	// topology.Custom.CanonicalID). Empty means mesh. The tag participates
	// in Canonicalize and Digest, so otherwise identical designs on
	// different fabrics never share a cache key.
	Topology string
}

// NumCores reports the number of cores in the design.
func (d *Design) NumCores() int { return len(d.Cores) }

// Validate checks the design: named, consistent core IDs, valid use-cases,
// and in-range parallel/smooth references.
func (d *Design) Validate() error {
	if len(d.Cores) == 0 {
		return fmt.Errorf("traffic: design %q has no cores", d.Name)
	}
	for i, c := range d.Cores {
		if int(c.ID) != i {
			return fmt.Errorf("traffic: design %q core %d has ID %d (must be dense, in order)", d.Name, i, c.ID)
		}
	}
	if len(d.UseCases) == 0 {
		return fmt.Errorf("traffic: design %q has no use-cases", d.Name)
	}
	names := make(map[string]struct{}, len(d.UseCases))
	for _, u := range d.UseCases {
		if u.Name == "" {
			return fmt.Errorf("traffic: design %q has an unnamed use-case", d.Name)
		}
		if _, dup := names[u.Name]; dup {
			return fmt.Errorf("traffic: design %q: duplicate use-case name %q", d.Name, u.Name)
		}
		names[u.Name] = struct{}{}
		if err := u.Validate(len(d.Cores)); err != nil {
			return err
		}
	}
	for _, set := range d.ParallelSets {
		if len(set) < 2 {
			return fmt.Errorf("traffic: design %q: parallel set %v needs at least two use-cases", d.Name, set)
		}
		seen := make(map[int]struct{}, len(set))
		for _, idx := range set {
			if idx < 0 || idx >= len(d.UseCases) {
				return fmt.Errorf("traffic: design %q: parallel set references use-case %d (have %d)", d.Name, idx, len(d.UseCases))
			}
			if _, dup := seen[idx]; dup {
				return fmt.Errorf("traffic: design %q: parallel set %v repeats use-case %d", d.Name, set, idx)
			}
			seen[idx] = struct{}{}
		}
	}
	for _, p := range d.SmoothPairs {
		for _, idx := range p {
			if idx < 0 || idx >= len(d.UseCases) {
				return fmt.Errorf("traffic: design %q: smooth pair references use-case %d (have %d)", d.Name, idx, len(d.UseCases))
			}
		}
	}
	if err := ValidateTopologyTag(d.Topology); err != nil {
		return fmt.Errorf("traffic: design %q: %w", d.Name, err)
	}
	return nil
}

// ValidateTopologyTag checks a design's fabric tag: empty (mesh), "mesh",
// "torus", or a custom fabric identifier ("custom:" prefix).
func ValidateTopologyTag(tag string) error {
	switch {
	case tag == "" || tag == "mesh" || tag == "torus":
		return nil
	case len(tag) > len("custom:") && tag[:len("custom:")] == "custom:":
		return nil
	default:
		return fmt.Errorf("unknown topology tag %q (want mesh, torus or custom:…)", tag)
	}
}

// MakeCores is a convenience constructor for n anonymous cores with dense IDs.
func MakeCores(n int) []Core {
	cores := make([]Core, n)
	for i := range cores {
		cores[i] = Core{ID: CoreID(i), Name: fmt.Sprintf("core%d", i)}
	}
	return cores
}
