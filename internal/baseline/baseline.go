// Package baseline implements the worst-case design method of the paper's
// reference [25] ("Mapping and Configuration Methods for Multi-Use-Case
// Networks on Chips", ASPDAC 2006), which the paper compares against.
//
// Instead of keeping per-use-case resource state, the WC method builds one
// synthetic worst-case use-case that accounts for the worst constraints of
// every flow across all use-cases — per directed core pair, the maximum
// bandwidth and the minimum latency — and designs the NoC for that single
// use-case with the same underlying engine ([25] is also based on [20], so
// both methods share the mapper here, isolating the multi-use-case
// strategy). Because the worst-case use-case demands every pair's peak
// simultaneously, it becomes heavily over-specified as the number and
// variety of use-cases grows.
package baseline

import (
	"sort"

	"nocmap/internal/core"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

// WorstCaseName is the name of the generated synthetic use-case.
const WorstCaseName = "worst-case"

// WorstCase builds the synthetic worst-case use-case from a set of
// use-cases: one flow per directed pair occurring anywhere, carrying the
// maximum bandwidth and the minimum (tightest) positive latency constraint
// observed for that pair.
func WorstCase(ucs []*traffic.UseCase) *traffic.UseCase {
	type acc struct {
		bw  float64
		lat float64
	}
	worst := make(map[traffic.PairKey]*acc)
	var order []traffic.PairKey
	for _, u := range ucs {
		for _, f := range u.Flows {
			k := f.Key()
			a, ok := worst[k]
			if !ok {
				a = &acc{}
				worst[k] = a
				order = append(order, k)
			}
			if f.BandwidthMBs > a.bw {
				a.bw = f.BandwidthMBs
			}
			if f.MaxLatencyNS > 0 && (a.lat == 0 || f.MaxLatencyNS < a.lat) {
				a.lat = f.MaxLatencyNS
			}
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Src != order[j].Src {
			return order[i].Src < order[j].Src
		}
		return order[i].Dst < order[j].Dst
	})
	out := &traffic.UseCase{Name: WorstCaseName}
	for _, k := range order {
		a := worst[k]
		out.Flows = append(out.Flows, traffic.Flow{
			Src: k.Src, Dst: k.Dst, BandwidthMBs: a.bw, MaxLatencyNS: a.lat,
		})
	}
	return out
}

// Map designs a NoC with the WC method: compound modes are generated exactly
// as in the proposed methodology (they are real operating modes the design
// must support), the worst-case use-case is synthesized over all of them,
// and the single-use-case mapper runs on the result. The returned mapping
// has one configuration serving every use-case.
func Map(prep *usecase.Prepared, numCores int, p core.Params) (*core.Result, error) {
	wc := WorstCase(prep.UseCases)
	wcPrep := &usecase.Prepared{
		UseCases:    []*traffic.UseCase{wc},
		Groups:      [][]int{{0}},
		GroupOf:     []int{0},
		NumOriginal: 1,
	}
	return core.Map(wcPrep, numCores, p)
}
