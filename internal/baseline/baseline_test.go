package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nocmap/internal/core"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

func TestWorstCaseCombination(t *testing.T) {
	u1 := &traffic.UseCase{Name: "a", Flows: []traffic.Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 100, MaxLatencyNS: 500},
		{Src: 1, Dst: 2, BandwidthMBs: 50},
	}}
	u2 := &traffic.UseCase{Name: "b", Flows: []traffic.Flow{
		{Src: 0, Dst: 1, BandwidthMBs: 180, MaxLatencyNS: 900},
		{Src: 2, Dst: 0, BandwidthMBs: 70, MaxLatencyNS: 300},
	}}
	wc := WorstCase([]*traffic.UseCase{u1, u2})
	if wc.Name != WorstCaseName {
		t.Errorf("name = %q", wc.Name)
	}
	if len(wc.Flows) != 3 {
		t.Fatalf("flows = %d, want 3 (union of pairs)", len(wc.Flows))
	}
	f01, _ := wc.FlowByPair(traffic.PairKey{Src: 0, Dst: 1})
	if f01.BandwidthMBs != 180 || f01.MaxLatencyNS != 500 {
		t.Errorf("(0,1) = %+v, want max bw 180, min lat 500", f01)
	}
	f12, _ := wc.FlowByPair(traffic.PairKey{Src: 1, Dst: 2})
	if f12.BandwidthMBs != 50 || f12.MaxLatencyNS != 0 {
		t.Errorf("(1,2) = %+v", f12)
	}
}

// Property: the worst-case use-case dominates every constituent flow, and
// contains exactly the union of the pairs.
func TestWorstCaseDominatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		var ucs []*traffic.UseCase
		for k := 0; k < 1+rng.Intn(5); k++ {
			u := &traffic.UseCase{Name: "u"}
			used := map[traffic.PairKey]bool{}
			for i := 0; i < rng.Intn(10); i++ {
				s, d := rng.Intn(n), rng.Intn(n)
				key := traffic.PairKey{Src: traffic.CoreID(s), Dst: traffic.CoreID(d)}
				if s == d || used[key] {
					continue
				}
				used[key] = true
				u.Flows = append(u.Flows, traffic.Flow{
					Src: key.Src, Dst: key.Dst,
					BandwidthMBs: 1 + rng.Float64()*500,
					MaxLatencyNS: float64(rng.Intn(2)) * (50 + rng.Float64()*1000),
				})
			}
			ucs = append(ucs, u)
		}
		wc := WorstCase(ucs)
		pairs := map[traffic.PairKey]bool{}
		for _, u := range ucs {
			for _, fl := range u.Flows {
				pairs[fl.Key()] = true
				w, ok := wc.FlowByPair(fl.Key())
				if !ok || w.BandwidthMBs < fl.BandwidthMBs {
					return false
				}
				if fl.MaxLatencyNS > 0 && (w.MaxLatencyNS <= 0 || w.MaxLatencyNS > fl.MaxLatencyNS) {
					return false
				}
			}
		}
		return len(wc.Flows) == len(pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMapWorstCaseNeverSmaller(t *testing.T) {
	// Two use-cases with disjoint heavy traffic: per-use-case mapping fits a
	// single switch, the WC union must not be smaller.
	mk := func(name string, off int) *traffic.UseCase {
		return &traffic.UseCase{Name: name, Flows: []traffic.Flow{
			{Src: traffic.CoreID(off), Dst: traffic.CoreID(off + 1), BandwidthMBs: 1500},
			{Src: traffic.CoreID(off + 1), Dst: traffic.CoreID(off), BandwidthMBs: 1500},
		}}
	}
	d := &traffic.Design{
		Name:  "d",
		Cores: traffic.MakeCores(8),
		UseCases: []*traffic.UseCase{
			mk("a", 0), mk("b", 2), mk("c", 4), mk("d", 6),
		},
	}
	pr, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	ours, err := core.Map(pr, 8, p)
	if err != nil {
		t.Fatalf("proposed method: %v", err)
	}
	wc, err := Map(pr, 8, p)
	if err != nil {
		t.Fatalf("WC method: %v", err)
	}
	if wc.Mapping.SwitchCount() < ours.Mapping.SwitchCount() {
		t.Errorf("WC smaller than proposed: %d < %d", wc.Mapping.SwitchCount(), ours.Mapping.SwitchCount())
	}
	// Here the disjoint union forces the WC method to spread: it must be
	// strictly larger than the per-use-case design.
	if wc.Mapping.SwitchCount() == ours.Mapping.SwitchCount() {
		t.Errorf("WC should need more switches: both %d", wc.Mapping.SwitchCount())
	}
}

func TestMapWorstCaseInfeasibleWhenOverSpecified(t *testing.T) {
	// Twenty use-cases each pushing 800 MB/s from a distinct core into core
	// 0. The per-pair worst-case union needs 20*800 = 16000 MB/s into one
	// core's NI: infeasible at any mesh size. The proposed method fits.
	var ucs []*traffic.UseCase
	for i := 1; i <= 20; i++ {
		ucs = append(ucs, &traffic.UseCase{
			Name:  "u" + string(rune('a'+i-1)),
			Flows: []traffic.Flow{{Src: traffic.CoreID(i), Dst: 0, BandwidthMBs: 800}},
		})
	}
	d := &traffic.Design{Name: "hot", Cores: traffic.MakeCores(21), UseCases: ucs}
	pr, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	p.MaxMeshDim = 6
	if _, err := core.Map(pr, 21, p); err != nil {
		t.Fatalf("proposed method should fit: %v", err)
	}
	if _, err := Map(pr, 21, p); err == nil {
		t.Fatal("WC method should be infeasible")
	}
}
