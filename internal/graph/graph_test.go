package graph

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestUndirectedBasics(t *testing.T) {
	g := NewUndirected(4)
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(1, 0); err != nil { // parallel edge collapses
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge (0,1) should exist in both directions")
	}
	if g.HasEdge(2, 3) {
		t.Error("edge (2,3) should not exist")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Errorf("degrees = %d,%d, want 1,1", g.Degree(0), g.Degree(1))
	}
}

func TestUndirectedAddEdgeOutOfRange(t *testing.T) {
	g := NewUndirected(2)
	for _, e := range [][2]int{{-1, 0}, {0, 2}, {5, 5}} {
		if err := g.AddEdge(e[0], e[1]); err == nil {
			t.Errorf("AddEdge(%d,%d) should fail", e[0], e[1])
		}
	}
}

func TestUndirectedSelfLoopIgnored(t *testing.T) {
	g := NewUndirected(2)
	if err := g.AddEdge(0, 0); err != nil {
		t.Fatalf("self loop rejected: %v", err)
	}
	if g.Degree(0) != 0 {
		t.Errorf("self loop should not change degree, got %d", g.Degree(0))
	}
	comps := g.Components()
	if len(comps) != 2 {
		t.Errorf("components = %v, want two singletons", comps)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewUndirected(5)
	for _, v := range []int{4, 2, 3, 1} {
		if err := g.AddEdge(0, v); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{1, 2, 3, 4}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, want) {
		t.Errorf("Neighbors(0) = %v, want %v", got, want)
	}
	if g.Neighbors(-1) != nil {
		t.Error("Neighbors out of range should be nil")
	}
}

func TestComponentsEmptyAndSingleton(t *testing.T) {
	if comps := NewUndirected(0).Components(); len(comps) != 0 {
		t.Errorf("empty graph components = %v", comps)
	}
	comps := NewUndirected(1).Components()
	if len(comps) != 1 || len(comps[0]) != 1 || comps[0][0] != 0 {
		t.Errorf("singleton components = %v", comps)
	}
}

func TestComponentsFig4(t *testing.T) {
	// The switching graph of the paper's Figure 4: 10 vertices.
	// 0..2 = U1..U3, 3 = U_123, 4..5 = U4,U5, 6 = U_45, 7 = U6, 8 = U7, 9 = U8.
	// Group 1 = {U1,U2,U3,U_123}, Group 2 = {U4,U5,U_45},
	// Group 3 = {U6,U7}, Group 4 = {U8}.
	g := NewUndirected(10)
	edges := [][2]int{{0, 3}, {1, 3}, {2, 3}, {0, 1}, {1, 2}, {4, 6}, {5, 6}, {7, 8}}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8}, {9}}
	if got := g.Components(); !reflect.DeepEqual(got, want) {
		t.Errorf("Components = %v, want %v", got, want)
	}
}

func TestDFSVisitedRespected(t *testing.T) {
	g := NewUndirected(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	visited := make([]bool, 3)
	visited[1] = true
	order := g.DFS(0, visited)
	if !reflect.DeepEqual(order, []int{0}) {
		t.Errorf("DFS with pre-visited neighbour = %v, want [0]", order)
	}
	if g.DFS(0, visited) != nil {
		t.Error("DFS from visited vertex should return nil")
	}
}

// Components must partition the vertex set regardless of edge set.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := NewUndirected(n)
		for i := 0; i < rng.Intn(3*n); i++ {
			if err := g.AddEdge(rng.Intn(n), rng.Intn(n)); err != nil {
				return false
			}
		}
		comps := g.Components()
		seen := make([]bool, n)
		total := 0
		for _, c := range comps {
			for _, v := range c {
				if seen[v] {
					return false // vertex in two components
				}
				seen[v] = true
				total++
			}
		}
		if total != n {
			return false
		}
		// Every edge stays within one component.
		compOf := make([]int, n)
		for i, c := range comps {
			for _, v := range c {
				compOf[v] = i
			}
		}
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(u) {
				if compOf[u] != compOf[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func unitCost(Arc) float64 { return 1 }

func buildLine(n int) *Directed {
	g := NewDirected(n)
	for i := 0; i+1 < n; i++ {
		if _, err := g.AddArc(i, i+1); err != nil {
			panic(err)
		}
	}
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := buildLine(5)
	path, cost, err := g.ShortestPath(0, 4, unitCost)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if cost != 4 || len(path) != 4 {
		t.Errorf("cost=%v len=%d, want 4,4", cost, len(path))
	}
	verts := g.PathVertices(path)
	if !reflect.DeepEqual(verts, []int{0, 1, 2, 3, 4}) {
		t.Errorf("vertices = %v", verts)
	}
}

func TestShortestPathSameVertex(t *testing.T) {
	g := buildLine(3)
	path, cost, err := g.ShortestPath(1, 1, unitCost)
	if err != nil {
		t.Fatalf("ShortestPath(v,v): %v", err)
	}
	if len(path) != 0 || cost != 0 {
		t.Errorf("path=%v cost=%v, want empty path, 0", path, cost)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := buildLine(3) // arcs only forward
	if _, _, err := g.ShortestPath(2, 0, unitCost); err != ErrNoPath {
		t.Errorf("err = %v, want ErrNoPath", err)
	}
}

func TestShortestPathForbiddenArc(t *testing.T) {
	g := NewDirected(3)
	direct, _ := g.AddArc(0, 2)
	a1, _ := g.AddArc(0, 1)
	a2, _ := g.AddArc(1, 2)
	cost := func(a Arc) float64 {
		if a.ID == direct {
			return math.Inf(1) // forbidden
		}
		return 1
	}
	path, c, err := g.ShortestPath(0, 2, cost)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if !reflect.DeepEqual(path, []int{a1, a2}) || c != 2 {
		t.Errorf("path=%v cost=%v, want detour via 1 with cost 2", path, c)
	}
	// Negative cost also means forbidden.
	cost2 := func(a Arc) float64 {
		if a.ID == direct {
			return -1
		}
		return 1
	}
	if path2, _, err := g.ShortestPath(0, 2, cost2); err != nil || len(path2) != 2 {
		t.Errorf("negative-cost arc not excluded: path=%v err=%v", path2, err)
	}
}

func TestShortestPathPrefersCheap(t *testing.T) {
	g := NewDirected(4)
	exp, _ := g.AddArc(0, 3) // expensive direct
	c1, _ := g.AddArc(0, 1)
	c2, _ := g.AddArc(1, 2)
	c3, _ := g.AddArc(2, 3)
	cost := func(a Arc) float64 {
		if a.ID == exp {
			return 10
		}
		return 1
	}
	path, c, err := g.ShortestPath(0, 3, cost)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(path, []int{c1, c2, c3}) || c != 3 {
		t.Errorf("path=%v cost=%v, want 3-hop cost 3", path, c)
	}
}

func TestShortestPathOutOfRange(t *testing.T) {
	g := buildLine(3)
	if _, _, err := g.ShortestPath(-1, 2, unitCost); err == nil {
		t.Error("negative src should error")
	}
	if _, _, err := g.ShortestPath(0, 3, unitCost); err == nil {
		t.Error("dst out of range should error")
	}
}

func TestShortestTree(t *testing.T) {
	g := buildLine(4)
	dist, via, err := g.ShortestTree(0, unitCost)
	if err != nil {
		t.Fatal(err)
	}
	wantDist := []float64{0, 1, 2, 3}
	if !reflect.DeepEqual(dist, wantDist) {
		t.Errorf("dist = %v, want %v", dist, wantDist)
	}
	if via[0] != -1 {
		t.Errorf("via[src] = %d, want -1", via[0])
	}
	// Backwards tree: unreachable vertices are negative.
	dist2, _, err := g.ShortestTree(3, unitCost)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if dist2[v] >= 0 {
			t.Errorf("dist2[%d] = %v, want unreachable (<0)", v, dist2[v])
		}
	}
}

func TestAddArcOutOfRange(t *testing.T) {
	g := NewDirected(2)
	if _, err := g.AddArc(0, 2); err == nil {
		t.Error("AddArc out of range should fail")
	}
	if _, err := g.AddArc(-1, 0); err == nil {
		t.Error("AddArc negative should fail")
	}
}

func TestPathVerticesEmpty(t *testing.T) {
	g := buildLine(2)
	if v := g.PathVertices(nil); v != nil {
		t.Errorf("PathVertices(nil) = %v, want nil", v)
	}
}

// Dijkstra on random grid-ish graphs: cost must equal BFS hop count under
// unit costs, and path arcs must be contiguous.
func TestDijkstraMatchesBFSProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := NewDirected(n)
		for i := 0; i < 4*n; i++ {
			if _, err := g.AddArc(rng.Intn(n), rng.Intn(n)); err != nil {
				return false
			}
		}
		src, dst := rng.Intn(n), rng.Intn(n)
		// BFS reference.
		distBFS := make([]int, n)
		for i := range distBFS {
			distBFS[i] = -1
		}
		distBFS[src] = 0
		queue := []int{src}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, ai := range g.Out(v) {
				to := g.Arc(ai).To
				if distBFS[to] < 0 {
					distBFS[to] = distBFS[v] + 1
					queue = append(queue, to)
				}
			}
		}
		path, cost, err := g.ShortestPath(src, dst, unitCost)
		if distBFS[dst] < 0 {
			return err == ErrNoPath
		}
		if err != nil {
			return false
		}
		if int(cost) != distBFS[dst] || len(path) != distBFS[dst] {
			return false
		}
		// Contiguity.
		for i := 0; i+1 < len(path); i++ {
			if g.Arc(path[i]).To != g.Arc(path[i+1]).From {
				return false
			}
		}
		if len(path) > 0 && (g.Arc(path[0]).From != src || g.Arc(path[len(path)-1]).To != dst) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The heap must return items in non-decreasing order.
func TestHeapOrderProperty(t *testing.T) {
	f := func(vals []float64) bool {
		h := &heapF{}
		for i, v := range vals {
			if v != v { // skip NaN
				continue
			}
			h.push(item{v: i, d: v})
		}
		prev := math.Inf(-1)
		var out []float64
		for h.len() > 0 {
			it := h.pop()
			if it.d < prev {
				return false
			}
			prev = it.d
			out = append(out, it.d)
		}
		sorted := append([]float64(nil), out...)
		sort.Float64s(sorted)
		return reflect.DeepEqual(out, sorted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
