// Package graph provides the graph primitives the mapping methodology is
// built on: an undirected graph with depth-first search and connected
// components (Algorithm 1 of the paper operates on the switching graph), and
// a directed graph with Dijkstra shortest paths under arbitrary non-negative
// edge costs (the least-cost path selection of Algorithm 2).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Undirected is a simple undirected graph over vertices 0..N-1.
// Parallel edges are collapsed; self-loops are ignored for reachability.
type Undirected struct {
	n   int
	adj []map[int]struct{}
}

// NewUndirected returns an undirected graph with n vertices and no edges.
func NewUndirected(n int) *Undirected {
	if n < 0 {
		n = 0
	}
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &Undirected{n: n, adj: adj}
}

// N reports the number of vertices.
func (g *Undirected) N() int { return g.n }

// AddEdge inserts the undirected edge (u, v). It returns an error if either
// endpoint is out of range. Self-loops are accepted but have no effect on
// connectivity.
func (g *Undirected) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return nil
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	return nil
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Undirected) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of neighbours of v, or 0 if v is out of range.
func (g *Undirected) Degree(v int) int {
	if v < 0 || v >= g.n {
		return 0
	}
	return len(g.adj[v])
}

// Neighbors returns the sorted neighbour list of v.
func (g *Undirected) Neighbors(v int) []int {
	if v < 0 || v >= g.n {
		return nil
	}
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// DFS performs an iterative depth-first search from start and returns the
// vertices reached, in visitation order. The caller's visited slice is
// updated in place; it must have length N.
func (g *Undirected) DFS(start int, visited []bool) []int {
	if start < 0 || start >= g.n || visited[start] {
		return nil
	}
	var order []int
	stack := []int{start}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[v] {
			continue
		}
		visited[v] = true
		order = append(order, v)
		// Push sorted neighbours in reverse so they pop in ascending order,
		// making traversal deterministic.
		nbr := g.Neighbors(v)
		for i := len(nbr) - 1; i >= 0; i-- {
			if !visited[nbr[i]] {
				stack = append(stack, nbr[i])
			}
		}
	}
	return order
}

// Components returns the connected components of the graph, each sorted
// ascending, ordered by their smallest vertex. This is Algorithm 1 of the
// paper: repeated DFS until every vertex is visited, grouping the vertices
// reached by each search.
func (g *Undirected) Components() [][]int {
	visited := make([]bool, g.n)
	var comps [][]int
	for v := 0; v < g.n; v++ {
		if visited[v] {
			continue
		}
		comp := g.DFS(v, visited)
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// Arc is a directed edge with an identifier, used by the directed graph. The
// ID lets callers attach external state (e.g. per-link residual bandwidth).
type Arc struct {
	ID   int
	From int
	To   int
}

// Directed is a directed multigraph over vertices 0..N-1 with identified
// arcs, supporting Dijkstra under caller-provided per-arc costs.
type Directed struct {
	n    int
	arcs []Arc
	out  [][]int // vertex -> indices into arcs
}

// NewDirected returns a directed graph with n vertices and no arcs.
func NewDirected(n int) *Directed {
	if n < 0 {
		n = 0
	}
	return &Directed{n: n, out: make([][]int, n)}
}

// N reports the number of vertices.
func (g *Directed) N() int { return g.n }

// NumArcs reports the number of arcs.
func (g *Directed) NumArcs() int { return len(g.arcs) }

// Arc returns the arc with index i.
func (g *Directed) Arc(i int) Arc { return g.arcs[i] }

// AddArc appends a directed arc and returns its index. The index doubles as
// the arc ID handed back in paths.
func (g *Directed) AddArc(from, to int) (int, error) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return -1, fmt.Errorf("graph: arc (%d,%d) out of range [0,%d)", from, to, g.n)
	}
	id := len(g.arcs)
	g.arcs = append(g.arcs, Arc{ID: id, From: from, To: to})
	g.out[from] = append(g.out[from], id)
	return id, nil
}

// Out returns the indices of arcs leaving v.
func (g *Directed) Out(v int) []int {
	if v < 0 || v >= g.n {
		return nil
	}
	return g.out[v]
}

// CostFunc prices an arc for a particular search. Return Inf (or any value
// < 0) to forbid the arc.
type CostFunc func(arc Arc) float64

// ErrNoPath is returned when the destination is unreachable under the given
// cost function.
var ErrNoPath = errors.New("graph: no path")

// ShortestPath runs Dijkstra from src to dst under cost. It returns the arc
// indices of a least-cost path and the total cost. Arcs priced negative or
// +Inf are treated as absent. Ties are broken deterministically by preferring
// lower vertex indices.
func (g *Directed) ShortestPath(src, dst int, cost CostFunc) ([]int, float64, error) {
	if src < 0 || src >= g.n || dst < 0 || dst >= g.n {
		return nil, 0, fmt.Errorf("graph: shortest path endpoints (%d,%d) out of range [0,%d)", src, dst, g.n)
	}
	dist, via := g.dijkstra(src, cost, dst)
	if via == nil || (dist[dst] != dist[dst]) || dist[dst] < 0 { // NaN or unreached marker
		return nil, 0, ErrNoPath
	}
	if via[dst] == -1 && src != dst {
		return nil, 0, ErrNoPath
	}
	// Reconstruct.
	var rev []int
	for v := dst; v != src; {
		a := via[v]
		rev = append(rev, a)
		v = g.arcs[a].From
	}
	path := make([]int, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return path, dist[dst], nil
}

// ShortestTree runs Dijkstra from src under cost and returns, for each
// vertex, the cost of the best path from src (negative if unreachable) and
// the incoming arc on that path (-1 for src and unreachable vertices).
func (g *Directed) ShortestTree(src int, cost CostFunc) (dist []float64, via []int, err error) {
	if src < 0 || src >= g.n {
		return nil, nil, fmt.Errorf("graph: shortest tree source %d out of range [0,%d)", src, g.n)
	}
	dist, via = g.dijkstra(src, cost, -1)
	return dist, via, nil
}

// PathVertices expands a path of arc indices into the vertex sequence it
// visits, starting from the first arc's tail.
func (g *Directed) PathVertices(path []int) []int {
	if len(path) == 0 {
		return nil
	}
	verts := make([]int, 0, len(path)+1)
	verts = append(verts, g.arcs[path[0]].From)
	for _, a := range path {
		verts = append(verts, g.arcs[a].To)
	}
	return verts
}

// SPScratch is the reusable state of repeated shortest-path queries on one
// goroutine: the Dijkstra working arrays, the heap and the path buffer. A
// zero SPScratch is ready to use; buffers grow to the graph size on first
// use and are retained. Not safe for concurrent use — one scratch per
// searching goroutine, like tdma.State.
type SPScratch struct {
	dist []float64
	via  []int
	done []bool
	h    heapF
	path []int
}

// grow sizes the working arrays for an n-vertex graph.
func (sc *SPScratch) grow(n int) {
	if cap(sc.dist) < n {
		sc.dist = make([]float64, n)
		sc.via = make([]int, n)
		sc.done = make([]bool, n)
	}
	sc.dist = sc.dist[:n]
	sc.via = sc.via[:n]
	sc.done = sc.done[:n]
}

// ShortestPathInto is ShortestPath with every working allocation drawn from
// the scratch: the returned path slice is owned by the scratch and valid
// only until its next use. Results are identical to ShortestPath.
func (g *Directed) ShortestPathInto(src, dst int, cost CostFunc, sc *SPScratch) ([]int, float64, error) {
	if src < 0 || src >= g.n || dst < 0 || dst >= g.n {
		return nil, 0, fmt.Errorf("graph: shortest path endpoints (%d,%d) out of range [0,%d)", src, dst, g.n)
	}
	dist, via := g.dijkstraInto(src, cost, dst, sc)
	if via == nil || (dist[dst] != dist[dst]) || dist[dst] < 0 { // NaN or unreached marker
		return nil, 0, ErrNoPath
	}
	if via[dst] == -1 && src != dst {
		return nil, 0, ErrNoPath
	}
	// Reconstruct in reverse, then flip in place.
	path := sc.path[:0]
	for v := dst; v != src; {
		a := via[v]
		path = append(path, a)
		v = g.arcs[a].From
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	sc.path = path
	return path, dist[dst], nil
}

const unreached = -1.0

// dijkstra computes least costs from src. dist[v] < 0 marks unreachable.
// If stop >= 0, the search terminates once stop is settled.
func (g *Directed) dijkstra(src int, cost CostFunc, stop int) ([]float64, []int) {
	return g.dijkstraInto(src, cost, stop, &SPScratch{})
}

// dijkstraInto is dijkstra over scratch-owned arrays. The returned slices
// alias the scratch.
func (g *Directed) dijkstraInto(src int, cost CostFunc, stop int, sc *SPScratch) ([]float64, []int) {
	sc.grow(g.n)
	dist, via, done := sc.dist, sc.via, sc.done
	for i := range dist {
		dist[i] = unreached
		via[i] = -1
		done[i] = false
	}
	dist[src] = 0
	h := &sc.h
	h.a = h.a[:0]
	h.push(item{v: src, d: 0})
	for h.len() > 0 {
		it := h.pop()
		if done[it.v] {
			continue
		}
		done[it.v] = true
		if it.v == stop {
			break
		}
		for _, ai := range g.out[it.v] {
			arc := g.arcs[ai]
			c := cost(arc)
			if c < 0 || c != c || isInf(c) { // forbidden: negative, NaN or +Inf
				continue
			}
			nd := dist[it.v] + c
			if dist[arc.To] < 0 || nd < dist[arc.To] ||
				(nd == dist[arc.To] && via[arc.To] >= 0 && arc.From < g.arcs[via[arc.To]].From) {
				if !done[arc.To] {
					dist[arc.To] = nd
					via[arc.To] = ai
					h.push(item{v: arc.To, d: nd})
				}
			}
		}
	}
	return dist, via
}

func isInf(f float64) bool { return f > maxFinite }

const maxFinite = 1.7976931348623157e308 / 2 // half of MaxFloat64: anything larger is "infinite"

// item is a heap entry.
type item struct {
	v int
	d float64
}

// heapF is a minimal binary min-heap on (d, v) pairs, ordered by d then v for
// determinism. It avoids container/heap's interface overhead in the hot path.
type heapF struct{ a []item }

func (h *heapF) len() int { return len(h.a) }

func (h *heapF) less(i, j int) bool {
	if h.a[i].d != h.a[j].d {
		return h.a[i].d < h.a[j].d
	}
	return h.a[i].v < h.a[j].v
}

func (h *heapF) push(it item) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *heapF) pop() item {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.a) && h.less(l, small) {
			small = l
		}
		if r < len(h.a) && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}
