package rtlgen

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"nocmap/internal/core"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

func mapped(t *testing.T) *core.Mapping {
	t.Helper()
	d := &traffic.Design{
		Name:  "rtl",
		Cores: traffic.MakeCores(10),
		UseCases: []*traffic.UseCase{
			{Name: "a", Flows: []traffic.Flow{
				{Src: 0, Dst: 1, BandwidthMBs: 700},
				{Src: 2, Dst: 3, BandwidthMBs: 900},
				{Src: 4, Dst: 5, BandwidthMBs: 1100},
				{Src: 6, Dst: 7, BandwidthMBs: 1300},
				{Src: 8, Dst: 9, BandwidthMBs: 600},
			}},
			{Name: "b", Flows: []traffic.Flow{
				{Src: 9, Dst: 0, BandwidthMBs: 400},
			}},
		},
	}
	pr, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Map(pr, 10, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return res.Mapping
}

func TestWriteVHDLStructure(t *testing.T) {
	m := mapped(t)
	var buf bytes.Buffer
	if err := WriteVHDL(&buf, m); err != nil {
		t.Fatalf("WriteVHDL: %v", err)
	}
	s := buf.String()
	for _, want := range []string{
		"library ieee",
		"entity ni is",
		"entity noc_top is",
		"architecture structural of noc_top",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("VHDL missing %q", want)
		}
	}
	// One instantiation per switch and per NI.
	if got := strings.Count(s, "entity work.switch_"); got != m.Topology.NumSwitches() {
		t.Errorf("switch instantiations = %d, want %d", got, m.Topology.NumSwitches())
	}
	wantNIs := m.Topology.NumSwitches() * m.Params.NIsPerSwitch
	if got := strings.Count(s, "entity work.ni"); got != wantNIs {
		t.Errorf("NI instantiations = %d, want %d", got, wantNIs)
	}
	// Every mesh link is documented.
	if got := strings.Count(s, "-- link "); got != m.Topology.NumLinks() {
		t.Errorf("link comments = %d, want %d", got, m.Topology.NumLinks())
	}
}

func TestWriteConfigContents(t *testing.T) {
	m := mapped(t)
	for uc := range m.Prep.UseCases {
		var buf bytes.Buffer
		if err := WriteConfig(&buf, m, uc); err != nil {
			t.Fatalf("WriteConfig(%d): %v", uc, err)
		}
		s := buf.String()
		if !strings.Contains(s, "# use-case: "+m.Prep.UseCases[uc].Name) {
			t.Error("header missing use-case name")
		}
		// One flow line per flow, each with slots and starts.
		lines := 0
		for _, l := range strings.Split(s, "\n") {
			if strings.HasPrefix(l, "flow ") {
				lines++
				if !strings.Contains(l, " slots ") || !strings.Contains(l, " starts ") {
					t.Errorf("malformed flow line %q", l)
				}
			}
		}
		if lines != len(m.Prep.UseCases[uc].Flows) {
			t.Errorf("flow lines = %d, want %d", lines, len(m.Prep.UseCases[uc].Flows))
		}
	}
	if err := WriteConfig(&bytes.Buffer{}, m, 99); err == nil {
		t.Error("out-of-range use-case accepted")
	}
}

func TestWriteConfigDeterministic(t *testing.T) {
	m := mapped(t)
	var a, b bytes.Buffer
	if err := WriteConfig(&a, m, 0); err != nil {
		t.Fatal(err)
	}
	if err := WriteConfig(&b, m, 0); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteConfig not deterministic")
	}
}

func TestWritePlacement(t *testing.T) {
	m := mapped(t)
	var buf bytes.Buffer
	if err := WritePlacement(&buf, m); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for c := range m.CoreSwitch {
		if !strings.Contains(s, fmt.Sprintf("core %d switch", c)) {
			t.Errorf("placement missing core %d", c)
		}
	}
}
