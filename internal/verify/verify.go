// Package verify performs the analytic performance verification of phase 4
// of the methodology: it checks that a produced mapping really delivers the
// guarantees the mapper claims, independently re-deriving every invariant
// from the raw configuration.
//
// Checked invariants, per use-case configuration:
//
//  1. Structure — every flow has an assignment; its path starts at the
//     source core's NI egress link, crosses contiguous mesh links from the
//     source switch to the destination switch, and ends at the destination
//     core's NI ingress link.
//  2. Bandwidth — the reserved slot count grants at least the flow's
//     bandwidth at the configured frequency; group-shared assignments grant
//     the group's maximum.
//  3. Contention freedom — within one configuration (equivalently, one
//     smooth-switching group) no two flows claim the same (link, slot) when
//     slot alignment along paths is applied.
//  4. Latency — the analytic worst case (max slot gap + path length + 1
//     slot periods) meets every flow's constraint.
//  5. Placement — cores sit on valid switches/NIs and NI occupancy respects
//     the per-NI core bound.
//
// Check runs after every mapping the toolkit produces: nocmap refuses to
// emit back-end artifacts on violations, and the mapping service attaches
// the violation list to every response it serves (and caches), so a cached
// answer carries the same verification verdict as the original run.
package verify

import (
	"fmt"

	"nocmap/internal/core"
	"nocmap/internal/tdma"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
)

// Violation describes one failed invariant.
type Violation struct {
	UseCase int
	Pair    traffic.PairKey
	Reason  string
}

func (v Violation) String() string {
	return fmt.Sprintf("use-case %d flow %d->%d: %s", v.UseCase, v.Pair.Src, v.Pair.Dst, v.Reason)
}

// Check validates all invariants and returns every violation found (empty =
// the mapping is sound).
func Check(m *core.Mapping) []Violation {
	var out []Violation
	out = append(out, checkPlacement(m)...)
	for uc := range m.Prep.UseCases {
		out = append(out, checkUseCase(m, uc)...)
	}
	out = append(out, checkGroupSharing(m)...)
	out = append(out, checkContention(m)...)
	return out
}

func checkPlacement(m *core.Mapping) []Violation {
	var out []Violation
	p := m.Params
	niLoad := make(map[int]int)
	for c, s := range m.CoreSwitch {
		ni := m.CoreNI[c]
		if s < 0 {
			if ni >= 0 {
				out = append(out, Violation{Reason: fmt.Sprintf("core %d has NI %d but no switch", c, ni)})
			}
			continue
		}
		if s >= m.Topology.NumSwitches() {
			out = append(out, Violation{Reason: fmt.Sprintf("core %d on invalid switch %d", c, s)})
			continue
		}
		if ni < 0 || ni/p.NIsPerSwitch != s {
			out = append(out, Violation{Reason: fmt.Sprintf("core %d NI %d not on switch %d", c, ni, s)})
			continue
		}
		niLoad[ni]++
	}
	for ni, n := range niLoad {
		if n > p.CoresPerNI {
			out = append(out, Violation{Reason: fmt.Sprintf("NI %d hosts %d cores, capacity %d", ni, n, p.CoresPerNI)})
		}
	}
	return out
}

func checkUseCase(m *core.Mapping, uc int) []Violation {
	var out []Violation
	u := m.Prep.UseCases[uc]
	cfg := m.Configs[uc]
	if cfg == nil {
		return []Violation{{UseCase: uc, Reason: "missing configuration"}}
	}
	bad := func(key traffic.PairKey, format string, args ...interface{}) {
		out = append(out, Violation{UseCase: uc, Pair: key, Reason: fmt.Sprintf(format, args...)})
	}
	meshLinks := m.MeshLinks()
	for _, f := range u.Flows {
		key := f.Key()
		a, ok := cfg.Assignments[key]
		if !ok || a == nil {
			bad(key, "no assignment")
			continue
		}
		// 1. Structure.
		if len(a.Path) < 2 {
			bad(key, "path too short (%d links)", len(a.Path))
			continue
		}
		wantEgress := m.NIEgressLink(m.CoreNI[f.Src])
		wantIngress := m.NIIngressLink(m.CoreNI[f.Dst])
		if a.Path[0] != wantEgress {
			bad(key, "path starts at link %d, want NI egress %d", a.Path[0], wantEgress)
		}
		if a.Path[len(a.Path)-1] != wantIngress {
			bad(key, "path ends at link %d, want NI ingress %d", a.Path[len(a.Path)-1], wantIngress)
		}
		mesh := a.Path[1 : len(a.Path)-1]
		cur := m.CoreSwitch[f.Src]
		okMesh := true
		for _, l := range mesh {
			if l >= meshLinks {
				bad(key, "interior link %d is not a mesh link", l)
				okMesh = false
				break
			}
			link := m.Topology.Link(topology.LinkID(l))
			if int(link.From) != cur {
				bad(key, "mesh path discontinuous at link %d", l)
				okMesh = false
				break
			}
			cur = int(link.To)
		}
		if okMesh && cur != m.CoreSwitch[f.Dst] {
			bad(key, "mesh path ends at switch %d, want %d", cur, m.CoreSwitch[f.Dst])
		}
		// 2. Bandwidth.
		granted := float64(a.SlotCount) * m.Params.SlotBandwidthMBs()
		if granted < f.BandwidthMBs-1e-6 {
			bad(key, "granted %.2f MB/s < required %.2f", granted, f.BandwidthMBs)
		}
		if len(a.Starts) != a.SlotCount {
			bad(key, "slot count %d != starts %d", a.SlotCount, len(a.Starts))
		}
		// 4. Latency.
		if f.MaxLatencyNS > 0 {
			budget := m.Params.LatencyBudgetSlots(f.MaxLatencyNS)
			wc := tdma.WorstCaseLatencySlots(a.Starts, len(a.Path), m.Params.SlotTableSize)
			if wc > budget {
				bad(key, "worst-case latency %d slots exceeds budget %d", wc, budget)
			}
		}
	}
	return out
}

// checkGroupSharing verifies that use-cases in one smooth-switching group
// share identical assignments for shared pairs, sized by the group maximum.
func checkGroupSharing(m *core.Mapping) []Violation {
	var out []Violation
	for _, group := range m.Prep.Groups {
		seen := make(map[traffic.PairKey]*core.Assignment)
		maxBW := make(map[traffic.PairKey]float64)
		for _, uc := range group {
			for _, f := range m.Prep.UseCases[uc].Flows {
				key := f.Key()
				a := m.Configs[uc].Assignments[key]
				if prev, ok := seen[key]; ok && prev != a {
					out = append(out, Violation{UseCase: uc, Pair: key,
						Reason: "group members have diverging assignments for a shared pair"})
				}
				seen[key] = a
				if f.BandwidthMBs > maxBW[key] {
					maxBW[key] = f.BandwidthMBs
				}
			}
		}
		for key, a := range seen {
			if a == nil {
				continue
			}
			granted := float64(a.SlotCount) * m.Params.SlotBandwidthMBs()
			if granted < maxBW[key]-1e-6 {
				out = append(out, Violation{Pair: key,
					Reason: fmt.Sprintf("group assignment grants %.2f MB/s < group max %.2f", granted, maxBW[key])})
			}
		}
	}
	return out
}

// checkContention rebuilds the slot tables of every group configuration
// from scratch and reports any (link, slot) claimed twice.
func checkContention(m *core.Mapping) []Violation {
	var out []Violation
	T := m.Params.SlotTableSize
	for gi, group := range m.Prep.Groups {
		owner := make(map[[2]int]traffic.PairKey) // (link, slot) -> pair
		claimed := make(map[traffic.PairKey]bool)
		for _, uc := range group {
			for _, f := range m.Prep.UseCases[uc].Flows {
				key := f.Key()
				if claimed[key] {
					continue // shared assignment, already walked
				}
				claimed[key] = true
				a := m.Configs[uc].Assignments[key]
				if a == nil {
					continue
				}
				for _, st := range a.Starts {
					for h, link := range a.Path {
						slot := (st + h) % T
						cell := [2]int{link, slot}
						if other, dup := owner[cell]; dup && other != key {
							out = append(out, Violation{UseCase: uc, Pair: key,
								Reason: fmt.Sprintf("group %d: link %d slot %d also claimed by %d->%d",
									gi, link, slot, other.Src, other.Dst)})
						}
						owner[cell] = key
					}
				}
			}
		}
	}
	return out
}
