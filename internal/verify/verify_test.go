package verify

import (
	"strings"
	"testing"

	"nocmap/internal/core"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

func mapped(t *testing.T, d *traffic.Design) *core.Mapping {
	t.Helper()
	pr, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Map(pr, d.NumCores(), core.DefaultParams())
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	return res.Mapping
}

func sampleDesign() *traffic.Design {
	return &traffic.Design{
		Name:  "sample",
		Cores: traffic.MakeCores(6),
		UseCases: []*traffic.UseCase{
			{Name: "a", Flows: []traffic.Flow{
				{Src: 0, Dst: 1, BandwidthMBs: 400, MaxLatencyNS: 2000},
				{Src: 1, Dst: 2, BandwidthMBs: 250},
				{Src: 3, Dst: 4, BandwidthMBs: 700},
			}},
			{Name: "b", Flows: []traffic.Flow{
				{Src: 0, Dst: 1, BandwidthMBs: 150},
				{Src: 4, Dst: 5, BandwidthMBs: 900},
				{Src: 2, Dst: 0, BandwidthMBs: 60, MaxLatencyNS: 1500},
			}},
		},
		SmoothPairs: [][2]int{{0, 1}},
	}
}

func TestCheckCleanMapping(t *testing.T) {
	m := mapped(t, sampleDesign())
	if v := Check(m); len(v) != 0 {
		t.Fatalf("clean mapping reported violations: %v", v)
	}
}

func TestCheckDetectsMissingAssignment(t *testing.T) {
	m := mapped(t, sampleDesign())
	delete(m.Configs[0].Assignments, traffic.PairKey{Src: 0, Dst: 1})
	vs := Check(m)
	if len(vs) == 0 {
		t.Fatal("missing assignment not detected")
	}
	found := false
	for _, v := range vs {
		if strings.Contains(v.String(), "no assignment") {
			found = true
		}
	}
	if !found {
		t.Errorf("violations lack 'no assignment': %v", vs)
	}
}

func TestCheckDetectsUndersizedReservation(t *testing.T) {
	m := mapped(t, sampleDesign())
	a := m.Configs[0].Assignments[traffic.PairKey{Src: 3, Dst: 4}]
	a.SlotCount = 1
	a.Starts = a.Starts[:1]
	vs := Check(m)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Reason, "granted") {
			found = true
		}
	}
	if !found {
		t.Errorf("undersized reservation not detected: %v", vs)
	}
}

func TestCheckDetectsBrokenPath(t *testing.T) {
	m := mapped(t, sampleDesign())
	a := m.Configs[1].Assignments[traffic.PairKey{Src: 4, Dst: 5}]
	a.Path = a.Path[:1] // lop off the tail: no NI ingress
	vs := Check(m)
	if len(vs) == 0 {
		t.Fatal("broken path not detected")
	}
}

func TestCheckDetectsContention(t *testing.T) {
	m := mapped(t, sampleDesign())
	// Force two flows of use-case "a" onto identical (link, slot) cells.
	k1 := traffic.PairKey{Src: 0, Dst: 1}
	k2 := traffic.PairKey{Src: 1, Dst: 2}
	a1 := m.Configs[0].Assignments[k1]
	a2 := m.Configs[0].Assignments[k2]
	a2.Path = append([]int(nil), a1.Path...)
	a2.Starts = append([]int(nil), a1.Starts...)
	a2.SlotCount = a1.SlotCount
	vs := Check(m)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Reason, "also claimed") {
			found = true
		}
	}
	if !found {
		t.Errorf("contention not detected: %v", vs)
	}
}

func TestCheckDetectsGroupDivergence(t *testing.T) {
	m := mapped(t, sampleDesign())
	key := traffic.PairKey{Src: 0, Dst: 1}
	shared := m.Configs[0].Assignments[key]
	clone := *shared
	m.Configs[1].Assignments[key] = &clone // same content, different pointer
	vs := Check(m)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Reason, "diverging") {
			found = true
		}
	}
	if !found {
		t.Errorf("group divergence not detected: %v", vs)
	}
}

func TestCheckDetectsBadPlacement(t *testing.T) {
	m := mapped(t, sampleDesign())
	m.CoreNI[0] = m.CoreNI[0] + 99
	if vs := Check(m); len(vs) == 0 {
		t.Error("bad NI assignment not detected")
	}
	m2 := mapped(t, sampleDesign())
	m2.CoreSwitch[2] = -1 // attached NI without switch
	if vs := Check(m2); len(vs) == 0 {
		t.Error("orphan NI not detected")
	}
}

func TestCheckDetectsLatencyViolation(t *testing.T) {
	m := mapped(t, sampleDesign())
	a := m.Configs[0].Assignments[traffic.PairKey{Src: 0, Dst: 1}]
	// Collapse the reservation to a single start: max gap explodes.
	if len(a.Starts) > 1 {
		a.Starts = a.Starts[:1]
		a.SlotCount = 1
	}
	vs := Check(m)
	found := false
	for _, v := range vs {
		if strings.Contains(v.Reason, "latency") || strings.Contains(v.Reason, "granted") {
			found = true
		}
	}
	if !found {
		t.Errorf("latency/size violation not detected: %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{UseCase: 2, Pair: traffic.PairKey{Src: 1, Dst: 3}, Reason: "boom"}
	s := v.String()
	if !strings.Contains(s, "use-case 2") || !strings.Contains(s, "1->3") || !strings.Contains(s, "boom") {
		t.Errorf("String = %q", s)
	}
}
