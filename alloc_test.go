// Allocation regression gate for the incremental evaluation engine: the
// annealer's move path (PlacementInto + TryMove + Undo) must run without
// heap allocations once the session's buffers reach steady state, on every
// D1-D4 design. BenchmarkSessionMove reports the same path with
// -benchmem, using caller-owned placement buffers — unlike
// BenchmarkAnnealMove's legacy driver, which allocates its own copies per
// move and therefore shows a few allocs/op that are the driver's, not the
// session's.
package nocmap_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/experiments"
	"nocmap/internal/usecase"
)

// sessionFixture is one design's ready-to-move session with caller-owned
// placement buffers and a pre-drawn candidate sequence.
type sessionFixture struct {
	sess *core.Session
	seq  []experiments.PerfMove
	cs   []int
	cn   []int
}

func newSessionFixture(tb testing.TB, design string) *sessionFixture {
	tb.Helper()
	d, err := bench.ByName(design)
	if err != nil {
		tb.Fatal(err)
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		tb.Fatal(err)
	}
	p := core.DefaultParams()
	base, err := core.Map(prep, d.NumCores(), p)
	if err != nil {
		tb.Fatal(err)
	}
	m := base.Mapping
	var attached []int
	for c, s := range m.CoreSwitch {
		if s >= 0 {
			attached = append(attached, c)
		}
	}
	seq := experiments.PerfMoveSequence(1, attached, m.CoreNI, 64)
	if len(seq) == 0 {
		tb.Fatalf("%s: no swap candidates", design)
	}
	ev, err := core.NewEvaluator(prep, d.NumCores(), m.Topology, p)
	if err != nil {
		tb.Fatal(err)
	}
	sess, err := ev.SessionFrom(base)
	if err != nil {
		tb.Fatal(err)
	}
	return &sessionFixture{
		sess: sess,
		seq:  seq,
		cs:   make([]int, d.NumCores()),
		cn:   make([]int, d.NumCores()),
	}
}

// move scores candidate i and rolls it back, leaving the session on its
// base placement. The whole body is allocation-free at steady state.
func (f *sessionFixture) move(i int) {
	mv := f.seq[i%len(f.seq)]
	f.sess.PlacementInto(f.cs, f.cn)
	f.cs[mv.X], f.cs[mv.Y] = f.cs[mv.Y], f.cs[mv.X]
	f.cn[mv.X], f.cn[mv.Y] = f.cn[mv.Y], f.cn[mv.X]
	if _, err := f.sess.TryMove(f.cs, f.cn, mv.X, mv.Y); err == nil {
		f.sess.Undo()
	}
}

// warmup runs every candidate once so each per-record slot buffer reaches
// the size its worst probe demands; past this point the freelist recycles
// without growth.
func (f *sessionFixture) warmup() {
	for i := range f.seq {
		f.move(i)
	}
}

var allocDesigns = []string{"D1", "D2", "D3", "D4"}

// TestSessionMoveZeroAlloc is the CI gate: after warmup, the session move
// path must average exactly zero allocations per operation on every
// design. Set NOCMAP_SKIP_ALLOC_GATE=1 to skip locally (debug builds,
// coverage instrumentation and some sanitizers allocate behind the
// scenes).
func TestSessionMoveZeroAlloc(t *testing.T) {
	if os.Getenv("NOCMAP_SKIP_ALLOC_GATE") != "" {
		t.Skip("NOCMAP_SKIP_ALLOC_GATE set")
	}
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates inside the measured path")
	}
	type row struct {
		design string
		allocs float64
	}
	var rows []row
	failed := false
	for _, design := range allocDesigns {
		f := newSessionFixture(t, design)
		f.warmup()
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			f.move(i)
			i++
		})
		rows = append(rows, row{design, allocs})
		if allocs != 0 {
			failed = true
		}
	}
	if failed {
		var b strings.Builder
		fmt.Fprintf(&b, "session move path allocates; per-design allocs/op:\n")
		fmt.Fprintf(&b, "  %-6s %10s\n", "design", "allocs/op")
		for _, r := range rows {
			fmt.Fprintf(&b, "  %-6s %10.2f\n", r.design, r.allocs)
		}
		b.WriteString("  (profile with: go test -run TestSessionMoveZeroAlloc -memprofile mem.out -memprofilerate 1)")
		t.Fatal(b.String())
	}
}

// BenchmarkSessionMove measures the steady-state session move path with
// caller-owned buffers; run with -benchmem to see the 0 allocs/op the gate
// above enforces.
func BenchmarkSessionMove(b *testing.B) {
	for _, design := range allocDesigns {
		b.Run(design, func(b *testing.B) {
			f := newSessionFixture(b, design)
			f.warmup()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.move(i)
			}
		})
	}
}
