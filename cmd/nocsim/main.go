// Command nocsim maps a design and then exercises it on the slot-accurate
// simulator: per-use-case delivered bandwidth and worst-case latency, plus
// the reconfiguration cost matrix for every use-case switch.
//
// Usage:
//
//	nocsim -in design.json [-rotations 64]
package main

import (
	"flag"
	"fmt"
	"os"

	"nocmap/internal/core"
	"nocmap/internal/sim"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

func main() {
	in := flag.String("in", "", "design JSON file (required)")
	rotations := flag.Int("rotations", 64, "slot-table rotations to simulate")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *rotations); err != nil {
		fmt.Fprintln(os.Stderr, "nocsim:", err)
		os.Exit(1)
	}
}

func run(in string, rotations int) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := traffic.ReadJSON(f)
	if err != nil {
		return err
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		return err
	}
	p := core.DefaultParams()
	res, err := core.Map(prep, d.NumCores(), p)
	if err != nil {
		return err
	}
	m := res.Mapping
	cfg := sim.Config{Slots: rotations * p.SlotTableSize, ReconfigCyclesPerEntry: 4}
	fmt.Printf("design %q on %s, simulating %d slots per use-case\n", d.Name, m.Topology, cfg.Slots)

	for uc := range prep.UseCases {
		r, err := sim.Run(m, uc, cfg)
		if err != nil {
			return err
		}
		var worst, bound int
		var demanded, delivered float64
		for _, fs := range r.Flows {
			if fs.MaxLatencySlots > worst {
				worst = fs.MaxLatencySlots
			}
			if fs.AnalyticBoundSlots > bound {
				bound = fs.AnalyticBoundSlots
			}
			delivered += fs.DeliveredMBs
		}
		for _, fl := range prep.UseCases[uc].Flows {
			demanded += fl.BandwidthMBs
		}
		fmt.Printf("  %-16s conflicts=%d delivered=%.0f/%.0f MB/s worst-latency=%d slots (bound %d)\n",
			r.UseCase, r.Conflicts, delivered, demanded, worst, bound)
	}

	fmt.Println("reconfiguration cost (cycles) when switching row -> column:")
	fmt.Printf("%16s", "")
	for _, u := range prep.UseCases {
		fmt.Printf(" %10.10s", u.Name)
	}
	fmt.Println()
	for a := range prep.UseCases {
		fmt.Printf("%16.16s", prep.UseCases[a].Name)
		for b := range prep.UseCases {
			c, err := sim.SwitchCost(m, a, b, cfg)
			if err != nil {
				return err
			}
			fmt.Printf(" %10d", c)
		}
		fmt.Println()
	}
	return nil
}
