// Command nocsim maps a design and then exercises it on the slot-accurate
// simulator: per-use-case delivered bandwidth and worst-case latency, plus
// the reconfiguration cost matrix for every use-case switch. It is a thin
// shell over the public SDK (pkg/noc).
//
// Usage:
//
//	nocsim -in design.json [-topology mesh|torus|@fabric.json] [-rotations 64]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nocmap/pkg/noc"
)

func main() {
	in := flag.String("in", "", "design JSON file (required)")
	topo := flag.String("topology", "",
		"interconnect family: mesh|torus|@fabric.json (default: the design's topology tag, else mesh)")
	rotations := flag.Int("rotations", 64, "slot-table rotations to simulate")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *topo, *rotations); err != nil {
		fmt.Fprintln(os.Stderr, "nocsim:", err)
		os.Exit(1)
	}
}

func run(in, topo string, rotations int) error {
	d, err := noc.LoadDesignFile(in)
	if err != nil {
		return err
	}
	prep, err := noc.Prepare(d)
	if err != nil {
		return err
	}
	res, err := noc.Map(context.Background(), d, noc.WithTopology(topo))
	if err != nil {
		return err
	}
	p, err := res.Params()
	if err != nil {
		return err
	}
	cfg := noc.SimConfig{Slots: rotations * p.SlotTableSize, ReconfigCyclesPerEntry: 4}
	fmt.Printf("design %q on %s, simulating %d slots per use-case\n", d.Name, res.Fabric(), cfg.Slots)

	for uc := range prep.UseCases {
		r, err := res.Simulate(uc, cfg)
		if err != nil {
			return err
		}
		var worst, bound int
		var demanded, delivered float64
		for _, fs := range r.Flows {
			if fs.MaxLatencySlots > worst {
				worst = fs.MaxLatencySlots
			}
			if fs.AnalyticBoundSlots > bound {
				bound = fs.AnalyticBoundSlots
			}
			delivered += fs.DeliveredMBs
		}
		for _, fl := range prep.UseCases[uc].Flows {
			demanded += fl.BandwidthMBs
		}
		fmt.Printf("  %-16s conflicts=%d delivered=%.0f/%.0f MB/s worst-latency=%d slots (bound %d)\n",
			r.UseCase, r.Conflicts, delivered, demanded, worst, bound)
	}

	fmt.Println("reconfiguration cost (cycles) when switching row -> column:")
	fmt.Printf("%16s", "")
	for _, u := range prep.UseCases {
		fmt.Printf(" %10.10s", u.Name)
	}
	fmt.Println()
	for a := range prep.UseCases {
		fmt.Printf("%16.16s", prep.UseCases[a].Name)
		for b := range prep.UseCases {
			c, err := res.SwitchCost(a, b, cfg)
			if err != nil {
				return err
			}
			fmt.Printf(" %10d", c)
		}
		fmt.Println()
	}
	return nil
}
