package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nocmap/pkg/noc"
)

func TestBuildLoggerFormats(t *testing.T) {
	var b strings.Builder
	buildLogger(&b, "json", "info").Info("hello", "k", "v")
	if got := b.String(); !strings.HasPrefix(got, "{") || !strings.Contains(got, `"k":"v"`) {
		t.Errorf("json logger output %q is not JSON", got)
	}

	b.Reset()
	buildLogger(&b, "text", "info").Info("hello", "k", "v")
	if got := b.String(); strings.HasPrefix(got, "{") || !strings.Contains(got, "k=v") {
		t.Errorf("text logger output %q is not logfmt text", got)
	}
}

func TestBuildLoggerLevels(t *testing.T) {
	var b strings.Builder
	log := buildLogger(&b, "text", "warn")
	log.Info("quiet")
	if b.Len() != 0 {
		t.Errorf("info line %q leaked past -log-level warn", b.String())
	}
	log.Warn("loud")
	if !strings.Contains(b.String(), "loud") {
		t.Errorf("warn line missing from output %q", b.String())
	}

	// Unknown level falls back to info rather than failing startup.
	b.Reset()
	buildLogger(&b, "text", "verbose").Info("still here")
	if !strings.Contains(b.String(), "still here") {
		t.Errorf("fallback level dropped info output %q", b.String())
	}
}

func TestWithPprofMountsProfilesAndKeepsService(t *testing.T) {
	server := noc.NewServer(noc.ServerConfig{Workers: 1})
	defer server.Close()
	ts := httptest.NewServer(withPprof(server.Handler()))
	defer ts.Close()

	for path, want := range map[string]int{
		"/debug/pprof/":       http.StatusOK,
		"/debug/pprof/symbol": http.StatusOK,
		"/healthz":            http.StatusOK,
		"/v1/metrics":         http.StatusOK,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}
