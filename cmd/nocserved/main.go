// Command nocserved serves the mapping methodology over HTTP/JSON: a
// long-lived daemon with a bounded worker pool, canonical-digest result
// caching, and single-flight deduplication of identical requests
// (internal/service).
//
// Usage:
//
//	nocserved [-addr :8080] [-workers 8] [-queue 64] [-cache 128]
//	          [-timeout 0]
//
// Endpoints:
//
//	POST /map       map one design (async with {"async":true})
//	POST /batch     map many designs in one call
//	GET  /jobs/{id} poll an async job
//	GET  /healthz   liveness
//	GET  /stats     cache and pool gauges
//
// The request body of /map embeds a design in the standard interchange
// format under "design"; see docs/cli.md for a full curl session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nocmap/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "engine-run workers (0 = one per CPU)")
	queue := flag.Int("queue", 64, "bounded job-queue depth (backpressure beyond this)")
	cacheEntries := flag.Int("cache", 128, "result-cache entries (LRU)")
	timeout := flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
	flag.Parse()

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *timeout,
	})
	srv := &http.Server{Addr: *addr, Handler: service.NewHandler(svc)}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "nocserved: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best-effort drain before Close
	}()

	fmt.Printf("nocserved: listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "nocserved:", err)
		os.Exit(1)
	}
	<-done
	svc.Close()
}
