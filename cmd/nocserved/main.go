// Command nocserved serves the mapping methodology over HTTP/JSON: a
// long-lived daemon with a bounded worker pool, canonical-digest result
// caching, and single-flight deduplication of identical requests, embedded
// from the public SDK (noc.NewServer).
//
// Usage:
//
//	nocserved [-addr :8080] [-workers 8] [-queue 64] [-cache 128]
//	          [-timeout 0]
//
// Endpoints (versioned surface, see docs/cli.md for schemas):
//
//	POST /v1/map       map one design (async with {"async":true})
//	POST /v1/batch     map many designs in one call
//	GET  /v1/jobs/{id} poll an async job
//	GET  /v1/stats     cache and pool gauges
//	GET  /v1/version   build identity
//	GET  /healthz      liveness + version
//
// The pre-/v1 routes remain mounted as deprecated aliases. The request body
// of /v1/map embeds a design in the standard interchange format under
// "design"; see docs/cli.md for a full curl session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nocmap/pkg/noc"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "engine-run workers (0 = one per CPU)")
	queue := flag.Int("queue", 64, "bounded job-queue depth (backpressure beyond this)")
	cacheEntries := flag.Int("cache", 128, "result-cache entries (LRU)")
	timeout := flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
	flag.Parse()

	server := noc.NewServer(noc.ServerConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *timeout,
	})
	srv := &http.Server{Addr: *addr, Handler: server.Handler()}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "nocserved: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best-effort drain before Close
	}()

	fmt.Printf("nocserved %s: listening on %s (API /v1)\n", noc.Version(), *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "nocserved:", err)
		os.Exit(1)
	}
	<-done
	server.Close()
}
