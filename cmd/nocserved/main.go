// Command nocserved serves the mapping methodology over HTTP/JSON: a
// long-lived daemon with a bounded worker pool, canonical-digest result
// caching, and single-flight deduplication of identical requests, embedded
// from the public SDK (noc.NewServer).
//
// Usage:
//
//	nocserved [-addr :8080] [-workers 8] [-queue 64] [-cache 128]
//	          [-store memory|disk|sharded] [-store-dir DIR]
//	          [-peers URL,URL,...] [-self URL]
//	          [-timeout 0] [-log-format text|json] [-log-level info]
//	          [-pprof]
//
// The result store defaults to an in-memory LRU. -store disk (with
// -store-dir) makes cached results durable across restarts; -store sharded
// (with -peers and -self, optionally -store-dir for a durable local tier)
// spreads digest ownership over a replica fleet with consistent hashing.
// The store flags also read the NOC_STORE, NOC_STORE_DIR, NOC_PEERS and
// NOC_SELF environment variables; explicit flags win over the environment,
// which wins over the defaults.
//
// Endpoints (versioned surface, see docs/cli.md for schemas):
//
//	POST /v1/map       map one design (async with {"async":true},
//	                   serve-then-improve with {"mode":"stream"})
//	POST /v1/batch     map many designs in one call
//	GET  /v1/jobs/{id} poll an async job
//	GET  /v1/jobs/{id}/events  anytime-results stream (SSE; ?mode=poll)
//	GET  /v1/designs/{digest}  cached result for a request digest (404 if absent)
//	GET  /v1/stats     cache, store and pool gauges
//	GET  /v1/metrics   Prometheus text exposition
//	GET  /v1/version   build identity
//	GET  /healthz      liveness + version + uptime
//
// With -pprof the net/http/pprof profiling handlers are mounted under
// /debug/pprof/ on the same listener; leave it off in untrusted networks.
//
// The pre-/v1 routes remain mounted as deprecated aliases. The request body
// of /v1/map embeds a design in the standard interchange format under
// "design"; see docs/cli.md for a full curl session.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nocmap/pkg/noc"
)

// buildLogger constructs the daemon's structured logger from the -log-format
// and -log-level flags. Unknown values fall back to text/info rather than
// failing startup — a misspelled level should not take the service down.
func buildLogger(w io.Writer, format, level string) *slog.Logger {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		lvl = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lvl}
	if format == "json" {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// envOr reads an environment variable, falling back to def when unset. It
// supplies flag defaults, so explicit flags override the environment which
// overrides the built-in default — the documented precedence.
func envOr(key, def string) string {
	if v, ok := os.LookupEnv(key); ok {
		return v
	}
	return def
}

// splitPeers parses a comma-separated replica roster, dropping empty
// elements so trailing commas are harmless.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// withPprof mounts the net/http/pprof handlers under /debug/pprof/ alongside
// the service surface. Registration is explicit (not the package's implicit
// http.DefaultServeMux side effect) so profiling is opt-in per listener.
func withPprof(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "engine-run workers (0 = one per CPU)")
	queue := flag.Int("queue", 64, "bounded job-queue depth (backpressure beyond this)")
	cacheEntries := flag.Int("cache", 128, "result-cache entries (LRU)")
	storeBackend := flag.String("store", envOr("NOC_STORE", "memory"),
		"result-store backend: memory, disk or sharded (env NOC_STORE)")
	storeDir := flag.String("store-dir", envOr("NOC_STORE_DIR", ""),
		"disk-store root directory (env NOC_STORE_DIR)")
	peers := flag.String("peers", envOr("NOC_PEERS", ""),
		"comma-separated replica roster for -store sharded, including this replica (env NOC_PEERS)")
	self := flag.String("self", envOr("NOC_SELF", ""),
		"this replica's base URL as it appears in -peers (env NOC_SELF)")
	timeout := flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	logger := buildLogger(os.Stderr, *logFormat, *logLevel)
	resultStore, err := noc.OpenStore(noc.StoreConfig{
		Backend:      *storeBackend,
		Dir:          *storeDir,
		CacheEntries: *cacheEntries,
		Peers:        splitPeers(*peers),
		Self:         *self,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocserved:", err)
		os.Exit(2)
	}
	logger.Info("result store ready", "backend", resultStore.Backend(), "dir", *storeDir)
	server := noc.NewServer(noc.ServerConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *timeout,
		Store:          resultStore,
		Logger:         logger,
	})
	handler := server.Handler()
	if *pprofOn {
		handler = withPprof(handler)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best-effort drain before Close
	}()

	logger.Info("listening", "addr", *addr, "version", fmt.Sprint(noc.Version()), "pprof", *pprofOn)
	fmt.Printf("nocserved %s: listening on %s (API /v1)\n", noc.Version(), *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "nocserved:", err)
		os.Exit(1)
	}
	<-done
	server.Close()
}
