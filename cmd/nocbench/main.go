// Command nocbench regenerates the tables and figures of the paper's
// evaluation (Section 6). Each figure prints as an aligned text table whose
// rows correspond to the points/bars of the original plot.
//
// It is also the benchmark-regression harness: -out runs a named workload
// and writes a machine-readable BENCH_*.json record, and -compare diffs a
// fresh run of the same workload against a committed record, failing (exit
// 1) on hot-path regressions beyond -threshold or on any engine-result
// drift. The CI bench-regression job runs `nocbench -compare BENCH_pr10.json`.
//
// Usage:
//
//	nocbench                             # all figures
//	nocbench -fig 6a                     # one of: 6a 6b 6c 7a 7b 7c 62 headline engines
//	nocbench -workload quick -out b.json # measure and record
//	nocbench -compare BENCH_pr10.json    # regression gate against a record
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"
	"time"

	"nocmap/internal/bench/harness"
	"nocmap/internal/experiments"
	"nocmap/pkg/noc"
)

var (
	seed      = flag.Int64("seed", 1, "base PRNG seed for the engines table")
	seeds     = flag.Int("seeds", 4, "multi-start annealers in the portfolio engine")
	budget    = flag.Duration("budget", 0, "per-search wall-clock budget for the engines table (0 = unbounded)")
	moves     = flag.Int("moves", 200, "candidate moves per design for the perf figure")
	workload  = flag.String("workload", "quick", "harness workload for -out/-compare: "+strings.Join(harness.WorkloadNames(), "|"))
	outFile   = flag.String("out", "", "run the -workload harness and write its record to this JSON file")
	compareTo = flag.String("compare", "", "run the -workload harness and diff it against this committed BENCH_*.json record")
	threshold = flag.Float64("threshold", 0.25, "relative hot-path regression tolerated by -compare (0.25 = 25%)")
)

// figures lists the valid -fig values in presentation order.
var figures = []string{"6a", "6b", "6c", "7a", "7b", "7c", "62", "headline", "engines", "topology", "perf"}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: "+strings.Join(figures, "|")+"|all")
	flag.Parse()

	if *outFile != "" || *compareTo != "" {
		if err := runHarness(*workload, *outFile, *compareTo, *threshold); err != nil {
			fmt.Fprintf(os.Stderr, "nocbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fig != "all" && !slices.Contains(figures, *fig) {
		fmt.Fprintf(os.Stderr, "nocbench: unknown -fig %q; valid figures: %s, all\n",
			*fig, strings.Join(figures, ", "))
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		if *fig != "all" && *fig != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "nocbench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("6a", fig6a)
	run("6b", func() error { return fig6bc("Sp") })
	run("6c", func() error { return fig6bc("Bot") })
	run("7a", fig7a)
	run("7b", fig7b)
	run("7c", fig7c)
	run("62", sec62)
	run("headline", headline)
	run("engines", engines)
	run("topology", topologyFigure)
	run("perf", perfFigure)
}

// runHarness runs the named measurement workload, optionally records it, and
// optionally gates it against a committed baseline record.
func runHarness(workload, outFile, compareTo string, threshold float64) error {
	w, err := harness.WorkloadByName(workload)
	if err != nil {
		return err
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "harness: "+format+"\n", args...)
	}
	fresh, err := harness.Run(context.Background(), w, logf)
	if err != nil {
		return err
	}
	if outFile != "" {
		if err := fresh.WriteFile(outFile); err != nil {
			return err
		}
		fmt.Printf("wrote %s (workload %s)\n", outFile, w.Name)
	}
	if compareTo == "" {
		return nil
	}
	baseline, err := harness.ReadFile(compareTo)
	if err != nil {
		return err
	}
	cmp := harness.Compare(baseline, fresh, threshold)
	fmt.Printf("\nRegression gate: workload %s vs %s (threshold %.0f%%)\n", w.Name, compareTo, threshold*100)
	for _, l := range cmp.Lines {
		fmt.Println("  " + l)
	}
	if !cmp.OK() {
		for _, f := range cmp.Failures {
			fmt.Fprintln(os.Stderr, "FAIL: "+f)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(cmp.Failures), compareTo)
	}
	fmt.Println("gate passed: no regressions")
	return nil
}

func printComparisons(title string, cs []experiments.Comparison) {
	fmt.Printf("\n%s\n", title)
	fmt.Printf("%-8s %12s %12s %12s\n", "point", "ours", "WC method", "normalized")
	for _, c := range cs {
		wc := "infeasible"
		norm := "-"
		if c.WCFeasible {
			wc = fmt.Sprintf("%s (%d)", c.WCDim, c.WCSwitches)
			norm = fmt.Sprintf("%.3f", c.Normalized)
		}
		fmt.Printf("%-8s %12s %12s %12s\n", c.Label,
			fmt.Sprintf("%s (%d)", c.OursDim, c.OursSwitches), wc, norm)
	}
}

func fig6a() error {
	cs, err := experiments.Fig6a()
	if err != nil {
		return err
	}
	printComparisons("Figure 6(a): normalized switch count, SoC designs (500 MHz, 32-bit)", cs)
	return nil
}

func fig6bc(class string) error {
	sweep := append(experiments.DefaultSweep(), 40)
	cs, err := experiments.Fig6SyntheticNamed(class, sweep)
	if err != nil {
		return err
	}
	name := "6(b) Spread"
	if class == "Bot" {
		name = "6(c) Bottleneck"
	}
	printComparisons(fmt.Sprintf("Figure %s: normalized switch count vs use-cases", name), cs)
	return nil
}

func fig7a() error {
	pts, err := experiments.Fig7a(experiments.DefaultParetoFreqs())
	if err != nil {
		return err
	}
	fmt.Printf("\nFigure 7(a): area-frequency trade-off, design D1\n")
	fmt.Printf("%10s %10s %10s %12s\n", "freq MHz", "feasible", "switches", "area mm^2")
	for _, p := range pts {
		if !p.Feasible {
			fmt.Printf("%10.0f %10s %10s %12s\n", p.FreqMHz, "no", "-", "-")
			continue
		}
		fmt.Printf("%10.0f %10s %10d %12.3f\n", p.FreqMHz, "yes", p.Switches, p.AreaMM2)
	}
	return nil
}

func fig7b() error {
	rs, err := experiments.Fig7b()
	if err != nil {
		return err
	}
	fmt.Printf("\nFigure 7(b): DVS/DFS power savings (P ∝ f·V², V² ∝ f)\n")
	fmt.Printf("%-6s %14s %12s\n", "design", "f_design MHz", "savings %")
	var sum float64
	for _, r := range rs {
		fmt.Printf("%-6s %14.0f %12.1f\n", r.Label, r.FDesignMHz, r.Savings*100)
		sum += r.Savings
	}
	fmt.Printf("%-6s %14s %12.1f\n", "avg", "", sum/float64(len(rs))*100)
	return nil
}

func fig7c() error {
	pts, err := experiments.Fig7c(4)
	if err != nil {
		return err
	}
	fmt.Printf("\nFigure 7(c): required frequency vs parallel use-cases (20-core 10-use-case Sp)\n")
	fmt.Printf("%10s %14s\n", "parallel", "freq MHz")
	for _, p := range pts {
		if !p.Feasible {
			fmt.Printf("%10d %14s\n", p.Parallel, "infeasible")
			continue
		}
		fmt.Printf("%10d %14.0f\n", p.Parallel, p.FreqMHz)
	}
	return nil
}

func sec62() error {
	es, err := experiments.Sec62Extremes()
	if err != nil {
		return err
	}
	fmt.Printf("\nSection 6.2 extremes\n")
	fmt.Printf("%-10s %14s %14s\n", "design", "ours", "WC method")
	for _, e := range es {
		wc := "infeasible <=20x20"
		if e.WCFeasible {
			wc = fmt.Sprintf("%s (%d)", e.WCDim, e.WCCount)
		}
		fmt.Printf("%-10s %14s %14s\n", e.Label, fmt.Sprintf("%s (%d)", e.OursDim, e.OursCount), wc)
	}
	return nil
}

func engines() error {
	designs, err := experiments.EngineDesigns()
	if err != nil {
		return err
	}
	opts := experiments.DefaultEngineOptions()
	opts.Seed = *seed
	opts.Seeds = *seeds
	opts.Budget = *budget
	rows, err := experiments.EngineComparison(context.Background(), designs, opts)
	if err != nil {
		return err
	}
	fmt.Printf("\nSearch-engine comparison (%s; seed %d)\n",
		strings.Join(noc.Engines(), " vs "), opts.Seed)
	fmt.Printf("%-22s %-10s %10s %10s %10s %8s %8s %12s\n",
		"design", "engine", "switches", "avg hops", "max util", "bound", "gap", "elapsed")
	for _, r := range rows {
		gap := fmt.Sprintf("%.1f%%", r.Gap*100)
		if r.BoundExact {
			gap = "proven"
		}
		fmt.Printf("%-22s %-10s %10s %10.2f %9.1f%% %8d %8s %12s\n",
			r.Design, r.Engine, fmt.Sprintf("%s (%d)", r.Dim, r.Switches),
			r.AvgHops, r.MaxUtil*100, r.LowerBound, gap, r.Elapsed.Round(time.Millisecond))
	}
	return nil
}

func topologyFigure() error {
	printTopoRows := func(title string, rows []experiments.TopologyRow) {
		fmt.Printf("\n%s\n", title)
		fmt.Printf("%-22s %14s %10s %14s %10s %8s\n",
			"design", "mesh", "hops", "torus", "hops", "ratio")
		for _, r := range rows {
			fmt.Printf("%-22s %14s %10.2f %14s %10.2f %8.3f\n",
				r.Design,
				fmt.Sprintf("%s (%d)", r.MeshDim, r.MeshSwitches), r.MeshHops,
				fmt.Sprintf("%s (%d)", r.TorusDim, r.TorusSwitches), r.TorusHops,
				r.Ratio)
		}
	}
	designs, err := experiments.TopologyDesigns()
	if err != nil {
		return err
	}
	rows, err := experiments.TopologyComparison(designs)
	if err != nil {
		return err
	}
	printTopoRows("Topology comparison: smallest feasible mesh vs torus (1 core/switch)", rows)
	for _, class := range experiments.SyntheticClassNames() {
		rows, err := experiments.TopologySweepNamed(class, experiments.DefaultSweep())
		if err != nil {
			return err
		}
		printTopoRows(fmt.Sprintf("Topology sweep (%s): mesh vs torus over use-cases", class), rows)
	}
	return nil
}

func perfFigure() error {
	if *moves < 1 {
		return fmt.Errorf("-moves %d invalid: need at least 1 candidate move", *moves)
	}
	designs, err := experiments.PerfDesigns()
	if err != nil {
		return err
	}
	rows, err := experiments.PerfComparison(designs, *moves, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("\nEvaluation throughput: full re-configuration vs incremental session (%d moves, seed %d)\n", *moves, *seed)
	fmt.Printf("%-8s %10s %14s %14s %14s %14s %9s\n",
		"design", "moves", "full total", "full/move", "delta total", "delta/move", "speedup")
	for _, r := range rows {
		perFull := r.Full / time.Duration(r.Moves)
		perDelta := r.Delta / time.Duration(r.Moves)
		fmt.Printf("%-8s %10d %14s %14s %14s %14s %8.2fx\n",
			r.Design, r.Moves, r.Full.Round(time.Microsecond), perFull.Round(time.Microsecond),
			r.Delta.Round(time.Microsecond), perDelta.Round(time.Microsecond), r.Speedup)
	}
	return nil
}

func headline() error {
	h, err := experiments.RunHeadline()
	if err != nil {
		return err
	}
	fmt.Printf("\nHeadline (abstract): area reduction %.1f%% (over %d designs with feasible WC), power savings %.1f%%\n",
		h.AreaReductionPct, h.Points, h.PowerSavingsPct)
	return nil
}
