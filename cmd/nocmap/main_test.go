package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// designFile writes a minimal valid design and returns its path.
func designFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "design.json")
	design := `{
  "name": "tiny",
  "num_cores": 4,
  "use_cases": [
    {"name": "a", "flows": [{"src": 0, "dst": 1, "bandwidth_mbs": 50}, {"src": 2, "dst": 3, "bandwidth_mbs": 20}]}
  ]
}`
	if err := os.WriteFile(path, []byte(design), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCapture(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunMissingInputExits2(t *testing.T) {
	code, _, stderr := runCapture(t)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "-in is required") {
		t.Errorf("stderr %q lacks -in diagnosis", stderr)
	}
}

func TestRunUnknownEngineExits2(t *testing.T) {
	code, _, stderr := runCapture(t, "-in", designFile(t), "-engine", "quantum")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	for _, want := range []string{"quantum", "greedy", "anneal", "portfolio"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr %q should mention %q", stderr, want)
		}
	}
}

func TestRunUnknownTopologyExits2(t *testing.T) {
	code, _, stderr := runCapture(t, "-in", designFile(t), "-topology", "hypercube")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	for _, want := range []string{"hypercube", "mesh", "torus", "@fabric.json"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr %q should mention %q", stderr, want)
		}
	}
}

func TestRunMapsMeshAndTorus(t *testing.T) {
	in := designFile(t)
	for _, topo := range []string{"", "mesh", "torus"} {
		args := []string{"-in", in}
		if topo != "" {
			args = append(args, "-topology", topo)
		}
		code, stdout, stderr := runCapture(t, args...)
		if code != 0 {
			t.Fatalf("-topology %q: exit %d, stderr %q", topo, code, stderr)
		}
		if !strings.Contains(stdout, "verification: all invariants hold") {
			t.Errorf("-topology %q: stdout %q lacks verification line", topo, stdout)
		}
	}
}

func TestRunProgressPrefixesElapsedTime(t *testing.T) {
	code, _, stderr := runCapture(t, "-in", designFile(t), "-engine", "anneal", "-seed", "2", "-progress")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	elapsed := regexp.MustCompile(`^progress: \[\+\d+\.\d{3}s\] `)
	lines := 0
	for _, line := range strings.Split(stderr, "\n") {
		if !strings.HasPrefix(line, "progress:") {
			continue
		}
		lines++
		if !elapsed.MatchString(line) {
			t.Errorf("progress line %q lacks elapsed-time prefix", line)
		}
	}
	if lines == 0 {
		t.Fatal("no progress lines on stderr")
	}
	// The annealer's final event carries cumulative move counters.
	if !regexp.MustCompile(`done .*moves=\d+ accepted=\d+`).MatchString(stderr) {
		t.Errorf("stderr %q lacks move counters on the done event", stderr)
	}
}

func TestRunCustomFabricFromFile(t *testing.T) {
	fabric := filepath.Join(t.TempDir(), "ring.json")
	if err := os.WriteFile(fabric, []byte(`{"name":"ring4","switches":4,"links":[[0,1],[1,2],[2,3],[3,0]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCapture(t, "-in", designFile(t), "-topology", "@"+fabric)
	if code != 0 {
		t.Fatalf("custom fabric run: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "custom ring4") {
		t.Errorf("stdout %q should report the custom fabric", stdout)
	}
}

func TestRunBadCustomFabricExits1(t *testing.T) {
	fabric := filepath.Join(t.TempDir(), "broken.json")
	// Disconnected: switch 3 unreachable.
	if err := os.WriteFile(fabric, []byte(`{"switches":4,"links":[[0,1],[1,2]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCapture(t, "-in", designFile(t), "-topology", "@"+fabric)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	if !strings.Contains(stderr, "disconnected") {
		t.Errorf("stderr %q should diagnose the disconnected fabric", stderr)
	}
}

func TestRunServerRejectsCustomFabric(t *testing.T) {
	code, _, stderr := runCapture(t, "-in", designFile(t), "-server", "http://localhost:1", "-topology", "@nope.json")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr, "locally") {
		t.Errorf("stderr %q should direct the user to a local run", stderr)
	}
}
