package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"nocmap/pkg/noc"
)

// runRemote delegates the mapping to a nocserved daemon through noc.Client:
// the design travels in a POST /v1/map request and the returned summary is
// printed in the same shape as a local run, plus the cache verdict. The
// topology choice travels as the request's topology field (the server falls
// back to the design's own tag when it is empty). A non-zero timeout bounds
// the whole call, so a hung server fails the CLI instead of stalling it.
func runRemote(stdout, stderr io.Writer, server string, timeout time.Duration, in, engine, topo string,
	seed int64, seeds int, budget time.Duration, freq float64, slots, maxDim int, improve bool) error {
	d, err := noc.LoadDesignFile(in)
	if err != nil {
		return err
	}
	client := noc.NewClient(server, noc.WithTimeout(timeout))
	resp, err := client.Map(context.Background(), d,
		noc.WithEngine(engine),
		noc.WithTopology(topo),
		noc.WithSeed(seed),
		noc.WithSeeds(seeds),
		noc.WithBudget(budget),
		noc.WithFrequencyMHz(freq),
		noc.WithSlotTableSize(slots),
		noc.WithMaxMeshDim(maxDim),
		noc.WithImprove(improve),
	)
	if err != nil {
		return err
	}

	r := resp.Result
	verdict := "computed"
	if resp.Cached {
		verdict = "cache hit"
	}
	fabric := r.Topology
	if fabric == "" {
		fabric = "mesh"
	}
	fmt.Fprintf(stdout, "design %q: %d cores, %d use-cases (server %s, %s)\n",
		r.Design, len(r.CoreSwitch), len(r.UseCases), server, verdict)
	fmt.Fprintf(stdout, "mapped onto %dx%d %s (%d switches) at %.0f MHz (engine %s)\n",
		r.Rows, r.Cols, fabric, r.Switches, freq, resp.Engine)
	fmt.Fprintf(stdout, "stats: max link utilization %.1f%%, avg mesh hops %.2f, %d slot entries reserved\n",
		r.MaxLinkUtil*100, r.AvgMeshHops, r.SlotsReserved)
	if len(r.Violations) > 0 {
		for _, v := range r.Violations {
			fmt.Fprintln(stderr, "verify:", v)
		}
		return fmt.Errorf("%d verification violations", len(r.Violations))
	}
	fmt.Fprintln(stdout, "verification: all invariants hold")
	fmt.Fprintf(stdout, "area: %.3f mm^2 (switches, 0.13um model); power: %.1f mW at %.0f MHz\n",
		r.AreaMM2, r.PowerMW, freq)
	return nil
}
