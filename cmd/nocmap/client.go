package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"nocmap/internal/service"
)

// runRemote delegates the mapping to a nocserved daemon: the design file is
// embedded verbatim in a POST /map request and the returned summary is
// printed in the same shape as a local run, plus the cache verdict. The
// topology choice travels as the request's topology field (the server falls
// back to the design's own tag when it is empty).
func runRemote(stdout io.Writer, server, in, engine, topo string, seed int64, seeds int, budget time.Duration,
	freq float64, slots, maxDim int, improve bool) error {
	design, err := os.ReadFile(in)
	if err != nil {
		return fmt.Errorf("read design: %w", err)
	}
	mr := service.MapRequest{
		Design:   json.RawMessage(design),
		Engine:   engine,
		Topology: topo,
		Seed:     &seed,
		Seeds:    &seeds,
		FreqMHz:  &freq,
		Slots:    &slots,
		MaxDim:   &maxDim,
		Improve:  improve,
	}
	if budget > 0 {
		mr.Budget = budget.String()
	}
	body, err := json.Marshal(mr)
	if err != nil {
		return err
	}
	url := strings.TrimRight(server, "/") + "/map"
	httpResp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("post %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(httpResp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("server: %s (HTTP %d)", e.Error, httpResp.StatusCode)
		}
		return fmt.Errorf("server: HTTP %d", httpResp.StatusCode)
	}
	var resp service.Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return fmt.Errorf("decode server response: %w", err)
	}

	r := resp.Result
	verdict := "computed"
	if resp.Cached {
		verdict = "cache hit"
	}
	fabric := r.Topology
	if fabric == "" {
		fabric = "mesh"
	}
	fmt.Fprintf(stdout, "design %q: %d cores, %d use-cases (server %s, %s)\n",
		r.Design, len(r.CoreSwitch), len(r.UseCases), server, verdict)
	fmt.Fprintf(stdout, "mapped onto %dx%d %s (%d switches) at %.0f MHz (engine %s)\n",
		r.Rows, r.Cols, fabric, r.Switches, freq, resp.Engine)
	fmt.Fprintf(stdout, "stats: max link utilization %.1f%%, avg mesh hops %.2f, %d slot entries reserved\n",
		r.MaxLinkUtil*100, r.AvgMeshHops, r.SlotsReserved)
	if len(r.Violations) > 0 {
		for _, v := range r.Violations {
			fmt.Fprintln(os.Stderr, "verify:", v)
		}
		return fmt.Errorf("%d verification violations", len(r.Violations))
	}
	fmt.Fprintln(stdout, "verification: all invariants hold")
	fmt.Fprintf(stdout, "area: %.3f mm^2 (switches, 0.13um model); power: %.1f mW at %.0f MHz\n",
		r.AreaMM2, r.PowerMW, freq)
	return nil
}
