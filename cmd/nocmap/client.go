package main

import (
	"context"
	"fmt"
	"io"
	"time"

	"nocmap/pkg/noc"
)

// runRemote delegates the mapping to a nocserved daemon through noc.Client:
// the design travels in a POST /v1/map request and the returned summary is
// printed in the same shape as a local run, plus the cache verdict. The
// topology choice travels as the request's topology field (the server falls
// back to the design's own tag when it is empty). A non-zero timeout bounds
// the whole call, so a hung server fails the CLI instead of stalling it.
func runRemote(stdout, stderr io.Writer, server string, timeout time.Duration, in string,
	freq float64, opts []noc.Option) error {
	d, err := noc.LoadDesignFile(in)
	if err != nil {
		return err
	}
	client := noc.NewClient(server, noc.WithTimeout(timeout))
	resp, err := client.Map(context.Background(), d, opts...)
	if err != nil {
		return err
	}

	verdict := "computed"
	if resp.Cached {
		verdict = "cache hit"
	}
	return printRemoteSummary(stdout, stderr, server, verdict, resp, freq)
}

// printRemoteSummary prints a server-side mapping result in the same shape
// as a local run, tagged with where it came from.
func printRemoteSummary(stdout, stderr io.Writer, server, verdict string, resp *noc.MapResponse, freq float64) error {
	r := resp.Result
	fabric := r.Topology
	if fabric == "" {
		fabric = "mesh"
	}
	fmt.Fprintf(stdout, "design %q: %d cores, %d use-cases (server %s, %s)\n",
		r.Design, len(r.CoreSwitch), len(r.UseCases), server, verdict)
	fmt.Fprintf(stdout, "mapped onto %dx%d %s (%d switches) at %.0f MHz (engine %s)\n",
		r.Rows, r.Cols, fabric, r.Switches, freq, resp.Engine)
	fmt.Fprintf(stdout, "stats: max link utilization %.1f%%, avg mesh hops %.2f, %d slot entries reserved\n",
		r.MaxLinkUtil*100, r.AvgMeshHops, r.SlotsReserved)
	fmt.Fprintln(stdout, boundLine(r.LowerBoundSwitches, r.OptimalityGap, r.BoundSource, r.BoundExact))
	if len(r.Violations) > 0 {
		for _, v := range r.Violations {
			fmt.Fprintln(stderr, "verify:", v)
		}
		return fmt.Errorf("%d verification violations", len(r.Violations))
	}
	fmt.Fprintln(stdout, "verification: all invariants hold")
	fmt.Fprintf(stdout, "area: %.3f mm^2 (switches, 0.13um model); power: %.1f mW at %.0f MHz\n",
		r.AreaMM2, r.PowerMW, freq)
	return nil
}

// runRemoteStream maps the design in serve-then-improve mode: every
// incumbent the daemon streams prints one line to stderr as it lands — the
// greedy answer within milliseconds, then each strictly better result the
// background engine finds — and the final result prints in the usual
// summary shape once the job's budget is spent.
func runRemoteStream(stdout, stderr io.Writer, server string, timeout time.Duration, in string,
	freq float64, opts []noc.Option) error {
	d, err := noc.LoadDesignFile(in)
	if err != nil {
		return err
	}
	client := noc.NewClient(server, noc.WithTimeout(timeout))
	start := time.Now()
	improvements, err := client.MapStream(context.Background(), d, opts...)
	if err != nil {
		return err
	}
	var final *noc.MapResponse
	for imp := range improvements {
		if imp.Err != nil {
			return imp.Err
		}
		line := fmt.Sprintf("stream: [+%.3fs] #%d %s %s cost=%.1f",
			time.Since(start).Seconds(), imp.Seq, imp.Stage, imp.Engine, imp.Cost)
		if imp.Response != nil {
			line += fmt.Sprintf(" switches=%d", imp.Response.Result.Switches)
		}
		if imp.Counts.Moves > 0 {
			line += fmt.Sprintf(" moves=%d accepted=%d", imp.Counts.Moves, imp.Counts.Accepted)
		}
		fmt.Fprintln(stderr, line)
		if imp.Final {
			if imp.Stage == "failed" {
				return fmt.Errorf("job %s failed: %s", imp.Job, imp.Error)
			}
			final = imp.Response
		}
	}
	if final == nil {
		return fmt.Errorf("stream ended without a final result")
	}
	return printRemoteSummary(stdout, stderr, server, "streamed", final, freq)
}
