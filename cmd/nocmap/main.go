// Command nocmap runs the full multi-use-case mapping methodology on a
// design given in the JSON interchange format and reports the resulting NoC:
// topology, placement, per-use-case configurations, verification status,
// area and power estimates. With -vhdl/-config/-placement it writes the
// back-end artifacts.
//
// Usage:
//
//	nocmap -in design.json [-freq 500] [-slots 64] [-vhdl noc.vhd]
//	       [-config prefix] [-placement place.txt] [-improve]
package main

import (
	"flag"
	"fmt"
	"os"

	"nocmap/internal/area"
	"nocmap/internal/core"
	"nocmap/internal/power"
	"nocmap/internal/rtlgen"
	"nocmap/internal/sim"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
	"nocmap/internal/verify"
)

func main() {
	in := flag.String("in", "", "design JSON file (required)")
	freq := flag.Float64("freq", 500, "NoC frequency in MHz")
	slots := flag.Int("slots", 64, "TDMA slot-table size")
	maxDim := flag.Int("maxdim", 20, "maximum mesh dimension")
	improve := flag.Bool("improve", false, "run placement refinement after mapping")
	vhdl := flag.String("vhdl", "", "write structural VHDL to this file")
	config := flag.String("config", "", "write per-use-case slot-table images to <prefix>-<usecase>.cfg")
	placement := flag.String("placement", "", "write core placement table to this file")
	simulate := flag.Bool("sim", false, "validate every configuration with the slot-accurate simulator")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *freq, *slots, *maxDim, *improve, *vhdl, *config, *placement, *simulate); err != nil {
		fmt.Fprintln(os.Stderr, "nocmap:", err)
		os.Exit(1)
	}
}

func run(in string, freq float64, slots, maxDim int, improve bool, vhdl, config, placement string, simulate bool) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	d, err := traffic.ReadJSON(f)
	if err != nil {
		return err
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		return err
	}
	fmt.Printf("design %q: %d cores, %d use-cases (%d compound generated), %d configuration groups\n",
		d.Name, d.NumCores(), len(prep.UseCases), len(prep.UseCases)-prep.NumOriginal, len(prep.Groups))

	p := core.DefaultParams()
	p.FreqMHz = freq
	p.SlotTableSize = slots
	p.MaxMeshDim = maxDim
	p.Improve = improve
	res, err := core.Map(prep, d.NumCores(), p)
	if err != nil {
		return err
	}
	m := res.Mapping
	fmt.Printf("mapped onto %s at %.0f MHz\n", m.Topology, freq)
	fmt.Printf("stats: max link utilization %.1f%%, avg mesh hops %.2f, %d slot entries reserved\n",
		res.Stats.MaxLinkUtil*100, res.Stats.AvgMeshHops, res.Stats.SlotsReserved)

	if vs := verify.Check(m); len(vs) > 0 {
		for _, v := range vs {
			fmt.Fprintln(os.Stderr, "verify:", v)
		}
		return fmt.Errorf("%d verification violations", len(vs))
	}
	fmt.Println("verification: all invariants hold")

	model := area.DefaultModel()
	fmt.Printf("area: %.3f mm^2 (switches, 0.13um model); power: %.1f mW at %.0f MHz\n",
		model.NoCMM2(m), power.Watts(m.SwitchCount(), freq)*1000, freq)

	if simulate {
		problems := sim.VerifyAgainstAnalytic(m, 16*p.SlotTableSize)
		if len(problems) > 0 {
			for _, pr := range problems {
				fmt.Fprintln(os.Stderr, "sim:", pr)
			}
			return fmt.Errorf("%d simulation problems", len(problems))
		}
		fmt.Println("simulation: delivered bandwidth and latency match the guarantees")
	}

	if vhdl != "" {
		if err := writeFile(vhdl, func(w *os.File) error { return rtlgen.WriteVHDL(w, m) }); err != nil {
			return err
		}
		fmt.Println("wrote", vhdl)
	}
	if config != "" {
		for uc := range prep.UseCases {
			name := fmt.Sprintf("%s-%s.cfg", config, prep.UseCases[uc].Name)
			ucCopy := uc
			if err := writeFile(name, func(w *os.File) error { return rtlgen.WriteConfig(w, m, ucCopy) }); err != nil {
				return err
			}
			fmt.Println("wrote", name)
		}
	}
	if placement != "" {
		if err := writeFile(placement, func(w *os.File) error { return rtlgen.WritePlacement(w, m) }); err != nil {
			return err
		}
		fmt.Println("wrote", placement)
	}
	return nil
}

func writeFile(name string, fn func(*os.File) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
