// Command nocmap runs the full multi-use-case mapping methodology on a
// design given in the JSON interchange format and reports the resulting NoC:
// topology, placement, per-use-case configurations, verification status,
// area and power estimates. With -vhdl/-config/-placement it writes the
// back-end artifacts.
//
// Usage:
//
//	nocmap -in design.json [-engine greedy|anneal|portfolio] [-seeds 4]
//	       [-budget 30s] [-freq 500] [-slots 64] [-vhdl noc.vhd]
//	       [-config prefix] [-placement place.txt] [-improve]
//
// With -server URL the design is mapped by a running nocserved daemon
// instead of in-process, so repeated invocations share its result cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"slices"
	"strings"

	"nocmap/internal/area"
	"nocmap/internal/core"
	"nocmap/internal/power"
	"nocmap/internal/rtlgen"
	"nocmap/internal/search"
	"nocmap/internal/sim"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
	"nocmap/internal/verify"
)

func main() {
	in := flag.String("in", "", "design JSON file (required)")
	engine := flag.String("engine", "greedy",
		"search engine: "+strings.Join(search.Names(), "|"))
	seed := flag.Int64("seed", 1, "base PRNG seed for the anneal/portfolio engines")
	seeds := flag.Int("seeds", 4, "multi-start annealers in the portfolio engine")
	budget := flag.Duration("budget", 0, "wall-clock search budget (0 = unbounded)")
	freq := flag.Float64("freq", 500, "NoC frequency in MHz")
	slots := flag.Int("slots", 64, "TDMA slot-table size")
	maxDim := flag.Int("maxdim", 20, "maximum mesh dimension")
	improve := flag.Bool("improve", false, "run placement refinement after mapping")
	vhdl := flag.String("vhdl", "", "write structural VHDL to this file")
	config := flag.String("config", "", "write per-use-case slot-table images to <prefix>-<usecase>.cfg")
	placement := flag.String("placement", "", "write core placement table to this file")
	simulate := flag.Bool("sim", false, "validate every configuration with the slot-accurate simulator")
	server := flag.String("server", "", "delegate to a running nocserved at this base URL (e.g. http://localhost:8080)")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "nocmap: -in is required: pass the design JSON file to map")
		flag.Usage()
		os.Exit(2)
	}
	if !slices.Contains(search.Names(), *engine) {
		fmt.Fprintf(os.Stderr, "nocmap: unknown -engine %q; valid engines: %s\n",
			*engine, strings.Join(search.Names(), ", "))
		os.Exit(2)
	}
	if *server != "" {
		if *vhdl != "" || *config != "" || *placement != "" || *simulate {
			fmt.Fprintln(os.Stderr, "nocmap: -vhdl/-config/-placement/-sim need the full mapping and run locally; drop -server to use them")
			os.Exit(2)
		}
		if err := runRemote(*server, *in, *engine, *seed, *seeds, *budget, *freq, *slots, *maxDim, *improve); err != nil {
			fmt.Fprintln(os.Stderr, "nocmap:", err)
			os.Exit(1)
		}
		return
	}
	opts := search.DefaultOptions()
	opts.Seed = *seed
	opts.Seeds = *seeds
	opts.Budget = *budget
	if err := run(*in, *engine, opts, *freq, *slots, *maxDim, *improve, *vhdl, *config, *placement, *simulate); err != nil {
		fmt.Fprintln(os.Stderr, "nocmap:", err)
		os.Exit(1)
	}
}

func run(in, engine string, opts search.Options, freq float64, slots, maxDim int, improve bool, vhdl, config, placement string, simulate bool) error {
	eng, err := search.New(engine)
	if err != nil {
		return err
	}
	f, err := os.Open(in)
	if err != nil {
		return fmt.Errorf("open design: %w", err)
	}
	defer f.Close()
	d, err := traffic.ReadJSON(f)
	if err != nil {
		return fmt.Errorf("parse design %s: %w", in, err)
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		return err
	}
	fmt.Printf("design %q: %d cores, %d use-cases (%d compound generated), %d configuration groups\n",
		d.Name, d.NumCores(), len(prep.UseCases), len(prep.UseCases)-prep.NumOriginal, len(prep.Groups))

	p := core.DefaultParams()
	p.FreqMHz = freq
	p.SlotTableSize = slots
	p.MaxMeshDim = maxDim
	p.Improve = improve
	res, err := eng.Search(context.Background(), prep, d.NumCores(), p, opts)
	if err != nil {
		return err
	}
	m := res.Mapping
	fmt.Printf("mapped onto %s at %.0f MHz (engine %s)\n", m.Topology, freq, eng.Name())
	fmt.Printf("stats: max link utilization %.1f%%, avg mesh hops %.2f, %d slot entries reserved\n",
		res.Stats.MaxLinkUtil*100, res.Stats.AvgMeshHops, res.Stats.SlotsReserved)

	if vs := verify.Check(m); len(vs) > 0 {
		for _, v := range vs {
			fmt.Fprintln(os.Stderr, "verify:", v)
		}
		return fmt.Errorf("%d verification violations", len(vs))
	}
	fmt.Println("verification: all invariants hold")

	model := area.DefaultModel()
	fmt.Printf("area: %.3f mm^2 (switches, 0.13um model); power: %.1f mW at %.0f MHz\n",
		model.NoCMM2(m), power.Watts(m.SwitchCount(), freq)*1000, freq)

	if simulate {
		problems := sim.VerifyAgainstAnalytic(m, 16*p.SlotTableSize)
		if len(problems) > 0 {
			for _, pr := range problems {
				fmt.Fprintln(os.Stderr, "sim:", pr)
			}
			return fmt.Errorf("%d simulation problems", len(problems))
		}
		fmt.Println("simulation: delivered bandwidth and latency match the guarantees")
	}

	if vhdl != "" {
		if err := writeFile(vhdl, func(w *os.File) error { return rtlgen.WriteVHDL(w, m) }); err != nil {
			return err
		}
		fmt.Println("wrote", vhdl)
	}
	if config != "" {
		for uc := range prep.UseCases {
			name := fmt.Sprintf("%s-%s.cfg", config, prep.UseCases[uc].Name)
			ucCopy := uc
			if err := writeFile(name, func(w *os.File) error { return rtlgen.WriteConfig(w, m, ucCopy) }); err != nil {
				return err
			}
			fmt.Println("wrote", name)
		}
	}
	if placement != "" {
		if err := writeFile(placement, func(w *os.File) error { return rtlgen.WritePlacement(w, m) }); err != nil {
			return err
		}
		fmt.Println("wrote", placement)
	}
	return nil
}

func writeFile(name string, fn func(*os.File) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
