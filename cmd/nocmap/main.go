// Command nocmap runs the full multi-use-case mapping methodology on a
// design given in the JSON interchange format and reports the resulting NoC:
// topology, placement, per-use-case configurations, verification status,
// area and power estimates. With -vhdl/-config/-placement it writes the
// back-end artifacts.
//
// Usage:
//
//	nocmap -in design.json [-engine greedy|anneal|portfolio] [-seeds 4]
//	       [-topology mesh|torus|@fabric.json] [-budget 30s] [-freq 500]
//	       [-slots 64] [-vhdl noc.vhd] [-config prefix]
//	       [-placement place.txt] [-improve]
//
// With -server URL the design is mapped by a running nocserved daemon
// instead of in-process, so repeated invocations share its result cache.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"

	"nocmap/internal/area"
	"nocmap/internal/core"
	"nocmap/internal/power"
	"nocmap/internal/rtlgen"
	"nocmap/internal/search"
	"nocmap/internal/sim"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
	"nocmap/internal/verify"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// topologyChoices is the -topology help/diagnostic listing.
const topologyChoices = "mesh, torus, @fabric.json"

// run is the testable entry point: it parses args, executes, and returns the
// process exit code (0 ok, 1 runtime failure, 2 usage error), writing all
// output to the given streams.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nocmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "design JSON file (required)")
	engine := fs.String("engine", "greedy",
		"search engine: "+strings.Join(search.Names(), "|"))
	topoFlag := fs.String("topology", "",
		"interconnect family: mesh|torus|@fabric.json (default: the design's topology tag, else mesh)")
	seed := fs.Int64("seed", 1, "base PRNG seed for the anneal/portfolio engines")
	seeds := fs.Int("seeds", 4, "multi-start annealers in the portfolio engine")
	budget := fs.Duration("budget", 0, "wall-clock search budget (0 = unbounded)")
	freq := fs.Float64("freq", 500, "NoC frequency in MHz")
	slots := fs.Int("slots", 64, "TDMA slot-table size")
	maxDim := fs.Int("maxdim", 20, "maximum mesh dimension")
	improve := fs.Bool("improve", false, "run placement refinement after mapping")
	vhdl := fs.String("vhdl", "", "write structural VHDL to this file")
	config := fs.String("config", "", "write per-use-case slot-table images to <prefix>-<usecase>.cfg")
	placement := fs.String("placement", "", "write core placement table to this file")
	simulate := fs.Bool("sim", false, "validate every configuration with the slot-accurate simulator")
	server := fs.String("server", "", "delegate to a running nocserved at this base URL (e.g. http://localhost:8080)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *in == "" {
		fmt.Fprintln(stderr, "nocmap: -in is required: pass the design JSON file to map")
		fs.Usage()
		return 2
	}
	if !slices.Contains(search.Names(), *engine) {
		fmt.Fprintf(stderr, "nocmap: unknown -engine %q; valid engines: %s\n",
			*engine, strings.Join(search.Names(), ", "))
		return 2
	}
	if v := *topoFlag; v != "" && !strings.HasPrefix(v, "@") {
		if _, err := topology.ParseKind(v); err != nil {
			fmt.Fprintf(stderr, "nocmap: unknown -topology %q; valid choices: %s\n", v, topologyChoices)
			return 2
		}
	}
	if *server != "" {
		if *vhdl != "" || *config != "" || *placement != "" || *simulate {
			fmt.Fprintln(stderr, "nocmap: -vhdl/-config/-placement/-sim need the full mapping and run locally; drop -server to use them")
			return 2
		}
		if strings.HasPrefix(*topoFlag, "@") {
			fmt.Fprintln(stderr, "nocmap: custom fabrics (@file.json) carry their link lists and run locally; drop -server to use them")
			return 2
		}
		if err := runRemote(stdout, *server, *in, *engine, *topoFlag, *seed, *seeds, *budget, *freq, *slots, *maxDim, *improve); err != nil {
			fmt.Fprintln(stderr, "nocmap:", err)
			return 1
		}
		return 0
	}
	opts := search.DefaultOptions()
	opts.Seed = *seed
	opts.Seeds = *seeds
	opts.Budget = *budget
	if err := runLocal(stdout, stderr, *in, *engine, *topoFlag, opts, *freq, *slots, *maxDim, *improve, *vhdl, *config, *placement, *simulate); err != nil {
		fmt.Fprintln(stderr, "nocmap:", err)
		return 1
	}
	return 0
}

// resolveTopology turns the -topology argument (or, when empty, the design's
// own topology tag) into a buildable spec.
func resolveTopology(topoFlag string, d *traffic.Design) (topology.Spec, error) {
	arg := topoFlag
	if arg == "" {
		tag := d.Topology
		if strings.HasPrefix(tag, "custom:") {
			return topology.Spec{}, fmt.Errorf(
				"design %q targets a custom fabric (%s); pass its description with -topology @fabric.json", d.Name, tag)
		}
		arg = tag
	}
	return topology.ParseSpec(arg)
}

func runLocal(stdout, stderr io.Writer, in, engine, topoFlag string, opts search.Options, freq float64, slots, maxDim int, improve bool, vhdl, config, placement string, simulate bool) error {
	eng, err := search.New(engine)
	if err != nil {
		return err
	}
	f, err := os.Open(in)
	if err != nil {
		return fmt.Errorf("open design: %w", err)
	}
	defer f.Close()
	d, err := traffic.ReadJSON(f)
	if err != nil {
		return fmt.Errorf("parse design %s: %w", in, err)
	}
	spec, err := resolveTopology(topoFlag, d)
	if err != nil {
		return err
	}
	d.Topology = spec.CanonicalID()
	prep, err := usecase.Prepare(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "design %q: %d cores, %d use-cases (%d compound generated), %d configuration groups\n",
		d.Name, d.NumCores(), len(prep.UseCases), len(prep.UseCases)-prep.NumOriginal, len(prep.Groups))

	p := core.DefaultParams()
	p.FreqMHz = freq
	p.SlotTableSize = slots
	p.MaxMeshDim = maxDim
	p.Improve = improve
	p.Topology = spec
	res, err := eng.Search(context.Background(), prep, d.NumCores(), p, opts)
	if err != nil {
		return err
	}
	m := res.Mapping
	fmt.Fprintf(stdout, "mapped onto %s at %.0f MHz (engine %s)\n", m.Topology, freq, eng.Name())
	fmt.Fprintf(stdout, "stats: max link utilization %.1f%%, avg mesh hops %.2f, %d slot entries reserved\n",
		res.Stats.MaxLinkUtil*100, res.Stats.AvgMeshHops, res.Stats.SlotsReserved)

	if vs := verify.Check(m); len(vs) > 0 {
		for _, v := range vs {
			fmt.Fprintln(stderr, "verify:", v)
		}
		return fmt.Errorf("%d verification violations", len(vs))
	}
	fmt.Fprintln(stdout, "verification: all invariants hold")

	model := area.DefaultModel()
	fmt.Fprintf(stdout, "area: %.3f mm^2 (switches, 0.13um model); power: %.1f mW at %.0f MHz\n",
		model.NoCMM2(m), power.Watts(m.SwitchCount(), freq)*1000, freq)

	if simulate {
		problems := sim.VerifyAgainstAnalytic(m, 16*p.SlotTableSize)
		if len(problems) > 0 {
			for _, pr := range problems {
				fmt.Fprintln(stderr, "sim:", pr)
			}
			return fmt.Errorf("%d simulation problems", len(problems))
		}
		fmt.Fprintln(stdout, "simulation: delivered bandwidth and latency match the guarantees")
	}

	if vhdl != "" {
		if err := writeFile(vhdl, func(w *os.File) error { return rtlgen.WriteVHDL(w, m) }); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", vhdl)
	}
	if config != "" {
		for uc := range prep.UseCases {
			name := fmt.Sprintf("%s-%s.cfg", config, prep.UseCases[uc].Name)
			ucCopy := uc
			if err := writeFile(name, func(w *os.File) error { return rtlgen.WriteConfig(w, m, ucCopy) }); err != nil {
				return err
			}
			fmt.Fprintln(stdout, "wrote", name)
		}
	}
	if placement != "" {
		if err := writeFile(placement, func(w *os.File) error { return rtlgen.WritePlacement(w, m) }); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", placement)
	}
	return nil
}

func writeFile(name string, fn func(*os.File) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
