// Command nocmap runs the full multi-use-case mapping methodology on a
// design given in the JSON interchange format and reports the resulting NoC:
// topology, placement, per-use-case configurations, verification status,
// area and power estimates. With -vhdl/-config/-placement it writes the
// back-end artifacts. It is a thin shell over the public SDK (pkg/noc).
//
// Usage:
//
//	nocmap -in design.json [-engine <name>] [-seeds 4]
//	       [-topology mesh|torus|@fabric.json] [-budget 30s] [-freq 500]
//	       [-slots 64] [-speculate 4] [-population 16] [-generations 24]
//	       [-nodes 500000] [-vhdl noc.vhd] [-config prefix]
//	       [-placement place.txt] [-improve] [-progress]
//
// The engine roster comes from the search registry (noc.Engines()): the
// greedy constructor, the annealing engines (anneal, portfolio), the
// population engines (ga, pso, abc) and the exact branch-and-bound
// lower-bound engine (exact). Every run reports a lower bound on the
// feasible switch count and the resulting optimality gap; the exact engine
// turns that bound into a proof.
//
// With -server URL the design is mapped by a running nocserved daemon
// instead of in-process, so repeated invocations share its result cache;
// -timeout bounds how long an unresponsive daemon may stall the call.
// Adding -stream switches to serve-then-improve mode: the daemon's instant
// greedy result and every strictly better incumbent print to stderr as they
// land, and the final result prints as usual when the budget is spent.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"time"

	"nocmap/pkg/noc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// topologyChoices is the -topology help/diagnostic listing.
const topologyChoices = "mesh, torus, @fabric.json"

// run is the testable entry point: it parses args, executes, and returns the
// process exit code (0 ok, 1 runtime failure, 2 usage error), writing all
// output to the given streams.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nocmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "design JSON file (required)")
	engine := fs.String("engine", "greedy",
		"search engine: "+strings.Join(noc.Engines(), "|"))
	topoFlag := fs.String("topology", "",
		"interconnect family: mesh|torus|@fabric.json (default: the design's topology tag, else mesh)")
	seed := fs.Int64("seed", 1, "base PRNG seed for the anneal/portfolio engines")
	seeds := fs.Int("seeds", 4, "multi-start annealers in the portfolio engine")
	budget := fs.Duration("budget", 0, "wall-clock search budget (0 = unbounded)")
	freq := fs.Float64("freq", 500, "NoC frequency in MHz")
	slots := fs.Int("slots", 64, "TDMA slot-table size")
	maxDim := fs.Int("maxdim", 20, "maximum mesh dimension")
	improve := fs.Bool("improve", false, "run placement refinement after mapping")
	speculate := fs.Int("speculate", 0,
		"speculative move-evaluation width for the anneal/portfolio engines: "+
			"score this many candidate moves concurrently per annealing step (0/1 = serial)")
	population := fs.Int("population", 0, "population size for the ga/pso/abc engines (0 = engine default 16)")
	generations := fs.Int("generations", 0, "generations per fabric size for the ga/pso/abc engines (0 = engine default 24)")
	nodes := fs.Int("nodes", 0, "deterministic node budget for the exact engine (0 = default 500000)")
	progress := fs.Bool("progress", false, "stream search progress events to stderr")
	vhdl := fs.String("vhdl", "", "write structural VHDL to this file")
	config := fs.String("config", "", "write per-use-case slot-table images to <prefix>-<usecase>.cfg")
	placement := fs.String("placement", "", "write core placement table to this file")
	simulate := fs.Bool("sim", false, "validate every configuration with the slot-accurate simulator")
	server := fs.String("server", "", "delegate to a running nocserved at this base URL (e.g. http://localhost:8080)")
	stream := fs.Bool("stream", false,
		"serve-then-improve: print the daemon's instant greedy result, then stream each strictly better incumbent as the background engine finds it (requires -server)")
	timeout := fs.Duration("timeout", 0, "give up on an unresponsive -server after this long (0 = wait forever)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *in == "" {
		fmt.Fprintln(stderr, "nocmap: -in is required: pass the design JSON file to map")
		fs.Usage()
		return 2
	}
	if !slices.Contains(noc.Engines(), *engine) {
		fmt.Fprintf(stderr, "nocmap: unknown -engine %q; valid engines: %s\n",
			*engine, strings.Join(noc.Engines(), ", "))
		return 2
	}
	if v := *topoFlag; v != "" && !strings.HasPrefix(v, "@") {
		if !slices.Contains(noc.TopologyKinds(), v) {
			fmt.Fprintf(stderr, "nocmap: unknown -topology %q; valid choices: %s\n", v, topologyChoices)
			return 2
		}
	}
	// The option set shared by local and remote runs; the flags the wire form
	// cannot carry (-speculate, -progress) stay local-only below.
	common := []noc.Option{
		noc.WithEngine(*engine),
		noc.WithTopology(*topoFlag),
		noc.WithSeed(*seed),
		noc.WithSeeds(*seeds),
		noc.WithBudget(*budget),
		noc.WithFrequencyMHz(*freq),
		noc.WithSlotTableSize(*slots),
		noc.WithMaxMeshDim(*maxDim),
		noc.WithImprove(*improve),
	}
	if *population > 0 {
		common = append(common, noc.WithPopulation(*population))
	}
	if *generations > 0 {
		common = append(common, noc.WithGenerations(*generations))
	}
	if *nodes > 0 {
		common = append(common, noc.WithExactNodes(*nodes))
	}

	if *server != "" {
		if *vhdl != "" || *config != "" || *placement != "" || *simulate {
			fmt.Fprintln(stderr, "nocmap: -vhdl/-config/-placement/-sim need the full mapping and run locally; drop -server to use them")
			return 2
		}
		if strings.HasPrefix(*topoFlag, "@") {
			fmt.Fprintln(stderr, "nocmap: custom fabrics (@file.json) carry their link lists and run locally; drop -server to use them")
			return 2
		}
		if *progress {
			fmt.Fprintln(stderr, "nocmap: -progress streams from in-process engines and runs locally; drop -server to use it")
			return 2
		}
		if *speculate > 1 {
			fmt.Fprintln(stderr, "nocmap: -speculate tunes in-process engines and runs locally; drop -server to use it")
			return 2
		}
		remote := runRemote
		if *stream {
			remote = runRemoteStream
		}
		if err := remote(stdout, stderr, *server, *timeout, *in, *freq, common); err != nil {
			fmt.Fprintln(stderr, "nocmap:", err)
			return 1
		}
		return 0
	}
	if *stream {
		fmt.Fprintln(stderr, "nocmap: -stream consumes a daemon's event stream; pass -server URL to use it")
		return 2
	}
	if err := runLocal(stdout, stderr, *in, *freq, *slots, *speculate, *progress, *vhdl, *config, *placement, *simulate, common); err != nil {
		fmt.Fprintln(stderr, "nocmap:", err)
		return 1
	}
	return 0
}

func runLocal(stdout, stderr io.Writer, in string, freq float64, slots, speculate int,
	progress bool, vhdl, config, placement string, simulate bool, common []noc.Option) error {
	d, err := noc.LoadDesignFile(in)
	if err != nil {
		return err
	}
	prep, err := noc.Prepare(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "design %q: %d cores, %d use-cases (%d compound generated), %d configuration groups\n",
		d.Name, d.NumCores(), len(prep.UseCases), len(prep.UseCases)-prep.NumOriginal, len(prep.Groups))

	opts := append([]noc.Option(nil), common...)
	if speculate > 1 {
		opts = append(opts, noc.WithSpeculation(speculate))
	}
	if progress {
		mapStart := time.Now()
		opts = append(opts, noc.WithProgress(func(e noc.Event) {
			line := fmt.Sprintf("progress: [+%.3fs] %s %s %s cost=%.1f",
				time.Since(mapStart).Seconds(), e.Engine, e.Stage, e.Dim, e.Cost)
			if e.Moves > 0 {
				line += fmt.Sprintf(" moves=%d accepted=%d", e.Moves, e.Accepted)
			}
			fmt.Fprintln(stderr, line)
		}))
	}
	res, err := noc.Map(context.Background(), d, opts...)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "mapped onto %s at %.0f MHz (engine %s)\n", res.Fabric(), freq, res.Engine())
	fmt.Fprintf(stdout, "stats: max link utilization %.1f%%, avg mesh hops %.2f, %d slot entries reserved\n",
		res.MaxLinkUtil*100, res.AvgMeshHops, res.SlotsReserved)
	fmt.Fprintln(stdout, boundLine(res.LowerBoundSwitches, res.OptimalityGap, res.BoundSource, res.BoundExact))

	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintln(stderr, "verify:", v)
		}
		return fmt.Errorf("%d verification violations", len(res.Violations))
	}
	fmt.Fprintln(stdout, "verification: all invariants hold")

	fmt.Fprintf(stdout, "area: %.3f mm^2 (switches, 0.13um model); power: %.1f mW at %.0f MHz\n",
		res.AreaMM2, res.PowerMW, freq)

	if simulate {
		problems, err := res.SimVerify(16 * slots)
		if err != nil {
			return err
		}
		if len(problems) > 0 {
			for _, pr := range problems {
				fmt.Fprintln(stderr, "sim:", pr)
			}
			return fmt.Errorf("%d simulation problems", len(problems))
		}
		fmt.Fprintln(stdout, "simulation: delivered bandwidth and latency match the guarantees")
	}

	if vhdl != "" {
		if err := writeFile(vhdl, res.WriteVHDL); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", vhdl)
	}
	if config != "" {
		for uc, u := range res.UseCases {
			name := fmt.Sprintf("%s-%s.cfg", config, u.Name)
			ucCopy := uc
			if err := writeFile(name, func(w io.Writer) error { return res.WriteConfig(w, ucCopy) }); err != nil {
				return err
			}
			fmt.Fprintln(stdout, "wrote", name)
		}
	}
	if placement != "" {
		if err := writeFile(placement, res.WritePlacement); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", placement)
	}
	return nil
}

// boundLine renders the lower-bound/optimality-gap report shared by local
// and remote summaries.
func boundLine(lb int, gap float64, source string, exact bool) string {
	line := fmt.Sprintf("bound: any feasible mapping needs >= %d switches (%s)", lb, source)
	if exact {
		return line + "; this mapping is proven optimal in switch count"
	}
	return line + fmt.Sprintf("; optimality gap %.1f%%", gap*100)
}

func writeFile(name string, fn func(io.Writer) error) error {
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
