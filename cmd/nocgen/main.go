// Command nocgen writes benchmark designs in the JSON interchange format:
// the D1-D4 SoC stand-ins or synthetic Spread/Bottleneck designs from
// Section 6.1 of the paper, generated through the public SDK (pkg/noc).
//
// Usage:
//
//	nocgen -design D1 > d1.json
//	nocgen -class Sp -usecases 10 -seed 7 > sp10.json
package main

import (
	"flag"
	"fmt"
	"os"
	"slices"

	"nocmap/pkg/noc"
)

func main() {
	design := flag.String("design", "", "named design: D1|D2|D3|D4")
	class := flag.String("class", "", "synthetic class: Sp|Bot")
	useCases := flag.Int("usecases", 10, "number of use-cases for synthetic designs")
	seed := flag.Int64("seed", 7, "generator seed")
	flag.Parse()

	var d *noc.Design
	var err error
	switch {
	case *design != "":
		d, err = noc.Benchmark(*design)
	case slices.Contains(noc.SyntheticClasses(), *class):
		d, err = noc.Synthetic(*class, *useCases, *seed)
	default:
		fmt.Fprintln(os.Stderr, "nocgen: need -design D1..D4 or -class Sp|Bot")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "nocgen:", err)
		os.Exit(1)
	}
	if err := d.WriteJSON(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nocgen:", err)
		os.Exit(1)
	}
}
