// End-to-end integration tests: the full methodology (pre-processing →
// unified mapping → analytic verification → slot-accurate simulation) on
// every benchmark family, plus cross-cutting properties on randomized
// designs.
package nocmap_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nocmap/internal/baseline"
	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/sim"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
	"nocmap/internal/verify"
)

// TestEndToEndBenchmarks maps every SoC design and a synthetic of each
// class, then re-verifies all invariants analytically and by simulation.
func TestEndToEndBenchmarks(t *testing.T) {
	designs := make(map[string]*traffic.Design)
	for _, n := range []string{"D1", "D2", "D3", "D4"} {
		d, err := bench.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		designs[n] = d
	}
	sp, err := bench.Synthetic(bench.SpreadSpec(10, 7))
	if err != nil {
		t.Fatal(err)
	}
	designs["Sp-10"] = sp
	bot, err := bench.Synthetic(bench.BottleneckSpec(10, 23))
	if err != nil {
		t.Fatal(err)
	}
	designs["Bot-10"] = bot

	for name, d := range designs {
		d := d
		t.Run(name, func(t *testing.T) {
			prep, err := usecase.Prepare(d)
			if err != nil {
				t.Fatal(err)
			}
			p := core.DefaultParams()
			res, err := core.Map(prep, d.NumCores(), p)
			if err != nil {
				t.Fatalf("Map: %v", err)
			}
			if vs := verify.Check(res.Mapping); len(vs) != 0 {
				t.Fatalf("analytic verification failed: %v", vs[:min(3, len(vs))])
			}
			if problems := sim.VerifyAgainstAnalytic(res.Mapping, 8*p.SlotTableSize); len(problems) != 0 {
				t.Fatalf("simulation contradicts guarantees: %v", problems[:min(3, len(problems))])
			}
			if res.Stats.MaxLinkUtil <= 0 || res.Stats.MaxLinkUtil > 1 {
				t.Errorf("implausible max utilization %v", res.Stats.MaxLinkUtil)
			}
		})
	}
}

// TestCompoundModesNeverShrinkNoC: declaring use-cases parallel adds a
// compound mode whose constraints are strictly stronger, so the resulting
// NoC can only stay equal or grow.
func TestCompoundModesNeverShrinkNoC(t *testing.T) {
	d, err := bench.Synthetic(bench.SpreadSpec(4, 7))
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	prepBase, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Map(prepBase, d.NumCores(), p)
	if err != nil {
		t.Fatal(err)
	}
	d.ParallelSets = [][]int{{0, 1}}
	prepPar, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	par, err := core.Map(prepPar, d.NumCores(), p)
	if err != nil {
		t.Fatal(err)
	}
	if par.Mapping.SwitchCount() < base.Mapping.SwitchCount() {
		t.Errorf("parallel modes shrank the NoC: %d < %d",
			par.Mapping.SwitchCount(), base.Mapping.SwitchCount())
	}
}

// TestSmoothSwitchingCostsNothing: grouped use-cases must switch with zero
// reconfiguration cost; ungrouped ones must not.
func TestSmoothSwitchingCostsNothing(t *testing.T) {
	d, err := bench.Synthetic(bench.SpreadSpec(3, 7))
	if err != nil {
		t.Fatal(err)
	}
	d.SmoothPairs = [][2]int{{0, 1}}
	prep, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Map(prep, d.NumCores(), core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(res.Mapping)
	if c, err := sim.SwitchCost(res.Mapping, 0, 1, cfg); err != nil || c != 0 {
		t.Errorf("smooth switch cost = %d, %v", c, err)
	}
	if c, err := sim.SwitchCost(res.Mapping, 0, 2, cfg); err != nil || c == 0 {
		t.Errorf("cross-group switch cost = %d, %v; want > 0", c, err)
	}
}

// Property: on random feasible designs, the mapping passes full analytic
// verification, and the WC baseline never yields a smaller NoC than the
// proposed method.
func TestRandomDesignsMapAndVerifyProperty(t *testing.T) {
	p := core.DefaultParams()
	p.MaxMeshDim = 8
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numCores := 4 + rng.Intn(8)
		numUC := 1 + rng.Intn(4)
		d := &traffic.Design{Name: "rand", Cores: traffic.MakeCores(numCores)}
		for u := 0; u < numUC; u++ {
			uc := &traffic.UseCase{Name: "u" + string(rune('a'+u))}
			used := map[traffic.PairKey]bool{}
			for i := 0; i < 3+rng.Intn(12); i++ {
				s, dd := rng.Intn(numCores), rng.Intn(numCores)
				key := traffic.PairKey{Src: traffic.CoreID(s), Dst: traffic.CoreID(dd)}
				if s == dd || used[key] {
					continue
				}
				used[key] = true
				uc.Flows = append(uc.Flows, traffic.Flow{
					Src: key.Src, Dst: key.Dst,
					BandwidthMBs: 5 + rng.Float64()*400,
					MaxLatencyNS: float64(rng.Intn(2)) * (1000 + rng.Float64()*2000),
				})
			}
			if len(uc.Flows) == 0 {
				uc.Flows = append(uc.Flows, traffic.Flow{Src: 0, Dst: 1, BandwidthMBs: 10})
			}
			d.UseCases = append(d.UseCases, uc)
		}
		// Occasionally add smooth pairs.
		if numUC >= 2 && rng.Intn(2) == 0 {
			d.SmoothPairs = [][2]int{{0, 1}}
		}
		prep, err := usecase.Prepare(d)
		if err != nil {
			return false
		}
		ours, err := core.Map(prep, numCores, p)
		if err != nil {
			return true // infeasible is a legitimate outcome; nothing to verify
		}
		if len(verify.Check(ours.Mapping)) != 0 {
			return false
		}
		wc, err := baseline.Map(prep, numCores, p)
		if err != nil {
			return true // WC may fail where per-use-case mapping succeeded
		}
		return wc.Mapping.SwitchCount() >= ours.Mapping.SwitchCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a mapping produced at frequency f can always be re-configured at
// any higher frequency on the same placement (monotone feasibility, the
// assumption behind the DVS/DFS search).
func TestFrequencyMonotoneProperty(t *testing.T) {
	d, err := bench.Synthetic(bench.SpreadSpec(5, 7))
	if err != nil {
		t.Fatal(err)
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		t.Fatal(err)
	}
	p := core.DefaultParams()
	res, err := core.Map(prep, d.NumCores(), p)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Mapping
	for _, f := range []float64{600, 800, 1200, 2000} {
		if _, err := core.ConfigureFixed(prep, d.NumCores(), m.Topology, m.CoreSwitch, m.CoreNI, p.WithFrequency(f)); err != nil {
			t.Errorf("re-configuration at %.0f MHz failed: %v", f, err)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
