// Quickstart: map the two-use-case example of the paper's Figure 5 and walk
// through what the methodology produced — the shared placement of cores onto
// the mesh and the per-use-case paths and TDMA slot reservations.
package main

import (
	"fmt"
	"log"

	"nocmap/internal/core"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
	"nocmap/internal/verify"
)

func main() {
	// Four cores C1..C4 with two use-cases (Figure 5(a) and 5(b)).
	design := &traffic.Design{
		Name:  "fig5",
		Cores: traffic.MakeCores(4),
		UseCases: []*traffic.UseCase{
			{Name: "use-case-1", Flows: []traffic.Flow{
				{Src: 0, Dst: 1, BandwidthMBs: 10},
				{Src: 1, Dst: 2, BandwidthMBs: 75},
				{Src: 2, Dst: 3, BandwidthMBs: 100},
			}},
			{Name: "use-case-2", Flows: []traffic.Flow{
				{Src: 2, Dst: 3, BandwidthMBs: 42},
				{Src: 0, Dst: 2, BandwidthMBs: 11},
				{Src: 1, Dst: 3, BandwidthMBs: 52},
			}},
		},
	}

	// Phase 1+2: pre-process (no parallel modes or smooth-switching
	// constraints here, so every use-case gets its own configuration group).
	prep, err := usecase.Prepare(design)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 3: unified mapping and NoC configuration.
	res, err := core.Map(prep, design.NumCores(), core.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	m := res.Mapping
	fmt.Printf("smallest feasible NoC: %s\n\n", m.Topology)

	fmt.Println("shared core placement:")
	for c := range design.Cores {
		fmt.Printf("  C%d -> switch %d, NI %d\n", c+1, m.CoreSwitch[c], m.CoreNI[c])
	}

	for uc, u := range prep.UseCases {
		fmt.Printf("\nconfiguration of %s:\n", u.Name)
		for _, f := range u.Flows {
			a := m.Configs[uc].Assignments[f.Key()]
			fmt.Printf("  C%d->C%d %6.1f MB/s: %d slots, path %v, starts %v\n",
				f.Src+1, f.Dst+1, f.BandwidthMBs, a.SlotCount, a.Path, a.Starts)
		}
	}

	// The key property of the methodology: both use-cases share the core
	// placement, but the flow between C3 and C4 holds separate reservations
	// sized by each use-case's own bandwidth (100 vs 42 MB/s).
	key := traffic.PairKey{Src: 2, Dst: 3}
	a1 := m.Configs[0].Assignments[key]
	a2 := m.Configs[1].Assignments[key]
	fmt.Printf("\nC3->C4 reservations: %d slots in use-case 1, %d in use-case 2 (independent residual state)\n",
		a1.SlotCount, a2.SlotCount)

	if vs := verify.Check(m); len(vs) == 0 {
		fmt.Println("all invariants verified")
	} else {
		log.Fatalf("verification failed: %v", vs)
	}
}
