// Parallel-mode exploration: how many use-cases can run concurrently on a
// fixed NoC, and at what frequency (the trade-off of Figure 7(c)). The NoC
// is designed once for the individual use-cases; compound modes of growing
// width are then configured on the fixed design at increasing frequencies.
package main

import (
	"fmt"
	"log"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/power"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"
)

func main() {
	d, err := bench.Synthetic(bench.SpreadSpec(10, 7))
	if err != nil {
		log.Fatal(err)
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		log.Fatal(err)
	}
	p := core.DefaultParams()
	res, err := core.Map(prep, d.NumCores(), p)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Mapping
	fmt.Printf("base design: %s for %d use-cases at %.0f MHz\n\n", m.Topology, len(d.UseCases), p.FreqMHz)

	grid := power.Grid{LoMHz: 50, HiMHz: 4000, StepMHz: 50}
	fmt.Printf("%10s %14s %16s\n", "parallel", "min freq MHz", "relative power")
	base := 0.0
	for k := 1; k <= 4; k++ {
		comp := traffic.Combine(fmt.Sprintf("parallel-%d", k), d.UseCases[:k])
		solo := &usecase.Prepared{
			UseCases:    []*traffic.UseCase{comp},
			Groups:      [][]int{{0}},
			GroupOf:     []int{0},
			NumOriginal: 1,
		}
		f, err := power.MinFeasibleFrequency(solo, d.NumCores(), m, grid)
		if err != nil {
			fmt.Printf("%10d %14s %16s\n", k, "infeasible", "-")
			continue
		}
		if base == 0 {
			base = f
		}
		fmt.Printf("%10d %14.0f %15.1fx\n", k, f, power.Dynamic(f, base))
	}
	fmt.Println("\nrunning more use-cases in parallel demands a superlinear power budget (P ∝ f²);")
	fmt.Println("the designer picks the parallelism/frequency point the product needs.")
}
