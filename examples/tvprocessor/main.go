// TV-processor walk-through: the spread-traffic D3 design, comparing the
// proposed multi-use-case mapping against the worst-case baseline and
// exploring the area-frequency trade-off of Figure 7(a).
package main

import (
	"fmt"
	"log"

	"nocmap/internal/area"
	"nocmap/internal/baseline"
	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/usecase"
)

func main() {
	d, err := bench.D3()
	if err != nil {
		log.Fatal(err)
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		log.Fatal(err)
	}
	p := core.DefaultParams()

	ours, err := core.Map(prep, d.NumCores(), p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("proposed method: %s\n", ours.Mapping.Topology)

	wc, err := baseline.Map(prep, d.NumCores(), p)
	if err != nil {
		fmt.Printf("worst-case method: infeasible (%v)\n", err)
	} else {
		fmt.Printf("worst-case method: %s — %.1fx more switches\n",
			wc.Mapping.Topology, float64(wc.Mapping.SwitchCount())/float64(ours.Mapping.SwitchCount()))
	}

	// Area-frequency trade-off: sweep the operating frequency and report the
	// smallest feasible NoC and its 0.13um switch area at each point.
	model := area.DefaultModel()
	fmt.Println("\narea-frequency trade-off (proposed method):")
	fmt.Printf("%10s %10s %12s\n", "freq MHz", "switches", "area mm^2")
	for _, f := range []float64{250, 300, 400, 500, 800, 1200, 1600, 2000} {
		res, err := core.Map(prep, d.NumCores(), p.WithFrequency(f))
		if err != nil {
			fmt.Printf("%10.0f %10s %12s\n", f, "-", "infeasible")
			continue
		}
		fmt.Printf("%10.0f %10d %12.3f\n", f, res.Mapping.SwitchCount(), model.NoCMM2(res.Mapping))
	}
}
