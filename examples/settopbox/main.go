// Set-top box walk-through: the D1-style SoC with compound modes and smooth
// switching, as in the paper's introduction — video display keeps running
// while recording starts (smooth transition into the compound mode), and
// DVS/DFS scales the NoC frequency per use-case.
package main

import (
	"fmt"
	"log"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/power"
	"nocmap/internal/sim"
	"nocmap/internal/usecase"
)

func main() {
	d, err := bench.D1()
	if err != nil {
		log.Fatal(err)
	}
	// Declare that the first two use-cases (e.g. HD display and recording)
	// can run in parallel: phase 1 generates the compound mode, and the
	// compound is automatically grouped with its constituents so switching
	// into and out of the parallel mode is smooth.
	d.ParallelSets = [][]int{{0, 1}}

	prep, err := usecase.Prepare(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d use-cases (+%d compound), groups:\n", d.Name, prep.NumOriginal, len(prep.UseCases)-prep.NumOriginal)
	for gi, g := range prep.Groups {
		fmt.Printf("  group %d:", gi)
		for _, uc := range g {
			fmt.Printf(" %s", prep.UseCases[uc].Name)
		}
		fmt.Println()
	}

	p := core.DefaultParams()
	res, err := core.Map(prep, d.NumCores(), p)
	if err != nil {
		log.Fatal(err)
	}
	m := res.Mapping
	fmt.Printf("\nmapped onto %s (max link utilization %.0f%%)\n", m.Topology, res.Stats.MaxLinkUtil*100)

	// Switching costs: smooth transitions are free; cross-group switches
	// re-program the slot tables during the use-case switching time.
	cfg := sim.DefaultConfig(m)
	compound := len(prep.UseCases) - 1
	c0, err := sim.SwitchCost(m, 0, compound, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nswitch display -> display+record (same group): %d cycles\n", c0)
	c1, err := sim.SwitchCost(m, 0, 2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("switch display -> %s (re-configuration): %d cycles\n", prep.UseCases[2].Name, c1)

	// DVS/DFS: find each use-case's minimum frequency on the fixed design.
	freqs, err := power.PerUseCaseFrequencies(m, d.NumCores(), power.Grid{LoMHz: 25, HiMHz: 2000, StepMHz: 25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-use-case minimum NoC frequency (DVS/DFS):")
	for uc, f := range freqs {
		fmt.Printf("  %-24s %5.0f MHz\n", prep.UseCases[uc].Name, f)
	}
	fmt.Printf("power savings vs fixed-frequency design: %.1f%%\n", power.DVSSavings(freqs)*100)
}
