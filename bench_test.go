// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 6), plus the ablation studies called out in DESIGN.md. Each
// benchmark reports the figure's key quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// both regenerates the results and tracks the harness's own cost. Use
// -benchtime=1x for a single regeneration pass.
package nocmap_test

import (
	"context"
	"testing"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/experiments"
	"nocmap/internal/search"
	"nocmap/internal/usecase"
)

// BenchmarkFig6aSoCDesigns regenerates Figure 6(a): normalized switch count
// of the proposed method versus the WC baseline on D1-D4.
func BenchmarkFig6aSoCDesigns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cs, err := experiments.Fig6a()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range cs {
				b.ReportMetric(c.Normalized, "norm_"+metricSafe(c.Label))
			}
		}
	}
}

// BenchmarkFig6bSpread regenerates Figure 6(b): the Spread-benchmark
// use-case sweep.
func BenchmarkFig6bSpread(b *testing.B) {
	benchSweep(b, bench.Spread)
}

// BenchmarkFig6cBottleneck regenerates Figure 6(c): the Bottleneck sweep.
func BenchmarkFig6cBottleneck(b *testing.B) {
	benchSweep(b, bench.Bottleneck)
}

func benchSweep(b *testing.B, class bench.Class) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cs, err := experiments.Fig6Synthetic(class, experiments.DefaultSweep())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range cs {
				b.ReportMetric(c.Normalized, "norm_"+metricSafe(c.Label))
			}
		}
	}
}

// metricSafe makes a label usable as a ReportMetric unit (no whitespace).
func metricSafe(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			out = append(out, '_')
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}

// BenchmarkFig7aAreaFrequency regenerates Figure 7(a): the area-frequency
// Pareto curve of design D1.
func BenchmarkFig7aAreaFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig7a(experiments.DefaultParetoFreqs())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range pts {
				if p.Feasible {
					b.ReportMetric(p.AreaMM2, "mm2_at_"+itoa(int(p.FreqMHz)))
				}
			}
		}
	}
}

// BenchmarkFig7bDVSDFS regenerates Figure 7(b): DVS/DFS power savings.
func BenchmarkFig7bDVSDFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Fig7b()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rs {
				b.ReportMetric(r.Savings*100, "savings_pct_"+r.Label)
			}
		}
	}
}

// BenchmarkFig7cParallel regenerates Figure 7(c): required frequency versus
// the number of parallel use-cases.
func BenchmarkFig7cParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig7c(4)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range pts {
				if p.Feasible {
					b.ReportMetric(p.FreqMHz, "mhz_par"+itoa(p.Parallel))
				}
			}
		}
	}
}

// BenchmarkSec62Extremes regenerates the Section 6.2 scalability extremes
// (D3 and the 40-use-case benchmarks where the WC method is infeasible).
func BenchmarkSec62Extremes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		es, err := experiments.Sec62Extremes()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, e := range es {
				wc := float64(e.WCCount)
				if !e.WCFeasible {
					wc = -1 // infeasible marker
				}
				b.ReportMetric(float64(e.OursCount), "ours_"+metricSafe(e.Label))
				b.ReportMetric(wc, "wc_"+metricSafe(e.Label))
			}
		}
	}
}

// BenchmarkHeadline regenerates the abstract's aggregate claims.
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := experiments.RunHeadline()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(h.AreaReductionPct, "area_reduction_pct")
			b.ReportMetric(h.PowerSavingsPct, "power_savings_pct")
		}
	}
}

// BenchmarkAblationPreference measures ablation A1: Algorithm 2's preference
// for flows with already-mapped endpoints, on the 10-use-case Sp benchmark.
func BenchmarkAblationPreference(b *testing.B) {
	benchAblation(b, func(p *core.Params) { p.DisableMappedPreference = true }, "no_preference")
}

// BenchmarkAblationUnified measures ablation A2: decoupling slot allocation
// from path selection.
func BenchmarkAblationUnified(b *testing.B) {
	benchAblation(b, func(p *core.Params) { p.DisableUnifiedSlots = true }, "non_unified")
}

func benchAblation(b *testing.B, mutate func(*core.Params), label string) {
	b.Helper()
	d, err := bench.Synthetic(bench.SpreadSpec(10, experiments.SpFamilySeed))
	if err != nil {
		b.Fatal(err)
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		base := core.DefaultParams()
		abl := core.DefaultParams()
		mutate(&abl)
		rb, err := core.Map(prep, d.NumCores(), base)
		if err != nil {
			b.Fatal(err)
		}
		ra, err := core.Map(prep, d.NumCores(), abl)
		switchesAbl := -1.0
		if err == nil {
			switchesAbl = float64(ra.Mapping.SwitchCount())
		}
		if i == 0 {
			b.ReportMetric(float64(rb.Mapping.SwitchCount()), "switches_full")
			b.ReportMetric(switchesAbl, "switches_"+label)
		}
	}
}

// BenchmarkAblationSlotTable sweeps the TDMA table size (ablation A3).
func BenchmarkAblationSlotTable(b *testing.B) {
	d, err := bench.Synthetic(bench.SpreadSpec(10, experiments.SpFamilySeed))
	if err != nil {
		b.Fatal(err)
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, T := range []int{16, 32, 64, 128} {
			p := core.DefaultParams()
			p.SlotTableSize = T
			res, err := core.Map(prep, d.NumCores(), p)
			count := -1.0
			if err == nil {
				count = float64(res.Mapping.SwitchCount())
			}
			if i == 0 {
				b.ReportMetric(count, "switches_T"+itoa(T))
			}
		}
	}
}

// BenchmarkEngineGreedyD1, BenchmarkEngineAnnealD1 and
// BenchmarkEnginePortfolioD1 measure the throughput of the internal/search
// engines on design D1: one op is one complete Search, so ns/op is the
// wall-clock cost of designing the NoC with that strategy.
func BenchmarkEngineGreedyD1(b *testing.B)    { benchEngine(b, "greedy") }
func BenchmarkEngineAnnealD1(b *testing.B)    { benchEngine(b, "anneal") }
func BenchmarkEnginePortfolioD1(b *testing.B) { benchEngine(b, "portfolio") }

func benchEngine(b *testing.B, name string) {
	b.Helper()
	d, err := bench.D1()
	if err != nil {
		b.Fatal(err)
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := search.New(name)
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams()
	opts := search.DefaultOptions()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Search(ctx, prep, d.NumCores(), p, opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Mapping.SwitchCount()), "switches")
			b.ReportMetric(res.Stats.MaxLinkUtil*100, "max_util_pct")
		}
	}
}

// BenchmarkAnnealMove measures the cost of scoring one annealing move on
// the D1-D4 designs, via both evaluation paths over the identical seeded
// candidate sequence from the greedy placement:
//
//   - full:  the legacy per-move core.EvaluateFixed call (re-validate,
//     rebuild the flow work list, reallocate slot tables, re-route every
//     flow of every use-case);
//   - delta: one core.Session per design, scoring each candidate with
//     TryMove/Undo (tear down and re-route only the moved flows, with the
//     per-group rebuild fallback).
//
// The delta/full ns-per-op ratio is the anneal move-throughput win recorded
// in BENCH_pr4.json (>= 3x on every design).
func BenchmarkAnnealMove(b *testing.B) {
	for _, name := range []string{"D1", "D2", "D3", "D4"} {
		d, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		prep, err := usecase.Prepare(d)
		if err != nil {
			b.Fatal(err)
		}
		p := core.DefaultParams()
		base, err := core.Map(prep, d.NumCores(), p)
		if err != nil {
			b.Fatal(err)
		}
		m := base.Mapping
		var attached []int
		for c, s := range m.CoreSwitch {
			if s >= 0 {
				attached = append(attached, c)
			}
		}
		// One fixed pool of candidate swaps (the perf figure's generator),
		// reused cyclically by both paths.
		seq := experiments.PerfMoveSequence(1, attached, m.CoreNI, 64)
		if len(seq) == 0 {
			b.Fatalf("%s: no swap candidates", name)
		}
		swap := func(mv experiments.PerfMove) (cs, cn []int) {
			cs = append([]int(nil), m.CoreSwitch...)
			cn = append([]int(nil), m.CoreNI...)
			cs[mv.X], cs[mv.Y] = cs[mv.Y], cs[mv.X]
			cn[mv.X], cn[mv.Y] = cn[mv.Y], cn[mv.X]
			return cs, cn
		}
		b.Run(name+"/full", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cs, cn := swap(seq[i%len(seq)])
				_, _ = core.EvaluateFixed(prep, d.NumCores(), m.Topology, cs, cn, p)
			}
		})
		b.Run(name+"/delta", func(b *testing.B) {
			ev, err := core.NewEvaluator(prep, d.NumCores(), m.Topology, p)
			if err != nil {
				b.Fatal(err)
			}
			sess, err := ev.SessionFrom(base)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cs, cn := swap(seq[i%len(seq)])
				if _, err := sess.TryMove(cs, cn, seq[i%len(seq)].X, seq[i%len(seq)].Y); err == nil {
					sess.Undo()
				}
			}
		})
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
