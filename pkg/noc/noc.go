package noc

import (
	"nocmap/internal/core"
	"nocmap/internal/search"
	"nocmap/internal/service"
	"nocmap/internal/sim"
	"nocmap/internal/topology"
	"nocmap/internal/traffic"
	"nocmap/internal/usecase"

	// Register the population engines (ga, pso, abc) and the exact
	// branch-and-bound engine with the search registry, so every SDK and CLI
	// consumer sees the full engine roster.
	_ "nocmap/internal/search/exact"
	_ "nocmap/internal/search/population"
)

// The SDK's data model is the toolkit's own, surfaced under stable public
// names. Aliases (not wrappers) keep the two identical: a Design built here
// is the design the mapper runs on, with no conversion layer to drift.
type (
	// Design couples an SoC's core list with its use-cases, parallel sets
	// and smooth-switching constraints — the input of the methodology.
	Design = traffic.Design
	// Core is one IP block of the SoC.
	Core = traffic.Core
	// Flow is a directed guaranteed-throughput traffic stream between two
	// cores within one use-case.
	Flow = traffic.Flow
	// UseCase is one application mode: a named set of flows.
	UseCase = traffic.UseCase

	// Prepared is the output of pre-processing (phases 1 and 2): the
	// use-case roster including generated compound modes, and the
	// smooth-switching groups.
	Prepared = usecase.Prepared

	// Params are the NoC architecture parameters (link width, frequency,
	// TDMA table size, NI shape, growth bound, ...). Start from
	// DefaultParams.
	Params = core.Params

	// Weights score candidate mappings: switch count dominant, mean hops
	// and worst slot-table occupancy breaking ties. Lower cost is better.
	Weights = search.CostWeights

	// Event is one streaming progress notification from a running search;
	// see WithProgress.
	Event = search.Event
	// Stage labels an Event: StageMapped, StageImproved or StageDone.
	Stage = search.Stage

	// Stats are the load statistics of a mapping.
	Stats = core.Stats

	// SimConfig configures the slot-accurate simulator.
	SimConfig = sim.Config
	// SimReport is one use-case's simulation outcome: per-flow delivered
	// bandwidth and observed worst-case latency against the analytic bound.
	SimReport = sim.Result
	// SimFlowStats is one flow's row of a SimReport.
	SimFlowStats = sim.FlowStats

	// VersionInfo is the build identity of this binary or of a remote
	// nocserved (GET /v1/version).
	VersionInfo = service.VersionInfo

	// Timings is the per-stage wall-clock breakdown of one mapping run:
	// queueing (service only), pre-processing, search and summarization, in
	// milliseconds. Local results expose it via Result.Timings; service
	// replies carry it on the MapResponse envelope.
	Timings = service.Timings
)

// Progress stages, re-exported for WithProgress consumers.
const (
	// StageMapped announces the constructive base mapping a search starts
	// from.
	StageMapped = search.StageMapped
	// StageImproved announces a new best-so-far; annealing engines emit one
	// event per strict improvement of their incumbent.
	StageImproved = search.StageImproved
	// StageDone announces an engine's final result.
	StageDone = search.StageDone
)

// DefaultParams returns the architecture defaults used throughout the
// paper's evaluation (32-bit links, 500 MHz, 64-slot TDMA tables).
func DefaultParams() Params { return core.DefaultParams() }

// DefaultWeights returns the default mapping objective: one saved switch
// outweighs any achievable hop or utilization improvement.
func DefaultWeights() Weights { return search.DefaultCostWeights() }

// Engines lists the registered search engines, sorted — the heuristics
// ("greedy", "anneal", "portfolio"), the population engines ("ga", "pso",
// "abc"), the exact lower-bound engine ("exact"), plus anything added via
// the search registry.
func Engines() []string { return search.Names() }

// TopologyKinds lists the named interconnect families WithTopology accepts
// ("mesh", "torus"); custom fabrics are passed as "@fabric.json".
func TopologyKinds() []string { return topology.KindNames() }

// Prepare runs the pre-processing phases on a design: compound modes are
// generated for every parallel set, and use-cases requiring smooth
// switching are grouped onto shared NoC configurations.
func Prepare(d *Design) (*Prepared, error) { return usecase.Prepare(d) }

// Version reports the running binary's build identity.
func Version() VersionInfo { return service.BuildVersion() }
