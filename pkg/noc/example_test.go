package noc_test

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"nocmap/pkg/noc"
)

// ExampleMap embeds the complete methodology in a few lines: build a
// design, map it, read the verdict.
func ExampleMap() {
	design, err := noc.NewDesign("fig5").
		Cores(4).
		AddUseCase("use-case-1",
			noc.NewFlow(0, 1, 10), noc.NewFlow(1, 2, 75), noc.NewFlow(2, 3, 100)).
		AddUseCase("use-case-2",
			noc.NewFlow(2, 3, 42), noc.NewFlow(0, 2, 11), noc.NewFlow(1, 3, 52)).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := noc.Map(context.Background(), design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s: %d violations\n", design.Name, res.Fabric(), len(res.Violations))
	// Output:
	// fig5 on 1x1 mesh (1 switches): 0 violations
}

// ExampleDesignBuilder declares parallel modes and smooth switching; the
// pre-processing phase turns them into compound use-cases and shared
// configuration groups.
func ExampleDesignBuilder() {
	design, err := noc.NewDesign("player").
		NamedCores("cpu", "dsp", "display", "storage").
		AddUseCase("decode", noc.NewFlow(0, 1, 120), noc.NewConstrainedFlow(1, 2, 80, 2000)).
		AddUseCase("record", noc.NewFlow(0, 3, 40)).
		Parallel("decode", "record").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	prep, err := noc.Prepare(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d use-cases (%d generated), %d groups\n",
		len(prep.UseCases), len(prep.UseCases)-prep.NumOriginal, len(prep.Groups))
	// Output:
	// 3 use-cases (1 generated), 1 groups
}

// ExampleClient maps a design through a nocserved instance; a second
// identical request is answered from the daemon's result cache.
func ExampleClient() {
	server := noc.NewServer(noc.ServerConfig{})
	defer server.Close()
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	design, err := noc.NewDesign("remote").
		Cores(4).
		AddUseCase("a", noc.NewFlow(0, 1, 50), noc.NewFlow(2, 3, 20)).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	client := noc.NewClient(ts.URL)
	for i := 0; i < 2; i++ {
		resp, err := client.Map(context.Background(), design, noc.WithEngine("greedy"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("switches=%d cached=%v\n", resp.Result.Switches, resp.Cached)
	}
	// Output:
	// switches=1 cached=false
	// switches=1 cached=true
}
