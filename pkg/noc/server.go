package noc

import (
	"net/http"

	"nocmap/internal/service"
)

// ServerConfig sizes an embedded mapping service: worker pool, bounded job
// queue, result store, per-job deadline and finished-job retention. The
// zero value is usable (defaults: one worker per CPU, 64-deep queue,
// 128-entry in-memory cache). Set Store (built with OpenStore) to swap the
// default in-memory result cache for a durable disk store or a
// consistent-hash sharded fleet store.
type ServerConfig = service.Config

// Server is the embeddable mapping service: the concurrent engine-run pool
// with canonical-digest result caching and single-flight deduplication,
// plus its versioned /v1 HTTP facade. cmd/nocserved is a thin shell over
// it; any Go program can mount Handler on its own listener.
type Server struct {
	svc     *service.Service
	handler http.Handler
}

// NewServer starts the worker pool; release it with Close.
func NewServer(cfg ServerConfig) *Server {
	svc := service.New(cfg)
	return &Server{svc: svc, handler: service.NewHandler(svc)}
}

// Handler returns the HTTP facade: /v1/map, /v1/batch, /v1/jobs/{id},
// /v1/designs/{digest}, /v1/stats, /v1/metrics, /v1/version, /healthz,
// plus the deprecated unversioned aliases.
func (s *Server) Handler() http.Handler { return s.handler }

// Stats reads the pool and cache gauges.
func (s *Server) Stats() ServerStats { return s.svc.Stats() }

// Close stops the workers; in-flight runs finish first.
func (s *Server) Close() { s.svc.Close() }
