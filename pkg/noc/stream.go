package noc

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"nocmap/internal/service"
)

// StreamEvent is one serve-then-improve notification from the daemon's
// GET /v1/jobs/{id}/events stream: a monotonically increasing sequence
// number, the stage (mapped | improved | done | failed), the incumbent's
// cost and full result summary, and the emitting engine's cumulative search
// counters. Shared verbatim with the server.
type StreamEvent = service.StreamEvent

// Improvement is one delivery on a MapStream channel: a stream event tagged
// with the job it belongs to, or a terminal stream error. Exactly one of
// the embedded event (Err == nil) and Err is meaningful; after an
// Improvement with Err != nil, or one whose event is Final, the channel
// closes.
type Improvement struct {
	StreamEvent
	// Job is the daemon-side job ID the event belongs to (poll it with
	// Client.Job for the authoritative final status).
	Job string
	// Err reports a broken stream (transport failure, daemon restart). A
	// nil Err means the embedded StreamEvent is valid.
	Err error
}

// MapStream submits the design in serve-then-improve mode and streams the
// daemon's anytime results: the first delivery is the greedy result the
// daemon computed inline (stage "mapped", available within milliseconds),
// each subsequent one a strictly better incumbent found by the requested
// engine in the background, and the last — marked Final — the job's
// terminal event, whose Response matches GET /v1/jobs/{id} for the
// finished job. The channel closes after the final event, after a delivery
// with Err set, or when ctx is cancelled (which also abandons the
// server-side read; the daemon's background run completes regardless and
// still upgrades its cache).
//
// The stream resumes transparently across broken connections using the
// last seen sequence number, so a delivery is never duplicated or skipped.
func (c *Client) MapStream(ctx context.Context, d *Design, opts ...Option) (<-chan Improvement, error) {
	mr, err := BuildMapRequest(d, opts...)
	if err != nil {
		return nil, err
	}
	mr.Mode = "stream"
	var st JobStatus
	if err := c.post(ctx, "/v1/map", mr, http.StatusAccepted, &st); err != nil {
		return nil, err
	}
	ch := make(chan Improvement, 8)
	go c.streamEvents(ctx, st.ID, ch)
	return ch, nil
}

// streamEvents consumes the job's SSE stream into ch, reconnecting with
// ?after=<last seq> on transport hiccups, and closes ch when the stream
// finishes for any reason.
func (c *Client) streamEvents(ctx context.Context, jobID string, ch chan<- Improvement) {
	defer close(ch)
	var after int64
	stalls := 0
	for {
		n, final, err := c.readEventStream(ctx, jobID, after, ch)
		after += n
		switch {
		case final:
			return
		case ctx.Err() != nil:
			return
		case n == 0:
			stalls++
			if stalls >= 2 {
				// Two consecutive attempts without a single new event: the
				// stream is broken, not slow. Surface the error and stop.
				if err == nil {
					err = fmt.Errorf("connection closed before the final event")
				}
				select {
				case ch <- Improvement{Job: jobID, Err: fmt.Errorf("noc: event stream for job %s: %w", jobID, err)}:
				case <-ctx.Done():
				}
				return
			}
		default:
			stalls = 0
		}
	}
}

// readEventStream runs one SSE connection, delivering parsed events to ch.
// It returns how many events it delivered, whether a Final event arrived,
// and the transport error that ended the connection, if any.
func (c *Client) readEventStream(ctx context.Context, jobID string, after int64, ch chan<- Improvement) (n int64, final bool, _ error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+jobID+"/events?after="+strconv.FormatInt(after, 10), nil)
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("X-Request-ID", NewRequestID())
	// The stream lives as long as the job improves: WithTimeout's
	// whole-request deadline must not apply to it, only ctx does.
	hc := *c.hc
	hc.Timeout = 0
	resp, err := hc.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return 0, false, fmt.Errorf("server: %s (HTTP %d)", e.Error, resp.StatusCode)
		}
		return 0, false, fmt.Errorf("server: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20) // results carry full placements
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			// Multi-line data fields concatenate with newlines, per the SSE
			// grammar.
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		case line == "" && data.Len() > 0:
			var ev StreamEvent
			if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
				return n, false, fmt.Errorf("decode event: %w", err)
			}
			data.Reset()
			select {
			case ch <- Improvement{StreamEvent: ev, Job: jobID}:
			case <-ctx.Done():
				return n, false, ctx.Err()
			}
			n++
			if ev.Final {
				return n, true, nil
			}
		}
	}
	return n, false, sc.Err()
}
