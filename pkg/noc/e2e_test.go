package noc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nocmap/pkg/noc"
)

// newTestDaemon starts an in-process nocserved equivalent and returns a
// client speaking /v1 to it.
func newTestDaemon(t *testing.T) (*noc.Client, *httptest.Server) {
	t.Helper()
	server := noc.NewServer(noc.ServerConfig{Workers: 2})
	t.Cleanup(server.Close)
	ts := httptest.NewServer(server.Handler())
	t.Cleanup(ts.Close)
	return noc.NewClient(ts.URL, noc.WithTimeout(time.Minute)), ts
}

// TestClientV1EndToEnd drives every /v1 route through the SDK client: a
// synchronous map (computed, then cached), an async submit/poll cycle, a
// batch, the stats gauges and the version endpoint.
func TestClientV1EndToEnd(t *testing.T) {
	client, _ := newTestDaemon(t)
	ctx := context.Background()
	d := fig5Design(t)

	resp, err := client.Map(ctx, d, noc.WithEngine("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached || resp.Engine != "greedy" || resp.Result.Switches < 1 {
		t.Fatalf("first map: %+v", resp)
	}
	if len(resp.Result.Violations) != 0 {
		t.Fatalf("violations on fig5: %v", resp.Result.Violations)
	}

	// The same request hits the daemon's cache with a byte-identical result.
	again, err := client.Map(ctx, d, noc.WithEngine("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("identical request was not served from cache")
	}
	a, _ := json.Marshal(resp.Result)
	b, _ := json.Marshal(again.Result)
	if !bytes.Equal(a, b) {
		t.Errorf("cache hit result diverged:\n%s\nvs\n%s", a, b)
	}

	// A local run of the same design produces the identical summary — the
	// SDK's "one pipeline, two transports" guarantee.
	local, err := noc.Map(ctx, d, noc.WithEngine("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	l, _ := json.Marshal(local.Summary)
	if !bytes.Equal(l, a) {
		t.Errorf("local and remote summaries diverge:\n%s\nvs\n%s", l, a)
	}

	// Async: submit with a distinct seed (fresh cache key) and poll.
	st, err := client.Submit(ctx, d, noc.WithEngine("anneal"), noc.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatalf("submit returned no job ID: %+v", st)
	}
	deadline := time.Now().Add(30 * time.Second)
	for st.State != "done" && st.State != "failed" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
		if st, err = client.Job(ctx, st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if st.State != "done" || st.Result == nil {
		t.Fatalf("job finished badly: %+v", st)
	}

	// Batch: two requests, one of them invalid at the engine level is still
	// a per-item outcome, not a transport error.
	req1, err := noc.BuildMapRequest(d, noc.WithEngine("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	req2, err := noc.BuildMapRequest(d, noc.WithEngine("greedy"), noc.WithFrequencyMHz(700))
	if err != nil {
		t.Fatal(err)
	}
	items, err := client.Batch(ctx, []noc.MapRequest{req1, req2})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("batch returned %d items, want 2", len(items))
	}
	for i, it := range items {
		if it.Error != "" || it.Response == nil {
			t.Errorf("batch item %d: %+v", i, it)
		}
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits < 1 || stats.JobsDone < 2 {
		t.Errorf("stats don't reflect the session: %+v", stats)
	}

	v, err := client.Version(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Version == "" {
		t.Errorf("version endpoint returned empty identity: %+v", v)
	}
}

// TestLegacyRoutesAliasV1 pins the deprecation contract: the pre-/v1 routes
// answer identically to their /v1 homes and advertise the successor.
func TestLegacyRoutesAliasV1(t *testing.T) {
	client, ts := newTestDaemon(t)
	ctx := context.Background()
	d := fig5Design(t)
	if _, err := client.Map(ctx, d); err != nil {
		t.Fatal(err)
	}

	mr, err := noc.BuildMapRequest(d)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(mr)
	if err != nil {
		t.Fatal(err)
	}

	for _, route := range []struct{ method, path string }{
		{"POST", "/map"},
		{"GET", "/stats"},
		{"GET", "/jobs/j1"},
	} {
		var resp *http.Response
		var err error
		switch route.method {
		case "POST":
			resp, err = http.Post(ts.URL+route.path, "application/json", bytes.NewReader(body))
		default:
			resp, err = http.Get(ts.URL + route.path)
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get("Deprecation") == "" {
			t.Errorf("legacy %s %s carries no Deprecation header", route.method, route.path)
		}
		// The Link target is the request's actual successor URL — path
		// parameters substituted, so following it lands on the resource.
		if link := resp.Header.Get("Link"); !strings.Contains(link, "</v1"+route.path+">") {
			t.Errorf("legacy %s %s Link = %q, want </v1%s>", route.method, route.path, link, route.path)
		}
	}

	// The legacy map answer matches /v1/map byte for byte (cache verdict
	// aside, both are hits by now).
	legacy, err := http.Post(ts.URL+"/map", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Body.Close()
	var viaLegacy, viaV1 noc.MapResponse
	if err := json.NewDecoder(legacy.Body).Decode(&viaLegacy); err != nil {
		t.Fatal(err)
	}
	v1resp, err := http.Post(ts.URL+"/v1/map", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer v1resp.Body.Close()
	if err := json.NewDecoder(v1resp.Body).Decode(&viaV1); err != nil {
		t.Fatal(err)
	}
	lj, _ := json.Marshal(viaLegacy)
	vj, _ := json.Marshal(viaV1)
	if !bytes.Equal(lj, vj) {
		t.Errorf("legacy and /v1 answers diverge:\n%s\nvs\n%s", lj, vj)
	}
}

// TestBuildMapRequestRejectsLocalOnlyOptions pins the SDK/service boundary:
// options the service cannot honor fail loudly at request-build time.
func TestBuildMapRequestRejectsLocalOnlyOptions(t *testing.T) {
	d := fig5Design(t)
	cases := []struct {
		name string
		opt  noc.Option
	}{
		{"WithProgress", noc.WithProgress(func(noc.Event) {})},
		{"WithWeights", noc.WithWeights(noc.DefaultWeights())},
		{"WithParams", noc.WithParams(noc.DefaultParams())},
		{"WithWorkers", noc.WithWorkers(2)},
		{"WithRestarts", noc.WithRestarts(2)},
		{"custom fabric", noc.WithTopology("@ring.json")},
	}
	for _, c := range cases {
		if _, err := noc.BuildMapRequest(d, c.opt); err == nil {
			t.Errorf("%s: BuildMapRequest should refuse this local-only option", c.name)
		}
	}
}

// TestClientTimeout pins the -timeout satellite: a daemon that never
// answers fails the call instead of hanging it.
func TestClientTimeout(t *testing.T) {
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer ts.Close()
	defer close(stall)

	client := noc.NewClient(ts.URL, noc.WithTimeout(50*time.Millisecond))
	start := time.Now()
	_, err := client.Map(context.Background(), fig5Design(t))
	if err == nil {
		t.Fatal("Map against a stalled server should fail")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v; the client did not honor WithTimeout", elapsed)
	}
}
