//go:build !race

package noc_test

// raceEnabled reports whether this test binary runs under the race
// detector; see race_enabled_test.go.
const raceEnabled = false
