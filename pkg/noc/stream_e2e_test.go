package noc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"nocmap/pkg/noc"
)

// benchDesign loads one of the paper's benchmark designs.
func benchDesign(t *testing.T, name string) *noc.Design {
	t.Helper()
	d, err := noc.Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// drainStream collects every delivery until the channel closes, failing the
// test on a stream error.
func drainStream(t *testing.T, ch <-chan noc.Improvement) []noc.Improvement {
	t.Helper()
	var imps []noc.Improvement
	for imp := range ch {
		if imp.Err != nil {
			t.Fatalf("stream error after %d deliveries: %v", len(imps), imp.Err)
		}
		imps = append(imps, imp)
	}
	if len(imps) == 0 {
		t.Fatal("stream closed without any deliveries")
	}
	return imps
}

// TestMapStreamEndToEnd is the tentpole e2e: a D2 anneal job with a fixed
// seed consumed through noc.Client.MapStream over httptest. Sequence
// numbers must increase strictly (by exactly one — the client resumes
// without duplicating or skipping), costs must improve strictly across
// result-bearing events, and the final event must match the synchronous
// GET /v1/jobs/{id} result byte-for-byte.
func TestMapStreamEndToEnd(t *testing.T) {
	client, _ := newTestDaemon(t)
	ctx := context.Background()

	ch, err := client.MapStream(ctx, benchDesign(t, "D2"), noc.WithEngine("anneal"), noc.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	imps := drainStream(t, ch)
	if len(imps) < 2 {
		t.Fatalf("want at least mapped + done, got %d: %+v", len(imps), imps)
	}
	if imps[0].Stage != "mapped" || imps[0].Engine != "greedy" {
		t.Errorf("first delivery is not the greedy base: %+v", imps[0].StreamEvent)
	}
	lastCost := imps[0].Cost
	for i, imp := range imps {
		if imp.Seq != int64(i)+1 {
			t.Errorf("delivery %d has seq %d, want %d", i, imp.Seq, i+1)
		}
		if imp.Job == "" {
			t.Errorf("delivery %d has no job ID", i)
		}
		if imp.Final != (i == len(imps)-1) {
			t.Errorf("delivery %d Final=%v", i, imp.Final)
		}
		if imp.Stage == "improved" && imp.Cost >= lastCost {
			t.Errorf("delivery %d cost %v does not strictly improve on %v", i, imp.Cost, lastCost)
		}
		if imp.Response != nil {
			lastCost = imp.Cost
		}
	}

	final := imps[len(imps)-1]
	if final.Stage != "done" || final.Response == nil {
		t.Fatalf("final delivery: %+v", final.StreamEvent)
	}
	st, err := client.Job(ctx, final.Job)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Result == nil {
		t.Fatalf("job after stream: %+v", st)
	}
	a, _ := json.Marshal(final.Response)
	b, _ := json.Marshal(st.Result)
	if !bytes.Equal(a, b) {
		t.Errorf("final stream event diverges from GET /v1/jobs/{id}:\n%s\nvs\n%s", a, b)
	}
}

// TestMapStreamFirstResultFast pins the acceptance latency bound: a
// streamed D1 request delivers its first (greedy) result in under 50ms
// while the background anneal later delivers a strictly better incumbent
// on the same stream.
func TestMapStreamFirstResultFast(t *testing.T) {
	client, _ := newTestDaemon(t)

	start := time.Now()
	ch, err := client.MapStream(context.Background(), benchDesign(t, "D1"),
		noc.WithEngine("anneal"), noc.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	first, ok := <-ch
	elapsed := time.Since(start)
	if !ok || first.Err != nil {
		t.Fatalf("no first delivery: %+v", first)
	}
	bound := 50 * time.Millisecond
	if raceEnabled {
		bound = 500 * time.Millisecond // the race detector slows the greedy pass severalfold
	}
	if elapsed >= bound {
		t.Errorf("first streamed result took %v, want <%v", elapsed, bound)
	}
	if first.Stage != "mapped" || first.Response == nil {
		t.Fatalf("first delivery: %+v", first.StreamEvent)
	}
	improved := false
	var last noc.Improvement
	for imp := range ch {
		if imp.Err != nil {
			t.Fatal(imp.Err)
		}
		if imp.Stage == "improved" && imp.Cost < first.Cost {
			improved = true
		}
		last = imp
	}
	if !improved {
		t.Error("background anneal never streamed a strictly better incumbent on D1 seed 2")
	}
	if !last.Final || last.Cost >= first.Cost {
		t.Errorf("final incumbent %v does not beat the greedy base %v", last.Cost, first.Cost)
	}
}

// trajectoryPoint is one incumbent improvement, reduced to the fields both
// observation paths share.
type trajectoryPoint struct {
	Cost     float64
	Switches int
}

// TestMapStreamTrajectoryProperty is the property satellite: for pinned
// seeds × D1–D4 × mesh/torus, the incumbent trajectory observed through the
// service's event stream equals the trajectory a direct Options.Progress
// callback records on a local run of the identical request — the service
// adds no events, drops none, and reorders none.
func TestMapStreamTrajectoryProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("trajectory sweep is long for -short")
	}
	client, _ := newTestDaemon(t)
	ctx := context.Background()

	designs := []string{"D1", "D2", "D3", "D4"}
	seeds := []int64{2, 7}
	if raceEnabled {
		// The full sweep is about interchange fidelity, not interleavings;
		// under the severalfold race-detector slowdown a slice of it keeps
		// the signal without dominating the -race run.
		designs, seeds = []string{"D1", "D2"}, []int64{2}
	}
	for _, name := range designs {
		for _, topo := range []string{"mesh", "torus"} {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("%s/%s/seed%d", name, topo, seed), func(t *testing.T) {
					d := benchDesign(t, name)
					opts := []noc.Option{
						noc.WithEngine("anneal"), noc.WithTopology(topo),
						noc.WithSeed(seed), noc.WithIters(1500),
					}

					var local []trajectoryPoint
					localOpts := append([]noc.Option{noc.WithProgress(func(e noc.Event) {
						if e.Stage == "improved" {
							local = append(local, trajectoryPoint{Cost: e.Cost, Switches: e.Switches})
						}
					})}, opts...)
					if _, err := noc.Map(ctx, d, localOpts...); err != nil {
						t.Fatal(err)
					}

					ch, err := client.MapStream(ctx, d, opts...)
					if err != nil {
						t.Fatal(err)
					}
					var streamed []trajectoryPoint
					for imp := range ch {
						if imp.Err != nil {
							t.Fatal(imp.Err)
						}
						if imp.Stage == "improved" {
							streamed = append(streamed, trajectoryPoint{Cost: imp.Cost, Switches: imp.Response.Result.Switches})
						}
					}
					if len(streamed) != len(local) {
						t.Fatalf("streamed %d improvements, local progress saw %d:\n%+v\nvs\n%+v",
							len(streamed), len(local), streamed, local)
					}
					for i := range local {
						if streamed[i] != local[i] {
							t.Fatalf("trajectory diverges at %d: streamed %+v, local %+v", i, streamed[i], local[i])
						}
					}
				})
			}
		}
	}
}

// TestMapStreamConcurrentReaders is the race/stress satellite: several
// concurrent streamers of one job plus several concurrent cache readers on
// the same digest while improvements land. Every streamer must observe the
// identical strictly-increasing sequence, and no cache reader may ever see
// the cost regress across consecutive hits — the in-place upgrade is
// replace-only-with-better.
func TestMapStreamConcurrentReaders(t *testing.T) {
	client, _ := newTestDaemon(t)
	ctx := context.Background()
	d := benchDesign(t, "D2")
	opts := []noc.Option{
		noc.WithEngine("anneal"), noc.WithSeed(2),
		noc.WithIters(500_000_000), noc.WithBudget(1500 * time.Millisecond),
	}

	// First streamer creates the job; wait for its greedy incumbent so the
	// cache entry exists before the readers start hammering.
	first, err := client.MapStream(ctx, d, opts...)
	if err != nil {
		t.Fatal(err)
	}
	base, ok := <-first
	if !ok || base.Err != nil || base.Response == nil {
		t.Fatalf("no base incumbent: %+v", base)
	}

	const streamers = 3
	const readers = 4
	var wg sync.WaitGroup
	errs := make(chan error, streamers+readers+1)
	sequences := make([][]int64, streamers)

	for i := 0; i < streamers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch, err := client.MapStream(ctx, d, opts...)
			if err != nil {
				errs <- err
				return
			}
			lastCost := 0.0
			for imp := range ch {
				if imp.Err != nil {
					errs <- imp.Err
					return
				}
				if imp.Response != nil {
					if lastCost != 0 && imp.Cost >= lastCost && !imp.Final {
						errs <- fmt.Errorf("streamer %d: cost regressed %v -> %v", i, lastCost, imp.Cost)
						return
					}
					lastCost = imp.Cost
				}
				sequences[i] = append(sequences[i], imp.Seq)
			}
		}(i)
	}

	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lastCost := 0.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Map(ctx, d, opts...)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", i, err)
					return
				}
				// The never-regress invariant, scored with the default cost
				// weights the daemon runs with (1000/1/10): an in-place
				// cache upgrade may only replace the entry with a strictly
				// better result, so consecutive reads never get worse.
				cost := 1000*float64(resp.Result.Switches) + resp.Result.AvgMeshHops + 10*resp.Result.MaxLinkUtil
				if lastCost != 0 && cost > lastCost+1e-9 {
					errs <- fmt.Errorf("reader %d: cached cost regressed %v -> %v", i, lastCost, cost)
					return
				}
				lastCost = cost
			}
		}(i)
	}

	// Drain the founding stream to completion, then stop the readers.
	for imp := range first {
		if imp.Err != nil {
			errs <- imp.Err
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every joining streamer saw one contiguous strictly-increasing window
	// of the job's sequence (joiners may attach after early events, never
	// out of order, never duplicated).
	for i, seqs := range sequences {
		for k := 1; k < len(seqs); k++ {
			if seqs[k] != seqs[k-1]+1 {
				t.Errorf("streamer %d sequence not contiguous at %d: %v", i, k, seqs)
				break
			}
		}
		if len(seqs) == 0 {
			t.Errorf("streamer %d saw no events", i)
		}
	}
}
