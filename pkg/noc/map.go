package noc

import (
	"context"
	"fmt"
	"strings"
	"time"

	"nocmap/internal/search"
	"nocmap/internal/service"
	"nocmap/internal/topology"
	"nocmap/internal/usecase"
)

// Map runs the full pipeline on the design in-process: pre-processing,
// the selected search engine, analytic verification and summarization.
// The context bounds the whole search; engines observe cancellation
// between evaluation steps. Verification failures do not error — they are
// reported in Result.Violations so callers can inspect the mapping.
//
//	res, err := noc.Map(ctx, design,
//		noc.WithEngine("portfolio"),
//		noc.WithSeed(42),
//		noc.WithBudget(30*time.Second))
func Map(ctx context.Context, d *Design, opts ...Option) (*Result, error) {
	start := time.Now()
	cfg := newConfig(opts)
	eng, err := search.New(cfg.engine)
	if err != nil {
		return nil, err
	}
	spec, err := ResolveTopology(cfg.topology, d)
	if err != nil {
		return nil, err
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		return nil, err
	}
	var tm Timings
	tm.PrepareMS = msSince(start)
	p := cfg.params
	p.Topology = spec
	searchStart := time.Now()
	res, err := eng.Search(ctx, prep, d.NumCores(), p, cfg.opts)
	if err != nil {
		return nil, err
	}
	tm.SearchMS = msSince(searchStart)
	sumStart := time.Now()
	summary := service.SummarizeResult(d.Name, prep, res)
	tm.SummarizeMS = msSince(sumStart)
	tm.TotalMS = msSince(start)
	return &Result{
		Summary: summary,
		engine:  cfg.engine,
		mapping: res.Mapping,
		prep:    prep,
		timings: tm,
	}, nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t).Nanoseconds()) / 1e6 }

// ResolveTopology turns a topology argument — "mesh", "torus",
// "@fabric.json", or "" meaning "whatever the design's own tag says" —
// into a buildable spec. A design tagged with a custom fabric cannot be
// resolved from the tag alone (the tag is a digest, not the link list), so
// the fabric file must be passed explicitly.
func ResolveTopology(arg string, d *Design) (topology.Spec, error) {
	if arg == "" {
		tag := d.Topology
		if strings.HasPrefix(tag, "custom:") {
			return topology.Spec{}, fmt.Errorf(
				"noc: design %q targets a custom fabric (%s); pass its description with WithTopology(\"@fabric.json\")", d.Name, tag)
		}
		arg = tag
	}
	return topology.ParseSpec(arg)
}
