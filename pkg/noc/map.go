package noc

import (
	"context"
	"fmt"
	"strings"

	"nocmap/internal/search"
	"nocmap/internal/service"
	"nocmap/internal/topology"
	"nocmap/internal/usecase"
)

// Map runs the full pipeline on the design in-process: pre-processing,
// the selected search engine, analytic verification and summarization.
// The context bounds the whole search; engines observe cancellation
// between evaluation steps. Verification failures do not error — they are
// reported in Result.Violations so callers can inspect the mapping.
//
//	res, err := noc.Map(ctx, design,
//		noc.WithEngine("portfolio"),
//		noc.WithSeed(42),
//		noc.WithBudget(30*time.Second))
func Map(ctx context.Context, d *Design, opts ...Option) (*Result, error) {
	cfg := newConfig(opts)
	eng, err := search.New(cfg.engine)
	if err != nil {
		return nil, err
	}
	spec, err := ResolveTopology(cfg.topology, d)
	if err != nil {
		return nil, err
	}
	prep, err := usecase.Prepare(d)
	if err != nil {
		return nil, err
	}
	p := cfg.params
	p.Topology = spec
	res, err := eng.Search(ctx, prep, d.NumCores(), p, cfg.opts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Summary: service.SummarizeResult(d.Name, prep, res),
		engine:  cfg.engine,
		mapping: res.Mapping,
		prep:    prep,
	}, nil
}

// ResolveTopology turns a topology argument — "mesh", "torus",
// "@fabric.json", or "" meaning "whatever the design's own tag says" —
// into a buildable spec. A design tagged with a custom fabric cannot be
// resolved from the tag alone (the tag is a digest, not the link list), so
// the fabric file must be passed explicitly.
func ResolveTopology(arg string, d *Design) (topology.Spec, error) {
	if arg == "" {
		tag := d.Topology
		if strings.HasPrefix(tag, "custom:") {
			return topology.Spec{}, fmt.Errorf(
				"noc: design %q targets a custom fabric (%s); pass its description with WithTopology(\"@fabric.json\")", d.Name, tag)
		}
		arg = tag
	}
	return topology.ParseSpec(arg)
}
