package noc_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"nocmap/pkg/noc"
)

// TestRetryFlakyServer pins the retry satellite: a daemon answering 503
// twice before recovering is transparently retried, the POST body is
// replayed intact on every attempt, and the request keeps one X-Request-ID
// across attempts so the retries trace as one call.
func TestRetryFlakyServer(t *testing.T) {
	server := noc.NewServer(noc.ServerConfig{Workers: 1})
	defer server.Close()
	real := server.Handler()

	var attempts atomic.Int64
	var firstID, lastID atomic.Value
	var firstLen, lastLen atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		body, _ := io.ReadAll(r.Body)
		if n == 1 {
			firstID.Store(r.Header.Get("X-Request-ID"))
			firstLen.Store(int64(len(body)))
		}
		lastID.Store(r.Header.Get("X-Request-ID"))
		lastLen.Store(int64(len(body)))
		if n <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		real.ServeHTTP(w, r)
	}))
	defer ts.Close()

	client := noc.NewClient(ts.URL, noc.WithRetry(noc.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	}))
	resp, err := client.Map(context.Background(), fig5Design(t))
	if err != nil {
		t.Fatalf("map through a twice-flaky server: %v", err)
	}
	if resp.Result.Switches < 1 {
		t.Fatalf("degenerate result: %+v", resp)
	}
	if attempts.Load() != 3 {
		t.Errorf("server saw %d attempts, want 3", attempts.Load())
	}
	if firstLen.Load() == 0 || firstLen.Load() != lastLen.Load() {
		t.Errorf("retried body not replayed: first %d bytes, last %d", firstLen.Load(), lastLen.Load())
	}
	if firstID.Load() == "" || firstID.Load() != lastID.Load() {
		t.Errorf("request ID changed across retries: %v vs %v", firstID.Load(), lastID.Load())
	}
}

// TestRetryGivesUpAfterMaxAttempts pins the cap: a server that never
// recovers fails the call with the server's diagnostic after exactly
// MaxAttempts tries.
func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"still booting"}`, http.StatusBadGateway)
	}))
	defer ts.Close()

	client := noc.NewClient(ts.URL, noc.WithRetry(noc.RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
	}))
	_, err := client.Stats(context.Background())
	if err == nil {
		t.Fatal("call against an always-502 server succeeded")
	}
	var se *noc.ServerError
	if !errors.As(err, &se) || se.Status != http.StatusBadGateway {
		t.Fatalf("error = %v, want *ServerError with 502", err)
	}
	if attempts.Load() != 4 {
		t.Errorf("server saw %d attempts, want 4", attempts.Load())
	}
}

// TestRetryDoesNotRetryClientErrors pins the transient/permanent boundary:
// a 4xx is the caller's fault and must not be retried.
func TestRetryDoesNotRetryClientErrors(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	client := noc.NewClient(ts.URL, noc.WithRetry(noc.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	if _, err := client.Stats(context.Background()); err == nil {
		t.Fatal("400 reported as success")
	}
	if attempts.Load() != 1 {
		t.Errorf("4xx was retried: %d attempts", attempts.Load())
	}
}

// refusingTransport fails the first n round trips with connection refused,
// then delegates — a replica that finishes restarting mid-retry.
type refusingTransport struct {
	fails atomic.Int64
	n     int64
	next  http.RoundTripper
}

func (rt *refusingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if rt.fails.Add(1) <= rt.n {
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	}
	return rt.next.RoundTrip(r)
}

// TestRetryConnectionRefused pins the dial-error half of the transient set:
// connection-refused failures retry, and the call lands once the replica is
// back.
func TestRetryConnectionRefused(t *testing.T) {
	server := noc.NewServer(noc.ServerConfig{Workers: 1})
	defer server.Close()
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	rt := &refusingTransport{n: 2, next: http.DefaultTransport}
	client := noc.NewClient(ts.URL,
		noc.WithHTTPClient(&http.Client{Transport: rt}),
		noc.WithRetry(noc.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}))
	if _, err := client.Stats(context.Background()); err != nil {
		t.Fatalf("stats through a twice-refusing dialer: %v", err)
	}
	if rt.fails.Load() != 3 {
		t.Errorf("transport saw %d round trips, want 3", rt.fails.Load())
	}

	// Without retry the same failure surfaces immediately.
	rt2 := &refusingTransport{n: 1, next: http.DefaultTransport}
	plain := noc.NewClient(ts.URL, noc.WithHTTPClient(&http.Client{Transport: rt2}))
	if _, err := plain.Stats(context.Background()); err == nil {
		t.Fatal("refused connection reported as success without retry")
	}
}

// TestDesignLookup pins the GET /v1/designs client surface: a mapped
// digest resolves to its cached result, an unknown digest is ErrNotFound.
func TestDesignLookup(t *testing.T) {
	client, _ := newTestDaemon(t)
	ctx := context.Background()
	resp, err := client.Map(ctx, fig5Design(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.Design(ctx, resp.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cached || got.Key != resp.Key {
		t.Errorf("design lookup = cached=%v key=%q, want cached %q", got.Cached, got.Key, resp.Key)
	}
	if _, err := client.Design(ctx, "deadbeef"); !errors.Is(err, noc.ErrNotFound) {
		t.Errorf("unknown digest error = %v, want ErrNotFound", err)
	}
}
