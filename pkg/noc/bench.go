package noc

import (
	"fmt"

	"nocmap/internal/bench"
)

// Benchmark returns one of the paper's SoC benchmark stand-ins by name:
// D1/D2 (set-top boxes with 2 and 5 use-cases) or D3/D4 (TV processors
// with 3 and 8 use-cases).
func Benchmark(name string) (*Design, error) { return bench.ByName(name) }

// SyntheticClasses lists the class names Synthetic accepts: "Sp" (spread
// traffic: every core talks to a few fixed peers) and "Bot" (bottleneck
// traffic: most streams touch a few hotspot cores).
func SyntheticClasses() []string { return bench.ClassNames() }

// Synthetic generates a synthetic benchmark design of the given class with
// the requested number of use-cases. A fixed seed reproduces the design;
// designs of one (class, seed) family are nested — the k-use-case design
// is a prefix of larger ones.
func Synthetic(class string, useCases int, seed int64) (*Design, error) {
	c, err := bench.ClassByName(class)
	if err != nil {
		return nil, fmt.Errorf("noc: %w", err)
	}
	return bench.Synthetic(c.SpecFor(useCases, seed))
}
