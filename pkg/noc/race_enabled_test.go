//go:build race

package noc_test

// raceEnabled reports that this test binary runs under the race detector,
// where every engine is several times slower: latency bounds scale up and
// sweep matrices shrink so -race runs stay focused on interleavings.
const raceEnabled = true
