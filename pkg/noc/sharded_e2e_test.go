package noc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"nocmap/internal/store"
	"nocmap/pkg/noc"
)

// swapHandler breaks the URL chicken-and-egg of a sharded fleet: the
// listeners (and so the roster URLs) must exist before the stores that
// embed the roster, which must exist before the servers that serve them.
// Each listener starts on a swapHandler and gets its real handler later.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "replica still booting", http.StatusServiceUnavailable)
}

type replica struct {
	url    string
	client *noc.Client
	store  *store.Sharded
	server *noc.Server
}

// startFleet boots n replicas sharing one consistent-hash roster.
func startFleet(t *testing.T, n int) []replica {
	t.Helper()
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	fleet := make([]replica, n)
	for i := range fleet {
		st, err := noc.OpenStore(noc.StoreConfig{
			Backend:       "sharded",
			Peers:         urls,
			Self:          urls[i],
			ClientOptions: []noc.ClientOption{noc.WithTimeout(30 * time.Second)},
		})
		if err != nil {
			t.Fatalf("OpenStore replica %d: %v", i, err)
		}
		server := noc.NewServer(noc.ServerConfig{Workers: 1, Store: st})
		t.Cleanup(server.Close)
		swaps[i].h.Store(server.Handler())
		fleet[i] = replica{
			url:    urls[i],
			client: noc.NewClient(urls[i], noc.WithTimeout(30*time.Second)),
			store:  st.(*store.Sharded),
			server: server,
		}
	}
	return fleet
}

// TestShardedFleetEndToEnd drives the consistent-hash store through three
// live replicas: every replica agrees on digest ownership, a result
// computed on the owner is a forwarded cache hit on every other replica
// (no recomputation), and the forward counters record the peer traffic.
func TestShardedFleetEndToEnd(t *testing.T) {
	fleet := startFleet(t, 3)
	ctx := context.Background()
	d := fig5Design(t)

	// Compute the request's canonical digest the same way the service will,
	// then pick the replica the ring assigns it to.
	mr, err := noc.BuildMapRequest(d, noc.WithEngine("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	sreq, err := mr.ToRequest()
	if err != nil {
		t.Fatal(err)
	}
	key, err := sreq.Key()
	if err != nil {
		t.Fatal(err)
	}
	ownerURL := fleet[0].store.Owner(key)
	for _, r := range fleet[1:] {
		if got := r.store.Owner(key); got != ownerURL {
			t.Fatalf("replicas disagree on ownership: %s vs %s", got, ownerURL)
		}
	}
	var owner, other replica
	for _, r := range fleet {
		if r.url == ownerURL {
			owner = r
		} else {
			other = r
		}
	}

	// Map on the owner: a fresh run whose result lands in the owner's local
	// tier under the precomputed digest.
	resp, err := owner.client.Map(ctx, d, noc.WithEngine("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached || resp.Key != key {
		t.Fatalf("owner map = cached=%v key=%q, want fresh run under %q", resp.Cached, resp.Key, key)
	}

	// A digest lookup on a non-owner forwards to the owner and answers with
	// the identical result.
	viaPeer, err := other.client.Design(ctx, key)
	if err != nil {
		t.Fatalf("design lookup via non-owner: %v", err)
	}
	a, _ := json.Marshal(resp.Result)
	b, _ := json.Marshal(viaPeer.Result)
	if !bytes.Equal(a, b) {
		t.Errorf("forwarded result diverges from the owner's:\n%s\nvs\n%s", a, b)
	}
	if other.store.Forwards() < 1 {
		t.Errorf("non-owner forwards = %d, want >= 1", other.store.Forwards())
	}

	// The identical map request on the non-owner is a cache hit served
	// through the shard layer — no second engine run anywhere.
	again, err := other.client.Map(ctx, d, noc.WithEngine("greedy"))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("map on non-owner missed the fleet cache")
	}
	if c, _ := json.Marshal(again.Result); !bytes.Equal(a, c) {
		t.Errorf("non-owner cache hit diverges from the owner's run:\n%s\nvs\n%s", a, c)
	}
	ownerStats, err := owner.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	otherStats, err := other.client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ownerStats.JobsDone != 1 || otherStats.JobsDone != 0 {
		t.Errorf("jobs done owner=%d other=%d, want 1/0 (no recomputation)", ownerStats.JobsDone, otherStats.JobsDone)
	}
	if ownerStats.StoreBackend != "sharded" || otherStats.CacheHits != 1 {
		t.Errorf("stats: owner backend %q, other hits %d; want sharded / 1", ownerStats.StoreBackend, otherStats.CacheHits)
	}

	// A digest nobody computed is a clean fleet-wide miss.
	if _, err := other.client.Design(ctx, "feedfacefeedface"); err == nil {
		t.Error("uncomputed digest resolved somewhere")
	}
}

// TestOpenStoreValidation pins OpenStore's configuration errors.
func TestOpenStoreValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  noc.StoreConfig
	}{
		{"unknown backend", noc.StoreConfig{Backend: "redis"}},
		{"disk without dir", noc.StoreConfig{Backend: "disk"}},
		{"memory with dir", noc.StoreConfig{Backend: "memory", Dir: t.TempDir()}},
		{"memory with peers", noc.StoreConfig{Backend: "memory", Peers: []string{"http://r1"}}},
		{"sharded without peers", noc.StoreConfig{Backend: "sharded", Self: "http://r1"}},
		{"sharded self outside roster", noc.StoreConfig{Backend: "sharded",
			Peers: []string{"http://r1"}, Self: "http://r9"}},
	}
	for _, c := range cases {
		if _, err := noc.OpenStore(c.cfg); err == nil {
			t.Errorf("%s: OpenStore accepted %+v", c.name, c.cfg)
		}
	}
	st, err := noc.OpenStore(noc.StoreConfig{})
	if err != nil {
		t.Fatalf("zero-value StoreConfig: %v", err)
	}
	if st.Backend() != "memory" {
		t.Errorf("default backend = %q, want memory", st.Backend())
	}
	st.Close()
}
