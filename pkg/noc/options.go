package noc

import (
	"time"

	"nocmap/internal/core"
	"nocmap/internal/search"
)

// Option configures one Map call (local or through a Client). Options
// compose left to right; later options win.
type Option func(*config)

// config is the resolved option set. Pointer-typed knobs distinguish
// "untouched" from an explicit zero, which the wire form of the service
// also needs.
type config struct {
	engine   string
	topology string // "", "mesh", "torus" or "@fabric.json"; "" = design's tag
	params   core.Params
	opts     search.Options

	// Wire-relevant overrides, kept as set/unset for Client requests.
	seed        *int64
	seeds       *int
	iters       *int
	population  *int
	generations *int
	nodes       *int
	budget      *time.Duration
	freq        *float64
	slots       *int
	maxDim      *int
	improve     *bool

	// Local-only knobs (rejected by Client.Map).
	paramsSet  bool
	weightsSet bool
	workers    *int
	restarts   *int
	speculate  *int
}

func newConfig(opts []Option) *config {
	cfg := &config{
		engine: "greedy",
		params: core.DefaultParams(),
		opts:   search.DefaultOptions(),
	}
	for _, o := range opts {
		o(cfg)
	}
	return cfg
}

// WithEngine selects the search engine by registry name; see Engines for
// the valid set. The default is "greedy", the paper's Algorithm 2.
func WithEngine(name string) Option {
	return func(c *config) { c.engine = name }
}

// WithTopology selects the interconnect family: "mesh", "torus", or
// "@fabric.json" to load a custom switch/link graph from a file. The empty
// string (the default) defers to the design's own topology tag, falling
// back to mesh.
func WithTopology(arg string) Option {
	return func(c *config) { c.topology = arg }
}

// WithParams replaces the architecture parameters wholesale. Options
// applied after it (WithFrequencyMHz, WithSlotTableSize, ...) refine the
// given parameters. Local mapping only: a Client request carries individual
// overrides, not full parameter sets.
func WithParams(p Params) Option {
	return func(c *config) { c.params = p; c.paramsSet = true }
}

// WithFrequencyMHz sets the NoC operating frequency.
func WithFrequencyMHz(f float64) Option {
	return func(c *config) { c.params.FreqMHz = f; c.freq = &f }
}

// WithSlotTableSize sets the TDMA slot-table length of every link.
func WithSlotTableSize(n int) Option {
	return func(c *config) { c.params.SlotTableSize = n; c.slots = &n }
}

// WithMaxMeshDim caps the growth loop at n x n.
func WithMaxMeshDim(n int) Option {
	return func(c *config) { c.params.MaxMeshDim = n; c.maxDim = &n }
}

// WithImprove toggles the placement-refinement pass after mapping.
func WithImprove(on bool) Option {
	return func(c *config) { c.params.Improve = on; c.improve = &on }
}

// WithSeed sets the base PRNG seed of the stochastic engines; a fixed seed
// reproduces the run exactly.
func WithSeed(seed int64) Option {
	return func(c *config) { c.opts.Seed = seed; c.seed = &seed }
}

// WithSeeds sets how many multi-start annealers the portfolio engine races.
func WithSeeds(n int) Option {
	return func(c *config) { c.opts.Seeds = n; c.seeds = &n }
}

// WithIters sets the number of annealing moves per start.
func WithIters(n int) Option {
	return func(c *config) { c.opts.Iters = n; c.iters = &n }
}

// WithPopulation sets the population size of the population engines (ga,
// pso, abc). 0 keeps the engines' default of 16.
func WithPopulation(n int) Option {
	return func(c *config) { c.opts.Population = n; c.population = &n }
}

// WithGenerations sets how many generations (cycles) the population engines
// evolve per fabric size. 0 keeps the engines' default of 24.
func WithGenerations(n int) Option {
	return func(c *config) { c.opts.Generations = n; c.generations = &n }
}

// WithExactNodes sets the exact engine's deterministic search budget, in
// weighted tree nodes (descending one assignment edge costs 1, evaluating a
// complete placement costs 100). A fixed budget reproduces the identical
// bound on every run. 0 keeps the default of 500000.
func WithExactNodes(n int) Option {
	return func(c *config) { c.opts.Nodes = n; c.nodes = &n }
}

// WithRestarts sets how many random placements the annealer tries per
// smaller-than-greedy fabric size when probing for a feasible start. Local
// mapping only.
func WithRestarts(n int) Option {
	return func(c *config) { c.opts.Restarts = n; c.restarts = &n }
}

// WithBudget bounds the wall-clock time of the improvement phase; the
// constructive base always completes, so a tight budget degrades to the
// greedy result rather than an error. Zero means unbounded.
func WithBudget(d time.Duration) Option {
	return func(c *config) { c.opts.Budget = d; c.budget = &d }
}

// WithWorkers caps the portfolio's concurrent annealers (default: one
// goroutine per member). Local mapping only.
func WithWorkers(n int) Option {
	return func(c *config) { c.opts.Workers = n; c.workers = &n }
}

// WithSpeculation sets the speculative evaluation width of the annealing
// engines: each step proposes k candidate moves and scores them
// concurrently on cloned evaluation sessions, accepting the best improving
// one. 0 and 1 keep the serial chain (and its exact results); widths above
// the machine's core count add synchronization without extra throughput.
// Local mapping only: the service sizes its own concurrency.
func WithSpeculation(k int) Option {
	return func(c *config) { c.opts.SpecK = k; c.speculate = &k }
}

// WithWeights replaces the cost weights scoring candidate mappings. Local
// mapping only: the service scores with its configured weights so cache
// keys stay comparable.
func WithWeights(w Weights) Option {
	return func(c *config) { c.opts.Weights = w; c.weightsSet = true }
}

// WithProgress streams search progress into fn: the constructive base
// (StageMapped), every strict improvement of an annealer's incumbent
// (StageImproved), and the final result (StageDone). fn runs synchronously
// on the searching goroutine and is never invoked concurrently with itself.
// Local mapping only.
func WithProgress(fn func(Event)) Option {
	return func(c *config) { c.opts.Progress = fn }
}
