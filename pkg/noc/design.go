package noc

import (
	"fmt"
	"io"
	"os"

	"nocmap/internal/traffic"
)

// LoadDesign parses and validates a design from the JSON interchange format
// (the format nocgen writes and the /v1 service accepts).
func LoadDesign(r io.Reader) (*Design, error) { return traffic.ReadJSON(r) }

// LoadDesignFile parses and validates a design from a JSON file.
func LoadDesignFile(path string) (*Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("noc: open design: %w", err)
	}
	defer f.Close()
	d, err := traffic.ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("noc: parse design %s: %w", path, err)
	}
	return d, nil
}

// NewFlow builds an unconstrained-latency flow from src to dst carrying
// bandwidthMBs MB/s.
func NewFlow(src, dst int, bandwidthMBs float64) Flow {
	return Flow{Src: traffic.CoreID(src), Dst: traffic.CoreID(dst), BandwidthMBs: bandwidthMBs}
}

// NewConstrainedFlow builds a flow whose packets must arrive within
// maxLatencyNS nanoseconds.
func NewConstrainedFlow(src, dst int, bandwidthMBs, maxLatencyNS float64) Flow {
	f := NewFlow(src, dst, bandwidthMBs)
	f.MaxLatencyNS = maxLatencyNS
	return f
}

// DesignBuilder constructs a Design incrementally with typed methods. All
// methods record the first error and keep chaining; Build reports it (or
// the design's own validation failure).
//
//	d, err := noc.NewDesign("player").
//		Cores(4).
//		AddUseCase("decode", noc.NewFlow(0, 1, 100), noc.NewFlow(1, 2, 75)).
//		AddUseCase("record", noc.NewFlow(0, 3, 40)).
//		Parallel("decode", "record").
//		Build()
type DesignBuilder struct {
	d   Design
	err error
}

// NewDesign starts a builder for a design with the given name.
func NewDesign(name string) *DesignBuilder {
	return &DesignBuilder{d: Design{Name: name}}
}

func (b *DesignBuilder) fail(format string, args ...any) *DesignBuilder {
	if b.err == nil {
		b.err = fmt.Errorf("noc: "+format, args...)
	}
	return b
}

// Cores declares n anonymous cores with dense IDs 0..n-1.
func (b *DesignBuilder) Cores(n int) *DesignBuilder {
	if len(b.d.Cores) > 0 {
		return b.fail("design %q: cores already declared", b.d.Name)
	}
	if n <= 0 {
		return b.fail("design %q: core count %d invalid", b.d.Name, n)
	}
	b.d.Cores = traffic.MakeCores(n)
	return b
}

// NamedCores declares one core per name, with IDs in argument order.
func (b *DesignBuilder) NamedCores(names ...string) *DesignBuilder {
	if len(b.d.Cores) > 0 {
		return b.fail("design %q: cores already declared", b.d.Name)
	}
	for i, name := range names {
		b.d.Cores = append(b.d.Cores, Core{ID: traffic.CoreID(i), Name: name})
	}
	return b
}

// AddUseCase appends an application mode with the given flows.
func (b *DesignBuilder) AddUseCase(name string, flows ...Flow) *DesignBuilder {
	b.d.UseCases = append(b.d.UseCases, &UseCase{Name: name, Flows: flows})
	return b
}

// useCaseIndex resolves a use-case name declared by an earlier AddUseCase.
func (b *DesignBuilder) useCaseIndex(name string) (int, bool) {
	for i, u := range b.d.UseCases {
		if u.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Parallel declares that the named use-cases can run simultaneously; the
// pre-processing phase generates a compound mode for the set.
func (b *DesignBuilder) Parallel(useCases ...string) *DesignBuilder {
	set := make([]int, 0, len(useCases))
	for _, name := range useCases {
		i, ok := b.useCaseIndex(name)
		if !ok {
			return b.fail("design %q: parallel set references unknown use-case %q", b.d.Name, name)
		}
		set = append(set, i)
	}
	b.d.ParallelSets = append(b.d.ParallelSets, set)
	return b
}

// Smooth declares that switching between the two named use-cases must not
// disrupt traffic: both are placed in one smooth-switching group and share
// a NoC configuration.
func (b *DesignBuilder) Smooth(a, c string) *DesignBuilder {
	i, ok := b.useCaseIndex(a)
	if !ok {
		return b.fail("design %q: smooth pair references unknown use-case %q", b.d.Name, a)
	}
	j, ok := b.useCaseIndex(c)
	if !ok {
		return b.fail("design %q: smooth pair references unknown use-case %q", b.d.Name, c)
	}
	b.d.SmoothPairs = append(b.d.SmoothPairs, [2]int{i, j})
	return b
}

// Topology tags the interconnect family the design targets: "mesh" (the
// default when omitted) or "torus". The tag participates in the design's
// canonical digest, so it travels with the design through the service cache.
func (b *DesignBuilder) Topology(tag string) *DesignBuilder {
	b.d.Topology = tag
	return b
}

// Build validates and returns the design. The builder can keep being used;
// Build snapshots nothing (the returned pointer shares the builder's state),
// so finish building before mapping.
func (b *DesignBuilder) Build() (*Design, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.d.Validate(); err != nil {
		return nil, err
	}
	return &b.d, nil
}
