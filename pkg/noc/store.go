package noc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"nocmap/internal/service"
	"nocmap/internal/store"
)

// ResultStore is the pluggable result-store interface behind the server's
// cache: Get/Put/UpgradeIfBetter keyed by canonical request digest. Assign
// one to ServerConfig.Store to replace the default in-memory LRU; build the
// bundled backends with OpenStore. The server owns the store and closes it
// with the pool.
type ResultStore = store.Store

// StoreConfig selects and sizes a result-store backend for OpenStore.
type StoreConfig struct {
	// Backend picks the store: "memory" (the default — a process-local
	// LRU), "disk" (content-addressed files under Dir, durable across
	// restarts, fronted by a memory LRU), or "sharded" (consistent-hash
	// digest ownership over Peers, forwarding misses to the owning
	// replica; the local tier is disk-backed when Dir is set, memory
	// otherwise).
	Backend string
	// Dir is the disk-store root directory (required for "disk").
	Dir string
	// CacheEntries bounds the memory tier (default 128).
	CacheEntries int
	// Peers is the full replica roster for "sharded" — every replica's
	// base URL, identical (up to order) on every replica, including Self.
	Peers []string
	// Self is this replica's own base URL as it appears in Peers.
	Self string
	// ClientOptions configure the HTTP clients a sharded store fetches
	// foreign digests with (WithTimeout, WithRetry, WithHTTPClient).
	ClientOptions []ClientOption
}

// OpenStore builds a result store from cfg. The returned store plugs into
// ServerConfig.Store; the server closes it on Close.
func OpenStore(cfg StoreConfig) (ResultStore, error) {
	entries := cfg.CacheEntries
	if entries <= 0 {
		entries = 128
	}
	local, err := openLocalTier(cfg, entries)
	if err != nil {
		return nil, err
	}
	switch cfg.Backend {
	case "", "memory", "disk":
		if len(cfg.Peers) > 0 {
			return nil, fmt.Errorf("noc: store backend %q does not take peers; use the sharded backend", cfg.Backend)
		}
		return local, nil
	case "sharded":
		sh, err := store.NewSharded(local, cfg.Self, cfg.Peers, &peerFetcher{opts: cfg.ClientOptions})
		if err != nil {
			local.Close() //nolint:errcheck // the construction error wins
			return nil, err
		}
		return sh, nil
	default:
		return nil, fmt.Errorf("noc: unknown store backend %q (valid: memory, disk, sharded)", cfg.Backend)
	}
}

// openLocalTier builds the tier entries live in: a durable disk store when
// Dir is set, a memory LRU otherwise.
func openLocalTier(cfg StoreConfig, entries int) (ResultStore, error) {
	switch {
	case cfg.Backend == "disk" && cfg.Dir == "":
		return nil, fmt.Errorf("noc: the disk store backend needs a directory")
	case cfg.Dir != "" && cfg.Backend != "disk" && cfg.Backend != "sharded":
		return nil, fmt.Errorf("noc: store backend %q does not take a directory", cfg.Backend)
	case cfg.Dir != "":
		return store.OpenDisk(cfg.Dir, store.DiskOptions{
			CacheEntries: entries,
			Codec:        service.ResponseCodec{},
		})
	default:
		return store.NewMemory(entries), nil
	}
}

// peerFetcher resolves foreign digests against their owning replica over
// the /v1/designs surface — the store.Fetcher a sharded deployment runs on.
// One Client per peer is built lazily and reused across fetches.
type peerFetcher struct {
	opts []ClientOption

	mu      sync.Mutex
	clients map[string]*Client
}

func (f *peerFetcher) client(peer string) *Client {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.clients == nil {
		f.clients = make(map[string]*Client)
	}
	c, ok := f.clients[peer]
	if !ok {
		c = NewClient(peer, f.opts...)
		f.clients[peer] = c
	}
	return c
}

// Fetch reads the digest from the peer; a peer that does not hold it is a
// clean miss, any other failure an error the shard layer surfaces.
func (f *peerFetcher) Fetch(ctx context.Context, peer, digest string) (any, bool, error) {
	resp, err := f.client(peer).Design(ctx, digest)
	if errors.Is(err, ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return resp, true, nil
}
