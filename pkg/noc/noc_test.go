package noc_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"nocmap/pkg/noc"
)

func fig5Design(t *testing.T) *noc.Design {
	t.Helper()
	d, err := noc.NewDesign("fig5").
		Cores(4).
		AddUseCase("use-case-1",
			noc.NewFlow(0, 1, 10), noc.NewFlow(1, 2, 75), noc.NewFlow(2, 3, 100)).
		AddUseCase("use-case-2",
			noc.NewFlow(2, 3, 42), noc.NewFlow(0, 2, 11), noc.NewFlow(1, 3, 52)).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDesignBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *noc.DesignBuilder
		want string
	}{
		{"unknown parallel member",
			noc.NewDesign("x").Cores(2).AddUseCase("a", noc.NewFlow(0, 1, 5)).Parallel("a", "ghost"),
			"unknown use-case"},
		{"unknown smooth member",
			noc.NewDesign("x").Cores(2).AddUseCase("a", noc.NewFlow(0, 1, 5)).Smooth("ghost", "a"),
			"unknown use-case"},
		{"double core declaration",
			noc.NewDesign("x").Cores(2).Cores(3),
			"already declared"},
		{"invalid core count",
			noc.NewDesign("x").Cores(0),
			"invalid"},
		{"design validation",
			noc.NewDesign("x").Cores(2).AddUseCase("a", noc.NewFlow(0, 0, 5)),
			"self-flow"},
	}
	for _, c := range cases {
		if _, err := c.b.Build(); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Build() err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestMapUnknownEngine(t *testing.T) {
	if _, err := noc.Map(context.Background(), fig5Design(t), noc.WithEngine("quantum")); err == nil {
		t.Fatal("Map with unknown engine should fail")
	}
}

func TestMapResultStableJSON(t *testing.T) {
	res, err := noc.Map(context.Background(), fig5Design(t))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded noc.Summary
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatalf("result JSON does not round-trip: %v", err)
	}
	if decoded.Switches != res.Switches || decoded.Design != "fig5" {
		t.Fatalf("round-tripped summary diverged: %+v vs %+v", decoded, res.Summary)
	}
	// The local summary must be the same shape the service serves: a result
	// decoded from the wire re-encodes byte-identically.
	re, err := json.Marshal(decoded)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := json.Marshal(res.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if string(re) != string(direct) {
		t.Fatalf("stable encoding violated:\n%s\nvs\n%s", re, direct)
	}
}

// TestWithProgressStreamsAnnealImprovements pins the progress contract: one
// StageMapped for the base, one StageImproved per strict improvement of the
// incumbent (strictly decreasing costs), and a final StageDone carrying the
// best result. D1 with seed 2 is a known-improving deterministic run.
func TestWithProgressStreamsAnnealImprovements(t *testing.T) {
	d, err := noc.Benchmark("D1")
	if err != nil {
		t.Fatal(err)
	}
	var events []noc.Event
	res, err := noc.Map(context.Background(), d,
		noc.WithEngine("anneal"),
		noc.WithSeed(2),
		noc.WithProgress(func(e noc.Event) { events = append(events, e) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("expected mapped + improvements + done, got %d events: %+v", len(events), events)
	}
	if events[0].Stage != noc.StageMapped {
		t.Errorf("first event stage = %q, want %q", events[0].Stage, noc.StageMapped)
	}
	last := events[len(events)-1]
	if last.Stage != noc.StageDone {
		t.Errorf("last event stage = %q, want %q", last.Stage, noc.StageDone)
	}
	if last.Switches != res.Switches {
		t.Errorf("done event reports %d switches, result has %d", last.Switches, res.Switches)
	}
	prev := events[0].Cost
	improvements := 0
	for _, e := range events[1 : len(events)-1] {
		if e.Stage != noc.StageImproved {
			t.Fatalf("unexpected mid-run stage %q", e.Stage)
		}
		if e.Cost >= prev {
			t.Errorf("improvement event cost %v not below previous best %v", e.Cost, prev)
		}
		prev = e.Cost
		improvements++
	}
	if improvements < 1 {
		t.Fatalf("anneal D1 seed 2 improved its incumbent but streamed no StageImproved events: %+v", events)
	}
	if last.Cost != prev {
		t.Errorf("done event cost %v differs from final incumbent %v", last.Cost, prev)
	}
}

// TestWithProgressPortfolioSerialized drives the portfolio with a callback
// that checks it is never entered concurrently (the race detector would
// flag unsynchronized access to the counters).
func TestWithProgressPortfolioSerialized(t *testing.T) {
	d, err := noc.Benchmark("D1")
	if err != nil {
		t.Fatal(err)
	}
	inFlight, calls := 0, 0
	_, err = noc.Map(context.Background(), d,
		noc.WithEngine("portfolio"),
		noc.WithSeeds(3),
		noc.WithIters(40),
		noc.WithProgress(func(e noc.Event) {
			inFlight++
			if inFlight != 1 {
				t.Errorf("progress callback entered concurrently (%d in flight)", inFlight)
			}
			calls++
			inFlight--
		}))
	if err != nil {
		t.Fatal(err)
	}
	if calls < 2 {
		t.Errorf("portfolio streamed %d events; want at least mapped + done", calls)
	}
}

// TestMapReportsTimings: a local Map exposes its per-stage wall-clock
// breakdown, consistent with the total, without touching the stable Summary
// encoding (TestMapResultStableJSON pins that separately).
func TestMapReportsTimings(t *testing.T) {
	res, err := noc.Map(context.Background(), fig5Design(t))
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timings()
	if tm.TotalMS <= 0 {
		t.Fatalf("TotalMS = %v, want > 0", tm.TotalMS)
	}
	if tm.PrepareMS < 0 || tm.SearchMS < 0 || tm.SummarizeMS < 0 {
		t.Fatalf("negative stage timing: %+v", tm)
	}
	if sum := tm.PrepareMS + tm.SearchMS + tm.SummarizeMS; sum > tm.TotalMS {
		t.Fatalf("stage sum %v exceeds total %v", sum, tm.TotalMS)
	}
	if tm.QueueMS != 0 {
		t.Fatalf("QueueMS = %v on a local run, want 0", tm.QueueMS)
	}
}
