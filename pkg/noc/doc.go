// Package noc is the public SDK of the nocmap toolkit: a composable,
// context-first API over the complete multi-use-case NoC mapping pipeline
// of Murali et al., "A Methodology for Mapping Multiple Use-Cases onto
// Networks on Chips" (DATE 2006).
//
// The pipeline has three stages, each reachable on its own:
//
//   - Construct or load a design. LoadDesign/LoadDesignFile parse the JSON
//     interchange format; NewDesign starts a DesignBuilder for typed
//     in-process construction of cores, use-cases, flows, parallel sets and
//     smooth-switching constraints.
//   - Map it. Map(ctx, design, opts...) runs pre-processing, the selected
//     search engine and analytic verification, configured through
//     functional options (WithEngine, WithTopology, WithWeights, WithSeed,
//     WithBudget, WithProgress for streaming search events, ...).
//   - Consume the Result: a stable JSON summary (fabric, statistics,
//     area/power, placement, verification verdicts) plus back-end methods
//     for local results — WriteVHDL, WriteConfig, WritePlacement, the
//     slot-accurate simulator (Simulate, SwitchCost, SimVerify).
//
// For remote execution, Client speaks the versioned /v1 HTTP surface of the
// nocserved daemon (POST /v1/map, /v1/batch, GET /v1/jobs/{id}, /v1/stats,
// /v1/version), sharing its result cache across callers; NewServer embeds
// that same service in any Go program. A design mapped in-process and the
// same design mapped through the service produce identical Result JSON.
//
// All five command-line binaries (nocmap, nocgen, nocsim, nocbench,
// nocserved) are thin shells over this package — the SDK is the only
// blessed entry point into the toolkit, so anything the tools do, an
// embedding program can do too.
package noc
