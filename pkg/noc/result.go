package noc

import (
	"encoding/json"
	"errors"
	"io"

	"nocmap/internal/core"
	"nocmap/internal/rtlgen"
	"nocmap/internal/service"
	"nocmap/internal/sim"
	"nocmap/internal/usecase"
)

// Summary is the stable JSON encoding of one mapping: fabric shape, load
// statistics, area/power estimates, core placement, use-case roster and
// analytic verification verdicts. It is byte-identical whether the mapping
// ran in-process or through the /v1 service.
type Summary = service.Result

// UseCaseSummary is one use-case's row of a Summary.
type UseCaseSummary = service.UseCaseResult

// ErrRemoteResult is returned by Result methods that need the in-process
// mapping (back-end generation, simulation) when the result was decoded
// from the wire, where only the summary travels.
var ErrRemoteResult = errors.New("noc: result carries no in-process mapping (mapped remotely?); re-map locally for back-end artifacts")

// Result is the outcome of a local Map call: the stable Summary (which is
// all that serializes) plus handles into the in-process mapping that power
// the back-end methods.
type Result struct {
	Summary

	engine  string
	mapping *core.Mapping
	prep    *usecase.Prepared
	timings Timings
}

// Engine names the search engine that produced the result.
func (r *Result) Engine() string { return r.engine }

// Timings reports where the wall-clock of the Map call went, broken down by
// pipeline stage (prepare, search, summarize). The breakdown is diagnostic
// metadata, not part of the stable Summary encoding.
func (r *Result) Timings() Timings { return r.timings }

// Fabric renders the solution's interconnect for humans, e.g.
// "2x3 mesh (6 switches)" or "custom ring8 (8 switches)".
func (r *Result) Fabric() string {
	if r.mapping == nil {
		return r.Summary.Topology
	}
	return r.mapping.Topology.String()
}

// Params returns the architecture parameters the mapping ran with.
func (r *Result) Params() (Params, error) {
	if r.mapping == nil {
		return Params{}, ErrRemoteResult
	}
	return r.mapping.Params, nil
}

// WriteJSON writes the indented stable JSON encoding of the summary.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Summary)
}

// WriteVHDL writes the structural VHDL netlist of the NoC.
func (r *Result) WriteVHDL(w io.Writer) error {
	if r.mapping == nil {
		return ErrRemoteResult
	}
	return rtlgen.WriteVHDL(w, r.mapping)
}

// WriteConfig writes the slot-table configuration image of one use-case
// (an index into Summary.UseCases).
func (r *Result) WriteConfig(w io.Writer, useCase int) error {
	if r.mapping == nil {
		return ErrRemoteResult
	}
	return rtlgen.WriteConfig(w, r.mapping, useCase)
}

// WritePlacement writes the core-to-switch placement table.
func (r *Result) WritePlacement(w io.Writer) error {
	if r.mapping == nil {
		return ErrRemoteResult
	}
	return rtlgen.WritePlacement(w, r.mapping)
}

// Simulate exercises one use-case's configuration on the slot-accurate
// simulator and reports per-flow delivered bandwidth and worst-case
// latency.
func (r *Result) Simulate(useCase int, cfg SimConfig) (*SimReport, error) {
	if r.mapping == nil {
		return nil, ErrRemoteResult
	}
	return sim.Run(r.mapping, useCase, cfg)
}

// SwitchCost estimates the reconfiguration cost, in cycles, of switching
// the NoC from use-case a's configuration to use-case b's.
func (r *Result) SwitchCost(a, b int, cfg SimConfig) (int, error) {
	if r.mapping == nil {
		return 0, ErrRemoteResult
	}
	return sim.SwitchCost(r.mapping, a, b, cfg)
}

// SimVerify validates every configuration against the analytic guarantees
// by simulating the given number of slots; it returns one description per
// discrepancy (bandwidth shortfall, latency overrun), empty when the
// simulation matches the analysis.
func (r *Result) SimVerify(slots int) ([]string, error) {
	if r.mapping == nil {
		return nil, ErrRemoteResult
	}
	return sim.VerifyAgainstAnalytic(r.mapping, slots), nil
}
