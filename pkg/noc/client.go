package noc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"strings"
	"syscall"
	"time"

	"nocmap/internal/service"
)

// Wire types of the /v1 service surface, shared verbatim with the server so
// client and daemon cannot drift.
type (
	// MapRequest is the body of POST /v1/map: the design JSON plus engine
	// and parameter overrides. BuildMapRequest constructs one from a Design
	// and options.
	MapRequest = service.MapRequest
	// MapResponse is the body of a synchronous POST /v1/map reply: the
	// result summary plus the cache verdict.
	MapResponse = service.Response
	// JobStatus is the body of GET /v1/jobs/{id} and of an async map's 202
	// reply.
	JobStatus = service.JobStatus
	// BatchResult is one entry of the POST /v1/batch reply, in request
	// order.
	BatchResult = service.BatchResult
	// ServerStats is the body of GET /v1/stats: cache and pool gauges.
	ServerStats = service.Stats
)

// ContextWithRequestID tags the context with a request ID that the Client
// will forward to the daemon as X-Request-ID, tying client-side calls to the
// server's logs and job records. Without one, the Client generates a fresh
// ID per call.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return service.ContextWithRequestID(ctx, id)
}

// RequestIDFrom returns the context's request ID, or "" when untagged.
func RequestIDFrom(ctx context.Context) string { return service.RequestIDFrom(ctx) }

// NewRequestID returns a fresh 16-hex-digit random request ID.
func NewRequestID() string { return service.NewRequestID() }

// ErrNotFound reports a lookup for a resource the daemon does not hold
// (an uncached design digest, a forgotten job). Test with errors.Is.
var ErrNotFound = errors.New("noc: not found")

// ServerError is a non-2xx reply from the daemon: the HTTP status, the
// server's diagnostic when the body carried one, and the request ID to
// match against the daemon's logs. Retrieve it with errors.As to branch on
// the status code.
type ServerError struct {
	// Status is the HTTP status code of the reply.
	Status int
	// Msg is the server's diagnostic ("" when the body carried none).
	Msg string
	// Path is the request path the error came from.
	Path string
	// RequestID is the X-Request-ID the failing request went out with.
	RequestID string
}

func (e *ServerError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("noc: server: %s (HTTP %d, request %s)", e.Msg, e.Status, e.RequestID)
	}
	return fmt.Sprintf("noc: server: HTTP %d on %s (request %s)", e.Status, e.Path, e.RequestID)
}

// Client talks to a running nocserved daemon over its versioned /v1 HTTP
// surface. Repeated identical requests from any number of clients share the
// daemon's result cache. The zero value is not usable; construct with
// NewClient.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
	retry   RetryPolicy
}

// RetryPolicy bounds the client's retries of transient failures: HTTP 502
// and 503 replies and connection-level dial errors (connection refused, a
// replica mid-restart). Non-transient failures — 4xx, decode errors, an
// expired context — are never retried.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3). 1 disables retries.
	MaxAttempts int
	// BaseDelay seeds the backoff: attempt n waits a uniformly random
	// ("full jitter") slice of BaseDelay·2ⁿ⁻¹, capped at MaxDelay.
	// Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 2s).
	MaxDelay time.Duration
}

// withDefaults fills in the documented defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// backoff returns the sleep before retry number attempt (1-based): full
// jitter over an exponentially growing, capped window. Full jitter
// decorrelates a thundering herd of clients retrying against one recovering
// replica.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	window := p.BaseDelay << (attempt - 1)
	if window <= 0 || window > p.MaxDelay {
		window = p.MaxDelay
	}
	return time.Duration(rand.Int64N(int64(window))) + 1
}

// WithRetry makes the client retry transient failures (502/503 replies and
// connection-refused dials) under the given policy; zero fields take the
// documented defaults. Requests with bodies are replayed from scratch, so
// retried POSTs are safe: /v1/map is idempotent by design (identical
// requests share one cache entry and one flight).
func WithRetry(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p.withDefaults() }
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom transport,
// instrumentation, test doubles).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithTimeout bounds every request issued by the client, covering
// connection, server queueing and the engine run — the guard that keeps a
// hung server from stalling a caller forever. Zero (the default) waits
// indefinitely; per-call contexts still apply either way.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://localhost:8080").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	// Applied after all options so WithTimeout and WithHTTPClient compose in
	// either order; the caller's client is copied, never mutated.
	if c.timeout > 0 {
		hc := *c.hc
		hc.Timeout = c.timeout
		c.hc = &hc
	}
	return c
}

// BuildMapRequest translates a design plus options into the wire form of
// POST /v1/map. Local-only options (WithProgress, WithWeights, WithParams,
// WithWorkers, WithRestarts, WithSpeculation) and custom fabrics are
// rejected: the service computes with its own configuration so results stay
// cacheable across callers.
func BuildMapRequest(d *Design, opts ...Option) (MapRequest, error) {
	cfg := newConfig(opts)
	var mr MapRequest
	switch {
	case cfg.opts.Progress != nil:
		return mr, fmt.Errorf("noc: WithProgress streams from in-process engines only; drop it for remote mapping")
	case cfg.weightsSet:
		return mr, fmt.Errorf("noc: WithWeights is local-only; the service scores with its configured weights")
	case cfg.paramsSet:
		return mr, fmt.Errorf("noc: WithParams is local-only; use the individual overrides (WithFrequencyMHz, WithSlotTableSize, ...)")
	case cfg.workers != nil:
		return mr, fmt.Errorf("noc: WithWorkers is local-only; the service sizes its own pool")
	case cfg.restarts != nil:
		return mr, fmt.Errorf("noc: WithRestarts is local-only; the service runs with its default restart count")
	case cfg.speculate != nil:
		return mr, fmt.Errorf("noc: WithSpeculation is local-only; the service sizes its own concurrency")
	case strings.HasPrefix(cfg.topology, "@"):
		return mr, fmt.Errorf("noc: custom fabrics (%s) carry their link lists and run locally; use Map instead", cfg.topology)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		return mr, err
	}
	mr.Design = json.RawMessage(buf.Bytes())
	mr.Engine = cfg.engine
	mr.Topology = cfg.topology
	mr.Seed = cfg.seed
	mr.Seeds = cfg.seeds
	mr.Iters = cfg.iters
	mr.Population = cfg.population
	mr.Generations = cfg.generations
	mr.Nodes = cfg.nodes
	if cfg.budget != nil && *cfg.budget > 0 {
		mr.Budget = cfg.budget.String()
	}
	mr.FreqMHz = cfg.freq
	mr.Slots = cfg.slots
	mr.MaxDim = cfg.maxDim
	if cfg.improve != nil {
		mr.Improve = *cfg.improve
	}
	return mr, nil
}

// Map sends the design to the daemon and waits for the result. The reply
// reports whether it was served from the daemon's cache.
func (c *Client) Map(ctx context.Context, d *Design, opts ...Option) (*MapResponse, error) {
	mr, err := BuildMapRequest(d, opts...)
	if err != nil {
		return nil, err
	}
	var resp MapResponse
	if err := c.post(ctx, "/v1/map", mr, http.StatusOK, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Submit enqueues the design asynchronously and returns the job to poll
// with Job.
func (c *Client) Submit(ctx context.Context, d *Design, opts ...Option) (JobStatus, error) {
	mr, err := BuildMapRequest(d, opts...)
	if err != nil {
		return JobStatus{}, err
	}
	mr.Async = true
	var st JobStatus
	if err := c.post(ctx, "/v1/map", mr, http.StatusAccepted, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Job polls an asynchronous job's state.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	if err := c.get(ctx, "/v1/jobs/"+id, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Batch maps many requests in one round trip on the daemon's shared pool;
// results come back in request order. Build the requests with
// BuildMapRequest.
func (c *Client) Batch(ctx context.Context, reqs []MapRequest) ([]BatchResult, error) {
	var out service.BatchResponse
	if err := c.post(ctx, "/v1/batch", service.BatchRequest{Requests: reqs}, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Design fetches the cached result for a request digest (the Key field of
// an earlier MapResponse or JobStatus) without admitting any work. A digest
// the daemon's store does not hold reports ErrNotFound. On a sharded
// deployment any replica answers for any digest: foreign digests are
// resolved against their owning replica server-side.
func (c *Client) Design(ctx context.Context, digest string) (*MapResponse, error) {
	var resp MapResponse
	if err := c.get(ctx, "/v1/designs/"+url.PathEscape(digest), &resp); err != nil {
		var se *ServerError
		if errors.As(err, &se) && se.Status == http.StatusNotFound {
			return nil, fmt.Errorf("%w: no cached result for digest %s", ErrNotFound, digest)
		}
		return nil, err
	}
	return &resp, nil
}

// Stats reads the daemon's cache and pool gauges.
func (c *Client) Stats(ctx context.Context) (ServerStats, error) {
	var st ServerStats
	err := c.get(ctx, "/v1/stats", &st)
	return st, err
}

// Version reads the daemon's build identity.
func (c *Client) Version(ctx context.Context) (VersionInfo, error) {
	var v VersionInfo
	err := c.get(ctx, "/v1/version", &v)
	return v, err
}

func (c *Client) post(ctx context.Context, path string, body any, wantStatus int, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, wantStatus, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, http.StatusOK, out)
}

// do executes the request, mapping non-2xx replies to *ServerError carrying
// the server's diagnostic, and retrying transient failures under the
// client's RetryPolicy (no policy = exactly one attempt). Every request
// goes out with an X-Request-ID — the context's, or a freshly generated
// one — so a failing call can be matched to the daemon's log lines; errors
// quote the ID for that reason. Retries keep the ID, so one logical call is
// one trace server-side.
func (c *Client) do(req *http.Request, wantStatus int, out any) error {
	id := RequestIDFrom(req.Context())
	if id == "" {
		id = NewRequestID()
	}
	req.Header.Set("X-Request-ID", id)
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if !c.rewind(req) {
				return lastErr // body cannot be replayed; report the last failure
			}
			select {
			case <-time.After(c.retry.backoff(attempt)):
			case <-req.Context().Done():
				return lastErr
			}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("noc: %s %s [request %s]: %w", req.Method, req.URL, id, err)
			if transientConnErr(err) {
				continue
			}
			return lastErr
		}
		if resp.StatusCode != wantStatus {
			se := &ServerError{Status: resp.StatusCode, Path: req.URL.Path, RequestID: id}
			var e struct {
				Error string `json:"error"`
			}
			if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e) == nil {
				se.Msg = e.Error
			}
			resp.Body.Close()
			lastErr = se
			if se.Status == http.StatusBadGateway || se.Status == http.StatusServiceUnavailable {
				continue
			}
			return lastErr
		}
		if out != nil {
			err = json.NewDecoder(resp.Body).Decode(out)
		}
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("noc: decode %s reply: %w", req.URL.Path, err)
		}
		return nil
	}
	return lastErr
}

// rewind resets the request body for a retry. Bodiless requests always
// rewind; bodied ones need GetBody (set automatically for the in-memory
// readers post/get use).
func (c *Client) rewind(req *http.Request) bool {
	if req.Body == nil {
		return true
	}
	if req.GetBody == nil {
		return false
	}
	body, err := req.GetBody()
	if err != nil {
		return false
	}
	req.Body = body
	return true
}

// transientConnErr reports whether err is a connection-level failure worth
// retrying: a refused or reset connection, or any dial-phase error (a
// replica mid-restart). Context expiry is the caller giving up, never
// transient.
func transientConnErr(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}
