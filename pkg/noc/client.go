package noc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"nocmap/internal/service"
)

// Wire types of the /v1 service surface, shared verbatim with the server so
// client and daemon cannot drift.
type (
	// MapRequest is the body of POST /v1/map: the design JSON plus engine
	// and parameter overrides. BuildMapRequest constructs one from a Design
	// and options.
	MapRequest = service.MapRequest
	// MapResponse is the body of a synchronous POST /v1/map reply: the
	// result summary plus the cache verdict.
	MapResponse = service.Response
	// JobStatus is the body of GET /v1/jobs/{id} and of an async map's 202
	// reply.
	JobStatus = service.JobStatus
	// BatchResult is one entry of the POST /v1/batch reply, in request
	// order.
	BatchResult = service.BatchResult
	// ServerStats is the body of GET /v1/stats: cache and pool gauges.
	ServerStats = service.Stats
)

// ContextWithRequestID tags the context with a request ID that the Client
// will forward to the daemon as X-Request-ID, tying client-side calls to the
// server's logs and job records. Without one, the Client generates a fresh
// ID per call.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return service.ContextWithRequestID(ctx, id)
}

// RequestIDFrom returns the context's request ID, or "" when untagged.
func RequestIDFrom(ctx context.Context) string { return service.RequestIDFrom(ctx) }

// NewRequestID returns a fresh 16-hex-digit random request ID.
func NewRequestID() string { return service.NewRequestID() }

// Client talks to a running nocserved daemon over its versioned /v1 HTTP
// surface. Repeated identical requests from any number of clients share the
// daemon's result cache. The zero value is not usable; construct with
// NewClient.
type Client struct {
	base    string
	hc      *http.Client
	timeout time.Duration
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom transport,
// instrumentation, test doubles).
func WithHTTPClient(hc *http.Client) ClientOption {
	return func(c *Client) { c.hc = hc }
}

// WithTimeout bounds every request issued by the client, covering
// connection, server queueing and the engine run — the guard that keeps a
// hung server from stalling a caller forever. Zero (the default) waits
// indefinitely; per-call contexts still apply either way.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// NewClient returns a client for the daemon at baseURL (e.g.
// "http://localhost:8080").
func NewClient(baseURL string, opts ...ClientOption) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	// Applied after all options so WithTimeout and WithHTTPClient compose in
	// either order; the caller's client is copied, never mutated.
	if c.timeout > 0 {
		hc := *c.hc
		hc.Timeout = c.timeout
		c.hc = &hc
	}
	return c
}

// BuildMapRequest translates a design plus options into the wire form of
// POST /v1/map. Local-only options (WithProgress, WithWeights, WithParams,
// WithWorkers, WithRestarts, WithSpeculation) and custom fabrics are
// rejected: the service computes with its own configuration so results stay
// cacheable across callers.
func BuildMapRequest(d *Design, opts ...Option) (MapRequest, error) {
	cfg := newConfig(opts)
	var mr MapRequest
	switch {
	case cfg.opts.Progress != nil:
		return mr, fmt.Errorf("noc: WithProgress streams from in-process engines only; drop it for remote mapping")
	case cfg.weightsSet:
		return mr, fmt.Errorf("noc: WithWeights is local-only; the service scores with its configured weights")
	case cfg.paramsSet:
		return mr, fmt.Errorf("noc: WithParams is local-only; use the individual overrides (WithFrequencyMHz, WithSlotTableSize, ...)")
	case cfg.workers != nil:
		return mr, fmt.Errorf("noc: WithWorkers is local-only; the service sizes its own pool")
	case cfg.restarts != nil:
		return mr, fmt.Errorf("noc: WithRestarts is local-only; the service runs with its default restart count")
	case cfg.speculate != nil:
		return mr, fmt.Errorf("noc: WithSpeculation is local-only; the service sizes its own concurrency")
	case strings.HasPrefix(cfg.topology, "@"):
		return mr, fmt.Errorf("noc: custom fabrics (%s) carry their link lists and run locally; use Map instead", cfg.topology)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		return mr, err
	}
	mr.Design = json.RawMessage(buf.Bytes())
	mr.Engine = cfg.engine
	mr.Topology = cfg.topology
	mr.Seed = cfg.seed
	mr.Seeds = cfg.seeds
	mr.Iters = cfg.iters
	if cfg.budget != nil && *cfg.budget > 0 {
		mr.Budget = cfg.budget.String()
	}
	mr.FreqMHz = cfg.freq
	mr.Slots = cfg.slots
	mr.MaxDim = cfg.maxDim
	if cfg.improve != nil {
		mr.Improve = *cfg.improve
	}
	return mr, nil
}

// Map sends the design to the daemon and waits for the result. The reply
// reports whether it was served from the daemon's cache.
func (c *Client) Map(ctx context.Context, d *Design, opts ...Option) (*MapResponse, error) {
	mr, err := BuildMapRequest(d, opts...)
	if err != nil {
		return nil, err
	}
	var resp MapResponse
	if err := c.post(ctx, "/v1/map", mr, http.StatusOK, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Submit enqueues the design asynchronously and returns the job to poll
// with Job.
func (c *Client) Submit(ctx context.Context, d *Design, opts ...Option) (JobStatus, error) {
	mr, err := BuildMapRequest(d, opts...)
	if err != nil {
		return JobStatus{}, err
	}
	mr.Async = true
	var st JobStatus
	if err := c.post(ctx, "/v1/map", mr, http.StatusAccepted, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Job polls an asynchronous job's state.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	if err := c.get(ctx, "/v1/jobs/"+id, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Batch maps many requests in one round trip on the daemon's shared pool;
// results come back in request order. Build the requests with
// BuildMapRequest.
func (c *Client) Batch(ctx context.Context, reqs []MapRequest) ([]BatchResult, error) {
	var out service.BatchResponse
	if err := c.post(ctx, "/v1/batch", service.BatchRequest{Requests: reqs}, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// Stats reads the daemon's cache and pool gauges.
func (c *Client) Stats(ctx context.Context) (ServerStats, error) {
	var st ServerStats
	err := c.get(ctx, "/v1/stats", &st)
	return st, err
}

// Version reads the daemon's build identity.
func (c *Client) Version(ctx context.Context) (VersionInfo, error) {
	var v VersionInfo
	err := c.get(ctx, "/v1/version", &v)
	return v, err
}

func (c *Client) post(ctx context.Context, path string, body any, wantStatus int, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, wantStatus, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, http.StatusOK, out)
}

// do executes the request, mapping non-2xx replies to errors carrying the
// server's diagnostic. Every request goes out with an X-Request-ID — the
// context's, or a freshly generated one — so a failing call can be matched
// to the daemon's log lines; errors quote the ID for that reason.
func (c *Client) do(req *http.Request, wantStatus int, out any) error {
	id := RequestIDFrom(req.Context())
	if id == "" {
		id = NewRequestID()
	}
	req.Header.Set("X-Request-ID", id)
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("noc: %s %s [request %s]: %w", req.Method, req.URL, id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("noc: server: %s (HTTP %d, request %s)", e.Error, resp.StatusCode, id)
		}
		return fmt.Errorf("noc: server: HTTP %d on %s (request %s)", resp.StatusCode, req.URL.Path, id)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("noc: decode %s reply: %w", req.URL.Path, err)
	}
	return nil
}
