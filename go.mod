module nocmap

go 1.24
