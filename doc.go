// Package nocmap reproduces "A Methodology for Mapping Multiple Use-Cases
// onto Networks on Chips" (Murali, Coenen, Radulescu, Goossens, De Micheli,
// DATE 2006).
//
// The library designs the smallest Network-on-Chip — on a mesh, torus, or
// arbitrary custom fabric — that satisfies the bandwidth and latency
// constraints of every use-case of an SoC. It implements the paper's three
// design phases:
//
//  1. Use-case pre-processing (internal/usecase): compound modes are
//     synthesized for use-cases that run in parallel, and use-cases requiring
//     smooth switching are grouped onto a shared NoC configuration via
//     connected components of the switching graph.
//  2. Unified mapping and NoC configuration (internal/core): a greedy
//     heuristic maps cores to switches while simultaneously selecting paths
//     and reserving TDMA slot-table entries, with separate residual resource
//     state per use-case.
//  3. Back end (internal/rtlgen, internal/sim): VHDL netlist plus slot-table
//     configuration generation, and a slot-accurate simulator that validates
//     guaranteed-throughput connections.
//
// On top of Phase 2 sits the pluggable search subsystem (internal/search):
// a common Engine interface over the prepared use-cases with three
// registered strategies — greedy (the paper's Algorithm 2 unchanged), anneal
// (simulated annealing over core placements, probing meshes smaller than
// the greedy solution), and portfolio (a parallel multi-start pool racing
// greedy against deterministically-seeded annealers under a shared context
// and wall-clock budget). Engines are selected with nocmap's -engine flag;
// future strategies (genetic, tabu, ILP) plug in by implementing
// search.Engine.
//
// Candidate placements are scored by the incremental evaluation engine
// (core.Evaluator): inputs are validated once per (design, topology,
// params), the flow work list, per-pair routing plans and candidate mesh
// paths are precomputed, and TDMA slot tables live in a pooled scratch
// arena instead of being reallocated per candidate. Its Evaluate method is
// bit-identical to the one-shot core.EvaluateFixed (kept as a thin
// compatibility wrapper); its Session adds two-phase delta moves
// (TryMove/Keep/Undo) that tear down and re-route only the flows whose
// cores moved, with exact capacity prechecks and a per-group from-scratch
// fallback — the anneal move loop runs several times faster than full
// re-configuration on every benchmark design (nocbench -fig perf,
// BENCH_pr4.json). One Evaluator is shared, concurrency-safe, by all
// portfolio workers exploring the same fabric.
//
// Above the search subsystem sits the serving layer (internal/service): a
// concurrent mapping service that keys every request by a canonical digest
// of the design (traffic.Design.Digest — invariant under JSON field order
// and use-case ordering), answers repeats from an LRU result cache,
// collapses identical in-flight requests into one engine run
// (single-flight), and executes jobs on a bounded worker pool with
// per-job deadlines, queue backpressure, and a queryable
// queued/running/done/failed lifecycle. cmd/nocserved exposes it over a
// versioned HTTP/JSON surface (POST /v1/map, POST /v1/batch,
// GET /v1/jobs/{id}, /v1/stats, /v1/version, /healthz; the pre-/v1 routes
// remain as deprecated aliases) and cmd/nocmap -server delegates to a
// running daemon. ARCHITECTURE.md maps the full layering; docs/cli.md
// documents every binary and endpoint.
//
// The public face of all of this is the SDK in pkg/noc: typed design
// construction (noc.DesignBuilder, noc.LoadDesign), one composable
// noc.Map(ctx, design, opts...) entry point with functional options
// (WithEngine, WithTopology, WithWeights, WithSeed, WithBudget,
// WithProgress for streaming search events), a noc.Result with a stable
// JSON encoding plus back-end methods (WriteVHDL, Simulate, ...), a
// noc.Client for the /v1 service, and noc.NewServer for embedding the
// daemon. The five cmd/ binaries are thin shells over pkg/noc; external
// programs embed the mapper the same way (docs/sdk.md has a quickstart).
//
// The whole pipeline is topology-generic (the paper notes the methodology
// "applies to any topology"): a topology.Spec in core.Params selects the
// fabric family — the paper's 2-D mesh, a torus whose wrap-aware
// dimension-ordered and minimal-path routing take the shorter ring
// direction per dimension, or an arbitrary custom switch/link fabric loaded
// from JSON and validated for connectivity. The growth loop, the search
// engines and the service all honour the spec; the design's topology tag
// participates in the canonical digest, so cached results never collide
// across fabrics. Select with nocmap -topology mesh|torus|@fabric.json, a
// "topology" field in the design or service request JSON, and compare
// fabrics with nocbench -fig topology.
//
// The worst-case baseline of the paper's reference [25] lives in
// internal/baseline, analytic area and power models in internal/area and
// internal/power, and the paper's benchmark suite (D1-D4 SoC stand-ins plus
// Spread/Bottleneck synthetic generators) in internal/bench. Every figure of
// the paper's evaluation is regenerated by internal/experiments, surfaced
// both as testing.B benchmarks in bench_test.go and via cmd/nocbench.
package nocmap
