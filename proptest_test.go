// Property-based invariant harness for topology-diverse mapping: many
// seeded synthetic designs, every registered engine, mesh and torus. Every
// mapping any engine reports feasible on any fabric must pass the full
// analytic verification (slot exclusivity, latency bounds, NI capacity —
// verify.Check) and deliver its nominal bandwidth in the slot-accurate
// simulator. Failures name the generating seed, so any counterexample is
// reproducible with a one-line test filter.
package nocmap_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"nocmap/internal/bench"
	"nocmap/internal/core"
	"nocmap/internal/search"
	"nocmap/internal/service"
	"nocmap/internal/sim"
	"nocmap/internal/topology"
	"nocmap/internal/usecase"
	"nocmap/internal/verify"

	// Register the population (ga/pso/abc) and exact engines so the harness
	// sweeps the full roster, exactly as the binaries do via pkg/noc.
	_ "nocmap/internal/search/exact"
	_ "nocmap/internal/search/population"
)

// propSpec derives a small synthetic design spec from a seed, alternating
// the traffic class and varying size so the harness sweeps distinct shapes.
func propSpec(seed int64) bench.SynthSpec {
	cores := 6 + int(seed)%5    // 6..10
	useCases := 2 + int(seed)%3 // 2..4
	if seed%2 == 0 {
		s := bench.SpreadSpec(useCases, seed)
		s.Name = fmt.Sprintf("prop-sp-%d", seed)
		s.Cores = cores
		s.OutDegree = 3
		s.HDPerCore = 1
		s.MinPairs = 6
		s.MaxPairs = 10
		return s
	}
	s := bench.BottleneckSpec(useCases, seed)
	s.Name = fmt.Sprintf("prop-bot-%d", seed)
	s.Cores = cores
	s.OutDegree = 3
	s.HDPerCore = 1
	s.Hotspots = 1
	s.MinPairs = 6
	s.MaxPairs = 10
	return s
}

// propParams keeps the harness fast while forcing multi-switch fabrics:
// two cores per switch spreads even the small designs across a real mesh.
func propParams(kind topology.Kind) core.Params {
	p := core.DefaultParams()
	p.NIsPerSwitch = 1
	p.CoresPerNI = 2
	p.MaxMeshDim = 8
	p.Topology = topology.Spec{Kind: kind}
	return p
}

// checkDeliveredBandwidth simulates every use-case and asserts each flow's
// delivered bytes reach the nominal injection minus a bounded steady-state
// backlog: one in-flight packet plus up to one slot-table rotation of
// accumulation per the TDMA service guarantee. Over the simulated window
// that pins the delivered rate at (or within the residual of) nominal.
func checkDeliveredBandwidth(t *testing.T, label string, m *core.Mapping) {
	t.Helper()
	T := m.Params.SlotTableSize
	rotations := 16
	slotBytes := float64(m.Params.SlotCycles) * float64(m.Params.LinkWidthBits) / 8
	slotSeconds := float64(m.Params.SlotCycles) / (m.Params.FreqMHz * 1e6)
	for uc := range m.Prep.UseCases {
		r, err := sim.Run(m, uc, sim.Config{Slots: rotations * T, ReconfigCyclesPerEntry: 4})
		if err != nil {
			t.Fatalf("%s: sim use-case %d: %v", label, uc, err)
		}
		if r.Conflicts > 0 {
			t.Fatalf("%s: use-case %d: %d slot conflicts", label, uc, r.Conflicts)
		}
		for _, fs := range r.Flows {
			f, ok := m.Prep.UseCases[uc].FlowByPair(fs.Pair)
			if !ok {
				t.Fatalf("%s: simulated flow %v not in use-case %d", label, fs.Pair, uc)
			}
			rateBytesPerSlot := f.BandwidthMBs * 1e6 * slotSeconds
			backlog := 2 * (slotBytes + rateBytesPerSlot*float64(T))
			if fs.DeliveredBytes < fs.InjectedBytes-backlog {
				t.Errorf("%s: use-case %d flow %d->%d delivered %.0f of %.0f bytes (backlog bound %.0f): below nominal bandwidth",
					label, uc, fs.Pair.Src, fs.Pair.Dst, fs.DeliveredBytes, fs.InjectedBytes, backlog)
			}
		}
	}
}

// TestPropertyEnginesTopologiesInvariants is the harness: ~50 seeded designs
// x every registered engine (greedy, anneal, portfolio, ga, pso, abc, exact)
// x {mesh, torus}. Infeasibility is a legitimate outcome on the capped mesh;
// every claimed success is verified.
func TestPropertyEnginesTopologiesInvariants(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			d, err := bench.Synthetic(propSpec(seed))
			if err != nil {
				t.Fatalf("seed %d: generate: %v", seed, err)
			}
			prep, err := usecase.Prepare(d)
			if err != nil {
				t.Fatalf("seed %d: prepare: %v", seed, err)
			}
			for _, engineName := range search.Names() {
				eng, err := search.New(engineName)
				if err != nil {
					t.Fatal(err)
				}
				for _, kind := range []topology.Kind{topology.KindMesh, topology.KindTorus} {
					label := fmt.Sprintf("seed %d engine %s topology %s", seed, engineName, kind)
					opts := search.DefaultOptions()
					opts.Seed = seed
					opts.Iters = 6
					opts.Seeds = 2
					opts.Restarts = 1
					opts.Population = 6
					opts.Generations = 3
					opts.Nodes = 5000
					res, err := eng.Search(context.Background(), prep, d.NumCores(), propParams(kind), opts)
					if err != nil {
						var inf *core.InfeasibleError
						if errors.As(err, &inf) {
							continue // infeasible on the capped fabric: legitimate
						}
						t.Fatalf("%s: %v", label, err)
					}
					if vs := verify.Check(res.Mapping); len(vs) != 0 {
						t.Fatalf("%s: %d verification violations, first: %v", label, len(vs), vs[0])
					}
					checkDeliveredBandwidth(t, label, res.Mapping)
				}
			}
		})
	}
}

// TestPropertyPopulationEnginesDeterminism pins a few generator seeds and
// checks the population engines' contract on mesh and torus fabrics: each
// of ga/pso/abc verifies clean, never lands on more switches than greedy
// (every population seeds from the greedy base and only adopts strict
// improvements), and running the identical search twice yields
// byte-identical service summaries — the determinism the server's
// content-addressed result cache depends on.
func TestPropertyPopulationEnginesDeterminism(t *testing.T) {
	t.Parallel()
	greedyEng, err := search.New("greedy")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{3, 8, 17} {
		d, err := bench.Synthetic(propSpec(seed))
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		prep, err := usecase.Prepare(d)
		if err != nil {
			t.Fatalf("seed %d: prepare: %v", seed, err)
		}
		for _, kind := range []topology.Kind{topology.KindMesh, topology.KindTorus} {
			p := propParams(kind)
			opts := search.DefaultOptions()
			opts.Seed = seed
			opts.Iters = 6
			opts.Seeds = 2
			opts.Restarts = 1
			opts.Population = 8
			opts.Generations = 4
			gres, err := greedyEng.Search(context.Background(), prep, d.NumCores(), p, opts)
			if err != nil {
				var inf *core.InfeasibleError
				if errors.As(err, &inf) {
					continue // infeasible on the capped fabric: legitimate
				}
				t.Fatalf("seed %d greedy topology %s: %v", seed, kind, err)
			}
			for _, engineName := range []string{"ga", "pso", "abc"} {
				label := fmt.Sprintf("seed %d engine %s topology %s", seed, engineName, kind)
				eng, err := search.New(engineName)
				if err != nil {
					t.Fatal(err)
				}
				run := func() []byte {
					res, err := eng.Search(context.Background(), prep, d.NumCores(), p, opts)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if vs := verify.Check(res.Mapping); len(vs) != 0 {
						t.Fatalf("%s: %d verification violations, first: %v", label, len(vs), vs[0])
					}
					if got, g := res.Mapping.SwitchCount(), gres.Mapping.SwitchCount(); got > g {
						t.Fatalf("%s: %d switches, worse than greedy's %d", label, got, g)
					}
					sum, err := json.Marshal(service.SummarizeResult(d.Name, prep, res))
					if err != nil {
						t.Fatalf("%s: marshal summary: %v", label, err)
					}
					return sum
				}
				first, second := run(), run()
				if !bytes.Equal(first, second) {
					t.Errorf("%s: same-seed reruns differ:\n%s\n%s", label, first, second)
				}
			}
		}
	}
}
